// Package rvdyn is a from-scratch Go reproduction of "Dyninst on the
// RISC-V: Binary Instrumentation in Support of Performance, Debugging, and
// Other Tools" (He, Chauhan, Kupsch, Wu, Miller; SC Workshops '25).
//
// The library implements the full Dyninst-style toolkit stack for the
// RV64GC profile — SymtabAPI, InstructionAPI, ParseAPI, DataflowAPI,
// snippets/points, CodeGenAPI, PatchAPI, ProcControlAPI, and
// StackwalkerAPI analogs — together with every substrate the paper's
// experiments need: an RV64GC assembler, an ELF64/RISC-V reader/writer
// with .riscv.attributes support, a deterministic RV64GC emulator with
// cost models standing in for the paper's SiFive P550 and x86 hardware,
// and the benchmark workloads of Section 4.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// paper-to-code substitution table, and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure. The benchmarks in
// bench_test.go regenerate each experiment; cmd/benchtable prints the
// Section 4.3 results table directly.
package rvdyn
