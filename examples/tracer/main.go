// tracer is a dynamic-instrumentation tool in the spirit of the tracing
// tools the paper's introduction motivates ("if you wanted to trace every
// function entry and exit ... you can easily create a modified version of
// your executable"): it launches the mutatee under ProcControl, plants
// probes at every function entry and exit point, and prints an indented
// call trace with arguments and return values, all without modifying the
// binary on disk.
//
//	go run ./examples/tracer
package main

import (
	"fmt"
	"log"
	"strings"

	"rvdyn/internal/asm"
	"rvdyn/internal/core"
	"rvdyn/internal/emu"
	"rvdyn/internal/proc"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)

	file, err := asm.Assemble(workload.TailCallSource, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		log.Fatal(err)
	}
	p, err := bin.Launch(emu.P550())
	if err != nil {
		log.Fatal(err)
	}

	depth := 0
	for _, fn := range bin.Functions() {
		fn := fn
		if err := p.Probe(fn.Entry, func(pp *core.Process) {
			fmt.Printf("%s-> %s(a0=%d)\n", strings.Repeat("  ", depth), fn.Name, pp.GetReg(riscv.RegA0))
			depth++
		}); err != nil {
			log.Fatal(err)
		}
		for _, pt := range snippet.FuncExits(fn) {
			exitFn := fn
			if err := p.Probe(pt.Addr, func(pp *core.Process) {
				if depth > 0 {
					depth--
				}
				fmt.Printf("%s<- %s returns a0=%d\n", strings.Repeat("  ", depth), exitFn.Name, pp.GetReg(riscv.RegA0))
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	ev, err := p.Continue()
	if err != nil {
		log.Fatal(err)
	}
	if ev.Kind != proc.EventExit {
		log.Fatalf("stopped unexpectedly: %+v", ev)
	}
	fmt.Printf("\nprocess exited with %d (expected %d)\n", ev.ExitCode, workload.TailCallExpected)
	fmt.Printf("software single-steps taken to cross probes: %d\n", p.Steps)
}
