// Quickstart: the smallest end-to-end use of the toolkit suite.
//
// It builds a RISC-V binary in memory (a recursive Fibonacci), analyzes it
// (symbols, extensions, CFG), inserts a function-entry counter with the
// snippet/point abstractions, rewrites the binary statically, and runs both
// versions on the emulator, printing the measured call count.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Build the mutatee (normally you would load an ELF from disk).
	file, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Analyze: symbol table, extensions, control-flow graph.
	bin, err := core.FromFile(file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary: entry %#x, extensions %v (from %v)\n",
		bin.Symtab.Entry, bin.Symtab.Extensions, bin.Symtab.ExtSource)
	for _, fn := range bin.Functions() {
		fmt.Printf("  function %-8s at %#x: %d blocks, %d loops\n",
			fn.Name, fn.Entry, len(fn.Blocks), len(fn.Loops))
	}

	// 3. Instrument: count entries of fib.
	fib, err := bin.FindFunction("fib")
	if err != nil {
		log.Fatal(err)
	}
	mut := bin.NewMutator(codegen.ModeDeadRegister)
	calls := mut.NewVar("fib_calls", 8)
	if err := mut.AtFuncEntry(fib, snippet.Increment(calls)); err != nil {
		log.Fatal(err)
	}
	instrumented, err := mut.Rewrite()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run base and instrumented versions; compare.
	base, err := emu.New(file, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	base.Run(0)

	inst, err := emu.New(instrumented, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	inst.Run(0)

	count, err := inst.Mem.Read64(calls.Addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbase run:         fib(12) = %d in %d instructions\n", base.ExitCode, base.Instret)
	fmt.Printf("instrumented run: fib(12) = %d in %d instructions\n", inst.ExitCode, inst.Instret)
	fmt.Printf("fib was called %d times (counter written by inserted snippets)\n", count)
	if base.ExitCode != inst.ExitCode {
		log.Fatal("instrumentation changed program behaviour!")
	}
	fmt.Printf("overhead: %.2f%% more instructions\n",
		100*(float64(inst.Instret)/float64(base.Instret)-1))
}
