// stackdump demonstrates the StackwalkerAPI analog in the debugging role
// the paper cites (the STAT debugger builds on Dyninst's stack walking): it
// attaches to a process, stops it inside a deep call chain, and prints the
// call stack recovered by the frame steppers — including frames that
// maintain no frame pointer, which the stack-height stepper handles via
// dataflow analysis (Section 3.2.7).
//
//	go run ./examples/stackdump
package main

import (
	"fmt"
	"log"

	"rvdyn/internal/asm"
	"rvdyn/internal/core"
	"rvdyn/internal/emu"
	"rvdyn/internal/proc"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)

	file, err := asm.Assemble(workload.FramePointerSource, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		log.Fatal(err)
	}

	// Start the process running, then attach — Figure 1's attach variant.
	cpu, err := emu.New(bin.File, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	cpu.Run(8) // the process is already underway (still in _start/level1)
	p := bin.Attach(cpu)

	// Break deep in the chain: _start -> level1 -> level2 -> level3 -> spin.
	spin, err := bin.FindFunction("spin")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.InsertBreakpoint(spin.Entry); err != nil {
		log.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		log.Fatal(err)
	}
	if ev.Kind != proc.EventBreakpoint {
		log.Fatalf("never reached spin: %+v", ev)
	}

	frames, err := p.Walk()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("call stack (innermost first):")
	for i, f := range frames {
		stepper := f.Stepper
		if stepper == "" {
			stepper = "-"
		}
		fmt.Printf("  #%d %-8s pc=%#x sp=%#x   (caller recovered by %s)\n",
			i, f.FuncName, f.PC, f.SP, stepper)
	}

	// Resume to completion.
	for ev.Kind == proc.EventBreakpoint {
		if ev, err = p.Continue(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nprocess exited with %d (expected %d)\n", ev.ExitCode, workload.FramePointerExpected)
}
