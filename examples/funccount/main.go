// funccount reproduces the paper's experiment 1 (Section 4.2) as a
// standalone tool: instrument the entry point of the multiply function in
// the matrix-multiplication benchmark with a counter increment, then run
// the base and instrumented binaries and report the application-measured
// elapsed times and the overhead percentage — one cell pair of the Section
// 4.3 table, on both code-generation modes.
//
//	go run ./examples/funccount [-n 40] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 40, "matrix dimension")
	reps := flag.Int("reps", 3, "multiply calls")
	flag.Parse()

	base, err := workload.BuildMatmul(*n, *reps, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseNS := run(base, nil)
	fmt.Printf("base:                %.6fs (app-measured)\n", float64(baseNS)/1e9)

	for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
		bin, err := core.FromFile(base)
		if err != nil {
			log.Fatal(err)
		}
		fn, err := bin.FindFunction("multiply")
		if err != nil {
			log.Fatal(err)
		}
		mut := bin.NewMutator(mode)
		counter := mut.NewVar("entry_count", 8)
		if err := mut.AtFuncEntry(fn, snippet.Increment(counter)); err != nil {
			log.Fatal(err)
		}
		outFile, err := mut.Rewrite()
		if err != nil {
			log.Fatal(err)
		}
		var count uint64
		ns := run(outFile, func(c *emu.CPU) {
			count, _ = c.Mem.Read64(counter.Addr)
		})
		fmt.Printf("instrumented (%s): %.6fs, overhead %+.2f%%, multiply entered %d times\n",
			mode, float64(ns)/1e9, 100*(float64(ns)/float64(baseNS)-1), count)
		if count != uint64(*reps) {
			log.Fatalf("counter = %d, want %d", count, *reps)
		}
	}
}

func run(f *elfrv.File, after func(*emu.CPU)) uint64 {
	cpu, err := emu.New(f, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		log.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}
	if after != nil {
		after(cpu)
	}
	sym, ok := f.Symbol("elapsed_ns")
	if !ok {
		log.Fatal("no elapsed_ns")
	}
	ns, _ := cpu.Mem.Read64(sym.Value)
	return ns
}
