// memtrace counts the memory traffic of the multiply kernel using
// instruction-level instrumentation points — the lowest-level point
// abstraction the paper lists ("if you wanted to trace ... every memory
// access, or even every stack memory reference"). Every load and store
// instruction in multiply gets a counter snippet inserted before it; the
// measured counts are checked against the analytic expectation from the
// loop structure.
//
//	go run ./examples/memtrace [-n 24]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"

	"rvdyn/internal/asm"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 24, "matrix dimension")
	flag.Parse()

	file, err := workload.BuildMatmul(*n, 1, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		log.Fatal(err)
	}
	fn, err := bin.FindFunction("multiply")
	if err != nil {
		log.Fatal(err)
	}

	mut := bin.NewMutator(codegen.ModeDeadRegister)
	loads := mut.NewVar("loads", 8)
	stores := mut.NewVar("stores", 8)

	nLoadSites, nStoreSites := 0, 0
	for _, blk := range fn.Blocks {
		for _, in := range blk.Insts {
			var v *snippet.Var
			switch {
			case in.IsLoad():
				v, nLoadSites = loads, nLoadSites+1
			case in.IsStore():
				v, nStoreSites = stores, nStoreSites+1
			default:
				continue
			}
			pt, err := snippet.Before(fn, in.Addr)
			if err != nil {
				log.Fatal(err)
			}
			if err := mut.InsertSnippet(pt, snippet.Increment(v)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("multiply has %d load sites and %d store sites\n", nLoadSites, nStoreSites)

	out, err := mut.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := emu.New(out, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		log.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}

	lv, _ := cpu.Mem.Read64(loads.Addr)
	sv, _ := cpu.Mem.Read64(stores.Addr)
	nn := uint64(*n)
	wantLoads := 2 * nn * nn * nn // A[i][k] and B[k][j] per inner iteration
	wantStores := nn * nn         // C[i][j] per middle iteration
	fmt.Printf("dynamic loads:  %d (expected %d)\n", lv, wantLoads)
	fmt.Printf("dynamic stores: %d (expected %d)\n", sv, wantStores)
	if lv != wantLoads || sv != wantStores {
		log.Fatal("memory-access counts do not match the analytic model")
	}
	fmt.Println("counts match the loop-nest model: 2n^3 loads, n^2 stores")
}
