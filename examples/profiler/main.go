// profiler is a flat sampling profiler — the performance-tool family the
// paper's title leads with (HPCToolkit and TAU, both Dyninst clients, are
// its exemplars). It runs the matmul benchmark under the emulator, samples
// the program counter at a fixed virtual-time period, attributes each
// sample to a function through the parsed CFG, and prints a profile with
// inclusive sample counts — no instrumentation, pure analysis-assisted
// observation.
//
//	go run ./examples/profiler [-n 48] [-hz 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"rvdyn/internal/asm"
	"rvdyn/internal/core"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 48, "matrix dimension")
	hz := flag.Uint64("hz", 100000, "virtual sampling frequency")
	flag.Parse()

	file, err := workload.BuildMatmul(*n, 2, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := emu.New(file, emu.P550())
	if err != nil {
		log.Fatal(err)
	}

	periodNS := uint64(1e9) / *hz
	nextSample := periodNS
	samples := map[string]uint64{}
	var total uint64
	cpu.Trace = func(c *emu.CPU, _ riscv.Inst) {
		if c.VirtualNanos() < nextSample {
			return
		}
		nextSample += periodNS
		total++
		name := "<unknown>"
		if fn, ok := bin.CFG.FuncContaining(c.PC); ok {
			name = fn.Name
		}
		samples[name]++
	}
	if r := cpu.Run(0); r != emu.StopExit {
		log.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}

	type row struct {
		name  string
		count uint64
	}
	var rows []row
	for name, c := range samples {
		rows = append(rows, row{name, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })

	fmt.Printf("flat profile: %d samples at %d Hz virtual over %.4f virtual s\n\n",
		total, *hz, float64(cpu.VirtualNanos())/1e9)
	fmt.Printf("  %8s  %7s  %s\n", "samples", "share", "function")
	for _, r := range rows {
		fmt.Printf("  %8d  %6.2f%%  %s\n", r.count, 100*float64(r.count)/float64(total), r.name)
	}
	if len(rows) == 0 || rows[0].name != "multiply" {
		log.Fatal("expected multiply to dominate the profile")
	}
	fmt.Println("\nmultiply dominates, as the workload intends.")
}
