// bbcount reproduces the paper's experiment 2 (Section 4.2): instrument the
// start of each of the 11 basic blocks of the multiply function with a
// counter increment and measure the overhead of both register-allocation
// modes — the pair of cells in the Section 4.3 table where the paper's
// dead-register optimization shows up (15.3% on RISC-V with it vs 66.9% on
// x86 without it).
//
//	go run ./examples/bbcount [-n 40] [-reps 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 40, "matrix dimension")
	reps := flag.Int("reps", 2, "multiply calls")
	flag.Parse()

	base, err := workload.BuildMatmul(*n, *reps, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseNS := run(base, nil)
	fmt.Printf("base:                         %.6fs\n", float64(baseNS)/1e9)

	for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
		bin, err := core.FromFile(base)
		if err != nil {
			log.Fatal(err)
		}
		fn, err := bin.FindFunction("multiply")
		if err != nil {
			log.Fatal(err)
		}
		points := snippet.BlockEntries(fn)
		fmt.Printf("\nmode %v: instrumenting %d basic blocks of multiply\n", mode, len(points))
		mut := bin.NewMutator(mode)
		counter := mut.NewVar("bb_count", 8)
		for _, pt := range points {
			if err := mut.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
				log.Fatal(err)
			}
		}
		outFile, err := mut.Rewrite()
		if err != nil {
			log.Fatal(err)
		}
		var count uint64
		ns := run(outFile, func(c *emu.CPU) {
			count, _ = c.Mem.Read64(counter.Addr)
		})
		fmt.Printf("  elapsed %.6fs, overhead %+.1f%%, %d block executions counted\n",
			float64(ns)/1e9, 100*(float64(ns)/float64(baseNS)-1), count)
	}
	fmt.Println("\n(The paper's table: x86 spill-mode +66.9%, RISC-V dead-register +15.3%;")
	fmt.Println(" the ordering — dead-register well below spill-always — is the result.)")
}

func run(f *elfrv.File, after func(*emu.CPU)) uint64 {
	cpu, err := emu.New(f, emu.P550())
	if err != nil {
		log.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		log.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}
	if after != nil {
		after(cpu)
	}
	sym, ok := f.Symbol("elapsed_ns")
	if !ok {
		log.Fatal("no elapsed_ns")
	}
	ns, _ := cpu.Mem.Read64(sym.Value)
	return ns
}
