// Command benchtable regenerates the results table of Section 4.3 of the
// paper end-to-end:
//
//   - builds the Section 4.1 workload (an n×n double-precision matrix
//     multiply called reps times from main, timed by the application itself
//     with clock_gettime);
//   - measures the base case, then the function-entry-counter case, then
//     the per-basic-block-counter case;
//   - produces both columns: the "x86" column runs the spill-always
//     code-generation mode on the x86-comparator cost model (the paper's
//     pre-optimization implementation), and the "RISC-V" column runs the
//     dead-register mode on the SiFive P550 cost model (the optimization the
//     port introduced — see DESIGN.md for the substitution rationale);
//   - prints the measured table next to the paper's, with overhead
//     percentages computed the same way.
//
// Usage:
//
//	benchtable [-n 100] [-reps 2] [-quick] [-matrix]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

type platform struct {
	name  string
	mode  codegen.Mode
	model func() *emu.CostModel
}

var platforms = []platform{
	{"x86", codegen.ModeSpillAlways, emu.X86Comparator},
	{"RISC-V", codegen.ModeDeadRegister, emu.P550},
}

type experiment struct {
	name   string
	points func(b *core.Binary) ([]snippet.Point, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtable: ")
	n := flag.Int("n", 100, "matrix dimension (paper: 100)")
	reps := flag.Int("reps", 2, "multiply calls in the timed loop")
	quick := flag.Bool("quick", false, "shrink the workload for a fast smoke run (n=20, reps=2)")
	matrix := flag.Bool("matrix", false, "additionally print the full mode x model decomposition")
	flag.Parse()
	if *quick {
		*n, *reps = 20, 2
	}

	fmt.Printf("Reproducing the Section 4.3 table: %dx%d double matmul, %d calls per run\n", *n, *n, *reps)
	fmt.Printf("(application-measured elapsed time via virtual clock_gettime; see DESIGN.md)\n\n")

	experiments := []experiment{
		{"Base", nil},
		{"Function count", func(b *core.Binary) ([]snippet.Point, error) {
			fn, err := b.FindFunction("multiply")
			if err != nil {
				return nil, err
			}
			return []snippet.Point{snippet.FuncEntry(fn)}, nil
		}},
		{"BB count", func(b *core.Binary) ([]snippet.Point, error) {
			fn, err := b.FindFunction("multiply")
			if err != nil {
				return nil, err
			}
			return snippet.BlockEntries(fn), nil
		}},
	}

	// secs[platform][experiment]
	secs := make([][]float64, len(platforms))
	for pi, plat := range platforms {
		secs[pi] = make([]float64, len(experiments))
		for ei, exp := range experiments {
			ns, err := measure(*n, *reps, exp.points, plat)
			if err != nil {
				log.Fatalf("%s / %s: %v", plat.name, exp.name, err)
			}
			secs[pi][ei] = float64(ns) / 1e9
		}
	}

	fmt.Printf("%-16s", "")
	for _, p := range platforms {
		fmt.Printf("  %-20s", p.name)
	}
	fmt.Println()
	for ei, exp := range experiments {
		fmt.Printf("%-16s", exp.name)
		for pi := range platforms {
			s := secs[pi][ei]
			if ei == 0 {
				fmt.Printf("  %-20s", fmt.Sprintf("%.4f", s))
			} else {
				ovh := (s/secs[pi][0] - 1) * 100
				fmt.Printf("  %-20s", fmt.Sprintf("%.4f  %+5.1f%%", s, ovh))
			}
		}
		fmt.Println()
	}

	if *matrix {
		// Decompose the two table columns into their two ingredients: the
		// register-allocation mode (the paper's optimization) and the cost
		// model (the platform stand-in). Overheads are per-BB counts.
		fmt.Println("\nDecomposition (BB-count overhead by mode x model):")
		bbPoints := experiments[2].points
		for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
			for _, plat := range platforms {
				cell := platform{name: plat.name, mode: mode, model: plat.model}
				baseNS, err := measure(*n, *reps, nil, cell)
				if err != nil {
					log.Fatal(err)
				}
				ns, err := measure(*n, *reps, bbPoints, cell)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-14s on %-22s %+7.1f%%\n",
					mode, plat.model().Name, 100*(float64(ns)/float64(baseNS)-1))
			}
		}
		fmt.Println("  (overhead % depends on the codegen mode, not the clock: the")
		fmt.Println("   optimization, not the platform, is what the table measures)")
	}

	fmt.Println("\nPaper (Section 4.3, measured on real silicon; seconds):")
	fmt.Println("                  x86                   RISC-V")
	fmt.Println("Base              0.1606                1.2923")
	fmt.Println("Function count    0.1629   +1.4%        1.3020   +0.8%")
	fmt.Println("BB count          0.2681  +66.9%        1.4904  +15.3%")
	fmt.Println("\nShape checks (the reproduction target):")
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			defer os.Exit(1)
		}
		fmt.Printf("  [%s] %s\n", status, name)
	}
	check("function-entry overhead is small (<5%) on both platforms",
		secs[0][1]/secs[0][0] < 1.05 && secs[1][1]/secs[1][0] < 1.05)
	check("per-BB overhead far exceeds function-entry overhead",
		secs[0][2] > secs[0][1] && secs[1][2] > secs[1][1])
	check("dead-register RISC-V BB overhead beats spill-always x86 BB overhead",
		secs[1][2]/secs[1][0] < secs[0][2]/secs[0][0])
	check("x86-comparator base is faster than P550 base (paper ratio ~8x)",
		secs[0][0] < secs[1][0])
}

// measure builds, optionally instruments, and runs the workload, returning
// the application-recorded elapsed nanoseconds.
func measure(n, reps int, pointsFn func(*core.Binary) ([]snippet.Point, error), plat platform) (uint64, error) {
	file, err := workload.BuildMatmul(n, reps, asm.Options{})
	if err != nil {
		return 0, err
	}
	var runFile *elfrv.File = file
	if pointsFn != nil {
		bin, err := core.FromFile(file)
		if err != nil {
			return 0, err
		}
		points, err := pointsFn(bin)
		if err != nil {
			return 0, err
		}
		m := bin.NewMutator(plat.mode)
		counter := m.NewVar("benchtable_counter", 8)
		for _, pt := range points {
			if err := m.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
				return 0, err
			}
		}
		runFile, err = m.Rewrite()
		if err != nil {
			return 0, err
		}
	}
	cpu, err := emu.New(runFile, plat.model())
	if err != nil {
		return 0, err
	}
	cpu.Stdout = os.Stdout
	if r := cpu.Run(0); r != emu.StopExit {
		return 0, fmt.Errorf("run stopped: %v (%v)", r, cpu.LastTrap())
	}
	sym, ok := runFile.Symbol("elapsed_ns")
	if !ok {
		return 0, fmt.Errorf("no elapsed_ns symbol")
	}
	return cpu.Mem.Read64(sym.Value)
}
