// Command rvdyn is the mutator CLI over the toolkit suite — the analog of
// the tools one builds with Dyninst. It analyzes RISC-V binaries and
// instruments them statically or dynamically.
//
// Subcommands:
//
//	rvdyn symbols prog.elf                   symbol table and extension info
//	rvdyn disasm [-func f] prog.elf          disassembly
//	rvdyn cfg [-func f] prog.elf             control-flow graph with the
//	                                         jal/jalr classifier verdicts
//	rvdyn liveness -func f prog.elf          per-block dead registers
//	rvdyn slice -func f -addr A -reg R [-forward] prog.elf
//	                                         backward/forward slice
//	rvdyn rewrite -func f [-points entry|exits|blocks] [-mode dead|spill]
//	      [-o out.elf] prog.elf              static instrumentation (counter)
//	rvdyn run [-mode static|spawn|attach] -func f prog.elf
//	                                         instrument + execute, print count
//	rvdyn oracle [-mode sweep|replay|equiv] [flags] [prog.elf]
//	                                         differential-execution oracle
//	rvdyn batch [-points p] [-mode m] [-synthetic N] [-o dir]
//	                                         instrument every workload program
//	                                         concurrently, print phase stats
//	rvdyn profile [-func f1,f2] [-mode m] {prog.elf|workload-name}
//	                                         instrument, run, and print a
//	                                         per-function cycle profile
//	rvdyn dbirun [-func f1,f2] [-mode m] [-novirt] {prog.elf|workload-name}
//	                                         run under the dynamic binary
//	                                         instrumentation engine (code-cache
//	                                         translation, no rewrite) and print
//	                                         call counts plus engine counters
//	rvdyn serve [-addr host:port] [-cache-mb N] [-max-upload-mb N]
//	                                         long-running instrumentation
//	                                         server with a content-addressed
//	                                         analysis cache (rvdynd)
//	rvdyn components                         the Figure 2 component graph
//
// The global -jobs N flag (before the subcommand) bounds the worker pool of
// the parallel analyze/instrument phases; output is byte-identical for every
// value. Default is GOMAXPROCS.
//
// Observability (global flags, before the subcommand): -metrics dumps the
// counter registry to stderr on exit; -trace-out=FILE writes per-phase spans
// as Chrome trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/dataflow"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/instruction"
	"rvdyn/internal/obs"
	"rvdyn/internal/oracle"
	"rvdyn/internal/parse"
	"rvdyn/internal/pipeline"
	"rvdyn/internal/proc"
	"rvdyn/internal/profile"
	"rvdyn/internal/profile/sample"
	"rvdyn/internal/riscv"
	"rvdyn/internal/server"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

var (
	jobsFlag     = flag.Int("jobs", 0, "workers for parallel analyze/instrument phases (default GOMAXPROCS)")
	metricsFlag  = flag.Bool("metrics", false, "dump the metrics registry to stderr on exit")
	traceOutFlag = flag.String("trace-out", "", "write span trace as Chrome trace_event JSON to `FILE`")
	notraceFlag  = flag.Bool("notrace", false, "disable trace compilation of hot superblock chains in every guest run (A/B overhead comparisons)")
)

// obsReg and obsTr are the process-wide sinks; both stay nil (disabling
// collection everywhere, with no-op handles) unless the flags ask for them.
var (
	obsReg *obs.Registry
	obsTr  *obs.Tracer
)

func obsSetup() {
	if *metricsFlag {
		obsReg = obs.NewRegistry()
	}
	if *traceOutFlag != "" {
		obsTr = obs.NewTracer()
	}
}

func obsFinish() {
	if obsReg != nil {
		fmt.Fprint(os.Stderr, obsReg.String())
	}
	if obsTr != nil {
		f, err := os.Create(*traceOutFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := obsTr.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rvdyn: wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			len(obsTr.Events()), *traceOutFlag)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rvdyn: ")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	obsSetup()
	defer obsFinish()
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "symbols":
		cmdSymbols(args)
	case "disasm":
		cmdDisasm(args)
	case "cfg":
		cmdCFG(args)
	case "liveness":
		cmdLiveness(args)
	case "slice":
		cmdSlice(args)
	case "rewrite":
		cmdRewrite(args)
	case "run":
		cmdRun(args)
	case "oracle":
		cmdOracle(args)
	case "batch":
		cmdBatch(args)
	case "profile":
		cmdProfile(args)
	case "dbirun":
		cmdDBIRun(args)
	case "serve":
		cmdServe(args)
	case "components":
		cmdComponents()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rvdyn [-jobs N] [-metrics] [-trace-out FILE] {symbols|disasm|cfg|liveness|slice|rewrite|run|oracle|batch|profile|dbirun|serve|components} [flags] prog.elf")
	os.Exit(2)
}

func openArg(fs *flag.FlagSet) *core.Binary {
	if fs.NArg() != 1 {
		log.Fatal("need exactly one ELF file")
	}
	b, err := core.OpenPathJobs(fs.Arg(0), *jobsFlag)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func cmdSymbols(args []string) {
	fs := flag.NewFlagSet("symbols", flag.ExitOnError)
	fs.Parse(args)
	b := openArg(fs)
	st := b.Symtab
	fmt.Printf("entry:      %#x\n", st.Entry)
	fmt.Printf("extensions: %v (from %v", st.Extensions, st.ExtSource)
	if st.Arch != "" {
		fmt.Printf(", arch %q", st.Arch)
	}
	fmt.Println(")")
	fmt.Println("\nregions:")
	for _, r := range st.Regions {
		perm := "r"
		if r.Write {
			perm += "w"
		}
		if r.Exec {
			perm += "x"
		}
		fmt.Printf("  %-18s %#10x  %8d bytes  %s\n", r.Name, r.Addr, r.Size, perm)
	}
	fmt.Println("\nfunctions:")
	for _, f := range st.Functions {
		bind := "local "
		if f.Global {
			bind = "global"
		}
		fmt.Printf("  %#10x  %6d bytes  %s  %s\n", f.Addr, f.Size, bind, f.Name)
	}
}

func cmdDisasm(args []string) {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	fname := fs.String("func", "", "restrict to one function")
	access := fs.Bool("access", false, "annotate operand read/write access")
	fs.Parse(args)
	b := openArg(fs)
	for _, fn := range b.Functions() {
		if *fname != "" && fn.Name != *fname {
			continue
		}
		fmt.Printf("\n%s: (%d blocks)\n", name(fn), len(fn.Blocks))
		for _, blk := range fn.Blocks {
			for _, in := range blk.Insts {
				c := " "
				if in.Compressed {
					c = "c"
				}
				fmt.Printf("  %#10x %s  %-32v", in.Addr, c, in)
				if *access {
					// The InstructionAPI operand view: per-operand
					// read/write flags (the metadata the paper's authors
					// upstreamed into Capstone v6).
					obj := instruction.Instruction{Inst: in}
					for _, op := range obj.Operands() {
						tag := ""
						if op.Read {
							tag += "r"
						}
						if op.Written {
							tag += "w"
						}
						fmt.Printf("  %s:%s", op, tag)
					}
				}
				fmt.Println()
			}
		}
	}
}

func name(fn *parse.Function) string {
	if fn.Name != "" {
		return fn.Name
	}
	return fmt.Sprintf("func_%x", fn.Entry)
}

func cmdCFG(args []string) {
	fs := flag.NewFlagSet("cfg", flag.ExitOnError)
	fname := fs.String("func", "", "restrict to one function")
	fs.Parse(args)
	b := openArg(fs)
	for _, fn := range b.Functions() {
		if *fname != "" && fn.Name != *fname {
			continue
		}
		spec := ""
		if fn.Speculative {
			spec = " (speculative, from gap parsing)"
		}
		fmt.Printf("\nfunction %s at %#x: %d blocks, %d loops, returns=%v%s\n",
			name(fn), fn.Entry, len(fn.Blocks), len(fn.Loops), fn.Returns, spec)
		for _, blk := range fn.Blocks {
			fmt.Printf("  block [%#x,%#x)", blk.Start, blk.End)
			if blk.Purpose != parse.PurposeNone {
				fmt.Printf("  %v", blk.Purpose)
			}
			fmt.Println()
			for _, e := range blk.Out {
				tgt := "?"
				if e.To != nil {
					tgt = fmt.Sprintf("%#x", e.To.Start)
				} else if e.Target != 0 {
					tgt = fmt.Sprintf("%#x", e.Target)
				}
				fmt.Printf("    -> %s (%v)\n", tgt, e.Kind)
			}
			if blk.Purpose == parse.PurposeJumpTable {
				fmt.Printf("    table at %#x: %d entries, stride %d\n",
					blk.TableBase, blk.TableCount, blk.TableStride)
			}
		}
		for _, l := range fn.Loops {
			fmt.Printf("  loop head %#x, %d blocks, %d back edges\n",
				l.Head.Start, len(l.Blocks), len(l.BackEdges))
		}
	}
	s := b.CFG.Stats
	fmt.Printf("\ntotals: %d functions (%d from gaps), %d blocks, %d instructions\n",
		s.Functions, s.GapFuncs, s.Blocks, s.Instructions)
	fmt.Printf("classifier: %d calls, %d returns, %d jumps, %d tail calls, %d jump tables, %d unresolved\n",
		s.Calls, s.Returns, s.Jumps, s.TailCalls, s.JumpTables, s.Unresolved)
}

func cmdLiveness(args []string) {
	fs := flag.NewFlagSet("liveness", flag.ExitOnError)
	fname := fs.String("func", "", "function to analyze (required)")
	fs.Parse(args)
	b := openArg(fs)
	fn, err := b.FindFunction(*fname)
	if err != nil {
		log.Fatal(err)
	}
	lv := dataflow.Liveness(fn)
	fmt.Printf("dead registers by block of %s (instrumentation scratch candidates):\n", *fname)
	for _, blk := range fn.Blocks {
		dead := lv.DeadScratchX(blk.Start)
		fmt.Printf("  %#10x: %v\n", blk.Start, dead)
	}
}

func cmdSlice(args []string) {
	fs := flag.NewFlagSet("slice", flag.ExitOnError)
	fname := fs.String("func", "", "function to analyze (required)")
	addrStr := fs.String("addr", "", "criterion instruction address (hex, required)")
	regName := fs.String("reg", "", "criterion register (required for backward)")
	forward := fs.Bool("forward", false, "forward slice instead of backward")
	fs.Parse(args)
	b := openArg(fs)
	fn, err := b.FindFunction(*fname)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(*addrStr, "0x"), 16, 64)
	if err != nil {
		log.Fatalf("bad -addr %q: %v", *addrStr, err)
	}
	if *forward {
		nodes := dataflow.ForwardSlice(fn, addr)
		fmt.Printf("forward slice from %#x (%d instructions affected):\n", addr, len(nodes))
		for _, n := range nodes {
			fmt.Printf("  %#10x  %v\n", n.Inst().Addr, n.Inst())
		}
		return
	}
	reg, ok := riscv.LookupReg(*regName)
	if !ok {
		log.Fatalf("bad register %q", *regName)
	}
	nodes := dataflow.BackwardSlice(fn, addr, reg)
	fmt.Printf("backward slice of %s at %#x (%d producing instructions):\n", reg, addr, len(nodes))
	for _, n := range nodes {
		fmt.Printf("  %#10x  %v\n", n.Inst().Addr, n.Inst())
	}
}

func cmdRewrite(args []string) {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	fname := fs.String("func", "", "function to instrument (required)")
	points := fs.String("points", "entry", "points: entry, exits, or blocks")
	mode := fs.String("mode", "dead", "register allocation: dead or spill")
	out := fs.String("o", "instrumented.elf", "output path")
	fs.Parse(args)
	b := openArg(fs)
	fn, err := b.FindFunction(*fname)
	if err != nil {
		log.Fatal(err)
	}
	m := b.NewMutator(parseMode(*mode))
	counter := m.NewVar("rvdyn_counter", 8)
	switch *points {
	case "entry":
		err = m.AtFuncEntry(fn, snippet.Increment(counter))
	case "exits":
		err = m.AtFuncExits(fn, snippet.Increment(counter))
	case "blocks":
		err = m.AtBlockEntries(fn, snippet.Increment(counter))
	default:
		log.Fatalf("unknown points %q", *points)
	}
	if err != nil {
		log.Fatal(err)
	}
	outFile, err := m.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	raw, err := outFile.Write()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, raw, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, p := range m.Patches {
		fmt.Printf("patched %s entry %#x -> %#x via %v\n", p.Func, p.From, p.To, p.Kind)
	}
	fmt.Printf("wrote %s (counter variable %q at %#x)\n", *out, counter.Name, counter.Addr)
}

func parseMode(s string) codegen.Mode {
	switch s {
	case "dead":
		return codegen.ModeDeadRegister
	case "spill":
		return codegen.ModeSpillAlways
	}
	log.Fatalf("unknown mode %q", s)
	return 0
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fname := fs.String("func", "", "function whose entries to count (required)")
	mode := fs.String("mode", "static", "instrumentation variant: static, spawn, or attach (Figure 1)")
	fs.Parse(args)
	b := openArg(fs)
	fn, err := b.FindFunction(*fname)
	if err != nil {
		log.Fatal(err)
	}
	switch *mode {
	case "static":
		m := b.NewMutator(codegen.ModeDeadRegister)
		counter := m.NewVar("count", 8)
		if err := m.AtFuncEntry(fn, snippet.Increment(counter)); err != nil {
			log.Fatal(err)
		}
		outFile, err := m.Rewrite()
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := emu.New(outFile, emu.P550())
		if err != nil {
			log.Fatal(err)
		}
		cpu.NoTrace = *notraceFlag
		cpu.Stdout = os.Stdout
		if obsReg != nil {
			cpu.Obs = emu.NewMetrics(obsReg)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			log.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
		}
		v, _ := cpu.Mem.Read64(counter.Addr)
		fmt.Printf("static rewrite: %s entered %d times; exit code %d; %.6f virtual s\n",
			*fname, v, cpu.ExitCode, float64(cpu.VirtualNanos())/1e9)
	case "spawn", "attach":
		var p *core.Process
		if *mode == "spawn" {
			p, err = b.Launch(emu.P550())
			if err != nil {
				log.Fatal(err)
			}
		} else {
			cpu, err := emu.New(b.File, emu.P550())
			if err != nil {
				log.Fatal(err)
			}
			cpu.Run(500)
			p = b.Attach(cpu)
		}
		p.CPU().NoTrace = *notraceFlag
		p.CPU().Stdout = os.Stdout
		if obsReg != nil {
			p.CPU().Obs = emu.NewMetrics(obsReg)
			p.Process.Obs = proc.NewMetrics(obsReg)
		}
		counter := p.NewVar("count", 8)
		kind, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
			snippet.Increment(counter), codegen.ModeDeadRegister)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := p.Continue()
		if err != nil {
			log.Fatal(err)
		}
		if ev.Kind != proc.EventExit {
			log.Fatalf("stopped: %+v", ev)
		}
		v, _ := p.ReadVar(counter)
		fmt.Printf("dynamic (%s, entry patch %v): %s entered %d times; exit code %d\n",
			*mode, kind, *fname, v, ev.ExitCode)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func cmdOracle(args []string) {
	fs := flag.NewFlagSet("oracle", flag.ExitOnError)
	mode := fs.String("mode", "sweep", "sweep, replay, or equiv")
	seed := fs.Int64("seed", 1, "generator seed (replay)")
	seeds := fs.Int("seeds", 50, "number of seeds to run (sweep)")
	length := fs.Int("len", 300, "generated program body length")
	dump := fs.Bool("dump", false, "print the generated assembly before running (replay)")
	funcs := fs.String("func", "", "comma-separated functions to instrument (equiv, required)")
	cg := fs.String("cgmode", "dead", "register allocation for equiv: dead or spill")
	fs.Parse(args)
	switch *mode {
	case "sweep":
		var total uint64
		exits := 0
		for s := int64(1); s <= int64(*seeds); s++ {
			res, div, err := oracle.LockstepSeed(s, *length)
			if err != nil {
				log.Fatalf("seed %d: %v", s, err)
			}
			if div != nil {
				fmt.Println(div.Error())
				os.Exit(1)
			}
			total += res.Steps
			if res.Stop == "exit" {
				exits++
			}
		}
		fmt.Printf("sweep: %d seeds, %d lockstep instructions, %d clean exits, 0 divergences\n",
			*seeds, total, exits)
	case "replay":
		if *dump {
			fmt.Print(oracle.GenerateProgram(*seed, *length))
		}
		res, div, err := oracle.LockstepSeed(*seed, *length)
		if err != nil {
			log.Fatal(err)
		}
		if div != nil {
			fmt.Println(div.Error())
			os.Exit(1)
		}
		fmt.Printf("seed %d: %d lockstep instructions, stop=%s, exit code %d, 0 divergences\n",
			*seed, res.Steps, res.Stop, res.ExitCode)
	case "equiv":
		if *funcs == "" {
			log.Fatal("equiv mode needs -func f1,f2,...")
		}
		b := openArg(fs)
		rep, err := oracle.CheckEquivalence(b.File, strings.Split(*funcs, ","), parseMode(*cg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("equivalent: %d points across %v; exit code %d; %d original vs %d instrumented instructions\n",
			rep.Points, rep.Funcs, rep.ExitCode, rep.OrigSteps, rep.InstrSteps)
	default:
		log.Fatalf("unknown oracle mode %q", *mode)
	}
}

func cmdBatch(args []string) {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	points := fs.String("points", "entry", "points per function: entry, exits, or blocks")
	mode := fs.String("mode", "dead", "register allocation: dead or spill")
	synthetic := fs.Int("synthetic", 0, "append N synthetic random programs to the batch")
	outDir := fs.String("o", "", "directory to write instrumented ELFs into (optional)")
	verify := fs.Bool("verify", true, "execute each instrumented binary and check exit codes")
	fs.Parse(args)

	batch := pipeline.WorkloadJobs()
	if *synthetic > 0 {
		batch = append(batch, pipeline.SyntheticJobs(*synthetic, 40, 4)...)
	}
	opts := pipeline.Options{
		Jobs: *jobsFlag, Mode: parseMode(*mode), Points: *points,
		Metrics: obsReg, Trace: obsTr, TraceTID: 1,
	}

	start := time.Now()
	results, errs, stats := pipeline.BatchAll(batch, opts)
	wall := time.Since(start)

	// Verification failures join the instrumentation failures so the final
	// summary names every bad job and the exit status reflects all of them.
	for i, res := range results {
		if errs[i] != nil {
			fmt.Printf("%-14s FAILED: %v\n", batch[i].Name, errs[i])
			continue
		}
		fmt.Printf("%-14s %6d bytes  %d patches", res.Name, len(res.ELF), len(res.Patches))
		if *verify {
			code, err := verifyResult(res)
			if err != nil {
				errs[i] = err
				fmt.Printf("  VERIFY FAILED: %v\n", err)
				continue
			}
			fmt.Printf("  exit %d ok", code)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := *outDir + "/" + res.Name + ".elf"
			if err := os.WriteFile(path, res.ELF, 0o755); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> %s", path)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Print(stats)
	fmt.Printf("wall time: %.3f ms with %d workers\n", float64(wall)/1e6, opts.Workers())
	if summary := pipeline.ErrorSummary(batch, errs); summary != "" {
		fmt.Fprintf(os.Stderr, "rvdyn: batch: %s", summary)
		obsFinish()
		os.Exit(1)
	}
}

// verifyResult executes one instrumented binary in the emulator and checks
// its exit code.
func verifyResult(res *pipeline.Result) (int, error) {
	cpu, err := emu.New(res.File, emu.P550())
	if err != nil {
		return 0, err
	}
	if r := cpu.Run(0); r != emu.StopExit {
		return 0, fmt.Errorf("stopped %v (%v)", r, cpu.LastTrap())
	}
	if res.CheckExit && cpu.ExitCode != res.WantExit {
		return cpu.ExitCode, fmt.Errorf("exit code %d, want %d", cpu.ExitCode, res.WantExit)
	}
	return cpu.ExitCode, nil
}

// cmdServe runs the rvdynd instrumentation daemon: an HTTP server sharing
// one worker pool and one content-addressed artifact cache across all
// requests. See internal/server for the API surface.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "listen address")
	cacheMB := fs.Int("cache-mb", 256, "artifact cache capacity in MiB")
	maxUploadMB := fs.Int64("max-upload-mb", 64, "per-request upload cap in MiB")
	fs.Parse(args)
	if fs.NArg() != 0 {
		log.Fatal("serve takes no positional arguments")
	}
	// The metrics endpoint always has a live registry; the global -metrics
	// flag additionally dumps it to stderr on exit.
	reg := obsReg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	svc := server.NewService(server.Options{
		Jobs:       *jobsFlag,
		CacheBytes: uint64(*cacheMB) << 20,
		Metrics:    reg,
	})
	h := server.NewHandler(svc, server.HandlerOptions{MaxUploadBytes: *maxUploadMB << 20})
	log.Printf("rvdynd listening on %s (cache %d MiB, %s)", *addr, *cacheMB, server.ToolchainVersion)
	if err := http.ListenAndServe(*addr, h); err != nil {
		log.Fatal(err)
	}
}

// cmdProfile instruments every requested function with call counters and
// entry/exit probes, runs the binary in the emulator, and prints a
// per-function profile whose cycle column sums exactly to the run's retired
// cycles. The argument is an ELF path or a workload program name (e.g.
// "matmul"), in which case the workload's instrumentable functions are
// profiled by default.
// loadProgArg resolves an argument that is either an ELF path or a workload
// program name into a parsed file plus the workload's default function list.
func loadProgArg(arg string) (*elfrv.File, []string) {
	if data, err := os.ReadFile(arg); err == nil {
		file, err := elfrv.Read(data)
		if err != nil {
			log.Fatal(err)
		}
		return file, nil
	}
	for _, p := range workload.Programs() {
		if p.Name != arg {
			continue
		}
		f, err := asm.Assemble(p.Source, asm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return f, p.Funcs
	}
	log.Fatalf("%q is neither a readable file nor a workload program", arg)
	return nil, nil
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	funcs := fs.String("func", "", "comma-separated functions to profile (default: workload metadata, or every named function)")
	mode := fs.String("mode", "dead", "register allocation: dead or spill")
	maxInst := fs.Uint64("max", 0, "instruction budget, 0 = unlimited")
	doSample := fs.Bool("sample", false, "sample on the virtual clock instead of instrumenting (deterministic sampling profiler)")
	period := fs.Uint64("period", 4096, "sampling period in virtual cycles (with -sample)")
	engine := fs.String("engine", "fast", "sampling engine: fast, slow, or dbi (with -sample)")
	pprofOut := fs.String("pprof", "", "write a gzipped pprof profile.proto to `FILE` (with -sample)")
	foldedOut := fs.String("folded", "", "write folded stacks for flamegraph.pl/speedscope to `FILE` (with -sample)")
	topN := fs.Int("top", 10, "rows in the top-functions table (with -sample; 0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("profile needs one ELF file or workload program name (e.g. matmul)")
	}
	file, flist := loadProgArg(fs.Arg(0))
	if *funcs != "" {
		flist = strings.Split(*funcs, ",")
	}

	if *doSample {
		var eng sample.Engine
		switch *engine {
		case "fast":
			eng = sample.EngineFast
		case "slow":
			eng = sample.EngineSlow
		case "dbi":
			eng = sample.EngineDBI
		default:
			log.Fatalf("unknown sampling engine %q (want fast, slow, or dbi)", *engine)
		}
		runSampled(file, sample.Options{
			Period: *period, Engine: eng, MaxInst: *maxInst,
			Obs: obsReg, Name: fs.Arg(0), NoTrace: *notraceFlag,
		}, *pprofOut, *foldedOut, *topN)
		return
	}

	rep, err := profile.Run(file, profile.Options{
		Funcs: flist, Mode: parseMode(*mode), MaxInst: *maxInst,
		Obs: obsReg, Trace: obsTr, TraceTID: 1, NoTrace: *notraceFlag,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Printf("exit code %d; %d instructions retired\n", rep.ExitCode, rep.TotalInsts)
}

// runSampled executes one sampled run and emits every requested export:
// the top-N table on stdout, optionally a gzipped pprof profile (which is
// immediately re-read through the in-tree decoder so a malformed encoding
// fails loudly rather than downstream in pprof) and a folded-stack file.
func runSampled(file *elfrv.File, opts sample.Options, pprofPath, foldedPath string, topN int) {
	prof, err := sample.Run(file, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d stacks over %d cycles (engine %v, period %d)\n",
		len(prof.Samples), prof.TotalCycles, opts.Engine, prof.Period)
	if err := prof.WriteTop(os.Stdout, topN); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exit code %d; %d instructions retired; virtual %.6fs\n",
		prof.ExitCode, prof.TotalInsts, float64(prof.DurationNanos)/1e9)
	if pprofPath != "" {
		var buf bytes.Buffer
		if err := prof.WritePprof(&buf); err != nil {
			log.Fatal(err)
		}
		dec, err := sample.ParsePprof(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatalf("pprof self-check failed: %v", err)
		}
		if got, want := dec.TotalSamples(), int64(len(prof.Samples)); got != want {
			log.Fatalf("pprof self-check: decoded %d samples, profile has %d", got, want)
		}
		if err := os.WriteFile(pprofPath, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes, %d sample records, %d locations, %d functions (round-trip verified)\n",
			pprofPath, buf.Len(), len(dec.Samples), len(dec.Locations), len(dec.Functions))
	}
	if foldedPath != "" {
		f, err := os.Create(foldedPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.WriteFolded(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d folded stacks (one line per sample)\n", foldedPath, len(prof.Samples))
	}
}

// cmdDBIRun runs a binary under the dynamic binary instrumentation engine:
// no rewrite on disk, blocks translate into a code cache at first execution
// with call-count probes woven in, and the engine's counters quantify the
// dynamic-mode machinery (translations, chain patches, invalidations).
func cmdDBIRun(args []string) {
	fs := flag.NewFlagSet("dbirun", flag.ExitOnError)
	funcs := fs.String("func", "", "comma-separated functions to probe (default: workload metadata, or every named function)")
	mode := fs.String("mode", "dead", "register allocation: dead or spill")
	maxInst := fs.Uint64("max", 0, "instruction budget, 0 = unlimited")
	noVirt := fs.Bool("novirt", false, "disable counter virtualization (report raw translation-inflated counters)")
	samplePeriod := fs.Uint64("sample-period", 0, "sample the run on the (compensated) virtual clock every N cycles instead of probing")
	pprofOut := fs.String("pprof", "", "write a gzipped pprof profile.proto to `FILE` (with -sample-period)")
	foldedOut := fs.String("folded", "", "write folded stacks to `FILE` (with -sample-period)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("dbirun needs one ELF file or workload program name (e.g. matmul)")
	}
	file, flist := loadProgArg(fs.Arg(0))
	if *funcs != "" {
		flist = strings.Split(*funcs, ",")
	}

	if *samplePeriod != 0 {
		runSampled(file, sample.Options{
			Period: *samplePeriod, Engine: sample.EngineDBI, MaxInst: *maxInst,
			Obs: obsReg, NoCounterVirt: *noVirt, Name: fs.Arg(0), NoTrace: *notraceFlag,
		}, *pprofOut, *foldedOut, 10)
		return
	}

	reg := obsReg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rep, err := profile.RunDBI(file, profile.Options{
		Funcs: flist, Mode: parseMode(*mode), MaxInst: *maxInst, Obs: reg,
		NoCounterVirt: *noVirt, NoTrace: *notraceFlag,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Printf("exit code %d; %d instructions retired\n", rep.ExitCode, rep.TotalInsts)
	for _, name := range []string{
		"emu.dbi.translations", "emu.dbi.chain.patches", "emu.dbi.chain.hits",
		"emu.dbi.invalidations", "emu.dbi.indirect_exits",
		"emu.dbi.ibl.hits", "emu.dbi.ibl.misses",
		"emu.dbi.ibc.hits", "emu.dbi.ibc.misses", "emu.dbi.probe_removals",
		"emu.dbi.flushes", "emu.dbi.probes", "emu.dbi.deopts",
	} {
		fmt.Printf("%-24s %d\n", name, reg.Counter(name).Load())
	}
}

func cmdComponents() {
	fmt.Println("Component graph (paper Figure 2); arrows show information flow (uses):")
	comps := core.Components()
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	for _, c := range comps {
		tag := ""
		if c.Substrate {
			tag = "  [substrate]"
		}
		fmt.Printf("  %-12s %s%s\n", c.Name, c.Role, tag)
		for _, u := range c.Uses {
			fmt.Printf("               -> %s\n", u)
		}
	}
}
