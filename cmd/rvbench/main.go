// Command rvbench records the emulator's performance trajectory. It runs a
// fixed workload set — the paper's matmul on both dispatch paths, plus every
// program in the workload suite — measures wall-clock emulation rate, and
// writes the results as JSON (BENCH_emu.json at the repo root is the
// committed baseline).
//
// Usage:
//
//	rvbench [-reps N] [-out bench.json]            record a run
//	rvbench -check BENCH_emu.json [-out new.json]  regression gate
//
// In -check mode the run is compared against the baseline file: if the
// matmul trace-dispatch MIPS falls below threshold×baseline (default 0.8,
// i.e. a >20% regression), rvbench prints a per-workload diff and exits
// nonzero. Only matmul gates — the suite programs retire too few
// instructions for stable wall-clock rates — but every workload is recorded
// so trends stay visible in the artifact history. Because absolute MIPS
// tracks machine load, a run that misses the absolute gate still passes if
// its trace/slow dispatch ratio held relative to baseline: the slow path
// shares none of the trace-tier machinery, so a uniform slowdown is load,
// while an engine regression shows up in the ratio.
//
// Dispatch tiers per row: "slow" is per-instruction, "fast" is
// superblock/chained dispatch with trace compilation off (continuous with
// pre-trace baselines), "trace" is the full engine, and "dbi"/"dbi-trace"
// are the instrumented runs with traces off/on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"rvdyn/internal/asm"
	"rvdyn/internal/dbi"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// Schema is bumped when the JSON layout changes incompatibly; -check refuses
// to compare across schemas rather than misreading old baselines.
const Schema = 1

type Result struct {
	Name         string  `json:"name"`
	Dispatch     string  `json:"dispatch"` // "fast" or "slow"
	Instructions uint64  `json:"instructions"`
	WallNS       int64   `json:"wall_ns"` // best-of-reps
	MIPS         float64 `json:"mips"`
}

type Report struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Reps      int      `json:"reps"`
	Workloads []Result `json:"workloads"`
}

// gateName/gateDispatch identify the single workload the -check gate tests.
const (
	gateName     = "matmul"
	gateDispatch = "trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rvbench: ")
	reps := flag.Int("reps", 3, "repetitions per workload; best wall time wins")
	out := flag.String("out", "", "write the run's JSON report to this file")
	check := flag.String("check", "", "compare against this baseline JSON and fail on regression")
	threshold := flag.Float64("threshold", 0.8, "minimum acceptable MIPS as a fraction of baseline")
	flag.Parse()

	rep := Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Reps:      *reps,
	}

	// matmul at the BenchmarkEmulatorThroughput scale, both dispatch paths.
	mm, err := workload.BuildMatmul(24, 1, asm.Options{})
	if err != nil {
		log.Fatalf("build matmul: %v", err)
	}
	rep.Workloads = append(rep.Workloads,
		measure(gateName, gateDispatch, mm, *reps, false, false),
		measure(gateName, "fast", mm, *reps, false, true),
		measure(gateName, "slow", mm, *reps, true, true),
		measureDBI("dbi-matmul", mm, []string{"multiply", "init_matrices"}, *reps, true),
	)
	for _, p := range workload.Programs() {
		if p.Name == gateName {
			continue // already measured above, at benchmark scale
		}
		f, err := asm.Assemble(p.Source, asm.Options{})
		if err != nil {
			log.Fatalf("assemble %s: %v", p.Name, err)
		}
		rep.Workloads = append(rep.Workloads, measure(p.Name, "fast", f, *reps, false, true))
		if p.Name == "fib" {
			// fib is the indirect-branch-dense workload (every recursive
			// return is a jalr): its trace row shows how far return-heavy
			// code gets from the trace tier, and its dbi rows track the
			// inline-lookup/inline-cache path (with and without traces over
			// the translated code), where dbi-matmul mostly exercises
			// chained direct edges.
			rep.Workloads = append(rep.Workloads,
				measure(p.Name, "trace", f, *reps, false, false),
				measureDBI("dbi-fib", f, p.Funcs, *reps, true),
				measureDBI("dbi-fib", f, p.Funcs, *reps, false),
			)
		}
	}

	for _, r := range rep.Workloads {
		fmt.Printf("%-24s %-5s %12d insts %12d ns %9.2f MIPS\n",
			r.Name, r.Dispatch, r.Instructions, r.WallNS, r.MIPS)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *check != "" {
		base, err := readReport(*check)
		if err != nil {
			log.Fatalf("read baseline: %v", err)
		}
		if err := gate(base, &rep, *threshold); err != nil {
			log.Fatal(err)
		}
		fmt.Println("perf gate: OK")
	}
}

// measure runs file reps times and keeps the fastest wall-clock run. Best-of
// (not mean) is the right statistic on shared CI machines: interference only
// ever slows a run down, so the minimum is the closest observable to the
// machine's true rate.
func measure(name, dispatch string, file *elfrv.File, reps int, slow, notrace bool) Result {
	best := Result{Name: name, Dispatch: dispatch, WallNS: 1<<63 - 1}
	for i := 0; i < reps; i++ {
		cpu, err := emu.New(file, emu.P550())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		cpu.SlowDispatch = slow
		cpu.NoTrace = notrace
		start := time.Now()
		if r := cpu.Run(0); r != emu.StopExit {
			log.Fatalf("%s stopped with %v (%v)", name, r, cpu.LastTrap())
		}
		ns := time.Since(start).Nanoseconds()
		if ns <= 0 {
			ns = 1
		}
		if ns < best.WallNS {
			best.WallNS = ns
			best.Instructions = cpu.Instret
			best.MIPS = float64(cpu.Instret) / float64(ns) * 1e3
		}
	}
	return best
}

// measureDBI runs file under the dynamic binary instrumentation engine with
// call-count probes at the named function entries, so the recorded rate
// includes translation, probe execution, and engine round trips — the
// dynamic-mode overhead the static numbers omit. Not gated: the point is the
// trend of the dbi/fast ratio across the artifact history. notrace controls
// the trace tier over the translated code ("dbi" vs "dbi-trace" rows).
func measureDBI(name string, file *elfrv.File, funcs []string, reps int, notrace bool) Result {
	dispatch := "dbi-trace"
	if notrace {
		dispatch = "dbi"
	}
	best := Result{Name: name, Dispatch: dispatch, WallNS: 1<<63 - 1}
	for i := 0; i < reps; i++ {
		p, err := proc.Launch(file, emu.P550())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		p.CPU().NoTrace = notrace
		e, err := dbi.Attach(p, file, dbi.Options{})
		if err != nil {
			log.Fatalf("%s: attach: %v", name, err)
		}
		for _, fn := range funcs {
			sym, ok := file.Symbol(fn)
			if !ok {
				log.Fatalf("%s: no symbol %s", name, fn)
			}
			v := e.NewVar("bench_"+fn, 8)
			if err := e.ProbeAt(sym.Value, snippet.Increment(v)); err != nil {
				log.Fatalf("%s: probe %s: %v", name, fn, err)
			}
		}
		start := time.Now()
		ev, err := e.Continue()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if ev.Kind != proc.EventExit {
			log.Fatalf("%s stopped with %v, not exit", name, ev.Kind)
		}
		ns := time.Since(start).Nanoseconds()
		if ns <= 0 {
			ns = 1
		}
		if ns < best.WallNS {
			best.WallNS = ns
			best.Instructions = p.CPU().Instret
			best.MIPS = float64(p.CPU().Instret) / float64(ns) * 1e3
		}
	}
	return best
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %d, this rvbench speaks %d", path, r.Schema, Schema)
	}
	return &r, nil
}

func find(r *Report, name, dispatch string) *Result {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name && r.Workloads[i].Dispatch == dispatch {
			return &r.Workloads[i]
		}
	}
	return nil
}

// gate fails if the gating workload regressed below threshold×baseline,
// printing a full per-workload comparison either way.
func gate(base, cur *Report, threshold float64) error {
	fmt.Printf("\n%-24s %-5s %12s %12s %8s\n", "workload", "disp", "baseline", "current", "ratio")
	for _, b := range base.Workloads {
		c := find(cur, b.Name, b.Dispatch)
		if c == nil {
			fmt.Printf("%-24s %-5s %9.2f MIPS %12s\n", b.Name, b.Dispatch, b.MIPS, "(missing)")
			continue
		}
		fmt.Printf("%-24s %-5s %9.2f MIPS %9.2f MIPS %7.2fx\n",
			b.Name, b.Dispatch, b.MIPS, c.MIPS, c.MIPS/b.MIPS)
	}
	b := find(base, gateName, gateDispatch)
	if b == nil {
		return fmt.Errorf("baseline has no %s/%s entry to gate on", gateName, gateDispatch)
	}
	c := find(cur, gateName, gateDispatch)
	if c == nil {
		return fmt.Errorf("current run has no %s/%s entry", gateName, gateDispatch)
	}
	if c.MIPS < b.MIPS*threshold {
		// Noise-cancelled fallback: absolute MIPS moves with machine load,
		// but an engine regression hits the trace tier specifically — the
		// slow path shares none of the trace/chained dispatch machinery. If
		// the within-run trace/slow ratio held, the machine is uniformly
		// slow and the engine is fine.
		bs, cs := find(base, gateName, "slow"), find(cur, gateName, "slow")
		if bs != nil && cs != nil && bs.MIPS > 0 && cs.MIPS > 0 {
			baseRatio, curRatio := b.MIPS/bs.MIPS, c.MIPS/cs.MIPS
			if curRatio >= baseRatio*threshold {
				fmt.Printf("absolute MIPS below gate (%.2f < %.0f%% of %.2f) but the trace/slow "+
					"dispatch ratio held (%.1fx vs %.1fx baseline): machine load, not a regression\n",
					c.MIPS, threshold*100, b.MIPS, curRatio, baseRatio)
				return nil
			}
		}
		return fmt.Errorf("perf gate FAILED: %s/%s at %.2f MIPS is below %.0f%% of the %.2f MIPS baseline",
			gateName, gateDispatch, c.MIPS, threshold*100, b.MIPS)
	}
	return nil
}
