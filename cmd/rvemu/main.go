// Command rvemu executes a RISC-V ELF binary on the RV64GC emulator — the
// hardware substrate this reproduction uses in place of the paper's SiFive
// P550 board (see DESIGN.md). It reports retired instructions, model
// cycles, and virtual time.
//
// Usage:
//
//	rvemu [-model p550|x86] [-max N] [-trace] [-histo] [-slow] [-stats] prog.elf
//
// -stats prints the emulator's observability counters on exit: instructions
// retired, superblock-cache hits/builds/invalidations, chain hits/severs,
// software-TLB hit/miss per access kind, macro-op fusion counts per pair
// kind, per-number syscall counts, and the wall-clock emulation rate in
// MIPS. See README.md ("Observability & profiling") for how to read them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/profile/sample"
	"rvdyn/internal/riscv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rvemu: ")
	modelName := flag.String("model", "p550", "cost model: p550 or x86")
	maxInst := flag.Uint64("max", 0, "instruction budget (0 = unlimited)")
	trace := flag.Bool("trace", false, "print every executed instruction")
	histo := flag.Bool("histo", false, "print a per-mnemonic execution histogram (top 20)")
	slow := flag.Bool("slow", false, "force per-instruction dispatch (disable the fused block engine)")
	notrace := flag.Bool("notrace", false, "disable trace compilation of hot superblock chains (for A/B overhead runs)")
	stats := flag.Bool("stats", false, "print emulator counters and wall-clock MIPS on exit")
	pprofOut := flag.String("pprof", "", "sample the run on the virtual clock and write a gzipped pprof profile to `FILE`")
	period := flag.Uint64("period", 4096, "sampling period in virtual cycles (with -pprof)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("need exactly one ELF file")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	f, err := elfrv.Read(data)
	if err != nil {
		log.Fatal(err)
	}
	var model *emu.CostModel
	switch *modelName {
	case "p550":
		model = emu.P550()
	case "x86":
		model = emu.X86Comparator()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}
	if *pprofOut != "" {
		// The sampled path drives the run through the profiler harness
		// (stack walking needs the process layer), so the per-instruction
		// hooks don't compose with it.
		if *trace || *histo {
			log.Fatal("-pprof is incompatible with -trace and -histo")
		}
		runSampled(f, model, *pprofOut, *period, *slow, *notrace, *stats, *maxInst)
		return
	}
	cpu, err := emu.New(f, model)
	if err != nil {
		log.Fatal(err)
	}
	cpu.Stdout = os.Stdout
	cpu.Stderr = os.Stderr
	cpu.SlowDispatch = *slow
	cpu.NoTrace = *notrace
	if *trace {
		cpu.Trace = func(c *emu.CPU, inst riscv.Inst) {
			fmt.Fprintf(os.Stderr, "%#010x: %v\n", c.PC, inst)
		}
	}
	var counts map[riscv.Mnemonic]uint64
	if *histo {
		counts = make(map[riscv.Mnemonic]uint64)
		prev := cpu.Trace
		cpu.Trace = func(c *emu.CPU, inst riscv.Inst) {
			counts[inst.Mn]++
			if prev != nil {
				prev(c, inst)
			}
		}
	}
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		cpu.Obs = emu.NewMetrics(reg)
	}
	wallStart := time.Now()
	reason := cpu.Run(*maxInst)
	wall := time.Since(wallStart)
	if *stats {
		fmt.Fprint(os.Stderr, reg.String())
		mips := 0.0
		if wall > 0 {
			mips = float64(cpu.Instret) / wall.Seconds() / 1e6
		}
		fmt.Fprintf(os.Stderr, "%-44s %.1f (%.3f ms wall)\n", "emu.wallclock_mips", mips, float64(wall)/1e6)
	}
	if *histo {
		type row struct {
			mn riscv.Mnemonic
			n  uint64
		}
		var rows []row
		for mn, n := range counts {
			rows = append(rows, row{mn, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		fmt.Fprintf(os.Stderr, "instruction histogram (top 20 of %d mnemonics):\n", len(rows))
		for i, r := range rows {
			if i == 20 {
				break
			}
			fmt.Fprintf(os.Stderr, "  %-12s %10d  %5.1f%%\n", r.mn, r.n, 100*float64(r.n)/float64(cpu.Instret))
		}
	}
	fmt.Fprintf(os.Stderr, "stop: %v", reason)
	if reason == emu.StopExit {
		fmt.Fprintf(os.Stderr, " (code %d)", cpu.ExitCode)
	}
	if reason == emu.StopTrap {
		fmt.Fprintf(os.Stderr, " (%v)", cpu.LastTrap())
	}
	fmt.Fprintf(os.Stderr, "\ninstret: %d\ncycles:  %d (%s @ %d MHz)\nvirtual: %.6fs\n",
		cpu.Instret, cpu.Cycles, model.Name, model.MHz, float64(cpu.VirtualNanos())/1e9)
	if reason == emu.StopExit {
		os.Exit(cpu.ExitCode & 0x7f)
	}
	os.Exit(0)
}

// runSampled runs the binary under the virtual-clock sampling profiler on
// the chosen dispatch engine and writes the gzipped pprof profile.
func runSampled(f *elfrv.File, model *emu.CostModel, out string, period uint64, slow, notrace, stats bool, maxInst uint64) {
	eng := sample.EngineFast
	if slow {
		eng = sample.EngineSlow
	}
	var reg *obs.Registry
	if stats {
		reg = obs.NewRegistry()
	}
	prof, err := sample.Run(f, sample.Options{
		Model: model, Period: period, Engine: eng, MaxInst: maxInst, Obs: reg,
		Name: flag.Arg(0), NoTrace: notrace,
	})
	if err != nil {
		log.Fatal(err)
	}
	of, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := prof.WritePprof(of); err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	if stats {
		fmt.Fprint(os.Stderr, reg.String())
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d samples at period %d\n", out, len(prof.Samples), period)
	fmt.Fprintf(os.Stderr, "stop: exit (code %d)\ninstret: %d\ncycles:  %d (%s @ %d MHz)\nvirtual: %.6fs\n",
		prof.ExitCode, prof.TotalInsts, prof.TotalCycles, model.Name, model.MHz, float64(prof.DurationNanos)/1e9)
	os.Exit(prof.ExitCode & 0x7f)
}
