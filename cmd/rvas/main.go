// Command rvas assembles RV64GC assembly source into an ELF executable —
// the toolchain substrate this reproduction uses in place of a RISC-V gcc
// (see DESIGN.md).
//
// Usage:
//
//	rvas [-o out.elf] [-arch rv64gc] [-no-compress] input.s
//	rvas -workload matmul [-n 100] [-reps 10] -o matmul.elf
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rvas: ")
	out := flag.String("o", "a.elf", "output path")
	arch := flag.String("arch", "rv64gc", "target architecture string")
	noCompress := flag.Bool("no-compress", false, "disable compressed-instruction selection")
	noAttrs := flag.Bool("no-attributes", false, "omit the .riscv.attributes section")
	wl := flag.String("workload", "", "build a built-in workload instead of a file: matmul, jumptable, tailcall, farcall, tiny, fib, fp")
	n := flag.Int("n", workload.MatmulN, "matmul dimension")
	reps := flag.Int("reps", workload.MatmulReps, "matmul repetitions")
	flag.Parse()

	set, err := riscv.ParseArchString(*arch)
	if err != nil {
		log.Fatal(err)
	}
	opts := asm.Options{Arch: set, NoCompress: *noCompress, NoAttributes: *noAttrs}

	var src string
	switch *wl {
	case "":
		if flag.NArg() != 1 {
			log.Fatal("need exactly one input file (or -workload)")
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	case "matmul":
		src = workload.MatmulSource(*n, *reps)
	case "jumptable":
		src = workload.JumpTableSource
	case "tailcall":
		src = workload.TailCallSource
	case "farcall":
		src = workload.FarCallSource
	case "tiny":
		src = workload.TinyFuncSource
	case "fib":
		src = workload.FibSource
	case "fp":
		src = workload.FramePointerSource
	default:
		log.Fatalf("unknown workload %q", *wl)
	}

	f, err := asm.Assemble(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := f.Write()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, raw, 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: entry %#x, %d bytes, %d symbols\n", *out, f.Entry, len(raw), len(f.Symbols))
}
