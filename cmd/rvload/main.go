// Command rvload is the load-generator client for the rvdynd
// instrumentation server (rvdyn serve). It builds a payload set from the
// workload suite — half submitted as assembly source, half pre-assembled
// and submitted as ELF binaries — and drives a sustained concurrent burst
// of instrumentation requests against the server, checking three things a
// metrics scrape alone cannot:
//
//   - byte consistency: every response for the same payload must be
//     byte-identical (a torn cache entry or non-deterministic rewrite shows
//     up here);
//   - cache effectiveness: the observed hit rate over the burst, gated by
//     -min-hit-rate for CI;
//   - tail latency: client-side cold/warm latency quantiles.
//
// Exit status is nonzero on any transport error, byte inconsistency, or a
// hit rate below the gate.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

var (
	addrFlag    = flag.String("addr", "127.0.0.1:8642", "server address")
	nFlag       = flag.Int("n", 120, "total requests to send")
	cFlag       = flag.Int("c", 4, "concurrent client workers")
	workFlag    = flag.String("workloads", "", "comma-separated workload names (default: all)")
	minHitFlag  = flag.Float64("min-hit-rate", -1, "fail if the cache hit(+coalesced) rate is below this fraction")
	metricsOut  = flag.String("metrics-out", "", "scrape /metrics into `FILE` after the burst")
	promOut     = flag.String("prom-out", "", "scrape /metrics in Prometheus exposition format into `FILE` after the burst, validating that it parses")
	timeoutFlag = flag.Duration("timeout", 30*time.Second, "per-request timeout")
)

// payload is one prebuilt multipart body, reused verbatim so every
// submission of it is content-identical (and therefore cacheable).
type payload struct {
	name        string
	body        []byte
	contentType string
}

func buildPayloads() []payload {
	want := map[string]bool{}
	if *workFlag != "" {
		for _, n := range strings.Split(*workFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	var out []payload
	for i, p := range workload.Programs() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		spec := fmt.Sprintf(`{"name":%q,"funcs":[%s]}`, p.Name, quoteList(p.Funcs))
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		mw.WriteField("spec", spec)
		if i%2 == 0 {
			// Binary submission: assemble locally, upload the ELF.
			f, err := asm.Assemble(p.Source, asm.Options{})
			if err != nil {
				log.Fatalf("assemble %s: %v", p.Name, err)
			}
			raw, err := f.Write()
			if err != nil {
				log.Fatalf("serialize %s: %v", p.Name, err)
			}
			fw, _ := mw.CreateFormFile("binary", p.Name+".elf")
			fw.Write(raw)
		} else {
			mw.WriteField("source", p.Source)
		}
		mw.Close()
		out = append(out, payload{name: p.Name, body: buf.Bytes(), contentType: mw.FormDataContentType()})
	}
	if len(out) == 0 {
		log.Fatalf("no payloads selected (workloads %q)", *workFlag)
	}
	return out
}

func quoteList(ss []string) string {
	qs := make([]string, len(ss))
	for i, s := range ss {
		qs[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(qs, ",")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rvload: ")
	flag.Parse()

	payloads := buildPayloads()
	base := "http://" + *addrFlag
	client := &http.Client{Timeout: *timeoutFlag}

	var (
		hits, coalesced, misses, partials, errors atomic.Int64
		latCold                                   = obs.NewHistogram(obs.ExpBuckets(1000, 2, 25))
		latWarm                                   = obs.NewHistogram(obs.ExpBuckets(1000, 2, 25))
		mu                                        sync.Mutex
		firstHash                                 = map[string][32]byte{}
		inconsistent                              atomic.Int64
	)

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < *cFlag; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *nFlag {
					return
				}
				p := payloads[i%len(payloads)]
				t0 := time.Now()
				req, err := http.NewRequest("POST", base+"/v1/instrument", bytes.NewReader(p.body))
				if err != nil {
					log.Print(err)
					errors.Add(1)
					continue
				}
				req.Header.Set("Content-Type", p.contentType)
				resp, err := client.Do(req)
				if err != nil {
					log.Print(err)
					errors.Add(1)
					continue
				}
				elf, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					log.Printf("%s: status %d: %s", p.name, resp.StatusCode, strings.TrimSpace(string(elf)))
					errors.Add(1)
					continue
				}
				elapsed := uint64(time.Since(t0).Nanoseconds())
				switch state := resp.Header.Get("X-Rvdynd-Cache"); {
				case state == "hit":
					hits.Add(1)
					latWarm.Observe(elapsed)
				case state == "coalesced":
					coalesced.Add(1)
					latWarm.Observe(elapsed)
				case strings.HasPrefix(state, "partial:"):
					partials.Add(1)
					latCold.Observe(elapsed)
				default:
					misses.Add(1)
					latCold.Observe(elapsed)
				}
				sum := sha256.Sum256(elf)
				mu.Lock()
				if prev, ok := firstHash[p.name]; !ok {
					firstHash[p.name] = sum
				} else if prev != sum {
					inconsistent.Add(1)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	total := hits.Load() + coalesced.Load() + misses.Load() + partials.Load()
	fmt.Printf("rvload: %d requests (%d payloads) in %.3fs  (%.1f req/s, %d workers)\n",
		total+errors.Load(), len(payloads), wall.Seconds(), float64(total)/wall.Seconds(), *cFlag)
	fmt.Printf("cache:  %d hit, %d coalesced, %d partial, %d miss", hits.Load(), coalesced.Load(), partials.Load(), misses.Load())
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(hits.Load()+coalesced.Load()) / float64(total)
		fmt.Printf("  (%.1f%% warm)", 100*hitRate)
	}
	fmt.Println()
	printLatency := func(name string, h *obs.Histogram) {
		s := h.Summary()
		if s.Count == 0 {
			return
		}
		fmt.Printf("%s latency: p50 %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms  (n=%d)\n",
			name, s.P50/1e6, s.P90/1e6, s.P99/1e6, float64(s.Max)/1e6, s.Count)
	}
	printLatency("cold", latCold)
	printLatency("warm", latWarm)
	if n := inconsistent.Load(); n > 0 {
		fmt.Printf("BYTE INCONSISTENCY: %d responses differed from the first response for the same payload\n", n)
	} else {
		fmt.Printf("byte-consistency: all responses identical per payload\n")
	}

	if *metricsOut != "" {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			log.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote server metrics to %s\n", *metricsOut)
	}

	if *promOut != "" {
		// Scrape the way Prometheus would: negotiate the exposition format
		// via the Accept header, then require the body to parse cleanly.
		req, err := http.NewRequest("GET", base+"/metrics", nil)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Accept", "text/plain;version=0.0.4")
		resp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			log.Fatalf("prometheus scrape: Content-Type %q, want %q", ct, obs.PromContentType)
		}
		fams, err := obs.ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("prometheus scrape does not parse: %v", err)
		}
		if err := os.WriteFile(*promOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote prometheus exposition to %s (%d metric families)\n", *promOut, len(fams))
	}

	fail := false
	if errors.Load() > 0 {
		log.Printf("%d request errors", errors.Load())
		fail = true
	}
	if inconsistent.Load() > 0 {
		log.Print("byte inconsistency detected")
		fail = true
	}
	if *minHitFlag >= 0 && hitRate < *minHitFlag {
		log.Printf("hit rate %.3f below gate %.3f", hitRate, *minHitFlag)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
