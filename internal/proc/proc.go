// Package proc is the ProcControlAPI analog (paper Section 3.2.6): an
// OS-independent debugger interface over running processes — create or
// attach, read and write memory and registers, insert breakpoints, continue,
// and single-step.
//
// On Linux/RISC-V the paper found ptrace's single-step unimplemented,
// forcing ProcControlAPI to emulate stepping with breakpoints; this
// implementation is faithful to that design: Step plants temporary
// breakpoints on every possible successor of the current instruction and
// resumes, rather than asking the "hardware" (the emulator) to step. The
// substrate underneath is the emu package instead of ptrace + /proc, a
// substitution recorded in DESIGN.md.
package proc

import (
	"fmt"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/riscv"
)

// Metrics holds the process-control counters. The zero value (nil handles)
// disables collection; it is embedded by value so a Process never branches
// on enablement — nil counters discard increments.
type Metrics struct {
	// BreakpointHits counts breakpoint notifications (permanent breakpoints
	// reaching notify, whether or not a callback resumed execution).
	BreakpointHits *obs.Counter
	// SingleSteps counts software single-steps — each one is a plant/restore
	// patch cycle, the overhead the paper's Section 3.2.6 calls out.
	SingleSteps *obs.Counter
}

// NewMetrics resolves the proc counters in r.
func NewMetrics(r *obs.Registry) Metrics {
	return Metrics{
		BreakpointHits: r.Counter("proc.breakpoint_hits"),
		SingleSteps:    r.Counter("proc.single_steps"),
	}
}

// EventKind says why the process stopped.
type EventKind int

const (
	EventBreakpoint EventKind = iota
	EventExit
	EventTrap
	EventBudget    // instruction budget exhausted (emulation artifact)
	EventCodeWrite // the process stored into the armed code-watch range
)

func (k EventKind) String() string {
	switch k {
	case EventBreakpoint:
		return "breakpoint"
	case EventExit:
		return "exit"
	case EventTrap:
		return "trap"
	case EventBudget:
		return "budget"
	case EventCodeWrite:
		return "code-write"
	}
	return "?"
}

// Event is one stop notification.
type Event struct {
	Kind     EventKind
	Addr     uint64 // breakpoint address, or the written address for EventCodeWrite
	Len      uint64 // span of the write for EventCodeWrite
	ExitCode int
	Err      error
}

// Breakpoint is one software breakpoint (an ebreak patched over the
// original encoding, sized to the original instruction).
type Breakpoint struct {
	Addr     uint64
	HitCount uint64
	// Callback, when set, runs on every hit during Continue; returning
	// false reports the stop to the caller instead of auto-resuming.
	Callback func(p *Process, bp *Breakpoint) bool

	orig    []byte // the original bytes the patch replaced
	patch   []byte // the planted ebreak encoding, same length as orig
	enabled bool
	temp    bool
}

// Process is one controlled process.
type Process struct {
	cpu  *emu.CPU
	file *elfrv.File

	bps map[uint64]*Breakpoint

	// Steps counts software single-steps taken (each costs a pair of
	// memory patches — the overhead the paper warns about).
	Steps uint64

	// Obs receives breakpoint-hit and single-step counters; the zero value
	// discards them. Set it with NewMetrics to enable collection.
	Obs Metrics
}

// Launch creates a process from a binary and leaves it stopped at the entry
// point (the first dynamic-instrumentation form of Figure 1).
func Launch(f *elfrv.File, model *emu.CostModel) (*Process, error) {
	cpu, err := emu.New(f, model)
	if err != nil {
		return nil, err
	}
	return &Process{cpu: cpu, file: f, bps: map[uint64]*Breakpoint{}}, nil
}

// Attach wraps an already-running CPU (the second dynamic-instrumentation
// form of Figure 1: attaching to a live process wherever it happens to be).
func Attach(cpu *emu.CPU, f *elfrv.File) *Process {
	return &Process{cpu: cpu, file: f, bps: map[uint64]*Breakpoint{}}
}

// CPU exposes the underlying hart (registers, counters). Tools normally use
// the accessor methods instead.
func (p *Process) CPU() *emu.CPU { return p.cpu }

// PC returns the current program counter.
func (p *Process) PC() uint64 { return p.cpu.PC }

// SetPC redirects execution (used by trap-based instrumentation).
func (p *Process) SetPC(pc uint64) { p.cpu.PC = pc }

// GetReg reads an integer or float register.
func (p *Process) GetReg(r riscv.Reg) uint64 {
	switch {
	case r.IsX():
		return p.cpu.X[r]
	case r.IsF():
		return p.cpu.F[r.Num()]
	case r == riscv.RegPC:
		return p.cpu.PC
	}
	return 0
}

// SetReg writes a register.
func (p *Process) SetReg(r riscv.Reg, v uint64) {
	switch {
	case r.IsX() && r != riscv.X0:
		p.cpu.X[r] = v
	case r.IsF():
		p.cpu.F[r.Num()] = v
	case r == riscv.RegPC:
		p.cpu.PC = v
	}
}

// ReadMem reads process memory, breakpoint-transparently: wherever a live
// breakpoint patch overlaps the read, the saved original bytes are returned
// instead of the planted ebreak — clients that disassemble, checksum, or
// translate code through the debugger never see the patches (the view ptrace
// PEEKTEXT famously does *not* give you).
func (p *Process) ReadMem(addr uint64, n int) ([]byte, error) {
	b, err := p.cpu.ReadMem(addr, n)
	if err != nil {
		return nil, err
	}
	end := addr + uint64(n)
	for _, bp := range p.bps {
		if !bp.enabled {
			continue
		}
		lo, hi := bp.Addr, bp.Addr+uint64(len(bp.orig))
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			copy(b[lo-addr:hi-addr], bp.orig[lo-bp.Addr:hi-bp.Addr])
		}
	}
	return b, nil
}

// WriteMem writes process memory (keeping the target's instruction cache
// coherent, as ptrace pokes do), breakpoint-transparently: client bytes that
// overlap a live breakpoint are merged into the breakpoint's saved original
// bytes — so RemoveBreakpoint restores what the client wrote, not stale
// pre-plant bytes — while the planted ebreak stays live in memory.
func (p *Process) WriteMem(addr uint64, b []byte) error {
	end := addr + uint64(len(b))
	var buf []byte // copy-on-write: never mutate the caller's slice
	for _, bp := range p.bps {
		if !bp.enabled {
			continue
		}
		lo, hi := bp.Addr, bp.Addr+uint64(len(bp.orig))
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		if buf == nil {
			buf = append([]byte(nil), b...)
		}
		copy(bp.orig[lo-bp.Addr:hi-bp.Addr], b[lo-addr:hi-addr])
		copy(buf[lo-addr:hi-addr], bp.patch[lo-bp.Addr:hi-bp.Addr])
	}
	if buf != nil {
		b = buf
	}
	return p.cpu.WriteMem(addr, b)
}

// MapRegion makes fresh zeroed memory available in the process (the
// equivalent of the mutator mmapping patch space into the mutatee).
func (p *Process) MapRegion(addr, size uint64) {
	p.cpu.Mem.Map(addr, size)
}

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.cpu.Exited }

// ExitCode returns the exit status after Exited.
func (p *Process) ExitCode() int { return p.cpu.ExitCode }

// InsertBreakpoint plants a breakpoint at addr. The patch is sized to the
// original instruction (2-byte c.ebreak over compressed encodings so the
// following instruction is untouched).
func (p *Process) InsertBreakpoint(addr uint64) (*Breakpoint, error) {
	if bp, ok := p.bps[addr]; ok {
		return bp, nil
	}
	bp, err := p.plant(addr, false)
	if err != nil {
		return nil, err
	}
	p.bps[addr] = bp
	return bp, nil
}

func (p *Process) plant(addr uint64, temp bool) (*Breakpoint, error) {
	// Reject a plant whose patch would overlap a live breakpoint's patch:
	// writing a second ebreak into the middle of (or across) an existing one
	// corrupts both restore paths. Exact-address duplicates are deduped by
	// InsertBreakpoint before plant is reached.
	for _, bp := range p.bps {
		if bp.enabled && addr < bp.Addr+uint64(len(bp.orig)) && addr+2 > bp.Addr {
			return nil, fmt.Errorf("proc: breakpoint at %#x overlaps live breakpoint at %#x", addr, bp.Addr)
		}
	}
	// Reads go through the breakpoint-transparent path so the saved bytes
	// are the program's, never a neighboring patch.
	head, err := p.ReadMem(addr, 2)
	if err != nil {
		return nil, fmt.Errorf("proc: breakpoint at %#x: %w", addr, err)
	}
	size := 2
	if head[0]&3 == 3 {
		size = 4
	}
	// A 4-byte instruction whose second parcel is unmapped (tail of a mapped
	// region) fails here, before any byte is patched.
	orig, err := p.ReadMem(addr, size)
	if err != nil {
		return nil, fmt.Errorf("proc: breakpoint at %#x: %w", addr, err)
	}
	if _, err := riscv.Decode(orig, addr); err != nil {
		return nil, fmt.Errorf("proc: breakpoint at %#x: not an instruction: %w", addr, err)
	}
	if p.midInstruction(addr) {
		return nil, fmt.Errorf("proc: breakpoint at %#x: mid-instruction (second parcel of a 4-byte instruction)", addr)
	}
	var patch []byte
	if size == 2 {
		patch = []byte{0x02, 0x90} // c.ebreak
	} else {
		w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
		patch = []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	}
	if err := p.cpu.WriteMem(addr, patch); err != nil {
		return nil, err
	}
	return &Breakpoint{Addr: addr, orig: orig, patch: patch, enabled: true, temp: temp}, nil
}

// midInstruction reports whether addr falls strictly inside an instruction
// of the executable image. RISC-V instruction lengths are self-describing
// (low two bits of the first parcel), so a linear sweep from the nearest
// preceding symbol — always an instruction boundary — in the containing
// executable section settles alignment. Addresses outside the image's
// executable sections (runtime-mapped trampolines, JIT regions) are not
// checked: the image carries no boundary information for them.
func (p *Process) midInstruction(addr uint64) bool {
	if p.file == nil {
		return false
	}
	var sec *elfrv.Section
	for _, s := range p.file.Sections {
		if s.Flags&elfrv.SHFAlloc != 0 && s.Flags&elfrv.SHFExecinstr != 0 &&
			addr >= s.Addr && addr < s.Addr+s.Size() {
			sec = s
			break
		}
	}
	if sec == nil {
		return false
	}
	start := sec.Addr
	for _, sym := range p.file.Symbols {
		if sym.Value > start && sym.Value <= addr && sym.Value < sec.Addr+sec.Size() {
			start = sym.Value
		}
	}
	// One breakpoint-masked read of the whole span, then walk parcel lengths.
	span, err := p.ReadMem(start, int(addr-start))
	if err != nil {
		return false // unreadable stream: leave the decision to the decode check
	}
	for off := 0; off < len(span); {
		if span[off]&3 == 3 {
			off += 4
		} else {
			off += 2
		}
		if off > len(span) {
			return true // the instruction at the last boundary covers addr
		}
	}
	return false
}

// RemoveBreakpoint restores the original bytes.
func (p *Process) RemoveBreakpoint(bp *Breakpoint) error {
	if !bp.enabled {
		return nil
	}
	if err := p.cpu.WriteMem(bp.Addr, bp.orig); err != nil {
		return err
	}
	bp.enabled = false
	delete(p.bps, bp.Addr)
	return nil
}

// disable/enable toggle the patch without forgetting the breakpoint.
func (p *Process) disable(bp *Breakpoint) error {
	if !bp.enabled {
		return nil
	}
	bp.enabled = false
	return p.cpu.WriteMem(bp.Addr, bp.orig)
}

func (p *Process) enable(bp *Breakpoint) error {
	if bp.enabled {
		return nil
	}
	nb, err := p.plant(bp.Addr, bp.temp)
	if err != nil {
		return err
	}
	bp.orig = nb.orig
	bp.enabled = true
	return nil
}

// successors computes every address execution can reach after the
// instruction at pc, reading registers for indirect targets. This is the
// core of breakpoint-emulated single-stepping.
func (p *Process) successors(pc uint64) ([]uint64, error) {
	// Breakpoint-masked reads: stepping from a PC near another live
	// breakpoint must decode the original instruction, not the patch.
	raw, err := p.ReadMem(pc, 4)
	if err != nil {
		raw, err = p.ReadMem(pc, 2)
		if err != nil {
			return nil, err
		}
	}
	inst, err := riscv.Decode(raw, pc)
	if err != nil {
		return nil, fmt.Errorf("proc: cannot decode at %#x: %w", pc, err)
	}
	switch inst.Cat() {
	case riscv.CatJAL:
		return []uint64{inst.Addr + uint64(inst.Imm)}, nil
	case riscv.CatJALR:
		tgt := (p.cpu.X[inst.Rs1&31] + uint64(inst.Imm)) &^ 1
		return []uint64{tgt}, nil
	case riscv.CatBranch:
		return []uint64{inst.Next(), inst.Addr + uint64(inst.Imm)}, nil
	}
	return []uint64{inst.Next()}, nil
}

// StepInst executes exactly one instruction using the software single-step
// protocol: temporarily restore the instruction under any breakpoint at PC,
// plant temporary breakpoints at every successor, resume, then undo.
func (p *Process) StepInst() (Event, error) {
	pc := p.cpu.PC
	if p.cpu.Exited {
		return Event{Kind: EventExit, ExitCode: p.cpu.ExitCode}, nil
	}
	under := p.bps[pc]
	if under != nil {
		if err := p.disable(under); err != nil {
			return Event{}, err
		}
	}
	succs, err := p.successors(pc)
	if err != nil {
		if under != nil {
			p.enable(under)
		}
		return Event{}, err
	}
	var temps []*Breakpoint
	cleanup := func() error {
		var first error
		for _, t := range temps {
			if err := p.disable(t); err != nil && first == nil {
				first = err
			}
		}
		if under != nil {
			if err := p.enable(under); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, s := range succs {
		if s == pc {
			continue // self-loop: the permanent breakpoint handles it
		}
		if existing, ok := p.bps[s]; ok && existing.enabled {
			continue // already trapped
		}
		t, err := p.plant(s, true)
		if err != nil {
			// Successor outside mapped memory (e.g. a wild jalr): let the
			// run trap naturally instead.
			continue
		}
		temps = append(temps, t)
	}
	p.Steps++
	p.Obs.SingleSteps.Inc()

	reason := p.cpu.Run(0)
	if err := cleanup(); err != nil {
		return Event{}, err
	}
	switch reason {
	case emu.StopExit:
		return Event{Kind: EventExit, ExitCode: p.cpu.ExitCode}, nil
	case emu.StopBreakpoint:
		return Event{Kind: EventBreakpoint, Addr: p.cpu.PC}, nil
	case emu.StopTrap:
		return Event{Kind: EventTrap, Err: p.cpu.LastTrap()}, nil
	case emu.StopCodeWrite:
		addr, n := p.cpu.CodeWrite()
		return Event{Kind: EventCodeWrite, Addr: addr, Len: n}, nil
	}
	return Event{Kind: EventBudget}, nil
}

// Continue resumes until a non-callback breakpoint, exit, or trap. Hits on
// breakpoints with callbacks invoke the callback, step over the site, and
// keep running while the callback returns true.
func (p *Process) Continue() (Event, error) {
	return p.run(0)
}

// ContinueBudget is Continue with an instruction budget (0 = unlimited).
func (p *Process) ContinueBudget(maxInst uint64) (Event, error) {
	return p.run(maxInst)
}

func (p *Process) run(budget uint64) (Event, error) {
	for {
		if p.cpu.Exited {
			return Event{Kind: EventExit, ExitCode: p.cpu.ExitCode}, nil
		}
		// If stopped on a breakpoint, step over it first.
		if bp, ok := p.bps[p.cpu.PC]; ok && bp.enabled {
			ev, err := p.StepInst()
			if err != nil {
				return Event{}, err
			}
			if ev.Kind != EventBreakpoint {
				return ev, nil
			}
			// Fall through: possibly stopped at another breakpoint.
			if next, ok := p.bps[p.cpu.PC]; ok {
				if !p.notify(next) {
					return Event{Kind: EventBreakpoint, Addr: p.cpu.PC}, nil
				}
				continue
			}
			continue
		}
		reason := p.cpu.Run(budget)
		switch reason {
		case emu.StopExit:
			return Event{Kind: EventExit, ExitCode: p.cpu.ExitCode}, nil
		case emu.StopMaxInst:
			return Event{Kind: EventBudget}, nil
		case emu.StopTrap:
			return Event{Kind: EventTrap, Err: p.cpu.LastTrap()}, nil
		case emu.StopCodeWrite:
			addr, n := p.cpu.CodeWrite()
			return Event{Kind: EventCodeWrite, Addr: addr, Len: n}, nil
		case emu.StopBreakpoint:
			bp, ok := p.bps[p.cpu.PC]
			if !ok {
				// An ebreak we did not plant (e.g. the mutatee's own, or a
				// trap-rung patch): report it.
				return Event{Kind: EventBreakpoint, Addr: p.cpu.PC}, nil
			}
			if !p.notify(bp) {
				return Event{Kind: EventBreakpoint, Addr: p.cpu.PC}, nil
			}
			// Callback consumed the hit: loop resumes via step-over.
		}
	}
}

// notify runs the breakpoint bookkeeping and callback; reports whether
// execution should auto-resume.
func (p *Process) notify(bp *Breakpoint) bool {
	bp.HitCount++
	p.Obs.BreakpointHits.Inc()
	if bp.Callback == nil {
		return false
	}
	return bp.Callback(p, bp)
}
