package proc

import (
	"testing"

	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// TestProcMetrics checks the process-control counters: breakpoint hits match
// the breakpoint's own HitCount, and single-steps match Steps — with the
// zero-value Metrics (no registry) staying silent and harmless.
func TestProcMetrics(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.Obs = NewMetrics(reg)

	fib, _ := f.Symbol("fib")
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	bp.Callback = func(*Process, *Breakpoint) bool { return true } // auto-resume
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventExit {
		t.Fatalf("event = %+v, want exit", ev)
	}
	if got := reg.Counter("proc.breakpoint_hits").Load(); got != bp.HitCount {
		t.Errorf("proc.breakpoint_hits = %d, HitCount = %d", got, bp.HitCount)
	}
	if bp.HitCount == 0 {
		t.Error("breakpoint never hit")
	}
	if got := reg.Counter("proc.single_steps").Load(); got != p.Steps {
		t.Errorf("proc.single_steps = %d, Steps = %d", got, p.Steps)
	}
	if p.Steps == 0 {
		t.Error("no single-steps recorded (step-over should use them)")
	}
}

// TestProcMetricsZeroValue: a Process without NewMetrics must run exactly as
// before — the zero-value Metrics discards increments.
func TestProcMetricsZeroValue(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := f.Symbol("fib")
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	bp.Callback = func(*Process, *Breakpoint) bool { return true }
	if ev, err := p.Continue(); err != nil || ev.Kind != EventExit {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	if ev := p.Steps; ev == 0 {
		t.Error("Steps not maintained without metrics")
	}
}
