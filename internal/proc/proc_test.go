package proc

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

func build(t *testing.T, src string) *elfrv.File {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return f
}

func TestLaunchRunToExit(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventExit || ev.ExitCode != workload.FibExpected {
		t.Errorf("event = %+v", ev)
	}
	if !p.Exited() {
		t.Error("Exited() false after exit event")
	}
}

func TestBreakpointHitAndResume(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := f.Symbol("fib")
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventBreakpoint || ev.Addr != fib.Value {
		t.Fatalf("first stop = %+v", ev)
	}
	if p.PC() != fib.Value {
		t.Fatalf("pc = %#x, want %#x", p.PC(), fib.Value)
	}
	if p.GetReg(riscv.RegA0) != 12 {
		t.Errorf("a0 at first fib entry = %d, want 12", p.GetReg(riscv.RegA0))
	}
	// Resume until exit, counting hits via repeated Continue.
	hits := uint64(1)
	for {
		ev, err = p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventExit {
			break
		}
		if ev.Kind != EventBreakpoint {
			t.Fatalf("unexpected event %+v", ev)
		}
		hits++
	}
	// fib(12) makes 465 calls total.
	if hits != 465 {
		t.Errorf("breakpoint hits = %d, want 465", hits)
	}
	if bp.HitCount != 0 {
		// HitCount counts callback-path hits; manual Continue loops see the
		// stops directly.
		t.Logf("HitCount = %d (callback-path only)", bp.HitCount)
	}
	if ev.ExitCode != workload.FibExpected {
		t.Errorf("exit = %d", ev.ExitCode)
	}
}

func TestBreakpointCallbackAutoResume(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := f.Symbol("fib")
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	bp.Callback = func(*Process, *Breakpoint) bool {
		calls++
		return true
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("event = %+v", ev)
	}
	if calls != 465 {
		t.Errorf("callback ran %d times, want 465", calls)
	}
	if bp.HitCount != 465 {
		t.Errorf("HitCount = %d", bp.HitCount)
	}
}

func TestSoftwareSingleStep(t *testing.T) {
	// Step one instruction at a time through a branchy function and verify
	// the PC trail matches a straight emulator trace.
	src := `
	.text
	.globl _start
_start:
	li t0, 3
	li t1, 0
ssloop:
	add t1, t1, t0
	addi t0, t0, -1
	bnez t0, ssloop
	mv a0, t1
	li a7, 93
	ecall
`
	f := build(t, src)

	// Reference trace from the raw emulator.
	ref, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	ref.Trace = func(c *emu.CPU, _ riscv.Inst) { want = append(want, c.PC) }
	ref.Run(0)

	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for !p.Exited() {
		got = append(got, p.PC())
		ev, err := p.StepInst()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventExit {
			break
		}
		if ev.Kind == EventTrap {
			t.Fatalf("trap during step: %v", ev.Err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("stepped %d instructions, trace has %d\ngot:  %#x\nwant: %#x", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: pc %#x, want %#x", i, got[i], want[i])
		}
	}
	if p.ExitCode() != 6 {
		t.Errorf("exit = %d, want 6", p.ExitCode())
	}
	if p.Steps == 0 {
		t.Error("software single-step counter never advanced")
	}
}

func TestStepOverBreakpointPreservesSemantics(t *testing.T) {
	// A breakpoint inside a hot loop must not change the result even though
	// every iteration crosses it.
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := f.Symbol("fib")
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	bp.Callback = func(*Process, *Breakpoint) bool { return true }
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.ExitCode != workload.FibExpected {
		t.Errorf("exit with breakpoints = %d, want %d", ev.ExitCode, workload.FibExpected)
	}
}

func TestReadWriteMemAndRegs(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	// Registers.
	p.SetReg(riscv.RegT3, 0xabcdef)
	if got := p.GetReg(riscv.RegT3); got != 0xabcdef {
		t.Errorf("t3 = %#x", got)
	}
	p.SetReg(riscv.X0, 99)
	if p.GetReg(riscv.X0) != 0 {
		t.Error("x0 written")
	}
	// Memory.
	sp := p.GetReg(riscv.RegSP)
	if err := p.WriteMem(sp-8, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	b, err := p.ReadMem(sp-8, 8)
	if err != nil || b[0] != 1 || b[7] != 8 {
		t.Errorf("mem round trip: %v %v", b, err)
	}
	if _, err := p.ReadMem(0xdead00000000, 8); err == nil {
		t.Error("read of unmapped memory succeeded")
	}
}

func TestRemoveBreakpoint(t *testing.T) {
	f := build(t, workload.FibSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	fib, _ := f.Symbol("fib")
	orig, _ := p.ReadMem(fib.Value, 4)
	bp, err := p.InsertBreakpoint(fib.Value)
	if err != nil {
		t.Fatal(err)
	}
	// The raw CPU view shows the planted patch; the debugger view (ReadMem)
	// is breakpoint-transparent and still shows the original bytes.
	patched, _ := p.CPU().ReadMem(fib.Value, 4)
	if string(patched) == string(orig) {
		t.Fatal("breakpoint did not change memory")
	}
	masked, _ := p.ReadMem(fib.Value, 4)
	if string(masked) != string(orig) {
		t.Fatalf("ReadMem not breakpoint-transparent: %x != %x", masked, orig)
	}
	if err := p.RemoveBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	restored, _ := p.ReadMem(fib.Value, 4)
	if string(restored) != string(orig) {
		t.Fatal("breakpoint removal did not restore bytes")
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventExit {
		t.Errorf("event after removal = %+v", ev)
	}
}

func TestBreakpointOnCompressedInstruction(t *testing.T) {
	// tiny's ret is a 2-byte c.jr; the breakpoint must patch exactly 2
	// bytes (c.ebreak) to avoid clobbering the next instruction.
	f := build(t, workload.TinyFuncSource)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	tiny, _ := f.Symbol("tiny")
	if _, err := p.InsertBreakpoint(tiny.Value); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventBreakpoint || ev.Addr != tiny.Value {
		t.Fatalf("event = %+v", ev)
	}
	// Resume to completion; the program result must be intact.
	for ev.Kind == EventBreakpoint {
		ev, err = p.Continue()
		if err != nil {
			t.Fatal(err)
		}
	}
	if ev.ExitCode != workload.TinyFuncExpected {
		t.Errorf("exit = %d, want %d", ev.ExitCode, workload.TinyFuncExpected)
	}
}

func TestAttachForm(t *testing.T) {
	// Run half the program raw, then attach mid-flight (Figure 1, right).
	f := build(t, workload.FibSource)
	cpu, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(1000) // progress into the computation
	if cpu.Exited {
		t.Fatal("program finished before attach")
	}
	p := Attach(cpu, f)
	fib, _ := f.Symbol("fib")
	if _, err := p.InsertBreakpoint(fib.Value); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventBreakpoint {
		t.Fatalf("attached process never hit breakpoint: %+v", ev)
	}
	// Finish under control: semantics must be unaffected by the attach.
	for ev.Kind == EventBreakpoint {
		ev, err = p.Continue()
		if err != nil {
			t.Fatal(err)
		}
	}
	if ev.Kind != EventExit || ev.ExitCode != workload.FibExpected {
		t.Errorf("final event = %+v", ev)
	}
}

func TestContinueBudget(t *testing.T) {
	src := "\t.text\n_start:\n\tj _start\n"
	f := build(t, src)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.ContinueBudget(1000)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventBudget {
		t.Errorf("event = %+v, want budget", ev)
	}
}

// TestSuccessorsViaStep: single-stepping each control-flow shape lands on
// exactly the architecturally-correct successor.
func TestSuccessorsViaStep(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li t0, 1          # plain: next
	beqz t0, skip1    # not taken: next
	li t1, 2
skip1:
	beqz zero, skip2  # taken: target
	li t2, 3          # skipped
skip2:
	j after           # jal: target
	li t3, 4          # skipped
after:
	la t4, indirect
	jr t4             # jalr: register target
	li t5, 5          # skipped
indirect:
	li a0, 0
	li a7, 93
	ecall
`
	f := build(t, src)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	for !p.Exited() {
		ev, err := p.StepInst()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventExit {
			break
		}
		if ev.Kind != EventBreakpoint {
			t.Fatalf("event %+v", ev)
		}
	}
	// None of the skipped instructions may have executed.
	for _, r := range []riscv.Reg{riscv.RegT2, riscv.RegT3, riscv.RegT5} {
		if p.GetReg(r) != 0 {
			t.Errorf("skipped instruction executed: %v = %d", r, p.GetReg(r))
		}
	}
	if p.GetReg(riscv.RegT1) != 2 {
		t.Errorf("fallthrough instruction missed: t1 = %d", p.GetReg(riscv.RegT1))
	}
	if p.ExitCode() != 0 {
		t.Errorf("exit = %d", p.ExitCode())
	}
}

// TestBreakpointFastSlowParity: breakpoints planted while the emulator runs
// the fused-dispatch fast path must fire exactly as they do under
// per-instruction dispatch. Planting an ebreak rewrites cached code, so this
// exercises the block cache's invalidation from the debugger side: the
// rebuilt block must terminate at the breakpoint, and disable/re-enable on
// resume must keep the two paths in lockstep.
func TestBreakpointFastSlowParity(t *testing.T) {
	src := workload.MatmulSource(8, 2)
	run := func(slowDispatch bool) (hits int, cpu *emu.CPU) {
		f := build(t, src)
		p, err := Launch(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		p.CPU().SlowDispatch = slowDispatch
		mul, ok := f.Symbol("multiply")
		if !ok {
			t.Fatal("no multiply symbol")
		}
		bp, err := p.InsertBreakpoint(mul.Value)
		if err != nil {
			t.Fatal(err)
		}
		bp.Callback = func(*Process, *Breakpoint) bool {
			hits++
			return true
		}
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != EventExit || ev.ExitCode != 0 {
			t.Fatalf("event = %+v", ev)
		}
		return hits, p.CPU()
	}
	fastHits, fast := run(false)
	slowHits, slow := run(true)
	if fastHits != slowHits {
		t.Errorf("breakpoint hits: fast %d, slow %d", fastHits, slowHits)
	}
	if fastHits == 0 {
		t.Error("breakpoint never hit")
	}
	if fast.Cycles != slow.Cycles || fast.Instret != slow.Instret {
		t.Errorf("counters: fast (%d cycles, %d instret), slow (%d, %d)",
			fast.Cycles, fast.Instret, slow.Cycles, slow.Instret)
	}
	for i := range fast.X {
		if fast.X[i] != slow.X[i] {
			t.Errorf("x%d: fast %#x, slow %#x", i, fast.X[i], slow.X[i])
		}
	}
}
