package proc

import (
	"bytes"
	"strings"
	"testing"

	"rvdyn/internal/emu"
)

// transparencyProgram pins one 2-byte site (c.mv at site2) and one 4-byte
// site (the uncompressible xor at site4) with labels, so the table below can
// plant breakpoints of both patch widths at known addresses.
const transparencyProgram = `
	.text
_start:
	li t0, 1
	li t1, 2
site2:
	mv t2, t0
site4:
	xor t3, t0, t1
	add a0, t2, t3
	li a7, 93
	ecall
`

// TestBreakpointTransparentReadWrite is the regression test for the
// ReadMem/WriteMem transparency bugs: reads across a live breakpoint must
// return the original program bytes, and client writes overlapping the patch
// must land in the saved bytes (so removal restores the *client's* code) while
// the ebreak stays live in memory.
func TestBreakpointTransparentReadWrite(t *testing.T) {
	f := build(t, transparencyProgram)
	cases := []struct {
		name string
		sym  string
		size int
	}{
		{"2-byte", "site2", 2},
		{"4-byte", "site4", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Launch(f, emu.P550())
			if err != nil {
				t.Fatal(err)
			}
			sym, ok := f.Symbol(tc.sym)
			if !ok {
				t.Fatalf("no %s symbol", tc.sym)
			}
			addr := sym.Value

			// Surrounding read: one byte before through one past the patch.
			before, err := p.ReadMem(addr-2, tc.size+4)
			if err != nil {
				t.Fatal(err)
			}
			bp, err := p.InsertBreakpoint(addr)
			if err != nil {
				t.Fatal(err)
			}
			if len(bp.orig) != tc.size {
				t.Fatalf("patch size = %d, want %d", len(bp.orig), tc.size)
			}

			// Raw memory changed; the debugger view did not.
			raw, _ := p.CPU().ReadMem(addr-2, tc.size+4)
			if bytes.Equal(raw, before) {
				t.Fatal("plant did not change raw memory")
			}
			masked, err := p.ReadMem(addr-2, tc.size+4)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(masked, before) {
				t.Fatalf("read across live breakpoint: got %x, want %x", masked, before)
			}

			// A read that only clips the first byte of the patch is masked too.
			clip, err := p.ReadMem(addr-2, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(clip, before[:3]) {
				t.Fatalf("clipped read: got %x, want %x", clip, before[:3])
			}

			// Client writes a fresh instruction over the breakpoint span
			// (c.nop-sized stores for the 2-byte site, addi for the 4-byte):
			// the bytes must merge into bp.orig, the ebreak must stay live.
			repl := []byte{0x01, 0x00} // c.nop
			if tc.size == 4 {
				repl = []byte{0x13, 0x00, 0x00, 0x00} // nop (addi x0,x0,0)
			}
			if err := p.WriteMem(addr, repl); err != nil {
				t.Fatal(err)
			}
			rawAfter, _ := p.CPU().ReadMem(addr, tc.size)
			if !bytes.Equal(rawAfter, raw[2:2+tc.size]) {
				t.Fatalf("client write displaced the live patch: %x", rawAfter)
			}
			maskedAfter, _ := p.ReadMem(addr, tc.size)
			if !bytes.Equal(maskedAfter, repl) {
				t.Fatalf("masked read after client write = %x, want %x", maskedAfter, repl)
			}

			// Removal must restore the client's bytes, not the stale ones.
			if err := p.RemoveBreakpoint(bp); err != nil {
				t.Fatal(err)
			}
			restored, _ := p.CPU().ReadMem(addr, tc.size)
			if !bytes.Equal(restored, repl) {
				t.Fatalf("removal restored %x, want client bytes %x", restored, repl)
			}

			// The program still runs to exit with the nop'd site.
			ev, err := p.Continue()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Kind != EventExit {
				t.Fatalf("event = %+v", ev)
			}
		})
	}
}

// TestWriteMemPartialOverlap writes a span that covers only part of a live
// 4-byte patch plus surrounding bytes, and checks byte-exact merge behavior
// on both sides of the boundary.
func TestWriteMemPartialOverlap(t *testing.T) {
	f := build(t, transparencyProgram)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := f.Symbol("site4")
	addr := sym.Value
	bp, err := p.InsertBreakpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	origHead := append([]byte(nil), bp.orig...)

	// Overwrite the two bytes straddling the patch start: one byte before
	// the patch, one inside it.
	w := []byte{0xAA, 0xBB}
	if err := p.WriteMem(addr-1, w); err != nil {
		t.Fatal(err)
	}
	// Byte before the patch hits raw memory.
	rb, _ := p.CPU().ReadMem(addr-1, 1)
	if rb[0] != 0xAA {
		t.Errorf("byte before patch = %#x, want 0xAA", rb[0])
	}
	// Byte inside the patch went to bp.orig; raw memory keeps the ebreak.
	if bp.orig[0] != 0xBB {
		t.Errorf("bp.orig[0] = %#x, want 0xBB (merged client byte)", bp.orig[0])
	}
	if bp.orig[1] != origHead[1] {
		t.Errorf("bp.orig[1] = %#x, want untouched %#x", bp.orig[1], origHead[1])
	}
	raw, _ := p.CPU().ReadMem(addr, 1)
	if raw[0] != bp.patch[0] {
		t.Errorf("raw patch byte = %#x, want live ebreak %#x", raw[0], bp.patch[0])
	}
	// The masked view reflects the client's write.
	m, _ := p.ReadMem(addr-1, 2)
	if m[0] != 0xAA || m[1] != 0xBB {
		t.Errorf("masked view = %x, want aabb", m)
	}
}

// TestStepNearOtherBreakpoint single-steps across an address adjacent to a
// second live breakpoint: successors() must decode the original instruction
// through the mask, not the planted ebreak.
func TestStepNearOtherBreakpoint(t *testing.T) {
	f := build(t, transparencyProgram)
	p, err := Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := f.Symbol("site2")
	s4, _ := f.Symbol("site4")
	if _, err := p.InsertBreakpoint(s2.Value); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InsertBreakpoint(s4.Value); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventBreakpoint || ev.Addr != s2.Value {
		t.Fatalf("first stop = %+v", ev)
	}
	// Step off site2; the successor is site4, already trapped. The step must
	// land exactly there with t2 updated by the original c.mv.
	ev, err = p.StepInst()
	if err != nil {
		t.Fatal(err)
	}
	if p.PC() != s4.Value {
		t.Fatalf("pc after step = %#x, want %#x", p.PC(), s4.Value)
	}
	ev, err = p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventExit || ev.ExitCode != 4 { // t2+t3 = 1 + (1^2)
		t.Fatalf("exit = %+v", ev)
	}
}

// TestPlantEdges is the table-driven regression test for the plant edge
// cases: tail-of-region 4-byte instructions, mid-instruction parcels, and
// overlapping plants must all fail cleanly without touching memory.
func TestPlantEdges(t *testing.T) {
	f := build(t, transparencyProgram)
	s4, _ := f.Symbol("site4")

	t.Run("tail-of-region", func(t *testing.T) {
		p, err := Launch(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		// Map one page and place the head parcel of a 4-byte instruction in
		// its last two bytes; the second parcel is unmapped.
		const page = uint64(0x30000000)
		p.MapRegion(page, 4096)
		head := []byte{0x13, 0x00} // starts a 4-byte addi
		if err := p.WriteMem(page+4094, head); err != nil {
			t.Fatal(err)
		}
		_, err = p.InsertBreakpoint(page + 4094)
		if err == nil {
			t.Fatal("plant over region tail succeeded")
		}
		// No partial patch: the mapped bytes are untouched.
		got, _ := p.ReadMem(page+4094, 2)
		if !bytes.Equal(got, head) {
			t.Fatalf("partial patch left behind: %x", got)
		}
	})

	t.Run("mid-instruction", func(t *testing.T) {
		p, err := Launch(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		_, err = p.InsertBreakpoint(s4.Value + 2)
		if err == nil {
			t.Fatal("plant on second parcel of 4-byte instruction succeeded")
		}
		if !strings.Contains(err.Error(), "mid-instruction") {
			t.Fatalf("unexpected error: %v", err)
		}
		// The instruction stream is untouched and the program still exits.
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != EventExit {
			t.Fatalf("event = %+v", ev)
		}
	})

	t.Run("overlapping-plant", func(t *testing.T) {
		p, err := Launch(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.InsertBreakpoint(s4.Value); err != nil {
			t.Fatal(err)
		}
		_, err = p.InsertBreakpoint(s4.Value + 2)
		if err == nil {
			t.Fatal("plant inside a live breakpoint's span succeeded")
		}
	})
}
