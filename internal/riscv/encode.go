package riscv

import "fmt"

// form enumerates the 32-bit encoding layouts.
type form uint8

const (
	formR       form = iota // funct7 | rs2 | rs1 | funct3 | rd | opcode
	formR4                  // rs3 | fmt | rs2 | rs1 | rm | rd | opcode
	formI                   // imm[11:0] | rs1 | funct3 | rd | opcode
	formIShift              // shift-immediate variant of I (6-bit shamt)
	formIShiftW             // shift-immediate variant of I (5-bit shamt)
	formS                   // imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode
	formB                   // branch offset scattering of S
	formU                   // imm[31:12] | rd | opcode
	formJ                   // jal offset scattering of U
	formCSR                 // csr | rs1 | funct3 | rd | opcode
	formCSRI                // csr | zimm | funct3 | rd | opcode
	formFence               // fm/pred/succ in imm[11:0]
	formSys                 // ecall/ebreak: fixed 12-bit selector
	formAMO                 // funct5 | aq | rl | rs2 | rs1 | funct3 | rd | opcode
)

// encSpec describes how one mnemonic packs into 32 bits.
type encSpec struct {
	form     form
	opcode   uint32
	f3       uint32
	f7       uint32 // funct7 for R; top bits for shifts; funct5<<2 for AMO
	rs2fixed bool   // rs2 field is a fixed selector (fcvt/fsqrt/fmv/fclass)
	rs2val   uint32
	hasRM    bool // funct3 field carries the rounding mode
	sysImm   uint32
}

const (
	opLUI    = 0b0110111
	opAUIPC  = 0b0010111
	opJAL    = 0b1101111
	opJALR   = 0b1100111
	opBranch = 0b1100011
	opLoad   = 0b0000011
	opStore  = 0b0100011
	opOpImm  = 0b0010011
	opOp     = 0b0110011
	opOpImmW = 0b0011011
	opOpW    = 0b0111011
	opMisc   = 0b0001111
	opSystem = 0b1110011
	opAMO    = 0b0101111
	opLoadFP = 0b0000111
	opStorFP = 0b0100111
	opFP     = 0b1010011
	opFMADD  = 0b1000011
	opFMSUB  = 0b1000111
	opFNMSUB = 0b1001011
	opFNMADD = 0b1001111
)

var encTable = map[Mnemonic]encSpec{
	MnLUI:   {form: formU, opcode: opLUI},
	MnAUIPC: {form: formU, opcode: opAUIPC},
	MnJAL:   {form: formJ, opcode: opJAL},
	MnJALR:  {form: formI, opcode: opJALR, f3: 0},

	MnBEQ:  {form: formB, opcode: opBranch, f3: 0},
	MnBNE:  {form: formB, opcode: opBranch, f3: 1},
	MnBLT:  {form: formB, opcode: opBranch, f3: 4},
	MnBGE:  {form: formB, opcode: opBranch, f3: 5},
	MnBLTU: {form: formB, opcode: opBranch, f3: 6},
	MnBGEU: {form: formB, opcode: opBranch, f3: 7},

	MnLB:  {form: formI, opcode: opLoad, f3: 0},
	MnLH:  {form: formI, opcode: opLoad, f3: 1},
	MnLW:  {form: formI, opcode: opLoad, f3: 2},
	MnLD:  {form: formI, opcode: opLoad, f3: 3},
	MnLBU: {form: formI, opcode: opLoad, f3: 4},
	MnLHU: {form: formI, opcode: opLoad, f3: 5},
	MnLWU: {form: formI, opcode: opLoad, f3: 6},

	MnSB: {form: formS, opcode: opStore, f3: 0},
	MnSH: {form: formS, opcode: opStore, f3: 1},
	MnSW: {form: formS, opcode: opStore, f3: 2},
	MnSD: {form: formS, opcode: opStore, f3: 3},

	MnADDI:  {form: formI, opcode: opOpImm, f3: 0},
	MnSLTI:  {form: formI, opcode: opOpImm, f3: 2},
	MnSLTIU: {form: formI, opcode: opOpImm, f3: 3},
	MnXORI:  {form: formI, opcode: opOpImm, f3: 4},
	MnORI:   {form: formI, opcode: opOpImm, f3: 6},
	MnANDI:  {form: formI, opcode: opOpImm, f3: 7},
	MnSLLI:  {form: formIShift, opcode: opOpImm, f3: 1, f7: 0b000000},
	MnSRLI:  {form: formIShift, opcode: opOpImm, f3: 5, f7: 0b000000},
	MnSRAI:  {form: formIShift, opcode: opOpImm, f3: 5, f7: 0b010000},

	MnADD:  {form: formR, opcode: opOp, f3: 0, f7: 0},
	MnSUB:  {form: formR, opcode: opOp, f3: 0, f7: 0b0100000},
	MnSLL:  {form: formR, opcode: opOp, f3: 1, f7: 0},
	MnSLT:  {form: formR, opcode: opOp, f3: 2, f7: 0},
	MnSLTU: {form: formR, opcode: opOp, f3: 3, f7: 0},
	MnXOR:  {form: formR, opcode: opOp, f3: 4, f7: 0},
	MnSRL:  {form: formR, opcode: opOp, f3: 5, f7: 0},
	MnSRA:  {form: formR, opcode: opOp, f3: 5, f7: 0b0100000},
	MnOR:   {form: formR, opcode: opOp, f3: 6, f7: 0},
	MnAND:  {form: formR, opcode: opOp, f3: 7, f7: 0},

	MnADDIW: {form: formI, opcode: opOpImmW, f3: 0},
	MnSLLIW: {form: formIShiftW, opcode: opOpImmW, f3: 1, f7: 0},
	MnSRLIW: {form: formIShiftW, opcode: opOpImmW, f3: 5, f7: 0},
	MnSRAIW: {form: formIShiftW, opcode: opOpImmW, f3: 5, f7: 0b0100000},

	MnADDW: {form: formR, opcode: opOpW, f3: 0, f7: 0},
	MnSUBW: {form: formR, opcode: opOpW, f3: 0, f7: 0b0100000},
	MnSLLW: {form: formR, opcode: opOpW, f3: 1, f7: 0},
	MnSRLW: {form: formR, opcode: opOpW, f3: 5, f7: 0},
	MnSRAW: {form: formR, opcode: opOpW, f3: 5, f7: 0b0100000},

	MnFENCE:  {form: formFence, opcode: opMisc, f3: 0},
	MnFENCEI: {form: formFence, opcode: opMisc, f3: 1},

	MnECALL:  {form: formSys, opcode: opSystem, sysImm: 0},
	MnEBREAK: {form: formSys, opcode: opSystem, sysImm: 1},

	MnCSRRW:  {form: formCSR, opcode: opSystem, f3: 1},
	MnCSRRS:  {form: formCSR, opcode: opSystem, f3: 2},
	MnCSRRC:  {form: formCSR, opcode: opSystem, f3: 3},
	MnCSRRWI: {form: formCSRI, opcode: opSystem, f3: 5},
	MnCSRRSI: {form: formCSRI, opcode: opSystem, f3: 6},
	MnCSRRCI: {form: formCSRI, opcode: opSystem, f3: 7},

	MnMUL:    {form: formR, opcode: opOp, f3: 0, f7: 1},
	MnMULH:   {form: formR, opcode: opOp, f3: 1, f7: 1},
	MnMULHSU: {form: formR, opcode: opOp, f3: 2, f7: 1},
	MnMULHU:  {form: formR, opcode: opOp, f3: 3, f7: 1},
	MnDIV:    {form: formR, opcode: opOp, f3: 4, f7: 1},
	MnDIVU:   {form: formR, opcode: opOp, f3: 5, f7: 1},
	MnREM:    {form: formR, opcode: opOp, f3: 6, f7: 1},
	MnREMU:   {form: formR, opcode: opOp, f3: 7, f7: 1},
	MnMULW:   {form: formR, opcode: opOpW, f3: 0, f7: 1},
	MnDIVW:   {form: formR, opcode: opOpW, f3: 4, f7: 1},
	MnDIVUW:  {form: formR, opcode: opOpW, f3: 5, f7: 1},
	MnREMW:   {form: formR, opcode: opOpW, f3: 6, f7: 1},
	MnREMUW:  {form: formR, opcode: opOpW, f3: 7, f7: 1},

	MnLRW:      {form: formAMO, opcode: opAMO, f3: 2, f7: 0b00010 << 2, rs2fixed: true, rs2val: 0},
	MnSCW:      {form: formAMO, opcode: opAMO, f3: 2, f7: 0b00011 << 2},
	MnAMOSWAPW: {form: formAMO, opcode: opAMO, f3: 2, f7: 0b00001 << 2},
	MnAMOADDW:  {form: formAMO, opcode: opAMO, f3: 2, f7: 0b00000 << 2},
	MnAMOXORW:  {form: formAMO, opcode: opAMO, f3: 2, f7: 0b00100 << 2},
	MnAMOANDW:  {form: formAMO, opcode: opAMO, f3: 2, f7: 0b01100 << 2},
	MnAMOORW:   {form: formAMO, opcode: opAMO, f3: 2, f7: 0b01000 << 2},
	MnAMOMINW:  {form: formAMO, opcode: opAMO, f3: 2, f7: 0b10000 << 2},
	MnAMOMAXW:  {form: formAMO, opcode: opAMO, f3: 2, f7: 0b10100 << 2},
	MnAMOMINUW: {form: formAMO, opcode: opAMO, f3: 2, f7: 0b11000 << 2},
	MnAMOMAXUW: {form: formAMO, opcode: opAMO, f3: 2, f7: 0b11100 << 2},
	MnLRD:      {form: formAMO, opcode: opAMO, f3: 3, f7: 0b00010 << 2, rs2fixed: true, rs2val: 0},
	MnSCD:      {form: formAMO, opcode: opAMO, f3: 3, f7: 0b00011 << 2},
	MnAMOSWAPD: {form: formAMO, opcode: opAMO, f3: 3, f7: 0b00001 << 2},
	MnAMOADDD:  {form: formAMO, opcode: opAMO, f3: 3, f7: 0b00000 << 2},
	MnAMOXORD:  {form: formAMO, opcode: opAMO, f3: 3, f7: 0b00100 << 2},
	MnAMOANDD:  {form: formAMO, opcode: opAMO, f3: 3, f7: 0b01100 << 2},
	MnAMOORD:   {form: formAMO, opcode: opAMO, f3: 3, f7: 0b01000 << 2},
	MnAMOMIND:  {form: formAMO, opcode: opAMO, f3: 3, f7: 0b10000 << 2},
	MnAMOMAXD:  {form: formAMO, opcode: opAMO, f3: 3, f7: 0b10100 << 2},
	MnAMOMINUD: {form: formAMO, opcode: opAMO, f3: 3, f7: 0b11000 << 2},
	MnAMOMAXUD: {form: formAMO, opcode: opAMO, f3: 3, f7: 0b11100 << 2},

	MnFLW: {form: formI, opcode: opLoadFP, f3: 2},
	MnFLD: {form: formI, opcode: opLoadFP, f3: 3},
	MnFSW: {form: formS, opcode: opStorFP, f3: 2},
	MnFSD: {form: formS, opcode: opStorFP, f3: 3},

	MnFMADDS:  {form: formR4, opcode: opFMADD, f7: 0b00, hasRM: true},
	MnFMSUBS:  {form: formR4, opcode: opFMSUB, f7: 0b00, hasRM: true},
	MnFNMSUBS: {form: formR4, opcode: opFNMSUB, f7: 0b00, hasRM: true},
	MnFNMADDS: {form: formR4, opcode: opFNMADD, f7: 0b00, hasRM: true},
	MnFMADDD:  {form: formR4, opcode: opFMADD, f7: 0b01, hasRM: true},
	MnFMSUBD:  {form: formR4, opcode: opFMSUB, f7: 0b01, hasRM: true},
	MnFNMSUBD: {form: formR4, opcode: opFNMSUB, f7: 0b01, hasRM: true},
	MnFNMADDD: {form: formR4, opcode: opFNMADD, f7: 0b01, hasRM: true},

	MnFADDS:   {form: formR, opcode: opFP, f7: 0b0000000, hasRM: true},
	MnFSUBS:   {form: formR, opcode: opFP, f7: 0b0000100, hasRM: true},
	MnFMULS:   {form: formR, opcode: opFP, f7: 0b0001000, hasRM: true},
	MnFDIVS:   {form: formR, opcode: opFP, f7: 0b0001100, hasRM: true},
	MnFSQRTS:  {form: formR, opcode: opFP, f7: 0b0101100, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFSGNJS:  {form: formR, opcode: opFP, f7: 0b0010000, f3: 0},
	MnFSGNJNS: {form: formR, opcode: opFP, f7: 0b0010000, f3: 1},
	MnFSGNJXS: {form: formR, opcode: opFP, f7: 0b0010000, f3: 2},
	MnFMINS:   {form: formR, opcode: opFP, f7: 0b0010100, f3: 0},
	MnFMAXS:   {form: formR, opcode: opFP, f7: 0b0010100, f3: 1},
	MnFCVTWS:  {form: formR, opcode: opFP, f7: 0b1100000, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFCVTWUS: {form: formR, opcode: opFP, f7: 0b1100000, hasRM: true, rs2fixed: true, rs2val: 1},
	MnFCVTLS:  {form: formR, opcode: opFP, f7: 0b1100000, hasRM: true, rs2fixed: true, rs2val: 2},
	MnFCVTLUS: {form: formR, opcode: opFP, f7: 0b1100000, hasRM: true, rs2fixed: true, rs2val: 3},
	MnFMVXW:   {form: formR, opcode: opFP, f7: 0b1110000, f3: 0, rs2fixed: true, rs2val: 0},
	MnFCLASSS: {form: formR, opcode: opFP, f7: 0b1110000, f3: 1, rs2fixed: true, rs2val: 0},
	MnFEQS:    {form: formR, opcode: opFP, f7: 0b1010000, f3: 2},
	MnFLTS:    {form: formR, opcode: opFP, f7: 0b1010000, f3: 1},
	MnFLES:    {form: formR, opcode: opFP, f7: 0b1010000, f3: 0},
	MnFCVTSW:  {form: formR, opcode: opFP, f7: 0b1101000, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFCVTSWU: {form: formR, opcode: opFP, f7: 0b1101000, hasRM: true, rs2fixed: true, rs2val: 1},
	MnFCVTSL:  {form: formR, opcode: opFP, f7: 0b1101000, hasRM: true, rs2fixed: true, rs2val: 2},
	MnFCVTSLU: {form: formR, opcode: opFP, f7: 0b1101000, hasRM: true, rs2fixed: true, rs2val: 3},
	MnFMVWX:   {form: formR, opcode: opFP, f7: 0b1111000, f3: 0, rs2fixed: true, rs2val: 0},

	MnFADDD:   {form: formR, opcode: opFP, f7: 0b0000001, hasRM: true},
	MnFSUBD:   {form: formR, opcode: opFP, f7: 0b0000101, hasRM: true},
	MnFMULD:   {form: formR, opcode: opFP, f7: 0b0001001, hasRM: true},
	MnFDIVD:   {form: formR, opcode: opFP, f7: 0b0001101, hasRM: true},
	MnFSQRTD:  {form: formR, opcode: opFP, f7: 0b0101101, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFSGNJD:  {form: formR, opcode: opFP, f7: 0b0010001, f3: 0},
	MnFSGNJND: {form: formR, opcode: opFP, f7: 0b0010001, f3: 1},
	MnFSGNJXD: {form: formR, opcode: opFP, f7: 0b0010001, f3: 2},
	MnFMIND:   {form: formR, opcode: opFP, f7: 0b0010101, f3: 0},
	MnFMAXD:   {form: formR, opcode: opFP, f7: 0b0010101, f3: 1},
	MnFCVTSD:  {form: formR, opcode: opFP, f7: 0b0100000, hasRM: true, rs2fixed: true, rs2val: 1},
	MnFCVTDS:  {form: formR, opcode: opFP, f7: 0b0100001, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFEQD:    {form: formR, opcode: opFP, f7: 0b1010001, f3: 2},
	MnFLTD:    {form: formR, opcode: opFP, f7: 0b1010001, f3: 1},
	MnFLED:    {form: formR, opcode: opFP, f7: 0b1010001, f3: 0},
	MnFCLASSD: {form: formR, opcode: opFP, f7: 0b1110001, f3: 1, rs2fixed: true, rs2val: 0},
	MnFCVTWD:  {form: formR, opcode: opFP, f7: 0b1100001, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFCVTWUD: {form: formR, opcode: opFP, f7: 0b1100001, hasRM: true, rs2fixed: true, rs2val: 1},
	MnFCVTLD:  {form: formR, opcode: opFP, f7: 0b1100001, hasRM: true, rs2fixed: true, rs2val: 2},
	MnFCVTLUD: {form: formR, opcode: opFP, f7: 0b1100001, hasRM: true, rs2fixed: true, rs2val: 3},
	MnFCVTDW:  {form: formR, opcode: opFP, f7: 0b1101001, hasRM: true, rs2fixed: true, rs2val: 0},
	MnFCVTDWU: {form: formR, opcode: opFP, f7: 0b1101001, hasRM: true, rs2fixed: true, rs2val: 1},
	MnFCVTDL:  {form: formR, opcode: opFP, f7: 0b1101001, hasRM: true, rs2fixed: true, rs2val: 2},
	MnFCVTDLU: {form: formR, opcode: opFP, f7: 0b1101001, hasRM: true, rs2fixed: true, rs2val: 3},
	MnFMVXD:   {form: formR, opcode: opFP, f7: 0b1110001, f3: 0, rs2fixed: true, rs2val: 0},
	MnFMVDX:   {form: formR, opcode: opFP, f7: 0b1111001, f3: 0, rs2fixed: true, rs2val: 0},
}

// UnaryRegForm reports whether the mnemonic takes a single register source
// (its rs2 field is a fixed selector): fsqrt, fcvt, fmv, fclass, lr.
func UnaryRegForm(m Mnemonic) bool {
	spec, ok := encTable[m]
	return ok && spec.rs2fixed
}

// HasRoundingMode reports whether the mnemonic's funct3 field carries a
// floating-point rounding mode.
func HasRoundingMode(m Mnemonic) bool {
	spec, ok := encTable[m]
	return ok && spec.hasRM
}

// LookupRoundingMode resolves an assembly rounding-mode name.
func LookupRoundingMode(name string) (uint8, bool) {
	switch name {
	case "rne":
		return 0, true
	case "rtz":
		return 1, true
	case "rdn":
		return 2, true
	case "rup":
		return 3, true
	case "rmm":
		return 4, true
	case "dyn":
		return RMDyn, true
	}
	return 0, false
}

// Encode packs the instruction into its 32-bit machine encoding. It returns
// an error for unknown mnemonics or immediates that do not fit their field.
// Compressed encoding is a separate, optional step: see Compress.
func Encode(i Inst) (uint32, error) {
	spec, ok := encTable[i.Mn]
	if !ok {
		return 0, fmt.Errorf("riscv: cannot encode %v", i.Mn)
	}
	f3 := spec.f3
	if spec.hasRM {
		f3 = uint32(i.RM) & 7
	}
	rs2 := i.Rs2.Num()
	if spec.rs2fixed {
		rs2 = spec.rs2val
	}
	switch spec.form {
	case formR:
		return spec.f7<<25 | rs2<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formR4:
		return i.Rs3.Num()<<27 | spec.f7<<25 | rs2<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formI:
		if i.Imm < -2048 || i.Imm > 2047 {
			return 0, fmt.Errorf("riscv: %v immediate %d out of I-type range [-2048,2047]", i.Mn, i.Imm)
		}
		return uint32(i.Imm&0xfff)<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formIShift:
		if i.Imm < 0 || i.Imm > 63 {
			return 0, fmt.Errorf("riscv: %v shift amount %d out of range [0,63]", i.Mn, i.Imm)
		}
		return spec.f7<<26 | uint32(i.Imm&0x3f)<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formIShiftW:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("riscv: %v shift amount %d out of range [0,31]", i.Mn, i.Imm)
		}
		return spec.f7<<25 | uint32(i.Imm&0x1f)<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formS:
		if i.Imm < -2048 || i.Imm > 2047 {
			return 0, fmt.Errorf("riscv: %v offset %d out of S-type range [-2048,2047]", i.Mn, i.Imm)
		}
		imm := uint32(i.Imm & 0xfff)
		return (imm>>5)<<25 | rs2<<20 | i.Rs1.Num()<<15 | f3<<12 | (imm&0x1f)<<7 | spec.opcode, nil
	case formB:
		if i.Imm < -4096 || i.Imm > 4095 || i.Imm&1 != 0 {
			return 0, fmt.Errorf("riscv: %v branch offset %d out of range or misaligned", i.Mn, i.Imm)
		}
		imm := uint32(i.Imm) & 0x1fff
		return (imm>>12)<<31 | ((imm>>5)&0x3f)<<25 | rs2<<20 | i.Rs1.Num()<<15 |
			f3<<12 | ((imm>>1)&0xf)<<8 | ((imm>>11)&1)<<7 | spec.opcode, nil
	case formU:
		if i.Imm < -(1<<19) || i.Imm >= 1<<20 {
			return 0, fmt.Errorf("riscv: %v immediate %d out of U-type 20-bit range", i.Mn, i.Imm)
		}
		return uint32(i.Imm&0xfffff)<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formJ:
		if i.Imm < -(1<<20) || i.Imm >= 1<<20 || i.Imm&1 != 0 {
			return 0, fmt.Errorf("riscv: jal offset %d out of range [-1MiB,1MiB) or misaligned", i.Imm)
		}
		imm := uint32(i.Imm) & 0x1fffff
		return (imm>>20)<<31 | ((imm>>1)&0x3ff)<<21 | ((imm>>11)&1)<<20 |
			((imm>>12)&0xff)<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formCSR:
		return uint32(i.CSR)<<20 | i.Rs1.Num()<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formCSRI:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("riscv: %v zimm %d out of range [0,31]", i.Mn, i.Imm)
		}
		return uint32(i.CSR)<<20 | uint32(i.Imm&0x1f)<<15 | f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	case formFence:
		// For fence, Imm carries fm|pred|succ (0x0ff = fence iorw,iorw).
		return uint32(i.Imm&0xfff)<<20 | f3<<12 | spec.opcode, nil
	case formSys:
		return spec.sysImm<<20 | spec.opcode, nil
	case formAMO:
		aq, rl := uint32(0), uint32(0)
		if i.Aq {
			aq = 1
		}
		if i.Rl {
			rl = 1
		}
		return (spec.f7>>2)<<27 | aq<<26 | rl<<25 | rs2<<20 | i.Rs1.Num()<<15 |
			f3<<12 | i.Rd.Num()<<7 | spec.opcode, nil
	}
	return 0, fmt.Errorf("riscv: unhandled encoding form for %v", i.Mn)
}

// MustEncode is Encode for instructions the caller knows are well-formed.
// It panics on error and exists for code-generation templates whose operand
// ranges are checked at construction.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// EncodeBytes encodes the instruction to little-endian bytes, honoring the
// compressed form when i.Compressed is set and a compressed encoding exists.
func EncodeBytes(i Inst) ([]byte, error) {
	if i.Compressed {
		if half, ok := Compress(i); ok {
			return []byte{byte(half), byte(half >> 8)}, nil
		}
	}
	w, err := Encode(i)
	if err != nil {
		return nil, err
	}
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, nil
}
