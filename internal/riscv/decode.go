package riscv

import (
	"errors"
	"fmt"
)

// Decoding errors.
var (
	ErrTruncated = errors.New("riscv: truncated instruction")
	ErrIllegal   = errors.New("riscv: illegal instruction")
)

// Decode decodes one instruction from b, which must hold the bytes at
// address addr. It handles both 32-bit standard encodings and 16-bit
// compressed encodings (expanding the latter to their base-mnemonic form
// with Compressed == true and Len == 2).
func Decode(b []byte, addr uint64) (Inst, error) {
	if len(b) < 2 {
		return Inst{Addr: addr}, ErrTruncated
	}
	lo := uint32(b[0]) | uint32(b[1])<<8
	if lo&3 != 3 {
		return decodeCompressed(uint16(lo), addr)
	}
	if len(b) < 4 {
		return Inst{Addr: addr, Raw: lo}, ErrTruncated
	}
	w := lo | uint32(b[2])<<16 | uint32(b[3])<<24
	return decode32(w, addr)
}

// field extractors for the 32-bit formats
func bits(w uint32, hi, lo uint) uint32 { return (w >> lo) & ((1 << (hi - lo + 1)) - 1) }

func immI(w uint32) int64 { return int64(int32(w) >> 20) }

func immS(w uint32) int64 {
	return int64(int32(bits(w, 31, 25)<<5|bits(w, 11, 7)) << 20 >> 20)
}

func immB(w uint32) int64 {
	v := bits(w, 31, 31)<<12 | bits(w, 7, 7)<<11 | bits(w, 30, 25)<<5 | bits(w, 11, 8)<<1
	return int64(int32(v) << 19 >> 19)
}

func immU(w uint32) int64 { return int64(int32(w) >> 12) }

func immJ(w uint32) int64 {
	v := bits(w, 31, 31)<<20 | bits(w, 19, 12)<<12 | bits(w, 20, 20)<<11 | bits(w, 30, 21)<<1
	return int64(int32(v) << 11 >> 11)
}

func decode32(w uint32, addr uint64) (Inst, error) {
	inst := Inst{
		Addr: addr, Raw: w, Len: 4,
		Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone,
	}
	opcode := w & 0x7f
	rd := bits(w, 11, 7)
	f3 := bits(w, 14, 12)
	rs1 := bits(w, 19, 15)
	rs2 := bits(w, 24, 20)
	f7 := bits(w, 31, 25)

	ill := func() (Inst, error) {
		inst.Mn = MnInvalid
		return inst, fmt.Errorf("%w: 0x%08x at 0x%x", ErrIllegal, w, addr)
	}

	switch opcode {
	case opLUI, opAUIPC:
		inst.Mn = MnLUI
		if opcode == opAUIPC {
			inst.Mn = MnAUIPC
		}
		inst.Rd = XReg(rd)
		inst.Imm = immU(w)
	case opJAL:
		inst.Mn = MnJAL
		inst.Rd = XReg(rd)
		inst.Imm = immJ(w)
	case opJALR:
		if f3 != 0 {
			return ill()
		}
		inst.Mn = MnJALR
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Imm = immI(w)
	case opBranch:
		switch f3 {
		case 0:
			inst.Mn = MnBEQ
		case 1:
			inst.Mn = MnBNE
		case 4:
			inst.Mn = MnBLT
		case 5:
			inst.Mn = MnBGE
		case 6:
			inst.Mn = MnBLTU
		case 7:
			inst.Mn = MnBGEU
		default:
			return ill()
		}
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = XReg(rs2)
		inst.Imm = immB(w)
	case opLoad:
		switch f3 {
		case 0:
			inst.Mn = MnLB
		case 1:
			inst.Mn = MnLH
		case 2:
			inst.Mn = MnLW
		case 3:
			inst.Mn = MnLD
		case 4:
			inst.Mn = MnLBU
		case 5:
			inst.Mn = MnLHU
		case 6:
			inst.Mn = MnLWU
		default:
			return ill()
		}
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Imm = immI(w)
	case opLoadFP:
		switch f3 {
		case 2:
			inst.Mn = MnFLW
		case 3:
			inst.Mn = MnFLD
		default:
			return ill()
		}
		inst.Rd = FReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Imm = immI(w)
	case opStore:
		switch f3 {
		case 0:
			inst.Mn = MnSB
		case 1:
			inst.Mn = MnSH
		case 2:
			inst.Mn = MnSW
		case 3:
			inst.Mn = MnSD
		default:
			return ill()
		}
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = XReg(rs2)
		inst.Imm = immS(w)
	case opStorFP:
		switch f3 {
		case 2:
			inst.Mn = MnFSW
		case 3:
			inst.Mn = MnFSD
		default:
			return ill()
		}
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = FReg(rs2)
		inst.Imm = immS(w)
	case opOpImm:
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		switch f3 {
		case 0:
			inst.Mn = MnADDI
			inst.Imm = immI(w)
		case 2:
			inst.Mn = MnSLTI
			inst.Imm = immI(w)
		case 3:
			inst.Mn = MnSLTIU
			inst.Imm = immI(w)
		case 4:
			inst.Mn = MnXORI
			inst.Imm = immI(w)
		case 6:
			inst.Mn = MnORI
			inst.Imm = immI(w)
		case 7:
			inst.Mn = MnANDI
			inst.Imm = immI(w)
		case 1:
			if f7>>1 != 0 {
				return ill()
			}
			inst.Mn = MnSLLI
			inst.Imm = int64(bits(w, 25, 20))
		case 5:
			switch f7 >> 1 {
			case 0:
				inst.Mn = MnSRLI
			case 0b010000:
				inst.Mn = MnSRAI
			default:
				return ill()
			}
			inst.Imm = int64(bits(w, 25, 20))
		}
	case opOpImmW:
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		switch f3 {
		case 0:
			inst.Mn = MnADDIW
			inst.Imm = immI(w)
		case 1:
			if f7 != 0 {
				return ill()
			}
			inst.Mn = MnSLLIW
			inst.Imm = int64(rs2)
		case 5:
			switch f7 {
			case 0:
				inst.Mn = MnSRLIW
			case 0b0100000:
				inst.Mn = MnSRAIW
			default:
				return ill()
			}
			inst.Imm = int64(rs2)
		default:
			return ill()
		}
	case opOp:
		// Extension modules (rva23.go) may claim funct combinations the
		// base ISA leaves unused.
		if ext, ok := decodeExtR(inst, opcode, f3, f7, rd, rs1, rs2); ok {
			return ext, nil
		}
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = XReg(rs2)
		switch f7 {
		case 0:
			switch f3 {
			case 0:
				inst.Mn = MnADD
			case 1:
				inst.Mn = MnSLL
			case 2:
				inst.Mn = MnSLT
			case 3:
				inst.Mn = MnSLTU
			case 4:
				inst.Mn = MnXOR
			case 5:
				inst.Mn = MnSRL
			case 6:
				inst.Mn = MnOR
			case 7:
				inst.Mn = MnAND
			}
		case 0b0100000:
			switch f3 {
			case 0:
				inst.Mn = MnSUB
			case 5:
				inst.Mn = MnSRA
			default:
				return ill()
			}
		case 1:
			switch f3 {
			case 0:
				inst.Mn = MnMUL
			case 1:
				inst.Mn = MnMULH
			case 2:
				inst.Mn = MnMULHSU
			case 3:
				inst.Mn = MnMULHU
			case 4:
				inst.Mn = MnDIV
			case 5:
				inst.Mn = MnDIVU
			case 6:
				inst.Mn = MnREM
			case 7:
				inst.Mn = MnREMU
			}
		default:
			return ill()
		}
	case opOpW:
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = XReg(rs2)
		switch f7 {
		case 0:
			switch f3 {
			case 0:
				inst.Mn = MnADDW
			case 1:
				inst.Mn = MnSLLW
			case 5:
				inst.Mn = MnSRLW
			default:
				return ill()
			}
		case 0b0100000:
			switch f3 {
			case 0:
				inst.Mn = MnSUBW
			case 5:
				inst.Mn = MnSRAW
			default:
				return ill()
			}
		case 1:
			switch f3 {
			case 0:
				inst.Mn = MnMULW
			case 4:
				inst.Mn = MnDIVW
			case 5:
				inst.Mn = MnDIVUW
			case 6:
				inst.Mn = MnREMW
			case 7:
				inst.Mn = MnREMUW
			default:
				return ill()
			}
		default:
			return ill()
		}
	case opMisc:
		switch f3 {
		case 0:
			inst.Mn = MnFENCE
			inst.Imm = immI(w) & 0xfff
		case 1:
			inst.Mn = MnFENCEI
		default:
			return ill()
		}
	case opSystem:
		switch f3 {
		case 0:
			if rd != 0 || rs1 != 0 {
				return ill()
			}
			switch bits(w, 31, 20) {
			case 0:
				inst.Mn = MnECALL
			case 1:
				inst.Mn = MnEBREAK
			default:
				return ill()
			}
		case 1, 2, 3:
			inst.Mn = [4]Mnemonic{0, MnCSRRW, MnCSRRS, MnCSRRC}[f3]
			inst.Rd = XReg(rd)
			inst.Rs1 = XReg(rs1)
			inst.CSR = uint16(bits(w, 31, 20))
		case 5, 6, 7:
			inst.Mn = [8]Mnemonic{0, 0, 0, 0, 0, MnCSRRWI, MnCSRRSI, MnCSRRCI}[f3]
			inst.Rd = XReg(rd)
			inst.Imm = int64(rs1) // zimm
			inst.CSR = uint16(bits(w, 31, 20))
		default:
			return ill()
		}
	case opAMO:
		if f3 != 2 && f3 != 3 {
			return ill()
		}
		d := f3 == 3
		inst.Rd = XReg(rd)
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = XReg(rs2)
		inst.Aq = bits(w, 26, 26) == 1
		inst.Rl = bits(w, 25, 25) == 1
		type pair struct{ w, d Mnemonic }
		var p pair
		switch bits(w, 31, 27) {
		case 0b00010:
			if rs2 != 0 {
				return ill()
			}
			p = pair{MnLRW, MnLRD}
			inst.Rs2 = RegNone
		case 0b00011:
			p = pair{MnSCW, MnSCD}
		case 0b00001:
			p = pair{MnAMOSWAPW, MnAMOSWAPD}
		case 0b00000:
			p = pair{MnAMOADDW, MnAMOADDD}
		case 0b00100:
			p = pair{MnAMOXORW, MnAMOXORD}
		case 0b01100:
			p = pair{MnAMOANDW, MnAMOANDD}
		case 0b01000:
			p = pair{MnAMOORW, MnAMOORD}
		case 0b10000:
			p = pair{MnAMOMINW, MnAMOMIND}
		case 0b10100:
			p = pair{MnAMOMAXW, MnAMOMAXD}
		case 0b11000:
			p = pair{MnAMOMINUW, MnAMOMINUD}
		case 0b11100:
			p = pair{MnAMOMAXUW, MnAMOMAXUD}
		default:
			return ill()
		}
		if d {
			inst.Mn = p.d
		} else {
			inst.Mn = p.w
		}
	case opFMADD, opFMSUB, opFNMSUB, opFNMADD:
		fmtBits := bits(w, 26, 25)
		if fmtBits > 1 {
			return ill()
		}
		double := fmtBits == 1
		var tbl map[uint32][2]Mnemonic = fmaTable
		pairSel := 0
		if double {
			pairSel = 1
		}
		inst.Mn = tbl[opcode][pairSel]
		inst.Rd = FReg(rd)
		inst.Rs1 = FReg(rs1)
		inst.Rs2 = FReg(rs2)
		inst.Rs3 = FReg(bits(w, 31, 27))
		inst.RM = uint8(f3)
	case opFP:
		return decodeFP(w, addr, inst, rd, f3, rs1, rs2, f7)
	default:
		// Extension modules (xdbi.go) may claim whole opcodes the base ISA
		// leaves unused (the custom-* spaces).
		if ext, ok := decodeExtI(inst, opcode, f3, rd, rs1, immI(w)); ok {
			return ext, nil
		}
		return ill()
	}
	if inst.Mn == MnInvalid {
		return ill()
	}
	return inst, nil
}

var fmaTable = map[uint32][2]Mnemonic{
	opFMADD:  {MnFMADDS, MnFMADDD},
	opFMSUB:  {MnFMSUBS, MnFMSUBD},
	opFNMSUB: {MnFNMSUBS, MnFNMSUBD},
	opFNMADD: {MnFNMADDS, MnFNMADDD},
}

func decodeFP(w uint32, addr uint64, inst Inst, rd, f3, rs1, rs2, f7 uint32) (Inst, error) {
	ill := func() (Inst, error) {
		inst.Mn = MnInvalid
		return inst, fmt.Errorf("%w: 0x%08x at 0x%x", ErrIllegal, w, addr)
	}
	inst.RM = uint8(f3)
	// Default register classes; adjusted per instruction below.
	inst.Rd = FReg(rd)
	inst.Rs1 = FReg(rs1)
	inst.Rs2 = FReg(rs2)

	double := f7&1 == 1
	sel := func(s, d Mnemonic) Mnemonic {
		if double {
			return d
		}
		return s
	}
	switch f7 &^ 1 {
	case 0b0000000:
		inst.Mn = sel(MnFADDS, MnFADDD)
	case 0b0000100:
		inst.Mn = sel(MnFSUBS, MnFSUBD)
	case 0b0001000:
		inst.Mn = sel(MnFMULS, MnFMULD)
	case 0b0001100:
		inst.Mn = sel(MnFDIVS, MnFDIVD)
	case 0b0101100:
		if rs2 != 0 {
			return ill()
		}
		inst.Mn = sel(MnFSQRTS, MnFSQRTD)
		inst.Rs2 = RegNone
	case 0b0010000:
		inst.RM = 0
		switch f3 {
		case 0:
			inst.Mn = sel(MnFSGNJS, MnFSGNJD)
		case 1:
			inst.Mn = sel(MnFSGNJNS, MnFSGNJND)
		case 2:
			inst.Mn = sel(MnFSGNJXS, MnFSGNJXD)
		default:
			return ill()
		}
	case 0b0010100:
		inst.RM = 0
		switch f3 {
		case 0:
			inst.Mn = sel(MnFMINS, MnFMIND)
		case 1:
			inst.Mn = sel(MnFMAXS, MnFMAXD)
		default:
			return ill()
		}
	case 0b0100000:
		// fcvt.s.d (f7=0100000, rs2=1) and fcvt.d.s (f7=0100001, rs2=0).
		switch {
		case !double && rs2 == 1:
			inst.Mn = MnFCVTSD
		case double && rs2 == 0:
			inst.Mn = MnFCVTDS
		default:
			return ill()
		}
		inst.Rs2 = RegNone
	case 0b1100000:
		// float -> integer
		inst.Rd = XReg(rd)
		switch rs2 {
		case 0:
			inst.Mn = sel(MnFCVTWS, MnFCVTWD)
		case 1:
			inst.Mn = sel(MnFCVTWUS, MnFCVTWUD)
		case 2:
			inst.Mn = sel(MnFCVTLS, MnFCVTLD)
		case 3:
			inst.Mn = sel(MnFCVTLUS, MnFCVTLUD)
		default:
			return ill()
		}
		inst.Rs2 = RegNone
	case 0b1101000:
		// integer -> float
		inst.Rs1 = XReg(rs1)
		switch rs2 {
		case 0:
			inst.Mn = sel(MnFCVTSW, MnFCVTDW)
		case 1:
			inst.Mn = sel(MnFCVTSWU, MnFCVTDWU)
		case 2:
			inst.Mn = sel(MnFCVTSL, MnFCVTDL)
		case 3:
			inst.Mn = sel(MnFCVTSLU, MnFCVTDLU)
		default:
			return ill()
		}
		inst.Rs2 = RegNone
	case 0b1010000:
		inst.Rd = XReg(rd)
		inst.RM = 0
		switch f3 {
		case 2:
			inst.Mn = sel(MnFEQS, MnFEQD)
		case 1:
			inst.Mn = sel(MnFLTS, MnFLTD)
		case 0:
			inst.Mn = sel(MnFLES, MnFLED)
		default:
			return ill()
		}
	case 0b1110000:
		if rs2 != 0 {
			return ill()
		}
		inst.Rd = XReg(rd)
		inst.Rs2 = RegNone
		inst.RM = 0
		switch f3 {
		case 0:
			inst.Mn = sel(MnFMVXW, MnFMVXD)
		case 1:
			inst.Mn = sel(MnFCLASSS, MnFCLASSD)
		default:
			return ill()
		}
	case 0b1111000:
		if rs2 != 0 || f3 != 0 {
			return ill()
		}
		inst.Rs1 = XReg(rs1)
		inst.Rs2 = RegNone
		inst.RM = 0
		inst.Mn = sel(MnFMVWX, MnFMVDX)
	default:
		return ill()
	}
	return inst, nil
}
