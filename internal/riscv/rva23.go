package riscv

// RVA23-profile extension module: Zicond (integer conditional), Zba
// (address-generation shifts), and a Zbb subset (bit-manipulation).
//
// This file is the whole ISA-model footprint of the three extensions —
// mnemonic metadata, encodings, and decodings register themselves from
// init, and no other file in this package (or in parse/dataflow) changes.
// That demonstrates the design requirement of paper Section 3.1.1: "adding
// a RISC-V extension into Dyninst does not require manually changing
// multiple parts of the source code", which Section 3.4 plans to exercise
// for exactly this profile.

// extRKey identifies an R-type encoding by opcode, funct3, and funct7.
type extRKey struct {
	opcode, f3, f7 uint32
}

// extDecodeR maps R-type encodings claimed by extension modules. decode32
// consults it before declaring an unknown funct combination illegal.
var extDecodeR = map[extRKey]Mnemonic{}

// registerR wires up one R-type extension instruction in both directions.
func registerR(mn Mnemonic, name string, ext ExtSet, opcode, f3, f7 uint32) {
	registerMnemonic(mn, name, ext, CatArith)
	encTable[mn] = encSpec{form: formR, opcode: opcode, f3: f3, f7: f7}
	extDecodeR[extRKey{opcode, f3, f7}] = mn
}

func init() {
	// Zicond: rd = (rs2 ==/!= 0) ? 0 : rs1.
	registerR(MnCZEROEQZ, "czero.eqz", ExtZicond, opOp, 5, 0b0000111)
	registerR(MnCZERONEZ, "czero.nez", ExtZicond, opOp, 7, 0b0000111)

	// Zba: rd = (rs1 << k) + rs2.
	registerR(MnSH1ADD, "sh1add", ExtZba, opOp, 2, 0b0010000)
	registerR(MnSH2ADD, "sh2add", ExtZba, opOp, 4, 0b0010000)
	registerR(MnSH3ADD, "sh3add", ExtZba, opOp, 6, 0b0010000)

	// Zbb subset: negated logic and min/max.
	registerR(MnANDN, "andn", ExtZbb, opOp, 7, 0b0100000)
	registerR(MnORN, "orn", ExtZbb, opOp, 6, 0b0100000)
	registerR(MnXNOR, "xnor", ExtZbb, opOp, 4, 0b0100000)
	registerR(MnMIN, "min", ExtZbb, opOp, 4, 0b0000101)
	registerR(MnMINU, "minu", ExtZbb, opOp, 5, 0b0000101)
	registerR(MnMAX, "max", ExtZbb, opOp, 6, 0b0000101)
	registerR(MnMAXU, "maxu", ExtZbb, opOp, 7, 0b0000101)
}

// decodeExtR is the decoder hook: called when the base-ISA switch does not
// recognize an R-type funct combination.
func decodeExtR(inst Inst, opcode, f3, f7, rd, rs1, rs2 uint32) (Inst, bool) {
	mn, ok := extDecodeR[extRKey{opcode, f3, f7}]
	if !ok {
		return inst, false
	}
	inst.Mn = mn
	inst.Rd = XReg(rd)
	inst.Rs1 = XReg(rs1)
	inst.Rs2 = XReg(rs2)
	return inst, true
}
