package riscv

import (
	"fmt"
	"sort"
	"strings"
)

// ExtSet is a bit set of ISA extensions. A binary advertises the extensions
// it needs (via ELF e_flags and the .riscv.attributes arch string, see the
// symtab package) and the code generator must only emit instructions from
// extensions present in the mutatee's set.
type ExtSet uint32

// Individual extension bits. The I base is always required.
const (
	ExtI        ExtSet = 1 << iota // base integer ISA
	ExtM                           // integer multiplication and division
	ExtA                           // atomic instructions
	ExtF                           // single-precision floating point
	ExtD                           // double-precision floating point
	ExtC                           // compressed instructions
	ExtZicsr                       // control and status register access
	ExtZifencei                    // instruction-fetch fence

	// RVA23-profile extensions (paper Section 3.4: "we will extend Dyninst
	// to support the RVA23 profile ... adding a RISC-V extension into
	// Dyninst does not require manually changing multiple parts of the
	// source code"). Supporting them here exercises that modularity claim.
	ExtZicond // integer conditional operations (czero.eqz/czero.nez)
	ExtZba    // address-generation shifts (sh1add/sh2add/sh3add)
	ExtZbb    // basic bit manipulation (andn/orn/xnor/min/max/...)

	// Custom extension used only inside the DBI code cache (see xdbi.go):
	// counter-compensation accumulators and the inline-lookup transfer.
	ExtXdbi
)

// ExtG is the "general" bundle: IMAFD + Zicsr + Zifencei.
const ExtG = ExtI | ExtM | ExtA | ExtF | ExtD | ExtZicsr | ExtZifencei

// RV64GC is the profile the paper's port (and this reproduction) targets.
const RV64GC = ExtG | ExtC

// RVA23Subset is RV64GC plus the RVA23-profile extensions this
// reproduction implements (the paper's planned next step).
const RVA23Subset = RV64GC | ExtZicond | ExtZba | ExtZbb | ExtXdbi

// Has reports whether every extension in req is present in s.
func (s ExtSet) Has(req ExtSet) bool { return s&req == req }

// extNames maps single bits to canonical arch-string names, in the order the
// ISA naming convention requires them to appear.
var extOrder = []struct {
	bit  ExtSet
	name string
}{
	{ExtI, "i"},
	{ExtM, "m"},
	{ExtA, "a"},
	{ExtF, "f"},
	{ExtD, "d"},
	{ExtC, "c"},
	{ExtZicsr, "zicsr"},
	{ExtZifencei, "zifencei"},
	{ExtZicond, "zicond"},
	{ExtZba, "zba"},
	{ExtZbb, "zbb"},
	{ExtXdbi, "xdbi"},
}

// ArchString renders the set as a RISC-V architecture string of the form
// used by the Tag_RISCV_arch attribute, e.g.
// "rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0_zicsr2p0_zifencei2p0".
func (s ExtSet) ArchString() string {
	var b strings.Builder
	b.WriteString("rv64")
	first := true
	for _, e := range extOrder {
		if s&e.bit == 0 {
			continue
		}
		if !first && len(e.name) > 0 {
			b.WriteString("_")
		}
		// Single-letter base/standard extensions attach directly after rv64;
		// the convention separates all but the first with underscores only
		// for multi-letter names, but modern toolchains underscore-separate
		// everything after the first. We follow the toolchain convention.
		b.WriteString(e.name)
		b.WriteString("2p0")
		first = false
	}
	return b.String()
}

// String renders the set compactly, e.g. "rv64imafdc_zicsr_zifencei".
func (s ExtSet) String() string {
	var b strings.Builder
	b.WriteString("rv64")
	var multi []string
	for _, e := range extOrder {
		if s&e.bit == 0 {
			continue
		}
		if len(e.name) == 1 {
			b.WriteString(e.name)
		} else {
			multi = append(multi, e.name)
		}
	}
	sort.Strings(multi)
	for _, m := range multi {
		b.WriteString("_")
		b.WriteString(m)
	}
	return b.String()
}

// ParseArchString parses a RISC-V architecture string such as
// "rv64imafdc_zicsr_zifencei" or "rv64i2p1_m2p0_a2p1_c2p0" into an ExtSet.
// Version suffixes (digits, 'p', digits) are accepted and ignored. The 'g'
// shorthand expands to the G bundle. Unknown multi-letter extensions are
// ignored (a real binary may use extensions we do not model; analysis
// proceeds opportunistically, as Dyninst does), but unknown single-letter
// extensions in the leading run are also skipped.
func ParseArchString(arch string) (ExtSet, error) {
	s := strings.ToLower(strings.TrimSpace(arch))
	if !strings.HasPrefix(s, "rv64") && !strings.HasPrefix(s, "rv32") {
		return 0, fmt.Errorf("riscv: malformed arch string %q: missing rv64/rv32 prefix", arch)
	}
	s = s[4:]
	var set ExtSet
	// The leading run is single-letter extensions with optional versions;
	// underscore-separated words follow.
	words := strings.Split(s, "_")
	if len(words) == 0 || words[0] == "" {
		return 0, fmt.Errorf("riscv: malformed arch string %q: no base ISA", arch)
	}
	lead := words[0]
	for len(lead) > 0 {
		c := lead[0]
		lead = lead[1:]
		// Strip a version like "2p1".
		lead = stripVersion(lead)
		switch c {
		case 'i', 'e':
			set |= ExtI
		case 'g':
			set |= ExtG
		case 'm':
			set |= ExtM
		case 'a':
			set |= ExtA
		case 'f':
			set |= ExtF
		case 'd':
			set |= ExtD
		case 'c':
			set |= ExtC
		case 'z', 'x', 's':
			// A multi-letter extension embedded in the leading run (legal in
			// some producers): consume the rest of the word as its name.
			name := string(c) + lead
			set |= multiExt(name)
			lead = ""
		default:
			// Unknown single-letter extension: skip it.
		}
	}
	for _, w := range words[1:] {
		if w == "" {
			continue
		}
		name := stripTrailingVersion(w)
		if len(name) == 1 {
			switch name[0] {
			case 'i', 'e':
				set |= ExtI
			case 'g':
				set |= ExtG
			case 'm':
				set |= ExtM
			case 'a':
				set |= ExtA
			case 'f':
				set |= ExtF
			case 'd':
				set |= ExtD
			case 'c':
				set |= ExtC
			}
			continue
		}
		set |= multiExt(name)
	}
	if set&ExtI == 0 {
		return 0, fmt.Errorf("riscv: malformed arch string %q: no base ISA", arch)
	}
	return set, nil
}

func multiExt(name string) ExtSet {
	switch name {
	case "zicsr":
		return ExtZicsr
	case "zifencei":
		return ExtZifencei
	case "zicond":
		return ExtZicond
	case "zba":
		return ExtZba
	case "zbb":
		return ExtZbb
	case "xdbi":
		return ExtXdbi
	}
	return 0
}

// stripVersion removes a leading version number of the form "2" or "2p1".
func stripVersion(s string) string {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return s
	}
	if i < len(s) && s[i] == 'p' {
		j := i + 1
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j > i+1 {
			i = j
		}
	}
	return s[i:]
}

// stripTrailingVersion removes a trailing version like "2p0" from a
// multi-letter extension word ("zicsr2p0" -> "zicsr").
func stripTrailingVersion(s string) string {
	end := len(s)
	for end > 0 && s[end-1] >= '0' && s[end-1] <= '9' {
		end--
	}
	if end > 0 && end < len(s) && s[end-1] == 'p' {
		e2 := end - 1
		for e2 > 0 && s[e2-1] >= '0' && s[e2-1] <= '9' {
			e2--
		}
		if e2 < end-1 {
			end = e2
		}
	}
	return s[:end]
}
