package riscv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{X0, "zero"}, {X1, "ra"}, {X2, "sp"}, {X8, "s0"}, {X10, "a0"},
		{X17, "a7"}, {X31, "t6"}, {F0, "ft0"}, {F10, "fa0"}, {F31, "ft11"},
		{RegPC, "pc"}, {RegNone, "none"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestLookupReg(t *testing.T) {
	for _, c := range []struct {
		name string
		want Reg
	}{
		{"a0", RegA0}, {"x10", RegA0}, {"fp", RegFP}, {"s0", RegFP},
		{"x8", RegFP}, {"fa0", F10}, {"f10", F10}, {"zero", X0}, {"x0", X0},
	} {
		got, ok := LookupReg(c.name)
		if !ok || got != c.want {
			t.Errorf("LookupReg(%q) = %v, %v; want %v, true", c.name, got, ok, c.want)
		}
	}
	if _, ok := LookupReg("x32"); ok {
		t.Error("LookupReg(x32) succeeded; want failure")
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	if !s.Empty() {
		t.Fatal("zero RegSet not empty")
	}
	s.Add(RegA0)
	s.Add(F10)
	s.Add(RegPC)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, r := range []Reg{RegA0, F10, RegPC} {
		if !s.Contains(r) {
			t.Errorf("set missing %v", r)
		}
	}
	t2 := NewRegSet(RegA0, RegA1)
	if got := s.Intersect(t2); got.Count() != 1 || !got.Contains(RegA0) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Union(t2); got.Count() != 4 {
		t.Errorf("Union count = %d, want 4", got.Count())
	}
	if got := s.Minus(t2); got.Contains(RegA0) || got.Count() != 2 {
		t.Errorf("Minus = %v", got)
	}
	s.Remove(RegPC)
	if s.Contains(RegPC) {
		t.Error("Remove(pc) did not remove")
	}
}

func TestRegSetRegsSorted(t *testing.T) {
	s := NewRegSet(RegT6, RegA0, X1, F0, F31)
	regs := s.Regs()
	for i := 1; i < len(regs); i++ {
		if regs[i-1] >= regs[i] {
			t.Fatalf("Regs() not ascending: %v", regs)
		}
	}
}

func TestParseArchString(t *testing.T) {
	cases := []struct {
		in   string
		want ExtSet
	}{
		{"rv64imafdc", ExtI | ExtM | ExtA | ExtF | ExtD | ExtC},
		{"rv64gc", RV64GC},
		{"rv64i", ExtI},
		{"rv64imafdc_zicsr_zifencei", RV64GC},
		{"rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0_zicsr2p0_zifencei2p0", RV64GC},
		{"rv64imac", ExtI | ExtM | ExtA | ExtC},
		{"RV64GC", RV64GC},
	}
	for _, c := range cases {
		got, err := ParseArchString(c.in)
		if err != nil {
			t.Errorf("ParseArchString(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseArchString(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x86_64", "rv"} {
		if _, err := ParseArchString(bad); err == nil {
			t.Errorf("ParseArchString(%q) succeeded; want error", bad)
		}
	}
}

func TestArchStringRoundTrip(t *testing.T) {
	sets := []ExtSet{ExtI, ExtI | ExtM, ExtI | ExtC, RV64GC, ExtG}
	for _, s := range sets {
		got, err := ParseArchString(s.ArchString())
		if err != nil {
			t.Fatalf("ParseArchString(%q): %v", s.ArchString(), err)
		}
		if got != s {
			t.Errorf("round trip of %v via %q = %v", s, s.ArchString(), got)
		}
	}
}

func TestExtSetHas(t *testing.T) {
	if !RV64GC.Has(ExtC) || !RV64GC.Has(ExtD|ExtF) {
		t.Error("RV64GC should include C and FD")
	}
	if (ExtI | ExtM).Has(ExtC) {
		t.Error("IM should not include C")
	}
}

// mkInst builds an instruction for encoding tests.
func mk(mn Mnemonic, rd, rs1, rs2 Reg, imm int64) Inst {
	return Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: RegNone, Imm: imm, RM: RMDyn}
}

func TestEncodeDecodeRoundTripHandPicked(t *testing.T) {
	cases := []Inst{
		mk(MnADDI, RegA0, RegA1, RegNone, -42),
		mk(MnADDI, RegA0, RegA1, RegNone, 2047),
		mk(MnLUI, RegT0, RegNone, RegNone, 0xfffff&^0x80000), // positive 19-bit
		mk(MnLUI, RegT0, RegNone, RegNone, -1),
		mk(MnAUIPC, RegT1, RegNone, RegNone, 0x12345),
		mk(MnJAL, RegRA, RegNone, RegNone, -2048),
		mk(MnJAL, X0, RegNone, RegNone, 4096),
		mk(MnJALR, X0, RegRA, RegNone, 0),
		mk(MnJALR, RegRA, RegT0, RegNone, 100),
		mk(MnBEQ, RegNone, RegA0, RegA1, -64),
		mk(MnBGEU, RegNone, RegT3, RegT4, 4094),
		mk(MnLW, RegA0, RegSP, RegNone, 16),
		mk(MnLD, RegS1, RegFP, RegNone, -8),
		mk(MnLBU, RegT2, RegA0, RegNone, 0),
		mk(MnSD, RegNone, RegSP, RegRA, 8),
		mk(MnSB, RegNone, RegA0, RegA1, -1),
		mk(MnSLLI, RegA0, RegA0, RegNone, 63),
		mk(MnSRAI, RegA1, RegA1, RegNone, 1),
		mk(MnSRLIW, RegA2, RegA3, RegNone, 31),
		mk(MnADD, RegA0, RegA1, RegA2, 0),
		mk(MnSUB, RegS1, RegS2, RegS3, 0),
		mk(MnSRAW, RegT0, RegT1, RegT2, 0),
		mk(MnMUL, RegA0, RegA1, RegA2, 0),
		mk(MnDIVU, RegA3, RegA4, RegA5, 0),
		mk(MnREMW, RegT3, RegT4, RegT5, 0),
		mk(MnECALL, RegNone, RegNone, RegNone, 0),
		mk(MnEBREAK, RegNone, RegNone, RegNone, 0),
		mk(MnFENCE, RegNone, RegNone, RegNone, 0x0ff),
		mk(MnFENCEI, RegNone, RegNone, RegNone, 0),
		mk(MnFLD, F10, RegSP, RegNone, 24),
		mk(MnFSD, RegNone, RegSP, F10, 24),
		mk(MnFLW, F1, RegA0, RegNone, 4),
		mk(MnFSW, RegNone, RegA0, F1, 4),
		mk(MnFADDD, F0, F1, F2, 0),
		mk(MnFMULD, F10, F11, F12, 0),
		mk(MnFSGNJD, F3, F4, F5, 0),
		mk(MnFEQD, RegA0, F1, F2, 0),
		mk(MnFMVXD, RegA0, F0, RegNone, 0),
		mk(MnFMVDX, F0, RegA0, RegNone, 0),
		mk(MnFSQRTD, F1, F2, RegNone, 0),
	}
	for _, want := range cases {
		w, err := Encode(want)
		if err != nil {
			t.Errorf("Encode(%v): %v", want, err)
			continue
		}
		got, err := decode32(w, 0)
		if err != nil {
			t.Errorf("decode32(Encode(%v)=0x%08x): %v", want, w, err)
			continue
		}
		if got.Mn != want.Mn {
			t.Errorf("round trip %v: got mnemonic %v", want.Mn, got.Mn)
			continue
		}
		if got.Imm != want.Imm && want.Mn != MnECALL && want.Mn != MnEBREAK && want.Mn != MnFENCEI {
			t.Errorf("round trip %v: imm %d != %d", want.Mn, got.Imm, want.Imm)
		}
		checkReg := func(name string, g, w Reg) {
			if w != RegNone && g != w {
				t.Errorf("round trip %v: %s %v != %v", want.Mn, name, g, w)
			}
		}
		checkReg("rd", got.Rd, want.Rd)
		checkReg("rs1", got.Rs1, want.Rs1)
		checkReg("rs2", got.Rs2, want.Rs2)
	}
}

func TestFMARoundTrip(t *testing.T) {
	for _, mn := range []Mnemonic{MnFMADDS, MnFMSUBS, MnFNMSUBS, MnFNMADDS, MnFMADDD, MnFMSUBD, MnFNMSUBD, MnFNMADDD} {
		in := Inst{Mn: mn, Rd: F0, Rs1: F1, Rs2: F2, Rs3: F3, RM: RMDyn}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", mn, err)
		}
		got, err := decode32(w, 0)
		if err != nil {
			t.Fatalf("decode32(%v): %v", mn, err)
		}
		if got.Mn != mn || got.Rs3 != F3 || got.RM != RMDyn {
			t.Errorf("%v round trip: got %v rs3=%v rm=%d", mn, got.Mn, got.Rs3, got.RM)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	in := Inst{Mn: MnCSRRW, Rd: RegA0, Rs1: RegA1, CSR: 0xC01}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decode32(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mn != MnCSRRW || got.CSR != 0xC01 || got.Rd != RegA0 || got.Rs1 != RegA1 {
		t.Errorf("csrrw round trip: %+v", got)
	}
	in = Inst{Mn: MnCSRRSI, Rd: RegA0, CSR: 0x300, Imm: 17}
	w, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err = decode32(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mn != MnCSRRSI || got.Imm != 17 || got.CSR != 0x300 {
		t.Errorf("csrrsi round trip: %+v", got)
	}
}

func TestAMORoundTrip(t *testing.T) {
	for _, mn := range []Mnemonic{MnLRW, MnSCW, MnAMOSWAPW, MnAMOADDD, MnAMOMAXUD, MnLRD} {
		in := Inst{Mn: mn, Rd: RegA0, Rs1: RegA1, Rs2: RegA2, Aq: true, Rl: true}
		if mn == MnLRW || mn == MnLRD {
			in.Rs2 = RegNone
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", mn, err)
		}
		got, err := decode32(w, 0)
		if err != nil {
			t.Fatalf("decode(%v): %v", mn, err)
		}
		if got.Mn != mn || !got.Aq || !got.Rl {
			t.Errorf("%v round trip: got %v aq=%v rl=%v", mn, got.Mn, got.Aq, got.Rl)
		}
	}
}

// TestEncodeDecodeQuick fuzzes random 32-bit words: every word that decodes
// successfully must re-encode to the identical word (decode is the left
// inverse of encode on the valid-encoding subset).
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(w uint32) bool {
		w |= 3 // force a 32-bit (non-compressed) encoding
		inst, err := decode32(w, 0)
		if err != nil {
			return true // illegal encodings are fine
		}
		// Some fields are don't-care bits the decoder normalizes away
		// (fence fm bits, amo on lr). Skip shapes with known don't-cares.
		if inst.Mn == MnFENCE || inst.Mn == MnFENCEI {
			return true
		}
		inst.Compressed = false
		back, err := Encode(inst)
		if err != nil {
			t.Logf("decoded %v (0x%08x) but cannot re-encode: %v", inst, w, err)
			return false
		}
		if back != w {
			t.Logf("0x%08x -> %v -> 0x%08x", w, inst, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200000}); err != nil {
		t.Error(err)
	}
}

// TestCompressedExpansionQuick fuzzes random 16-bit halfwords: every
// halfword that decodes must (a) report Len 2 and Compressed, and (b) if
// Compress can re-compress the expansion, produce an equivalent expansion.
func TestCompressedExpansionQuick(t *testing.T) {
	f := func(h uint16) bool {
		if h&3 == 3 {
			h &^= 2 // force a compressed quadrant
		}
		inst, err := decodeCompressed(h, 0)
		if err != nil {
			return true
		}
		if inst.Len != 2 || !inst.Compressed {
			t.Logf("0x%04x: Len=%d Compressed=%v", h, inst.Len, inst.Compressed)
			return false
		}
		// The expansion must be encodable as a 32-bit instruction.
		if _, err := Encode(inst); err != nil {
			t.Logf("0x%04x expands to %v which cannot encode: %v", h, inst, err)
			return false
		}
		// If the expansion compresses again, it must decode identically.
		if h2, ok := Compress(inst); ok {
			inst2, err := decodeCompressed(h2, 0)
			if err != nil {
				t.Logf("recompressed 0x%04x -> 0x%04x fails decode: %v", h, h2, err)
				return false
			}
			if inst2.Mn != inst.Mn || inst2.Imm != inst.Imm ||
				inst2.Rd != inst.Rd || inst2.Rs1 != inst.Rs1 || inst2.Rs2 != inst.Rs2 {
				t.Logf("0x%04x: %v != recompressed %v (0x%04x)", h, inst, inst2, h2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100000}); err != nil {
		t.Error(err)
	}
}

func TestCompressHandPicked(t *testing.T) {
	cases := []struct {
		in       Inst
		wantOK   bool
		wantBack Mnemonic
	}{
		{mk(MnADDI, RegA0, RegA0, RegNone, 5), true, MnADDI},         // c.addi
		{mk(MnADDI, RegA0, X0, RegNone, -3), true, MnADDI},           // c.li
		{mk(MnADDI, RegSP, RegSP, RegNone, -32), true, MnADDI},       // c.addi16sp
		{mk(MnADDI, RegA0, RegSP, RegNone, 16), true, MnADDI},        // c.addi4spn
		{mk(MnADDI, RegA0, RegA1, RegNone, 5), false, 0},             // rd != rs1
		{mk(MnADDI, RegA0, RegA0, RegNone, 100), false, 0},           // imm too big
		{mk(MnJAL, X0, RegNone, RegNone, 2046), true, MnJAL},         // c.j
		{mk(MnJAL, X0, RegNone, RegNone, 2048), false, 0},            // out of c.j range
		{mk(MnJAL, RegRA, RegNone, RegNone, 100), false, 0},          // no c.jal on RV64
		{mk(MnJALR, X0, RegRA, RegNone, 0), true, MnJALR},            // c.jr (ret)
		{mk(MnJALR, RegRA, RegT0, RegNone, 0), true, MnJALR},         // c.jalr
		{mk(MnJALR, RegRA, RegT0, RegNone, 4), false, 0},             // nonzero offset
		{mk(MnBEQ, RegNone, RegA0, X0, 100), true, MnBEQ},            // c.beqz
		{mk(MnBNE, RegNone, RegA0, X0, -100), true, MnBNE},           // c.bnez
		{mk(MnBEQ, RegNone, RegT3, X0, 4), false, 0},                 // t3 not a c-reg
		{mk(MnLD, RegA0, RegSP, RegNone, 40), true, MnLD},            // c.ldsp
		{mk(MnSD, RegNone, RegSP, RegRA, 0), true, MnSD},             // c.sdsp
		{mk(MnLW, RegA0, RegA1, RegNone, 4), true, MnLW},             // c.lw
		{mk(MnFLD, F8, RegA0, RegNone, 8), true, MnFLD},              // c.fld
		{mk(MnADD, RegA0, X0, RegA1, 0), true, MnADD},                // c.mv
		{mk(MnADD, RegA0, RegA0, RegA1, 0), true, MnADD},             // c.add
		{mk(MnSUB, RegA0, RegA0, RegA1, 0), true, MnSUB},             // c.sub
		{mk(MnEBREAK, RegNone, RegNone, RegNone, 0), true, MnEBREAK}, // c.ebreak
		{mk(MnSLLI, RegA0, RegA0, RegNone, 12), true, MnSLLI},        // c.slli
		{mk(MnLUI, RegT0, RegNone, RegNone, 1), true, MnLUI},         // c.lui
		{mk(MnLUI, RegT0, RegNone, RegNone, 0x12345), false, 0},      // too wide
		{mk(MnXOR, RegA0, RegA0, RegA1, 0), true, MnXOR},             // c.xor
		{mk(MnADDW, RegA0, RegA0, RegA1, 0), true, MnADDW},           // c.addw
		{mk(MnADDIW, RegA0, RegA0, RegNone, 1), true, MnADDIW},       // c.addiw
	}
	for _, c := range cases {
		h, ok := Compress(c.in)
		if ok != c.wantOK {
			t.Errorf("Compress(%v) ok=%v, want %v", c.in, ok, c.wantOK)
			continue
		}
		if !ok {
			continue
		}
		back, err := decodeCompressed(h, 0)
		if err != nil {
			t.Errorf("Compress(%v) = 0x%04x, which fails decode: %v", c.in, h, err)
			continue
		}
		if back.Mn != c.wantBack {
			t.Errorf("Compress(%v) decodes to %v, want %v", c.in, back.Mn, c.wantBack)
		}
		if back.Imm != c.in.Imm {
			t.Errorf("Compress(%v) imm round trip = %d", c.in, back.Imm)
		}
	}
}

func TestDecodeLengths(t *testing.T) {
	// addi a0, a0, 1 (32-bit)
	w := MustEncode(mk(MnADDI, RegA0, RegA0, RegNone, 1))
	b := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	inst, err := Decode(b, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 4 || inst.Size() != 4 || inst.Next() != 0x1004 {
		t.Errorf("32-bit decode: Len=%d Next=%#x", inst.Len, inst.Next())
	}
	// c.nop (16-bit)
	inst, err = Decode([]byte{0x01, 0x00}, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 2 || inst.Next() != 0x1002 || !inst.Compressed {
		t.Errorf("16-bit decode: Len=%d Next=%#x compressed=%v", inst.Len, inst.Next(), inst.Compressed)
	}
	if _, err := Decode([]byte{0x01}, 0); err != ErrTruncated {
		t.Errorf("1-byte decode err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0x03, 0x00, 0x01}, 0); err != ErrTruncated {
		t.Errorf("3-byte 32-bit decode err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0x00, 0x00}, 0); err == nil {
		t.Error("all-zero halfword decoded; want illegal")
	}
}

func TestTargets(t *testing.T) {
	j := mk(MnJAL, X0, RegNone, RegNone, -16)
	j.Addr = 0x1000
	if tgt, ok := j.Target(); !ok || tgt != 0x0ff0 {
		t.Errorf("jal target = %#x, %v", tgt, ok)
	}
	b := mk(MnBNE, RegNone, RegA0, RegA1, 32)
	b.Addr = 0x2000
	if tgt, ok := b.Target(); !ok || tgt != 0x2020 {
		t.Errorf("branch target = %#x, %v", tgt, ok)
	}
	r := mk(MnJALR, X0, RegRA, RegNone, 0)
	if _, ok := r.Target(); ok {
		t.Error("jalr should have no static target")
	}
}

func TestRegsReadWritten(t *testing.T) {
	cases := []struct {
		in        Inst
		wantRead  []Reg
		wantWrite []Reg
	}{
		{mk(MnADD, RegA0, RegA1, RegA2, 0), []Reg{RegA1, RegA2}, []Reg{RegA0}},
		{mk(MnADDI, RegA0, RegA1, RegNone, 1), []Reg{RegA1}, []Reg{RegA0}},
		{mk(MnADD, X0, RegA1, RegA2, 0), []Reg{RegA1, RegA2}, nil}, // x0 write dropped
		{mk(MnSD, RegNone, RegSP, RegRA, 0), []Reg{RegSP, RegRA}, nil},
		{mk(MnLD, RegRA, RegSP, RegNone, 0), []Reg{RegSP}, []Reg{RegRA}},
		{mk(MnJAL, RegRA, RegNone, RegNone, 8), []Reg{RegPC}, []Reg{RegRA, RegPC}},
		{mk(MnJALR, X0, RegRA, RegNone, 0), []Reg{RegRA, RegPC}, []Reg{RegPC}},
		{mk(MnBEQ, RegNone, RegA0, RegA1, 8), []Reg{RegA0, RegA1, RegPC}, []Reg{RegPC}},
		{mk(MnLUI, RegT0, RegNone, RegNone, 1), nil, []Reg{RegT0}},
		{mk(MnFMULD, F0, F1, F2, 0), []Reg{F1, F2}, []Reg{F0}},
		{mk(MnFMVXD, RegA0, F0, RegNone, 0), []Reg{F0}, []Reg{RegA0}},
	}
	for _, c := range cases {
		r, w := c.in.RegsRead(), c.in.RegsWritten()
		if !r.Equal(NewRegSet(c.wantRead...)) {
			t.Errorf("%v RegsRead = %v, want %v", c.in, r, NewRegSet(c.wantRead...))
		}
		if !w.Equal(NewRegSet(c.wantWrite...)) {
			t.Errorf("%v RegsWritten = %v, want %v", c.in, w, NewRegSet(c.wantWrite...))
		}
	}
}

func TestFMARegsRead(t *testing.T) {
	in := Inst{Mn: MnFMADDD, Rd: F0, Rs1: F1, Rs2: F2, Rs3: F3, RM: RMDyn}
	if r := in.RegsRead(); !r.Equal(NewRegSet(F1, F2, F3)) {
		t.Errorf("fmadd.d reads %v", r)
	}
}

func TestMemWidth(t *testing.T) {
	cases := []struct {
		mn   Mnemonic
		want int
	}{
		{MnLB, 1}, {MnLHU, 2}, {MnLW, 4}, {MnLD, 8}, {MnSB, 1}, {MnSD, 8},
		{MnFLW, 4}, {MnFSD, 8}, {MnAMOADDW, 4}, {MnLRD, 8}, {MnADD, 0}, {MnJAL, 0},
	}
	for _, c := range cases {
		if got := (Inst{Mn: c.mn}).MemWidth(); got != c.want {
			t.Errorf("%v MemWidth = %d, want %d", c.mn, got, c.want)
		}
	}
}

func TestCategories(t *testing.T) {
	cases := []struct {
		mn   Mnemonic
		want Category
	}{
		{MnADD, CatArith}, {MnLD, CatLoad}, {MnSD, CatStore}, {MnBEQ, CatBranch},
		{MnJAL, CatJAL}, {MnJALR, CatJALR}, {MnAMOADDW, CatAMO},
		{MnFENCE, CatFence}, {MnECALL, CatSystem}, {MnCSRRW, CatSystem},
		{MnFMULD, CatArith},
	}
	for _, c := range cases {
		if got := c.mn.Cat(); got != c.want {
			t.Errorf("%v Cat = %v, want %v", c.mn, got, c.want)
		}
	}
}

func TestMnemonicExtensions(t *testing.T) {
	cases := []struct {
		mn  Mnemonic
		ext ExtSet
	}{
		{MnADD, ExtI}, {MnMUL, ExtM}, {MnLRW, ExtA}, {MnFADDS, ExtF},
		{MnFADDD, ExtD}, {MnCSRRW, ExtZicsr}, {MnFENCEI, ExtZifencei},
	}
	for _, c := range cases {
		if got := c.mn.Ext(); got != c.ext {
			t.Errorf("%v Ext = %v, want %v", c.mn, got, c.ext)
		}
	}
}

func TestAllMnemonicsHaveNames(t *testing.T) {
	seen := map[string]Mnemonic{}
	for m := Mnemonic(1); m < Mnemonic(NumMnemonics()); m++ {
		name := m.String()
		if name == "" || name == "invalid" {
			t.Errorf("mnemonic %d has no name", m)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate name %q for %d and %d", name, prev, m)
		}
		seen[name] = m
		got, ok := LookupMnemonic(name)
		if !ok || got != m {
			t.Errorf("LookupMnemonic(%q) = %v, %v", name, got, ok)
		}
	}
}

func TestEncodeBytes(t *testing.T) {
	i := mk(MnADDI, RegA0, RegA0, RegNone, 1)
	b, err := EncodeBytes(i)
	if err != nil || len(b) != 4 {
		t.Fatalf("EncodeBytes: %v, len %d", err, len(b))
	}
	i.Compressed = true
	b, err = EncodeBytes(i)
	if err != nil || len(b) != 2 {
		t.Fatalf("EncodeBytes compressed: %v, len %d", err, len(b))
	}
	// An instruction with no compressed form falls back to 4 bytes.
	i2 := mk(MnXORI, RegA0, RegA0, RegNone, 1)
	i2.Compressed = true
	b, err = EncodeBytes(i2)
	if err != nil || len(b) != 4 {
		t.Fatalf("EncodeBytes xori: %v, len %d", err, len(b))
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		mk(MnADDI, RegA0, RegA0, RegNone, 4096),
		mk(MnADDI, RegA0, RegA0, RegNone, -2049),
		mk(MnJAL, X0, RegNone, RegNone, 1<<21),
		mk(MnJAL, X0, RegNone, RegNone, 3), // misaligned
		mk(MnBEQ, RegNone, RegA0, RegA1, 5000),
		mk(MnSLLI, RegA0, RegA0, RegNone, 64),
		mk(MnSLLIW, RegA0, RegA0, RegNone, 32),
		mk(MnSD, RegNone, RegA0, RegA1, 3000),
	}
	for _, i := range bad {
		if _, err := Encode(i); err == nil {
			t.Errorf("Encode(%v) succeeded; want range error", i)
		}
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{mk(MnADDI, RegA0, RegA1, RegNone, -4), "addi a0, a1, -4"},
		{mk(MnLD, RegRA, RegSP, RegNone, 8), "ld ra, 8(sp)"},
		{mk(MnSD, RegNone, RegSP, RegRA, 8), "sd ra, 8(sp)"},
		{mk(MnJAL, RegRA, RegNone, RegNone, 64), "jal ra, 64"},
		{mk(MnJALR, X0, RegRA, RegNone, 0), "jalr zero, 0(ra)"},
		{mk(MnBEQ, RegNone, RegA0, RegA1, -8), "beq a0, a1, -8"},
		{mk(MnADD, RegA0, RegA1, RegA2, 0), "add a0, a1, a2"},
		{mk(MnECALL, RegNone, RegNone, RegNone, 0), "ecall"},
		{mk(MnFADDD, F0, F1, F2, 0), "fadd.d ft0, ft1, ft2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// TestDecodeStream decodes a little program byte stream with mixed widths.
func TestDecodeStream(t *testing.T) {
	var buf []byte
	want := []Mnemonic{MnADDI, MnADDI, MnADD, MnJALR}
	emit := func(i Inst, compressed bool) {
		i.Compressed = compressed
		b, err := EncodeBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
	}
	emit(mk(MnADDI, RegSP, RegSP, RegNone, -16), true) // compresses
	emit(mk(MnADDI, RegA0, RegA1, RegNone, 7), false)
	emit(mk(MnADD, RegA0, RegA0, RegA0, 0), true) // c.add
	emit(mk(MnJALR, X0, RegRA, RegNone, 0), true) // c.jr
	addr := uint64(0x10000)
	var got []Mnemonic
	for off := 0; off < len(buf); {
		inst, err := Decode(buf[off:], addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%d: %v", off, err)
		}
		got = append(got, inst.Mn)
		off += inst.Len
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Randomized structured round trip: build random valid instructions from the
// encode table and check decode inverts encode.
func TestStructuredRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mns := []Mnemonic{
		MnADDI, MnSLTI, MnXORI, MnORI, MnANDI, MnADD, MnSUB, MnSLL, MnXOR,
		MnSRL, MnSRA, MnOR, MnAND, MnLB, MnLH, MnLW, MnLD, MnSB, MnSH, MnSW,
		MnSD, MnBEQ, MnBNE, MnBLT, MnBGE, MnBLTU, MnBGEU, MnJAL, MnJALR,
		MnLUI, MnAUIPC, MnMUL, MnDIV, MnADDW, MnSUBW, MnADDIW,
	}
	for n := 0; n < 5000; n++ {
		mn := mns[rng.Intn(len(mns))]
		in := Inst{Mn: mn, Rd: XReg(uint32(rng.Intn(32))), Rs1: XReg(uint32(rng.Intn(32))), Rs2: XReg(uint32(rng.Intn(32))), Rs3: RegNone}
		switch mn {
		case MnJAL:
			in.Imm = int64(rng.Intn(1<<20)-(1<<19)) &^ 1
		case MnBEQ, MnBNE, MnBLT, MnBGE, MnBLTU, MnBGEU:
			in.Imm = int64(rng.Intn(8192)-4096) &^ 1
		case MnLUI, MnAUIPC:
			in.Imm = int64(rng.Intn(1<<20) - (1 << 19))
		case MnADD, MnSUB, MnSLL, MnXOR, MnSRL, MnSRA, MnOR, MnAND,
			MnMUL, MnDIV, MnADDW, MnSUBW:
			in.Imm = 0 // R-type has no immediate
		default:
			in.Imm = int64(rng.Intn(4096) - 2048)
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := decode32(w, 0)
		if err != nil {
			t.Fatalf("decode32(0x%08x from %v): %v", w, in, err)
		}
		if out.Mn != in.Mn || out.Imm != in.Imm {
			t.Fatalf("round trip %v: got %v imm=%d want imm=%d", in.Mn, out.Mn, out.Imm, in.Imm)
		}
	}
}
