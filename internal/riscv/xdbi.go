package riscv

// Xdbi extension module: two custom-0 I-type instructions the DBI engine
// emits into its code cache and nowhere else. They follow the same
// self-registration pattern as the RVA23 module (rva23.go) — mnemonic
// metadata, encodings, and decodings install themselves from init, and no
// other file in this package changes (the paper's Section 3.1.1 extension
// modularity requirement, exercised here for a custom extension).
//
//	dbi.acc rd, rs1, imm   (funct3=0) — counter-compensation accumulator.
//	    Applies the compensation delta indexed by imm+2048 to the attached
//	    DBIComp: the delta records how far the translated instruction
//	    stream has diverged from the original in retired instructions and
//	    cycles, so rdcycle/rdinstret reads subtract it back out. rd/rs1
//	    are ignored (encoded as x0).
//	dbi.jt rd, rs1, imm    (funct3=1) — inline indirect-branch transfer.
//	    Terminates an inline-lookup stub on a hit: control transfers to
//	    the translated cache address stashed in DBIComp scratch CSR 0x7C3,
//	    after applying the delta indexed by imm+2048. Classified CatJALR
//	    (it IS an indirect jump) but dispatched by value in the emulator.
//
// Outside a DBI-attached CPU (DBIComp == nil) both instructions fault like
// any unimplemented custom opcode, so native runs are unaffected.

// opCustom0 is the custom-0 opcode space (0b0001011), reserved by the ISA
// for vendor extensions and never used by any standard encoding.
const opCustom0 uint32 = 0b0001011

// extIKey identifies an I-type encoding by opcode and funct3.
type extIKey struct {
	opcode, f3 uint32
}

// extDecodeI maps I-type encodings claimed by extension modules. decode32
// consults it before declaring an unknown opcode illegal.
var extDecodeI = map[extIKey]Mnemonic{}

// registerI wires up one I-type extension instruction in both directions.
func registerI(mn Mnemonic, name string, ext ExtSet, cat Category, opcode, f3 uint32) {
	registerMnemonic(mn, name, ext, cat)
	encTable[mn] = encSpec{form: formI, opcode: opcode, f3: f3}
	extDecodeI[extIKey{opcode, f3}] = mn
}

func init() {
	registerI(MnDBIACC, "dbi.acc", ExtXdbi, CatArith, opCustom0, 0)
	registerI(MnDBIJT, "dbi.jt", ExtXdbi, CatJALR, opCustom0, 1)
}

// decodeExtI is the decoder hook: called when the base-ISA switch does not
// recognize an opcode, before giving up as illegal.
func decodeExtI(inst Inst, opcode, f3, rd, rs1 uint32, imm int64) (Inst, bool) {
	mn, ok := extDecodeI[extIKey{opcode, f3}]
	if !ok {
		return inst, false
	}
	inst.Mn = mn
	inst.Rd = XReg(rd)
	inst.Rs1 = XReg(rs1)
	inst.Imm = imm
	return inst, true
}
