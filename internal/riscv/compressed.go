package riscv

import "fmt"

// This file implements the C (compressed) extension: decoding 16-bit
// encodings into their 32-bit base expansions, and the reverse Compress
// operation used by the assembler and the patcher when the mutatee's
// extension set permits compressed instructions.
//
// Per Section 3.1.2 of the paper, compressed instructions matter to the
// instrumenter in two ways: they halve code size (so functions can be as
// short as 2 bytes), and the compressed jump c.j only reaches [-2^12, 2^12)
// bytes, forcing a fall-back ladder when patching jumps to trampolines.

// CJMin and CJMax bound the byte offsets reachable by the compressed jump
// c.j: an 11-bit signed, 2-byte-aligned offset, i.e. [-2048, 2046].
const (
	CJMin = -(1 << 11)
	CJMax = (1 << 11) - 2
)

// JALRange is the reach of the standard jal: offsets in [-2^20, 2^20).
const (
	JALMin = -(1 << 20)
	JALMax = (1 << 20) - 1
)

func creg(n uint32) Reg  { return XReg(8 + (n & 7)) }
func cfreg(n uint32) Reg { return FReg(8 + (n & 7)) }

func decodeCompressed(h uint16, addr uint64) (Inst, error) {
	inst := Inst{
		Addr: addr, Raw: uint32(h), Len: 2, Compressed: true,
		Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone,
	}
	ill := func() (Inst, error) {
		inst.Mn = MnInvalid
		return inst, fmt.Errorf("%w: compressed 0x%04x at 0x%x", ErrIllegal, h, addr)
	}
	w := uint32(h)
	op := w & 3
	f3 := bits(w, 15, 13)

	switch op {
	case 0:
		switch f3 {
		case 0b000: // c.addi4spn
			imm := bits(w, 10, 7)<<6 | bits(w, 12, 11)<<4 | bits(w, 5, 5)<<3 | bits(w, 6, 6)<<2
			if imm == 0 {
				return ill()
			}
			inst.Mn = MnADDI
			inst.Rd = creg(bits(w, 4, 2))
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b001: // c.fld
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			inst.Mn = MnFLD
			inst.Rd = cfreg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		case 0b010: // c.lw
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 6)<<2 | bits(w, 5, 5)<<6
			inst.Mn = MnLW
			inst.Rd = creg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		case 0b011: // c.ld (RV64)
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			inst.Mn = MnLD
			inst.Rd = creg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		case 0b101: // c.fsd
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			inst.Mn = MnFSD
			inst.Rs2 = cfreg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		case 0b110: // c.sw
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 6)<<2 | bits(w, 5, 5)<<6
			inst.Mn = MnSW
			inst.Rs2 = creg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		case 0b111: // c.sd (RV64)
			imm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			inst.Mn = MnSD
			inst.Rs2 = creg(bits(w, 4, 2))
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Imm = int64(imm)
		default:
			return ill()
		}
	case 1:
		switch f3 {
		case 0b000: // c.addi / c.nop
			imm := int64(int32(bits(w, 12, 12)<<5|bits(w, 6, 2)) << 26 >> 26)
			rd := bits(w, 11, 7)
			inst.Mn = MnADDI
			inst.Rd = XReg(rd)
			inst.Rs1 = XReg(rd)
			inst.Imm = imm
		case 0b001: // c.addiw (RV64)
			rd := bits(w, 11, 7)
			if rd == 0 {
				return ill()
			}
			imm := int64(int32(bits(w, 12, 12)<<5|bits(w, 6, 2)) << 26 >> 26)
			inst.Mn = MnADDIW
			inst.Rd = XReg(rd)
			inst.Rs1 = XReg(rd)
			inst.Imm = imm
		case 0b010: // c.li
			imm := int64(int32(bits(w, 12, 12)<<5|bits(w, 6, 2)) << 26 >> 26)
			inst.Mn = MnADDI
			inst.Rd = XReg(bits(w, 11, 7))
			inst.Rs1 = X0
			inst.Imm = imm
		case 0b011:
			rd := bits(w, 11, 7)
			if rd == 2 { // c.addi16sp
				imm := int64(int32(bits(w, 12, 12)<<9|bits(w, 4, 3)<<7|bits(w, 5, 5)<<6|
					bits(w, 2, 2)<<5|bits(w, 6, 6)<<4) << 22 >> 22)
				if imm == 0 {
					return ill()
				}
				inst.Mn = MnADDI
				inst.Rd = RegSP
				inst.Rs1 = RegSP
				inst.Imm = imm
			} else { // c.lui
				imm := int64(int32(bits(w, 12, 12)<<5|bits(w, 6, 2)) << 26 >> 26)
				if imm == 0 || rd == 0 {
					return ill()
				}
				inst.Mn = MnLUI
				inst.Rd = XReg(rd)
				inst.Imm = imm
			}
		case 0b100:
			rd := creg(bits(w, 9, 7))
			switch bits(w, 11, 10) {
			case 0b00, 0b01: // c.srli / c.srai
				shamt := int64(bits(w, 12, 12)<<5 | bits(w, 6, 2))
				if bits(w, 11, 10) == 0 {
					inst.Mn = MnSRLI
				} else {
					inst.Mn = MnSRAI
				}
				inst.Rd = rd
				inst.Rs1 = rd
				inst.Imm = shamt
			case 0b10: // c.andi
				imm := int64(int32(bits(w, 12, 12)<<5|bits(w, 6, 2)) << 26 >> 26)
				inst.Mn = MnANDI
				inst.Rd = rd
				inst.Rs1 = rd
				inst.Imm = imm
			case 0b11:
				rs2 := creg(bits(w, 4, 2))
				inst.Rd = rd
				inst.Rs1 = rd
				inst.Rs2 = rs2
				if bits(w, 12, 12) == 0 {
					switch bits(w, 6, 5) {
					case 0b00:
						inst.Mn = MnSUB
					case 0b01:
						inst.Mn = MnXOR
					case 0b10:
						inst.Mn = MnOR
					case 0b11:
						inst.Mn = MnAND
					}
				} else {
					switch bits(w, 6, 5) {
					case 0b00:
						inst.Mn = MnSUBW
					case 0b01:
						inst.Mn = MnADDW
					default:
						return ill()
					}
				}
			}
		case 0b101: // c.j
			imm := int64(int32(bits(w, 12, 12)<<11|bits(w, 8, 8)<<10|bits(w, 10, 9)<<8|
				bits(w, 6, 6)<<7|bits(w, 7, 7)<<6|bits(w, 2, 2)<<5|
				bits(w, 11, 11)<<4|bits(w, 5, 3)<<1) << 20 >> 20)
			inst.Mn = MnJAL
			inst.Rd = X0
			inst.Imm = imm
		case 0b110, 0b111: // c.beqz / c.bnez
			imm := int64(int32(bits(w, 12, 12)<<8|bits(w, 6, 5)<<6|bits(w, 2, 2)<<5|
				bits(w, 11, 10)<<3|bits(w, 4, 3)<<1) << 23 >> 23)
			if f3 == 0b110 {
				inst.Mn = MnBEQ
			} else {
				inst.Mn = MnBNE
			}
			inst.Rs1 = creg(bits(w, 9, 7))
			inst.Rs2 = X0
			inst.Imm = imm
		default:
			return ill()
		}
	case 2:
		switch f3 {
		case 0b000: // c.slli
			rd := bits(w, 11, 7)
			shamt := int64(bits(w, 12, 12)<<5 | bits(w, 6, 2))
			inst.Mn = MnSLLI
			inst.Rd = XReg(rd)
			inst.Rs1 = XReg(rd)
			inst.Imm = shamt
		case 0b001: // c.fldsp
			imm := bits(w, 12, 12)<<5 | bits(w, 6, 5)<<3 | bits(w, 4, 2)<<6
			inst.Mn = MnFLD
			inst.Rd = FReg(bits(w, 11, 7))
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b010: // c.lwsp
			rd := bits(w, 11, 7)
			if rd == 0 {
				return ill()
			}
			imm := bits(w, 12, 12)<<5 | bits(w, 6, 4)<<2 | bits(w, 3, 2)<<6
			inst.Mn = MnLW
			inst.Rd = XReg(rd)
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b011: // c.ldsp (RV64)
			rd := bits(w, 11, 7)
			if rd == 0 {
				return ill()
			}
			imm := bits(w, 12, 12)<<5 | bits(w, 6, 5)<<3 | bits(w, 4, 2)<<6
			inst.Mn = MnLD
			inst.Rd = XReg(rd)
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b100:
			rs1 := bits(w, 11, 7)
			rs2 := bits(w, 6, 2)
			if bits(w, 12, 12) == 0 {
				if rs2 == 0 { // c.jr
					if rs1 == 0 {
						return ill()
					}
					inst.Mn = MnJALR
					inst.Rd = X0
					inst.Rs1 = XReg(rs1)
				} else { // c.mv
					inst.Mn = MnADD
					inst.Rd = XReg(rs1)
					inst.Rs1 = X0
					inst.Rs2 = XReg(rs2)
				}
			} else {
				switch {
				case rs1 == 0 && rs2 == 0: // c.ebreak
					inst.Mn = MnEBREAK
				case rs2 == 0: // c.jalr
					inst.Mn = MnJALR
					inst.Rd = RegRA
					inst.Rs1 = XReg(rs1)
				default: // c.add
					inst.Mn = MnADD
					inst.Rd = XReg(rs1)
					inst.Rs1 = XReg(rs1)
					inst.Rs2 = XReg(rs2)
				}
			}
		case 0b101: // c.fsdsp
			imm := bits(w, 12, 10)<<3 | bits(w, 9, 7)<<6
			inst.Mn = MnFSD
			inst.Rs2 = FReg(bits(w, 6, 2))
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b110: // c.swsp
			imm := bits(w, 12, 9)<<2 | bits(w, 8, 7)<<6
			inst.Mn = MnSW
			inst.Rs2 = XReg(bits(w, 6, 2))
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		case 0b111: // c.sdsp (RV64)
			imm := bits(w, 12, 10)<<3 | bits(w, 9, 7)<<6
			inst.Mn = MnSD
			inst.Rs2 = XReg(bits(w, 6, 2))
			inst.Rs1 = RegSP
			inst.Imm = int64(imm)
		default:
			return ill()
		}
	default:
		return ill()
	}
	if uint32(h) == 0 {
		return ill() // the all-zero halfword is defined illegal
	}
	return inst, nil
}

// isCReg reports whether r is one of the eight registers addressable by the
// three-bit register fields of most compressed formats (x8-x15 / f8-f15).
func isCReg(r Reg) bool {
	n := r.Num()
	return n >= 8 && n <= 15
}

// Compress attempts to find a 16-bit encoding for the instruction. It
// returns the halfword and true on success. The caller is responsible for
// checking that the target extension set includes C.
func Compress(i Inst) (uint16, bool) {
	fits6 := func(v int64) bool { return v >= -32 && v <= 31 }
	switch i.Mn {
	case MnADDI:
		switch {
		case i.Rd == i.Rs1 && i.Rd != X0 && fits6(i.Imm):
			// c.addi (imm may be 0 only for the canonical nop rd==x0 form;
			// the spec reserves nzimm==0, so require imm != 0 here)
			if i.Imm == 0 {
				return 0, false
			}
			return c16(1, 0b000, bits6(i.Imm), uint32(i.Rd.Num())), true
		case i.Rd == X0 && i.Rs1 == X0 && i.Imm == 0:
			return 0x0001, true // c.nop
		case i.Rs1 == X0 && i.Rd != X0 && fits6(i.Imm):
			return c16(1, 0b010, bits6(i.Imm), uint32(i.Rd.Num())), true // c.li
		case i.Rd == RegSP && i.Rs1 == RegSP && i.Imm != 0 && i.Imm%16 == 0 && i.Imm >= -512 && i.Imm <= 496:
			v := uint32(i.Imm)
			imm := bits(v, 9, 9)<<12 | bits(v, 4, 4)<<6 | bits(v, 6, 6)<<5 |
				bits(v, 8, 7)<<3 | bits(v, 5, 5)<<2
			return uint16(0b011<<13 | 2<<7 | imm<<0 | 0b01), true // c.addi16sp
		case i.Rs1 == RegSP && isCReg(i.Rd) && i.Imm > 0 && i.Imm%4 == 0 && i.Imm <= 1020:
			v := uint32(i.Imm)
			imm := bits(v, 5, 4)<<11 | bits(v, 9, 6)<<7 | bits(v, 2, 2)<<6 | bits(v, 3, 3)<<5
			return uint16(0b000<<13 | imm | (i.Rd.Num()-8)<<2 | 0b00), true // c.addi4spn
		}
	case MnADDIW:
		if i.Rd == i.Rs1 && i.Rd != X0 && fits6(i.Imm) {
			return c16(1, 0b001, bits6(i.Imm), uint32(i.Rd.Num())), true
		}
	case MnLUI:
		if i.Rd != X0 && i.Rd != RegSP && i.Imm != 0 && fits6(i.Imm) {
			return c16(1, 0b011, bits6(i.Imm), uint32(i.Rd.Num())), true
		}
	case MnSLLI:
		if i.Rd == i.Rs1 && i.Rd != X0 && i.Imm > 0 && i.Imm < 64 {
			return c16(2, 0b000, uint32(i.Imm), uint32(i.Rd.Num())), true
		}
	case MnSRLI, MnSRAI:
		if i.Rd == i.Rs1 && isCReg(i.Rd) && i.Imm > 0 && i.Imm < 64 {
			sel := uint32(0b00)
			if i.Mn == MnSRAI {
				sel = 0b01
			}
			sh := uint32(i.Imm)
			return uint16(0b100<<13 | bits(sh, 5, 5)<<12 | sel<<10 |
				(i.Rd.Num()-8)<<7 | bits(sh, 4, 0)<<2 | 0b01), true
		}
	case MnANDI:
		if i.Rd == i.Rs1 && isCReg(i.Rd) && fits6(i.Imm) {
			im := uint32(i.Imm) & 0x3f
			return uint16(0b100<<13 | bits(im, 5, 5)<<12 | 0b10<<10 |
				(i.Rd.Num()-8)<<7 | bits(im, 4, 0)<<2 | 0b01), true
		}
	case MnADD:
		switch {
		case i.Rs1 == X0 && i.Rd != X0 && i.Rs2 != X0: // c.mv
			return uint16(0b100<<13 | 0<<12 | i.Rd.Num()<<7 | i.Rs2.Num()<<2 | 0b10), true
		case i.Rd == i.Rs1 && i.Rd != X0 && i.Rs2 != X0: // c.add
			return uint16(0b100<<13 | 1<<12 | i.Rd.Num()<<7 | i.Rs2.Num()<<2 | 0b10), true
		}
	case MnSUB, MnXOR, MnOR, MnAND, MnSUBW, MnADDW:
		if i.Rd == i.Rs1 && isCReg(i.Rd) && isCReg(i.Rs2) {
			var hi, sel uint32
			switch i.Mn {
			case MnSUB:
				hi, sel = 0, 0b00
			case MnXOR:
				hi, sel = 0, 0b01
			case MnOR:
				hi, sel = 0, 0b10
			case MnAND:
				hi, sel = 0, 0b11
			case MnSUBW:
				hi, sel = 1, 0b00
			case MnADDW:
				hi, sel = 1, 0b01
			}
			return uint16(0b100<<13 | hi<<12 | 0b11<<10 | (i.Rd.Num()-8)<<7 |
				sel<<5 | (i.Rs2.Num()-8)<<2 | 0b01), true
		}
	case MnJAL:
		if i.Rd == X0 && i.Imm >= CJMin && i.Imm <= CJMax && i.Imm&1 == 0 {
			v := uint32(i.Imm) & 0xfff
			imm := bits(v, 11, 11)<<12 | bits(v, 4, 4)<<11 | bits(v, 9, 8)<<9 |
				bits(v, 10, 10)<<8 | bits(v, 6, 6)<<7 | bits(v, 7, 7)<<6 |
				bits(v, 3, 1)<<3 | bits(v, 5, 5)<<2
			return uint16(0b101<<13 | imm | 0b01), true // c.j
		}
	case MnJALR:
		if i.Imm == 0 && i.Rs1 != X0 {
			if i.Rd == X0 {
				return uint16(0b100<<13 | 0<<12 | i.Rs1.Num()<<7 | 0b10), true // c.jr
			}
			if i.Rd == RegRA {
				return uint16(0b100<<13 | 1<<12 | i.Rs1.Num()<<7 | 0b10), true // c.jalr
			}
		}
	case MnBEQ, MnBNE:
		if i.Rs2 == X0 && isCReg(i.Rs1) && i.Imm >= -256 && i.Imm <= 254 && i.Imm&1 == 0 {
			f3 := uint32(0b110)
			if i.Mn == MnBNE {
				f3 = 0b111
			}
			v := uint32(i.Imm) & 0x1ff
			imm := bits(v, 8, 8)<<12 | bits(v, 4, 3)<<10 | bits(v, 7, 6)<<5 |
				bits(v, 2, 1)<<3 | bits(v, 5, 5)<<2
			return uint16(f3<<13 | imm | (i.Rs1.Num()-8)<<7 | 0b01), true
		}
	case MnEBREAK:
		return 0x9002, true // c.ebreak
	case MnLW, MnLD, MnFLD:
		if i.Rs1 == RegSP {
			return compressLoadSP(i)
		}
		return compressLoadReg(i)
	case MnSW, MnSD, MnFSD:
		if i.Rs1 == RegSP {
			return compressStoreSP(i)
		}
		return compressStoreReg(i)
	}
	return 0, false
}

func c16(op, f3, imm6, rd uint32) uint16 {
	return uint16(f3<<13 | bits(imm6, 5, 5)<<12 | rd<<7 | bits(imm6, 4, 0)<<2 | op)
}

func bits6(v int64) uint32 { return uint32(v) & 0x3f }

func compressLoadSP(i Inst) (uint16, bool) {
	switch i.Mn {
	case MnLW:
		if i.Rd.IsX() && i.Rd != X0 && i.Imm >= 0 && i.Imm <= 252 && i.Imm%4 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 5)<<12 | bits(v, 4, 2)<<4 | bits(v, 7, 6)<<2
			return uint16(0b010<<13 | imm | i.Rd.Num()<<7 | 0b10), true
		}
	case MnLD:
		if i.Rd.IsX() && i.Rd != X0 && i.Imm >= 0 && i.Imm <= 504 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 5)<<12 | bits(v, 4, 3)<<5 | bits(v, 8, 6)<<2
			return uint16(0b011<<13 | imm | i.Rd.Num()<<7 | 0b10), true
		}
	case MnFLD:
		if i.Rd.IsF() && i.Imm >= 0 && i.Imm <= 504 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 5)<<12 | bits(v, 4, 3)<<5 | bits(v, 8, 6)<<2
			return uint16(0b001<<13 | imm | i.Rd.Num()<<7 | 0b10), true
		}
	}
	return 0, false
}

func compressStoreSP(i Inst) (uint16, bool) {
	switch i.Mn {
	case MnSW:
		if i.Rs2.IsX() && i.Imm >= 0 && i.Imm <= 252 && i.Imm%4 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 2)<<9 | bits(v, 7, 6)<<7
			return uint16(0b110<<13 | imm | i.Rs2.Num()<<2 | 0b10), true
		}
	case MnSD:
		if i.Rs2.IsX() && i.Imm >= 0 && i.Imm <= 504 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 8, 6)<<7
			return uint16(0b111<<13 | imm | i.Rs2.Num()<<2 | 0b10), true
		}
	case MnFSD:
		if i.Rs2.IsF() && i.Imm >= 0 && i.Imm <= 504 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 8, 6)<<7
			return uint16(0b101<<13 | imm | i.Rs2.Num()<<2 | 0b10), true
		}
	}
	return 0, false
}

func compressLoadReg(i Inst) (uint16, bool) {
	if !isCReg(i.Rs1) || !isCReg(i.Rd) {
		return 0, false
	}
	switch i.Mn {
	case MnLW:
		if i.Imm >= 0 && i.Imm <= 124 && i.Imm%4 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 2, 2)<<6 | bits(v, 6, 6)<<5
			return uint16(0b010<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rd.Num()-8)<<2 | 0b00), true
		}
	case MnLD:
		if i.Rd.IsX() && i.Imm >= 0 && i.Imm <= 248 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 7, 6)<<5
			return uint16(0b011<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rd.Num()-8)<<2 | 0b00), true
		}
	case MnFLD:
		if i.Rd.IsF() && i.Imm >= 0 && i.Imm <= 248 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 7, 6)<<5
			return uint16(0b001<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rd.Num()-8)<<2 | 0b00), true
		}
	}
	return 0, false
}

func compressStoreReg(i Inst) (uint16, bool) {
	if !isCReg(i.Rs1) || !isCReg(i.Rs2) {
		return 0, false
	}
	switch i.Mn {
	case MnSW:
		if i.Imm >= 0 && i.Imm <= 124 && i.Imm%4 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 2, 2)<<6 | bits(v, 6, 6)<<5
			return uint16(0b110<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rs2.Num()-8)<<2 | 0b00), true
		}
	case MnSD:
		if i.Rs2.IsX() && i.Imm >= 0 && i.Imm <= 248 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 7, 6)<<5
			return uint16(0b111<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rs2.Num()-8)<<2 | 0b00), true
		}
	case MnFSD:
		if i.Rs2.IsF() && i.Imm >= 0 && i.Imm <= 248 && i.Imm%8 == 0 {
			v := uint32(i.Imm)
			imm := bits(v, 5, 3)<<10 | bits(v, 7, 6)<<5
			return uint16(0b101<<13 | imm | (i.Rs1.Num()-8)<<7 | (i.Rs2.Num()-8)<<2 | 0b00), true
		}
	}
	return 0, false
}
