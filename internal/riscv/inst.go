package riscv

import (
	"fmt"
	"strings"
)

// Inst is a decoded (or to-be-encoded) RISC-V instruction. Compressed
// instructions are represented by their 32-bit expansion with Len == 2 and
// Compressed == true, so every consumer sees one uniform instruction model.
//
// Operand field usage by instruction shape:
//
//	loads            Rd, Rs1 (base), Imm (offset)
//	stores           Rs2 (source), Rs1 (base), Imm (offset)
//	branches         Rs1, Rs2, Imm (byte offset from Addr)
//	jal              Rd (link), Imm (byte offset from Addr)
//	jalr             Rd (link), Rs1 (target base), Imm (offset)
//	lui/auipc        Rd, Imm (the 20-bit immediate as written in assembly,
//	                 i.e. the value that lands in bits 31:12)
//	reg-reg arith    Rd, Rs1, Rs2 (and Rs3 for fused multiply-add)
//	reg-imm arith    Rd, Rs1, Imm
//	csr              Rd, Rs1 (or zimm in Imm for the *I forms), CSR
//	amo              Rd, Rs1 (address), Rs2 (source), Aq, Rl
type Inst struct {
	Addr uint64 // address the instruction was decoded at
	Raw  uint32 // raw encoding (low 16 bits for compressed)
	Len  int    // encoded length in bytes: 2 or 4

	Mn  Mnemonic
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Rs3 Reg
	Imm int64

	CSR    uint16 // CSR address for Zicsr instructions
	RM     uint8  // rounding mode field for floating-point operations
	Aq, Rl bool   // acquire/release bits for AMO instructions

	Compressed bool // true if decoded from a 16-bit RVC encoding
}

// RMDyn is the "dynamic" rounding-mode selector (use the frm CSR).
const RMDyn uint8 = 0b111

// Valid reports whether the instruction decoded successfully.
func (i Inst) Valid() bool { return i.Mn != MnInvalid }

// Cat returns the structural category of the instruction.
func (i Inst) Cat() Category { return i.Mn.Cat() }

// Size returns the encoded length in bytes (2 for compressed, else 4).
func (i Inst) Size() uint64 {
	if i.Len == 2 {
		return 2
	}
	return 4
}

// Next returns the address of the instruction that follows sequentially.
func (i Inst) Next() uint64 { return i.Addr + i.Size() }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Cat() == CatBranch }

// IsJAL reports whether the instruction is jal (pc-relative jump-and-link).
func (i Inst) IsJAL() bool { return i.Mn == MnJAL }

// IsJALR reports whether the instruction is jalr (indirect jump-and-link).
func (i Inst) IsJALR() bool { return i.Mn == MnJALR }

// IsControlFlow reports whether the instruction can redirect execution.
func (i Inst) IsControlFlow() bool {
	switch i.Cat() {
	case CatBranch, CatJAL, CatJALR:
		return true
	}
	return i.Mn == MnECALL || i.Mn == MnEBREAK
}

// Target returns the statically-known control transfer target, if any.
// Conditional branches and jal have pc-relative targets; jalr does not
// (resolving it is the parser's job, via backward slicing).
func (i Inst) Target() (uint64, bool) {
	switch i.Cat() {
	case CatBranch, CatJAL:
		return i.Addr + uint64(i.Imm), true
	}
	return 0, false
}

// IsLoad reports whether the instruction reads memory (loads and the read
// half of AMOs are handled separately by MemAccess).
func (i Inst) IsLoad() bool { return i.Cat() == CatLoad }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.Cat() == CatStore }

// MemWidth returns the width in bytes of the instruction's memory access,
// or 0 if it does not access memory.
func (i Inst) MemWidth() int {
	switch i.Mn {
	case MnLB, MnLBU, MnSB:
		return 1
	case MnLH, MnLHU, MnSH:
		return 2
	case MnLW, MnLWU, MnSW, MnFLW, MnFSW,
		MnLRW, MnSCW, MnAMOSWAPW, MnAMOADDW, MnAMOXORW, MnAMOANDW,
		MnAMOORW, MnAMOMINW, MnAMOMAXW, MnAMOMINUW, MnAMOMAXUW:
		return 4
	case MnLD, MnSD, MnFLD, MnFSD,
		MnLRD, MnSCD, MnAMOSWAPD, MnAMOADDD, MnAMOXORD, MnAMOANDD,
		MnAMOORD, MnAMOMIND, MnAMOMAXD, MnAMOMINUD, MnAMOMAXUD:
		return 8
	}
	return 0
}

// String disassembles the instruction in conventional assembly syntax.
func (i Inst) String() string {
	if !i.Valid() {
		return fmt.Sprintf(".insn 0x%x", i.Raw)
	}
	name := i.Mn.String()
	switch i.Mn {
	case MnECALL, MnEBREAK, MnFENCEI:
		return name
	case MnFENCE:
		return name
	case MnLUI, MnAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", name, i.Rd, uint32(i.Imm)&0xfffff)
	case MnJAL:
		return fmt.Sprintf("%s %s, %d", name, i.Rd, i.Imm)
	case MnJALR:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rd, i.Imm, i.Rs1)
	case MnBEQ, MnBNE, MnBLT, MnBGE, MnBLTU, MnBGEU:
		return fmt.Sprintf("%s %s, %s, %d", name, i.Rs1, i.Rs2, i.Imm)
	case MnCSRRW, MnCSRRS, MnCSRRC:
		return fmt.Sprintf("%s %s, 0x%x, %s", name, i.Rd, i.CSR, i.Rs1)
	case MnCSRRWI, MnCSRRSI, MnCSRRCI:
		return fmt.Sprintf("%s %s, 0x%x, %d", name, i.Rd, i.CSR, i.Imm)
	}
	switch i.Cat() {
	case CatLoad:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rd, i.Imm, i.Rs1)
	case CatStore:
		return fmt.Sprintf("%s %s, %d(%s)", name, i.Rs2, i.Imm, i.Rs1)
	case CatAMO:
		suffix := ""
		if i.Aq {
			suffix += ".aq"
		}
		if i.Rl {
			suffix += ".rl"
		}
		if i.Mn == MnLRW || i.Mn == MnLRD {
			return fmt.Sprintf("%s%s %s, (%s)", name, suffix, i.Rd, i.Rs1)
		}
		return fmt.Sprintf("%s%s %s, %s, (%s)", name, suffix, i.Rd, i.Rs2, i.Rs1)
	}
	if i.Rs3 != RegNone && i.Rs3 != 0 && isFMA(i.Mn) {
		return fmt.Sprintf("%s %s, %s, %s, %s", name, i.Rd, i.Rs1, i.Rs2, i.Rs3)
	}
	if spec, ok := encTable[i.Mn]; ok {
		switch spec.form {
		case formI, formIShift, formIShiftW:
			return fmt.Sprintf("%s %s, %s, %d", name, i.Rd, i.Rs1, i.Imm)
		case formR:
			if spec.rs2fixed {
				return fmt.Sprintf("%s %s, %s", name, i.Rd, i.Rs1)
			}
			return fmt.Sprintf("%s %s, %s, %s", name, i.Rd, i.Rs1, i.Rs2)
		}
	}
	// Fallback: best-effort generic rendering.
	parts := []string{}
	if i.Rd != RegNone {
		parts = append(parts, i.Rd.String())
	}
	if i.Rs1 != RegNone {
		parts = append(parts, i.Rs1.String())
	}
	if i.Rs2 != RegNone {
		parts = append(parts, i.Rs2.String())
	}
	return name + " " + strings.Join(parts, ", ")
}

func isFMA(m Mnemonic) bool {
	switch m {
	case MnFMADDS, MnFMSUBS, MnFNMSUBS, MnFNMADDS,
		MnFMADDD, MnFMSUBD, MnFNMSUBD, MnFNMADDD:
		return true
	}
	return false
}

// IsFMA reports whether the mnemonic is a fused multiply-add (the only
// four-operand instruction shape).
func IsFMA(m Mnemonic) bool { return isFMA(m) }
