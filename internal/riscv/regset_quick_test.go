package riscv

import (
	"testing"
	"testing/quick"
)

// Property-based tests for RegSet: the register-set algebra underlies
// liveness and the dead-register optimization, so its laws get quick
// checks rather than examples.

func regsFrom(bits uint64, pc bool) RegSet {
	var s RegSet
	for r := Reg(0); r < 64; r++ {
		if bits&(1<<r) != 0 {
			s.Add(r)
		}
	}
	if pc {
		s.Add(RegPC)
	}
	return s
}

func TestRegSetAlgebraQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	// Union is commutative and idempotent; Minus then Union restores.
	if err := quick.Check(func(a, b uint64, pa, pb bool) bool {
		A, B := regsFrom(a, pa), regsFrom(b, pb)
		if !A.Union(B).Equal(B.Union(A)) {
			return false
		}
		if !A.Union(A).Equal(A) {
			return false
		}
		// (A - B) ∪ (A ∩ B) == A
		if !A.Minus(B).Union(A.Intersect(B)).Equal(A) {
			return false
		}
		// De Morgan-ish: (A ∪ B) - B == A - B
		if !A.Union(B).Minus(B).Equal(A.Minus(B)) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}

	// Count is |Regs()|, and Contains agrees with membership in Regs().
	if err := quick.Check(func(a uint64, pa bool) bool {
		A := regsFrom(a, pa)
		regs := A.Regs()
		if len(regs) != A.Count() {
			return false
		}
		for _, r := range regs {
			if !A.Contains(r) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}

	// Add/Remove round trip.
	if err := quick.Check(func(a uint64, rn uint8) bool {
		A := regsFrom(a, false)
		r := Reg(rn % 64)
		B := A
		B.Add(r)
		if !B.Contains(r) {
			return false
		}
		B.Remove(r)
		return !B.Contains(r)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestInstAccessDisjointnessQuick: for every decodable instruction, the
// read and written register sets must be consistent with the operand model
// (no register can be "written" by a store, PC is written by every control
// transfer, and x0 never appears as written).
func TestInstAccessDisjointnessQuick(t *testing.T) {
	f := func(w uint32) bool {
		w |= 3
		inst, err := decode32(w, 0x1000)
		if err != nil {
			return true
		}
		written := inst.RegsWritten()
		if written.Contains(X0) {
			t.Logf("%v writes x0", inst)
			return false
		}
		switch inst.Cat() {
		case CatStore:
			if written.Count() != 0 {
				t.Logf("store %v writes %v", inst, written)
				return false
			}
		case CatBranch, CatJAL, CatJALR:
			if !written.Contains(RegPC) {
				t.Logf("control transfer %v does not write pc", inst)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100000}); err != nil {
		t.Error(err)
	}
}
