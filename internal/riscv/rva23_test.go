package riscv

import "testing"

// Tests for the RVA23-profile extension module (Zicond + Zba + Zbb subset)
// — the paper's Section 3.4 next step, added here to exercise the
// modularity requirement of Section 3.1.1.

func TestRVA23RoundTrip(t *testing.T) {
	for _, mn := range []Mnemonic{
		MnCZEROEQZ, MnCZERONEZ, MnSH1ADD, MnSH2ADD, MnSH3ADD,
		MnANDN, MnORN, MnXNOR, MnMIN, MnMINU, MnMAX, MnMAXU,
	} {
		in := Inst{Mn: mn, Rd: RegA0, Rs1: RegA1, Rs2: RegA2, Rs3: RegNone}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", mn, err)
		}
		out, err := decode32(w, 0)
		if err != nil {
			t.Fatalf("decode(%v = 0x%08x): %v", mn, w, err)
		}
		if out.Mn != mn || out.Rd != RegA0 || out.Rs1 != RegA1 || out.Rs2 != RegA2 {
			t.Errorf("%v round trip: %v", mn, out)
		}
	}
}

func TestRVA23Metadata(t *testing.T) {
	cases := []struct {
		mn   Mnemonic
		name string
		ext  ExtSet
	}{
		{MnCZEROEQZ, "czero.eqz", ExtZicond},
		{MnCZERONEZ, "czero.nez", ExtZicond},
		{MnSH3ADD, "sh3add", ExtZba},
		{MnANDN, "andn", ExtZbb},
		{MnMAXU, "maxu", ExtZbb},
	}
	for _, c := range cases {
		if got := c.mn.String(); got != c.name {
			t.Errorf("%d name = %q, want %q", c.mn, got, c.name)
		}
		if got := c.mn.Ext(); got != c.ext {
			t.Errorf("%s ext = %v, want %v", c.name, got, c.ext)
		}
		back, ok := LookupMnemonic(c.name)
		if !ok || back != c.mn {
			t.Errorf("LookupMnemonic(%q) = %v, %v", c.name, back, ok)
		}
	}
}

func TestRVA23ArchString(t *testing.T) {
	set := RVA23Subset
	back, err := ParseArchString(set.ArchString())
	if err != nil {
		t.Fatal(err)
	}
	if back != set {
		t.Errorf("round trip %q -> %v, want %v", set.ArchString(), back, set)
	}
	parsed, err := ParseArchString("rv64gc_zba_zbb_zicond_xdbi")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != RVA23Subset {
		t.Errorf("parsed = %v", parsed)
	}
}

func TestRVA23DoesNotCollideWithBase(t *testing.T) {
	// The claimed funct combinations must not shadow any base encoding:
	// every base R-type instruction still decodes to itself.
	for _, mn := range []Mnemonic{MnADD, MnSUB, MnSLL, MnSLT, MnSLTU, MnXOR,
		MnSRL, MnSRA, MnOR, MnAND, MnMUL, MnDIV, MnREM} {
		in := Inst{Mn: mn, Rd: RegA0, Rs1: RegA1, Rs2: RegA2, Rs3: RegNone}
		w := MustEncode(in)
		out, err := decode32(w, 0)
		if err != nil || out.Mn != mn {
			t.Errorf("base %v decodes to %v (err %v) after extension registration", mn, out.Mn, err)
		}
	}
}
