package riscv

// This file provides the per-instruction register access information that
// Dyninst's InstructionAPI obtains from Capstone v6 on RISC-V: which
// registers an instruction reads and which it writes, including implicit
// accesses (the PC for control transfers). The liveness, slicing, and
// stack-height analyses in the dataflow package are built on these sets.

// RegsRead returns the set of registers the instruction reads. x0 reads are
// included (they are architecturally reads, even though the value is fixed);
// callers that care can mask x0 out.
func (i Inst) RegsRead() RegSet {
	var s RegSet
	switch i.Mn {
	case MnLUI:
		// no register sources
	case MnAUIPC, MnJAL:
		s.Add(RegPC)
	case MnJALR:
		s.Add(i.Rs1)
		s.Add(RegPC)
	case MnECALL:
		// The Linux syscall convention reads a0-a5 and a7. Modeling this
		// makes liveness conservative-correct around system calls.
		s.Add(RegA0)
		s.Add(RegA1)
		s.Add(RegA2)
		s.Add(RegA3)
		s.Add(RegA4)
		s.Add(RegA5)
		s.Add(RegA7)
	case MnEBREAK, MnFENCE, MnFENCEI:
		// no register sources
	case MnCSRRWI, MnCSRRSI, MnCSRRCI:
		// immediate forms read no integer register
	default:
		if i.Rs1 != RegNone {
			s.Add(i.Rs1)
		}
		if i.Rs2 != RegNone {
			s.Add(i.Rs2)
		}
		if i.Rs3 != RegNone && isFMA(i.Mn) {
			s.Add(i.Rs3)
		}
		if i.Cat() == CatBranch {
			s.Add(RegPC)
		}
	}
	return s
}

// RegsWritten returns the set of registers the instruction writes. Writes to
// x0 are dropped (they have no architectural effect). Control transfers
// write the PC.
func (i Inst) RegsWritten() RegSet {
	var s RegSet
	switch i.Cat() {
	case CatStore:
		// stores write memory only
	case CatBranch:
		s.Add(RegPC)
	case CatJAL, CatJALR:
		s.Add(RegPC)
		if i.Rd != RegNone && i.Rd != X0 {
			s.Add(i.Rd)
		}
	default:
		if i.Mn == MnECALL {
			// The syscall clobbers a0 (return value).
			s.Add(RegA0)
			return s
		}
		if i.Rd != RegNone && i.Rd != X0 {
			s.Add(i.Rd)
		}
	}
	return s
}

// CallerSavedX is the set of integer registers the standard RISC-V calling
// convention allows a callee to clobber (temporaries + arguments + ra).
var CallerSavedX = NewRegSet(
	RegRA, RegT0, RegT1, RegT2,
	RegA0, RegA1, RegA2, RegA3, RegA4, RegA5, RegA6, RegA7,
	RegT3, RegT4, RegT5, RegT6,
)

// CalleeSavedX is the set of integer registers a callee must preserve.
var CalleeSavedX = NewRegSet(
	RegSP, RegFP, RegS1, RegS2, RegS3, RegS4, RegS5, RegS6,
	RegS7, RegS8, RegS9, RegS10, RegS11,
)

// ScratchCandidates lists, in preference order, the integer registers the
// code generator considers when it needs scratch space for instrumentation.
// Temporaries come first because they are most often dead at instrumentation
// points; saved registers come last because using one forces a spill unless
// liveness proves it dead.
var ScratchCandidates = []Reg{
	RegT0, RegT1, RegT2, RegT3, RegT4, RegT5, RegT6,
	RegA6, RegA7, RegA5, RegA4, RegA3, RegA2, RegA1, RegA0,
	RegS11, RegS10, RegS9, RegS8, RegS7, RegS6, RegS5, RegS4, RegS3, RegS2, RegS1,
}
