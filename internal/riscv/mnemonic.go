package riscv

// Mnemonic identifies an instruction operation. Compressed instructions are
// decoded to the mnemonic of their 32-bit expansion (the Inst records that it
// was compressed), so downstream consumers — the parser, the dataflow
// analyses, the emulator — only ever deal in base mnemonics.
type Mnemonic uint16

// Category classifies an instruction's structural role. This is the
// opcode-level classification only; determining the *purpose* of a JAL/JALR
// (call vs. return vs. jump vs. tail call vs. jump table) requires context
// and is the job of the parse package, per Section 3.2.3 of the paper.
type Category uint8

const (
	CatArith  Category = iota // integer/float computation, moves, csr
	CatLoad                   // memory read
	CatStore                  // memory write
	CatBranch                 // conditional branch
	CatJAL                    // jal: pc-relative jump-and-link
	CatJALR                   // jalr: indirect jump-and-link
	CatAMO                    // atomic memory operation (incl. lr/sc)
	CatFence                  // fence, fence.i
	CatSystem                 // ecall, ebreak, csr side effects
)

func (c Category) String() string {
	switch c {
	case CatArith:
		return "arith"
	case CatLoad:
		return "load"
	case CatStore:
		return "store"
	case CatBranch:
		return "branch"
	case CatJAL:
		return "jal"
	case CatJALR:
		return "jalr"
	case CatAMO:
		return "amo"
	case CatFence:
		return "fence"
	case CatSystem:
		return "system"
	}
	return "unknown"
}

// The mnemonic space, grouped by extension.
const (
	MnInvalid Mnemonic = iota

	// RV32I / RV64I base integer ISA.
	MnLUI
	MnAUIPC
	MnJAL
	MnJALR
	MnBEQ
	MnBNE
	MnBLT
	MnBGE
	MnBLTU
	MnBGEU
	MnLB
	MnLH
	MnLW
	MnLBU
	MnLHU
	MnLWU
	MnLD
	MnSB
	MnSH
	MnSW
	MnSD
	MnADDI
	MnSLTI
	MnSLTIU
	MnXORI
	MnORI
	MnANDI
	MnSLLI
	MnSRLI
	MnSRAI
	MnADD
	MnSUB
	MnSLL
	MnSLT
	MnSLTU
	MnXOR
	MnSRL
	MnSRA
	MnOR
	MnAND
	MnADDIW
	MnSLLIW
	MnSRLIW
	MnSRAIW
	MnADDW
	MnSUBW
	MnSLLW
	MnSRLW
	MnSRAW
	MnFENCE
	MnECALL
	MnEBREAK

	// Zifencei.
	MnFENCEI

	// Zicsr.
	MnCSRRW
	MnCSRRS
	MnCSRRC
	MnCSRRWI
	MnCSRRSI
	MnCSRRCI

	// M extension.
	MnMUL
	MnMULH
	MnMULHSU
	MnMULHU
	MnDIV
	MnDIVU
	MnREM
	MnREMU
	MnMULW
	MnDIVW
	MnDIVUW
	MnREMW
	MnREMUW

	// A extension.
	MnLRW
	MnSCW
	MnAMOSWAPW
	MnAMOADDW
	MnAMOXORW
	MnAMOANDW
	MnAMOORW
	MnAMOMINW
	MnAMOMAXW
	MnAMOMINUW
	MnAMOMAXUW
	MnLRD
	MnSCD
	MnAMOSWAPD
	MnAMOADDD
	MnAMOXORD
	MnAMOANDD
	MnAMOORD
	MnAMOMIND
	MnAMOMAXD
	MnAMOMINUD
	MnAMOMAXUD

	// F extension.
	MnFLW
	MnFSW
	MnFMADDS
	MnFMSUBS
	MnFNMSUBS
	MnFNMADDS
	MnFADDS
	MnFSUBS
	MnFMULS
	MnFDIVS
	MnFSQRTS
	MnFSGNJS
	MnFSGNJNS
	MnFSGNJXS
	MnFMINS
	MnFMAXS
	MnFCVTWS
	MnFCVTWUS
	MnFMVXW
	MnFEQS
	MnFLTS
	MnFLES
	MnFCLASSS
	MnFCVTSW
	MnFCVTSWU
	MnFMVWX
	MnFCVTLS
	MnFCVTLUS
	MnFCVTSL
	MnFCVTSLU

	// D extension.
	MnFLD
	MnFSD
	MnFMADDD
	MnFMSUBD
	MnFNMSUBD
	MnFNMADDD
	MnFADDD
	MnFSUBD
	MnFMULD
	MnFDIVD
	MnFSQRTD
	MnFSGNJD
	MnFSGNJND
	MnFSGNJXD
	MnFMIND
	MnFMAXD
	MnFCVTSD
	MnFCVTDS
	MnFEQD
	MnFLTD
	MnFLED
	MnFCLASSD
	MnFCVTWD
	MnFCVTWUD
	MnFCVTDW
	MnFCVTDWU
	MnFCVTLD
	MnFCVTLUD
	MnFMVXD
	MnFCVTDL
	MnFCVTDLU
	MnFMVDX

	// Zicond (RVA23 profile; see rva23.go).
	MnCZEROEQZ
	MnCZERONEZ
	// Zba.
	MnSH1ADD
	MnSH2ADD
	MnSH3ADD
	// Zbb subset.
	MnANDN
	MnORN
	MnXNOR
	MnMIN
	MnMINU
	MnMAX
	MnMAXU
	// Xdbi (DBI code-cache internals; see xdbi.go).
	MnDBIACC
	MnDBIJT

	numMnemonics
)

// mnInfo carries the static per-mnemonic metadata.
type mnInfo struct {
	name string
	ext  ExtSet
	cat  Category
}

var mnTable = [numMnemonics]mnInfo{
	MnInvalid: {"invalid", 0, CatArith},

	MnLUI:    {"lui", ExtI, CatArith},
	MnAUIPC:  {"auipc", ExtI, CatArith},
	MnJAL:    {"jal", ExtI, CatJAL},
	MnJALR:   {"jalr", ExtI, CatJALR},
	MnBEQ:    {"beq", ExtI, CatBranch},
	MnBNE:    {"bne", ExtI, CatBranch},
	MnBLT:    {"blt", ExtI, CatBranch},
	MnBGE:    {"bge", ExtI, CatBranch},
	MnBLTU:   {"bltu", ExtI, CatBranch},
	MnBGEU:   {"bgeu", ExtI, CatBranch},
	MnLB:     {"lb", ExtI, CatLoad},
	MnLH:     {"lh", ExtI, CatLoad},
	MnLW:     {"lw", ExtI, CatLoad},
	MnLBU:    {"lbu", ExtI, CatLoad},
	MnLHU:    {"lhu", ExtI, CatLoad},
	MnLWU:    {"lwu", ExtI, CatLoad},
	MnLD:     {"ld", ExtI, CatLoad},
	MnSB:     {"sb", ExtI, CatStore},
	MnSH:     {"sh", ExtI, CatStore},
	MnSW:     {"sw", ExtI, CatStore},
	MnSD:     {"sd", ExtI, CatStore},
	MnADDI:   {"addi", ExtI, CatArith},
	MnSLTI:   {"slti", ExtI, CatArith},
	MnSLTIU:  {"sltiu", ExtI, CatArith},
	MnXORI:   {"xori", ExtI, CatArith},
	MnORI:    {"ori", ExtI, CatArith},
	MnANDI:   {"andi", ExtI, CatArith},
	MnSLLI:   {"slli", ExtI, CatArith},
	MnSRLI:   {"srli", ExtI, CatArith},
	MnSRAI:   {"srai", ExtI, CatArith},
	MnADD:    {"add", ExtI, CatArith},
	MnSUB:    {"sub", ExtI, CatArith},
	MnSLL:    {"sll", ExtI, CatArith},
	MnSLT:    {"slt", ExtI, CatArith},
	MnSLTU:   {"sltu", ExtI, CatArith},
	MnXOR:    {"xor", ExtI, CatArith},
	MnSRL:    {"srl", ExtI, CatArith},
	MnSRA:    {"sra", ExtI, CatArith},
	MnOR:     {"or", ExtI, CatArith},
	MnAND:    {"and", ExtI, CatArith},
	MnADDIW:  {"addiw", ExtI, CatArith},
	MnSLLIW:  {"slliw", ExtI, CatArith},
	MnSRLIW:  {"srliw", ExtI, CatArith},
	MnSRAIW:  {"sraiw", ExtI, CatArith},
	MnADDW:   {"addw", ExtI, CatArith},
	MnSUBW:   {"subw", ExtI, CatArith},
	MnSLLW:   {"sllw", ExtI, CatArith},
	MnSRLW:   {"srlw", ExtI, CatArith},
	MnSRAW:   {"sraw", ExtI, CatArith},
	MnFENCE:  {"fence", ExtI, CatFence},
	MnECALL:  {"ecall", ExtI, CatSystem},
	MnEBREAK: {"ebreak", ExtI, CatSystem},

	MnFENCEI: {"fence.i", ExtZifencei, CatFence},

	MnCSRRW:  {"csrrw", ExtZicsr, CatSystem},
	MnCSRRS:  {"csrrs", ExtZicsr, CatSystem},
	MnCSRRC:  {"csrrc", ExtZicsr, CatSystem},
	MnCSRRWI: {"csrrwi", ExtZicsr, CatSystem},
	MnCSRRSI: {"csrrsi", ExtZicsr, CatSystem},
	MnCSRRCI: {"csrrci", ExtZicsr, CatSystem},

	MnMUL:    {"mul", ExtM, CatArith},
	MnMULH:   {"mulh", ExtM, CatArith},
	MnMULHSU: {"mulhsu", ExtM, CatArith},
	MnMULHU:  {"mulhu", ExtM, CatArith},
	MnDIV:    {"div", ExtM, CatArith},
	MnDIVU:   {"divu", ExtM, CatArith},
	MnREM:    {"rem", ExtM, CatArith},
	MnREMU:   {"remu", ExtM, CatArith},
	MnMULW:   {"mulw", ExtM, CatArith},
	MnDIVW:   {"divw", ExtM, CatArith},
	MnDIVUW:  {"divuw", ExtM, CatArith},
	MnREMW:   {"remw", ExtM, CatArith},
	MnREMUW:  {"remuw", ExtM, CatArith},

	MnLRW:      {"lr.w", ExtA, CatAMO},
	MnSCW:      {"sc.w", ExtA, CatAMO},
	MnAMOSWAPW: {"amoswap.w", ExtA, CatAMO},
	MnAMOADDW:  {"amoadd.w", ExtA, CatAMO},
	MnAMOXORW:  {"amoxor.w", ExtA, CatAMO},
	MnAMOANDW:  {"amoand.w", ExtA, CatAMO},
	MnAMOORW:   {"amoor.w", ExtA, CatAMO},
	MnAMOMINW:  {"amomin.w", ExtA, CatAMO},
	MnAMOMAXW:  {"amomax.w", ExtA, CatAMO},
	MnAMOMINUW: {"amominu.w", ExtA, CatAMO},
	MnAMOMAXUW: {"amomaxu.w", ExtA, CatAMO},
	MnLRD:      {"lr.d", ExtA, CatAMO},
	MnSCD:      {"sc.d", ExtA, CatAMO},
	MnAMOSWAPD: {"amoswap.d", ExtA, CatAMO},
	MnAMOADDD:  {"amoadd.d", ExtA, CatAMO},
	MnAMOXORD:  {"amoxor.d", ExtA, CatAMO},
	MnAMOANDD:  {"amoand.d", ExtA, CatAMO},
	MnAMOORD:   {"amoor.d", ExtA, CatAMO},
	MnAMOMIND:  {"amomin.d", ExtA, CatAMO},
	MnAMOMAXD:  {"amomax.d", ExtA, CatAMO},
	MnAMOMINUD: {"amominu.d", ExtA, CatAMO},
	MnAMOMAXUD: {"amomaxu.d", ExtA, CatAMO},

	MnFLW:     {"flw", ExtF, CatLoad},
	MnFSW:     {"fsw", ExtF, CatStore},
	MnFMADDS:  {"fmadd.s", ExtF, CatArith},
	MnFMSUBS:  {"fmsub.s", ExtF, CatArith},
	MnFNMSUBS: {"fnmsub.s", ExtF, CatArith},
	MnFNMADDS: {"fnmadd.s", ExtF, CatArith},
	MnFADDS:   {"fadd.s", ExtF, CatArith},
	MnFSUBS:   {"fsub.s", ExtF, CatArith},
	MnFMULS:   {"fmul.s", ExtF, CatArith},
	MnFDIVS:   {"fdiv.s", ExtF, CatArith},
	MnFSQRTS:  {"fsqrt.s", ExtF, CatArith},
	MnFSGNJS:  {"fsgnj.s", ExtF, CatArith},
	MnFSGNJNS: {"fsgnjn.s", ExtF, CatArith},
	MnFSGNJXS: {"fsgnjx.s", ExtF, CatArith},
	MnFMINS:   {"fmin.s", ExtF, CatArith},
	MnFMAXS:   {"fmax.s", ExtF, CatArith},
	MnFCVTWS:  {"fcvt.w.s", ExtF, CatArith},
	MnFCVTWUS: {"fcvt.wu.s", ExtF, CatArith},
	MnFMVXW:   {"fmv.x.w", ExtF, CatArith},
	MnFEQS:    {"feq.s", ExtF, CatArith},
	MnFLTS:    {"flt.s", ExtF, CatArith},
	MnFLES:    {"fle.s", ExtF, CatArith},
	MnFCLASSS: {"fclass.s", ExtF, CatArith},
	MnFCVTSW:  {"fcvt.s.w", ExtF, CatArith},
	MnFCVTSWU: {"fcvt.s.wu", ExtF, CatArith},
	MnFMVWX:   {"fmv.w.x", ExtF, CatArith},
	MnFCVTLS:  {"fcvt.l.s", ExtF, CatArith},
	MnFCVTLUS: {"fcvt.lu.s", ExtF, CatArith},
	MnFCVTSL:  {"fcvt.s.l", ExtF, CatArith},
	MnFCVTSLU: {"fcvt.s.lu", ExtF, CatArith},

	MnFLD:     {"fld", ExtD, CatLoad},
	MnFSD:     {"fsd", ExtD, CatStore},
	MnFMADDD:  {"fmadd.d", ExtD, CatArith},
	MnFMSUBD:  {"fmsub.d", ExtD, CatArith},
	MnFNMSUBD: {"fnmsub.d", ExtD, CatArith},
	MnFNMADDD: {"fnmadd.d", ExtD, CatArith},
	MnFADDD:   {"fadd.d", ExtD, CatArith},
	MnFSUBD:   {"fsub.d", ExtD, CatArith},
	MnFMULD:   {"fmul.d", ExtD, CatArith},
	MnFDIVD:   {"fdiv.d", ExtD, CatArith},
	MnFSQRTD:  {"fsqrt.d", ExtD, CatArith},
	MnFSGNJD:  {"fsgnj.d", ExtD, CatArith},
	MnFSGNJND: {"fsgnjn.d", ExtD, CatArith},
	MnFSGNJXD: {"fsgnjx.d", ExtD, CatArith},
	MnFMIND:   {"fmin.d", ExtD, CatArith},
	MnFMAXD:   {"fmax.d", ExtD, CatArith},
	MnFCVTSD:  {"fcvt.s.d", ExtD, CatArith},
	MnFCVTDS:  {"fcvt.d.s", ExtD, CatArith},
	MnFEQD:    {"feq.d", ExtD, CatArith},
	MnFLTD:    {"flt.d", ExtD, CatArith},
	MnFLED:    {"fle.d", ExtD, CatArith},
	MnFCLASSD: {"fclass.d", ExtD, CatArith},
	MnFCVTWD:  {"fcvt.w.d", ExtD, CatArith},
	MnFCVTWUD: {"fcvt.wu.d", ExtD, CatArith},
	MnFCVTDW:  {"fcvt.d.w", ExtD, CatArith},
	MnFCVTDWU: {"fcvt.d.wu", ExtD, CatArith},
	MnFCVTLD:  {"fcvt.l.d", ExtD, CatArith},
	MnFCVTLUD: {"fcvt.lu.d", ExtD, CatArith},
	MnFMVXD:   {"fmv.x.d", ExtD, CatArith},
	MnFCVTDL:  {"fcvt.d.l", ExtD, CatArith},
	MnFCVTDLU: {"fcvt.d.lu", ExtD, CatArith},
	MnFMVDX:   {"fmv.d.x", ExtD, CatArith},
}

// String returns the canonical assembly spelling of the mnemonic.
func (m Mnemonic) String() string {
	if m < numMnemonics {
		return mnTable[m].name
	}
	return "invalid"
}

// Ext returns the extension that defines the mnemonic.
func (m Mnemonic) Ext() ExtSet {
	if m < numMnemonics {
		return mnTable[m].ext
	}
	return 0
}

// Cat returns the structural category of the mnemonic.
func (m Mnemonic) Cat() Category {
	if m < numMnemonics {
		return mnTable[m].cat
	}
	return CatArith
}

// NumMnemonics reports the number of defined mnemonics (for table-driven
// tests that want to sweep the whole space).
func NumMnemonics() int { return int(numMnemonics) }

// LookupMnemonic resolves an assembly spelling to its Mnemonic.
func LookupMnemonic(name string) (Mnemonic, bool) {
	m, ok := mnByName[name]
	return m, ok
}

var mnByName = func() map[string]Mnemonic {
	m := make(map[string]Mnemonic, int(numMnemonics))
	for i := Mnemonic(1); i < numMnemonics; i++ {
		if mnTable[i].name != "" {
			m[mnTable[i].name] = i
		}
	}
	return m
}()

// registerMnemonic installs the metadata for a mnemonic defined by an
// extension module (see rva23.go). Called from init functions so extension
// modules stay self-contained — the property Section 3.1.1 of the paper
// demands of an extensible port.
func registerMnemonic(mn Mnemonic, name string, ext ExtSet, cat Category) {
	mnTable[mn] = mnInfo{name: name, ext: ext, cat: cat}
	mnByName[name] = mn
}
