// Package riscv models the RV64GC instruction set architecture: registers,
// ISA extensions, instruction mnemonics, and a full machine-code decoder and
// encoder with per-operand access information.
//
// The package plays the role that the Capstone disassembler plays for
// Dyninst's InstructionAPI on RISC-V: it turns raw bytes into structured
// instruction objects that report their operands, which registers they read
// and write, and their control-flow category, and it turns structured
// instruction objects back into bytes for the code generator and patcher.
//
// The supported profile is RV64GC: the RV64I base ISA plus the M (integer
// multiply/divide), A (atomics), F (single-precision float), D
// (double-precision float), Zicsr (CSR access), Zifencei (instruction-fetch
// fence), and C (compressed) extensions.
package riscv

import "fmt"

// Reg identifies a RISC-V register. Values 0-31 are the integer registers
// x0-x31, values 32-63 are the floating-point registers f0-f31, and RegPC is
// a pseudo-register used by the dataflow toolkits to talk about the program
// counter. RegNone marks an absent operand.
type Reg uint8

// Integer register constants. X0 is hardwired to zero.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	X31
)

// Floating-point register constants.
const (
	F0 Reg = iota + 32
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// ABI aliases for the integer registers.
const (
	RegZero = X0 // hardwired zero
	RegRA   = X1 // return address (the conventional link register)
	RegSP   = X2 // stack pointer
	RegGP   = X3 // global pointer
	RegTP   = X4 // thread pointer
	RegT0   = X5 // temporary / alternate link register
	RegT1   = X6
	RegT2   = X7
	RegFP   = X8 // frame pointer (s0)
	RegS0   = X8
	RegS1   = X9
	RegA0   = X10 // argument / return value
	RegA1   = X11
	RegA2   = X12
	RegA3   = X13
	RegA4   = X14
	RegA5   = X15
	RegA6   = X16
	RegA7   = X17 // syscall number
	RegS2   = X18
	RegS3   = X19
	RegS4   = X20
	RegS5   = X21
	RegS6   = X22
	RegS7   = X23
	RegS8   = X24
	RegS9   = X25
	RegS10  = X26
	RegS11  = X27
	RegT3   = X28
	RegT4   = X29
	RegT5   = X30
	RegT6   = X31
)

// Special pseudo-register values.
const (
	RegPC   Reg = 64 // program counter pseudo-register
	RegNone Reg = 255
)

// NumXRegs and NumFRegs report the size of the two register files.
const (
	NumXRegs = 32
	NumFRegs = 32
)

var xABINames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fABINames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// IsX reports whether r is one of the integer registers x0-x31.
func (r Reg) IsX() bool { return r < 32 }

// IsF reports whether r is one of the floating-point registers f0-f31.
func (r Reg) IsF() bool { return r >= 32 && r < 64 }

// Num returns the 5-bit encoding number of the register within its file.
func (r Reg) Num() uint32 {
	if r.IsF() {
		return uint32(r - 32)
	}
	return uint32(r)
}

// String returns the ABI name of the register ("a0", "sp", "fa0", ...).
func (r Reg) String() string {
	switch {
	case r.IsX():
		return xABINames[r]
	case r.IsF():
		return fABINames[r-32]
	case r == RegPC:
		return "pc"
	case r == RegNone:
		return "none"
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// XReg returns the integer register with encoding number n (0-31).
func XReg(n uint32) Reg { return Reg(n & 31) }

// FReg returns the floating-point register with encoding number n (0-31).
func FReg(n uint32) Reg { return Reg(n&31) + 32 }

// LookupReg resolves an assembly register name — either an ABI name
// ("a0", "fs1", "fp") or an architectural name ("x10", "f9") — to a Reg.
func LookupReg(name string) (Reg, bool) {
	if r, ok := regNameTable[name]; ok {
		return r, true
	}
	return RegNone, false
}

var regNameTable = func() map[string]Reg {
	m := make(map[string]Reg, 132)
	for i := 0; i < 32; i++ {
		m[xABINames[i]] = Reg(i)
		m[fABINames[i]] = Reg(i + 32)
		m[fmt.Sprintf("x%d", i)] = Reg(i)
		m[fmt.Sprintf("f%d", i)] = Reg(i + 32)
	}
	m["fp"] = RegFP
	m["pc"] = RegPC
	return m
}()

// RegSet is a bit set over the 64 architectural registers plus the PC
// pseudo-register. It is the currency of the liveness and slicing analyses.
type RegSet struct {
	bits [2]uint64 // [0]: x0-x31 | f0-f31 packed low/high, [1]: pc in bit 0
}

// Add inserts r into the set.
func (s *RegSet) Add(r Reg) {
	switch {
	case r < 64:
		s.bits[0] |= 1 << r
	case r == RegPC:
		s.bits[1] |= 1
	}
}

// Remove deletes r from the set.
func (s *RegSet) Remove(r Reg) {
	switch {
	case r < 64:
		s.bits[0] &^= 1 << r
	case r == RegPC:
		s.bits[1] &^= 1
	}
}

// Contains reports whether r is in the set.
func (s RegSet) Contains(r Reg) bool {
	switch {
	case r < 64:
		return s.bits[0]&(1<<r) != 0
	case r == RegPC:
		return s.bits[1]&1 != 0
	}
	return false
}

// Union returns the union of s and t.
func (s RegSet) Union(t RegSet) RegSet {
	return RegSet{bits: [2]uint64{s.bits[0] | t.bits[0], s.bits[1] | t.bits[1]}}
}

// Intersect returns the intersection of s and t.
func (s RegSet) Intersect(t RegSet) RegSet {
	return RegSet{bits: [2]uint64{s.bits[0] & t.bits[0], s.bits[1] & t.bits[1]}}
}

// Minus returns the elements of s not in t.
func (s RegSet) Minus(t RegSet) RegSet {
	return RegSet{bits: [2]uint64{s.bits[0] &^ t.bits[0], s.bits[1] &^ t.bits[1]}}
}

// Equal reports whether the two sets hold the same registers.
func (s RegSet) Equal(t RegSet) bool { return s.bits == t.bits }

// Empty reports whether the set holds no registers.
func (s RegSet) Empty() bool { return s.bits[0] == 0 && s.bits[1] == 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Regs returns the members of the set in ascending register order.
func (s RegSet) Regs() []Reg {
	var out []Reg
	for r := Reg(0); r < 64; r++ {
		if s.Contains(r) {
			out = append(out, r)
		}
	}
	if s.Contains(RegPC) {
		out = append(out, RegPC)
	}
	return out
}

// String renders the set as a comma-separated list in braces.
func (s RegSet) String() string {
	out := "{"
	for i, r := range s.Regs() {
		if i > 0 {
			out += ","
		}
		out += r.String()
	}
	return out + "}"
}

// NewRegSet builds a set from the given registers.
func NewRegSet(regs ...Reg) RegSet {
	var s RegSet
	for _, r := range regs {
		s.Add(r)
	}
	return s
}
