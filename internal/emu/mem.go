// Package emu is a user-mode RV64GC emulator. It stands in for the SiFive
// P550 board of the paper's experimental setup (Section 4.2): it executes
// the ELF binaries our assembler and binary rewriter produce, services a
// Linux-flavoured syscall interface, and maintains a deterministic cycle
// counter driven by a per-instruction cost model, from which the virtual
// clock_gettime that the benchmark workload samples is derived.
//
// Determinism is the point: the paper's numbers are wall-clock seconds on
// silicon; ours are virtual seconds on a cost model, so relative overheads
// (the shape the reproduction must preserve) are exactly repeatable.
package emu

import (
	"fmt"
	"sort"

	"rvdyn/internal/elfrv"
)

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint64]*page
	// One-entry lookup cache: most accesses hit the same page repeatedly.
	lastIdx  uint64
	lastPage *page
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// MemFault describes an access to an unmapped address.
type MemFault struct {
	Addr  uint64
	Write bool
}

func (e *MemFault) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("emu: memory fault: %s at unmapped address %#x", op, e.Addr)
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	idx := addr >> pageBits
	if m.lastPage != nil && m.lastIdx == idx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil {
		if !create {
			return nil
		}
		p = new(page)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// Map ensures [addr, addr+size) is backed by zeroed pages.
func (m *Memory) Map(addr, size uint64) {
	for a := addr &^ pageMask; a < addr+size; a += pageSize {
		m.pageFor(a, true)
	}
}

// Mapped reports whether addr is backed.
func (m *Memory) Mapped(addr uint64) bool { return m.pageFor(addr, false) != nil }

// PageAddrs returns the base address of every mapped page in ascending
// order. Differential-testing tools use it to compare two address spaces
// exhaustively without knowing the mapping history.
func (m *Memory) PageAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		addrs = append(addrs, idx<<pageBits)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Page returns the 4 KiB page backing addr, or nil if unmapped. The slice
// aliases live memory; callers must not retain it across writes.
func (m *Memory) Page(addr uint64) []byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return nil
	}
	return p[:]
}

// ReadBytes copies n bytes at addr into dst (dst length gives n).
func (m *Memory) ReadBytes(addr uint64, dst []byte) error {
	for len(dst) > 0 {
		p := m.pageFor(addr, false)
		if p == nil {
			return &MemFault{Addr: addr}
		}
		off := addr & pageMask
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteBytes copies src into memory at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) error {
	for len(src) > 0 {
		p := m.pageFor(addr, false)
		if p == nil {
			return &MemFault{Addr: addr, Write: true}
		}
		off := addr & pageMask
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// Fixed-width accessors. Reads and writes may straddle a page boundary; the
// fast path handles the common in-page case.

func (m *Memory) Read8(addr uint64) (uint8, error) {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0, &MemFault{Addr: addr}
	}
	return p[addr&pageMask], nil
}

func (m *Memory) Write8(addr uint64, v uint8) error {
	p := m.pageFor(addr, false)
	if p == nil {
		return &MemFault{Addr: addr, Write: true}
	}
	p[addr&pageMask] = v
	return nil
}

func (m *Memory) Read16(addr uint64) (uint16, error) {
	if addr&pageMask <= pageSize-2 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint16(p[o]) | uint16(p[o+1])<<8, nil
	}
	var b [2]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (m *Memory) Write16(addr uint64, v uint16) error {
	var b = [2]byte{byte(v), byte(v >> 8)}
	return m.WriteBytes(addr, b[:])
}

func (m *Memory) Read32(addr uint64) (uint32, error) {
	if addr&pageMask <= pageSize-4 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	var b [4]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (m *Memory) Write32(addr uint64, v uint32) error {
	var b = [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.WriteBytes(addr, b[:])
}

func (m *Memory) Read64(addr uint64) (uint64, error) {
	if addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56, nil
	}
	var b [8]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

func (m *Memory) Write64(addr uint64, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b[:])
}

// LoadELF maps every alloc section of the file into memory.
func (m *Memory) LoadELF(f *elfrv.File) error {
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Size() == 0 {
			continue
		}
		m.Map(s.Addr, s.Size())
		if s.Type != elfrv.SHTNobits {
			if err := m.WriteBytes(s.Addr, s.Data); err != nil {
				return err
			}
		}
	}
	return nil
}
