// Package emu is a user-mode RV64GC emulator. It stands in for the SiFive
// P550 board of the paper's experimental setup (Section 4.2): it executes
// the ELF binaries our assembler and binary rewriter produce, services a
// Linux-flavoured syscall interface, and maintains a deterministic cycle
// counter driven by a per-instruction cost model, from which the virtual
// clock_gettime that the benchmark workload samples is derived.
//
// Determinism is the point: the paper's numbers are wall-clock seconds on
// silicon; ours are virtual seconds on a cost model, so relative overheads
// (the shape the reproduction must preserve) are exactly repeatable.
package emu

import (
	"fmt"
	"sort"

	"rvdyn/internal/elfrv"
)

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Software TLB geometry. Each access kind (read, write, fetch) gets its own
// direct-mapped table so the hit counters can attribute traffic per kind and
// a streaming writer cannot evict the loop's read translations. 64 entries
// cover 256 KiB of working set per kind — far more than the one-entry
// lastPage cache this replaces, which thrashed as soon as a loop touched two
// arrays on different pages (matmul's A and B matrices).
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

type page [pageSize]byte

// TLBStats counts software-TLB probes per access kind. The fields are plain
// (non-atomic) counters bumped on the memory hot path; the CPU snapshots
// them into obs counters at every Run return.
type TLBStats struct {
	ReadHits, ReadMisses   uint64
	WriteHits, WriteMisses uint64
	FetchHits, FetchMisses uint64
}

// Memory is a sparse paged address space. Address translation (page-index →
// *page) goes through per-kind direct-mapped software TLBs; the pages map is
// only consulted on a TLB miss or from the cold management paths (Map,
// Mapped, Page, LoadELF).
type Memory struct {
	pages map[uint64]*page

	// Direct-mapped TLBs, indexed by pageIdx&tlbMask and tagged with
	// pageIdx+1 (0 = invalid, so a zero-value Memory starts empty). Only
	// present pages are ever cached, and mapped pages are never replaced or
	// removed, so entries cannot go stale; Map still flushes defensively so
	// any future unmap path inherits a coherent baseline.
	rTag, wTag, fTag [tlbSize]uint64
	rPg, wPg, fPg    [tlbSize]*page

	// TLB accumulates hit/miss counts per access kind.
	TLB TLBStats
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// MemFault describes an access to an unmapped address.
type MemFault struct {
	Addr  uint64
	Write bool
}

func (e *MemFault) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("emu: memory fault: %s at unmapped address %#x", op, e.Addr)
}

// pageFor is the cold translation path: a straight map lookup, optionally
// creating the page. The TLBs are filled by the per-kind miss handlers, not
// here, so management callers (Map, Mapped, Page) never pollute them.
func (m *Memory) pageFor(addr uint64, create bool) *page {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil && create {
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// readPage translates addr for a data read through the read TLB.
func (m *Memory) readPage(addr uint64) *page {
	idx := addr >> pageBits
	s := idx & tlbMask
	if m.rTag[s] == idx+1 {
		m.TLB.ReadHits++
		return m.rPg[s]
	}
	return m.readMiss(addr)
}

func (m *Memory) readMiss(addr uint64) *page {
	m.TLB.ReadMisses++
	idx := addr >> pageBits
	p := m.pages[idx]
	if p != nil {
		s := idx & tlbMask
		m.rTag[s], m.rPg[s] = idx+1, p
	}
	return p
}

// writePage translates addr for a data write through the write TLB.
func (m *Memory) writePage(addr uint64) *page {
	idx := addr >> pageBits
	s := idx & tlbMask
	if m.wTag[s] == idx+1 {
		m.TLB.WriteHits++
		return m.wPg[s]
	}
	return m.writeMiss(addr)
}

func (m *Memory) writeMiss(addr uint64) *page {
	m.TLB.WriteMisses++
	idx := addr >> pageBits
	p := m.pages[idx]
	if p != nil {
		s := idx & tlbMask
		m.wTag[s], m.wPg[s] = idx+1, p
	}
	return p
}

// fetchPage translates addr for an instruction fetch through the fetch TLB.
func (m *Memory) fetchPage(addr uint64) *page {
	idx := addr >> pageBits
	s := idx & tlbMask
	if m.fTag[s] == idx+1 {
		m.TLB.FetchHits++
		return m.fPg[s]
	}
	return m.fetchMiss(addr)
}

func (m *Memory) fetchMiss(addr uint64) *page {
	m.TLB.FetchMisses++
	idx := addr >> pageBits
	p := m.pages[idx]
	if p != nil {
		s := idx & tlbMask
		m.fTag[s], m.fPg[s] = idx+1, p
	}
	return p
}

// FlushTLB invalidates every software-TLB entry (all kinds). Map calls it so
// translation state never outlives a mapping change.
func (m *Memory) FlushTLB() {
	for i := range m.rTag {
		m.rTag[i], m.wTag[i], m.fTag[i] = 0, 0, 0
		m.rPg[i], m.wPg[i], m.fPg[i] = nil, nil, nil
	}
}

// Fetch16 reads the aligned halfword at addr through the fetch TLB.
// Instruction parcels are 2-byte aligned, so a parcel never straddles a
// page; the decoder fetches 32-bit instructions as two parcels.
func (m *Memory) Fetch16(addr uint64) (uint16, error) {
	p := m.fetchPage(addr)
	if p == nil {
		return 0, &MemFault{Addr: addr}
	}
	o := addr & pageMask
	return uint16(p[o]) | uint16(p[o+1])<<8, nil
}

// Map ensures [addr, addr+size) is backed by zeroed pages. Mapping over an
// already-backed range keeps the existing pages (and their contents).
func (m *Memory) Map(addr, size uint64) {
	for a := addr &^ pageMask; a < addr+size; a += pageSize {
		m.pageFor(a, true)
	}
	m.FlushTLB()
}

// Mapped reports whether addr is backed.
func (m *Memory) Mapped(addr uint64) bool { return m.pageFor(addr, false) != nil }

// PageAddrs returns the base address of every mapped page in ascending
// order. Differential-testing tools use it to compare two address spaces
// exhaustively without knowing the mapping history.
func (m *Memory) PageAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		addrs = append(addrs, idx<<pageBits)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Page returns the 4 KiB page backing addr, or nil if unmapped. The slice
// aliases live memory; callers must not retain it across writes.
func (m *Memory) Page(addr uint64) []byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return nil
	}
	return p[:]
}

// ReadBytes copies n bytes at addr into dst (dst length gives n).
func (m *Memory) ReadBytes(addr uint64, dst []byte) error {
	for len(dst) > 0 {
		p := m.readPage(addr)
		if p == nil {
			return &MemFault{Addr: addr}
		}
		off := addr & pageMask
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteBytes copies src into memory at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) error {
	for len(src) > 0 {
		p := m.writePage(addr)
		if p == nil {
			return &MemFault{Addr: addr, Write: true}
		}
		off := addr & pageMask
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// Fixed-width accessors. Reads and writes may straddle a page boundary; the
// fast path handles the common in-page case.

func (m *Memory) Read8(addr uint64) (uint8, error) {
	p := m.readPage(addr)
	if p == nil {
		return 0, &MemFault{Addr: addr}
	}
	return p[addr&pageMask], nil
}

func (m *Memory) Write8(addr uint64, v uint8) error {
	p := m.writePage(addr)
	if p == nil {
		return &MemFault{Addr: addr, Write: true}
	}
	p[addr&pageMask] = v
	return nil
}

func (m *Memory) Read16(addr uint64) (uint16, error) {
	if addr&pageMask <= pageSize-2 {
		p := m.readPage(addr)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint16(p[o]) | uint16(p[o+1])<<8, nil
	}
	var b [2]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (m *Memory) Write16(addr uint64, v uint16) error {
	if addr&pageMask <= pageSize-2 {
		p := m.writePage(addr)
		if p == nil {
			return &MemFault{Addr: addr, Write: true}
		}
		o := addr & pageMask
		p[o], p[o+1] = byte(v), byte(v>>8)
		return nil
	}
	var b = [2]byte{byte(v), byte(v >> 8)}
	return m.WriteBytes(addr, b[:])
}

func (m *Memory) Read32(addr uint64) (uint32, error) {
	if addr&pageMask <= pageSize-4 {
		p := m.readPage(addr)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	var b [4]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (m *Memory) Write32(addr uint64, v uint32) error {
	if addr&pageMask <= pageSize-4 {
		p := m.writePage(addr)
		if p == nil {
			return &MemFault{Addr: addr, Write: true}
		}
		o := addr & pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	var b = [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.WriteBytes(addr, b[:])
}

func (m *Memory) Read64(addr uint64) (uint64, error) {
	if addr&pageMask <= pageSize-8 {
		p := m.readPage(addr)
		if p == nil {
			return 0, &MemFault{Addr: addr}
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56, nil
	}
	var b [8]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

func (m *Memory) Write64(addr uint64, v uint64) error {
	if addr&pageMask <= pageSize-8 {
		p := m.writePage(addr)
		if p == nil {
			return &MemFault{Addr: addr, Write: true}
		}
		o := addr & pageMask
		for i := uint64(0); i < 8; i++ {
			p[o+i] = byte(v >> (8 * i))
		}
		return nil
	}
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b[:])
}

// LoadELF maps every alloc section of the file into memory.
func (m *Memory) LoadELF(f *elfrv.File) error {
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Size() == 0 {
			continue
		}
		m.Map(s.Addr, s.Size())
		if s.Type != elfrv.SHTNobits {
			if err := m.WriteBytes(s.Addr, s.Data); err != nil {
				return err
			}
		}
	}
	return nil
}
