package emu

import (
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// traceCounters pulls the emu.trace.* counters out of a registry.
func traceCounters(reg *obs.Registry) (builds, hits, passes, sideExits, severs uint64) {
	return reg.Counter("emu.trace.builds").Load(),
		reg.Counter("emu.trace.hits").Load(),
		reg.Counter("emu.trace.passes").Load(),
		reg.Counter("emu.trace.side_exits").Load(),
		reg.Counter("emu.trace.severs").Load()
}

// TestTraceEquivalenceMatmul: the flagship workload runs hot enough to
// trace-compile its kernel (exercising the superop peephole: slliAdd+fld,
// mul+add, addi+jal, addi+branch); the traced run must end bit-identical
// to per-instruction dispatch, and the counters must show the trace tier
// actually absorbed the loop (many passes per dispatch).
func TestTraceEquivalenceMatmul(t *testing.T) {
	f, err := workload.BuildMatmul(24, 2, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fast.Obs = NewMetrics(reg)
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	if rf, rs := fast.Run(0), slow.Run(0); rf != rs {
		t.Fatalf("stop reason: fast %v, slow %v", rf, rs)
	}
	requireSameState(t, fast, slow)
	builds, hits, passes, _, _ := traceCounters(reg)
	if builds == 0 || hits == 0 {
		t.Fatalf("trace tier never engaged: builds=%d hits=%d", builds, hits)
	}
	if passes < 4*hits {
		t.Errorf("passes=%d hits=%d; a looping trace should absorb many iterations per dispatch", passes, hits)
	}
}

// TestTraceNoTraceEquivalence: the NoTrace kill switch produces identical
// state and zero trace activity.
func TestTraceNoTraceEquivalence(t *testing.T) {
	f, err := workload.BuildMatmul(16, 1, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	notrace, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	notrace.NoTrace = true
	reg := obs.NewRegistry()
	notrace.Obs = NewMetrics(reg)
	if r1, r2 := traced.Run(0), notrace.Run(0); r1 != r2 {
		t.Fatalf("stop reason: traced %v, notrace %v", r1, r2)
	}
	requireSameState(t, traced, notrace)
	if builds, hits, _, _, _ := traceCounters(reg); builds != 0 || hits != 0 {
		t.Errorf("NoTrace run still traced: builds=%d hits=%d", builds, hits)
	}
}

// TestTraceSeverOnSMC mirrors TestChainSeverOnSMC one tier up: a hot store
// loop gets trace-compiled, then one iteration's store (selected
// branchlessly, so it sits on the trace's predicted path) lands on code
// that was decoded earlier. The mid-trace store protocol must retire the
// prefix including the store, sever, and re-dispatch — ending bit-identical
// to per-instruction dispatch.
func TestTraceSeverOnSMC(t *testing.T) {
	src := `
	.text
_start:
	jal ra, victim        # decode and cache victim's block
	li s0, 0              # iteration counter
	li s2, 200            # iterations: well past the trace-hotness threshold
	la s3, scratch
	la s4, victim
	li t2, 150            # the iteration whose store hits code
loop:
	xor t0, s0, t2        # branchless select: t1 = (s0==t2) ? victim : scratch
	sltu t0, zero, t0
	addi t0, t0, -1
	xor t1, s3, s4
	and t1, t1, t0
	xor t1, t1, s3
	sd zero, 0(t1)        # iteration 150 overwrites victim mid-trace
	addi s0, s0, 1
	bne s0, s2, loop
	li a0, 5
	li a7, 93
	ecall

victim:
	nop                   # decoded, never-again-executed code
	nop
	nop
	nop
	ret

	.data
	.balign 8
scratch:
	.zero 16
`
	f, err := asm.Assemble(src, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fast.Obs = NewMetrics(reg)
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	if rf, rs := fast.Run(0), slow.Run(0); rf != rs {
		t.Fatalf("stop reason: fast %v, slow %v", rf, rs)
	}
	requireSameState(t, fast, slow)
	if fast.ExitCode != 5 {
		t.Errorf("exit code %d, want 5", fast.ExitCode)
	}
	builds, _, passes, _, severs := traceCounters(reg)
	if builds == 0 || passes == 0 {
		t.Fatalf("loop never trace-compiled: builds=%d passes=%d", builds, passes)
	}
	if severs == 0 {
		t.Error("trace severs = 0; an SMC store inside a live trace must sever it")
	}
}

// TestTraceLoadFaultMidLoop: a load loop walks off the end of the stack
// mapping after the loop is trace-compiled, so the fault fires inside a
// trace pass (through the per-op page cache's refill path). Trap state,
// cost, and registers must match per-instruction dispatch exactly.
func TestTraceLoadFaultMidLoop(t *testing.T) {
	edge := StackTop + pageSize // first unmapped byte above the stack
	runBothTrap(t, fmt.Sprintf(`
	.text
_start:
	li t0, %d             # 300 doublewords below the mapping edge
	li t1, %d             # stop address past the edge: never reached
loop:
	ld a0, 0(t0)
	addi t0, t0, 8
	bne t0, t1, loop
	li a7, 93
	ecall
`, edge-8*300, edge+64))
}

// TestTraceBudgetedRunEquivalence: traces only dispatch when the remaining
// budget covers a whole pass and exit at pass boundaries otherwise, so
// chopping a run into odd-sized Run(n) slices must retire exactly n per
// slice and end identical to one unbudgeted run.
func TestTraceBudgetedRunEquivalence(t *testing.T) {
	f, err := workload.BuildMatmul(12, 1, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := whole.Run(0); r != StopExit {
		t.Fatalf("unbudgeted run: %v", r)
	}
	sliced, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	for !sliced.Exited {
		before := sliced.Instret
		r := sliced.Run(7919) // prime slice: lands mid-pass constantly
		if r != StopExit && r != StopMaxInst {
			t.Fatalf("sliced run stopped with %v (trap %v)", r, sliced.LastTrap())
		}
		if got := sliced.Instret - before; r == StopMaxInst && got != 7919 {
			t.Fatalf("budgeted slice retired %d, want exactly 7919", got)
		}
	}
	requireSameState(t, whole, sliced)
}
