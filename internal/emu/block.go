package emu

import (
	"math"

	"rvdyn/internal/riscv"
)

// Superblock fused dispatch.
//
// The per-instruction interpreter loop pays, for every retired instruction,
// a fetch (icache probe plus bounds checks), a Trace probe, an Exited and
// budget check, a cost-model lookup, and the full mnemonic switch. Almost
// all of that is loop-invariant over a straight-line run of code, so the
// fast path amortises it: code is decoded once into basic-block descriptors
// — straight-line pre-decoded runs ending at a control-transfer or system
// instruction — with the cycle cost and a handler function pointer
// precomputed per instruction. Run then executes a whole block per
// dispatch (the same idea MAMBO-V's fragment linking and pre-decoded
// dispatch tables use to make instrumentation-heavy runs tractable).
//
// Coherence with self-modifying code and dynamic patching reuses the
// icache invalidation machinery: every block records the icache generation
// (CPU.icGen) it was decoded under; storeCheck/WriteMem/FlushICache bump
// the generation, and a stale block is re-decoded on its next dispatch.
// A store inside a block is followed by a generation check so a block that
// rewrites its own tail (or the next block) retires only the instructions
// that were executed before the write, then returns to the dispatcher.

// maxBlockLen caps the body of one superblock; blocks longer than this are
// split, with the continuation picked up by the next dispatch.
const maxBlockLen = 64

// instFn executes the state effect of one straight-line instruction:
// registers and memory only — never the PC, counters, or stop state.
type instFn func(c *CPU, i *riscv.Inst) error

// bodyInst is one pre-decoded straight-line instruction of a block.
type bodyInst struct {
	fn    instFn
	inst  riscv.Inst
	cost  uint64
	store bool // writes memory: needs a generation check after executing
}

// block is one superblock: a straight-line decoded run, optionally ended by
// a terminator (control-transfer/system instruction, executed through the
// ordinary exec path). A block without a terminator (split at maxBlockLen,
// or decode failure mid-run) simply falls through to the next dispatch.
type block struct {
	gen  uint64     // icache generation the block was decoded under
	body []bodyInst // straight-line instructions
	cum  []uint64   // cum[i]: cycles of body[:i], for mid-block traps
	cost uint64     // total body cycle cost
	term riscv.Inst // terminator (valid when hasTerm)
	end  uint64     // address after the last body instruction
	n    uint64     // instruction count including the terminator

	hasTerm bool
}

// blockAt returns a current-generation block starting at pc, building (or
// rebuilding) it if needed. It returns nil when pc cannot be fetched; the
// caller falls back to the slow path, which reports the fault.
func (c *CPU) blockAt(pc uint64) *block {
	if pc >= c.icBase && pc < c.icEnd {
		if b := c.blkSlots[(pc-c.icBase)>>1]; b != nil && b.gen == c.icGen {
			if c.Obs != nil {
				c.Obs.BlockHits.Inc()
			}
			return b
		}
	} else if b, ok := c.blkMap[pc]; ok && b.gen == c.icGen {
		if c.Obs != nil {
			c.Obs.BlockHits.Inc()
		}
		return b
	}
	return c.buildBlock(pc)
}

func (c *CPU) buildBlock(pc uint64) *block {
	if c.Obs != nil {
		c.Obs.BlockBuilds.Inc()
	}
	b := &block{gen: c.icGen}
	a := pc
	for len(b.body) < maxBlockLen {
		inst, err := c.fetchAt(a)
		if err != nil {
			if len(b.body) == 0 {
				return nil // slow path refetches and reports the fault
			}
			break // fall through; the next dispatch traps at a
		}
		fn := handlerFor(inst.Mn)
		if fn == nil { // control transfer or system: terminator
			b.term = inst
			b.hasTerm = true
			break
		}
		b.body = append(b.body, bodyInst{
			fn:    fn,
			inst:  inst,
			cost:  c.Model.Cost(inst.Mn),
			store: inst.IsStore() || inst.Cat() == riscv.CatAMO,
		})
		a = inst.Next()
	}
	b.end = a
	b.cum = make([]uint64, len(b.body))
	for i := range b.body {
		b.cum[i] = b.cost
		b.cost += b.body[i].cost
	}
	b.n = uint64(len(b.body))
	if b.hasTerm {
		b.n++
	}
	if b.n == 0 {
		return nil
	}
	if pc >= c.icBase && pc < c.icEnd {
		c.blkSlots[(pc-c.icBase)>>1] = b
	} else {
		c.blkMap[pc] = b
	}
	return b
}

// runBlock executes b, which must start at the current PC under the current
// icache generation. It returns the number of instructions retired and a
// stop reason (stopNone to continue dispatching). Only called with Trace
// nil, so no per-instruction hooks fire.
func (c *CPU) runBlock(b *block) (retired uint64, stop StopReason) {
	for i := range b.body {
		bi := &b.body[i]
		if err := bi.fn(c, &bi.inst); err != nil {
			// Architectural state must look exactly like the slow path's:
			// the faulting instruction has not retired, PC points at it.
			c.PC = bi.inst.Addr
			c.Cycles += b.cum[i]
			c.Instret += uint64(i)
			c.lastTrap = &Trap{PC: c.PC, Why: "execute " + bi.inst.String(), Wrap: err}
			return uint64(i), StopTrap
		}
		if bi.store && b.gen != c.icGen {
			// The store invalidated cached code — possibly the rest of this
			// very block. Retire the executed prefix and re-dispatch so the
			// rewritten bytes are re-decoded.
			c.PC = bi.inst.Next()
			c.Cycles += b.cum[i] + bi.cost
			c.Instret += uint64(i) + 1
			return uint64(i) + 1, stopNone
		}
	}
	n := uint64(len(b.body))
	c.Cycles += b.cost
	c.Instret += n
	if !b.hasTerm {
		c.PC = b.end
		return n, stopNone
	}
	c.PC = b.term.Addr
	if b.term.Mn == riscv.MnEBREAK {
		// Like the slow path: stop before executing, PC at the ebreak.
		return n, StopBreakpoint
	}
	exited, err := c.exec(b.term)
	if err != nil {
		c.lastTrap = &Trap{PC: c.PC, Why: "execute " + b.term.String(), Wrap: err}
		return n, StopTrap
	}
	n++
	if exited {
		return n, StopExit
	}
	return n, stopNone
}

// handlerFor returns the body handler for a mnemonic, or nil when the
// instruction must terminate a block: control transfers (the block is over),
// ecall/ebreak (stop state, syscalls), fence.i (invalidates the very cache
// the block lives in), and CSR ops (they read the live cycle/instret
// counters, which are only up to date at block boundaries).
func handlerFor(mn riscv.Mnemonic) instFn {
	switch mn.Cat() {
	case riscv.CatBranch, riscv.CatJAL, riscv.CatJALR:
		return nil
	}
	switch mn {
	case riscv.MnInvalid, riscv.MnECALL, riscv.MnEBREAK, riscv.MnFENCEI,
		riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		return nil

	// Dedicated handlers for the hot mnemonics skip the generic dispatch
	// switch entirely; everything else straight-line funnels through
	// execStraight, exactly as the slow path does.
	case riscv.MnADDI:
		return fnADDI
	case riscv.MnADD:
		return fnADD
	case riscv.MnSUB:
		return fnSUB
	case riscv.MnSLLI:
		return fnSLLI
	case riscv.MnLUI:
		return fnLUI
	case riscv.MnAUIPC:
		return fnAUIPC
	case riscv.MnMUL:
		return fnMUL
	case riscv.MnLD:
		return fnLD
	case riscv.MnLW:
		return fnLW
	case riscv.MnSD:
		return fnSD
	case riscv.MnSW:
		return fnSW
	case riscv.MnFLD:
		return fnFLD
	case riscv.MnFSD:
		return fnFSD
	case riscv.MnFMADDD:
		return fnFMADDD
	case riscv.MnFADDD:
		return fnFADDD
	case riscv.MnFMULD:
		return fnFMULD
	}
	return (*CPU).execStraight
}

// The dedicated handlers mirror the corresponding execStraight cases
// exactly; any semantic change must be made in both places (the fast/slow
// equivalence test in block_test.go enforces this).

func fnADDI(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, c.X[i.Rs1&31]+uint64(i.Imm))
	return nil
}

func fnADD(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, c.X[i.Rs1&31]+c.X[i.Rs2&31])
	return nil
}

func fnSUB(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, c.X[i.Rs1&31]-c.X[i.Rs2&31])
	return nil
}

func fnSLLI(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, c.X[i.Rs1&31]<<uint(i.Imm))
	return nil
}

func fnLUI(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, uint64(i.Imm<<12))
	return nil
}

func fnAUIPC(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, i.Addr+uint64(i.Imm<<12))
	return nil
}

func fnMUL(c *CPU, i *riscv.Inst) error {
	c.setX(i.Rd, c.X[i.Rs1&31]*c.X[i.Rs2&31])
	return nil
}

func fnLD(c *CPU, i *riscv.Inst) error {
	v, e := c.Mem.Read64(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.setX(i.Rd, v)
	return nil
}

func fnLW(c *CPU, i *riscv.Inst) error {
	v, e := c.Mem.Read32(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.setX(i.Rd, sext32(v))
	return nil
}

func fnSD(c *CPU, i *riscv.Inst) error {
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 8, c.Mem.Write64(a, c.X[i.Rs2&31]))
}

func fnSW(c *CPU, i *riscv.Inst) error {
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 4, c.Mem.Write32(a, uint32(c.X[i.Rs2&31])))
}

func fnFLD(c *CPU, i *riscv.Inst) error {
	v, e := c.Mem.Read64(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.F[i.Rd&31] = v
	return nil
}

func fnFSD(c *CPU, i *riscv.Inst) error {
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 8, c.Mem.Write64(a, c.F[i.Rs2&31]))
}

func fnFMADDD(c *CPU, i *riscv.Inst) error {
	c.setD(i.Rd, math.FMA(c.getD(i.Rs1), c.getD(i.Rs2), c.getD(i.Rs3)))
	return nil
}

func fnFADDD(c *CPU, i *riscv.Inst) error {
	c.setD(i.Rd, c.getD(i.Rs1)+c.getD(i.Rs2))
	return nil
}

func fnFMULD(c *CPU, i *riscv.Inst) error {
	c.setD(i.Rd, c.getD(i.Rs1)*c.getD(i.Rs2))
	return nil
}
