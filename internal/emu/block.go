package emu

import (
	"errors"
	"math"

	"rvdyn/internal/riscv"
)

// Superblock fused dispatch.
//
// The per-instruction interpreter loop pays, for every retired instruction,
// a fetch (icache probe plus bounds checks), a Trace probe, an Exited and
// budget check, a cost-model lookup, and the full mnemonic switch. Almost
// all of that is loop-invariant over a straight-line run of code, so the
// fast path amortises it: code is decoded once into basic-block descriptors
// — straight-line pre-decoded runs ending at a control-transfer or system
// instruction — with the cycle cost and a handler function pointer
// precomputed per instruction. Run then executes a whole block per
// dispatch (the same idea MAMBO-V's fragment linking and pre-decoded
// dispatch tables use to make instrumentation-heavy runs tractable).
//
// Three hot-path layers sit on top of the basic engine:
//
//   - Superblock chaining: each block caches direct successor pointers
//     (taken/fallthrough, or the last two indirect targets), resolved
//     lazily on first exit, so loops and straight-line runs dispatch
//     block→block without re-probing the block map. A chained pointer is
//     honoured only while its target's generation is current, so the
//     existing invalidation machinery severs chains for free.
//   - Macro-op fusion: at build time, adjacent pairs the assembler actually
//     emits (lui+addi, auipc+addi, auipc+ld, slli+add, ld/sd pairs on
//     consecutive offsets, compare+branch, and the patch ladder's
//     auipc+jalr rung) collapse into one fused handler. The cost model is
//     charged per constituent instruction, so Cycles, Instret, and the
//     virtual clock stay bit-identical to per-instruction dispatch.
//   - Specialized terminators: conditional branches, jal, and jalr execute
//     through precomputed target/cost fields instead of the generic exec
//     switch.
//
// Coherence with self-modifying code and dynamic patching reuses the
// icache invalidation machinery: every block records the icache generation
// (CPU.icGen) it was decoded under; storeCheck/WriteMem/FlushICache bump
// the generation, and a stale block is re-decoded on its next dispatch.
// A store inside a block is followed by a generation check so a block that
// rewrites its own tail (or the next block) retires only the instructions
// that were executed before the write, then returns to the dispatcher.

// maxBlockLen caps the body of one superblock; blocks longer than this are
// split, with the continuation picked up by the next dispatch.
const maxBlockLen = 64

// instFn executes the state effect of one straight-line (possibly fused)
// body entry: registers and memory only — never the PC, counters, or stop
// state.
type instFn func(c *CPU, bi *bodyInst) error

// errFuseSplit is returned by a fused store-pair handler when its first
// store invalidated cached code: the pair must split so the (possibly
// rewritten) second constituent is re-decoded before executing.
var errFuseSplit = errors.New("emu: fused pair split by code invalidation")

// bodyInst is one pre-decoded body entry of a block: a single straight-line
// instruction, or a fused pair of two adjacent ones (n == 2).
type bodyInst struct {
	fn    instFn
	inst  riscv.Inst
	inst2 riscv.Inst // second constituent of a fused pair (n == 2)
	aux   uint64     // fused-handler precomputed constant #1
	aux2  uint64     // fused-handler precomputed constant #2
	cost  uint64     // total cycle cost of all constituents
	cost1 uint64     // cost of the first constituent alone (partial retire)
	next  uint64     // address after the last constituent
	n     uint8      // constituent instruction count (1 or 2)
	store bool       // writes memory: needs a generation check after executing
}

// Terminator kinds. tkExec is the generic fallback through CPU.exec
// (ecall, csr ops, fence.i, ebreak, invalid).
const (
	tkExec = iota
	tkBranch
	tkJAL
	tkJALR
	tkCmpBranch // fused compare+branch: cmp is block.cmp, branch is term
	tkAuipcJalr // fused auipc+jalr rung: auipc folded into the terminator
)

// blockLink caches one resolved successor of a block. hits counts how many
// dispatches the link served; crossing the trace-hotness threshold makes
// the target a trace-compilation head (trace.go).
type blockLink struct {
	pc   uint64
	b    *block
	hits uint32
}

// block is one superblock: a straight-line decoded run, optionally ended by
// a terminator (control-transfer/system instruction). A block without a
// terminator (split at maxBlockLen, or decode failure mid-run) simply falls
// through to the next dispatch.
type block struct {
	gen   uint64     // icache generation the block was decoded under
	body  []bodyInst // straight-line body entries (fused pairs count as one)
	cum   []uint64   // cum[i]: cycles of constituents before body[i]
	cumN  []uint64   // cumN[i]: constituent instructions before body[i]
	cost  uint64     // total body cycle cost
	nBody uint64     // total body constituent count
	end   uint64     // address after the last body instruction
	n     uint64     // constituent count including the terminator(s)
	// maxCost bounds the cycles one full dispatch of this block can
	// consume (body + fused compare + terminator + taken-branch penalty).
	// The sample trigger's fast-path gate uses it: a block is only taken
	// when even its worst case cannot reach the pending sample mark, so
	// the mark is always met on the per-instruction path — at the same
	// boundary the slow engine would meet it.
	maxCost uint64

	hasTerm  bool
	term     riscv.Inst // terminator (valid when hasTerm)
	termKind uint8
	// Precomputed terminator data (meaning depends on termKind):
	//   takenPC:  branch taken target / jal target / fused auipc+jalr target
	//   fallPC:   branch fallthrough / jal+jalr link address
	//   termCost: cycle cost of the terminator (all constituents if fused)
	takenPC  uint64
	fallPC   uint64
	termCost uint64
	// Fused-terminator constituents: the compare of a cmp+branch pair, or
	// the auipc of an auipc+jalr rung (termAux is its precomputed value).
	cmp     riscv.Inst
	cmpCost uint64
	termAux uint64

	// succ caches up to two resolved successors (taken/fallthrough for
	// branches; the last two indirect targets for jalr returns), filled
	// lazily by chainNext and honoured only at the current generation.
	succ   [2]blockLink
	succRR uint8 // round-robin victim index

	// trc is the compiled trace headed at this block (trace.go); trcFail
	// marks a head whose walk produced nothing traceable, so the hotness
	// trigger stops retrying it.
	trc     *trace
	trcFail bool
}

// succFor returns the cached successor starting at pc if it is still valid
// under generation gen, severing stale entries as it goes.
func (b *block) succFor(c *CPU, pc uint64) *block {
	gen := c.icGen
	for i := range b.succ {
		s := &b.succ[i]
		if s.b != nil && s.pc == pc {
			if s.b.gen == gen {
				c.chainHits++
				s.hits++
				if s.hits&traceHotMask == 0 {
					c.maybeTrace(s.b, pc)
				}
				return s.b
			}
			s.b = nil // severed: target was invalidated
			c.chainSevers++
		}
	}
	return nil
}

// addSucc installs nb as a cached successor of b, evicting round-robin.
func (b *block) addSucc(pc uint64, nb *block) {
	for i := range b.succ {
		if b.succ[i].b == nil {
			b.succ[i] = blockLink{pc: pc, b: nb}
			return
		}
	}
	b.succ[b.succRR&1] = blockLink{pc: pc, b: nb}
	b.succRR++
}

// chainNext resolves the block at the current PC after b retired: first
// through b's successor cache (a chain hit skips the block map entirely),
// then through blockAt, caching the result for the next visit.
func (c *CPU) chainNext(b *block) *block {
	pc := c.PC
	if nb := b.succFor(c, pc); nb != nil {
		return nb
	}
	nb := c.blockAt(pc)
	if nb != nil {
		b.addSucc(pc, nb)
	}
	return nb
}

// blockAt returns a current-generation block starting at pc, building (or
// rebuilding) it if needed. It returns nil when pc cannot be fetched; the
// caller falls back to the slow path, which reports the fault.
func (c *CPU) blockAt(pc uint64) *block {
	if pc >= c.icBase && pc < c.icEnd {
		if b := c.blkSlots[(pc-c.icBase)>>1]; b != nil {
			if b.gen == c.icGen {
				if c.Obs != nil {
					c.Obs.BlockHits.Inc()
				}
				return b
			}
			if b.trc != nil {
				// The head went stale (SMC/patching): its trace dies with it.
				b.trc = nil
				c.traceSevers++
			}
		}
	} else if b, ok := c.blkMap[pc]; ok {
		if b.gen == c.icGen {
			if c.Obs != nil {
				c.Obs.BlockHits.Inc()
			}
			return b
		}
		if b.trc != nil {
			b.trc = nil
			c.traceSevers++
		}
	}
	return c.buildBlock(pc)
}

func (c *CPU) buildBlock(pc uint64) *block {
	if c.Obs != nil {
		c.Obs.BlockBuilds.Inc()
	}
	b := &block{gen: c.icGen}
	a := pc
	for len(b.body) < maxBlockLen {
		inst, err := c.fetchAt(a)
		if err != nil {
			if len(b.body) == 0 {
				return nil // slow path refetches and reports the fault
			}
			break // fall through; the next dispatch traps at a
		}
		fn := handlerFor(inst.Mn)
		if fn == nil { // control transfer or system: terminator
			b.term = inst
			b.hasTerm = true
			break
		}
		if n := len(b.body); n > 0 && c.tryFuse(&b.body[n-1], inst) {
			a = inst.Next()
			continue
		}
		b.body = append(b.body, bodyInst{
			fn:    fn,
			inst:  inst,
			cost:  c.Model.Cost(inst.Mn),
			cost1: c.Model.Cost(inst.Mn),
			next:  inst.Next(),
			n:     1,
			store: inst.IsStore() || inst.Cat() == riscv.CatAMO,
		})
		a = inst.Next()
	}
	b.end = a
	if b.hasTerm {
		c.prepareTerm(b)
	}
	b.cum = make([]uint64, len(b.body))
	b.cumN = make([]uint64, len(b.body))
	for i := range b.body {
		b.cum[i] = b.cost
		b.cumN[i] = b.nBody
		b.cost += b.body[i].cost
		b.nBody += uint64(b.body[i].n)
	}
	b.n = b.nBody
	if b.hasTerm {
		b.n++
		if b.termKind == tkCmpBranch || b.termKind == tkAuipcJalr {
			b.n++
		}
	}
	b.maxCost = b.cost + b.cmpCost + b.termCost + c.Model.BranchTakenPenalty
	if b.n == 0 {
		return nil
	}
	if pc >= c.icBase && pc < c.icEnd {
		c.blkSlots[(pc-c.icBase)>>1] = b
	} else {
		c.blkMap[pc] = b
	}
	return b
}

// prepareTerm classifies the terminator and precomputes its targets and
// costs, folding a fusable last body instruction (compare, or the auipc of
// an auipc+jalr rung) into the terminator when the pattern matches.
func (c *CPU) prepareTerm(b *block) {
	t := &b.term
	b.termCost = c.Model.Cost(t.Mn)
	// dbi.jt is CatJALR by nature (an indirect jump) but takes its target
	// from DBI scratch state, not rs1+imm — dispatch it by value through
	// exec rather than the jalr fast path.
	if t.Mn == riscv.MnDBIJT {
		b.termKind = tkExec
		return
	}
	switch t.Cat() {
	case riscv.CatBranch:
		b.termKind = tkBranch
		b.takenPC = t.Addr + uint64(t.Imm)
		b.fallPC = t.Next()
		// Compare+branch fusion: slt{,u,i,iu} rd feeding a beq/bne rd, x0
		// immediately after it. The compare still writes rd (bit-identical
		// architectural state); the fused terminator retires both in one
		// dispatch.
		if n := len(b.body); n > 0 && b.body[n-1].n == 1 &&
			(t.Mn == riscv.MnBEQ || t.Mn == riscv.MnBNE) &&
			t.Rs2 == riscv.X0 && t.Rs1 != riscv.X0 && t.Rs1 == b.body[n-1].inst.Rd {
			switch b.body[n-1].inst.Mn {
			case riscv.MnSLT, riscv.MnSLTU, riscv.MnSLTI, riscv.MnSLTIU:
				b.cmp = b.body[n-1].inst
				b.cmpCost = b.body[n-1].cost
				b.body = b.body[:n-1]
				b.end = b.cmp.Addr
				b.termKind = tkCmpBranch
				c.fuseCount[fuseCmpBranch]++
			}
		}
	case riscv.CatJAL:
		b.termKind = tkJAL
		b.takenPC = t.Addr + uint64(t.Imm)
		b.fallPC = t.Next()
	case riscv.CatJALR:
		b.termKind = tkJALR
		b.fallPC = t.Next()
		// Auipc+jalr rung fusion: the patch ladder's long-distance jump
		// (and every la+call sequence) resolves to a constant target at
		// build time.
		if n := len(b.body); n > 0 && b.body[n-1].n == 1 &&
			b.body[n-1].inst.Mn == riscv.MnAUIPC &&
			b.body[n-1].inst.Rd != riscv.X0 && t.Rs1 == b.body[n-1].inst.Rd {
			au := b.body[n-1].inst
			b.cmp = au
			b.cmpCost = b.body[n-1].cost
			b.termAux = au.Addr + uint64(au.Imm<<12)
			b.takenPC = (b.termAux + uint64(t.Imm)) &^ 1
			b.body = b.body[:n-1]
			b.end = au.Addr
			b.termKind = tkAuipcJalr
			c.fuseCount[fuseAuipcJalr]++
		}
	default:
		b.termKind = tkExec
	}
}

// runBlock executes b, which must start at the current PC under the current
// icache generation. It returns the number of instructions retired and a
// stop reason (stopNone to continue dispatching). Only called with Trace
// nil, so no per-instruction hooks fire.
func (c *CPU) runBlock(b *block) (retired uint64, stop StopReason) {
	c.blkGen = b.gen
	for i := range b.body {
		bi := &b.body[i]
		if err := bi.fn(c, bi); err != nil {
			if err == errFuseSplit {
				// The pair's first store invalidated cached code; retire it
				// alone and re-dispatch so the second constituent is
				// re-decoded.
				c.PC = bi.inst2.Addr
				c.Cycles += b.cum[i] + bi.cost1
				c.Instret += b.cumN[i] + 1
				return b.cumN[i] + 1, stopNone
			}
			// Architectural state must look exactly like the slow path's:
			// the faulting constituent has not retired, PC points at it.
			fi, k := &bi.inst, uint64(0)
			if bi.n == 2 && c.fuseStage == 1 {
				fi, k = &bi.inst2, 1
			}
			c.PC = fi.Addr
			c.Cycles += b.cum[i] + k*bi.cost1
			c.Instret += b.cumN[i] + k
			c.lastTrap = &Trap{PC: c.PC, Why: "execute " + fi.String(), Wrap: err}
			return b.cumN[i] + k, StopTrap
		}
		if bi.store && c.watchHit {
			// The store landed in the armed code-watch range. Retire the
			// executed prefix (store included) and stop with the PC already
			// past it, exactly like the slow path's post-exec check.
			c.watchHit = false
			c.PC = bi.next
			c.Cycles += b.cum[i] + bi.cost
			c.Instret += b.cumN[i] + uint64(bi.n)
			return b.cumN[i] + uint64(bi.n), StopCodeWrite
		}
		if bi.store && b.gen != c.icGen {
			// The store invalidated cached code — possibly the rest of this
			// very block. Retire the executed prefix and re-dispatch so the
			// rewritten bytes are re-decoded.
			c.PC = bi.next
			c.Cycles += b.cum[i] + bi.cost
			c.Instret += b.cumN[i] + uint64(bi.n)
			return b.cumN[i] + uint64(bi.n), stopNone
		}
	}
	n := b.nBody
	c.Cycles += b.cost
	c.Instret += n
	if !b.hasTerm {
		c.PC = b.end
		return n, stopNone
	}
	c.PC = b.term.Addr
	if b.term.Mn == riscv.MnEBREAK {
		// Like the slow path: stop before executing, PC at the ebreak.
		return n, StopBreakpoint
	}
	switch b.termKind {
	case tkBranch:
		if c.evalBranch(b.term.Mn, c.X[b.term.Rs1&31], c.X[b.term.Rs2&31]) {
			c.PC = b.takenPC
			c.Cycles += b.termCost + c.Model.BranchTakenPenalty
		} else {
			c.PC = b.fallPC
			c.Cycles += b.termCost
		}
		c.Instret++
		return n + 1, stopNone
	case tkCmpBranch:
		cmp := &b.cmp
		var v uint64
		switch cmp.Mn {
		case riscv.MnSLT:
			v = b2u(int64(c.X[cmp.Rs1&31]) < int64(c.X[cmp.Rs2&31]))
		case riscv.MnSLTU:
			v = b2u(c.X[cmp.Rs1&31] < c.X[cmp.Rs2&31])
		case riscv.MnSLTI:
			v = b2u(int64(c.X[cmp.Rs1&31]) < cmp.Imm)
		case riscv.MnSLTIU:
			v = b2u(c.X[cmp.Rs1&31] < uint64(cmp.Imm))
		}
		c.setX(cmp.Rd, v)
		taken := v != 0
		if b.term.Mn == riscv.MnBEQ {
			taken = !taken
		}
		if taken {
			c.PC = b.takenPC
			c.Cycles += b.cmpCost + b.termCost + c.Model.BranchTakenPenalty
		} else {
			c.PC = b.fallPC
			c.Cycles += b.cmpCost + b.termCost
		}
		c.Instret += 2
		return n + 2, stopNone
	case tkJAL:
		c.setX(b.term.Rd, b.fallPC)
		c.PC = b.takenPC
		c.Cycles += b.termCost
		c.Instret++
		return n + 1, stopNone
	case tkJALR:
		target := (c.X[b.term.Rs1&31] + uint64(b.term.Imm)) &^ 1
		c.setX(b.term.Rd, b.fallPC)
		c.PC = target
		c.Cycles += b.termCost
		c.Instret++
		return n + 1, stopNone
	case tkAuipcJalr:
		c.setX(b.cmp.Rd, b.termAux)
		c.setX(b.term.Rd, b.fallPC)
		c.PC = b.takenPC
		c.Cycles += b.cmpCost + b.termCost
		c.Instret += 2
		return n + 2, stopNone
	}
	exited, err := c.exec(b.term)
	if err != nil {
		c.lastTrap = &Trap{PC: c.PC, Why: "execute " + b.term.String(), Wrap: err}
		return n, StopTrap
	}
	n++
	if exited {
		return n, StopExit
	}
	return n, stopNone
}

// evalBranch evaluates a conditional-branch condition on two operands.
func (c *CPU) evalBranch(mn riscv.Mnemonic, rs1, rs2 uint64) bool {
	switch mn {
	case riscv.MnBEQ:
		return rs1 == rs2
	case riscv.MnBNE:
		return rs1 != rs2
	case riscv.MnBLT:
		return int64(rs1) < int64(rs2)
	case riscv.MnBGE:
		return int64(rs1) >= int64(rs2)
	case riscv.MnBLTU:
		return rs1 < rs2
	case riscv.MnBGEU:
		return rs1 >= rs2
	}
	return false
}

// handlerFor returns the body handler for a mnemonic, or nil when the
// instruction must terminate a block: control transfers (the block is over),
// ecall/ebreak (stop state, syscalls), fence.i (invalidates the very cache
// the block lives in), and CSR ops (they read the live cycle/instret
// counters, which are only up to date at block boundaries).
func handlerFor(mn riscv.Mnemonic) instFn {
	switch mn.Cat() {
	case riscv.CatBranch, riscv.CatJAL, riscv.CatJALR:
		return nil
	}
	switch mn {
	case riscv.MnInvalid, riscv.MnECALL, riscv.MnEBREAK, riscv.MnFENCEI,
		riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		return nil

	// Dedicated handlers for the hot mnemonics skip the generic dispatch
	// switch entirely; everything else straight-line funnels through
	// execStraight, exactly as the slow path does.
	case riscv.MnADDI:
		return fnADDI
	case riscv.MnADD:
		return fnADD
	case riscv.MnSUB:
		return fnSUB
	case riscv.MnSLLI:
		return fnSLLI
	case riscv.MnLUI:
		return fnLUI
	case riscv.MnAUIPC:
		return fnAUIPC
	case riscv.MnMUL:
		return fnMUL
	case riscv.MnLD:
		return fnLD
	case riscv.MnLW:
		return fnLW
	case riscv.MnSD:
		return fnSD
	case riscv.MnSW:
		return fnSW
	case riscv.MnFLD:
		return fnFLD
	case riscv.MnFSD:
		return fnFSD
	case riscv.MnFMADDD:
		return fnFMADDD
	case riscv.MnFADDD:
		return fnFADDD
	case riscv.MnFMULD:
		return fnFMULD
	}
	return fnStraight
}

// Macro-op fusion kinds, indexed into CPU.fuseCount and Metrics.Fused.
const (
	fuseLuiAddi = iota
	fuseAuipcAddi
	fuseAuipcLd
	fuseSlliAdd
	fuseLdPair
	fuseSdPair
	fuseCmpBranch
	fuseAuipcJalr
	numFuseKinds
)

// fuseKindNames are the obs counter suffixes, indexed by fuse kind.
var fuseKindNames = [numFuseKinds]string{
	"lui_addi", "auipc_addi", "auipc_ld", "slli_add",
	"ld_pair", "sd_pair", "cmp_branch", "auipc_jalr",
}

// tryFuse attempts to fuse the already-appended body entry p with the next
// decoded instruction inst, rewriting p in place into a fused pair. Only
// patterns whose fused execution is bit-identical to sequential execution
// are recognized; the cost model is charged per constituent either way.
func (c *CPU) tryFuse(p *bodyInst, inst riscv.Inst) bool {
	if p.n != 1 {
		return false
	}
	a := &p.inst
	kind := -1
	switch {
	case a.Mn == riscv.MnLUI && inst.Mn == riscv.MnADDI &&
		inst.Rs1 == a.Rd && a.Rd != riscv.X0:
		// lui rd, hi; addi rd2, rd, lo — both results are constants.
		p.aux = uint64(a.Imm << 12)
		p.aux2 = p.aux + uint64(inst.Imm)
		p.fn = fnFuseConstPair
		kind = fuseLuiAddi
	case a.Mn == riscv.MnAUIPC && inst.Mn == riscv.MnADDI &&
		inst.Rs1 == a.Rd && a.Rd != riscv.X0:
		// auipc rd, hi; addi rd2, rd, lo — pc-relative address materialization
		// (the la pseudo-instruction); constant-folded at build time.
		p.aux = a.Addr + uint64(a.Imm<<12)
		p.aux2 = p.aux + uint64(inst.Imm)
		p.fn = fnFuseConstPair
		kind = fuseAuipcAddi
	case a.Mn == riscv.MnAUIPC && inst.Mn == riscv.MnLD &&
		inst.Rs1 == a.Rd && a.Rd != riscv.X0:
		// auipc rd, hi; ld rd2, lo(rd) — pc-relative load from a constant
		// address.
		p.aux = a.Addr + uint64(a.Imm<<12)
		p.aux2 = p.aux + uint64(inst.Imm)
		p.fn = fnFuseAuipcLd
		kind = fuseAuipcLd
	case a.Mn == riscv.MnSLLI && inst.Mn == riscv.MnADD && a.Rd != riscv.X0 &&
		(inst.Rs1 == a.Rd || inst.Rs2 == a.Rd):
		// slli rd, rs, sh; add rd2, rd, other — the address-scaling idiom
		// (shNadd) in array indexing. aux is the shift, aux2 the register
		// number of the non-shifted add operand. If both add operands are
		// the shifted register, other resolves to it and the handler reads
		// it after the shift result is committed, like sequential execution.
		other := inst.Rs1
		if inst.Rs1 == a.Rd {
			other = inst.Rs2
		}
		p.aux = uint64(a.Imm)
		p.aux2 = uint64(other & 31)
		p.fn = fnFuseSlliAdd
		kind = fuseSlliAdd
	case a.Mn == riscv.MnLD && inst.Mn == riscv.MnLD &&
		inst.Rs1 == a.Rs1 && a.Rd != a.Rs1 && inst.Imm == a.Imm+8:
		// ld rd1, off(base); ld rd2, off+8(base) — load-pair. The base must
		// survive the first load (a.Rd != base).
		p.fn = fnFuseLdPair
		kind = fuseLdPair
	case a.Mn == riscv.MnSD && inst.Mn == riscv.MnSD &&
		inst.Rs1 == a.Rs1 && inst.Imm == a.Imm+8:
		// sd rs2a, off(base); sd rs2b, off+8(base) — store-pair.
		p.fn = fnFuseSdPair
		kind = fuseSdPair
	default:
		return false
	}
	p.inst2 = inst
	p.cost1 = p.cost
	p.cost += c.Model.Cost(inst.Mn)
	p.next = inst.Next()
	p.n = 2
	p.store = p.store || inst.IsStore()
	c.fuseCount[kind]++
	return true
}

// The dedicated handlers mirror the corresponding execStraight cases
// exactly; any semantic change must be made in both places (the fast/slow
// equivalence test in block_test.go enforces this).

func fnStraight(c *CPU, bi *bodyInst) error { return c.execStraight(&bi.inst) }

func fnADDI(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, c.X[i.Rs1&31]+uint64(i.Imm))
	return nil
}

func fnADD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, c.X[i.Rs1&31]+c.X[i.Rs2&31])
	return nil
}

func fnSUB(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, c.X[i.Rs1&31]-c.X[i.Rs2&31])
	return nil
}

func fnSLLI(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, c.X[i.Rs1&31]<<uint(i.Imm))
	return nil
}

func fnLUI(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, uint64(i.Imm<<12))
	return nil
}

func fnAUIPC(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, i.Addr+uint64(i.Imm<<12))
	return nil
}

func fnMUL(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setX(i.Rd, c.X[i.Rs1&31]*c.X[i.Rs2&31])
	return nil
}

func fnLD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	v, e := c.Mem.Read64(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.setX(i.Rd, v)
	return nil
}

func fnLW(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	v, e := c.Mem.Read32(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.setX(i.Rd, sext32(v))
	return nil
}

func fnSD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 8, c.Mem.Write64(a, c.X[i.Rs2&31]))
}

func fnSW(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 4, c.Mem.Write32(a, uint32(c.X[i.Rs2&31])))
}

func fnFLD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	v, e := c.Mem.Read64(c.X[i.Rs1&31] + uint64(i.Imm))
	if e != nil {
		return e
	}
	c.F[i.Rd&31] = v
	return nil
}

func fnFSD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	a := c.X[i.Rs1&31] + uint64(i.Imm)
	return c.storeCheck(a, 8, c.Mem.Write64(a, c.F[i.Rs2&31]))
}

func fnFMADDD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setD(i.Rd, math.FMA(c.getD(i.Rs1), c.getD(i.Rs2), c.getD(i.Rs3)))
	return nil
}

func fnFADDD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setD(i.Rd, c.getD(i.Rs1)+c.getD(i.Rs2))
	return nil
}

func fnFMULD(c *CPU, bi *bodyInst) error {
	i := &bi.inst
	c.setD(i.Rd, c.getD(i.Rs1)*c.getD(i.Rs2))
	return nil
}

// Fused-pair handlers. Every handler applies the first constituent's full
// architectural effect before attempting the second, so a fault in the
// second constituent leaves exactly the state sequential execution would.
// Handlers that can fault set c.fuseStage to the number of constituents
// retired before the fault (0 or 1) on every error path.

// fnFuseConstPair covers lui+addi and auipc+addi: both destination values
// were folded to constants at build time.
func fnFuseConstPair(c *CPU, bi *bodyInst) error {
	c.setX(bi.inst.Rd, bi.aux)
	c.setX(bi.inst2.Rd, bi.aux2)
	return nil
}

func fnFuseAuipcLd(c *CPU, bi *bodyInst) error {
	c.setX(bi.inst.Rd, bi.aux) // auipc retires first
	v, e := c.Mem.Read64(bi.aux2)
	if e != nil {
		c.fuseStage = 1
		return e
	}
	c.setX(bi.inst2.Rd, v)
	return nil
}

func fnFuseSlliAdd(c *CPU, bi *bodyInst) error {
	t := c.X[bi.inst.Rs1&31] << uint(bi.aux)
	c.setX(bi.inst.Rd, t)
	// Read the other add operand after the shift result is committed: if it
	// is the shifted register itself, sequential execution sees the new
	// value, and so do we.
	c.setX(bi.inst2.Rd, t+c.X[bi.aux2])
	return nil
}

func fnFuseLdPair(c *CPU, bi *bodyInst) error {
	base := c.X[bi.inst.Rs1&31]
	v1, e := c.Mem.Read64(base + uint64(bi.inst.Imm))
	if e != nil {
		c.fuseStage = 0
		return e
	}
	c.setX(bi.inst.Rd, v1)
	v2, e := c.Mem.Read64(base + uint64(bi.inst2.Imm))
	if e != nil {
		c.fuseStage = 1
		return e
	}
	c.setX(bi.inst2.Rd, v2)
	return nil
}

func fnFuseSdPair(c *CPU, bi *bodyInst) error {
	base := c.X[bi.inst.Rs1&31]
	a1 := base + uint64(bi.inst.Imm)
	if e := c.storeCheck(a1, 8, c.Mem.Write64(a1, c.X[bi.inst.Rs2&31])); e != nil {
		c.fuseStage = 0
		return e
	}
	if c.icGen != c.blkGen {
		// The first store invalidated cached code — the second constituent's
		// bytes may have just been rewritten. Split the pair so it is
		// re-decoded, exactly as sequential execution would refetch it.
		return errFuseSplit
	}
	a2 := base + uint64(bi.inst2.Imm)
	if e := c.storeCheck(a2, 8, c.Mem.Write64(a2, c.X[bi.inst2.Rs2&31])); e != nil {
		c.fuseStage = 1
		return e
	}
	return nil
}
