package emu

import (
	"fmt"

	"rvdyn/internal/obs"
)

// Metrics receives the emulator's observability counters, backed by an
// obs.Registry. A nil *Metrics (the CPU default) disables collection
// entirely: the fused dispatch loop checks one pointer and touches no
// atomics, so fast-path throughput is unchanged (the
// BenchmarkEmulatorObsOverhead guard pins this).
type Metrics struct {
	// Instructions counts retired instructions, synced at every Run return
	// (never per instruction — Instret already tracks that architecturally).
	Instructions *obs.Counter
	// BlockHits counts fused-dispatch superblock cache hits; BlockBuilds
	// counts blocks (re)decoded. hits/(hits+builds) is the cache hit rate.
	BlockHits   *obs.Counter
	BlockBuilds *obs.Counter
	// BlockInvalidations counts icache-generation bumps — each one retires
	// every cached superblock (stores into code, WriteMem patches, fence.i).
	BlockInvalidations *obs.Counter
	// Syscalls counts serviced syscalls; per-number counts register as
	// emu.syscall.<num> on first occurrence.
	Syscalls *obs.Counter

	reg *obs.Registry
}

// NewMetrics resolves the emulator's counters in r. Attach the result to
// CPU.Obs to enable collection.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Instructions:       r.Counter("emu.instructions_retired"),
		BlockHits:          r.Counter("emu.block_cache.hits"),
		BlockBuilds:        r.Counter("emu.block_cache.builds"),
		BlockInvalidations: r.Counter("emu.block_cache.invalidations"),
		Syscalls:           r.Counter("emu.syscalls"),
		reg:                r,
	}
}

// syscall records one serviced syscall, bucketed by number. Called from the
// syscall path only (cold), so the per-number registry lookup is fine.
func (m *Metrics) syscall(num uint64) {
	if m == nil {
		return
	}
	m.Syscalls.Inc()
	m.reg.Counter(fmt.Sprintf("emu.syscall.%d", num)).Inc()
}
