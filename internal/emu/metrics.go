package emu

import (
	"fmt"

	"rvdyn/internal/obs"
)

// Metrics receives the emulator's observability counters, backed by an
// obs.Registry. A nil *Metrics (the CPU default) disables collection
// entirely: the fused dispatch loop checks one pointer and touches no
// atomics, so fast-path throughput is unchanged (the
// BenchmarkEmulatorObsOverhead guard pins this).
type Metrics struct {
	// Instructions counts retired instructions, synced at every Run return
	// (never per instruction — Instret already tracks that architecturally).
	Instructions *obs.Counter
	// BlockHits counts fused-dispatch superblock cache hits; BlockBuilds
	// counts blocks (re)decoded. hits/(hits+builds) is the cache hit rate.
	BlockHits   *obs.Counter
	BlockBuilds *obs.Counter
	// BlockInvalidations counts icache-generation bumps — each one retires
	// every cached superblock (stores into code, WriteMem patches, fence.i).
	BlockInvalidations *obs.Counter
	// Syscalls counts serviced syscalls; per-number counts register as
	// emu.syscall.<num> on first occurrence.
	Syscalls *obs.Counter

	// ChainHits counts block→block dispatches served from a superblock's
	// cached successor links (no block-map probe); ChainSevers counts
	// cached links dropped because the target's generation went stale
	// (SMC or dynamic patching).
	ChainHits   *obs.Counter
	ChainSevers *obs.Counter

	// Trace-tier counters (trace.go). TraceBuilds counts hot chains
	// compiled into flattened traces; TraceHits counts trace dispatches;
	// TracePasses counts completed loop passes (passes/hits is the loop
	// residency — how many iterations each dispatch absorbs);
	// TraceSideExits counts mispredicted-branch exits back to the
	// dispatcher; TraceSevers counts traces dropped by code invalidation
	// (SMC or dynamic patching), at dispatch or mid-trace.
	TraceBuilds    *obs.Counter
	TraceHits      *obs.Counter
	TracePasses    *obs.Counter
	TraceSideExits *obs.Counter
	TraceSevers    *obs.Counter

	// Software-TLB probe counters, per access kind. hits/(hits+misses) is
	// the translation hit rate; the fetch TLB only sees decode-cache
	// misses, so its traffic is naturally tiny on cached code.
	TLBReadHits, TLBReadMisses   *obs.Counter
	TLBWriteHits, TLBWriteMisses *obs.Counter
	TLBFetchHits, TLBFetchMisses *obs.Counter

	// Fused counts macro-op pairs recognized at block-build time, indexed
	// by fuse kind (emu.fuse.<kind>). A rebuilt block re-counts its pairs,
	// so this tracks fusion opportunity in decoded code, not retirement.
	Fused [numFuseKinds]*obs.Counter

	reg *obs.Registry
}

// NewMetrics resolves the emulator's counters in r. Attach the result to
// CPU.Obs to enable collection.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Instructions:       r.Counter("emu.instructions_retired"),
		BlockHits:          r.Counter("emu.block_cache.hits"),
		BlockBuilds:        r.Counter("emu.block_cache.builds"),
		BlockInvalidations: r.Counter("emu.block_cache.invalidations"),
		Syscalls:           r.Counter("emu.syscalls"),
		ChainHits:          r.Counter("emu.chain.hits"),
		ChainSevers:        r.Counter("emu.chain.severs"),
		TraceBuilds:        r.Counter("emu.trace.builds"),
		TraceHits:          r.Counter("emu.trace.hits"),
		TracePasses:        r.Counter("emu.trace.passes"),
		TraceSideExits:     r.Counter("emu.trace.side_exits"),
		TraceSevers:        r.Counter("emu.trace.severs"),
		TLBReadHits:        r.Counter("emu.tlb.read.hits"),
		TLBReadMisses:      r.Counter("emu.tlb.read.misses"),
		TLBWriteHits:       r.Counter("emu.tlb.write.hits"),
		TLBWriteMisses:     r.Counter("emu.tlb.write.misses"),
		TLBFetchHits:       r.Counter("emu.tlb.fetch.hits"),
		TLBFetchMisses:     r.Counter("emu.tlb.fetch.misses"),
		reg:                r,
	}
	for k := 0; k < numFuseKinds; k++ {
		m.Fused[k] = r.Counter("emu.fuse." + fuseKindNames[k])
	}
	return m
}

// syscall records one serviced syscall, bucketed by number. Called from the
// syscall path only (cold), so the per-number registry lookup is fine.
func (m *Metrics) syscall(num uint64) {
	if m == nil {
		return
	}
	m.Syscalls.Inc()
	m.reg.Counter(fmt.Sprintf("emu.syscall.%d", num)).Inc()
}
