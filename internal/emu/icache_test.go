package emu

import (
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// TestDecodeCacheInvalidation pins the coherence contract of the decode
// cache: patching through CPU.WriteMem (the mutator's path) must invalidate
// the cached decode so re-execution sees the new instruction, while writing
// the backing memory directly leaves the stale decode in place until
// FlushICache (fence.i) is issued.
func TestDecodeCacheInvalidation(t *testing.T) {
	enc := func(imm int64) []byte {
		w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnADDI, Rd: riscv.RegA0, Rs1: riscv.X0, Imm: imm})
		return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	}
	eb := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	code := append(enc(2), byte(eb), byte(eb>>8), byte(eb>>16), byte(eb>>24))
	f := &elfrv.File{
		Entry: 0x10000,
		Sections: []*elfrv.Section{
			{Name: ".text", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
				Addr: 0x10000, Data: code, Align: 4},
		},
	}
	c, err := New(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	rerun := func() uint64 {
		t.Helper()
		c.PC = 0x10000
		if r := c.Run(10); r != StopBreakpoint {
			t.Fatalf("stopped %v (%v)", r, c.LastTrap())
		}
		return c.X[riscv.RegA0]
	}

	// First run populates the decode cache.
	if got := rerun(); got != 2 {
		t.Fatalf("initial run: a0 = %d, want 2", got)
	}

	// Patch through WriteMem: the cache entry must be invalidated.
	if err := c.WriteMem(0x10000, enc(42)); err != nil {
		t.Fatal(err)
	}
	if got := rerun(); got != 42 {
		t.Fatalf("after WriteMem patch: a0 = %d, want 42 (stale decode executed)", got)
	}

	// Write the backing page directly, bypassing the CPU: the stale decode
	// must still execute — this is what makes the cache observable at all,
	// and what fence.i exists to fix.
	raw := enc(77)
	for i, b := range raw {
		c.Mem.Write8(0x10000+uint64(i), b)
	}
	if got := rerun(); got != 77 {
		if got != 42 {
			t.Fatalf("after raw write: a0 = %d, want 42 (stale) or 77", got)
		}
	} else {
		t.Log("note: direct memory writes are visible without a flush (no stale window)")
	}

	// fence.i: the new bytes must be decoded now.
	c.FlushICache()
	if got := rerun(); got != 77 {
		t.Fatalf("after FlushICache: a0 = %d, want 77", got)
	}
}
