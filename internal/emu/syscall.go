package emu

import (
	"fmt"
	"io"

	"rvdyn/internal/riscv"
)

// maxWriteChunk is the largest byte count one write(2) transfers; longer
// requests return a partial count, as Linux's MAX_RW_COUNT cap does.
const maxWriteChunk = 1 << 20

// Linux riscv64 syscall numbers the emulator services. The workload
// programs use write, exit, and clock_gettime (the paper's benchmark
// samples real time around the multiply loop with clock_gettime).
const (
	sysGetpid       = 172
	sysBrk          = 214
	sysMmap         = 222
	sysExit         = 93
	sysExitGroup    = 94
	sysWrite        = 64
	sysRead         = 63
	sysClose        = 57
	sysFstat        = 80
	sysClockGettime = 113
	sysGettimeofday = 169
)

// VirtualNanos returns the current virtual time in nanoseconds, derived
// deterministically from the cycle counter and the cost model's clock, or
// from TimeFn when a tool has pinned the clock.
func (c *CPU) VirtualNanos() uint64 {
	if c.TimeFn != nil {
		return c.TimeFn()
	}
	return c.Model.Nanos(c.Cycles)
}

// syscall services an ecall. It returns exited=true for exit/exit_group.
func (c *CPU) syscall() (exited bool, err error) {
	num := c.X[riscv.RegA7]
	a0 := c.X[riscv.RegA0]
	a1 := c.X[riscv.RegA1]
	a2 := c.X[riscv.RegA2]
	ret := uint64(0)
	switch num {
	case sysExit, sysExitGroup:
		c.Exited = true
		c.ExitCode = int(int64(a0))
		c.Obs.syscall(num)
		if c.SyscallTrace != nil {
			// ret is the value a syscall returns in A0; exit never returns,
			// so report 0 — the exit status is already visible as a0.
			// (Reporting a0 here, as an early version did, made the hook's
			// ret argument mean two different things depending on num.)
			c.SyscallTrace(num, a0, a1, a2, 0)
		}
		return true, nil
	case sysWrite:
		var w io.Writer
		switch a0 {
		case 1:
			w = c.Stdout
		case 2:
			w = c.Stderr
			if w == nil {
				w = c.Stdout
			}
		default:
			ret = errnoRet(9) // EBADF: only stdout and stderr are open
		}
		if w == nil {
			break
		}
		// Linux caps a single write at MAX_RW_COUNT and returns the partial
		// count; we do the same with a 1 MiB cap (which also bounds the
		// copy buffer). Callers that loop on short writes keep working.
		n := a2
		if n > maxWriteChunk {
			n = maxWriteChunk
		}
		buf := make([]byte, n)
		if e := c.Mem.ReadBytes(a1, buf); e != nil {
			ret = errnoRet(14) // EFAULT
			break
		}
		if _, e := w.Write(buf); e != nil {
			ret = errnoRet(5) // EIO
			break
		}
		ret = n
	case sysRead:
		ret = 0 // EOF
	case sysClose, sysFstat:
		ret = 0
	case sysGetpid:
		ret = 2
	case sysBrk:
		if a0 != 0 && a0 >= c.brk && a0 < mmapBase {
			c.Mem.Map(c.brk, a0-c.brk)
			c.brk = (a0 + pageSize - 1) &^ (pageSize - 1)
		}
		ret = c.brk
	case sysMmap:
		size := (a1 + pageSize - 1) &^ (pageSize - 1)
		if size == 0 || size > 1<<30 {
			ret = errnoRet(22)
			break
		}
		// The bump allocator grows upward from MmapBase; refuse a mapping
		// that would cross into the stack region rather than silently
		// clobbering it.
		if c.mmapNext+size > StackTop-StackSize {
			ret = errnoRet(12) // ENOMEM
			break
		}
		addr := c.mmapNext
		c.mmapNext += size
		c.Mem.Map(addr, size)
		ret = addr
	case sysClockGettime:
		ns := c.VirtualNanos()
		if e := c.sysWrite64(a1, ns/1e9); e != nil {
			ret = errnoRet(14)
			break
		}
		if e := c.sysWrite64(a1+8, ns%1e9); e != nil {
			ret = errnoRet(14)
			break
		}
		ret = 0
	case sysGettimeofday:
		ns := c.VirtualNanos()
		if e := c.sysWrite64(a0, ns/1e9); e != nil {
			ret = errnoRet(14)
			break
		}
		if e := c.sysWrite64(a0+8, ns%1e9/1000); e != nil {
			ret = errnoRet(14)
			break
		}
		ret = 0
	default:
		return false, fmt.Errorf("emu: unimplemented syscall %d at pc=%#x", num, c.PC)
	}
	c.Obs.syscall(num)
	if c.SyscallTrace != nil {
		c.SyscallTrace(num, a0, a1, a2, ret)
	}
	c.X[riscv.RegA0] = ret
	return false, nil
}

func errnoRet(errno int64) uint64 { return uint64(-errno) }

// sysWrite64 is Write64 plus decode-cache coherence: a syscall that stores
// into guest memory (clock_gettime's timespec, gettimeofday's timeval) is a
// store like any other, so it must invalidate cached decodes it lands on.
// Without this, pointing an out-parameter at executed code would leave stale
// superblocks chained past the overwrite.
func (c *CPU) sysWrite64(addr uint64, v uint64) error {
	return c.storeCheck(addr, 8, c.Mem.Write64(addr, v))
}
