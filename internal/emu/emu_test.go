package emu

import (
	"bytes"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// run assembles src, runs it to completion, and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	return runOpts(t, src, asm.Options{})
}

func runOpts(t *testing.T, src string, opts asm.Options) *CPU {
	t.Helper()
	f, err := asm.Assemble(src, opts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	reason := c.Run(50_000_000)
	if reason != StopExit {
		t.Fatalf("stopped with %v (trap: %v, pc=%#x)", reason, c.LastTrap(), c.PC)
	}
	return c
}

const exitTail = `
	li a7, 93
	ecall
`

func TestExitCode(t *testing.T) {
	c := run(t, `
	.text
_start:
	li a0, 42
`+exitTail)
	if c.ExitCode != 42 {
		t.Errorf("exit code = %d", c.ExitCode)
	}
}

func TestArithmeticProgram(t *testing.T) {
	// Compute 10! iteratively; exit with 3628800 % 251 = 23... compute in Go.
	want := int64(1)
	for i := int64(2); i <= 10; i++ {
		want *= i
	}
	c := run(t, `
	.text
_start:
	li t0, 1       # acc
	li t1, 2       # i
	li t2, 10
loop:
	mul t0, t0, t1
	addi t1, t1, 1
	ble t1, t2, loop
	mv a0, t0
`+exitTail)
	if got := int64(c.ExitCode); got != want {
		t.Errorf("10! = %d, want %d", got, want)
	}
}

func TestMemoryAndStack(t *testing.T) {
	c := run(t, `
	.data
arr:
	.dword 5, 10, 15, 20
	.text
_start:
	la t0, arr
	li t1, 0      # sum
	li t2, 0      # i
loop:
	slli t3, t2, 3
	add t3, t3, t0
	ld t4, 0(t3)
	add t1, t1, t4
	addi t2, t2, 1
	li t5, 4
	blt t2, t5, loop
	# push/pop via stack
	addi sp, sp, -16
	sd t1, 0(sp)
	ld a0, 0(sp)
	addi sp, sp, 16
`+exitTail)
	if c.ExitCode != 50 {
		t.Errorf("sum = %d, want 50", c.ExitCode)
	}
}

func TestCallsAndReturns(t *testing.T) {
	c := run(t, `
	.text
_start:
	li a0, 7
	call double
	call double
	j done
	.type double, @function
double:
	slli a0, a0, 1
	ret
done:
`+exitTail)
	if c.ExitCode != 28 {
		t.Errorf("exit = %d, want 28", c.ExitCode)
	}
}

func TestRecursion(t *testing.T) {
	// fib(10) = 55 with a recursive callee-saved implementation.
	c := run(t, `
	.text
_start:
	li a0, 10
	call fib
`+exitTail+`
	.type fib, @function
fib:
	li t0, 2
	blt a0, t0, base
	addi sp, sp, -32
	sd ra, 24(sp)
	sd s0, 16(sp)
	sd s1, 8(sp)
	mv s0, a0
	addi a0, s0, -1
	call fib
	mv s1, a0
	addi a0, s0, -2
	call fib
	add a0, a0, s1
	ld ra, 24(sp)
	ld s0, 16(sp)
	ld s1, 8(sp)
	addi sp, sp, 32
base:
	ret
`)
	if c.ExitCode != 55 {
		t.Errorf("fib(10) = %d, want 55", c.ExitCode)
	}
}

func TestWriteSyscall(t *testing.T) {
	f, err := asm.Assemble(`
	.data
msg:
	.ascii "hello, riscv\n"
	.equ MSGLEN, 13
	.text
_start:
	li a0, 1
	la a1, msg
	li a2, MSGLEN
	li a7, 64
	ecall
	li a0, 0
`+exitTail, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Stdout = &out
	if r := c.Run(0); r != StopExit {
		t.Fatalf("stop = %v (%v)", r, c.LastTrap())
	}
	if out.String() != "hello, riscv\n" {
		t.Errorf("stdout = %q", out.String())
	}
	// write returns the byte count in a0 before the exit overwrote it; check
	// exit code is 0 (the li a0, 0).
	if c.ExitCode != 0 {
		t.Errorf("exit = %d", c.ExitCode)
	}
}

func TestClockGettimeMonotonic(t *testing.T) {
	c := run(t, `
	.text
_start:
	addi sp, sp, -32
	# first sample
	li a0, 1          # CLOCK_MONOTONIC
	mv a1, sp
	li a7, 113
	ecall
	ld s0, 0(sp)      # sec
	ld s1, 8(sp)      # nsec
	# burn cycles
	li t0, 10000
burn:
	addi t0, t0, -1
	bnez t0, burn
	# second sample
	li a0, 1
	addi a1, sp, 16
	li a7, 113
	ecall
	ld s2, 16(sp)
	ld s3, 24(sp)
	# a0 = (s2*1e9+s3) > (s0*1e9+s1)
	li t1, 1000000000
	mul s0, s0, t1
	add s0, s0, s1
	mul s2, s2, t1
	add s2, s2, s3
	sltu a0, s0, s2
`+exitTail)
	if c.ExitCode != 1 {
		t.Error("virtual clock did not advance across a busy loop")
	}
}

func TestVirtualTimeMatchesCostModel(t *testing.T) {
	c := run(t, `
	.text
_start:
	li t0, 1000
loop:
	addi t0, t0, -1
	bnez t0, loop
	li a0, 0
`+exitTail)
	if c.Cycles == 0 || c.Instret == 0 {
		t.Fatal("no cycles/instret accumulated")
	}
	wantNs := c.Cycles * 1000 / c.Model.MHz
	if c.VirtualNanos() != wantNs {
		t.Errorf("VirtualNanos = %d, want %d", c.VirtualNanos(), wantNs)
	}
	// The loop executes ~2000 instructions; instret must reflect that.
	if c.Instret < 2000 || c.Instret > 2100 {
		t.Errorf("instret = %d, want ~2000", c.Instret)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := run(t, `
	.text
_start:
	# div by zero -> -1
	li t0, 5
	li t1, 0
	div t2, t0, t1
	li t3, -1
	bne t2, t3, fail
	# rem by zero -> dividend
	rem t2, t0, t1
	bne t2, t0, fail
	# overflow: MinInt64 / -1 -> MinInt64
	li t0, 1
	slli t0, t0, 63
	li t1, -1
	div t2, t0, t1
	bne t2, t0, fail
	rem t2, t0, t1
	bnez t2, fail
	# divu by zero -> all ones
	li t0, 7
	li t1, 0
	divu t2, t0, t1
	li t3, -1
	bne t2, t3, fail
	li a0, 0
	j done
fail:
	li a0, 1
done:
`+exitTail)
	if c.ExitCode != 0 {
		t.Error("division edge cases failed in-program checks")
	}
}

func TestDoubleFloatProgram(t *testing.T) {
	// Compute round(sqrt(2) * 1e6).
	f, err := asm.Assemble(`
	.text
_start:
	li t0, 2
	fcvt.d.l ft0, t0
	fsqrt.d ft1, ft0
	li t1, 1000000
	fcvt.d.l ft2, t1
	fmul.d ft3, ft1, ft2
	fcvt.l.d s0, ft3
	ebreak
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := cpu.Run(0); r != StopBreakpoint {
		t.Fatalf("stop = %v (%v)", r, cpu.LastTrap())
	}
	got := int64(cpu.X[riscv.RegS0])
	if got != 1414214 && got != 1414213 { // RNE rounds up here
		t.Errorf("sqrt(2)*1e6 = %d", got)
	}
}

func TestFloatMinMaxNaN(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	# ft0 = NaN (0/0), ft1 = 3.0
	fcvt.d.l ft2, zero
	fdiv.d ft0, ft2, ft2
	li t0, 3
	fcvt.d.l ft1, t0
	fmin.d ft3, ft0, ft1   # -> 3.0
	fcvt.l.d s0, ft3
	feq.d s1, ft0, ft0     # NaN != NaN -> 0
	fclass.d s2, ft0       # quiet NaN -> bit 9
	ebreak
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stop = %v (%v)", r, c.LastTrap())
	}
	if c.X[riscv.RegS0] != 3 {
		t.Errorf("fmin(NaN, 3) = %d", c.X[riscv.RegS0])
	}
	if c.X[riscv.RegS1] != 0 {
		t.Errorf("feq(NaN, NaN) = %d", c.X[riscv.RegS1])
	}
	if c.X[riscv.RegS2] != 1<<9 {
		t.Errorf("fclass(NaN) = %#x", c.X[riscv.RegS2])
	}
}

func TestAMOProgram(t *testing.T) {
	c := run(t, `
	.bss
cell:
	.zero 8
	.text
_start:
	la t0, cell
	li t1, 5
	amoadd.d t2, t1, (t0)   # t2 = 0, cell = 5
	bnez t2, fail
	li t1, 100
	amoswap.d t2, t1, (t0)  # t2 = 5, cell = 100
	li t3, 5
	bne t2, t3, fail
	# lr/sc success path
	lr.d t2, (t0)
	addi t2, t2, 1
	sc.d t4, t2, (t0)
	bnez t4, fail           # sc must succeed
	ld t5, 0(t0)
	li t6, 101
	bne t5, t6, fail
	li a0, 0
	j done
fail:
	li a0, 1
done:
`+exitTail)
	if c.ExitCode != 0 {
		t.Error("AMO program failed in-program checks")
	}
}

func TestBreakpointPatchAndResume(t *testing.T) {
	f, err := asm.Assemble(`
	.text
	.globl _start
_start:
	li s0, 1
	li s1, 2
	li s2, 3
	li a0, 0
`+exitTail, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	// Patch a breakpoint over the third li (entry + 8).
	bpAddr := f.Entry + 8
	orig, err := c.ReadMem(bpAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ebreak := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	if err := c.WriteMem(bpAddr, []byte{byte(ebreak), byte(ebreak >> 8), byte(ebreak >> 16), byte(ebreak >> 24)}); err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stop = %v", r)
	}
	if c.PC != bpAddr {
		t.Fatalf("pc = %#x, want %#x", c.PC, bpAddr)
	}
	if c.X[riscv.RegS0] != 1 || c.X[riscv.RegS1] != 2 || c.X[riscv.RegS2] == 3 {
		t.Error("breakpoint fired at wrong position")
	}
	// Restore, resume: must run to exit.
	if err := c.WriteMem(bpAddr, orig); err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopExit {
		t.Fatalf("resume stop = %v (%v)", r, c.LastTrap())
	}
	if c.X[riscv.RegS2] != 3 {
		t.Error("resumed execution skipped patched-back instruction")
	}
}

func TestTraceHook(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	nop
	nop
	li a0, 0
`+exitTail, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	var count int
	c.Trace = func(_ *CPU, _ riscv.Inst) { count++ }
	c.Run(0)
	if count != 5 {
		t.Errorf("trace saw %d instructions, want 5", count)
	}
}

func TestMemFault(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	li t0, 0x900000000
	ld t1, 0(t0)
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopTrap {
		t.Fatalf("stop = %v", r)
	}
	if c.LastTrap() == nil {
		t.Fatal("no trap recorded")
	}
}

func TestMaxInstBudget(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	j _start
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(100); r != StopMaxInst {
		t.Fatalf("stop = %v", r)
	}
	if c.Instret != 100 {
		t.Errorf("instret = %d", c.Instret)
	}
}

func TestCompressedExecution(t *testing.T) {
	// The same computation with and without compression must agree on
	// everything except code size.
	src := `
	.text
_start:
	addi sp, sp, -32
	li t0, 0
	li t1, 100
loop:
	add t0, t0, t1
	addi t1, t1, -1
	bnez t1, loop
	sd t0, 8(sp)
	ld a0, 8(sp)
	addi sp, sp, 32
` + exitTail
	c1 := runOpts(t, src, asm.Options{})
	c2 := runOpts(t, src, asm.Options{NoCompress: true})
	if c1.ExitCode != c2.ExitCode {
		t.Errorf("exit codes differ: %d vs %d", c1.ExitCode, c2.ExitCode)
	}
	if c1.Instret != c2.Instret {
		t.Errorf("instret differ: %d vs %d", c1.Instret, c2.Instret)
	}
	want := 100 * 101 / 2
	if c1.ExitCode != want {
		t.Errorf("sum = %d, want %d", c1.ExitCode, want)
	}
}

func TestCostModelsDiffer(t *testing.T) {
	src := `
	.text
_start:
	li t0, 1000
loop:
	mul t1, t0, t0
	addi t0, t0, -1
	bnez t0, loop
	li a0, 0
` + exitTail
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := New(f, P550())
	c1.Run(0)
	c2, _ := New(f, X86Comparator())
	c2.Run(0)
	if c1.Instret != c2.Instret {
		t.Errorf("instret differ across models: %d vs %d", c1.Instret, c2.Instret)
	}
	if c1.VirtualNanos() <= c2.VirtualNanos() {
		t.Errorf("P550 (%d ns) should be slower than comparator (%d ns)",
			c1.VirtualNanos(), c2.VirtualNanos())
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x2000)
	if err := m.Write64(0x1ffc, 0x1122334455667788); err != nil {
		t.Fatal(err) // straddles a page boundary
	}
	v, err := m.Read64(0x1ffc)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("read = %#x err=%v", v, err)
	}
	if err := m.Write8(0x999999, 1); err == nil {
		t.Error("write to unmapped succeeded")
	}
	var mf *MemFault
	if err := m.ReadBytes(0x5000_0000, make([]byte, 4)); err == nil {
		t.Error("read from unmapped succeeded")
	} else if !asMemFault(err, &mf) {
		t.Errorf("error type = %T", err)
	}
}

func asMemFault(err error, out **MemFault) bool {
	f, ok := err.(*MemFault)
	if ok {
		*out = f
	}
	return ok
}

func TestBssZeroed(t *testing.T) {
	c := run(t, `
	.bss
buf:
	.zero 64
	.text
_start:
	la t0, buf
	ld a0, 32(t0)
`+exitTail)
	if c.ExitCode != 0 {
		t.Errorf("bss not zeroed: %d", c.ExitCode)
	}
}

func TestLoadELFMapsEverything(t *testing.T) {
	f, err := asm.Assemble(`
	.data
x:
	.dword 9
	.text
_start:
	nop
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory()
	if err := m.LoadELF(f); err != nil {
		t.Fatal(err)
	}
	sym, _ := f.Symbol("x")
	v, err := m.Read64(sym.Value)
	if err != nil || v != 9 {
		t.Errorf("data = %d err=%v", v, err)
	}
	var es *elfrv.Section
	_ = es
}
