package emu

// CompDelta records how far a stretch of DBI-translated code diverges from
// the original program it stands in for: Insts extra retired instructions
// and Cycles extra cost-model cycles. The DBI engine computes one delta per
// overhead site (probe splice, materialization expansion, exit stub) at
// translation time and references it by index from a dbi.acc/dbi.jt
// instruction woven into the cache (see internal/riscv/xdbi.go).
type CompDelta struct {
	Insts  int64
	Cycles int64
	// JT classifies the dbi.jt this delta belongs to, so the CPU can bucket
	// in-cache indirect-branch resolutions without extra cache-resident
	// state: DBIJTIBL for hash-table lookup hits, DBIJTIBC for per-site
	// inline-cache hits, zero for everything else (dbi.acc deltas). Part of
	// the comparable key on purpose — otherwise interning could fold an IBC
	// delta into an IBL one with identical costs.
	JT uint8
}

// CompDelta.JT values.
const (
	DBIJTNone uint8 = iota
	DBIJTIBL
	DBIJTIBC
)

// DBIComp is the per-CPU counter-compensation state a DBI engine installs
// at attach time (CPU.DBIComp). It accumulates the translated run's
// divergence from a native run so reads of the cycle/instret CSRs can
// subtract it back out — the counter-virtualization half of DBI
// transparency. It also provides four scratch registers (custom CSRs
// 0x7C0–0x7C3) the inline indirect-branch lookup stubs use to save and
// restore the guest registers they clobber without touching guest memory.
//
// A nil DBIComp (the default) leaves every native behaviour untouched:
// the scratch CSRs stay unimplemented and counter reads are raw.
type DBIComp struct {
	// Virtualize enables compensation on cycle/instret CSR reads. Off, the
	// CSRs expose the raw (DBI-inflated) counters while scratch CSRs and
	// delta accumulation keep working — the engine needs those regardless.
	Virtualize bool

	// ExtraInstret/ExtraCycles are the running totals: DBI-run counter
	// minus what the native run would read at the same program point. The
	// engine also adjusts them host-side when it services a cache exit
	// whose stub accounting assumed an instruction that did not retire.
	ExtraInstret int64
	ExtraCycles  int64

	// IBLHits counts inline-lookup stubs that resolved their target through
	// the hash table (dbi.jt retirements with an IBL-marked delta) without
	// an engine round trip; IBCHits counts resolutions one rung faster —
	// the per-site inline cache matched and the hash probe never ran.
	IBLHits uint64
	IBCHits uint64

	// Scratch backs the custom CSRs 0x7C0..0x7C3. The lookup stubs use
	// 0x7C0–0x7C2 for register save/restore and 0x7C3 for the original
	// (and then translated) jump target.
	Scratch [4]uint64

	// Deltas is the compensation table dbi.acc/dbi.jt index into via their
	// 12-bit immediate (index = imm + 2048, capacity 4096).
	Deltas []CompDelta

	// JTProf is a ring of recent inline-resolved indirect transfers, the
	// profile feed for the engine's per-site inline-cache policy. Every
	// dbi.jt retirement whose rd/rs1 fields carry a nonzero site tag
	// appends one sample; the engine drains the ring at each re-entry
	// (stub miss, budget stop) and steers each site's cached pair toward
	// its hottest target. JTProfN is monotonic; the ring index is
	// JTProfN % JTProfSize, and a slow-draining engine simply loses the
	// oldest samples (the profile is approximate by design).
	JTProf  [JTProfSize]JTSample
	JTProfN uint64
}

// JTProfSize is the JTProf ring capacity.
const JTProfSize = 256

// JTSample is one JTProf entry: which jalr site resolved (by its inline-
// cache slot index, 0 = untagged) and the translated cache address it
// jumped to — the engine maps that back to the target translation.
type JTSample struct {
	Site  uint16
	Cache uint64
}

// apply accumulates the delta at idx; it reports false when idx is out of
// range (a translation bug — the engine only emits indices it allocated).
func (dc *DBIComp) apply(idx int64) bool {
	if idx < 0 || idx >= int64(len(dc.Deltas)) {
		return false
	}
	d := dc.Deltas[idx]
	dc.ExtraInstret += d.Insts
	dc.ExtraCycles += d.Cycles
	return true
}
