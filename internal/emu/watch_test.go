package emu

import (
	"testing"

	"rvdyn/internal/asm"
)

// watchProgram stores below, inside, and above the watched span of buf on
// each of three loop iterations; only the middle store overlaps the armed
// range [buf+8, buf+16).
const watchProgram = `
	.text
_start:
	la t0, buf
	li t1, 0
loop:
	sw t1, 0(t0)
	sd t1, 8(t0)
	sw t1, 16(t0)
	addi t1, t1, 1
	li t2, 3
	blt t1, t2, loop
	li a0, 7
	li a7, 93
	ecall
	.data
buf:
	.dword 0
	.dword 0
	.dword 0
`

type watchStop struct {
	pc, cycles, instret uint64
	addr, n             uint64
}

// runWatched runs watchProgram with the code watch armed over [buf+8,
// buf+16) and records every StopCodeWrite until exit.
func runWatched(t *testing.T, slow bool) (stops []watchStop, c *CPU) {
	t.Helper()
	f, err := asm.Assemble(watchProgram, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err = New(f, P550())
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	c.SlowDispatch = slow
	buf, ok := f.Symbol("buf")
	if !ok {
		t.Fatal("no buf symbol")
	}
	c.SetCodeWatch(buf.Value+8, buf.Value+16)
	for {
		switch r := c.Run(1_000_000); r {
		case StopCodeWrite:
			addr, n := c.CodeWrite()
			stops = append(stops, watchStop{c.PC, c.Cycles, c.Instret, addr, n})
			if len(stops) > 10 {
				t.Fatal("watch storm: more stops than stores")
			}
		case StopExit:
			return stops, c
		default:
			t.Fatalf("stopped with %v (trap: %v, pc=%#x)", r, c.LastTrap(), c.PC)
		}
	}
}

// TestCodeWatchParity pins the watch semantics — exactly one stop per
// overlapping store, PC past the store, span equal to the store — and that
// the fast superblock path and the slow per-instruction path agree on every
// architectural coordinate of every stop.
func TestCodeWatchParity(t *testing.T) {
	fast, cFast := runWatched(t, false)
	slow, cSlow := runWatched(t, true)

	if len(fast) != 3 {
		t.Fatalf("fast path: %d stops, want 3 (one per sd into the watch)", len(fast))
	}
	if len(fast) != len(slow) {
		t.Fatalf("stop counts differ: fast %d, slow %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("stop %d differs: fast %+v, slow %+v", i, fast[i], slow[i])
		}
		if fast[i].n != 8 {
			t.Errorf("stop %d: span %d bytes, want 8 (the sd)", i, fast[i].n)
		}
	}
	if cFast.ExitCode != 7 || cSlow.ExitCode != 7 {
		t.Errorf("exit codes: fast %d, slow %d, want 7", cFast.ExitCode, cSlow.ExitCode)
	}
	if cFast.Cycles != cSlow.Cycles || cFast.Instret != cSlow.Instret {
		t.Errorf("final counters differ: fast (%d cycles, %d insts), slow (%d, %d)",
			cFast.Cycles, cFast.Instret, cSlow.Cycles, cSlow.Instret)
	}
}

// TestCodeWatchDisarmed proves the zero-value watch never fires and that
// SetCodeWatch(0, 0) disarms a previously armed watch.
func TestCodeWatchDisarmed(t *testing.T) {
	f, err := asm.Assemble(watchProgram, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	buf, _ := f.Symbol("buf")
	c.SetCodeWatch(buf.Value, buf.Value+24)
	c.SetCodeWatch(0, 0)
	if r := c.Run(1_000_000); r != StopExit {
		t.Fatalf("stopped with %v, want exit", r)
	}
	if c.ExitCode != 7 {
		t.Errorf("exit code = %d, want 7", c.ExitCode)
	}
}

// TestCodeWatchDebuggerWriteDoesNotTrip: WriteMem is the debugger path and
// must not trip the guest-store watch.
func TestCodeWatchDebuggerWriteDoesNotTrip(t *testing.T) {
	f, err := asm.Assemble(watchProgram, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	buf, _ := f.Symbol("buf")
	c.SetCodeWatch(buf.Value+8, buf.Value+16)
	if err := c.WriteMem(buf.Value+8, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("WriteMem: %v", err)
	}
	if c.watchHit {
		t.Fatal("debugger WriteMem tripped the code watch")
	}
}
