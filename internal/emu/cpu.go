package emu

import (
	"fmt"
	"io"
	"math/bits"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// Stack and heap placement for emulated processes. MmapBase is exported so
// alternative engines (the oracle's reference interpreter) can mirror the
// process layout exactly.
const (
	StackTop  = 0x7fff_f000
	StackSize = 1 << 20
	MmapBase  = 0x4000_0000
	mmapBase  = MmapBase
)

// StopReason reports why Run returned.
type StopReason int

const (
	StopExit       StopReason = iota // the program called exit
	StopBreakpoint                   // an ebreak was executed (PC at the ebreak)
	StopMaxInst                      // the instruction budget was exhausted
	StopTrap                         // illegal instruction or memory fault
	StopCodeWrite                    // a store landed in the armed code-watch range
)

func (r StopReason) String() string {
	switch r {
	case StopExit:
		return "exit"
	case StopBreakpoint:
		return "breakpoint"
	case StopMaxInst:
		return "max-instructions"
	case StopTrap:
		return "trap"
	case StopCodeWrite:
		return "code-write"
	}
	return "unknown"
}

// CPU is one emulated RV64GC hart plus its process state.
type CPU struct {
	X  [32]uint64 // integer registers; X[0] stays zero
	F  [32]uint64 // float registers (raw IEEE bits, NaN-boxed for .s)
	PC uint64

	FCSR uint32 // fflags [4:0], frm [7:5]

	Mem   *Memory
	Model *CostModel

	Cycles  uint64 // accumulated cost-model cycles
	Instret uint64 // retired instructions

	Exited   bool
	ExitCode int

	Stdout io.Writer
	// Stderr receives guest writes to fd 2. When nil, fd 2 falls back to
	// Stdout (the historical behaviour, which conflated the two streams).
	Stderr io.Writer

	// SlowDispatch forces the per-instruction interpreter loop even when no
	// Trace hook is installed. Tools use it to compare the superblock fast
	// path against the reference dispatch (see block.go).
	SlowDispatch bool

	// NoTrace disables trace compilation and dispatch (trace.go), leaving
	// the chained superblock fast path as the top dispatch tier. Tools use
	// it for A/B overhead runs (rvemu/rvdyn -notrace, rvbench's fast rows).
	NoTrace bool

	// Trace, when non-nil, runs before each instruction executes. Tools
	// (and the trap-based instrumentation mode) hook here.
	Trace func(c *CPU, inst riscv.Inst)

	// TimeFn, when non-nil, overrides the cost-model-derived virtual clock
	// for clock_gettime/gettimeofday and the time CSR. The equivalence
	// oracle pins both the original and the instrumented run to one clock so
	// timing-derived state cannot differ.
	TimeFn func() uint64

	// SyscallTrace, when non-nil, observes every serviced syscall after its
	// return value is known. ret is always the value the syscall returns in
	// A0; exit syscalls never return, so they report ret == 0 (the exit
	// status is a0, as for every other syscall argument).
	SyscallTrace func(num, a0, a1, a2, ret uint64)

	// CounterFn, when non-nil, overrides reads of the cycle (0xC00) and
	// instret (0xC02) counter CSRs. Equivalence harnesses pin both runs to
	// one counter source when comparing executions whose retired-instruction
	// counts legitimately differ (DBI-translated code retires extra
	// materialization instructions, so instret is not transparent).
	CounterFn func(csr uint16) uint64

	// DBIComp, when non-nil, is the counter-compensation and scratch-CSR
	// state a dynamic-instrumentation engine installed (see dbicomp.go).
	// nil keeps native semantics: raw counters, scratch CSRs fault.
	DBIComp *DBIComp

	// Obs, when non-nil, receives emulator observability counters (retired
	// instructions, superblock-cache hits/builds/invalidations, syscall
	// counts). nil — the default — is the fast path: the dispatch loop pays
	// one pointer check and no atomics.
	Obs *Metrics

	// Virtual-clock sample trigger (see SetSampler). SamplePeriod is the
	// cycle distance between sample marks (0 disarms); SampleFn runs at the
	// first instruction-boundary state whose sample clock has reached the
	// next mark. Both dispatch engines observe the identical boundary: the
	// slow path polls every loop iteration, and the fast path refuses to
	// dispatch a superblock that could cross the pending mark mid-block
	// (the same trick that makes budget stops bit-identical). SampleFn
	// returning false defers the mark to the next boundary without
	// consuming it — the DBI sampler uses this to skip cache states that
	// sit between translation-group bounds, where the compensated clock is
	// not yet exact.
	SamplePeriod uint64
	SampleFn     func(c *CPU) bool
	sampleNext   uint64

	resValid bool
	resAddr  uint64

	brk      uint64
	mmapNext uint64

	// Decoded-instruction cache: a direct-mapped slice over the executable
	// window present at load time (slot index (pc-base)/2; Len==0 means
	// empty), plus an overflow map for code outside it (e.g. trampolines
	// mapped by dynamic instrumentation).
	icBase, icEnd uint64
	icSlots       []riscv.Inst
	icOverflow    map[uint64]riscv.Inst
	// icLo/icHi bound every cached address for cheap invalidation checks.
	icLo, icHi uint64
	// icGen is bumped whenever cached code is invalidated (store into code,
	// WriteMem patch, fence.i). Superblocks record the generation they were
	// decoded under and are re-decoded when it moves (see block.go).
	icGen uint64

	// Superblock cache: direct-mapped over the same executable window as
	// icSlots, keyed by block start address, plus an overflow map for blocks
	// outside it (trampolines).
	blkSlots []*block
	blkMap   map[uint64]*block

	// Hot-path engine counters, kept as plain fields (no atomics) and
	// synced into Obs at every Run return. chainHits counts block→block
	// dispatches served from a superblock's successor cache; chainSevers
	// counts cached successors dropped because their generation went stale.
	// fuseCount tallies macro-op pairs fused at block-build time, by kind.
	chainHits   uint64
	chainSevers uint64
	fuseCount   [numFuseKinds]uint64

	// Trace-tier counters (trace.go): traces compiled, trace dispatches,
	// completed loop passes, mispredicted-branch side exits, and traces
	// severed by invalidation (at dispatch or mid-trace by an SMC store).
	traceBuilds    uint64
	traceHits      uint64
	tracePasses    uint64
	traceSideExits uint64
	traceSevers    uint64

	// blkGen mirrors the generation of the block runBlock is executing, so
	// fused store-pair handlers can detect a mid-pair code invalidation.
	// fuseStage is set by a faulting fused handler to the number of
	// constituents that retired before the fault.
	blkGen    uint64
	fuseStage int

	// Code-watch range [watchLo, watchHi): a guest store overlapping it
	// stops Run with StopCodeWrite *after* the store retires, with
	// CodeWrite() reporting the written span. The DBI engine arms this over
	// the pages it has translated so self-modifying code invalidates
	// translations. Both bounds zero (the default) disarms the watch; the
	// overlap test then never fires, so uninstrumented runs pay one compare
	// per store.
	watchLo, watchHi    uint64
	watchAddr, watchLen uint64
	watchHit            bool

	lastTrap error
}

// New creates a CPU with the ELF image loaded, the stack mapped, and the
// machine state at the ABI entry conditions.
func New(f *elfrv.File, model *CostModel) (*CPU, error) {
	if model == nil {
		model = P550()
	}
	c := &CPU{
		Mem:        NewMemory(),
		Model:      model,
		Stdout:     io.Discard,
		mmapNext:   mmapBase,
		icOverflow: make(map[uint64]riscv.Inst),
		icLo:       ^uint64(0),
	}
	if err := c.Mem.LoadELF(f); err != nil {
		return nil, err
	}
	// Size the direct-mapped decode cache to the executable image.
	const maxWindow = 4 << 20
	lo, hi := ^uint64(0), uint64(0)
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Flags&elfrv.SHFExecinstr == 0 {
			continue
		}
		if s.Addr < lo {
			lo = s.Addr
		}
		if s.Addr+s.Size() > hi {
			hi = s.Addr + s.Size()
		}
	}
	if lo < hi && hi-lo <= maxWindow {
		c.icBase, c.icEnd = lo, hi
		c.icSlots = make([]riscv.Inst, (hi-lo+1)/2)
		c.blkSlots = make([]*block, (hi-lo+1)/2)
	}
	c.blkMap = make(map[uint64]*block)
	c.Mem.Map(StackTop-StackSize, StackSize+pageSize)
	c.PC = f.Entry
	c.X[riscv.RegSP] = StackTop - 64 // modest arg area, 16-byte aligned
	var end uint64
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc != 0 && s.Addr+s.Size() > end {
			end = s.Addr + s.Size()
		}
	}
	c.brk = (end + pageSize - 1) &^ (pageSize - 1)
	return c, nil
}

// Trap describes an execution fault.
type Trap struct {
	PC   uint64
	Why  string
	Wrap error
}

func (t *Trap) Error() string {
	if t.Wrap != nil {
		return fmt.Sprintf("emu: trap at pc=%#x: %s: %v", t.PC, t.Why, t.Wrap)
	}
	return fmt.Sprintf("emu: trap at pc=%#x: %s", t.PC, t.Why)
}

func (t *Trap) Unwrap() error { return t.Wrap }

// LastTrap returns the trap that caused the most recent StopTrap.
func (c *CPU) LastTrap() error { return c.lastTrap }

// WriteMem writes process memory from outside the process (the debugger
// path used by ProcControl) and keeps the decoded-instruction cache
// coherent — the moral equivalent of the fence.i the kernel issues after
// ptrace POKETEXT.
func (c *CPU) WriteMem(addr uint64, data []byte) error {
	if err := c.Mem.WriteBytes(addr, data); err != nil {
		return err
	}
	c.invalidate(addr, uint64(len(data)))
	return nil
}

// ReadMem reads process memory from outside the process.
func (c *CPU) ReadMem(addr uint64, n int) ([]byte, error) {
	b := make([]byte, n)
	if err := c.Mem.ReadBytes(addr, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (c *CPU) invalidate(addr, n uint64) {
	if addr+n <= c.icLo || addr >= c.icHi {
		return
	}
	// Instructions are at even addresses and at most 4 bytes long; clear a
	// small window around the write.
	start := addr &^ 1
	if start >= 2 {
		start -= 2
	}
	dirtied := false
	for a := start; a < addr+n; a += 2 {
		if a >= c.icBase && a < c.icEnd {
			if c.icSlots[(a-c.icBase)>>1].Len != 0 {
				c.icSlots[(a-c.icBase)>>1] = riscv.Inst{}
				dirtied = true
			}
		} else if _, ok := c.icOverflow[a]; ok {
			delete(c.icOverflow, a)
			dirtied = true
		}
	}
	// A write that dirtied cached code retires every superblock: blocks
	// carry pre-decoded instruction runs, so the cheap (if coarse) way to
	// keep them coherent is a generation bump that forces re-decode on next
	// dispatch. The bump is gated on an actual cached decode being hit:
	// [icLo, icHi) is a coarse range that can cover data sitting between
	// code regions (instrumented binaries place trampolines above .bss),
	// and ordinary data stores landing there must not thrash the block
	// cache. A decoded instruction's slot stays populated for as long as
	// any block containing it is valid (fetchAt caches unconditionally and
	// every clear bumps the generation), so the gate cannot miss.
	if dirtied {
		c.icGen++
		if c.Obs != nil {
			c.Obs.BlockInvalidations.Inc()
		}
	}
}

// FlushICache drops all cached decodes (fence.i semantics).
func (c *CPU) FlushICache() {
	for i := range c.icSlots {
		c.icSlots[i] = riscv.Inst{}
	}
	c.icOverflow = make(map[uint64]riscv.Inst)
	c.icLo, c.icHi = ^uint64(0), 0
	c.icGen++
	c.blkMap = make(map[uint64]*block)
	if c.Obs != nil {
		c.Obs.BlockInvalidations.Inc()
	}
}

func (c *CPU) fetch() (riscv.Inst, error) { return c.fetchAt(c.PC) }

func (c *CPU) fetchAt(pc uint64) (riscv.Inst, error) {
	inWindow := pc >= c.icBase && pc < c.icEnd
	if inWindow {
		if inst := c.icSlots[(pc-c.icBase)>>1]; inst.Len != 0 {
			return inst, nil
		}
	} else if inst, ok := c.icOverflow[pc]; ok {
		return inst, nil
	}
	// Raw fetches go through the fetch TLB: instruction parcels are 2-byte
	// aligned, so each halfword read stays within one page.
	var buf [4]byte
	lo, err := c.Mem.Fetch16(pc)
	if err != nil {
		return riscv.Inst{}, err
	}
	buf[0], buf[1] = byte(lo), byte(lo>>8)
	n := 2
	if buf[0]&3 == 3 {
		hi, err := c.Mem.Fetch16(pc + 2)
		if err != nil {
			return riscv.Inst{}, err
		}
		buf[2], buf[3] = byte(hi), byte(hi>>8)
		n = 4
	}
	inst, err := riscv.Decode(buf[:n], pc)
	if err != nil {
		return inst, err
	}
	if inWindow {
		c.icSlots[(pc-c.icBase)>>1] = inst
	} else {
		c.icOverflow[pc] = inst
	}
	if pc < c.icLo {
		c.icLo = pc
	}
	if pc+4 > c.icHi {
		c.icHi = pc + 4
	}
	return inst, nil
}

// stopNone is the internal "keep running" sentinel for dispatch helpers.
const stopNone StopReason = -1

// SetSampler arms (or, with period 0, disarms) the virtual-clock sample
// trigger: fn runs at the first instruction boundary at or after every
// period-th cycle of the sample clock, counted from the current clock.
// Because marks are laid on the deterministic virtual clock, two runs of
// the same program armed at the same state fire at bit-identical times.
// fn returning false defers the pending mark to the next boundary.
func (c *CPU) SetSampler(period uint64, fn func(c *CPU) bool) {
	c.SamplePeriod = period
	c.SampleFn = fn
	if period != 0 {
		c.sampleNext = c.SampleClock() + period
	}
}

// SampleClock is the clock samples are spaced on: the raw cycle counter,
// or the compensated (native-equivalent) counter when a DBI engine has
// counter virtualization installed — so sampling under dynamic translation
// fires at the virtual times the native run would.
func (c *CPU) SampleClock() uint64 {
	if dc := c.DBIComp; dc != nil && dc.Virtualize {
		return uint64(int64(c.Cycles) - dc.ExtraCycles)
	}
	return c.Cycles
}

// samplePoll fires the sampler for every mark the clock has passed. A
// deferred mark (SampleFn false) stays pending and re-polls at the next
// boundary; the fast-path gate in Run keeps dispatch on the slow path
// until it resolves, so the accepting boundary is engine-independent.
func (c *CPU) samplePoll() {
	for c.SampleClock() >= c.sampleNext {
		if !c.SampleFn(c) {
			return
		}
		c.sampleNext += c.SamplePeriod
	}
}

// SampleDrain consumes every pending sample mark without running SampleFn
// and returns how many there were. Tools call it after Run returns
// StopExit: the exit syscall retires without another loop-top poll, so
// marks the final instructions passed are drained here and attributed to
// the exit state — keeping sum(samples)*period within one period of the
// total clock, deterministically.
func (c *CPU) SampleDrain() int {
	if c.SamplePeriod == 0 {
		return 0
	}
	n := 0
	for c.SampleClock() >= c.sampleNext {
		n++
		c.sampleNext += c.SamplePeriod
	}
	return n
}

// Run executes until exit, breakpoint, trap, or maxInst instructions
// (0 = unlimited).
//
// Two dispatch engines sit behind Run. The superblock fast path executes
// whole pre-decoded straight-line blocks per dispatch (block.go), following
// cached block→block successor links so loop-heavy code never re-probes the
// block map; it is selected automatically whenever nothing needs
// per-instruction visibility. The per-instruction slow path is used when a
// Trace hook is installed (tools, oracle lockstep stepping), when
// SlowDispatch is set, or when the remaining instruction budget is smaller
// than the next block — so budget exhaustion stops at exactly the same
// instruction on both paths.
func (c *CPU) Run(maxInst uint64) StopReason {
	if c.Obs != nil {
		// Sync the hot-path counters into obs on return; the architectural
		// and plain-field counters are the single source of truth, so the
		// hot loop never touches an atomic.
		defer c.syncObs(c.Instret, c.chainHits, c.chainSevers, c.fuseCount, c.Mem.TLB,
			[5]uint64{c.traceBuilds, c.traceHits, c.tracePasses, c.traceSideExits, c.traceSevers})()
	}
	budget := maxInst
	// chained holds the next block resolved through the successor cache of
	// the block that just retired; nil means the next dispatch must go
	// through blockAt.
	var chained *block
	for {
		if c.Exited {
			return StopExit
		}
		if c.SamplePeriod != 0 && c.SampleClock() >= c.sampleNext {
			c.samplePoll()
		}
		if maxInst != 0 && budget == 0 {
			return StopMaxInst
		}
		if c.Trace == nil && !c.SlowDispatch {
			b := chained
			chained = nil
			if b == nil {
				b = c.blockAt(c.PC)
			}
			if b != nil && !c.NoTrace {
				if t := b.trc; t != nil {
					if t.gen != c.icGen {
						b.trc = nil
						c.traceSevers++
					} else if (maxInst == 0 || budget >= t.passN) &&
						(c.SamplePeriod == 0 || c.SampleClock()+t.maxCost < c.sampleNext) {
						// Trace tier: the whole flattened chain in one
						// dispatch, gated exactly like a block — the budget
						// covers a full pass and even the worst-case pass
						// cannot cross the pending sample mark.
						retired, stop := c.runTrace(t, budget, maxInst != 0)
						if stop != stopNone {
							return stop
						}
						budget -= retired
						if c.watchHit {
							c.watchHit = false
							return StopCodeWrite
						}
						continue
					}
				}
			}
			if b != nil && (maxInst == 0 || budget >= b.n) &&
				(c.SamplePeriod == 0 || c.SampleClock()+b.maxCost < c.sampleNext) {
				retired, stop := c.runBlock(b)
				if stop != stopNone {
					return stop
				}
				budget -= retired
				if c.watchHit {
					// A watched store that also invalidated code (or split a
					// fused pair) came back through a stopNone retire-prefix
					// path; surface it here with the PC already past the
					// store.
					c.watchHit = false
					return StopCodeWrite
				}
				chained = c.chainNext(b)
				continue
			}
		}
		budget--
		if r := c.stepOne(); r != stopNone {
			return r
		}
	}
}

// syncObs snapshots the hot-path counters at Run entry and returns the
// deferred function that publishes the deltas to the obs registry.
func (c *CPU) syncObs(instret, chainHits, chainSevers uint64,
	fuse [numFuseKinds]uint64, tlb TLBStats, tr [5]uint64) func() {
	return func() {
		m := c.Obs
		m.Instructions.Add(c.Instret - instret)
		m.ChainHits.Add(c.chainHits - chainHits)
		m.ChainSevers.Add(c.chainSevers - chainSevers)
		m.TraceBuilds.Add(c.traceBuilds - tr[0])
		m.TraceHits.Add(c.traceHits - tr[1])
		m.TracePasses.Add(c.tracePasses - tr[2])
		m.TraceSideExits.Add(c.traceSideExits - tr[3])
		m.TraceSevers.Add(c.traceSevers - tr[4])
		for k := 0; k < numFuseKinds; k++ {
			m.Fused[k].Add(c.fuseCount[k] - fuse[k])
		}
		t := &c.Mem.TLB
		m.TLBReadHits.Add(t.ReadHits - tlb.ReadHits)
		m.TLBReadMisses.Add(t.ReadMisses - tlb.ReadMisses)
		m.TLBWriteHits.Add(t.WriteHits - tlb.WriteHits)
		m.TLBWriteMisses.Add(t.WriteMisses - tlb.WriteMisses)
		m.TLBFetchHits.Add(t.FetchHits - tlb.FetchHits)
		m.TLBFetchMisses.Add(t.FetchMisses - tlb.FetchMisses)
	}
}

// stepOne fetches, traces, and executes a single instruction — the
// per-instruction slow path. It returns stopNone to keep running.
func (c *CPU) stepOne() StopReason {
	inst, err := c.fetch()
	if err != nil {
		c.lastTrap = &Trap{PC: c.PC, Why: "fetch", Wrap: err}
		return StopTrap
	}
	if c.Trace != nil {
		c.Trace(c, inst)
	}
	if inst.Mn == riscv.MnEBREAK {
		return StopBreakpoint
	}
	if stop, err := c.exec(inst); err != nil {
		c.lastTrap = &Trap{PC: c.PC, Why: "execute " + inst.String(), Wrap: err}
		return StopTrap
	} else if stop {
		return StopExit
	}
	if c.watchHit {
		c.watchHit = false
		return StopCodeWrite
	}
	return stopNone
}

// Step executes exactly one instruction (used by the software single-step
// fallback in ProcControl when it steps off a breakpoint).
func (c *CPU) Step() StopReason {
	return c.Run(1)
}

func (c *CPU) setX(r riscv.Reg, v uint64) {
	if r != riscv.X0 {
		c.X[r] = v
	}
}

// exec executes one non-ebreak instruction. It returns stop=true when the
// program exited via syscall. Control transfer and system instructions are
// handled here; everything straight-line is in execStraight so the
// superblock engine can reuse it (block.go).
func (c *CPU) exec(inst riscv.Inst) (stop bool, err error) {
	cost := c.Model.Cost(inst.Mn)
	next := inst.Next()
	rs1 := c.X[inst.Rs1&31]
	rs2 := c.X[inst.Rs2&31]

	switch inst.Mn {
	// ----- control transfer -----
	case riscv.MnJAL:
		c.setX(inst.Rd, next)
		next = inst.Addr + uint64(inst.Imm)
	case riscv.MnJALR:
		t := (rs1 + uint64(inst.Imm)) &^ 1
		c.setX(inst.Rd, next)
		next = t
	case riscv.MnDBIJT:
		// Inline-lookup transfer (xdbi): jump to the translated cache
		// address the stub stashed in scratch CSR 0x7C3, applying the
		// stub's compensation delta. Only valid inside a DBI code cache.
		dc := c.DBIComp
		if dc == nil {
			return false, fmt.Errorf("emu: dbi.jt outside DBI-attached CPU at %#x", inst.Addr)
		}
		if !dc.apply(inst.Imm + 2048) {
			return false, fmt.Errorf("emu: dbi.jt with unallocated delta %d at %#x", inst.Imm, inst.Addr)
		}
		if dc.Deltas[inst.Imm+2048].JT == DBIJTIBC {
			dc.IBCHits++
		} else {
			dc.IBLHits++
		}
		// The rd/rs1 fields carry the site's inline-cache slot index (the
		// registers themselves are dead here — the stub restored the guest
		// set before the dbi.jt); tagged sites feed the target profile.
		if site := uint16(inst.Rd&31) | uint16(inst.Rs1&31)<<5; site != 0 {
			dc.JTProf[dc.JTProfN%JTProfSize] = JTSample{Site: site, Cache: dc.Scratch[3]}
			dc.JTProfN++
		}
		next = dc.Scratch[3]
	case riscv.MnBEQ:
		if rs1 == rs2 {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}
	case riscv.MnBNE:
		if rs1 != rs2 {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}
	case riscv.MnBLT:
		if int64(rs1) < int64(rs2) {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}
	case riscv.MnBGE:
		if int64(rs1) >= int64(rs2) {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}
	case riscv.MnBLTU:
		if rs1 < rs2 {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}
	case riscv.MnBGEU:
		if rs1 >= rs2 {
			next = inst.Addr + uint64(inst.Imm)
			cost += c.Model.BranchTakenPenalty
		}

	// ----- system -----
	case riscv.MnFENCEI:
		c.FlushICache()
	case riscv.MnECALL:
		exited, e := c.syscall()
		if e != nil {
			return false, e
		}
		if exited {
			c.PC = next
			c.Cycles += cost
			c.Instret++
			return true, nil
		}
	case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		if e := c.csrOp(inst); e != nil {
			return false, e
		}

	default:
		if e := c.execStraight(&inst); e != nil {
			return false, e
		}
	}

	c.PC = next
	c.Cycles += cost
	c.Instret++
	return false, nil
}

// execStraight executes one straight-line (non-control-flow, non-system)
// instruction: only register and memory state change, never the PC or the
// counters. Both dispatch engines funnel through it — the slow path via
// exec's default case, the superblock fast path as the generic body
// handler for mnemonics without a dedicated one.
func (c *CPU) execStraight(inst *riscv.Inst) error {
	mn := inst.Mn
	rs1 := c.X[inst.Rs1&31]
	rs2 := c.X[inst.Rs2&31]

	switch mn {
	// ----- Xdbi (DBI code-cache internals) -----
	case riscv.MnDBIACC:
		dc := c.DBIComp
		if dc == nil {
			return fmt.Errorf("emu: dbi.acc outside DBI-attached CPU at %#x", inst.Addr)
		}
		if !dc.apply(inst.Imm + 2048) {
			return fmt.Errorf("emu: dbi.acc with unallocated delta %d at %#x", inst.Imm, inst.Addr)
		}

	// ----- RV64I integer computation -----
	case riscv.MnLUI:
		c.setX(inst.Rd, uint64(inst.Imm<<12))
	case riscv.MnAUIPC:
		c.setX(inst.Rd, inst.Addr+uint64(inst.Imm<<12))
	case riscv.MnADDI:
		c.setX(inst.Rd, rs1+uint64(inst.Imm))
	case riscv.MnSLTI:
		c.setX(inst.Rd, b2u(int64(rs1) < inst.Imm))
	case riscv.MnSLTIU:
		c.setX(inst.Rd, b2u(rs1 < uint64(inst.Imm)))
	case riscv.MnXORI:
		c.setX(inst.Rd, rs1^uint64(inst.Imm))
	case riscv.MnORI:
		c.setX(inst.Rd, rs1|uint64(inst.Imm))
	case riscv.MnANDI:
		c.setX(inst.Rd, rs1&uint64(inst.Imm))
	case riscv.MnSLLI:
		c.setX(inst.Rd, rs1<<uint(inst.Imm))
	case riscv.MnSRLI:
		c.setX(inst.Rd, rs1>>uint(inst.Imm))
	case riscv.MnSRAI:
		c.setX(inst.Rd, uint64(int64(rs1)>>uint(inst.Imm)))
	case riscv.MnADD:
		c.setX(inst.Rd, rs1+rs2)
	case riscv.MnSUB:
		c.setX(inst.Rd, rs1-rs2)
	case riscv.MnSLL:
		c.setX(inst.Rd, rs1<<(rs2&63))
	case riscv.MnSLT:
		c.setX(inst.Rd, b2u(int64(rs1) < int64(rs2)))
	case riscv.MnSLTU:
		c.setX(inst.Rd, b2u(rs1 < rs2))
	case riscv.MnXOR:
		c.setX(inst.Rd, rs1^rs2)
	case riscv.MnSRL:
		c.setX(inst.Rd, rs1>>(rs2&63))
	case riscv.MnSRA:
		c.setX(inst.Rd, uint64(int64(rs1)>>(rs2&63)))
	case riscv.MnOR:
		c.setX(inst.Rd, rs1|rs2)
	case riscv.MnAND:
		c.setX(inst.Rd, rs1&rs2)
	case riscv.MnADDIW:
		c.setX(inst.Rd, sext32(uint32(rs1)+uint32(inst.Imm)))
	case riscv.MnSLLIW:
		c.setX(inst.Rd, sext32(uint32(rs1)<<uint(inst.Imm)))
	case riscv.MnSRLIW:
		c.setX(inst.Rd, sext32(uint32(rs1)>>uint(inst.Imm)))
	case riscv.MnSRAIW:
		c.setX(inst.Rd, uint64(int64(int32(rs1)>>uint(inst.Imm))))
	case riscv.MnADDW:
		c.setX(inst.Rd, sext32(uint32(rs1)+uint32(rs2)))
	case riscv.MnSUBW:
		c.setX(inst.Rd, sext32(uint32(rs1)-uint32(rs2)))
	case riscv.MnSLLW:
		c.setX(inst.Rd, sext32(uint32(rs1)<<(rs2&31)))
	case riscv.MnSRLW:
		c.setX(inst.Rd, sext32(uint32(rs1)>>(rs2&31)))
	case riscv.MnSRAW:
		c.setX(inst.Rd, uint64(int64(int32(rs1)>>(rs2&31))))

	// ----- loads and stores -----
	case riscv.MnLB:
		v, e := c.Mem.Read8(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, uint64(int64(int8(v))))
	case riscv.MnLH:
		v, e := c.Mem.Read16(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, uint64(int64(int16(v))))
	case riscv.MnLW:
		v, e := c.Mem.Read32(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, sext32(v))
	case riscv.MnLD:
		v, e := c.Mem.Read64(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, v)
	case riscv.MnLBU:
		v, e := c.Mem.Read8(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, uint64(v))
	case riscv.MnLHU:
		v, e := c.Mem.Read16(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, uint64(v))
	case riscv.MnLWU:
		v, e := c.Mem.Read32(rs1 + uint64(inst.Imm))
		if e != nil {
			return e
		}
		c.setX(inst.Rd, uint64(v))
	case riscv.MnSB:
		if e := c.storeCheck(rs1+uint64(inst.Imm), 1, c.Mem.Write8(rs1+uint64(inst.Imm), uint8(rs2))); e != nil {
			return e
		}
	case riscv.MnSH:
		if e := c.storeCheck(rs1+uint64(inst.Imm), 2, c.Mem.Write16(rs1+uint64(inst.Imm), uint16(rs2))); e != nil {
			return e
		}
	case riscv.MnSW:
		if e := c.storeCheck(rs1+uint64(inst.Imm), 4, c.Mem.Write32(rs1+uint64(inst.Imm), uint32(rs2))); e != nil {
			return e
		}
	case riscv.MnSD:
		if e := c.storeCheck(rs1+uint64(inst.Imm), 8, c.Mem.Write64(rs1+uint64(inst.Imm), rs2)); e != nil {
			return e
		}

	// ----- M extension -----
	case riscv.MnMUL:
		c.setX(inst.Rd, rs1*rs2)
	case riscv.MnMULH:
		hi, _ := mulh64(int64(rs1), int64(rs2))
		c.setX(inst.Rd, uint64(hi))
	case riscv.MnMULHU:
		hi, _ := bits.Mul64(rs1, rs2)
		c.setX(inst.Rd, hi)
	case riscv.MnMULHSU:
		c.setX(inst.Rd, mulhsu64(int64(rs1), rs2))
	case riscv.MnDIV:
		c.setX(inst.Rd, uint64(sdiv64(int64(rs1), int64(rs2))))
	case riscv.MnDIVU:
		if rs2 == 0 {
			c.setX(inst.Rd, ^uint64(0))
		} else {
			c.setX(inst.Rd, rs1/rs2)
		}
	case riscv.MnREM:
		c.setX(inst.Rd, uint64(srem64(int64(rs1), int64(rs2))))
	case riscv.MnREMU:
		if rs2 == 0 {
			c.setX(inst.Rd, rs1)
		} else {
			c.setX(inst.Rd, rs1%rs2)
		}
	case riscv.MnMULW:
		c.setX(inst.Rd, sext32(uint32(rs1)*uint32(rs2)))
	case riscv.MnDIVW:
		c.setX(inst.Rd, uint64(int64(sdiv32(int32(rs1), int32(rs2)))))
	case riscv.MnDIVUW:
		if uint32(rs2) == 0 {
			c.setX(inst.Rd, ^uint64(0))
		} else {
			c.setX(inst.Rd, sext32(uint32(rs1)/uint32(rs2)))
		}
	case riscv.MnREMW:
		c.setX(inst.Rd, uint64(int64(srem32(int32(rs1), int32(rs2)))))
	case riscv.MnREMUW:
		if uint32(rs2) == 0 {
			c.setX(inst.Rd, sext32(uint32(rs1)))
		} else {
			c.setX(inst.Rd, sext32(uint32(rs1)%uint32(rs2)))
		}

	// ----- A extension -----
	case riscv.MnLRW:
		v, e := c.Mem.Read32(rs1)
		if e != nil {
			return e
		}
		c.resValid, c.resAddr = true, rs1
		c.setX(inst.Rd, sext32(v))
	case riscv.MnLRD:
		v, e := c.Mem.Read64(rs1)
		if e != nil {
			return e
		}
		c.resValid, c.resAddr = true, rs1
		c.setX(inst.Rd, v)
	case riscv.MnSCW:
		if c.resValid && c.resAddr == rs1 {
			if e := c.storeCheck(rs1, 4, c.Mem.Write32(rs1, uint32(rs2))); e != nil {
				return e
			}
			c.setX(inst.Rd, 0)
		} else {
			c.setX(inst.Rd, 1)
		}
		c.resValid = false
	case riscv.MnSCD:
		if c.resValid && c.resAddr == rs1 {
			if e := c.storeCheck(rs1, 8, c.Mem.Write64(rs1, rs2)); e != nil {
				return e
			}
			c.setX(inst.Rd, 0)
		} else {
			c.setX(inst.Rd, 1)
		}
		c.resValid = false
	case riscv.MnAMOSWAPW, riscv.MnAMOADDW, riscv.MnAMOXORW, riscv.MnAMOANDW,
		riscv.MnAMOORW, riscv.MnAMOMINW, riscv.MnAMOMAXW, riscv.MnAMOMINUW, riscv.MnAMOMAXUW:
		old, e := c.Mem.Read32(rs1)
		if e != nil {
			return e
		}
		nv := amo32(mn, old, uint32(rs2))
		if e := c.storeCheck(rs1, 4, c.Mem.Write32(rs1, nv)); e != nil {
			return e
		}
		c.setX(inst.Rd, sext32(old))
	case riscv.MnAMOSWAPD, riscv.MnAMOADDD, riscv.MnAMOXORD, riscv.MnAMOANDD,
		riscv.MnAMOORD, riscv.MnAMOMIND, riscv.MnAMOMAXD, riscv.MnAMOMINUD, riscv.MnAMOMAXUD:
		old, e := c.Mem.Read64(rs1)
		if e != nil {
			return e
		}
		nv := amo64(mn, old, rs2)
		if e := c.storeCheck(rs1, 8, c.Mem.Write64(rs1, nv)); e != nil {
			return e
		}
		c.setX(inst.Rd, old)

	// ----- fences -----
	case riscv.MnFENCE:
		// no-op: the emulator is sequentially consistent

	default:
		if c.execExt(*inst, rs1, rs2) {
			break
		}
		// Floating point (F and D extensions) in float.go.
		handled, e := c.execFloat(*inst)
		if e != nil {
			return e
		}
		if !handled {
			return fmt.Errorf("emu: unimplemented instruction %v", inst)
		}
	}

	return nil
}

// storeCheck funnels store errors and keeps the icache coherent for stores
// into cached code (self-modifying code still works, at a small cost).
func (c *CPU) storeCheck(addr uint64, width uint64, err error) error {
	if err != nil {
		return err
	}
	if addr < c.icHi && addr+width > c.icLo {
		c.invalidate(addr, width)
	}
	if addr < c.watchHi && addr+width > c.watchLo {
		if c.watchHit {
			// A fused store pair can trip twice before dispatch notices;
			// widen the recorded span to cover both stores.
			lo, hi := c.watchAddr, c.watchAddr+c.watchLen
			if addr < lo {
				lo = addr
			}
			if addr+width > hi {
				hi = addr + width
			}
			c.watchAddr, c.watchLen = lo, hi-lo
		} else {
			c.watchHit = true
			c.watchAddr, c.watchLen = addr, width
		}
	}
	return nil
}

// SetCodeWatch arms (or, with lo == hi == 0, disarms) the code-write watch
// range. A guest store overlapping [lo, hi) retires normally and then stops
// Run with StopCodeWrite; CodeWrite reports the span. Debugger-path writes
// (WriteMem) do not trip the watch — only guest stores do.
func (c *CPU) SetCodeWatch(lo, hi uint64) {
	c.watchLo, c.watchHi = lo, hi
	c.watchHit = false
}

// CodeWatch returns the armed code-write watch range.
func (c *CPU) CodeWatch() (lo, hi uint64) { return c.watchLo, c.watchHi }

// CodeWrite returns the address span of the store that caused the most
// recent StopCodeWrite.
func (c *CPU) CodeWrite() (addr, n uint64) { return c.watchAddr, c.watchLen }

func (c *CPU) csrOp(inst riscv.Inst) error {
	csr := inst.CSR
	var old uint64
	switch csr {
	case 0xC00: // cycle
		old = c.Cycles
		if dc := c.DBIComp; dc != nil && dc.Virtualize {
			old = uint64(int64(c.Cycles) - dc.ExtraCycles)
		}
		if c.CounterFn != nil {
			old = c.CounterFn(csr)
		}
	case 0xC01: // time
		old = c.VirtualNanos()
	case 0xC02: // instret
		old = c.Instret
		if dc := c.DBIComp; dc != nil && dc.Virtualize {
			old = uint64(int64(c.Instret) - dc.ExtraInstret)
		}
		if c.CounterFn != nil {
			old = c.CounterFn(csr)
		}
	case 0x7C0, 0x7C1, 0x7C2, 0x7C3: // DBI scratch (custom read/write)
		if c.DBIComp == nil {
			return fmt.Errorf("emu: access to unimplemented CSR %#x", csr)
		}
		old = c.DBIComp.Scratch[csr-0x7C0]
	case 0x001: // fflags
		old = uint64(c.FCSR & 0x1f)
	case 0x002: // frm
		old = uint64(c.FCSR >> 5 & 7)
	case 0x003: // fcsr
		old = uint64(c.FCSR & 0xff)
	default:
		return fmt.Errorf("emu: access to unimplemented CSR %#x", csr)
	}
	var src uint64
	switch inst.Mn {
	case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC:
		src = c.X[inst.Rs1&31]
	default:
		src = uint64(inst.Imm)
	}
	var nv uint64
	write := true
	switch inst.Mn {
	case riscv.MnCSRRW, riscv.MnCSRRWI:
		nv = src
	case riscv.MnCSRRS, riscv.MnCSRRSI:
		nv = old | src
		write = src != 0
	case riscv.MnCSRRC, riscv.MnCSRRCI:
		nv = old &^ src
		write = src != 0
	}
	if write {
		switch csr {
		case 0x001:
			c.FCSR = c.FCSR&^0x1f | uint32(nv)&0x1f
		case 0x002:
			c.FCSR = c.FCSR&^0xe0 | uint32(nv&7)<<5
		case 0x003:
			c.FCSR = uint32(nv) & 0xff
		case 0xC00, 0xC01, 0xC02:
			// counters are read-only; writes are ignored
		case 0x7C0, 0x7C1, 0x7C2, 0x7C3:
			c.DBIComp.Scratch[csr-0x7C0] = nv
		}
	}
	c.setX(inst.Rd, old)
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func mulh64(a, b int64) (hi int64, lo uint64) {
	h, l := bits.Mul64(uint64(a), uint64(b))
	if a < 0 {
		h -= uint64(b)
	}
	if b < 0 {
		h -= uint64(a)
	}
	return int64(h), l
}

func mulhsu64(a int64, b uint64) uint64 {
	h, _ := bits.Mul64(uint64(a), b)
	if a < 0 {
		h -= b
	}
	return h
}

func sdiv64(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == -1<<63 && b == -1:
		return a
	}
	return a / b
}

func srem64(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == -1<<63 && b == -1:
		return 0
	}
	return a % b
}

func sdiv32(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == -1<<31 && b == -1:
		return a
	}
	return a / b
}

func srem32(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == -1<<31 && b == -1:
		return 0
	}
	return a % b
}

func amo32(mn riscv.Mnemonic, old, src uint32) uint32 {
	switch mn {
	case riscv.MnAMOSWAPW:
		return src
	case riscv.MnAMOADDW:
		return old + src
	case riscv.MnAMOXORW:
		return old ^ src
	case riscv.MnAMOANDW:
		return old & src
	case riscv.MnAMOORW:
		return old | src
	case riscv.MnAMOMINW:
		if int32(src) < int32(old) {
			return src
		}
		return old
	case riscv.MnAMOMAXW:
		if int32(src) > int32(old) {
			return src
		}
		return old
	case riscv.MnAMOMINUW:
		if src < old {
			return src
		}
		return old
	case riscv.MnAMOMAXUW:
		if src > old {
			return src
		}
		return old
	}
	return old
}

func amo64(mn riscv.Mnemonic, old, src uint64) uint64 {
	switch mn {
	case riscv.MnAMOSWAPD:
		return src
	case riscv.MnAMOADDD:
		return old + src
	case riscv.MnAMOXORD:
		return old ^ src
	case riscv.MnAMOANDD:
		return old & src
	case riscv.MnAMOORD:
		return old | src
	case riscv.MnAMOMIND:
		if int64(src) < int64(old) {
			return src
		}
		return old
	case riscv.MnAMOMAXD:
		if int64(src) > int64(old) {
			return src
		}
		return old
	case riscv.MnAMOMINUD:
		if src < old {
			return src
		}
		return old
	case riscv.MnAMOMAXUD:
		if src > old {
			return src
		}
		return old
	}
	return old
}
