package emu

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
)

// TestCounterCSRs: the user-level counters (cycle/time/instret) must be
// readable from guest code and consistent with the host-side accounting —
// these CSRs are how profiling tools read the "hardware" counters.
func TestCounterCSRs(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	rdcycle s0
	rdinstret s1
	rdtime s2
	li t0, 100
burn:
	addi t0, t0, -1
	bnez t0, burn
	rdcycle s3
	rdinstret s4
	rdtime s5
	ebreak
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	cyc0, cyc1 := c.X[riscv.RegS0], c.X[riscv.RegS3]
	ins0, ins1 := c.X[riscv.RegS1], c.X[riscv.RegS4]
	tm0, tm1 := c.X[riscv.RegS2], c.X[riscv.RegS5]
	if cyc1 <= cyc0 {
		t.Errorf("cycle did not advance: %d -> %d", cyc0, cyc1)
	}
	if ins1 <= ins0 {
		t.Errorf("instret did not advance: %d -> %d", ins0, ins1)
	}
	if tm1 < tm0 {
		t.Errorf("time went backward: %d -> %d", tm0, tm1)
	}
	// The loop retires ~201 instructions between the reads.
	if d := ins1 - ins0; d < 200 || d > 210 {
		t.Errorf("instret delta = %d, want ~202", d)
	}
	// Final host-side counters must dominate guest readings.
	if c.Instret < ins1 || c.Cycles < cyc1 {
		t.Error("host counters behind guest CSR readings")
	}
}

// TestFCSRAccess: rounding-mode and flag fields of fcsr are readable and
// writable, and float ops raise NV into fflags.
func TestFCSRAccess(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	# set frm = RTZ (1)
	li t0, 1
	csrrw x0, frm, t0
	csrrs s0, frm, x0
	# provoke NV: convert NaN to integer
	fcvt.d.l ft0, zero
	fdiv.d ft1, ft0, ft0   # 0/0 = NaN
	fcvt.l.d t1, ft1
	csrrs s1, fflags, x0
	ebreak
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	if c.X[riscv.RegS0] != 1 {
		t.Errorf("frm readback = %d, want 1", c.X[riscv.RegS0])
	}
	if c.X[riscv.RegS1]&0x10 == 0 {
		t.Errorf("fflags = %#x, NV not raised by NaN conversion", c.X[riscv.RegS1])
	}
}

// TestUnknownCSRTraps: accessing an unimplemented CSR is a trap, not a
// silent zero.
func TestUnknownCSRTraps(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	csrrs t0, 0x7c0, x0
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopTrap {
		t.Fatalf("stopped: %v, want trap", r)
	}
}
