package emu

import (
	"math"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
)

func runToBreak(t *testing.T, src string) *CPU {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(1_000_000); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	return c
}

// TestSinglePrecisionOps exercises the F extension end to end, including
// NaN boxing: single results read back through fmv.x.w, and the boxed
// upper bits are all ones.
func TestSinglePrecisionOps(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	li t0, 7
	fcvt.s.l ft0, t0      # 7.0f
	li t0, 2
	fcvt.s.l ft1, t0      # 2.0f
	fadd.s ft2, ft0, ft1  # 9.0f
	fsub.s ft3, ft0, ft1  # 5.0f
	fmul.s ft4, ft0, ft1  # 14.0f
	fdiv.s ft5, ft0, ft1  # 3.5f
	fsqrt.s ft6, ft1      # sqrt(2)f
	fmadd.s ft7, ft0, ft1, ft1   # 16.0f
	fmin.s fs0, ft0, ft1  # 2.0f
	fmax.s fs1, ft0, ft1  # 7.0f
	fsgnjn.s fs2, ft0, ft0 # -7.0f
	feq.s s0, ft0, ft0    # 1
	flt.s s1, ft1, ft0    # 1
	fle.s s2, ft0, ft1    # 0
	fclass.s s3, fs2      # negative normal: bit 1
	fcvt.l.s s4, ft5      # 4 (3.5 RNE -> 4)
	fcvt.wu.s s5, ft4     # 14
	fmv.x.w s6, ft2       # raw bits of 9.0f
	fcvt.d.s fs3, ft5     # widen 3.5
	fcvt.l.d s7, fs3
	ebreak
`)
	readS := func(r riscv.Reg) float32 {
		return math.Float32frombits(uint32(c.F[r.Num()]))
	}
	checks := []struct {
		reg  riscv.Reg
		want float32
	}{
		{riscv.F2, 9}, {riscv.F3, 5}, {riscv.F4, 14}, {riscv.F5, 3.5},
		{riscv.F7, 16}, {riscv.F8, 2}, {riscv.F9, 7}, {riscv.F18, -7},
	}
	for _, ck := range checks {
		if got := readS(ck.reg); got != ck.want {
			t.Errorf("f%d = %v, want %v", ck.reg.Num(), got, ck.want)
		}
	}
	if got := readS(riscv.F6); math.Abs(float64(got)-math.Sqrt2) > 1e-6 {
		t.Errorf("fsqrt.s = %v", got)
	}
	// NaN boxing: upper 32 bits of a single result are all ones.
	if c.F[2]>>32 != 0xffffffff {
		t.Errorf("fadd.s result not NaN-boxed: %#x", c.F[2])
	}
	if c.X[riscv.RegS0] != 1 || c.X[riscv.RegS1] != 1 || c.X[riscv.RegS2] != 0 {
		t.Errorf("compares = %d %d %d", c.X[riscv.RegS0], c.X[riscv.RegS1], c.X[riscv.RegS2])
	}
	if c.X[riscv.RegS3] != 1<<1 {
		t.Errorf("fclass.s(-7) = %#x", c.X[riscv.RegS3])
	}
	if c.X[riscv.RegS4] != 4 {
		t.Errorf("fcvt.l.s(3.5) = %d", c.X[riscv.RegS4])
	}
	if c.X[riscv.RegS5] != 14 {
		t.Errorf("fcvt.wu.s(14) = %d", c.X[riscv.RegS5])
	}
	if uint32(c.X[riscv.RegS6]) != math.Float32bits(9) {
		t.Errorf("fmv.x.w = %#x", c.X[riscv.RegS6])
	}
	if c.X[riscv.RegS7] != 4 {
		t.Errorf("widened 3.5 converts to %d", c.X[riscv.RegS7])
	}
}

// TestFClassSweep drives fclass.d across every class bucket.
func TestFClassSweep(t *testing.T) {
	c := runToBreak(t, `
	.data
vals:
	.dword 0xfff0000000000000   # -inf          -> bit 0
	.dword 0xc000000000000000   # -2.0          -> bit 1
	.dword 0x8000000000000001   # -subnormal    -> bit 2
	.dword 0x8000000000000000   # -0.0          -> bit 3
	.dword 0x0000000000000000   # +0.0          -> bit 4
	.dword 0x0000000000000001   # +subnormal    -> bit 5
	.dword 0x4000000000000000   # +2.0          -> bit 6
	.dword 0x7ff0000000000000   # +inf          -> bit 7
	.dword 0x7ff0000000000001   # signaling NaN -> bit 8
	.dword 0x7ff8000000000000   # quiet NaN     -> bit 9
	.bss
out:
	.zero 80
	.text
_start:
	la t0, vals
	la t1, out
	li t2, 0
fc_loop:
	slli t3, t2, 3
	add t4, t0, t3
	fld ft0, 0(t4)
	fclass.d t5, ft0
	add t4, t1, t3
	sd t5, 0(t4)
	addi t2, t2, 1
	li t6, 10
	blt t2, t6, fc_loop
	ebreak
`)
	outSym := uint64(0)
	// Locate the out symbol by scanning memory starting where we wrote.
	// Simpler: recompute via the ELF symbols is unavailable here; read via
	// the la target is fine — re-fetch from register t1.
	outSym = c.X[riscv.RegT1]
	for i := 0; i < 10; i++ {
		v, err := c.Mem.Read64(outSym + uint64(i*8))
		if err != nil {
			t.Fatal(err)
		}
		if v != 1<<uint(i) {
			t.Errorf("fclass bucket %d = %#x, want %#x", i, v, 1<<uint(i))
		}
	}
}

// TestFloatSaturatingConversions: NaN and out-of-range values clamp per
// the ISA and raise NV.
func TestFloatSaturatingConversions(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	# NaN -> max int
	fcvt.d.l ft0, zero
	fdiv.d ft0, ft0, ft0
	fcvt.w.d s0, ft0
	fcvt.wu.d s1, ft0
	fcvt.l.d s2, ft0
	fcvt.lu.d s3, ft0
	# -1.0 -> unsigned clamps to 0
	li t0, -1
	fcvt.d.l ft1, t0
	fcvt.lu.d s4, ft1
	fcvt.wu.d s5, ft1
	# 1e300 -> int64 clamps to max
	li t0, 1
	fcvt.d.l ft2, t0
	li t1, 1000
fsc_loop:
	fadd.d ft2, ft2, ft2
	addi t1, t1, -1
	bnez t1, fsc_loop     # 2^1000: way beyond int64
	fcvt.l.d s6, ft2
	ebreak
`)
	if int32(c.X[riscv.RegS0]) != math.MaxInt32 {
		t.Errorf("fcvt.w.d(NaN) = %d", int32(c.X[riscv.RegS0]))
	}
	if uint32(c.X[riscv.RegS1]) != math.MaxUint32 {
		t.Errorf("fcvt.wu.d(NaN) = %#x", c.X[riscv.RegS1])
	}
	if int64(c.X[riscv.RegS2]) != math.MaxInt64 {
		t.Errorf("fcvt.l.d(NaN) = %d", int64(c.X[riscv.RegS2]))
	}
	if c.X[riscv.RegS3] != math.MaxUint64 {
		t.Errorf("fcvt.lu.d(NaN) = %#x", c.X[riscv.RegS3])
	}
	if c.X[riscv.RegS4] != 0 || uint32(c.X[riscv.RegS5]) != 0 {
		t.Errorf("fcvt.{lu,wu}.d(-1) = %d, %d; want 0, 0", c.X[riscv.RegS4], c.X[riscv.RegS5])
	}
	if int64(c.X[riscv.RegS6]) != math.MaxInt64 {
		t.Errorf("fcvt.l.d(2^1000) = %d", int64(c.X[riscv.RegS6]))
	}
	if c.FCSR&0x10 == 0 {
		t.Error("NV flag not raised by saturating conversions")
	}
}

// TestFMVRoundTrips: bit-pattern moves between the register files.
func TestFMVRoundTrips(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	li t0, 0x7ff8000000000001
	fmv.d.x ft0, t0
	fmv.x.d s0, ft0
	li t1, 0x3fc00000          # 1.5f bits
	fmv.w.x ft1, t1
	fmv.x.w s1, ft1
	ebreak
`)
	if c.X[riscv.RegS0] != 0x7ff8000000000001 {
		t.Errorf("fmv.d round trip = %#x", c.X[riscv.RegS0])
	}
	if uint32(c.X[riscv.RegS1]) != 0x3fc00000 {
		t.Errorf("fmv.w round trip = %#x", c.X[riscv.RegS1])
	}
	// fmv.x.w sign-extends bit 31; 0x3fc00000 is positive so upper is 0.
	if c.X[riscv.RegS1]>>32 != 0 {
		t.Errorf("fmv.x.w upper bits = %#x", c.X[riscv.RegS1])
	}
}
