package emu

import (
	"bytes"
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

// runBoth executes the same binary on the fused-dispatch fast path and on
// the per-instruction slow path, requiring both to stop the same way, and
// returns the two CPUs for state comparison.
func runBoth(t *testing.T, src string, opts asm.Options) (fast, slow *CPU) {
	t.Helper()
	f, err := asm.Assemble(src, opts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err = New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow, err = New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	var fastOut, slowOut bytes.Buffer
	fast.Stdout, slow.Stdout = &fastOut, &slowOut
	rf := fast.Run(0)
	rs := slow.Run(0)
	if rf != rs {
		t.Fatalf("stop reason: fast %v, slow %v (fast trap %v, slow trap %v)",
			rf, rs, fast.LastTrap(), slow.LastTrap())
	}
	if fastOut.String() != slowOut.String() {
		t.Errorf("stdout differs: fast %q, slow %q", fastOut.String(), slowOut.String())
	}
	return fast, slow
}

// requireSameState asserts the architectural state the ISSUE cares about —
// cycle count, retired instructions, every register, FP state, PC, exit
// status — is bit-identical between the two dispatch paths.
func requireSameState(t *testing.T, fast, slow *CPU) {
	t.Helper()
	if fast.Cycles != slow.Cycles {
		t.Errorf("Cycles: fast %d, slow %d", fast.Cycles, slow.Cycles)
	}
	if fast.Instret != slow.Instret {
		t.Errorf("Instret: fast %d, slow %d", fast.Instret, slow.Instret)
	}
	if fast.PC != slow.PC {
		t.Errorf("PC: fast %#x, slow %#x", fast.PC, slow.PC)
	}
	if fast.FCSR != slow.FCSR {
		t.Errorf("FCSR: fast %#x, slow %#x", fast.FCSR, slow.FCSR)
	}
	if fast.Exited != slow.Exited || fast.ExitCode != slow.ExitCode {
		t.Errorf("exit: fast (%v, %d), slow (%v, %d)",
			fast.Exited, fast.ExitCode, slow.Exited, slow.ExitCode)
	}
	for i := range fast.X {
		if fast.X[i] != slow.X[i] {
			t.Errorf("x%d: fast %#x, slow %#x", i, fast.X[i], slow.X[i])
		}
	}
	for i := range fast.F {
		if fast.F[i] != slow.F[i] {
			t.Errorf("f%d: fast %#x, slow %#x", i, fast.F[i], slow.F[i])
		}
	}
}

// TestFastSlowEquivalenceMatmul: the fused-dispatch engine must produce the
// exact architectural state — including the cost-model counters the virtual
// clock derives from — that per-instruction stepping produces on the
// paper's matmul workload.
func TestFastSlowEquivalenceMatmul(t *testing.T) {
	fast, slow := runBoth(t, workload.MatmulSource(12, 2), asm.Options{})
	requireSameState(t, fast, slow)
	if fast.Instret < 10000 {
		t.Errorf("matmul retired only %d instructions; workload too small to exercise blocks", fast.Instret)
	}
}

// TestFastSlowEquivalenceSuite: every workload in the suite (jump tables,
// tail calls, far calls, recursion, frame pointers) ends in identical state
// on both dispatch paths.
func TestFastSlowEquivalenceSuite(t *testing.T) {
	for _, p := range workload.Programs() {
		t.Run(p.Name, func(t *testing.T) {
			fast, slow := runBoth(t, p.Source, asm.Options{})
			requireSameState(t, fast, slow)
			if fast.ExitCode != p.ExitCode {
				t.Errorf("exit code %d, want %d", fast.ExitCode, p.ExitCode)
			}
		})
	}
}

// patchWord is the encoding of "addi a0, zero, 42", the instruction the
// self-modifying-code tests write over an "addi a0, zero, 7".
func patchWord(t *testing.T) uint32 {
	t.Helper()
	w, err := riscv.Encode(riscv.Inst{
		Mn: riscv.MnADDI, Rd: riscv.RegA0, Rs1: riscv.X0,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: 42,
	})
	if err != nil {
		t.Fatalf("encode patch word: %v", err)
	}
	return w
}

// TestSelfModifyingCodeCrossBlock: a function is executed (so its block is
// decoded and cached), then a store from a *different* block rewrites its
// first instruction, and the function runs again. The store must invalidate
// the cached block: the second call returns 42, not the stale 7. Exit code
// is the sum, 49, on both dispatch paths.
func TestSelfModifyingCodeCrossBlock(t *testing.T) {
	src := fmt.Sprintf(`
	.text
_start:
	li s0, 0              # pass counter
	li s1, 0              # accumulator
	li t1, %d             # encoding of "addi a0, zero, 42"
again:
	jal ra, target
	add s1, s1, a0
	bnez s0, done
	la t0, target
	sw t1, 0(t0)          # patch target's first instruction
	li s0, 1
	j again
done:
	mv a0, s1
	li a7, 93
	ecall

target:
	addi a0, zero, 7
	ret
`, patchWord(t))
	// NoCompress keeps every instruction 4 bytes so the sw overwrites
	// exactly one instruction.
	fast, slow := runBoth(t, src, asm.Options{NoCompress: true})
	requireSameState(t, fast, slow)
	if fast.ExitCode != 49 {
		t.Errorf("exit code %d, want 49 (7 from the original body + 42 from the patched one)", fast.ExitCode)
	}
}

// TestSelfModifyingCodeInBlock: the store rewrites an instruction *later in
// its own straight-line block*. The fast path has already fused the stale
// instruction into the running block, so it must notice the generation bump
// mid-block and re-decode before reaching the patched address.
func TestSelfModifyingCodeInBlock(t *testing.T) {
	src := fmt.Sprintf(`
	.text
_start:
	la t0, patchme
	li t1, %d             # encoding of "addi a0, zero, 42"
	li a0, 0
	sw t1, 0(t0)          # overwrites an instruction in this same block
	addi zero, zero, 0
patchme:
	addi a0, zero, 7      # replaced before it executes
	li a7, 93
	ecall
`, patchWord(t))
	fast, slow := runBoth(t, src, asm.Options{NoCompress: true})
	requireSameState(t, fast, slow)
	if fast.ExitCode != 42 {
		t.Errorf("exit code %d, want 42 (stale pre-patch instruction executed)", fast.ExitCode)
	}
}

// TestFastPathBudgetExactness: Run(n) must stop on the same instruction on
// both paths even when n lands mid-block, and resuming must finish the
// program identically.
func TestFastPathBudgetExactness(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(6, 1), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	// Odd prime budget: guaranteed to land mid-block somewhere.
	for !fast.Exited {
		rf := fast.Run(197)
		rs := slow.Run(197)
		if rf != rs {
			t.Fatalf("stop reason after %d retired: fast %v, slow %v", fast.Instret, rf, rs)
		}
		if fast.PC != slow.PC || fast.Instret != slow.Instret {
			t.Fatalf("divergence: fast pc=%#x instret=%d, slow pc=%#x instret=%d",
				fast.PC, fast.Instret, slow.PC, slow.Instret)
		}
	}
	requireSameState(t, fast, slow)
}
