package emu

import (
	"math"

	"rvdyn/internal/riscv"
)

// Floating-point execution: the F (single) and D (double) extensions.
// Single-precision values are NaN-boxed in the 64-bit F registers per the
// RISC-V spec: the upper 32 bits are all ones; a register that is not a
// valid box reads back as the canonical quiet NaN.

const canonicalNaN32 = 0x7fc00000
const canonicalNaN64 = 0x7ff8000000000000

func (c *CPU) getS(r riscv.Reg) float32 {
	v := c.F[r&31]
	if v>>32 != 0xffffffff {
		return math.Float32frombits(canonicalNaN32)
	}
	return math.Float32frombits(uint32(v))
}

func (c *CPU) setS(r riscv.Reg, f float32) {
	c.F[r&31] = 0xffffffff00000000 | uint64(math.Float32bits(f))
}

func (c *CPU) getD(r riscv.Reg) float64 { return math.Float64frombits(c.F[r&31]) }
func (c *CPU) setD(r riscv.Reg, f float64) {
	c.F[r&31] = math.Float64bits(f)
}

// rm resolves the instruction's rounding-mode field (7 = dynamic, read frm).
func (c *CPU) rm(inst riscv.Inst) uint8 {
	if inst.RM == riscv.RMDyn {
		return uint8(c.FCSR >> 5 & 7)
	}
	return inst.RM
}

// roundF applies the RISC-V rounding mode to a value being converted to an
// integer.
func roundF(f float64, rm uint8) float64 {
	switch rm {
	case 0: // RNE: round to nearest, ties to even
		return math.RoundToEven(f)
	case 1: // RTZ: toward zero
		return math.Trunc(f)
	case 2: // RDN: toward -inf
		return math.Floor(f)
	case 3: // RUP: toward +inf
		return math.Ceil(f)
	case 4: // RMM: to nearest, ties away
		return math.Round(f)
	}
	return math.RoundToEven(f)
}

// Saturating float-to-int conversions (RISC-V semantics: NaN and overflow
// produce the maximal value of the destination's sign class and raise NV).

const flagNV = 0x10 // invalid-operation flag in fflags

func (c *CPU) cvtI64(f float64, rm uint8) int64 {
	if math.IsNaN(f) {
		c.FCSR |= flagNV
		return math.MaxInt64
	}
	r := roundF(f, rm)
	if r >= 0x1p63 {
		c.FCSR |= flagNV
		return math.MaxInt64
	}
	if r < -0x1p63 {
		c.FCSR |= flagNV
		return math.MinInt64
	}
	return int64(r)
}

func (c *CPU) cvtU64(f float64, rm uint8) uint64 {
	if math.IsNaN(f) {
		c.FCSR |= flagNV
		return math.MaxUint64
	}
	r := roundF(f, rm)
	if r >= 0x1.0p64 {
		c.FCSR |= flagNV
		return math.MaxUint64
	}
	if r < 0 {
		c.FCSR |= flagNV
		return 0
	}
	return uint64(r)
}

func (c *CPU) cvtI32(f float64, rm uint8) int32 {
	if math.IsNaN(f) {
		c.FCSR |= flagNV
		return math.MaxInt32
	}
	r := roundF(f, rm)
	if r > math.MaxInt32 {
		c.FCSR |= flagNV
		return math.MaxInt32
	}
	if r < math.MinInt32 {
		c.FCSR |= flagNV
		return math.MinInt32
	}
	return int32(r)
}

func (c *CPU) cvtU32(f float64, rm uint8) uint32 {
	if math.IsNaN(f) {
		c.FCSR |= flagNV
		return math.MaxUint32
	}
	r := roundF(f, rm)
	if r > math.MaxUint32 {
		c.FCSR |= flagNV
		return math.MaxUint32
	}
	if r < 0 {
		c.FCSR |= flagNV
		return 0
	}
	return uint32(r)
}

func fclass64(f float64) uint64 {
	b := math.Float64bits(f)
	sign := b>>63 == 1
	switch {
	case math.IsInf(f, -1):
		return 1 << 0
	case math.IsInf(f, 1):
		return 1 << 7
	case math.IsNaN(f):
		if b&(1<<51) != 0 {
			return 1 << 9 // quiet
		}
		return 1 << 8 // signaling
	case f == 0:
		if sign {
			return 1 << 3
		}
		return 1 << 4
	case math.Abs(f) < 0x1p-1022:
		if sign {
			return 1 << 2
		}
		return 1 << 5
	case sign:
		return 1 << 1
	}
	return 1 << 6
}

func fclass32(f float32) uint64 {
	b := math.Float32bits(f)
	sign := b>>31 == 1
	f64 := float64(f)
	switch {
	case math.IsInf(f64, -1):
		return 1 << 0
	case math.IsInf(f64, 1):
		return 1 << 7
	case f != f:
		if b&(1<<22) != 0 {
			return 1 << 9
		}
		return 1 << 8
	case f == 0:
		if sign {
			return 1 << 3
		}
		return 1 << 4
	case math.Abs(f64) < 0x1p-126:
		if sign {
			return 1 << 2
		}
		return 1 << 5
	case sign:
		return 1 << 1
	}
	return 1 << 6
}

func minD(a, b float64) float64 {
	switch {
	case math.IsNaN(a) && math.IsNaN(b):
		return math.Float64frombits(canonicalNaN64)
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return a
		}
		return b
	case a < b:
		return a
	}
	return b
}

func maxD(a, b float64) float64 {
	switch {
	case math.IsNaN(a) && math.IsNaN(b):
		return math.Float64frombits(canonicalNaN64)
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return b
		}
		return a
	case a > b:
		return a
	}
	return b
}

// execFloat executes F/D instructions; handled=false means the mnemonic is
// not a floating-point operation.
func (c *CPU) execFloat(inst riscv.Inst) (handled bool, err error) {
	rs1x := c.X[inst.Rs1&31]
	rm := c.rm(inst)
	switch inst.Mn {
	// Loads and stores.
	case riscv.MnFLW:
		v, e := c.Mem.Read32(rs1x + uint64(inst.Imm))
		if e != nil {
			return true, e
		}
		c.F[inst.Rd&31] = 0xffffffff00000000 | uint64(v)
	case riscv.MnFLD:
		v, e := c.Mem.Read64(rs1x + uint64(inst.Imm))
		if e != nil {
			return true, e
		}
		c.F[inst.Rd&31] = v
	case riscv.MnFSW:
		if e := c.storeCheck(rs1x+uint64(inst.Imm), 4,
			c.Mem.Write32(rs1x+uint64(inst.Imm), uint32(c.F[inst.Rs2&31]))); e != nil {
			return true, e
		}
	case riscv.MnFSD:
		if e := c.storeCheck(rs1x+uint64(inst.Imm), 8,
			c.Mem.Write64(rs1x+uint64(inst.Imm), c.F[inst.Rs2&31])); e != nil {
			return true, e
		}

	// Double-precision arithmetic.
	case riscv.MnFADDD:
		c.setD(inst.Rd, c.getD(inst.Rs1)+c.getD(inst.Rs2))
	case riscv.MnFSUBD:
		c.setD(inst.Rd, c.getD(inst.Rs1)-c.getD(inst.Rs2))
	case riscv.MnFMULD:
		c.setD(inst.Rd, c.getD(inst.Rs1)*c.getD(inst.Rs2))
	case riscv.MnFDIVD:
		c.setD(inst.Rd, c.getD(inst.Rs1)/c.getD(inst.Rs2))
	case riscv.MnFSQRTD:
		c.setD(inst.Rd, math.Sqrt(c.getD(inst.Rs1)))
	case riscv.MnFMADDD:
		c.setD(inst.Rd, math.FMA(c.getD(inst.Rs1), c.getD(inst.Rs2), c.getD(inst.Rs3)))
	case riscv.MnFMSUBD:
		c.setD(inst.Rd, math.FMA(c.getD(inst.Rs1), c.getD(inst.Rs2), -c.getD(inst.Rs3)))
	case riscv.MnFNMSUBD:
		c.setD(inst.Rd, math.FMA(-c.getD(inst.Rs1), c.getD(inst.Rs2), c.getD(inst.Rs3)))
	case riscv.MnFNMADDD:
		c.setD(inst.Rd, -math.FMA(c.getD(inst.Rs1), c.getD(inst.Rs2), c.getD(inst.Rs3)))
	case riscv.MnFMIND:
		c.setD(inst.Rd, minD(c.getD(inst.Rs1), c.getD(inst.Rs2)))
	case riscv.MnFMAXD:
		c.setD(inst.Rd, maxD(c.getD(inst.Rs1), c.getD(inst.Rs2)))
	case riscv.MnFSGNJD:
		a, b := c.F[inst.Rs1&31], c.F[inst.Rs2&31]
		c.F[inst.Rd&31] = a&^(1<<63) | b&(1<<63)
	case riscv.MnFSGNJND:
		a, b := c.F[inst.Rs1&31], c.F[inst.Rs2&31]
		c.F[inst.Rd&31] = a&^(1<<63) | ^b&(1<<63)
	case riscv.MnFSGNJXD:
		a, b := c.F[inst.Rs1&31], c.F[inst.Rs2&31]
		c.F[inst.Rd&31] = a ^ b&(1<<63)
	case riscv.MnFEQD:
		c.setX(inst.Rd, b2u(c.getD(inst.Rs1) == c.getD(inst.Rs2)))
	case riscv.MnFLTD:
		c.setX(inst.Rd, b2u(c.getD(inst.Rs1) < c.getD(inst.Rs2)))
	case riscv.MnFLED:
		c.setX(inst.Rd, b2u(c.getD(inst.Rs1) <= c.getD(inst.Rs2)))
	case riscv.MnFCLASSD:
		c.setX(inst.Rd, fclass64(c.getD(inst.Rs1)))

	// Double conversions and moves.
	case riscv.MnFCVTWD:
		c.setX(inst.Rd, uint64(int64(c.cvtI32(c.getD(inst.Rs1), rm))))
	case riscv.MnFCVTWUD:
		c.setX(inst.Rd, sext32(c.cvtU32(c.getD(inst.Rs1), rm)))
	case riscv.MnFCVTLD:
		c.setX(inst.Rd, uint64(c.cvtI64(c.getD(inst.Rs1), rm)))
	case riscv.MnFCVTLUD:
		c.setX(inst.Rd, c.cvtU64(c.getD(inst.Rs1), rm))
	case riscv.MnFCVTDW:
		c.setD(inst.Rd, float64(int32(rs1x)))
	case riscv.MnFCVTDWU:
		c.setD(inst.Rd, float64(uint32(rs1x)))
	case riscv.MnFCVTDL:
		c.setD(inst.Rd, float64(int64(rs1x)))
	case riscv.MnFCVTDLU:
		c.setD(inst.Rd, float64(rs1x))
	case riscv.MnFCVTSD:
		c.setS(inst.Rd, float32(c.getD(inst.Rs1)))
	case riscv.MnFCVTDS:
		c.setD(inst.Rd, float64(c.getS(inst.Rs1)))
	case riscv.MnFMVXD:
		c.setX(inst.Rd, c.F[inst.Rs1&31])
	case riscv.MnFMVDX:
		c.F[inst.Rd&31] = rs1x

	// Single-precision arithmetic.
	case riscv.MnFADDS:
		c.setS(inst.Rd, c.getS(inst.Rs1)+c.getS(inst.Rs2))
	case riscv.MnFSUBS:
		c.setS(inst.Rd, c.getS(inst.Rs1)-c.getS(inst.Rs2))
	case riscv.MnFMULS:
		c.setS(inst.Rd, c.getS(inst.Rs1)*c.getS(inst.Rs2))
	case riscv.MnFDIVS:
		c.setS(inst.Rd, c.getS(inst.Rs1)/c.getS(inst.Rs2))
	case riscv.MnFSQRTS:
		c.setS(inst.Rd, float32(math.Sqrt(float64(c.getS(inst.Rs1)))))
	case riscv.MnFMADDS:
		c.setS(inst.Rd, float32(math.FMA(float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)), float64(c.getS(inst.Rs3)))))
	case riscv.MnFMSUBS:
		c.setS(inst.Rd, float32(math.FMA(float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)), -float64(c.getS(inst.Rs3)))))
	case riscv.MnFNMSUBS:
		c.setS(inst.Rd, float32(math.FMA(-float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)), float64(c.getS(inst.Rs3)))))
	case riscv.MnFNMADDS:
		c.setS(inst.Rd, float32(-math.FMA(float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)), float64(c.getS(inst.Rs3)))))
	case riscv.MnFMINS:
		c.setS(inst.Rd, float32(minD(float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)))))
	case riscv.MnFMAXS:
		c.setS(inst.Rd, float32(maxD(float64(c.getS(inst.Rs1)), float64(c.getS(inst.Rs2)))))
	case riscv.MnFSGNJS:
		a, b := uint32(c.F[inst.Rs1&31]), uint32(c.F[inst.Rs2&31])
		c.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a&^(1<<31)|b&(1<<31))
	case riscv.MnFSGNJNS:
		a, b := uint32(c.F[inst.Rs1&31]), uint32(c.F[inst.Rs2&31])
		c.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a&^(1<<31)|^b&(1<<31))
	case riscv.MnFSGNJXS:
		a, b := uint32(c.F[inst.Rs1&31]), uint32(c.F[inst.Rs2&31])
		c.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a^b&(1<<31))
	case riscv.MnFEQS:
		c.setX(inst.Rd, b2u(c.getS(inst.Rs1) == c.getS(inst.Rs2)))
	case riscv.MnFLTS:
		c.setX(inst.Rd, b2u(c.getS(inst.Rs1) < c.getS(inst.Rs2)))
	case riscv.MnFLES:
		c.setX(inst.Rd, b2u(c.getS(inst.Rs1) <= c.getS(inst.Rs2)))
	case riscv.MnFCLASSS:
		c.setX(inst.Rd, fclass32(c.getS(inst.Rs1)))

	// Single conversions and moves.
	case riscv.MnFCVTWS:
		c.setX(inst.Rd, uint64(int64(c.cvtI32(float64(c.getS(inst.Rs1)), rm))))
	case riscv.MnFCVTWUS:
		c.setX(inst.Rd, sext32(c.cvtU32(float64(c.getS(inst.Rs1)), rm)))
	case riscv.MnFCVTLS:
		c.setX(inst.Rd, uint64(c.cvtI64(float64(c.getS(inst.Rs1)), rm)))
	case riscv.MnFCVTLUS:
		c.setX(inst.Rd, c.cvtU64(float64(c.getS(inst.Rs1)), rm))
	case riscv.MnFCVTSW:
		c.setS(inst.Rd, float32(int32(rs1x)))
	case riscv.MnFCVTSWU:
		c.setS(inst.Rd, float32(uint32(rs1x)))
	case riscv.MnFCVTSL:
		c.setS(inst.Rd, float32(int64(rs1x)))
	case riscv.MnFCVTSLU:
		c.setS(inst.Rd, float32(rs1x))
	case riscv.MnFMVXW:
		c.setX(inst.Rd, sext32(uint32(c.F[inst.Rs1&31])))
	case riscv.MnFMVWX:
		c.F[inst.Rd&31] = 0xffffffff00000000 | uint64(uint32(rs1x))

	default:
		return false, nil
	}
	return true, nil
}
