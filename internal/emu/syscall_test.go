package emu

import (
	"bytes"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
)

// TestBrkAndMmap: the heap syscalls hand out usable, zeroed memory.
func TestBrkAndMmap(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	# brk(0) -> current break
	li a0, 0
	li a7, 214
	ecall
	mv s0, a0
	# brk(break + 8192) -> grown
	li t0, 8192
	add a0, s0, t0
	li a7, 214
	ecall
	mv s1, a0
	# the grown range is writable
	li t1, 77
	sd t1, 0(s0)
	ld s2, 0(s0)
	# mmap(0, 16384, ...) -> fresh region
	li a0, 0
	li a1, 16384
	li a7, 222
	ecall
	mv s3, a0
	li t1, 88
	sd t1, 0(s3)
	ld s4, 0(s3)
	ld s5, 8(s3)          # untouched mmap memory reads zero
	ebreak
`)
	if c.X[riscv.RegS1] <= c.X[riscv.RegS0] {
		t.Errorf("brk did not grow: %#x -> %#x", c.X[riscv.RegS0], c.X[riscv.RegS1])
	}
	if c.X[riscv.RegS2] != 77 {
		t.Errorf("heap write lost: %d", c.X[riscv.RegS2])
	}
	if c.X[riscv.RegS3] == 0 {
		t.Error("mmap returned 0")
	}
	if c.X[riscv.RegS4] != 88 || c.X[riscv.RegS5] != 0 {
		t.Errorf("mmap memory: %d, %d", c.X[riscv.RegS4], c.X[riscv.RegS5])
	}
}

// TestWriteErrnoPaths: bad write arguments yield negative errno returns.
func TestWriteErrnoPaths(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	# write to an unmapped buffer -> -EFAULT
	li a0, 1
	li a1, 0x900000000
	li a2, 8
	li a7, 64
	ecall
	mv s0, a0
	# write to a file descriptor that is not open -> -EBADF
	li a0, 7
	la a1, ok
	li a2, 1
	li a7, 64
	ecall
	mv s1, a0
	ebreak
	.data
ok:
	.asciz "x"
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c.Stdout = &out
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	if int64(c.X[riscv.RegS0]) != -14 {
		t.Errorf("write(bad buf) = %d, want -EFAULT", int64(c.X[riscv.RegS0]))
	}
	if int64(c.X[riscv.RegS1]) != -9 {
		t.Errorf("write(fd 7) = %d, want -EBADF", int64(c.X[riscv.RegS1]))
	}
	if out.Len() != 0 {
		t.Errorf("failed writes emitted output: %q", out.String())
	}
}

// TestWriteStderrRouting: fd 1 and fd 2 reach distinct writers when Stderr
// is wired, and fd 2 falls back to Stdout when it is not. The pre-fix
// emulator conflated the two streams unconditionally.
func TestWriteStderrRouting(t *testing.T) {
	const src = `
	.text
_start:
	li a0, 1
	la a1, msg_out
	li a2, 4
	li a7, 64
	ecall
	li a0, 2
	la a1, msg_err
	li a2, 4
	li a7, 64
	ecall
	mv s0, a0
	ebreak
	.data
msg_out:
	.ascii "out\n"
msg_err:
	.ascii "err\n"
`
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	c.Stdout, c.Stderr = &out, &errOut
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	if out.String() != "out\n" || errOut.String() != "err\n" {
		t.Errorf("split streams: stdout=%q stderr=%q", out.String(), errOut.String())
	}
	if c.X[riscv.RegS0] != 4 {
		t.Errorf("write(fd 2) = %d, want 4", int64(c.X[riscv.RegS0]))
	}

	// Stderr unset: fd 2 falls back to Stdout for compatibility.
	c2, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	var both bytes.Buffer
	c2.Stdout = &both
	if r := c2.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c2.LastTrap())
	}
	if both.String() != "out\nerr\n" {
		t.Errorf("fallback stream: %q, want %q", both.String(), "out\nerr\n")
	}
}

// TestWritePartial: a write longer than the transfer cap returns the
// partial count (Linux MAX_RW_COUNT semantics) instead of the old EINVAL.
func TestWritePartial(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	# mmap 2 MiB to use as a source buffer
	li a0, 0
	li a1, 0x200000
	li a7, 222
	ecall
	mv s0, a0
	# write(1, buf, 2 MiB) -> partial count
	mv a1, a0
	li a0, 1
	li a2, 0x200000
	li a7, 64
	ecall
	mv s1, a0
	ebreak
`)
	if int64(c.X[riscv.RegS0]) < 0 {
		t.Fatalf("mmap failed: %d", int64(c.X[riscv.RegS0]))
	}
	if c.X[riscv.RegS1] != 1<<20 {
		t.Errorf("write(2 MiB) = %d, want partial count %d", int64(c.X[riscv.RegS1]), 1<<20)
	}
}

// TestMmapStackCollision: the bump allocator must refuse a mapping that
// would cross into the stack region instead of silently clobbering it.
func TestMmapStackCollision(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	li s5, 0xdead
	sd s5, 0(sp)          # canary on the live stack
	li s4, 0
	li t0, 8              # more 256 MiB requests than the space holds
mmap_loop:
	li a0, 0
	li a1, 0x10000000
	li a7, 222
	ecall
	bltz a0, mmap_done    # first failure ends the loop
	mv s0, a0
	addi s4, s4, 1
	addi t0, t0, -1
	bnez t0, mmap_loop
mmap_done:
	mv s1, a0             # errno of the failing mmap (or last success)
	ld s2, 0(sp)          # canary must have survived
	ebreak
`)
	if int64(c.X[riscv.RegS1]) != -12 {
		t.Fatalf("colliding mmap = %d, want -ENOMEM", int64(c.X[riscv.RegS1]))
	}
	if n := c.X[riscv.RegS4]; n == 0 || n >= 8 {
		t.Errorf("mmap successes before ENOMEM = %d, want within (0, 8)", n)
	}
	if end := c.X[riscv.RegS0] + 0x10000000; end > StackTop-StackSize {
		t.Errorf("last granted mapping ends at %#x, inside the stack region", end)
	}
	if c.X[riscv.RegS2] != 0xdead {
		t.Errorf("stack canary clobbered: %#x", c.X[riscv.RegS2])
	}
}

// TestMiscSyscalls: read/close/fstat/getpid/gettimeofday behave sanely.
func TestMiscSyscalls(t *testing.T) {
	c := runToBreak(t, `
	.text
_start:
	li a7, 63          # read -> 0 (EOF)
	li a0, 0
	la a1, buf
	li a2, 8
	ecall
	mv s0, a0
	li a7, 57          # close -> 0
	li a0, 3
	ecall
	mv s1, a0
	li a7, 172         # getpid
	ecall
	mv s2, a0
	li a7, 169         # gettimeofday
	la a0, buf
	li a1, 0
	ecall
	mv s3, a0
	ebreak
	.bss
buf:
	.zero 16
`)
	if c.X[riscv.RegS0] != 0 || c.X[riscv.RegS1] != 0 || c.X[riscv.RegS3] != 0 {
		t.Errorf("read/close/gettimeofday = %d %d %d", c.X[riscv.RegS0], c.X[riscv.RegS1], c.X[riscv.RegS3])
	}
	if c.X[riscv.RegS2] == 0 {
		t.Error("getpid = 0")
	}
}

// TestUnknownSyscallTraps: an unimplemented syscall is a trap (debuggable),
// not silence.
func TestUnknownSyscallTraps(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	li a7, 5000
	ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopTrap {
		t.Fatalf("stopped: %v, want trap", r)
	}
}

// TestLRSCFailurePaths: sc without (or with a mismatched) reservation fails.
func TestLRSCFailurePaths(t *testing.T) {
	c := runToBreak(t, `
	.bss
c1:
	.zero 8
c2:
	.zero 8
	.text
_start:
	la t0, c1
	la t1, c2
	# sc without any reservation -> fails (rd != 0)
	li t2, 1
	sc.d s0, t2, (t0)
	# lr on c1, sc on c2 -> mismatched address, fails
	lr.d t3, (t0)
	sc.d s1, t2, (t1)
	# proper pair succeeds
	lr.d t3, (t0)
	sc.d s2, t2, (t0)
	ld s3, 0(t0)
	ld s4, 0(t1)
	ebreak
`)
	if c.X[riscv.RegS0] == 0 {
		t.Error("sc without reservation succeeded")
	}
	if c.X[riscv.RegS1] == 0 {
		t.Error("sc with mismatched reservation succeeded")
	}
	if c.X[riscv.RegS2] != 0 {
		t.Error("well-paired sc failed")
	}
	if c.X[riscv.RegS3] != 1 || c.X[riscv.RegS4] != 0 {
		t.Errorf("memory after sc: c1=%d c2=%d", c.X[riscv.RegS3], c.X[riscv.RegS4])
	}
}
