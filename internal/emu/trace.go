package emu

import (
	"math"

	"rvdyn/internal/riscv"
)

// Trace compilation: the third dispatch tier.
//
// Superblock chaining (block.go) already dispatches block→block through
// cached successor links, but every constituent still pays a handler call
// through a function pointer, and every block boundary pays the Run loop's
// bookkeeping (budget/sample gates, chain resolution, runBlock setup). For
// hot loops that is the remaining cost. A trace flattens a hot chain of
// superblocks into one runtime-built unit: the constituent handlers are
// re-specialized into a dense op array executed by a single switch-dispatch
// loop, guest register numbers are pre-masked, memory ops carry a one-entry
// page cache (one translation per distinct page per trace, valid because
// mapped pages are immortal — see Memory), and conditional branches are
// compiled in their profiled-likely direction with side exits that spill
// back to the normal dispatcher. A looping trace (its predicted path
// returns to its own entry) executes multiple passes per dispatch, hoisting
// the Run loop's gates to one check per pass. A peephole pass then fuses
// adjacent specialized ops into superops (mul+add, slliAdd+load,
// addi+branch, addi+jal) so the hot switch dispatches once per two to four
// constituents.
//
// Bit-identity contract: Cycles, Instret, and the virtual clock derived
// from them must match per-instruction dispatch exactly, in every exit
// case. Cost is charged per constituent via per-op prefix sums (cumC/cumN):
// a side exit, fault, watch hit, or fused-pair split charges exactly the
// committed prefix using the same protocols runBlock implements (superops
// additionally carry preC/preN, the constituents already committed before
// their faultable tail), and the sampling gate extends block.maxCost to the
// trace's worst-case single pass, so a trace is only dispatched (and a pass
// only started) when even its worst case cannot cross the pending sample
// mark. SMC coherence rides the icache generation: a trace records the
// generation it was built under, stores re-check it (severing mid-trace
// exactly like runBlock's retire-prefix protocol), and a stale trace is
// severed at dispatch.
//
// Traces contain no syscalls, CSR reads, fence.i, or ebreaks — blocks
// terminated by those (tkExec) end the walk — so Exited and the counters
// visible to CSR reads cannot change mid-trace.

// Trace build limits and the hotness trigger: a chain link must be taken
// traceHotMask+1 times before its target is considered a trace head.
const (
	traceHotMask   = 63
	traceMaxBlocks = 16
	traceMaxOps    = 256
)

// Trace op kinds. Specialized kinds inline the corresponding block.go
// handler bodies; otBody falls back to the source bodyInst's handler
// (covering every remaining mnemonic and the fused pairs that can fault,
// with fuseStage/errFuseSplit semantics preserved for free).
const (
	otBody uint8 = iota
	otAddi
	otAdd
	otSub
	otSlli
	otLi // lui/auipc: destination value folded to a constant
	otMul
	otLd
	otLw
	otSd
	otSw
	otFld
	otFsd
	otFmaddd
	otFaddd
	otFmuld
	otConstPair  // fused lui+addi / auipc+addi: both constants
	otSlliAdd    // fused slli+add
	otMulAdd     // superop: mul feeding an add
	otSlliAddLd  // superop: fused slli+add feeding an ld through the add result
	otSlliAddFld // superop: fused slli+add feeding an fld through the add result
	otAddiJal    // superop: addi followed by a constant-target jump+link
	otAddiBr     // superop: addi followed by a predicted conditional branch
	otBr         // conditional branch, compiled in its predicted direction
	otBrEnd      // conditional branch without a usable prediction: trace end
	otCmpBr      // fused compare+branch, predicted
	otCmpBrEnd   // fused compare+branch, trace end
	otJal        // constant-target jump+link, trace continues at the target
	otAuipcJalr  // fused auipc+jalr (constant target), trace continues
	otJalrEnd    // indirect jump: dynamic target, always a trace end
)

// traceOp is one flattened constituent, fused pair, superop, or terminator
// of a trace. The fields the execution switch reads on the predicted path
// come first so they share a cache line; exit bookkeeping (prefix sums
// cumC/cumN — the predicted-path cycles/constituents committed before this
// op within one pass — and the fault/store-protocol fields) sits behind
// them and is only touched on trace exits.
type traceOp struct {
	kind      uint8
	n         uint8 // constituents this op retires on the predicted path
	rd        uint8
	rs1, rs2  uint8
	rs3       uint8 // third source / second destination (pairs, superops)
	rs4       uint8 // fourth register (superops)
	predTaken bool
	store     bool
	preN      uint8          // superops: constituents committed before the faultable tail
	mn        riscv.Mnemonic // branch mnemonic (otBr/otBrEnd/otAddiBr)
	imm       int64
	aux       uint64 // folded constant / shift amount / branch taken target
	aux2      uint64 // second constant / fallthrough PC / link value
	pgTag     uint64 // page cache: page index + 1 (0 = empty)
	pg        *page

	// Exit bookkeeping (cold on the predicted path).
	cost  uint64    // predicted-path cycle cost of this op
	cost1 uint64    // cost without the taken penalty (branch exits)
	preC  uint64    // superops: cycles of the constituents before the tail
	next  uint64    // address after the op's constituents (store protocol)
	cumC  uint64    // predicted-path cycles before this op, within a pass
	cumN  uint64    // predicted-path constituents before this op
	bi    *bodyInst // source body entry (otBody; fault attribution)
	b     *block    // source block (terminator ops)
}

// trace is one compiled hot chain, attached to its head block.
type trace struct {
	gen     uint64 // icache generation the trace was built under
	entry   uint64 // head PC (pass start; loop wrap target)
	endPC   uint64 // PC after the last op for traces that end by falling off
	loop    bool   // predicted path returns to entry: multi-pass dispatch
	ops     []traceOp
	passC   uint64 // cycles of one full predicted pass
	passN   uint64 // constituents of one full predicted pass
	maxCost uint64 // worst-case cycles of one pass (sampler gate)
}

// maybeTrace is the hotness trigger, called from succFor when a chain link
// crosses a hit threshold. The target becomes a trace head unless it
// already has a trace, already failed to produce one, or tracing is off.
func (c *CPU) maybeTrace(b *block, pc uint64) {
	if c.NoTrace || b.trc != nil || b.trcFail {
		return
	}
	c.buildTrace(b, pc)
}

// buildTrace walks the predicted chain from the head block at entry and
// compiles it into a flattened trace, attaching it to head (or marking the
// head untraceable). The walk follows constant-target terminators and the
// profiled-likely side of conditional branches, and stops at indirect
// jumps, unpredictable branches, tkExec blocks (syscalls/CSRs/ebreak), a
// revisited PC, or the build caps. A walk that returns to entry makes a
// looping trace.
func (c *CPU) buildTrace(head *block, entry uint64) {
	t := &trace{gen: c.icGen, entry: entry}
	visited := map[uint64]bool{entry: true}
	pc := entry
	b := head
	blocks := 0
	for {
		if b == nil || b.gen != c.icGen || blocks >= traceMaxBlocks ||
			len(t.ops)+len(b.body)+1 > traceMaxOps ||
			(b.hasTerm && (b.termKind == tkExec || b.term.Mn == riscv.MnEBREAK)) {
			// End the trace before this block; the dispatcher picks it up.
			t.endPC = pc
			break
		}
		blocks++
		for j := range b.body {
			t.ops = append(t.ops, traceBodyOp(&b.body[j]))
		}
		var nextPC uint64
		done := false
		if !b.hasTerm {
			nextPC = b.end
		} else {
			op := traceOp{b: b, aux: b.takenPC, aux2: b.fallPC}
			switch b.termKind {
			case tkBranch:
				op.mn = b.term.Mn
				op.rs1, op.rs2 = uint8(b.term.Rs1&31), uint8(b.term.Rs2&31)
				op.n, op.cost1 = 1, b.termCost
				op.cost = b.termCost
				if taken, ok := c.predictBranch(b); ok {
					op.kind = otBr
					op.predTaken = taken
					if taken {
						op.cost += c.Model.BranchTakenPenalty
						nextPC = b.takenPC
					} else {
						nextPC = b.fallPC
					}
				} else {
					op.kind = otBrEnd
					done = true
				}
			case tkCmpBranch:
				op.n, op.cost1 = 2, b.cmpCost+b.termCost
				op.cost = op.cost1
				if taken, ok := c.predictBranch(b); ok {
					op.kind = otCmpBr
					op.predTaken = taken
					if taken {
						op.cost += c.Model.BranchTakenPenalty
						nextPC = b.takenPC
					} else {
						nextPC = b.fallPC
					}
				} else {
					op.kind = otCmpBrEnd
					done = true
				}
			case tkJAL:
				op.kind = otJal
				op.rd = uint8(b.term.Rd & 31)
				op.n, op.cost = 1, b.termCost
				nextPC = b.takenPC
			case tkAuipcJalr:
				op.kind = otAuipcJalr
				op.n, op.cost = 2, b.cmpCost+b.termCost
				nextPC = b.takenPC
			case tkJALR:
				op.kind = otJalrEnd
				op.rd, op.rs1 = uint8(b.term.Rd&31), uint8(b.term.Rs1&31)
				op.imm = b.term.Imm
				op.n, op.cost, op.cost1 = 1, b.termCost, b.termCost
				done = true
			}
			t.ops = append(t.ops, op)
		}
		if done {
			break
		}
		if nextPC == entry {
			t.loop = true
			break
		}
		if visited[nextPC] {
			t.endPC = nextPC
			break
		}
		visited[nextPC] = true
		pc = nextPC
		b = c.blockAt(nextPC)
	}
	if len(t.ops) == 0 {
		head.trcFail = true
		return
	}
	tracePeephole(t)
	// Prefix sums and the worst-case pass cost for the sampler gate.
	var cc, cn, mc uint64
	for i := range t.ops {
		op := &t.ops[i]
		op.cumC, op.cumN = cc, cn
		cc += op.cost
		cn += uint64(op.n)
		w := op.cost
		switch op.kind {
		case otBr, otBrEnd, otCmpBr, otCmpBrEnd, otAddiBr:
			w = op.cost1 + c.Model.BranchTakenPenalty
		}
		mc += w
	}
	t.passC, t.passN, t.maxCost = cc, cn, mc
	head.trc = t
	c.traceBuilds++
}

// tracePeephole fuses adjacent specialized ops into superops, halving the
// dispatch count of common loop bodies (index computation feeding a load,
// multiply feeding an accumulate, induction update feeding the backedge).
// Fusing adjacent ops is always sound — each superop commits its
// constituents in original order, reading operands only after earlier
// commits — and the cost/retire accounting merges additively, so the
// prefix sums computed afterwards keep every exit protocol bit-identical.
// Superops never contain stores; a faultable load tail records the
// already-committed prefix in preC/preN for the fault protocol.
func tracePeephole(t *trace) {
	ops := t.ops
	w := 0
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if i+1 < len(ops) {
			nxt := &ops[i+1]
			merged := true
			switch {
			case op.kind == otMul && nxt.kind == otAdd &&
				(nxt.rs1 == op.rd || nxt.rs2 == op.rd):
				// mul rd,rs1,rs2 ; add rd2,·,· with the product as an
				// operand. rs4 is the other operand, read after the mul
				// commits (it may be rd itself).
				op.kind = otMulAdd
				op.rs3 = nxt.rd
				op.rs4 = nxt.rs2
				if nxt.rs1 != op.rd {
					op.rs4 = nxt.rs1
				}
			case op.kind == otSlliAdd && (nxt.kind == otLd || nxt.kind == otFld) &&
				nxt.rs1 == op.rs3:
				// slli+add pair computing an address, immediately loaded
				// through. The shift amount moves to aux; imm becomes the
				// load offset and rs4 the load destination. The load is the
				// faultable tail: preC/preN record the committed pair.
				if nxt.kind == otLd {
					op.kind = otSlliAddLd
				} else {
					op.kind = otSlliAddFld
				}
				op.aux = uint64(op.imm)
				op.imm = nxt.imm
				op.rs4 = nxt.rd
				op.preC, op.preN = op.cost, op.n
				op.bi = nxt.bi
			case op.kind == otAddi && nxt.kind == otJal:
				// Induction update feeding a direct jump (loop backedge).
				// rs3 is the link register (0 for plain j).
				op.kind = otAddiJal
				op.rs3 = nxt.rd
				op.aux, op.aux2 = nxt.aux, nxt.aux2
			case op.kind == otAddi && nxt.kind == otBr:
				// Induction update feeding a predicted conditional branch.
				// The branch operands move to rs3/rs4 (read after the addi
				// commits); cost1 covers both constituents for the
				// side-exit charge.
				op.kind = otAddiBr
				op.mn = nxt.mn
				op.rs3, op.rs4 = nxt.rs1, nxt.rs2
				op.predTaken = nxt.predTaken
				op.aux, op.aux2 = nxt.aux, nxt.aux2
				op.cost1 = op.cost + nxt.cost1
			default:
				merged = false
			}
			if merged {
				op.n += nxt.n
				op.cost += nxt.cost
				op.next = nxt.next
				i++
			}
		}
		ops[w] = op
		w++
	}
	t.ops = ops[:w]
}

// predictBranch picks the likely direction of b's terminating branch from
// the hit counts on its cached successor links. A direction with no
// resolved link has never been taken since the block was built; prefer the
// observed one.
func (c *CPU) predictBranch(b *block) (taken, ok bool) {
	var th, fh uint32
	tv, fv := false, false
	for i := range b.succ {
		s := &b.succ[i]
		if s.b == nil {
			continue
		}
		if s.pc == b.takenPC {
			th, tv = s.hits, true
		}
		if s.pc == b.fallPC {
			fh, fv = s.hits, true
		}
	}
	switch {
	case tv && (!fv || th >= fh):
		return true, true
	case fv:
		return false, true
	}
	return false, false
}

// traceBodyOp specializes one body entry into a trace op. Anything without
// a dedicated kind (or writing x0, where setX semantics matter) falls back
// to otBody, which runs the original handler.
func traceBodyOp(bi *bodyInst) traceOp {
	in := &bi.inst
	op := traceOp{
		kind: otBody, bi: bi,
		n: bi.n, cost: bi.cost, next: bi.next, store: bi.store,
		rd: uint8(in.Rd & 31), rs1: uint8(in.Rs1 & 31),
		rs2: uint8(in.Rs2 & 31), rs3: uint8(in.Rs3 & 31),
		imm: in.Imm,
	}
	if bi.n == 2 {
		switch {
		case (in.Mn == riscv.MnLUI || in.Mn == riscv.MnAUIPC) &&
			bi.inst2.Mn == riscv.MnADDI && op.rd != 0 && bi.inst2.Rd != riscv.X0:
			op.kind = otConstPair
			op.aux, op.aux2 = bi.aux, bi.aux2
			op.rs3 = uint8(bi.inst2.Rd & 31)
		case in.Mn == riscv.MnSLLI && bi.inst2.Mn == riscv.MnADD &&
			op.rd != 0 && bi.inst2.Rd != riscv.X0:
			op.kind = otSlliAdd
			op.imm = int64(bi.aux)  // shift amount
			op.rs2 = uint8(bi.aux2) // the non-shifted add operand register
			op.rs3 = uint8(bi.inst2.Rd & 31)
		}
		return op
	}
	switch in.Mn {
	case riscv.MnADDI:
		if op.rd != 0 {
			op.kind = otAddi
		}
	case riscv.MnADD:
		if op.rd != 0 {
			op.kind = otAdd
		}
	case riscv.MnSUB:
		if op.rd != 0 {
			op.kind = otSub
		}
	case riscv.MnSLLI:
		if op.rd != 0 {
			op.kind = otSlli
		}
	case riscv.MnLUI:
		if op.rd != 0 {
			op.kind = otLi
			op.aux = uint64(in.Imm << 12)
		}
	case riscv.MnAUIPC:
		if op.rd != 0 {
			op.kind = otLi
			op.aux = in.Addr + uint64(in.Imm<<12)
		}
	case riscv.MnMUL:
		if op.rd != 0 {
			op.kind = otMul
		}
	case riscv.MnLD:
		if op.rd != 0 {
			op.kind = otLd
		}
	case riscv.MnLW:
		if op.rd != 0 {
			op.kind = otLw
		}
	case riscv.MnSD:
		op.kind = otSd
	case riscv.MnSW:
		op.kind = otSw
	case riscv.MnFLD:
		op.kind = otFld
	case riscv.MnFSD:
		op.kind = otFsd
	case riscv.MnFMADDD:
		op.kind = otFmaddd
	case riscv.MnFADDD:
		op.kind = otFaddd
	case riscv.MnFMULD:
		op.kind = otFmuld
	}
	return op
}

// runTrace executes t, which must start at the current PC under the current
// icache generation, with the dispatch gates (budget ≥ passN, sampler
// clearance for maxCost) already checked for the first pass. It returns the
// constituents retired and a stop reason (stopNone to continue
// dispatching). Every exit path leaves Cycles/Instret/PC exactly as
// per-instruction dispatch would. Load hit paths are inlined against the
// per-op page cache; misses, stores, faults, and every exit go through the
// outlined helpers.
func (c *CPU) runTrace(t *trace, budget uint64, limited bool) (retired uint64, stop StopReason) {
	c.blkGen = t.gen
	c.traceHits++
	ops := t.ops
	for {
		for i := 0; i < len(ops); i++ {
			op := &ops[i]
			switch op.kind {
			case otBody:
				bi := op.bi
				if err := bi.fn(c, bi); err != nil {
					if err == errFuseSplit {
						// First store of a fused pair invalidated cached
						// code: retire it alone and re-dispatch (runBlock's
						// protocol).
						c.PC = bi.inst2.Addr
						c.Cycles += op.cumC + bi.cost1
						c.Instret += op.cumN + 1
						return retired + op.cumN + 1, stopNone
					}
					return c.traceFault(op, retired, err)
				}
				if op.store && (c.watchHit || t.gen != c.icGen) {
					return c.traceStoreExit(op, retired)
				}
			case otAddi:
				c.X[op.rd&31] = c.X[op.rs1&31] + uint64(op.imm)
			case otAdd:
				c.X[op.rd&31] = c.X[op.rs1&31] + c.X[op.rs2&31]
			case otSub:
				c.X[op.rd&31] = c.X[op.rs1&31] - c.X[op.rs2&31]
			case otSlli:
				c.X[op.rd&31] = c.X[op.rs1&31] << uint(op.imm)
			case otLi:
				c.X[op.rd&31] = op.aux
			case otMul:
				c.X[op.rd&31] = c.X[op.rs1&31] * c.X[op.rs2&31]
			case otLd:
				a := c.X[op.rs1&31] + uint64(op.imm)
				if a>>pageBits+1 == op.pgTag && a&pageMask <= pageSize-8 {
					p, o := op.pg, a&pageMask
					c.X[op.rd&31] = uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
						uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
				} else {
					v, err := c.traceRead64(op, a)
					if err != nil {
						return c.traceFault(op, retired, err)
					}
					c.X[op.rd&31] = v
				}
			case otLw:
				a := c.X[op.rs1&31] + uint64(op.imm)
				if a>>pageBits+1 == op.pgTag && a&pageMask <= pageSize-4 {
					p, o := op.pg, a&pageMask
					c.X[op.rd&31] = sext32(uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24)
				} else {
					v, err := c.traceRead32(op, a)
					if err != nil {
						return c.traceFault(op, retired, err)
					}
					c.X[op.rd&31] = sext32(v)
				}
			case otSd:
				if err := c.traceWrite64(op, c.X[op.rs1&31]+uint64(op.imm), c.X[op.rs2&31]); err != nil {
					return c.traceFault(op, retired, err)
				}
				if c.watchHit || t.gen != c.icGen {
					return c.traceStoreExit(op, retired)
				}
			case otSw:
				if err := c.traceWrite32(op, c.X[op.rs1&31]+uint64(op.imm), uint32(c.X[op.rs2&31])); err != nil {
					return c.traceFault(op, retired, err)
				}
				if c.watchHit || t.gen != c.icGen {
					return c.traceStoreExit(op, retired)
				}
			case otFld:
				a := c.X[op.rs1&31] + uint64(op.imm)
				if a>>pageBits+1 == op.pgTag && a&pageMask <= pageSize-8 {
					p, o := op.pg, a&pageMask
					c.F[op.rd&31] = uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
						uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
				} else {
					v, err := c.traceRead64(op, a)
					if err != nil {
						return c.traceFault(op, retired, err)
					}
					c.F[op.rd&31] = v
				}
			case otFsd:
				if err := c.traceWrite64(op, c.X[op.rs1&31]+uint64(op.imm), c.F[op.rs2&31]); err != nil {
					return c.traceFault(op, retired, err)
				}
				if c.watchHit || t.gen != c.icGen {
					return c.traceStoreExit(op, retired)
				}
			case otFmaddd:
				c.F[op.rd&31] = math.Float64bits(math.FMA(
					math.Float64frombits(c.F[op.rs1&31]),
					math.Float64frombits(c.F[op.rs2&31]),
					math.Float64frombits(c.F[op.rs3&31])))
			case otFaddd:
				c.F[op.rd&31] = math.Float64bits(
					math.Float64frombits(c.F[op.rs1&31]) + math.Float64frombits(c.F[op.rs2&31]))
			case otFmuld:
				c.F[op.rd&31] = math.Float64bits(
					math.Float64frombits(c.F[op.rs1&31]) * math.Float64frombits(c.F[op.rs2&31]))
			case otConstPair:
				c.X[op.rd&31] = op.aux
				c.X[op.rs3&31] = op.aux2
			case otSlliAdd:
				v := c.X[op.rs1&31] << uint(op.imm)
				c.X[op.rd&31] = v
				// Read the other operand after committing the shift, exactly
				// like fnFuseSlliAdd (it may be the shifted register).
				c.X[op.rs3&31] = v + c.X[op.rs2&31]
			case otMulAdd:
				v := c.X[op.rs1&31] * c.X[op.rs2&31]
				c.X[op.rd&31] = v
				// rs4 is read after the mul commits (it may be rd).
				c.X[op.rs3&31] = v + c.X[op.rs4&31]
			case otSlliAddLd:
				v := c.X[op.rs1&31] << uint(op.aux)
				c.X[op.rd&31] = v
				u := v + c.X[op.rs2&31]
				c.X[op.rs3&31] = u
				a := u + uint64(op.imm)
				if a>>pageBits+1 == op.pgTag && a&pageMask <= pageSize-8 {
					p, o := op.pg, a&pageMask
					c.X[op.rs4&31] = uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
						uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
				} else {
					val, err := c.traceRead64(op, a)
					if err != nil {
						return c.traceFault(op, retired, err)
					}
					c.X[op.rs4&31] = val
				}
			case otSlliAddFld:
				v := c.X[op.rs1&31] << uint(op.aux)
				c.X[op.rd&31] = v
				u := v + c.X[op.rs2&31]
				c.X[op.rs3&31] = u
				a := u + uint64(op.imm)
				if a>>pageBits+1 == op.pgTag && a&pageMask <= pageSize-8 {
					p, o := op.pg, a&pageMask
					c.F[op.rs4&31] = uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
						uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
				} else {
					val, err := c.traceRead64(op, a)
					if err != nil {
						return c.traceFault(op, retired, err)
					}
					c.F[op.rs4&31] = val
				}
			case otAddiJal:
				c.X[op.rd&31] = c.X[op.rs1&31] + uint64(op.imm)
				if op.rs3 != 0 {
					c.X[op.rs3&31] = op.aux2
				}
			case otAddiBr:
				c.X[op.rd&31] = c.X[op.rs1&31] + uint64(op.imm)
				if taken := c.evalBranch(op.mn, c.X[op.rs3&31], c.X[op.rs4&31]); taken != op.predTaken {
					c.traceSideExits++
					return c.traceBranchExit(op, retired, taken)
				}
			case otBr:
				if taken := c.evalBranch(op.mn, c.X[op.rs1&31], c.X[op.rs2&31]); taken != op.predTaken {
					c.traceSideExits++
					return c.traceBranchExit(op, retired, taken)
				}
			case otBrEnd:
				taken := c.evalBranch(op.mn, c.X[op.rs1&31], c.X[op.rs2&31])
				return c.traceBranchExit(op, retired, taken)
			case otCmpBr:
				if taken := c.traceCmpEval(op.b); taken != op.predTaken {
					c.traceSideExits++
					return c.traceBranchExit(op, retired, taken)
				}
			case otCmpBrEnd:
				taken := c.traceCmpEval(op.b)
				return c.traceBranchExit(op, retired, taken)
			case otJal:
				if op.rd != 0 {
					c.X[op.rd&31] = op.aux2
				}
			case otAuipcJalr:
				b := op.b
				c.setX(b.cmp.Rd, b.termAux)
				c.setX(b.term.Rd, b.fallPC)
			case otJalrEnd:
				target := (c.X[op.rs1&31] + uint64(op.imm)) &^ 1
				if op.rd != 0 {
					c.X[op.rd&31] = op.aux2
				}
				c.PC = target
				c.Cycles += op.cumC + op.cost1
				c.Instret += op.cumN + 1
				return retired + op.cumN + 1, stopNone
			}
		}
		// Full pass completed.
		c.Cycles += t.passC
		c.Instret += t.passN
		retired += t.passN
		c.tracePasses++
		if !t.loop {
			c.PC = t.endPC
			return retired, stopNone
		}
		// Next pass only if the same gates the dispatcher checks still hold;
		// otherwise exit at the pass boundary (a block boundary, so the
		// per-instruction path resumes at the identical state).
		if limited && budget-retired < t.passN {
			c.PC = t.entry
			return retired, stopNone
		}
		if c.SamplePeriod != 0 && c.SampleClock()+t.maxCost >= c.sampleNext {
			c.PC = t.entry
			return retired, stopNone
		}
	}
}

// traceFault applies the partial-fault protocol: the faulting constituent
// has not retired, the PC points at it, and the committed prefix — prior
// ops (cumC/cumN), a superop's committed head (preC/preN), and a retired
// first constituent of a fused pair — is charged, bit-identical to
// runBlock's fault exit.
func (c *CPU) traceFault(op *traceOp, retired uint64, err error) (uint64, StopReason) {
	bi := op.bi
	fi, k := &bi.inst, uint64(0)
	if bi.n == 2 && c.fuseStage == 1 {
		fi, k = &bi.inst2, 1
	}
	c.PC = fi.Addr
	c.Cycles += op.cumC + op.preC + k*bi.cost1
	c.Instret += op.cumN + uint64(op.preN) + k
	c.lastTrap = &Trap{PC: c.PC, Why: "execute " + fi.String(), Wrap: err}
	return retired + op.cumN + uint64(op.preN) + k, StopTrap
}

// traceStoreExit leaves the trace after a committed store that either hit a
// watchpoint or invalidated cached code (possibly this very trace): the
// prefix including the store retires and the PC points past it — runBlock's
// protocol for both cases.
func (c *CPU) traceStoreExit(op *traceOp, retired uint64) (uint64, StopReason) {
	c.PC = op.next
	c.Cycles += op.cumC + op.cost
	c.Instret += op.cumN + uint64(op.n)
	retired += op.cumN + uint64(op.n)
	if c.watchHit {
		c.watchHit = false
		return retired, StopCodeWrite
	}
	c.traceSevers++
	return retired, stopNone
}

// traceBranchExit leaves the trace through a conditional branch, charging
// the actual (not predicted) branch cost and setting the actual target.
// For otAddiBr superops cost1 already covers the committed addi.
func (c *CPU) traceBranchExit(op *traceOp, retired uint64, taken bool) (uint64, StopReason) {
	cost := op.cost1
	if taken {
		cost += c.Model.BranchTakenPenalty
		c.PC = op.aux
	} else {
		c.PC = op.aux2
	}
	c.Cycles += op.cumC + cost
	c.Instret += op.cumN + uint64(op.n)
	return retired + op.cumN + uint64(op.n), stopNone
}

// traceCmpEval executes the fused compare+branch of b (compare committed to
// its destination, branch condition evaluated) and reports the taken
// direction — the same sequence as runBlock's tkCmpBranch case.
func (c *CPU) traceCmpEval(b *block) bool {
	cmp := &b.cmp
	var v uint64
	switch cmp.Mn {
	case riscv.MnSLT:
		v = b2u(int64(c.X[cmp.Rs1&31]) < int64(c.X[cmp.Rs2&31]))
	case riscv.MnSLTU:
		v = b2u(c.X[cmp.Rs1&31] < c.X[cmp.Rs2&31])
	case riscv.MnSLTI:
		v = b2u(int64(c.X[cmp.Rs1&31]) < cmp.Imm)
	case riscv.MnSLTIU:
		v = b2u(c.X[cmp.Rs1&31] < uint64(cmp.Imm))
	}
	c.setX(cmp.Rd, v)
	taken := v != 0
	if b.term.Mn == riscv.MnBEQ {
		taken = !taken
	}
	return taken
}

// Trace memory helpers: one-entry per-op page caches. The hit path (tag
// compare + in-page access) is inlined in runTrace; these outlined helpers
// handle misses — refilling through the ordinary TLB path so translation
// stats stay attributed, caching the page, which can never go stale because
// mapped pages are immortal — and accesses that straddle a page, which fall
// back to the generic accessors.

func (c *CPU) traceRead64(op *traceOp, a uint64) (uint64, error) {
	if a&pageMask <= pageSize-8 {
		if a>>pageBits+1 != op.pgTag {
			p := c.Mem.readPage(a)
			if p == nil {
				return 0, &MemFault{Addr: a}
			}
			op.pgTag, op.pg = a>>pageBits+1, p
		}
		p, o := op.pg, a&pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56, nil
	}
	return c.Mem.Read64(a)
}

func (c *CPU) traceRead32(op *traceOp, a uint64) (uint32, error) {
	if a&pageMask <= pageSize-4 {
		if a>>pageBits+1 != op.pgTag {
			p := c.Mem.readPage(a)
			if p == nil {
				return 0, &MemFault{Addr: a}
			}
			op.pgTag, op.pg = a>>pageBits+1, p
		}
		p, o := op.pg, a&pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	return c.Mem.Read32(a)
}

func (c *CPU) traceWrite64(op *traceOp, a, v uint64) error {
	if a&pageMask <= pageSize-8 {
		if a>>pageBits+1 != op.pgTag {
			p := c.Mem.writePage(a)
			if p == nil {
				return &MemFault{Addr: a, Write: true}
			}
			op.pgTag, op.pg = a>>pageBits+1, p
		}
		p, o := op.pg, a&pageMask
		for i := uint64(0); i < 8; i++ {
			p[o+i] = byte(v >> (8 * i))
		}
		return c.storeCheck(a, 8, nil)
	}
	return c.storeCheck(a, 8, c.Mem.Write64(a, v))
}

func (c *CPU) traceWrite32(op *traceOp, a uint64, v uint32) error {
	if a&pageMask <= pageSize-4 {
		if a>>pageBits+1 != op.pgTag {
			p := c.Mem.writePage(a)
			if p == nil {
				return &MemFault{Addr: a, Write: true}
			}
			op.pgTag, op.pg = a>>pageBits+1, p
		}
		p, o := op.pg, a&pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return c.storeCheck(a, 4, nil)
	}
	return c.storeCheck(a, 4, c.Mem.Write32(a, v))
}
