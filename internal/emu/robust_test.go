package emu

import (
	"math/rand"
	"testing"

	"rvdyn/internal/elfrv"
)

// TestExecuteRandomBytesNeverPanics: executing arbitrary bytes must end in
// a trap, a breakpoint, an exit, or budget exhaustion — never a Go panic.
// (A debugger's target doing something insane is the normal case, not the
// exceptional one.)
func TestExecuteRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		text := make([]byte, 128+rng.Intn(512))
		rng.Read(text)
		f := &elfrv.File{
			Entry: 0x10000,
			Sections: []*elfrv.Section{
				{Name: ".text", Type: elfrv.SHTProgbits,
					Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
					Addr:  0x10000, Data: text, Align: 4},
				{Name: ".data", Type: elfrv.SHTProgbits,
					Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
					Addr:  0x20000, Data: make([]byte, 4096), Align: 8},
			},
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: emulator panicked: %v", trial, r)
				}
			}()
			c, err := New(f, P550())
			if err != nil {
				t.Fatal(err)
			}
			reason := c.Run(10000)
			switch reason {
			case StopExit, StopBreakpoint, StopTrap, StopMaxInst:
			default:
				t.Fatalf("trial %d: unexpected stop %v", trial, reason)
			}
		}()
	}
}
