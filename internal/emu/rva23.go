package emu

import "rvdyn/internal/riscv"

// Execution semantics for the RVA23-profile extension module (see
// riscv/rva23.go). Registered in its own file so the extension stays
// self-contained in every layer.

// execExt handles extension-module instructions; handled=false passes the
// instruction on to the floating-point dispatcher.
func (c *CPU) execExt(inst riscv.Inst, rs1, rs2 uint64) (handled bool) {
	switch inst.Mn {
	case riscv.MnCZEROEQZ:
		v := rs1
		if rs2 == 0 {
			v = 0
		}
		c.setX(inst.Rd, v)
	case riscv.MnCZERONEZ:
		v := rs1
		if rs2 != 0 {
			v = 0
		}
		c.setX(inst.Rd, v)
	case riscv.MnSH1ADD:
		c.setX(inst.Rd, rs1<<1+rs2)
	case riscv.MnSH2ADD:
		c.setX(inst.Rd, rs1<<2+rs2)
	case riscv.MnSH3ADD:
		c.setX(inst.Rd, rs1<<3+rs2)
	case riscv.MnANDN:
		c.setX(inst.Rd, rs1&^rs2)
	case riscv.MnORN:
		c.setX(inst.Rd, rs1|^rs2)
	case riscv.MnXNOR:
		c.setX(inst.Rd, ^(rs1 ^ rs2))
	case riscv.MnMIN:
		if int64(rs1) < int64(rs2) {
			c.setX(inst.Rd, rs1)
		} else {
			c.setX(inst.Rd, rs2)
		}
	case riscv.MnMINU:
		if rs1 < rs2 {
			c.setX(inst.Rd, rs1)
		} else {
			c.setX(inst.Rd, rs2)
		}
	case riscv.MnMAX:
		if int64(rs1) > int64(rs2) {
			c.setX(inst.Rd, rs1)
		} else {
			c.setX(inst.Rd, rs2)
		}
	case riscv.MnMAXU:
		if rs1 > rs2 {
			c.setX(inst.Rd, rs1)
		} else {
			c.setX(inst.Rd, rs2)
		}
	default:
		return false
	}
	return true
}
