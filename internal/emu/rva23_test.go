package emu

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
)

// TestRVA23Execution runs a program that uses every instruction of the
// extension module and checks its in-program assertions. The assembler
// picked the new mnemonics up automatically from the registration — no
// assembler change was needed, which is the modularity property under test.
func TestRVA23Execution(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li t0, 12
	li t1, 0
	li t2, 5

	# czero.eqz: t1 == 0 -> rd = 0
	czero.eqz t3, t0, t1
	bnez t3, fail
	# czero.eqz: t2 != 0 -> rd = rs1
	czero.eqz t3, t0, t2
	li t4, 12
	bne t3, t4, fail
	# czero.nez: t2 != 0 -> rd = 0
	czero.nez t3, t0, t2
	bnez t3, fail

	# sh1add/sh2add/sh3add
	li t0, 3
	li t1, 100
	sh1add t3, t0, t1     # 106
	li t4, 106
	bne t3, t4, fail
	sh2add t3, t0, t1     # 112
	li t4, 112
	bne t3, t4, fail
	sh3add t3, t0, t1     # 124
	li t4, 124
	bne t3, t4, fail

	# Zbb logic
	li t0, 0xff
	li t1, 0x0f
	andn t3, t0, t1       # 0xf0
	li t4, 0xf0
	bne t3, t4, fail
	orn t3, t1, t0        # 0x0f | ~0xff
	li t4, -241           # 0xffffffffffffff0f
	bne t3, t4, fail
	xnor t3, t0, t0       # all ones
	li t4, -1
	bne t3, t4, fail

	# min/max signed vs unsigned
	li t0, -5
	li t1, 3
	min t3, t0, t1
	bne t3, t0, fail
	max t3, t0, t1
	bne t3, t1, fail
	minu t3, t0, t1       # unsigned: 3 < 0xff..fb
	bne t3, t1, fail
	maxu t3, t0, t1
	bne t3, t0, fail

	li a0, 0
	j done
fail:
	li a0, 1
done:
	li a7, 93
	ecall
`
	f, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopExit {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	if c.ExitCode != 0 {
		t.Error("in-program RVA23 assertions failed")
	}
}

// TestRVA23ExtensionGating: the assembler rejects the new instructions for
// an RV64GC target, keeping the codegen invariant that a mutatee never
// receives instructions outside its advertised set.
func TestRVA23ExtensionGating(t *testing.T) {
	src := "\t.text\n_start:\n\tczero.eqz t0, t1, t2\n"
	if _, err := asm.Assemble(src, asm.Options{Arch: riscv.RV64GC}); err == nil {
		t.Error("czero.eqz assembled for a plain RV64GC target")
	}
	if _, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset}); err != nil {
		t.Errorf("czero.eqz rejected for an RVA23 target: %v", err)
	}
}
