package emu

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
)

// TestRoundingModes: explicit rounding-mode operands steer fcvt exactly as
// the ISA specifies (2.5 under the five modes).
func TestRoundingModes(t *testing.T) {
	src := `
	.text
_start:
	li t0, 5
	fcvt.d.l ft0, t0
	li t0, 2
	fcvt.d.l ft1, t0
	fdiv.d ft2, ft0, ft1      # 2.5
	fcvt.l.d s0, ft2, rne     # 2 (ties to even)
	fcvt.l.d s1, ft2, rtz     # 2
	fcvt.l.d s2, ft2, rdn     # 2
	fcvt.l.d s3, ft2, rup     # 3
	fcvt.l.d s4, ft2, rmm     # 3 (ties away)
	fneg.d ft3, ft2           # -2.5
	fcvt.l.d s5, ft3, rtz     # -2
	fcvt.l.d s6, ft3, rdn     # -3
	ebreak
`
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != StopBreakpoint {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	want := map[riscv.Reg]int64{
		riscv.RegS0: 2, riscv.RegS1: 2, riscv.RegS2: 2,
		riscv.RegS3: 3, riscv.RegS4: 3, riscv.RegS5: -2, riscv.RegS6: -3,
	}
	for r, w := range want {
		if got := int64(c.X[r]); got != w {
			t.Errorf("%v = %d, want %d", r, got, w)
		}
	}
}
