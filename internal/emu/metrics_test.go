package emu

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
)

// TestSyscallTraceExitRet pins the hook's ret convention: ret is the value
// the syscall returns in A0 for every syscall, and exit syscalls — which
// never return — report ret == 0 with the exit status in a0. An earlier
// version reported ret == a0 on the exit path, making ret mean two
// different things depending on the syscall number.
func TestSyscallTraceExitRet(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	# write(1, msg, 5)
	li a0, 1
	la a1, msg
	li a2, 5
	li a7, 64
	ecall
	# exit(7)
	li a0, 7
	li a7, 93
	ecall
	.data
msg:
	.asciz "hello"
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ num, a0, a1, a2, ret uint64 }
	var trace []rec
	c.SyscallTrace = func(num, a0, a1, a2, ret uint64) {
		trace = append(trace, rec{num, a0, a1, a2, ret})
	}
	if r := c.Run(0); r != StopExit {
		t.Fatalf("stopped with %v", r)
	}
	if len(trace) != 2 {
		t.Fatalf("traced %d syscalls, want 2", len(trace))
	}
	w := trace[0]
	if w.num != 64 || w.ret != 5 {
		t.Errorf("write record = %+v, want num=64 ret=5", w)
	}
	e := trace[1]
	if e.num != 93 {
		t.Fatalf("exit record num = %d, want 93", e.num)
	}
	if e.a0 != 7 {
		t.Errorf("exit record a0 = %d, want 7 (the status)", e.a0)
	}
	if e.ret != 0 {
		t.Errorf("exit record ret = %d, want 0 (exit never returns a value)", e.ret)
	}
}

// TestMetricsCounters runs a self-modifying program with metrics attached
// and checks the obs counters agree with the architectural state.
func TestMetricsCounters(t *testing.T) {
	f, err := asm.Assemble(`
	.text
_start:
	li s0, 200
loop:
	addi s0, s0, -1
	bnez s0, loop
	call tgtfn         # first pass decodes and block-caches tgtfn
	# patch tgtfn's first instruction into a nop: a store into cached
	# code, which must bump the generation (invalidation #1)...
	la t0, tgtfn
	la t2, nopword
	lw t1, 0(t2)
	sw t1, 0(t0)
	call tgtfn         # re-decode and execute the patched code
	fence.i            # ...and an explicit flush (invalidation #2)
	li a0, 0
	li a7, 93
	ecall

	.globl tgtfn
	.type tgtfn, @function
tgtfn:
	addi zero, zero, 1
	ret
	.size tgtfn, .-tgtfn
	.data
nopword:
	.word 0x00000013
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Obs = NewMetrics(reg)
	if r := c.Run(0); r != StopExit {
		t.Fatalf("stopped with %v (%v)", r, c.LastTrap())
	}
	m := c.Obs
	if got := m.Instructions.Load(); got != c.Instret {
		t.Errorf("instructions counter = %d, Instret = %d", got, c.Instret)
	}
	if m.BlockHits.Load() == 0 {
		t.Error("no block-cache hits recorded for a 200-iteration loop")
	}
	if m.BlockBuilds.Load() == 0 {
		t.Error("no block builds recorded")
	}
	// One invalidation from the store into cached code, one from fence.i.
	if got := m.BlockInvalidations.Load(); got < 2 {
		t.Errorf("block invalidations = %d, want >= 2", got)
	}
	if got := m.Syscalls.Load(); got != 1 {
		t.Errorf("syscalls counter = %d, want 1", got)
	}
	if got := reg.Counter("emu.syscall.93").Load(); got != 1 {
		t.Errorf("per-number syscall counter = %d, want 1", got)
	}
}

// TestMetricsStateEquivalence: attaching metrics must not change a single
// bit of architectural state relative to the nil-sink run.
func TestMetricsStateEquivalence(t *testing.T) {
	src := `
	.text
_start:
	li s0, 0
	li s1, 50
sum:
	add s0, s0, s1
	addi s1, s1, -1
	bnez s1, sum
	mv a0, s0
	li a7, 93
	ecall
`
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(0)
	f2, _ := asm.Assemble(src, asm.Options{})
	metered, err := New(f2, P550())
	if err != nil {
		t.Fatal(err)
	}
	metered.Obs = NewMetrics(obs.NewRegistry())
	metered.Run(0)
	if plain.Instret != metered.Instret || plain.Cycles != metered.Cycles ||
		plain.ExitCode != metered.ExitCode || plain.X != metered.X {
		t.Fatalf("metrics changed execution: instret %d vs %d, cycles %d vs %d",
			plain.Instret, metered.Instret, plain.Cycles, metered.Cycles)
	}
}
