package emu

import (
	"fmt"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
)

// TestChainSeverOnSMC: a loop block ending in an ecall chains to its
// fallthrough block through a cached successor link. On one iteration the
// syscall (clock_gettime) writes its timespec over a function that was
// executed earlier — cached decodes are dirtied *during the terminator*, so
// the block completes normally and the next chain probe finds its cached
// successor at a stale generation. The link must sever and the successor
// re-decode; both dispatch paths end in identical state.
//
// (A body store into code can never produce a sever: it early-returns
// mid-block and the stale source block is discarded, links and all. Only a
// terminator-driven invalidation leaves a completed block probing its own
// stale chain.)
func TestChainSeverOnSMC(t *testing.T) {
	src := `
	.text
_start:
	jal ra, victim        # decode and cache victim's block
	li s0, 0              # iteration counter
	li s2, 6              # iterations
	la s3, scratch
	la s4, victim
loop:
	li a7, 113            # clock_gettime
	li a0, 0
	mv a1, s3             # timespec -> scratch (data)
	li t2, 3
	bne s0, t2, doit
	mv a1, s4             # iteration 3: timespec lands on victim's code
	j doit                # jump (not fallthrough) so every path enters the
doit:                         # same ecall block — the one with the warm chain
	ecall                 # terminator of the chained block
	addi s0, s0, 1
	bne s0, s2, loop
	li a0, 5
	li a7, 93
	ecall

victim:
	nop                   # 16 bytes of decoded, never-again-executed code
	nop
	nop
	nop
	ret

	.data
	.balign 8
scratch:
	.zero 16
`
	f, err := asm.Assemble(src, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fast.Obs = NewMetrics(reg)
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	if rf, rs := fast.Run(0), slow.Run(0); rf != rs {
		t.Fatalf("stop reason: fast %v, slow %v", rf, rs)
	}
	requireSameState(t, fast, slow)
	if fast.ExitCode != 5 {
		t.Errorf("exit code %d, want 5", fast.ExitCode)
	}
	if hits := reg.Counter("emu.chain.hits").Load(); hits == 0 {
		t.Error("chain hits = 0; the loop should dispatch through cached successor links")
	}
	if severs := reg.Counter("emu.chain.severs").Load(); severs == 0 {
		t.Error("chain severs = 0; patching a chained successor must sever the link")
	}
}

// fusePairProgram exercises every macro-op fusion kind in one binary:
// lui+addi, auipc+addi (via la), auipc+ld, slli+add, ld-pair, sd-pair, and
// the compare+branch / auipc+jalr fused terminators.
const fusePairProgram = `
	.text
_start:
	lui t0, 5             # lui+addi pair
	addi t1, t0, 100
	la t2, vals           # auipc+addi pair
	ld a2, 0(t2)          # ld-pair (vals, vals+8)
	ld a3, 8(t2)
	li s4, 2
	slli s5, s4, 3        # slli+add pair
	add s6, s5, t2
	sd a2, 16(t2)         # sd-pair (vals+16, vals+24)
	sd a3, 24(t2)
	auipc s7, 0           # auipc+ld pair: reads this instruction's own bytes
	ld s8, 0(s7)
	auipc s10, 0          # auipc+addi pair (la emits absolute lui+addi, so
	addi s10, s10, 8      # the pc-relative form needs spelling out)
	slt t3, a2, a3        # compare+branch fused terminator
	bne t3, zero, less
	li s9, 0
	j join
less:
	li s9, 1
join:
	callfar fin           # auipc+jalr fused terminator (Section 3.2.3 rung)
	add a0, s9, a4
	li a7, 93
	ecall
fin:
	li a4, 30
	ret

	.data
	.balign 8
vals:
	.dword 11
	.dword 22
	.dword 0
	.dword 0
`

// TestFusedPairsEquivalence: the fusion program ends bit-identical on both
// dispatch paths and the block builder actually recognized each pair kind.
func TestFusedPairsEquivalence(t *testing.T) {
	f, err := asm.Assemble(fusePairProgram, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fast.Obs = NewMetrics(reg)
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	if rf, rs := fast.Run(0), slow.Run(0); rf != rs {
		t.Fatalf("stop reason: fast %v, slow %v (fast trap %v)", rf, rs, fast.LastTrap())
	}
	requireSameState(t, fast, slow)
	if fast.ExitCode != 31 { // s9=1 (11 < 22) + a4=30
		t.Errorf("exit code %d, want 31", fast.ExitCode)
	}
	for k := 0; k < numFuseKinds; k++ {
		if got := reg.Counter("emu.fuse." + fuseKindNames[k]).Load(); got == 0 {
			t.Errorf("fuse kind %q never matched; program is meant to exercise all kinds", fuseKindNames[k])
		}
	}
}

// runBothTrap runs a program expected to trap on both paths and pins the trap
// PC and message to be identical, along with all architectural state.
func runBothTrap(t *testing.T, src string) {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	fast, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	slow.SlowDispatch = true
	rf, rs := fast.Run(0), slow.Run(0)
	if rf != StopTrap || rs != StopTrap {
		t.Fatalf("stop reason: fast %v, slow %v; want both StopTrap", rf, rs)
	}
	requireSameState(t, fast, slow)
	ft, st := fast.LastTrap(), slow.LastTrap()
	if ft == nil || st == nil {
		t.Fatalf("missing trap: fast %v, slow %v", ft, st)
	}
	if ft.Error() != st.Error() {
		t.Errorf("trap message differs:\n fast: %s\n slow: %s", ft.Error(), st.Error())
	}
	if !strings.Contains(ft.Error(), "unmapped") {
		t.Errorf("trap %q does not look like a memory fault", ft.Error())
	}
}

// TestFusedPairPartialFault: when the *second* constituent of a fused pair
// faults, the first must have fully retired — cycles, instret, and registers
// reflect exactly one committed instruction, identical to sequential
// stepping. StackTop+pageSize is the end of the mapped stack region, so a
// load pair based just below it faults only on its second slot.
func TestFusedPairPartialFault(t *testing.T) {
	edge := StackTop + pageSize // first unmapped byte above the stack

	t.Run("ld_pair_second_faults", func(t *testing.T) {
		runBothTrap(t, fmt.Sprintf(`
	.text
_start:
	li t0, %d
	ld a0, 0(t0)          # mapped: last 8 bytes of the stack region
	ld a1, 8(t0)          # unmapped: faults after a0 is written
	li a7, 93
	ecall
`, edge-8))
	})
	t.Run("ld_pair_first_faults", func(t *testing.T) {
		runBothTrap(t, fmt.Sprintf(`
	.text
_start:
	li t0, %d
	ld a0, 0(t0)          # unmapped: nothing in the pair retires
	ld a1, 8(t0)
	li a7, 93
	ecall
`, edge))
	})
	t.Run("sd_pair_second_faults", func(t *testing.T) {
		runBothTrap(t, fmt.Sprintf(`
	.text
_start:
	li t0, %d
	li t1, 1234
	sd t1, 0(t0)          # mapped
	sd t1, 8(t0)          # unmapped: faults after the first store lands
	li a7, 93
	ecall
`, edge-8))
	})
	t.Run("auipc_ld_faults", func(t *testing.T) {
		runBothTrap(t, `
	.text
_start:
	auipc t0, 524287      # pc + 0x7ffff000: far above every mapping
	ld a0, 0(t0)          # faults; the auipc result must still be in t0
	li a7, 93
	ecall
`)
	})
}
