package emu

import "rvdyn/internal/riscv"

// CostModel assigns a deterministic cycle cost to every instruction and
// fixes the core clock, from which the emulator derives virtual wall time.
//
// Two models reproduce the two columns of the paper's results table:
//
//   - P550: an in-order core at 1.4 GHz with latencies typical of the
//     SiFive P550 class (multi-cycle loads, long divides, pipelined FP).
//   - X86Comparator: the stand-in for the paper's Intel i5-14600T column.
//     We do not emulate x86; the comparator executes the same RISC-V
//     workload on a flat one-cycle cost model with an effective clock
//     calibrated so the *base* run lands near the paper's x86/RISC-V base
//     ratio (0.1606 s vs 1.2923 s ≈ 8×). What distinguishes the two columns
//     scientifically is not this calibration but the code-generation mode:
//     the x86 column is measured with spill-always snippets (the paper's
//     "current x86 implementation"), the RISC-V column with dead-register
//     allocation (the optimization the port introduced). See the codegen
//     and bench packages.
type CostModel struct {
	Name string
	// MHz is the core clock in megahertz; virtual nanoseconds are
	// cycles*1000/MHz.
	MHz uint64
	// BranchTakenPenalty is added to a conditional branch when taken.
	BranchTakenPenalty uint64

	costs []uint64 // indexed by riscv.Mnemonic
}

// Cost returns the cycle cost of one instruction.
func (c *CostModel) Cost(mn riscv.Mnemonic) uint64 {
	if int(mn) < len(c.costs) {
		return c.costs[mn]
	}
	return 1
}

// Nanos converts a cycle count to virtual nanoseconds.
func (c *CostModel) Nanos(cycles uint64) uint64 {
	return cycles * 1000 / c.MHz
}

func newModel(name string, mhz, taken uint64, base uint64) *CostModel {
	m := &CostModel{Name: name, MHz: mhz, BranchTakenPenalty: taken,
		costs: make([]uint64, riscv.NumMnemonics())}
	for i := range m.costs {
		m.costs[i] = base
	}
	return m
}

func (c *CostModel) set(cost uint64, mns ...riscv.Mnemonic) {
	for _, mn := range mns {
		c.costs[mn] = cost
	}
}

// P550 models the paper's RISC-V platform: a 1.4 GHz SiFive P550.
func P550() *CostModel {
	m := newModel("sifive-p550", 1400, 1, 1)
	m.set(3, riscv.MnLB, riscv.MnLH, riscv.MnLW, riscv.MnLD,
		riscv.MnLBU, riscv.MnLHU, riscv.MnLWU, riscv.MnFLW, riscv.MnFLD)
	m.set(1, riscv.MnSB, riscv.MnSH, riscv.MnSW, riscv.MnSD, riscv.MnFSW, riscv.MnFSD)
	m.set(3, riscv.MnMUL, riscv.MnMULH, riscv.MnMULHSU, riscv.MnMULHU, riscv.MnMULW)
	m.set(20, riscv.MnDIV, riscv.MnDIVU, riscv.MnREM, riscv.MnREMU,
		riscv.MnDIVW, riscv.MnDIVUW, riscv.MnREMW, riscv.MnREMUW)
	m.set(2, riscv.MnJALR)
	m.set(4, riscv.MnFADDS, riscv.MnFSUBS, riscv.MnFMULS,
		riscv.MnFADDD, riscv.MnFSUBD, riscv.MnFMULD)
	m.set(5, riscv.MnFMADDS, riscv.MnFMSUBS, riscv.MnFNMSUBS, riscv.MnFNMADDS,
		riscv.MnFMADDD, riscv.MnFMSUBD, riscv.MnFNMSUBD, riscv.MnFNMADDD)
	m.set(25, riscv.MnFDIVS, riscv.MnFDIVD)
	m.set(30, riscv.MnFSQRTS, riscv.MnFSQRTD)
	m.set(2, riscv.MnFCVTWS, riscv.MnFCVTWUS, riscv.MnFCVTLS, riscv.MnFCVTLUS,
		riscv.MnFCVTSW, riscv.MnFCVTSWU, riscv.MnFCVTSL, riscv.MnFCVTSLU,
		riscv.MnFCVTWD, riscv.MnFCVTWUD, riscv.MnFCVTLD, riscv.MnFCVTLUD,
		riscv.MnFCVTDW, riscv.MnFCVTDWU, riscv.MnFCVTDL, riscv.MnFCVTDLU,
		riscv.MnFCVTSD, riscv.MnFCVTDS)
	m.set(5, riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI)
	m.set(10, riscv.MnFENCE, riscv.MnFENCEI)
	m.set(8, riscv.MnLRW, riscv.MnLRD, riscv.MnSCW, riscv.MnSCD,
		riscv.MnAMOSWAPW, riscv.MnAMOADDW, riscv.MnAMOXORW, riscv.MnAMOANDW,
		riscv.MnAMOORW, riscv.MnAMOMINW, riscv.MnAMOMAXW, riscv.MnAMOMINUW,
		riscv.MnAMOMAXUW, riscv.MnAMOSWAPD, riscv.MnAMOADDD, riscv.MnAMOXORD,
		riscv.MnAMOANDD, riscv.MnAMOORD, riscv.MnAMOMIND, riscv.MnAMOMAXD,
		riscv.MnAMOMINUD, riscv.MnAMOMAXUD)
	m.set(150, riscv.MnECALL)
	return m
}

// X86Comparator is the stand-in for the paper's x86 column: a flat
// superscalar-ish cost model with an effective clock calibrated to land the
// base run near the paper's 8× base-time ratio.
func X86Comparator() *CostModel {
	return newModel("x86-comparator", 11200, 0, 1)
}
