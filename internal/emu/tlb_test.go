package emu

import (
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// TestTLBPageStraddle: fixed-width accesses that straddle a page boundary
// must split correctly across the two pages on both the read and write
// paths, and fault when either half is unmapped.
func TestTLBPageStraddle(t *testing.T) {
	m := NewMemory()
	m.Map(0x10000, 2*pageSize)
	boundary := uint64(0x10000 + pageSize)

	for _, addr := range []uint64{boundary - 7, boundary - 4, boundary - 1} {
		want := 0x1122334455667788 ^ addr
		if err := m.Write64(addr, want); err != nil {
			t.Fatalf("Write64(%#x): %v", addr, err)
		}
		got, err := m.Read64(addr)
		if err != nil {
			t.Fatalf("Read64(%#x): %v", addr, err)
		}
		if got != want {
			t.Errorf("Read64(%#x) = %#x, want %#x", addr, got, want)
		}
	}
	if err := m.Write32(boundary-2, 0xdeadbeef); err != nil {
		t.Fatalf("Write32 straddle: %v", err)
	}
	if v, err := m.Read32(boundary - 2); err != nil || v != 0xdeadbeef {
		t.Errorf("Read32 straddle = %#x, %v; want 0xdeadbeef", v, err)
	}
	if err := m.Write16(boundary-1, 0xabcd); err != nil {
		t.Fatalf("Write16 straddle: %v", err)
	}
	if v, err := m.Read16(boundary - 1); err != nil || v != 0xabcd {
		t.Errorf("Read16 straddle = %#x, %v; want 0xabcd", v, err)
	}

	// A straddle whose second half is unmapped must fault, and the fault
	// address must point at the unmapped page, not the mapped first half.
	end := uint64(0x10000 + 2*pageSize)
	if _, err := m.Read64(end - 4); err == nil {
		t.Error("Read64 into unmapped second page succeeded")
	} else if f, ok := err.(*MemFault); !ok || f.Addr != end {
		t.Errorf("fault = %v, want MemFault at %#x", err, end)
	}
	if err := m.Write64(end-4, 1); err == nil {
		t.Error("Write64 into unmapped second page succeeded")
	}
	// The partial write before the fault is the documented WriteBytes
	// behaviour (it mirrors a page-granular MMU); the mapped half holds
	// the written prefix.
}

// TestTLBMapOverExistingPage: re-Mapping a live range must keep the existing
// pages and their contents (Map is idempotent), flush the TLBs, and leave
// every translation coherent afterwards.
func TestTLBMapOverExistingPage(t *testing.T) {
	m := NewMemory()
	m.Map(0x20000, pageSize)
	if err := m.Write64(0x20010, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	// Warm the read TLB, then re-map over the same page plus a neighbour.
	if v, _ := m.Read64(0x20010); v != 0xfeedface {
		t.Fatalf("pre-remap read = %#x", v)
	}
	missesBefore := m.TLB.ReadMisses
	m.Map(0x20000, 2*pageSize)
	if v, err := m.Read64(0x20010); err != nil || v != 0xfeedface {
		t.Fatalf("Map over existing page lost contents: %#x, %v", v, err)
	}
	if m.TLB.ReadMisses == missesBefore {
		t.Error("Map did not flush the read TLB (re-read hit a stale entry)")
	}
	// The newly mapped neighbour must be zeroed and accessible.
	if v, err := m.Read64(0x20000 + pageSize); err != nil || v != 0 {
		t.Errorf("new neighbour page = %#x, %v; want 0", v, err)
	}
}

// TestTLBStaleWriteAfterInvalidation: a store that goes through an
// already-warm write-TLB entry into cached code must still trigger icache
// invalidation — the TLB caches translations, never coherence state. The
// program warms the write TLB with a data-style store into its own code
// page, then patches an instruction through the same warm entry; the
// patched code must execute on both dispatch paths.
func TestTLBStaleWriteAfterInvalidation(t *testing.T) {
	src := fmt.Sprintf(`
	.text
_start:
	la t0, scratch
	li t1, %d             # encoding of "addi a0, zero, 42"
	sd zero, 0(t0)        # warm the write TLB for the code page
	la t2, patchme
	sw t1, 0(t2)          # patch through the warm entry
	li a0, 0
patchme:
	addi a0, zero, 7      # replaced before it executes
	li a7, 93
	ecall
	.balign 8
scratch:
	.dword 0              # same section/page as the code above
`, patchWord(t))
	fast, slow := runBoth(t, src, asm.Options{NoCompress: true})
	requireSameState(t, fast, slow)
	if fast.ExitCode != 42 {
		t.Errorf("exit code %d, want 42 (patch through warm TLB entry not honoured)", fast.ExitCode)
	}
}

// TestTLBCountersMatmul: the per-kind TLB counters must show a high read hit
// rate on the matmul workload (the point of replacing the one-entry page
// cache) and must reach the obs registry through the Run-return sync.
func TestTLBCountersMatmul(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(12, 2), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Obs = NewMetrics(reg)
	before := c.Mem.TLB // LoadELF already probed the write TLB
	if r := c.Run(0); r != StopExit {
		t.Fatalf("stopped with %v (%v)", r, c.LastTrap())
	}
	tl := c.Mem.TLB
	if tl.ReadHits == 0 || tl.WriteHits == 0 {
		t.Fatalf("TLB saw no hits: %+v", tl)
	}
	if rate := float64(tl.ReadHits) / float64(tl.ReadHits+tl.ReadMisses); rate < 0.95 {
		t.Errorf("read TLB hit rate %.3f, want >= 0.95 (stats %+v)", rate, tl)
	}
	// The obs registry receives the delta accumulated during Run, not the
	// pre-Run probes LoadELF makes while populating memory.
	if got := reg.Counter("emu.tlb.read.hits").Load(); got != tl.ReadHits-before.ReadHits {
		t.Errorf("obs emu.tlb.read.hits = %d, Run delta = %d", got, tl.ReadHits-before.ReadHits)
	}
	if got := reg.Counter("emu.tlb.write.misses").Load(); got != tl.WriteMisses-before.WriteMisses {
		t.Errorf("obs emu.tlb.write.misses = %d, Run delta = %d", got, tl.WriteMisses-before.WriteMisses)
	}
}
