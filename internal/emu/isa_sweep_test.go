package emu

import (
	"math/bits"
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// execOne runs a single instruction against prepared register/memory state
// and returns the CPU — a direct-drive harness for sweeping the ISA matrix
// without assembling programs.
func execOne(t *testing.T, inst riscv.Inst, setup func(*CPU)) *CPU {
	t.Helper()
	w, err := riscv.Encode(inst)
	if err != nil {
		t.Fatalf("encode %v: %v", inst, err)
	}
	eb := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	code := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24),
		byte(eb), byte(eb >> 8), byte(eb >> 16), byte(eb >> 24)}
	f := &elfrv.File{
		Entry: 0x10000,
		Sections: []*elfrv.Section{
			{Name: ".text", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
				Addr: 0x10000, Data: code, Align: 4},
			{Name: ".data", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
				Addr: 0x20000, Data: make([]byte, 256), Align: 8},
		},
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(c)
	}
	if r := c.Run(10); r != StopBreakpoint {
		t.Fatalf("%v: stopped %v (%v)", inst, r, c.LastTrap())
	}
	return c
}

func rr(mn riscv.Mnemonic) riscv.Inst {
	return riscv.Inst{Mn: mn, Rd: riscv.RegA0, Rs1: riscv.RegA1, Rs2: riscv.RegA2, Rs3: riscv.RegNone}
}

// TestMExtensionHighMultiplies sweeps mulh/mulhu/mulhsu against math/bits.
func TestMExtensionHighMultiplies(t *testing.T) {
	vals := []uint64{0, 1, 2, 0xffffffffffffffff, 0x8000000000000000,
		0x7fffffffffffffff, 12345678901234567, 0xdeadbeefcafebabe}
	for _, a := range vals {
		for _, b := range vals {
			set := func(c *CPU) {
				c.X[riscv.RegA1] = a
				c.X[riscv.RegA2] = b
			}
			c := execOne(t, rr(riscv.MnMULHU), set)
			hi, _ := bits.Mul64(a, b)
			if c.X[riscv.RegA0] != hi {
				t.Fatalf("mulhu(%#x,%#x) = %#x, want %#x", a, b, c.X[riscv.RegA0], hi)
			}
			c = execOne(t, rr(riscv.MnMULH), set)
			// Signed high product via 128-bit arithmetic emulated with
			// bits.Mul64 sign corrections (the reference formula).
			want := hi
			if int64(a) < 0 {
				want -= b
			}
			if int64(b) < 0 {
				want -= a
			}
			if c.X[riscv.RegA0] != want {
				t.Fatalf("mulh(%#x,%#x) = %#x, want %#x", a, b, c.X[riscv.RegA0], want)
			}
			c = execOne(t, rr(riscv.MnMULHSU), set)
			want = hi
			if int64(a) < 0 {
				want -= b
			}
			if c.X[riscv.RegA0] != want {
				t.Fatalf("mulhsu(%#x,%#x) = %#x, want %#x", a, b, c.X[riscv.RegA0], want)
			}
		}
	}
}

// TestAMOSweep drives every AMO against a Go reference implementation.
func TestAMOSweep(t *testing.T) {
	type ref64 func(old, src uint64) uint64
	cases := []struct {
		mn riscv.Mnemonic
		f  ref64
	}{
		{riscv.MnAMOSWAPD, func(o, s uint64) uint64 { return s }},
		{riscv.MnAMOADDD, func(o, s uint64) uint64 { return o + s }},
		{riscv.MnAMOXORD, func(o, s uint64) uint64 { return o ^ s }},
		{riscv.MnAMOANDD, func(o, s uint64) uint64 { return o & s }},
		{riscv.MnAMOORD, func(o, s uint64) uint64 { return o | s }},
		{riscv.MnAMOMIND, func(o, s uint64) uint64 {
			if int64(s) < int64(o) {
				return s
			}
			return o
		}},
		{riscv.MnAMOMAXD, func(o, s uint64) uint64 {
			if int64(s) > int64(o) {
				return s
			}
			return o
		}},
		{riscv.MnAMOMINUD, func(o, s uint64) uint64 {
			if s < o {
				return s
			}
			return o
		}},
		{riscv.MnAMOMAXUD, func(o, s uint64) uint64 {
			if s > o {
				return s
			}
			return o
		}},
	}
	pairs := [][2]uint64{{5, 3}, {3, 5}, {0xffffffffffffffff, 1}, {1, 0xffffffffffffffff},
		{0x8000000000000000, 0x7fffffffffffffff}}
	for _, cse := range cases {
		for _, p := range pairs {
			old, src := p[0], p[1]
			c := execOne(t, rr(cse.mn), func(c *CPU) {
				c.X[riscv.RegA1] = 0x20010
				c.X[riscv.RegA2] = src
				c.Mem.Write64(0x20010, old)
			})
			if c.X[riscv.RegA0] != old {
				t.Fatalf("%v: rd = %#x, want old %#x", cse.mn, c.X[riscv.RegA0], old)
			}
			got, _ := c.Mem.Read64(0x20010)
			if got != cse.f(old, src) {
				t.Fatalf("%v(%#x,%#x): mem = %#x, want %#x", cse.mn, old, src, got, cse.f(old, src))
			}
		}
	}
	// Word-width variants sign-extend the old value into rd and operate on
	// 32 bits.
	c := execOne(t, rr(riscv.MnAMOADDW), func(c *CPU) {
		c.X[riscv.RegA1] = 0x20010
		c.X[riscv.RegA2] = 1
		c.Mem.Write32(0x20010, 0xffffffff)
	})
	if c.X[riscv.RegA0] != 0xffffffffffffffff {
		t.Errorf("amoadd.w old not sign-extended: %#x", c.X[riscv.RegA0])
	}
	if got, _ := c.Mem.Read32(0x20010); got != 0 {
		t.Errorf("amoadd.w wrap = %#x", got)
	}
	for _, mn := range []riscv.Mnemonic{riscv.MnAMOSWAPW, riscv.MnAMOXORW, riscv.MnAMOANDW,
		riscv.MnAMOORW, riscv.MnAMOMINW, riscv.MnAMOMAXW, riscv.MnAMOMINUW, riscv.MnAMOMAXUW} {
		execOne(t, rr(mn), func(c *CPU) {
			c.X[riscv.RegA1] = 0x20010
			c.X[riscv.RegA2] = 7
			c.Mem.Write32(0x20010, 3)
		})
	}
}

// TestNarrowLoadsStores sweeps byte/half widths including sign extension.
func TestNarrowLoadsStores(t *testing.T) {
	mem := func(c *CPU) {
		c.X[riscv.RegA1] = 0x20010
		c.Mem.Write64(0x20010, 0x80ff7f0180ff7f01)
	}
	ld := func(mn riscv.Mnemonic, off int64) uint64 {
		i := riscv.Inst{Mn: mn, Rd: riscv.RegA0, Rs1: riscv.RegA1,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: off}
		return execOne(t, i, mem).X[riscv.RegA0]
	}
	if got := ld(riscv.MnLB, 1); got != 0x7f {
		t.Errorf("lb +1 = %#x", got)
	}
	if got := ld(riscv.MnLB, 3); int64(got) != -128 {
		t.Errorf("lb +3 = %d", int64(got))
	}
	if got := ld(riscv.MnLBU, 3); got != 0x80 {
		t.Errorf("lbu +3 = %#x", got)
	}
	if got := ld(riscv.MnLH, 2); int64(got) != -32513 { // 0x80ff
		t.Errorf("lh +2 = %d", int64(got))
	}
	if got := ld(riscv.MnLHU, 2); got != 0x80ff {
		t.Errorf("lhu +2 = %#x", got)
	}
	if got := ld(riscv.MnLWU, 4); got != 0x80ff7f01 {
		t.Errorf("lwu +4 = %#x", got)
	}
	// Narrow stores leave neighbours intact.
	st := func(mn riscv.Mnemonic, off int64, v uint64) *CPU {
		i := riscv.Inst{Mn: mn, Rs1: riscv.RegA1, Rs2: riscv.RegA2,
			Rd: riscv.RegNone, Rs3: riscv.RegNone, Imm: off}
		return execOne(t, i, func(c *CPU) {
			mem(c)
			c.X[riscv.RegA2] = v
		})
	}
	c := st(riscv.MnSB, 2, 0xaa)
	got, _ := c.Mem.Read64(0x20010)
	if got != 0x80ff7f0180aa7f01 {
		t.Errorf("sb neighbour damage: %#x", got)
	}
	c = st(riscv.MnSH, 4, 0xbbbb)
	got, _ = c.Mem.Read64(0x20010)
	if got != 0x80ffbbbb80ff7f01 {
		t.Errorf("sh neighbour damage: %#x", got)
	}
}

// TestShiftEdgeCases: shift amounts mask to 6 bits (64-bit) / 5 bits (W).
func TestShiftEdgeCases(t *testing.T) {
	c := execOne(t, rr(riscv.MnSLL), func(c *CPU) {
		c.X[riscv.RegA1] = 1
		c.X[riscv.RegA2] = 64 + 3 // masks to 3
	})
	if c.X[riscv.RegA0] != 8 {
		t.Errorf("sll with shamt 67 = %d, want 8", c.X[riscv.RegA0])
	}
	c = execOne(t, rr(riscv.MnSRAW), func(c *CPU) {
		c.X[riscv.RegA1] = 0x80000000
		c.X[riscv.RegA2] = 31
	})
	if int64(c.X[riscv.RegA0]) != -1 {
		t.Errorf("sraw(0x80000000, 31) = %d, want -1", int64(c.X[riscv.RegA0]))
	}
	c = execOne(t, rr(riscv.MnSRLW), func(c *CPU) {
		c.X[riscv.RegA1] = 0xffffffff00000010
		c.X[riscv.RegA2] = 4
	})
	if c.X[riscv.RegA0] != 1 {
		t.Errorf("srlw truncation = %#x", c.X[riscv.RegA0])
	}
}

// execRaw runs prepared raw code bytes (compressed forms included) until the
// terminating ebreak — the variant of execOne for RVC encodings, which
// riscv.Encode cannot produce.
func execRaw(t *testing.T, code []byte, setup func(*CPU)) *CPU {
	t.Helper()
	eb := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	code = append(append([]byte{}, code...),
		byte(eb), byte(eb>>8), byte(eb>>16), byte(eb>>24))
	f := &elfrv.File{
		Entry: 0x10000,
		Sections: []*elfrv.Section{
			{Name: ".text", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
				Addr: 0x10000, Data: code, Align: 4},
			{Name: ".data", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
				Addr: 0x20000, Data: make([]byte, 256), Align: 8},
		},
	}
	c, err := New(f, P550())
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(c)
	}
	if r := c.Run(64); r != StopBreakpoint {
		t.Fatalf("stopped %v (%v)", r, c.LastTrap())
	}
	return c
}

func mustCompress(t *testing.T, inst riscv.Inst) []byte {
	t.Helper()
	half, ok := riscv.Compress(inst)
	if !ok {
		t.Fatalf("%v does not compress", inst)
	}
	return []byte{byte(half), byte(half >> 8)}
}

// TestCompressedFPLoadStore executes the RVC double-precision memory forms —
// c.fld, c.fsd, c.fldsp, c.fsdsp — from their genuine 16-bit encodings.
func TestCompressedFPLoadStore(t *testing.T) {
	const val = 0x400921fb54442d18 // bits of float64 pi

	// c.fld f8, 8(s0); base in the RVC x8-x15 window.
	code := mustCompress(t, riscv.Inst{Mn: riscv.MnFLD, Rd: riscv.F8, Rs1: riscv.X8, Imm: 8})
	c := execRaw(t, code, func(c *CPU) {
		c.X[riscv.X8] = 0x20000
		c.Mem.Write64(0x20008, val)
	})
	if c.F[8] != val {
		t.Errorf("c.fld: F8 = %#x, want %#x", c.F[8], val)
	}

	// c.fsd f9, 16(s0).
	code = mustCompress(t, riscv.Inst{Mn: riscv.MnFSD, Rs1: riscv.X8, Rs2: riscv.F9, Imm: 16})
	c = execRaw(t, code, func(c *CPU) {
		c.X[riscv.X8] = 0x20000
		c.F[9] = val
	})
	if got, _ := c.Mem.Read64(0x20010); got != val {
		t.Errorf("c.fsd: mem = %#x, want %#x", got, val)
	}

	// c.fldsp f10, 24(sp); the stack is mapped by New.
	code = mustCompress(t, riscv.Inst{Mn: riscv.MnFLD, Rd: riscv.F10, Rs1: riscv.RegSP, Imm: 24})
	c = execRaw(t, code, func(c *CPU) {
		c.Mem.Write64(c.X[riscv.RegSP]+24, val)
	})
	if c.F[10] != val {
		t.Errorf("c.fldsp: F10 = %#x, want %#x", c.F[10], val)
	}

	// c.fsdsp f11, 32(sp).
	code = mustCompress(t, riscv.Inst{Mn: riscv.MnFSD, Rs1: riscv.RegSP, Rs2: riscv.F11, Imm: 32})
	c = execRaw(t, code, func(c *CPU) {
		c.F[11] = val
	})
	if got, _ := c.Mem.Read64(c.X[riscv.RegSP] + 32); got != val {
		t.Errorf("c.fsdsp: mem = %#x, want %#x", got, val)
	}
}

// TestAMOWordSignExtension: the old word loaded into rd is sign-extended for
// every .w AMO — including the unsigned min/max flavours, whose comparison
// is unsigned but whose rd write-back still sign-extends.
func TestAMOWordSignExtension(t *testing.T) {
	amo := func(mn riscv.Mnemonic, old uint32, src uint64) *CPU {
		return execOne(t, rr(mn), func(c *CPU) {
			c.X[riscv.RegA1] = 0x20000
			c.X[riscv.RegA2] = src
			c.Mem.Write32(0x20000, old)
		})
	}
	cases := []struct {
		mn      riscv.Mnemonic
		old     uint32
		src     uint64
		wantRd  uint64
		wantMem uint32
	}{
		{riscv.MnAMOADDW, 0xffffffff, 1, ^uint64(0), 0},                            // wrap + sext
		{riscv.MnAMOSWAPW, 0x80000000, 7, 0xffffffff80000000, 7},                   // sext of old
		{riscv.MnAMOMAXW, 0x80000000, 5, 0xffffffff80000000, 5},                    // signed: 5 wins
		{riscv.MnAMOMINW, 0x7fffffff, ^uint64(0), 0x7fffffff, 0xffffffff},          // signed: -1 wins
		{riscv.MnAMOMAXUW, 0x80000000, 1, 0xffffffff80000000, 0x80000000},          // unsigned: old wins
		{riscv.MnAMOMINUW, 0xfffffffe, ^uint64(0), 0xfffffffffffffffe, 0xfffffffe}, // unsigned min keeps old
		{riscv.MnAMOANDW, 0xf0f0f0f0, 0xffffffffffff0000, 0xfffffffff0f0f0f0, 0xf0f00000},
		{riscv.MnAMOORW, 0x80000001, 2, 0xffffffff80000001, 0x80000003},
		{riscv.MnAMOXORW, 0xffffffff, 0x0f, ^uint64(0), 0xfffffff0},
	}
	for _, tc := range cases {
		c := amo(tc.mn, tc.old, tc.src)
		if c.X[riscv.RegA0] != tc.wantRd {
			t.Errorf("%v: rd = %#x, want %#x", tc.mn, c.X[riscv.RegA0], tc.wantRd)
		}
		if got, _ := c.Mem.Read32(0x20000); got != tc.wantMem {
			t.Errorf("%v: mem = %#x, want %#x", tc.mn, got, tc.wantMem)
		}
	}
}

// TestDivRemSpecialCases: RISC-V division never traps — by-zero and the lone
// signed overflow have architected results, in both 64-bit and word widths.
func TestDivRemSpecialCases(t *testing.T) {
	run := func(mn riscv.Mnemonic, a, b uint64) uint64 {
		c := execOne(t, rr(mn), func(c *CPU) {
			c.X[riscv.RegA1] = a
			c.X[riscv.RegA2] = b
		})
		return c.X[riscv.RegA0]
	}
	minI64 := uint64(1) << 63
	minI32 := uint64(0xffffffff80000000)
	neg1 := ^uint64(0)
	cases := []struct {
		name string
		mn   riscv.Mnemonic
		a, b uint64
		want uint64
	}{
		{"div overflow", riscv.MnDIV, minI64, neg1, minI64},
		{"rem overflow", riscv.MnREM, minI64, neg1, 0},
		{"div by zero", riscv.MnDIV, 42, 0, neg1},
		{"rem by zero", riscv.MnREM, 42, 0, 42},
		{"divu by zero", riscv.MnDIVU, 42, 0, neg1},
		{"remu by zero", riscv.MnREMU, 42, 0, 42},
		{"divw overflow", riscv.MnDIVW, minI32, neg1, minI32},
		{"remw overflow", riscv.MnREMW, minI32, neg1, 0},
		{"divw by zero", riscv.MnDIVW, 7, 0, neg1},
		{"remw by zero", riscv.MnREMW, 7, 0, 7},
		{"divuw by zero", riscv.MnDIVUW, 7, 0, neg1},
		{"remuw by zero sext", riscv.MnREMUW, minI32, 0, minI32},
	}
	for _, tc := range cases {
		if got := run(tc.mn, tc.a, tc.b); got != tc.want {
			t.Errorf("%s: %v(%#x, %#x) = %#x, want %#x", tc.name, tc.mn, tc.a, tc.b, got, tc.want)
		}
	}
}
