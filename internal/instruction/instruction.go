// Package instruction is the InstructionAPI analog (paper Section 3.2.2):
// an ISA-independent object view of machine instructions. Where Dyninst
// builds this layer on the Capstone disassembler, this reproduction builds
// it on the riscv package's decoder, which provides the same contract
// Capstone v6 does — mnemonic, per-operand read/write access, implicit
// register effects, and memory-operand sizes.
package instruction

import (
	"fmt"

	"rvdyn/internal/riscv"
)

// OperandKind classifies one operand.
type OperandKind int

const (
	OperandReg OperandKind = iota
	OperandImm
	OperandMem
)

// Operand is one abstract operand with its access information — the
// information whose absence from Capstone's RISC-V support before v6.0.0
// the paper's authors had to fix upstream.
type Operand struct {
	Kind    OperandKind
	Reg     riscv.Reg // for OperandReg
	Imm     int64     // for OperandImm
	Base    riscv.Reg // for OperandMem
	Offset  int64     // for OperandMem
	Width   int       // memory access width in bytes
	Read    bool
	Written bool
}

func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return o.Reg.String()
	case OperandImm:
		return fmt.Sprintf("%d", o.Imm)
	case OperandMem:
		return fmt.Sprintf("%d(%s)", o.Offset, o.Base)
	}
	return "?"
}

// Instruction is the abstract instruction object.
type Instruction struct {
	riscv.Inst
}

// Operands returns the abstract operand list with access flags.
func (in Instruction) Operands() []Operand {
	i := in.Inst
	var ops []Operand
	switch i.Cat() {
	case riscv.CatLoad:
		ops = append(ops,
			Operand{Kind: OperandReg, Reg: i.Rd, Written: true},
			Operand{Kind: OperandMem, Base: i.Rs1, Offset: i.Imm, Width: i.MemWidth(), Read: true})
	case riscv.CatStore:
		ops = append(ops,
			Operand{Kind: OperandReg, Reg: i.Rs2, Read: true},
			Operand{Kind: OperandMem, Base: i.Rs1, Offset: i.Imm, Width: i.MemWidth(), Written: true})
	case riscv.CatAMO:
		ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rd, Written: true})
		if i.Rs2 != riscv.RegNone {
			ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rs2, Read: true})
		}
		ops = append(ops, Operand{Kind: OperandMem, Base: i.Rs1, Width: i.MemWidth(), Read: true, Written: i.Mn != riscv.MnLRW && i.Mn != riscv.MnLRD})
	case riscv.CatBranch:
		ops = append(ops,
			Operand{Kind: OperandReg, Reg: i.Rs1, Read: true},
			Operand{Kind: OperandReg, Reg: i.Rs2, Read: true},
			Operand{Kind: OperandImm, Imm: i.Imm})
	case riscv.CatJAL:
		ops = append(ops,
			Operand{Kind: OperandReg, Reg: i.Rd, Written: true},
			Operand{Kind: OperandImm, Imm: i.Imm})
	case riscv.CatJALR:
		ops = append(ops,
			Operand{Kind: OperandReg, Reg: i.Rd, Written: true},
			Operand{Kind: OperandMem, Base: i.Rs1, Offset: i.Imm, Read: false})
	default:
		if i.Rd != riscv.RegNone {
			ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rd, Written: true})
		}
		if i.Rs1 != riscv.RegNone {
			ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rs1, Read: true})
		}
		if i.Rs2 != riscv.RegNone {
			ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rs2, Read: true})
		}
		if i.Rs3 != riscv.RegNone && i.Rs3 != 0 {
			ops = append(ops, Operand{Kind: OperandReg, Reg: i.Rs3, Read: true})
		}
		if hasImmOperand(i.Mn) {
			ops = append(ops, Operand{Kind: OperandImm, Imm: i.Imm})
		}
	}
	return ops
}

func hasImmOperand(mn riscv.Mnemonic) bool {
	switch mn {
	case riscv.MnADDI, riscv.MnSLTI, riscv.MnSLTIU, riscv.MnXORI, riscv.MnORI,
		riscv.MnANDI, riscv.MnSLLI, riscv.MnSRLI, riscv.MnSRAI, riscv.MnADDIW,
		riscv.MnSLLIW, riscv.MnSRLIW, riscv.MnSRAIW, riscv.MnLUI, riscv.MnAUIPC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		return true
	}
	return false
}

// Decoder decodes instructions from a byte image, rejecting instructions
// from extensions outside the binary's advertised set. This is how the
// paper's port reconciles Capstone's fixed RV64GC profile with the
// per-binary extension list from SymtabAPI.
type Decoder struct {
	// Arch restricts decoding; zero means RV64GC.
	Arch riscv.ExtSet
}

// Decode decodes one instruction at addr.
func (d Decoder) Decode(b []byte, addr uint64) (Instruction, error) {
	inst, err := riscv.Decode(b, addr)
	if err != nil {
		return Instruction{Inst: inst}, err
	}
	arch := d.Arch
	if arch == 0 {
		arch = riscv.RV64GC
	}
	if !arch.Has(inst.Mn.Ext()) {
		return Instruction{Inst: inst}, fmt.Errorf(
			"instruction: %v at %#x requires %v outside binary's %v",
			inst.Mn, addr, inst.Mn.Ext(), arch)
	}
	if inst.Compressed && !arch.Has(riscv.ExtC) {
		return Instruction{Inst: inst}, fmt.Errorf(
			"instruction: compressed encoding at %#x but binary does not advertise C", addr)
	}
	return Instruction{Inst: inst}, nil
}

// DecodeAll decodes a linear range, stopping at the first error.
func (d Decoder) DecodeAll(b []byte, addr uint64) ([]Instruction, error) {
	var out []Instruction
	for off := 0; off < len(b); {
		in, err := d.Decode(b[off:], addr+uint64(off))
		if err != nil {
			return out, err
		}
		out = append(out, in)
		off += in.Len
	}
	return out, nil
}
