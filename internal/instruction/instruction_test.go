package instruction

import (
	"testing"

	"rvdyn/internal/riscv"
)

func enc(t *testing.T, i riscv.Inst) []byte {
	t.Helper()
	b, err := riscv.EncodeBytes(i)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mk(mn riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64) riscv.Inst {
	return riscv.Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone, Imm: imm, RM: riscv.RMDyn}
}

func TestOperandAccessLoad(t *testing.T) {
	d := Decoder{}
	in, err := d.Decode(enc(t, mk(riscv.MnLD, riscv.RegA0, riscv.RegSP, riscv.RegNone, 16)), 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := in.Operands()
	if len(ops) != 2 {
		t.Fatalf("ld operands = %v", ops)
	}
	if ops[0].Kind != OperandReg || !ops[0].Written || ops[0].Read {
		t.Errorf("ld rd access = %+v", ops[0])
	}
	if ops[1].Kind != OperandMem || !ops[1].Read || ops[1].Written ||
		ops[1].Base != riscv.RegSP || ops[1].Offset != 16 || ops[1].Width != 8 {
		t.Errorf("ld mem operand = %+v", ops[1])
	}
}

func TestOperandAccessStore(t *testing.T) {
	d := Decoder{}
	in, err := d.Decode(enc(t, mk(riscv.MnSW, riscv.RegNone, riscv.RegA0, riscv.RegA1, -4)), 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := in.Operands()
	if len(ops) != 2 {
		t.Fatalf("sw operands = %v", ops)
	}
	if !ops[0].Read || ops[0].Written || ops[0].Reg != riscv.RegA1 {
		t.Errorf("sw source = %+v", ops[0])
	}
	if !ops[1].Written || ops[1].Read || ops[1].Width != 4 {
		t.Errorf("sw mem = %+v", ops[1])
	}
}

func TestOperandAccessArith(t *testing.T) {
	d := Decoder{}
	in, _ := d.Decode(enc(t, mk(riscv.MnADD, riscv.RegA0, riscv.RegA1, riscv.RegA2, 0)), 0)
	ops := in.Operands()
	if len(ops) != 3 {
		t.Fatalf("add operands = %v", ops)
	}
	if !ops[0].Written || ops[0].Read {
		t.Errorf("add rd = %+v", ops[0])
	}
	if !ops[1].Read || ops[1].Written || !ops[2].Read {
		t.Errorf("add sources = %+v %+v", ops[1], ops[2])
	}
	// Immediate form carries the immediate operand.
	in, _ = d.Decode(enc(t, mk(riscv.MnADDI, riscv.RegA0, riscv.RegA1, riscv.RegNone, 7)), 0)
	ops = in.Operands()
	if len(ops) != 3 || ops[2].Kind != OperandImm || ops[2].Imm != 7 {
		t.Errorf("addi operands = %v", ops)
	}
}

func TestOperandAccessBranchAndJumps(t *testing.T) {
	d := Decoder{}
	in, _ := d.Decode(enc(t, mk(riscv.MnBEQ, riscv.RegNone, riscv.RegA0, riscv.RegA1, 16)), 0x1000)
	ops := in.Operands()
	if len(ops) != 3 || !ops[0].Read || !ops[1].Read || ops[2].Kind != OperandImm {
		t.Errorf("beq operands = %v", ops)
	}
	in, _ = d.Decode(enc(t, mk(riscv.MnJAL, riscv.RegRA, riscv.RegNone, riscv.RegNone, 2048)), 0x1000)
	ops = in.Operands()
	if len(ops) != 2 || !ops[0].Written {
		t.Errorf("jal operands = %v", ops)
	}
	in, _ = d.Decode(enc(t, mk(riscv.MnJALR, riscv.X0, riscv.RegRA, riscv.RegNone, 0)), 0x1000)
	ops = in.Operands()
	if len(ops) != 2 || ops[1].Kind != OperandMem || ops[1].Base != riscv.RegRA {
		t.Errorf("jalr operands = %v", ops)
	}
}

func TestOperandAccessAMO(t *testing.T) {
	d := Decoder{}
	in, _ := d.Decode(enc(t, riscv.Inst{Mn: riscv.MnAMOADDW, Rd: riscv.RegA0,
		Rs1: riscv.RegA1, Rs2: riscv.RegA2, Rs3: riscv.RegNone}), 0)
	ops := in.Operands()
	if len(ops) != 3 {
		t.Fatalf("amoadd operands = %v", ops)
	}
	mem := ops[2]
	if !mem.Read || !mem.Written || mem.Width != 4 {
		t.Errorf("amoadd mem = %+v", mem)
	}
	// lr only reads memory.
	in, _ = d.Decode(enc(t, riscv.Inst{Mn: riscv.MnLRW, Rd: riscv.RegA0,
		Rs1: riscv.RegA1, Rs2: riscv.RegNone, Rs3: riscv.RegNone}), 0)
	ops = in.Operands()
	mem = ops[len(ops)-1]
	if !mem.Read || mem.Written {
		t.Errorf("lr.w mem = %+v", mem)
	}
}

func TestDecoderArchRestriction(t *testing.T) {
	// A D-extension instruction must be rejected when the binary's
	// advertised set lacks D (the reconciliation of Capstone's fixed
	// RV64GC profile with per-binary extensions).
	fmul := enc(t, riscv.Inst{Mn: riscv.MnFMULD, Rd: riscv.F0, Rs1: riscv.F1,
		Rs2: riscv.F2, Rs3: riscv.RegNone, RM: riscv.RMDyn})
	if _, err := (Decoder{Arch: riscv.ExtI | riscv.ExtM}).Decode(fmul, 0); err == nil {
		t.Error("fmul.d accepted for an IM-only binary")
	}
	if _, err := (Decoder{}).Decode(fmul, 0); err != nil {
		t.Errorf("fmul.d rejected for default rv64gc: %v", err)
	}
	// A compressed encoding must be rejected when C is absent.
	cnop := []byte{0x01, 0x00}
	if _, err := (Decoder{Arch: riscv.ExtI}).Decode(cnop, 0); err == nil {
		t.Error("compressed nop accepted for an I-only binary")
	}
	if _, err := (Decoder{Arch: riscv.ExtI | riscv.ExtC}).Decode(cnop, 0); err != nil {
		t.Errorf("compressed nop rejected with C present: %v", err)
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	buf = append(buf, enc(t, mk(riscv.MnADDI, riscv.RegA0, riscv.X0, riscv.RegNone, 1))...)
	buf = append(buf, enc(t, mk(riscv.MnADD, riscv.RegA1, riscv.RegA0, riscv.RegA0, 0))...)
	buf = append(buf, enc(t, mk(riscv.MnJALR, riscv.X0, riscv.RegRA, riscv.RegNone, 0))...)
	ins, err := (Decoder{}).DecodeAll(buf, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("decoded %d", len(ins))
	}
	if ins[1].Addr != 0x1004 {
		t.Errorf("second instruction at %#x", ins[1].Addr)
	}
	// Truncated stream errors out but returns the prefix.
	ins, err = (Decoder{}).DecodeAll(buf[:6], 0x1000)
	if err == nil {
		t.Error("truncated stream decoded fully")
	}
	if len(ins) != 1 {
		t.Errorf("prefix length = %d", len(ins))
	}
}

func TestOperandStrings(t *testing.T) {
	ops := []Operand{
		{Kind: OperandReg, Reg: riscv.RegA0},
		{Kind: OperandImm, Imm: -7},
		{Kind: OperandMem, Base: riscv.RegSP, Offset: 16},
	}
	want := []string{"a0", "-7", "16(sp)"}
	for i, o := range ops {
		if o.String() != want[i] {
			t.Errorf("operand %d = %q, want %q", i, o.String(), want[i])
		}
	}
}

func TestFMAOperands(t *testing.T) {
	d := Decoder{}
	in, _ := d.Decode(enc(t, riscv.Inst{Mn: riscv.MnFMADDD, Rd: riscv.F0,
		Rs1: riscv.F1, Rs2: riscv.F2, Rs3: riscv.F3, RM: riscv.RMDyn}), 0)
	ops := in.Operands()
	if len(ops) != 4 {
		t.Fatalf("fmadd operands = %v", ops)
	}
	reads := 0
	for _, o := range ops {
		if o.Read {
			reads++
		}
	}
	if reads != 3 {
		t.Errorf("fmadd reads %d regs, want 3", reads)
	}
}
