package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rvdyn/internal/obs"
)

type fakeArtifact struct{ size uint64 }

func (f *fakeArtifact) CacheBytes() uint64 { return f.size }

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(100, reg)
	mk := func(key string, size uint64) {
		_, _, err := c.GetOrCompute(key, "elf", func() (Artifact, error) {
			return &fakeArtifact{size}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("a", 40)
	mk("b", 40)
	// Touch "a" so "b" is the LRU victim.
	if _, out, _ := c.GetOrCompute("a", "elf", nil); out != Hit {
		t.Fatalf("a should be resident, got %v", out)
	}
	mk("c", 40) // 120 > 100: evicts "b"
	if _, out, _ := c.GetOrCompute("b", "elf", func() (Artifact, error) {
		return &fakeArtifact{40}, nil
	}); out != Miss {
		t.Errorf("b should have been evicted, got %v", out)
	}
	if got := reg.Counter("cache.evictions").Load(); got < 1 {
		t.Errorf("evictions = %d, want >= 1", got)
	}
	if c.Bytes() > 100 {
		t.Errorf("cache over capacity: %d bytes", c.Bytes())
	}
	if g := reg.Gauge("cache.bytes").Load(); uint64(g) != c.Bytes() {
		t.Errorf("bytes gauge %d != Bytes() %d", g, c.Bytes())
	}
	if g := reg.Gauge("cache.entries").Load(); int(g) != c.Len() {
		t.Errorf("entries gauge %d != Len() %d", g, c.Len())
	}
}

func TestCacheOversizedArtifactRejected(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(100, reg)
	val, out, err := c.GetOrCompute("huge", "elf", func() (Artifact, error) {
		return &fakeArtifact{1000}, nil
	})
	if err != nil || val == nil || out != Miss {
		t.Fatalf("oversized compute must still return its value: %v %v %v", val, out, err)
	}
	if c.Len() != 0 {
		t.Errorf("oversized artifact was cached")
	}
	if reg.Counter("cache.rejected_oversize").Load() != 1 {
		t.Errorf("rejection not counted")
	}
}

func TestCacheErrorsNeverCached(t *testing.T) {
	c := NewCache(1000, nil)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, err := c.GetOrCompute("k", "elf", func() (Artifact, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v", err)
		}
	}
	if calls != 3 {
		t.Errorf("failed compute was cached: %d calls", calls)
	}
	if c.Len() != 0 {
		t.Errorf("error poisoned the cache: %d entries", c.Len())
	}
}

// TestCacheSingleFlight pins the deduplication contract: N concurrent
// lookups of one cold key run the compute exactly once, and everyone gets
// the same artifact.
func TestCacheSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(1<<20, reg)
	var computes atomic.Int64
	release := make(chan struct{})

	const waiters = 16
	results := make([]Artifact, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, _, err := c.GetOrCompute("k", "elf", func() (Artifact, error) {
				computes.Add(1)
				<-release // hold the flight open so others must coalesce
				return &fakeArtifact{8}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = val
		}()
	}
	// Let the goroutines pile onto the flight, then release the compute.
	for reg.Counter("cache.singleflight.coalesced").Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Errorf("waiter %d got a different artifact", i)
		}
	}
	co := reg.Counter("cache.singleflight.coalesced").Load()
	hits := reg.Counter("cache.hits").Load()
	misses := reg.Counter("cache.misses").Load()
	if misses != 1 || co+hits+misses != waiters {
		t.Errorf("counters: %d misses, %d hits, %d coalesced (want 1 miss, total %d)",
			misses, hits, co, waiters)
	}
}

func TestCacheDropLevel(t *testing.T) {
	c := NewCache(1<<20, nil)
	for i := 0; i < 3; i++ {
		c.GetOrCompute(fmt.Sprintf("e%d", i), "elf", func() (Artifact, error) {
			return &fakeArtifact{10}, nil
		})
	}
	c.GetOrCompute("a0", "analysis", func() (Artifact, error) {
		return &fakeArtifact{10}, nil
	})
	if n := c.DropLevel("elf"); n != 3 {
		t.Errorf("dropped %d elf entries, want 3", n)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Errorf("after drop: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}
