// Package server is the instrumentation-as-a-service layer: a long-running
// daemon (rvdyn serve) that accepts binary uploads plus instrumentation
// specs over HTTP, shards requests across a bounded worker pool, and serves
// rewritten ELFs out of a content-addressed artifact cache.
//
// The cache holds four artifact levels, all keyed by SHA-256 over the
// toolchain version, the input bytes, and (where the artifact depends on
// it) the canonicalized spec:
//
//	analysis  parsed ELF + symbol table + CFG          key(input)
//	liveness  per-function dataflow results            key(input)
//	plan      base-independent relocation plans        key(input, spec)
//	elf       final rewritten ELF + patch metadata     key(input, spec)
//
// A warm resubmission of an identical binary+spec is a single lookup at the
// elf level; partial hits recompute only the layers above the deepest
// cached artifact. The soundness of serving cached bytes rests on the
// pipeline's byte-identical determinism (the cache-equivalence tests pin
// that the warm path equals a cold rewrite, byte for byte, at every worker
// count and every partial-hit state).
package server

import (
	"container/list"
	"sync"

	"rvdyn/internal/obs"
)

// Artifact is one cacheable intermediate result. Implementations report a
// stable size estimate so the LRU can bound total memory; artifacts must be
// immutable once inserted (concurrent requests share them).
type Artifact interface {
	CacheBytes() uint64
}

// Outcome classifies one cache lookup.
type Outcome int

const (
	// Miss: this caller computed the artifact.
	Miss Outcome = iota
	// Hit: the artifact was already resident.
	Hit
	// Coalesced: another in-flight request was already computing the same
	// artifact; this caller waited for it (single-flight deduplication).
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// Cache is a size-bounded, content-addressed LRU over instrumentation
// artifacts with single-flight deduplication: concurrent GetOrCompute calls
// for the same key do the work once and share the result. Failed computes
// are never inserted, so an error cannot poison the cache. All methods are
// safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity uint64
	bytes    uint64
	entries  map[string]*list.Element // key -> *centry element
	lru      *list.List               // front = most recently used
	flights  map[string]*flight

	reg       *obs.Registry
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	rejected  *obs.Counter
	bytesG    *obs.Gauge
	entriesG  *obs.Gauge
}

type centry struct {
	key   string
	level string
	val   Artifact
	size  uint64
}

type flight struct {
	done chan struct{}
	val  Artifact
	err  error
}

// NewCache creates a cache bounded to capacity bytes of artifact estimates.
// reg may be nil (metrics disabled).
func NewCache(capacity uint64, reg *obs.Registry) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
		reg:      reg,
		hits:     reg.Counter("cache.hits"),
		misses:   reg.Counter("cache.misses"),
		coalesced: reg.Counter(
			"cache.singleflight.coalesced"),
		evictions: reg.Counter("cache.evictions"),
		rejected:  reg.Counter("cache.rejected_oversize"),
		bytesG:    reg.Gauge("cache.bytes"),
		entriesG:  reg.Gauge("cache.entries"),
	}
}

// GetOrCompute returns the artifact stored under key, computing and
// inserting it on a miss. Concurrent callers with the same key coalesce
// onto one compute; every waiter receives the same artifact (or the same
// error — errors are returned, never cached). level tags the per-level
// metric counters (cache.hits.<level> etc.).
func (c *Cache) GetOrCompute(key, level string, compute func() (Artifact, error)) (Artifact, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*centry).val
		c.mu.Unlock()
		c.hits.Inc()
		c.reg.Counter("cache.hits." + level).Inc()
		return val, Hit, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		c.reg.Counter("cache.singleflight.coalesced." + level).Inc()
		<-fl.done
		return fl.val, Coalesced, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()
	c.misses.Inc()
	c.reg.Counter("cache.misses." + level).Inc()

	fl.val, fl.err = compute()
	if fl.err == nil {
		c.insert(key, level, fl.val)
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.val, Miss, fl.err
}

// insert stores val and evicts from the cold end until the cache fits.
func (c *Cache) insert(key, level string, val Artifact) {
	size := val.CacheBytes()
	if size > c.capacity {
		// An artifact larger than the whole cache would evict everything and
		// then be evicted itself on the next insert; skip it entirely.
		c.rejected.Inc()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A racing insert (same key recomputed after an eviction mid-flight)
		// already stored a value; keep the resident one.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&centry{key: key, level: level, val: val, size: size})
	c.bytes += size
	for c.bytes > c.capacity {
		c.evictLockedOldest()
	}
	c.bytesG.Set(int64(c.bytes))
	c.entriesG.Set(int64(len(c.entries)))
}

func (c *Cache) evictLockedOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*centry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.evictions.Inc()
	c.reg.Counter("cache.evictions." + e.level).Inc()
}

// DropLevel evicts every resident artifact of the given level and returns
// how many were dropped. Tests use it to force partial-hit states ("CFG
// cached but plan evicted"); the drops count as evictions.
func (c *Cache) DropLevel(level string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*centry); e.level == level {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= e.size
			c.evictions.Inc()
			c.reg.Counter("cache.evictions." + e.level).Inc()
			n++
		}
		el = next
	}
	c.bytesG.Set(int64(c.bytes))
	c.entriesG.Set(int64(len(c.entries)))
	return n
}

// Len returns the number of resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the current size estimate of resident artifacts.
func (c *Cache) Bytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
