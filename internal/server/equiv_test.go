package server

import (
	"bytes"
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/oracle"
	"rvdyn/internal/pipeline"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

// The cache-equivalence battery: every byte the server ever serves — cold,
// warm, coalesced, or recomputed from any partial-hit state — must equal a
// cold offline rewrite of the same input+spec. This is the property that
// makes a content-addressed cache sound at all; everything else in the
// package is an optimization on top of it.

// equivCase is one program+spec driven through both the offline pipeline
// and the service. Workloads travel as assembly source; oracle programs use
// RVA23 instructions the server-side assembler's default target rejects, so
// they travel pre-assembled, as binary uploads.
type equivCase struct {
	name   string
	source string
	binary []byte
	funcs  []string
}

// request builds the service request for this case.
func (tc equivCase) request() Request {
	if tc.binary != nil {
		return Request{Binary: tc.binary, Spec: Spec{Name: tc.name, Funcs: tc.funcs}}
	}
	return Request{Source: tc.source, Spec: Spec{Name: tc.name, Funcs: tc.funcs}}
}

// equivCases returns the workload suite plus a band of oracle-generated
// programs (instrumented at _start, their only function).
func equivCases(t testing.TB, oracleSeeds int) []equivCase {
	t.Helper()
	var cases []equivCase
	for _, p := range workload.Programs() {
		cases = append(cases, equivCase{name: p.Name, source: p.Source, funcs: p.Funcs})
	}
	for seed := 1; seed <= oracleSeeds; seed++ {
		src := oracle.GenerateProgram(int64(seed), 120)
		f, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
		if err != nil {
			t.Fatalf("assemble oracle-%d: %v", seed, err)
		}
		raw, err := f.Write()
		if err != nil {
			t.Fatalf("serialize oracle-%d: %v", seed, err)
		}
		cases = append(cases, equivCase{
			name:   fmt.Sprintf("oracle-%d", seed),
			binary: raw,
			funcs:  []string{"_start"},
		})
	}
	return cases
}

// coldReference rewrites tc through the offline pipeline, serially, with no
// cache anywhere near it: the ground truth.
func coldReference(t testing.TB, tc equivCase) []byte {
	t.Helper()
	job := pipeline.Job{Name: tc.name, Source: tc.source, Funcs: tc.funcs}
	if tc.binary != nil {
		file, err := elfrv.Read(tc.binary)
		if err != nil {
			t.Fatalf("cold reference %s: re-read: %v", tc.name, err)
		}
		job.Source, job.File = "", file
	}
	res, err := pipeline.Instrument(job, pipeline.Options{Jobs: 1}, nil)
	if err != nil {
		t.Fatalf("cold reference %s: %v", tc.name, err)
	}
	return res.ELF
}

func instrument(t testing.TB, svc *Service, req Request, wantState string, wantELF []byte) *Response {
	t.Helper()
	resp, err := svc.Instrument(req)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if wantState != "" && resp.CacheState != wantState {
		t.Fatalf("cache state %q, want %q", resp.CacheState, wantState)
	}
	if !bytes.Equal(resp.ELF, wantELF) {
		t.Fatalf("served ELF differs from cold reference (state %s, %d vs %d bytes)",
			resp.CacheState, len(resp.ELF), len(wantELF))
	}
	return resp
}

// TestServeCacheEquivalence: for every workload and a band of oracle
// programs, at every pool width, the first (miss) and second (hit) response
// are byte-identical to the cold offline rewrite.
func TestServeCacheEquivalence(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	cases := equivCases(t, seeds)
	for _, jobs := range []int{1, 2, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			svc := NewService(Options{Jobs: jobs, Metrics: obs.NewRegistry()})
			for _, tc := range cases {
				ref := coldReference(t, tc)
				req := tc.request()
				instrument(t, svc, req, "miss", ref)
				instrument(t, svc, req, "hit", ref)
			}
		})
	}
}

// TestServeCacheEquivalenceBinary covers the upload path: a pre-assembled
// ELF submitted as bytes must rewrite identically to the offline pipeline
// fed the same image.
func TestServeCacheEquivalenceBinary(t *testing.T) {
	svc := NewService(Options{Jobs: 2, Metrics: obs.NewRegistry()})
	for _, p := range workload.Programs() {
		f, err := asm.Assemble(p.Source, asm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		raw, err := f.Write()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		file, err := elfrv.Read(raw)
		if err != nil {
			t.Fatalf("%s: re-read: %v", p.Name, err)
		}
		res, err := pipeline.Instrument(
			pipeline.Job{Name: p.Name, File: file, Funcs: p.Funcs},
			pipeline.Options{Jobs: 1}, nil)
		if err != nil {
			t.Fatalf("%s: reference: %v", p.Name, err)
		}
		req := Request{Binary: raw, Spec: Spec{Funcs: p.Funcs}}
		instrument(t, svc, req, "miss", res.ELF)
		instrument(t, svc, req, "hit", res.ELF)
	}
}

// TestServeCacheEquivalencePartialHits walks every partial-hit state the
// cache can be in — elf evicted, plan evicted, liveness evicted, everything
// evicted — and asserts the recomputed response is byte-identical to the
// cold reference each time, at several pool widths.
func TestServeCacheEquivalencePartialHits(t *testing.T) {
	cases := equivCases(t, 2)
	steps := []struct {
		drop []string
		want string
	}{
		{nil, "miss"},
		{[]string{"elf"}, "partial:plan"},
		{[]string{"elf", "plan"}, "partial:analysis"},
		{[]string{"elf", "plan", "liveness"}, "partial:analysis"},
		{[]string{"elf", "plan", "liveness", "analysis"}, "miss"},
		{nil, "hit"},
	}
	for _, jobs := range []int{1, 2, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			svc := NewService(Options{Jobs: jobs, Metrics: obs.NewRegistry()})
			for _, tc := range cases {
				ref := coldReference(t, tc)
				req := tc.request()
				for _, step := range steps {
					for _, level := range step.drop {
						svc.Cache().DropLevel(level)
					}
					instrument(t, svc, req, step.want, ref)
				}
			}
		})
	}
}

// TestServeSpecCanonicalization: requests that differ only in spelling —
// explicit defaults, client-side labels, whitespace in names — share one
// cache entry and one output.
func TestServeSpecCanonicalization(t *testing.T) {
	svc := NewService(Options{Jobs: 1, Metrics: obs.NewRegistry()})
	p := workload.Programs()[0]
	ref := coldReference(t, equivCase{name: p.Name, source: p.Source, funcs: p.Funcs})

	base := Request{Source: p.Source, Spec: Spec{Funcs: p.Funcs}}
	first := instrument(t, svc, base, "miss", ref)

	variants := []Spec{
		{Name: "a-different-label", Funcs: p.Funcs},
		{Funcs: p.Funcs, Points: "entry"},
		{Funcs: p.Funcs, Mode: "dead"},
		{Funcs: spacePad(p.Funcs), Points: "entry", Mode: "dead"},
	}
	for i, sp := range variants {
		resp := instrument(t, svc, Request{Source: p.Source, Spec: sp}, "hit", ref)
		if resp.Key != first.Key {
			t.Errorf("variant %d keyed to %s, want %s", i, resp.Key, first.Key)
		}
	}

	// A semantically different spec must NOT share the entry: it keys
	// differently, recomputes at least the spec-dependent levels (analysis
	// for the same input stays warm), and yields different bytes.
	other, err := svc.Instrument(Request{Source: p.Source, Spec: Spec{Funcs: p.Funcs, Points: "exits"}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Key == first.Key || other.CacheState == "hit" {
		t.Errorf("points=exits reused the entry-points cache entry (%s, %s)", other.Key, other.CacheState)
	}
	if bytes.Equal(other.ELF, ref) {
		t.Error("points=exits produced the same bytes as points=entry")
	}
}

func spacePad(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = " " + s + " "
	}
	return out
}
