package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rvdyn/internal/obs"
)

// DefaultMaxUploadBytes bounds one request body (spec + binary) unless
// HandlerOptions overrides it.
const DefaultMaxUploadBytes = 64 << 20

// DefaultMaxMemoryBytes is the per-request in-memory multipart budget; parts
// beyond it spill to disk (and are removed when the request finishes).
const DefaultMaxMemoryBytes = 8 << 20

// HandlerOptions configures the HTTP surface.
type HandlerOptions struct {
	// MaxUploadBytes caps the request body; oversized uploads get 413.
	MaxUploadBytes int64
	// MaxMemoryBytes is how much of a multipart body is held in memory
	// before parts spill to temp files. Keeping it well below
	// MaxUploadBytes bounds per-request memory at the cost of disk spills
	// for large binaries; spilled files are deleted when the handler
	// returns, so temp-dir usage is bounded by the in-flight request count.
	MaxMemoryBytes int64
}

// NewHandler wires the service into an http.Handler:
//
//	POST /v1/instrument   multipart form: "spec" (JSON) + "binary" (ELF
//	                      file) or "source" (assembly text). Returns the
//	                      rewritten ELF (application/octet-stream) with
//	                      X-Rvdynd-Key and X-Rvdynd-Cache headers, or JSON
//	                      metadata (patches, counters, base64 ELF) with
//	                      ?meta=1.
//	GET  /healthz         liveness probe: uptime and inflight count
//	GET  /metrics         the obs registry dump (text, one metric per
//	                      line), or Prometheus text exposition (version
//	                      0.0.4) with ?format=prometheus or an Accept
//	                      header naming the Prometheus text format
//
// Malformed input of any kind — bad multipart framing, invalid spec JSON,
// corrupt ELFs, unknown functions — yields a 4xx and leaves the cache
// untouched (failed computes are never inserted).
func NewHandler(s *Service, opts HandlerOptions) http.Handler {
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if opts.MaxMemoryBytes <= 0 {
		opts.MaxMemoryBytes = DefaultMaxMemoryBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instrument", func(w http.ResponseWriter, r *http.Request) {
		handleInstrument(s, opts, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s inflight=%d\n", s.Uptime().Round(1e6), s.inflight.Load())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", obs.PromContentType)
			s.reg.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.WriteTo(w)
	})
	return statusMetrics(s.reg, mux)
}

// wantsPrometheus decides the /metrics representation: ?format=prometheus
// forces the exposition format, as does an Accept header naming the
// Prometheus text format (a Prometheus scraper sends
// "text/plain;version=0.0.4" or an OpenMetrics type).
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "text", "plain":
		return false
	}
	accept := strings.ToLower(r.Header.Get("Accept"))
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "openmetrics")
}

// statusMetrics counts responses by status class and bytes moved.
func statusMetrics(reg *obs.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(cw, r)
		reg.Counter(fmt.Sprintf("server.http.%dxx", cw.status/100)).Inc()
		reg.Counter("server.http.bytes_out").Add(uint64(cw.bytes))
	})
}

type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *countingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

func handleInstrument(s *Service, opts HandlerOptions, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, opts.MaxUploadBytes)
	// The body cap is enforced by MaxBytesReader; the parse budget only
	// decides what stays in memory. Passing the full upload cap here would
	// let every in-flight request pin MaxUploadBytes of heap — parts beyond
	// the memory budget spill to temp files instead, which RemoveAll below
	// deletes at the end of the request.
	if err := r.ParseMultipartForm(opts.MaxMemoryBytes); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "parse multipart body: %v", err)
		return
	}
	defer r.MultipartForm.RemoveAll()

	var spec Spec
	specText := r.FormValue("spec")
	if specText != "" {
		dec := json.NewDecoder(strings.NewReader(specText))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "decode spec: %v", err)
			return
		}
	}

	req := Request{Spec: spec, Source: r.FormValue("source")}
	if file, _, err := r.FormFile("binary"); err == nil {
		data, rerr := io.ReadAll(file)
		file.Close()
		if rerr != nil {
			httpError(w, http.StatusBadRequest, "read binary part: %v", rerr)
			return
		}
		req.Binary = data
	}

	resp, err := s.Instrument(req)
	if err != nil {
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	w.Header().Set("X-Rvdynd-Key", resp.Key)
	w.Header().Set("X-Rvdynd-Cache", resp.CacheState)
	if r.URL.Query().Get("meta") == "1" {
		type patchJSON struct {
			Func string `json:"func"`
			Kind string `json:"kind"`
			From uint64 `json:"from"`
			To   uint64 `json:"to"`
		}
		patches := make([]patchJSON, 0, len(resp.Patches))
		for _, p := range resp.Patches {
			patches = append(patches, patchJSON{p.Func, p.Kind.String(), p.From, p.To})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Key      string            `json:"key"`
			Cache    string            `json:"cache"`
			ELFSize  int               `json:"elf_size"`
			Patches  []patchJSON       `json:"patches"`
			Counters map[string]uint64 `json:"counters"`
			ELF      string            `json:"elf_base64"`
		}{resp.Key, resp.CacheState, len(resp.ELF), patches, resp.Counters,
			base64.StdEncoding.EncodeToString(resp.ELF)})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.ELF)))
	w.Write(resp.ELF)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("rvdynd: "+format, args...), status)
}
