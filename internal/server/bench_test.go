package server

import (
	"testing"

	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

func benchRequest(b *testing.B) (*Service, Request) {
	b.Helper()
	svc := NewService(Options{Jobs: 1, Metrics: obs.NewRegistry()})
	for _, p := range workload.Programs() {
		if p.Name == "matmul" {
			return svc, Request{Source: p.Source, Spec: Spec{Funcs: p.Funcs}}
		}
	}
	b.Fatal("no matmul workload")
	return nil, Request{}
}

// BenchmarkServeCold measures the full uncached path: hash, assemble,
// analyze, liveness, plan, rewrite, serialize.
func BenchmarkServeCold(b *testing.B) {
	svc, req := benchRequest(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, level := range []string{"elf", "plan", "liveness", "analysis"} {
			svc.Cache().DropLevel(level)
		}
		if _, err := svc.Instrument(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeWarm measures a fully warm resubmission: spec
// canonicalization, input hash, one cache lookup.
func BenchmarkServeWarm(b *testing.B) {
	svc, req := benchRequest(b)
	if _, err := svc.Instrument(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Instrument(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.CacheState != "hit" {
			b.Fatalf("warm request missed (%s)", resp.CacheState)
		}
	}
}

// BenchmarkServePartialPlan measures the replay path: cached plans, fresh
// encode+serialize (the state after an elf-level eviction).
func BenchmarkServePartialPlan(b *testing.B) {
	svc, req := benchRequest(b)
	if _, err := svc.Instrument(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Cache().DropLevel("elf")
		resp, err := svc.Instrument(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.CacheState != "partial:plan" {
			b.Fatalf("expected partial:plan, got %s", resp.CacheState)
		}
	}
}
