package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/patch"
	"rvdyn/internal/snippet"
)

// ToolchainVersion is folded into every cache key: artifacts produced by a
// different toolchain revision must never satisfy this server's lookups.
// Bump it whenever the rewriter's output bytes can change.
const ToolchainVersion = "rvdynd/1"

// Spec is the client-supplied instrumentation request: which functions to
// instrument with entry counters, at which points, with which register
// allocation. The zero values default to entry points and dead-register
// allocation, mirroring rvdyn rewrite.
type Spec struct {
	// Name is a client-side label; it never enters the cache key because it
	// cannot change the output bytes.
	Name string `json:"name,omitempty"`
	// Funcs lists the functions to instrument with one counter each, in
	// order (order is semantic: it fixes counter-variable addresses).
	Funcs []string `json:"funcs,omitempty"`
	// Points is "entry" (default), "exits", or "blocks".
	Points string `json:"points,omitempty"`
	// Mode is "dead" (default) or "spill".
	Mode string `json:"mode,omitempty"`
}

// maxSpecFuncs bounds the per-request function list so a hostile spec
// cannot make the server allocate without bound.
const maxSpecFuncs = 1024

// canonicalize validates the spec and fills defaults. The result is the
// canonical form whose JSON encoding enters the cache key, so two requests
// that differ only in spelling (missing defaults, surrounding whitespace)
// share cache entries.
func (sp Spec) canonicalize() (Spec, error) {
	switch sp.Points {
	case "":
		sp.Points = "entry"
	case "entry", "exits", "blocks":
	default:
		return sp, &RequestError{fmt.Errorf("unknown points mode %q", sp.Points)}
	}
	switch sp.Mode {
	case "":
		sp.Mode = "dead"
	case "dead", "spill":
	default:
		return sp, &RequestError{fmt.Errorf("unknown codegen mode %q", sp.Mode)}
	}
	if len(sp.Funcs) > maxSpecFuncs {
		return sp, &RequestError{fmt.Errorf("spec lists %d functions, limit %d", len(sp.Funcs), maxSpecFuncs)}
	}
	seen := map[string]bool{}
	funcs := make([]string, 0, len(sp.Funcs))
	for _, f := range sp.Funcs {
		f = strings.TrimSpace(f)
		if f == "" {
			return sp, &RequestError{fmt.Errorf("spec has an empty function name")}
		}
		if seen[f] {
			return sp, &RequestError{fmt.Errorf("spec lists function %q twice", f)}
		}
		seen[f] = true
		funcs = append(funcs, f)
	}
	sp.Funcs = funcs
	return sp, nil
}

// canonicalJSON is the key-relevant projection of a canonicalized spec.
func (sp Spec) canonicalJSON() []byte {
	b, _ := json.Marshal(struct {
		Funcs  []string `json:"funcs"`
		Points string   `json:"points"`
		Mode   string   `json:"mode"`
	}{sp.Funcs, sp.Points, sp.Mode})
	return b
}

func (sp Spec) codegenMode() codegen.Mode {
	if sp.Mode == "spill" {
		return codegen.ModeSpillAlways
	}
	return codegen.ModeDeadRegister
}

// RequestError marks a failure caused by the request itself — a corrupt
// ELF, an unknown function, an invalid spec — as opposed to a server-side
// fault. The HTTP layer maps it to a 4xx status.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// Options configures a Service.
type Options struct {
	// Jobs bounds the number of concurrently executing requests; inside a
	// request the rewriter's own parallelism shrinks as the pool fills
	// (output bytes are identical either way). <= 0 means GOMAXPROCS.
	Jobs int
	// CacheBytes bounds the artifact cache (default 256 MiB).
	CacheBytes uint64
	// Metrics, when non-nil, receives cache and request metrics.
	Metrics *obs.Registry
}

// Service is the transport-independent server core: hash, look up, compute
// what is missing, respond. One Service is shared by all HTTP handlers.
type Service struct {
	reg      *obs.Registry
	cache    *Cache
	workers  int
	sem      chan struct{}
	inflight atomic.Int64
	start    time.Time

	requests  *obs.Counter
	reqErrors *obs.Counter
	latCold   *obs.Histogram
	latWarm   *obs.Histogram
	inflightG *obs.Gauge
}

// NewService builds a Service.
func NewService(opts Options) *Service {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 256 << 20
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = defaultWorkers()
	}
	reg := opts.Metrics
	// Latency buckets: 1µs .. ~17s in powers of two, in nanoseconds.
	bounds := obs.ExpBuckets(1000, 2, 25)
	return &Service{
		reg:       reg,
		cache:     NewCache(opts.CacheBytes, reg),
		workers:   workers,
		sem:       make(chan struct{}, workers),
		start:     time.Now(),
		requests:  reg.Counter("server.requests"),
		reqErrors: reg.Counter("server.request_errors"),
		latCold:   reg.Histogram("server.latency_ns.cold", bounds),
		latWarm:   reg.Histogram("server.latency_ns.warm", bounds),
		inflightG: reg.Gauge("server.inflight"),
	}
}

// Cache exposes the artifact cache (tests force partial-hit states through
// it).
func (s *Service) Cache() *Cache { return s.cache }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// Request is one instrumentation submission: exactly one of Binary (an ELF
// image) or Source (assembly text, assembled server-side) plus the spec.
type Request struct {
	Binary []byte
	Source string
	Spec   Spec
}

// Response is the served result. ELF is shared with the cache — callers
// must treat it as immutable.
type Response struct {
	// Key is the content address of the served artifact.
	Key string
	// CacheState is "hit", "coalesced", "partial:plan", "partial:analysis",
	// or "miss" — the deepest artifact level that had to be recomputed.
	CacheState string
	ELF        []byte
	Patches    []patch.PatchRecord
	Counters   map[string]uint64
}

// reqState records which levels a cold/partial compute found warm, for the
// CacheState verdict.
type reqState struct {
	analysisHit bool
	planHit     bool
}

// Instrument serves one request, from cache when possible.
func (s *Service) Instrument(req Request) (*Response, error) {
	s.requests.Inc()
	spec, err := req.Spec.canonicalize()
	if err != nil {
		s.reqErrors.Inc()
		return nil, err
	}
	var input []byte
	var kind string
	switch {
	case len(req.Binary) > 0 && req.Source == "":
		input, kind = req.Binary, "binary"
	case len(req.Binary) == 0 && req.Source != "":
		input, kind = []byte(req.Source), "source"
	default:
		s.reqErrors.Inc()
		return nil, &RequestError{fmt.Errorf("request needs exactly one of binary or source")}
	}
	inputHash := hashParts([]byte(kind), input)
	specJSON := spec.canonicalJSON()

	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	s.inflightG.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.inflightG.Add(-1)
	}()
	startT := time.Now()

	var st reqState
	elfKey := artifactKey("elf", inputHash, specJSON)
	art, outcome, err := s.cache.GetOrCompute(elfKey, "elf", func() (Artifact, error) {
		return s.buildELF(kind, input, spec, inputHash, specJSON, &st)
	})
	elapsed := uint64(time.Since(startT).Nanoseconds())
	if err != nil {
		s.reqErrors.Inc()
		return nil, err
	}
	state := "miss"
	switch {
	case outcome == Hit:
		state = "hit"
	case outcome == Coalesced:
		state = "coalesced"
	case st.planHit:
		state = "partial:plan"
	case st.analysisHit:
		state = "partial:analysis"
	}
	if outcome == Miss && !st.planHit && !st.analysisHit {
		s.latCold.Observe(elapsed)
	} else {
		s.latWarm.Observe(elapsed)
	}
	ea := art.(*elfArtifact)
	return &Response{
		Key: elfKey, CacheState: state,
		ELF: ea.elf, Patches: ea.patches, Counters: ea.counters,
	}, nil
}

// buildELF is the cold half of Instrument: recompute the rewritten ELF,
// reusing whatever deeper artifacts are still resident. Every error on
// this path derives from the submitted input (the server has no other
// inputs), so all of them map to RequestError.
func (s *Service) buildELF(kind string, input []byte, spec Spec, inputHash, specJSON []byte, st *reqState) (Artifact, error) {
	// Analysis: parsed ELF + symtab + CFG, shared by every spec over the
	// same input bytes.
	inner := s.innerJobs()
	aArt, aOut, err := s.cache.GetOrCompute(artifactKey("analysis", inputHash), "analysis", func() (Artifact, error) {
		file, err := s.loadFile(kind, input)
		if err != nil {
			return nil, err
		}
		bin, err := core.FromFileJobs(file, inner)
		if err != nil {
			return nil, &RequestError{fmt.Errorf("analyze: %w", err)}
		}
		size := uint64(len(input)) + uint64(bin.CFG.Stats.Instructions)*64 + uint64(bin.CFG.Stats.Blocks)*128
		return &analysisArtifact{bin: bin, size: size}, nil
	})
	if err != nil {
		return nil, err
	}
	bin := aArt.(*analysisArtifact).bin
	st.analysisHit = aOut != Miss

	// Liveness: per-function dataflow results, keyed by the input alone —
	// a rewrite with a different spec over the same binary reuses them.
	lvArt, _, err := s.cache.GetOrCompute(artifactKey("liveness", inputHash), "liveness", func() (Artifact, error) {
		return &livenessArtifact{
			lc:   patch.NewLivenessCache(),
			size: uint64(bin.CFG.Stats.Functions)*512 + 256,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	rw := patch.NewRewriter(bin.Symtab, bin.CFG, spec.codegenMode())
	rw.Jobs = inner
	rw.SetLivenessCache(lvArt.(*livenessArtifact).lc)
	counters := map[string]uint64{}
	for _, name := range spec.Funcs {
		fn, ok := bin.CFG.FuncByName(name)
		if !ok {
			return nil, &RequestError{fmt.Errorf("no function %q in submitted binary", name)}
		}
		v := rw.NewVar("ctr_"+name, 8)
		counters[name] = v.Addr
		var pts []snippet.Point
		switch spec.Points {
		case "entry":
			pts = []snippet.Point{snippet.FuncEntry(fn)}
		case "exits":
			pts = snippet.FuncExits(fn)
		case "blocks":
			pts = snippet.BlockEntries(fn)
		}
		for _, pt := range pts {
			if err := rw.InsertSnippet(pt, snippet.Increment(v)); err != nil {
				return nil, &RequestError{err}
			}
		}
	}

	// Plan: the base-independent relocation plans for this input+spec. A
	// cached PlanSet is replayed without mutation, so sharing across
	// concurrent requests is safe.
	pArt, pOut, err := s.cache.GetOrCompute(artifactKey("plan", inputHash, specJSON), "plan", func() (Artifact, error) {
		ps, err := rw.Plan()
		if err != nil {
			return nil, &RequestError{fmt.Errorf("plan: %w", err)}
		}
		return &planArtifact{ps: ps}, nil
	})
	if err != nil {
		return nil, err
	}
	st.planHit = pOut != Miss

	out, err := rw.RewriteWithPlans(pArt.(*planArtifact).ps)
	if err != nil {
		return nil, &RequestError{fmt.Errorf("rewrite: %w", err)}
	}
	raw, err := out.Write()
	if err != nil {
		return nil, &RequestError{fmt.Errorf("serialize: %w", err)}
	}
	return &elfArtifact{elf: raw, patches: rw.Patches, counters: counters}, nil
}

func (s *Service) loadFile(kind string, input []byte) (*elfrv.File, error) {
	if kind == "source" {
		f, err := asm.Assemble(string(input), asm.Options{})
		if err != nil {
			return nil, &RequestError{fmt.Errorf("assemble: %w", err)}
		}
		return f, nil
	}
	f, err := elfrv.Read(input)
	if err != nil {
		return nil, &RequestError{fmt.Errorf("read ELF: %w", err)}
	}
	return f, nil
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// innerJobs splits the pool between concurrent requests: an idle server
// gives one request the whole pool; a saturated one collapses each request
// to the serial path (output bytes are identical at any width).
func (s *Service) innerJobs() int {
	n := int(s.inflight.Load())
	if n < 1 {
		n = 1
	}
	inner := s.workers / n
	if inner < 1 {
		inner = 1
	}
	return inner
}

// hashParts hashes length-prefixed parts so no two part sequences collide.
func hashParts(parts ...[]byte) []byte {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	return h.Sum(nil)
}

// artifactKey derives the content address of one artifact level.
func artifactKey(level string, parts ...[]byte) string {
	all := append([][]byte{[]byte(ToolchainVersion), []byte(level)}, parts...)
	return level + ":" + hex.EncodeToString(hashParts(all...)[:16])
}

// Artifact level payloads.

type analysisArtifact struct {
	bin  *core.Binary
	size uint64
}

func (a *analysisArtifact) CacheBytes() uint64 { return a.size }

type livenessArtifact struct {
	lc   *patch.LivenessCache
	size uint64
}

func (a *livenessArtifact) CacheBytes() uint64 { return a.size }

type planArtifact struct{ ps *patch.PlanSet }

// CacheBytes scales the encoded patch-area size by the per-item bookkeeping
// overhead of the plan representation.
func (a *planArtifact) CacheBytes() uint64 { return a.ps.Size()*16 + 512 }

type elfArtifact struct {
	elf      []byte
	patches  []patch.PatchRecord
	counters map[string]uint64
}

func (a *elfArtifact) CacheBytes() uint64 {
	return uint64(len(a.elf)) + uint64(len(a.patches))*64 + uint64(len(a.counters))*64 + 256
}
