package server

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rvdyn/internal/obs"
)

// TestServeEvictionChurnRace hammers one service from concurrent clients
// with a cache deliberately too small for the working set, so artifacts are
// evicted and recomputed continuously while other requests hold references
// to them. Run under -race this is the torn-artifact detector; the explicit
// assertions pin:
//
//   - every response, from any cache state, is byte-identical to the cold
//     reference (no torn or stale artifact is ever served);
//   - single-flight accounting is exact: per-level hit/coalesced/miss
//     counters equal the per-response states the clients observed;
//   - obs counters are monotonic while the storm is in progress;
//   - the cache never exceeds its byte bound and eviction churn actually
//     happened (otherwise the test proves nothing).
func TestServeEvictionChurnRace(t *testing.T) {
	reg := obs.NewRegistry()
	const cacheBytes = 96 << 10
	svc := NewService(Options{Jobs: 4, CacheBytes: cacheBytes, Metrics: reg})

	cases := equivCases(t, 4)
	refs := make(map[string][]byte, len(cases))
	for _, tc := range cases {
		refs[tc.name] = coldReference(t, tc)
	}

	// Monotonicity poller: sample the hot counters while the storm runs and
	// assert no sample ever goes backwards.
	watched := []string{
		"server.requests", "cache.hits", "cache.misses",
		"cache.singleflight.coalesced", "cache.evictions",
	}
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		prev := make([]uint64, len(watched))
		for {
			for i, name := range watched {
				v := reg.Counter(name).Load()
				if v < prev[i] {
					t.Errorf("counter %s went backwards: %d -> %d", name, prev[i], v)
					return
				}
				prev[i] = v
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	var hit, coalesced, miss, partial atomic.Uint64
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tc := cases[(g+i)%len(cases)]
				resp, err := svc.Instrument(tc.request())
				if err != nil {
					t.Errorf("%s: %v", tc.name, err)
					return
				}
				if !bytes.Equal(resp.ELF, refs[tc.name]) {
					t.Errorf("%s: torn/stale artifact served (state %s)", tc.name, resp.CacheState)
					return
				}
				switch resp.CacheState {
				case "hit":
					hit.Add(1)
				case "coalesced":
					coalesced.Add(1)
				case "miss":
					miss.Add(1)
				default:
					partial.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()
	if t.Failed() {
		return
	}

	total := hit.Load() + coalesced.Load() + miss.Load() + partial.Load()
	if total != goroutines*iters {
		t.Fatalf("accounted %d responses, want %d", total, goroutines*iters)
	}

	// Single-flight accounting must be exact: the elf-level counters are
	// incremented once per request, in the same categories the clients saw.
	// (A "partial:*" response is an elf-level miss that found deeper
	// artifacts warm.)
	if got, want := reg.Counter("cache.hits.elf").Load(), hit.Load(); got != want {
		t.Errorf("cache.hits.elf = %d, clients saw %d hits", got, want)
	}
	if got, want := reg.Counter("cache.singleflight.coalesced.elf").Load(), coalesced.Load(); got != want {
		t.Errorf("cache.singleflight.coalesced.elf = %d, clients saw %d coalesced", got, want)
	}
	if got, want := reg.Counter("cache.misses.elf").Load(), miss.Load()+partial.Load(); got != want {
		t.Errorf("cache.misses.elf = %d, clients saw %d misses+partials", got, want)
	}
	if got := reg.Counter("server.requests").Load(); got != goroutines*iters {
		t.Errorf("server.requests = %d, want %d", got, goroutines*iters)
	}
	if got := reg.Counter("server.request_errors").Load(); got != 0 {
		t.Errorf("server.request_errors = %d, want 0", got)
	}

	// The storm must have actually churned the cache, within its bound.
	if b := svc.Cache().Bytes(); b > cacheBytes {
		t.Errorf("cache over capacity: %d > %d", b, cacheBytes)
	}
	if ev := reg.Counter("cache.evictions").Load(); ev == 0 {
		t.Errorf("no evictions: cache (%d bytes cap) too big for the working set, test is vacuous", cacheBytes)
	}
	if g := reg.Gauge("server.inflight").Load(); g != 0 {
		t.Errorf("inflight gauge leaked: %d", g)
	}
}
