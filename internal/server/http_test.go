package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

func newTestServer(t *testing.T, opts HandlerOptions) (*Service, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	svc := NewService(Options{Jobs: 2, Metrics: reg})
	ts := httptest.NewServer(NewHandler(svc, opts))
	t.Cleanup(ts.Close)
	return svc, ts, reg
}

func postMultipart(t *testing.T, url string, fields map[string]string, files map[string][]byte) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for k, v := range fields {
		mw.WriteField(k, v)
	}
	for k, v := range files {
		fw, _ := mw.CreateFormFile(k, k+".bin")
		fw.Write(v)
	}
	mw.Close()
	resp, err := http.Post(url+"/v1/instrument", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPInstrumentEndToEnd(t *testing.T) {
	_, ts, reg := newTestServer(t, HandlerOptions{})
	p := workload.Programs()[0]
	spec := `{"name":"e2e","funcs":["` + strings.Join(p.Funcs, `","`) + `"]}`

	resp := postMultipart(t, ts.URL, map[string]string{"spec": spec, "source": p.Source}, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rvdynd-Cache"); got != "miss" {
		t.Errorf("first request cache state %q, want miss", got)
	}
	key := resp.Header.Get("X-Rvdynd-Key")
	if key == "" {
		t.Error("missing X-Rvdynd-Key")
	}
	if _, err := elfrv.Read(body); err != nil {
		t.Fatalf("response is not a loadable ELF: %v", err)
	}

	// Warm resubmission: hit, same key, same bytes.
	resp2 := postMultipart(t, ts.URL, map[string]string{"spec": spec, "source": p.Source}, nil)
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Rvdynd-Cache"); got != "hit" {
		t.Errorf("second request cache state %q, want hit", got)
	}
	if resp2.Header.Get("X-Rvdynd-Key") != key {
		t.Error("warm request keyed differently")
	}
	if !bytes.Equal(body, body2) {
		t.Error("warm response bytes differ from cold response")
	}

	// HTTP status metrics observed both requests.
	if got := reg.Counter("server.http.2xx").Load(); got != 2 {
		t.Errorf("server.http.2xx = %d, want 2", got)
	}
}

func TestHTTPInstrumentMeta(t *testing.T) {
	_, ts, _ := newTestServer(t, HandlerOptions{})
	p := workload.Programs()[0]
	spec := `{"funcs":["` + strings.Join(p.Funcs, `","`) + `"]}`

	// Raw response first, for the byte comparison.
	raw := postMultipart(t, ts.URL, map[string]string{"spec": spec, "source": p.Source}, nil)
	rawELF, _ := io.ReadAll(raw.Body)
	raw.Body.Close()

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("spec", spec)
	mw.WriteField("source", p.Source)
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/instrument?meta=1", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta struct {
		Key     string `json:"key"`
		Cache   string `json:"cache"`
		ELFSize int    `json:"elf_size"`
		Patches []struct {
			Func string `json:"func"`
			Kind string `json:"kind"`
		} `json:"patches"`
		Counters map[string]uint64 `json:"counters"`
		ELF      string            `json:"elf_base64"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Cache != "hit" {
		t.Errorf("meta request cache state %q, want hit", meta.Cache)
	}
	decoded, err := base64.StdEncoding.DecodeString(meta.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, rawELF) || meta.ELFSize != len(rawELF) {
		t.Error("meta elf_base64 differs from the raw octet-stream response")
	}
	if len(meta.Patches) == 0 {
		t.Error("meta response has no patches")
	}
	if len(meta.Counters) != len(p.Funcs) {
		t.Errorf("meta lists %d counters, want %d", len(meta.Counters), len(p.Funcs))
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, HandlerOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "ok ") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	p := workload.Programs()[0]
	postMultipart(t, ts.URL, map[string]string{
		"spec":   `{"funcs":["` + p.Funcs[0] + `"]}`,
		"source": p.Source,
	}, nil).Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"server.requests", "cache.misses", "server.latency_ns.cold"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
}

// TestHTTPMetricsPrometheus pins the /metrics content negotiation: the
// query parameter or a scraper's Accept header selects the Prometheus text
// exposition, which must parse and carry the server's counters; the default
// representation stays the plain registry dump.
func TestHTTPMetricsPrometheus(t *testing.T) {
	_, ts, _ := newTestServer(t, HandlerOptions{})
	p := workload.Programs()[0]
	postMultipart(t, ts.URL, map[string]string{
		"spec":   `{"funcs":["` + p.Funcs[0] + `"]}`,
		"source": p.Source,
	}, nil).Body.Close()

	get := func(url, accept string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// ?format=prometheus and a scraper Accept header both negotiate the
	// exposition format.
	for _, tc := range []struct{ url, accept string }{
		{ts.URL + "/metrics?format=prometheus", ""},
		{ts.URL + "/metrics", "text/plain;version=0.0.4"},
		{ts.URL + "/metrics", "application/openmetrics-text"},
	} {
		resp, body := get(tc.url, tc.accept)
		if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
			t.Errorf("GET %s (Accept %q): Content-Type %q, want %q", tc.url, tc.accept, got, obs.PromContentType)
		}
		fams, err := obs.ParsePrometheus(strings.NewReader(body))
		if err != nil {
			t.Fatalf("exposition does not parse: %v\n%s", err, body)
		}
		byName := map[string]string{}
		for _, f := range fams {
			byName[f.Name] = f.Type
		}
		if byName["server_requests"] != "counter" {
			t.Errorf("server_requests family = %q, want counter (families %v)", byName["server_requests"], byName)
		}
		if byName["server_latency_ns_cold"] != "histogram" {
			t.Errorf("server_latency_ns_cold family = %q, want histogram", byName["server_latency_ns_cold"])
		}
	}

	// The default stays the human-readable dump with dotted names.
	resp, body := get(ts.URL+"/metrics", "")
	if got := resp.Header.Get("Content-Type"); got != "text/plain; charset=utf-8" {
		t.Errorf("default Content-Type = %q", got)
	}
	if !strings.Contains(body, "server.requests") {
		t.Errorf("default dump missing dotted server.requests:\n%s", body)
	}
}

// TestHTTPMultipartTempFileChurn pins the multipart spill discipline: with a
// one-byte in-memory budget every uploaded binary spills to a temp file, and
// after a burst of distinct-keyed requests (each a full compute, churning the
// cache) the temp directory holds no more multipart-* files than before —
// RemoveAll reclaims each request's spill when the handler returns.
func TestHTTPMultipartTempFileChurn(t *testing.T) {
	_, ts, _ := newTestServer(t, HandlerOptions{MaxMemoryBytes: 1})
	p := workload.Programs()[0]
	f, err := asm.Assemble(p.Source, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}

	spillCount := func() int {
		matches, err := filepath.Glob(filepath.Join(os.TempDir(), "multipart-*"))
		if err != nil {
			t.Fatal(err)
		}
		return len(matches)
	}
	before := spillCount()

	for i := 0; i < 16; i++ {
		// A distinct spec name per request keys every request differently,
		// so each one runs the full compute path while the binary part sits
		// spilled on disk.
		spec := fmt.Sprintf(`{"name":"churn-%d","funcs":["%s"]}`, i, p.Funcs[0])
		resp := postMultipart(t, ts.URL, map[string]string{"spec": spec},
			map[string][]byte{"binary": raw})
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	if after := spillCount(); after > before {
		t.Errorf("multipart temp files grew from %d to %d — spilled parts are leaking", before, after)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts, reg := newTestServer(t, HandlerOptions{MaxUploadBytes: 32 << 10})
	p := workload.Programs()[0]
	goodSpec := `{"funcs":["` + p.Funcs[0] + `"]}`

	post := func(fields map[string]string, files map[string][]byte) int {
		resp := postMultipart(t, ts.URL, fields, files)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post(map[string]string{"spec": `{not json`, "source": p.Source}, nil); got != 400 {
		t.Errorf("bad spec JSON: %d, want 400", got)
	}
	if got := post(map[string]string{"spec": `{"unknown_field":1}`, "source": p.Source}, nil); got != 400 {
		t.Errorf("unknown spec field: %d, want 400", got)
	}
	if got := post(map[string]string{"spec": `{"funcs":["nope"]}`, "source": p.Source}, nil); got != 422 {
		t.Errorf("unknown function: %d, want 422", got)
	}
	if got := post(map[string]string{"spec": goodSpec}, nil); got != 422 {
		t.Errorf("no input: %d, want 422", got)
	}
	if got := post(map[string]string{"spec": goodSpec, "source": p.Source},
		map[string][]byte{"binary": {1, 2, 3}}); got != 422 {
		t.Errorf("both inputs: %d, want 422", got)
	}
	if got := post(map[string]string{"spec": goodSpec},
		map[string][]byte{"binary": []byte("garbage, not an ELF")}); got != 422 {
		t.Errorf("corrupt ELF: %d, want 422", got)
	}
	if got := post(map[string]string{"spec": goodSpec},
		map[string][]byte{"binary": make([]byte, 64<<10)}); got != 413 {
		t.Errorf("oversized upload: %d, want 413", got)
	}

	// Non-multipart body.
	resp, err := http.Post(ts.URL+"/v1/instrument", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("non-multipart body: %d, want 400", resp.StatusCode)
	}

	// Method and path routing.
	resp, err = http.Get(ts.URL + "/v1/instrument")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/instrument: %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", resp.StatusCode)
	}

	if got := reg.Counter("server.http.4xx").Load(); got < 9 {
		t.Errorf("server.http.4xx = %d, want >= 9", got)
	}
	if got := reg.Counter("server.http.5xx").Load(); got != 0 {
		t.Errorf("server.http.5xx = %d, want 0", got)
	}
}
