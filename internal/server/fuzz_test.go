package server

import (
	"bytes"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// fuzzEnv is one shared server under fuzz: the service, its HTTP handler,
// and a known-good request whose reference output lets every iteration
// probe for cache poisoning.
type fuzzEnv struct {
	svc     *Service
	handler http.Handler
	goodReq Request
	ref     []byte
}

var (
	fuzzOnce sync.Once
	fuzz     fuzzEnv
)

const fuzzMaxUpload = 256 << 10

func fuzzSetup(t testing.TB) *fuzzEnv {
	fuzzOnce.Do(func() {
		svc := NewService(Options{Jobs: 2, CacheBytes: 1 << 20, Metrics: obs.NewRegistry()})
		good := workload.Programs()[0]
		req := Request{Source: good.Source, Spec: Spec{Funcs: good.Funcs}}
		resp, err := svc.Instrument(req)
		if err != nil {
			t.Fatalf("good request failed at setup: %v", err)
		}
		fuzz = fuzzEnv{
			svc:     svc,
			handler: NewHandler(svc, HandlerOptions{MaxUploadBytes: fuzzMaxUpload}),
			goodReq: req,
			ref:     resp.ELF,
		}
	})
	return &fuzz
}

const fuzzBoundary = "rvdyndfuzzboundary"

// multipartBody builds a well-framed body with the fixed fuzz boundary.
func multipartBody(t testing.TB, build func(*multipart.Writer)) []byte {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.SetBoundary(fuzzBoundary); err != nil {
		t.Fatal(err)
	}
	build(mw)
	mw.Close()
	return buf.Bytes()
}

// FuzzServeRequest throws adversarial request bodies at the HTTP decoder
// and spec parser: truncated multipart framing, oversized uploads, corrupt
// ELFs, junk specs. The invariants, checked on every input:
//
//   - the handler never panics (a panic fails the fuzz run outright);
//   - the status is 200 or 4xx — malformed input is the client's fault,
//     never a 5xx;
//   - the cache is never poisoned: a known-good request still serves bytes
//     identical to its pre-fuzz reference after every adversarial input.
func FuzzServeRequest(f *testing.F) {
	env := fuzzSetup(f)
	ctype := "multipart/form-data; boundary=" + fuzzBoundary

	good := workload.Programs()[0]
	goodSpec := `{"name":"fuzz","funcs":["` + good.Funcs[0] + `"]}`
	srcBody := multipartBody(f, func(mw *multipart.Writer) {
		mw.WriteField("spec", goodSpec)
		mw.WriteField("source", good.Source)
	})
	elfFile, err := asm.Assemble(good.Source, asm.Options{})
	if err != nil {
		f.Fatal(err)
	}
	elfRaw, err := elfFile.Write()
	if err != nil {
		f.Fatal(err)
	}
	binBody := func(elf []byte) []byte {
		return multipartBody(f, func(mw *multipart.Writer) {
			mw.WriteField("spec", goodSpec)
			fw, _ := mw.CreateFormFile("binary", "a.elf")
			fw.Write(elf)
		})
	}

	// Seed corpus: the valid shapes plus every malformation class the issue
	// names.
	f.Add(srcBody, ctype)
	f.Add(binBody(elfRaw), ctype)
	// Truncated multipart framing at several depths.
	for _, frac := range []int{4, 2, 1} {
		body := srcBody[:len(srcBody)*3/(frac*4)]
		f.Add(body, ctype)
	}
	// Corrupt ELFs: truncated image, flipped magic, mangled section header
	// offset, zeroed header.
	f.Add(binBody(elfRaw[:len(elfRaw)/2]), ctype)
	mutated := bytes.Clone(elfRaw)
	mutated[1] ^= 0xff
	f.Add(binBody(mutated), ctype)
	mutated = bytes.Clone(elfRaw)
	for i := 0x28; i < 0x30 && i < len(mutated); i++ {
		mutated[i] = 0xff
	}
	f.Add(binBody(mutated), ctype)
	f.Add(binBody(make([]byte, 64)), ctype)
	// Spec malformations: junk JSON, unknown field, unknown function,
	// duplicate function, bad modes.
	for _, spec := range []string{
		`{`, `{"funcs":"notalist"}`, `{"bogus":1}`,
		`{"funcs":["no_such_fn"]}`, `{"funcs":["f","f"]}`,
		`{"funcs":["f"],"points":"sideways"}`, `{"funcs":["f"],"mode":"yolo"}`,
	} {
		spec := spec
		f.Add(multipartBody(f, func(mw *multipart.Writer) {
			mw.WriteField("spec", spec)
			mw.WriteField("source", good.Source)
		}), ctype)
	}
	// Both source and binary, and neither.
	f.Add(multipartBody(f, func(mw *multipart.Writer) {
		mw.WriteField("spec", goodSpec)
		mw.WriteField("source", good.Source)
		fw, _ := mw.CreateFormFile("binary", "a.elf")
		fw.Write(elfRaw)
	}), ctype)
	f.Add(multipartBody(f, func(mw *multipart.Writer) {
		mw.WriteField("spec", goodSpec)
	}), ctype)
	// Oversized upload (over the 256 KiB handler cap).
	f.Add(binBody(make([]byte, fuzzMaxUpload+1024)), ctype)
	// Non-multipart bodies and a junk content type.
	f.Add([]byte("not multipart at all"), ctype)
	f.Add([]byte{}, ctype)
	f.Add(srcBody, "application/x-tar")
	f.Add(srcBody, "multipart/form-data; boundary=")

	f.Fuzz(func(t *testing.T, body []byte, contentType string) {
		req := httptest.NewRequest("POST", "/v1/instrument", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		env.handler.ServeHTTP(rec, req)

		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("status %d for adversarial input (want 200 or 4xx): %s",
				rec.Code, rec.Body.String())
		}

		// Poison probe: the known-good request must still serve reference
		// bytes. (Its artifacts may have been evicted by fuzz inserts — a
		// recompute must converge to the same bytes.)
		resp, err := env.svc.Instrument(env.goodReq)
		if err != nil {
			t.Fatalf("good request broke after adversarial input: %v", err)
		}
		if !bytes.Equal(resp.ELF, env.ref) {
			t.Fatalf("cache poisoned: good request served %d bytes != reference %d bytes (state %s)",
				len(resp.ELF), len(env.ref), resp.CacheState)
		}
	})
}
