package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTraceJSONSchema builds a nested + concurrent trace and validates the
// exported JSON: it parses, every event is a well-formed complete event,
// timestamps are monotone per tid in emission order, and spans on one tid
// nest properly (no partial overlap).
func TestTraceJSONSchema(t *testing.T) {
	tr := NewTracer()

	// tid 1: parent with two sequential children.
	parent := tr.Begin(1, "parent", "test")
	c1 := tr.Begin(1, "child1", "test")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := tr.Begin(1, "child2", "test")
	c2.SetArg("k", "v")
	time.Sleep(time.Millisecond)
	c2.End()
	parent.End()

	// tids 2..5: concurrent workers.
	var wg sync.WaitGroup
	for w := 2; w <= 5; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := tr.Begin(tid, "worker", "test")
			time.Sleep(time.Millisecond)
			s.End()
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		Unit        string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(f.TraceEvents))
	}
	byTID := map[int][]TraceEvent{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.PID != 1 {
			t.Errorf("malformed event: %+v", ev)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative time ts=%f dur=%f", ev.Name, ev.TS, ev.Dur)
		}
		byTID[ev.TID] = append(byTID[ev.TID], ev)
	}

	// Monotone: complete events are appended at End, so within one tid each
	// event's end time (ts+dur) must not precede the previous event's end.
	for tid, evs := range byTID {
		for i := 1; i < len(evs); i++ {
			if evs[i].TS+evs[i].Dur+0.5 < evs[i-1].TS+evs[i-1].Dur {
				t.Errorf("tid %d: event %q ends before predecessor %q", tid, evs[i].Name, evs[i-1].Name)
			}
		}
	}

	// Nesting on tid 1: each pair of spans is either disjoint or contained;
	// partial overlap would render as garbage in Perfetto.
	evs := byTID[1]
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			a, b := evs[i], evs[j]
			aEnd, bEnd := a.TS+a.Dur, b.TS+b.Dur
			disjoint := aEnd <= b.TS+0.5 || bEnd <= a.TS+0.5
			aInB := a.TS >= b.TS-0.5 && aEnd <= bEnd+0.5
			bInA := b.TS >= a.TS-0.5 && bEnd <= aEnd+0.5
			if !disjoint && !aInB && !bInA {
				t.Errorf("tid 1: spans %q and %q partially overlap", a.Name, b.Name)
			}
		}
	}

	// The parent must contain both children.
	var p, ch1 TraceEvent
	for _, ev := range evs {
		switch ev.Name {
		case "parent":
			p = ev
		case "child1":
			ch1 = ev
		}
	}
	if ch1.TS < p.TS-0.5 || ch1.TS+ch1.Dur > p.TS+p.Dur+0.5 {
		t.Errorf("child1 %+v not contained in parent %+v", ch1, p)
	}

	// Args survive the round trip.
	found := false
	for _, ev := range f.TraceEvents {
		if ev.Name == "child2" && ev.Args["k"] == "v" {
			found = true
		}
	}
	if !found {
		t.Error("child2 args lost in export")
	}
}

// TestTracerComplete covers virtual-clock spans: explicit timestamps pass
// through unchanged.
func TestTracerComplete(t *testing.T) {
	tr := NewTracer()
	tr.Complete(9, "call", "guest", 1500*time.Microsecond, 250*time.Microsecond, map[string]string{"fn": "multiply"})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.TS != 1500 || ev.Dur != 250 || ev.TID != 9 || ev.Args["fn"] != "multiply" {
		t.Fatalf("bad event: %+v", ev)
	}
}

// TestTimer checks the span-or-not duration helper.
func TestTimer(t *testing.T) {
	tm := StartTimer(nil, 0, "x", "y")
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d < time.Millisecond {
		t.Fatalf("timer measured %v", d)
	}
	tr := NewTracer()
	tm = StartTimer(tr, 3, "x", "y")
	tm.Stop()
	if evs := tr.Events(); len(evs) != 1 || evs[0].Name != "x" || evs[0].TID != 3 {
		t.Fatalf("timer span not recorded: %+v", tr.Events())
	}
}
