package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, the format WritePrometheus emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; every illegal rune (the registry's
// dotted namespaces in particular) becomes an underscore.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): a # TYPE line per family, counters and gauges as
// single samples, histograms as cumulative le-labelled _bucket series plus
// _sum and _count. Families are sorted by sanitized name so the output is
// deterministic. A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		name, typ string
		render    func(bw *bufio.Writer, name string)
	}
	r.mu.Lock()
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		v := c.Load()
		fams = append(fams, family{sanitizeMetricName(name), "counter",
			func(bw *bufio.Writer, name string) {
				fmt.Fprintf(bw, "%s %d\n", name, v)
			}})
	}
	for name, g := range r.gauges {
		v := g.Load()
		fams = append(fams, family{sanitizeMetricName(name), "gauge",
			func(bw *bufio.Writer, name string) {
				fmt.Fprintf(bw, "%s %d\n", name, v)
			}})
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		sum, count := h.Sum(), h.Count()
		fams = append(fams, family{sanitizeMetricName(name), "histogram",
			func(bw *bufio.Writer, name string) {
				var cum uint64
				for i, bound := range bounds {
					cum += counts[i]
					fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
				}
				fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
				fmt.Fprintf(bw, "%s_sum %d\n", name, sum)
				fmt.Fprintf(bw, "%s_count %d\n", name, count)
			}})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.render(bw, f.name)
	}
	return bw.Flush()
}

// PromSample is one sample line of a parsed exposition.
type PromSample struct {
	Name   string // full sample name, e.g. foo_bucket
	Labels string // raw label block without braces ("" when unlabelled)
	Value  float64
}

// PromFamily is one metric family of a parsed exposition.
type PromFamily struct {
	Name    string // family name from the # TYPE line
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []PromSample
}

// Sample returns the value of the family's sample with the given full name
// and raw label block.
func (f *PromFamily) Sample(name, labels string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value, true
		}
	}
	return 0, false
}

// ParsePrometheus parses text exposition format, validating structure as a
// scraper would: sample lines must be name[{labels}] value, every sample
// must belong to the family its name prefixes, histogram bucket series must
// be cumulative with a le="+Inf" bucket equal to _count. Families are
// returned in exposition order.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var fams []PromFamily
	byName := map[string]*PromFamily{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := byName[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, name)
				}
				fams = append(fams, PromFamily{Name: name, Type: typ})
				byName[name] = &fams[len(fams)-1]
			}
			continue // other comments (# HELP, ...) are ignored
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		fam := familyFor(byName, s.Name)
		if fam == nil {
			// Untyped sample with no TYPE line: give it its own family.
			fams = append(fams, PromFamily{Name: s.Name, Type: "untyped"})
			byName[s.Name] = &fams[len(fams)-1]
			fam = byName[s.Name]
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := validateHistogramFamily(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its family, accounting for histogram
// and summary suffixes (_bucket, _sum, _count).
func familyFor(byName map[string]*PromFamily, sampleName string) *PromFamily {
	if f, ok := byName[sampleName]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sampleName, suffix); ok {
			if f, ok := byName[base]; ok {
				return f
			}
		}
	}
	return nil
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced label braces in %q", line)
		}
		s.Name = rest[:i]
		s.Labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return s, fmt.Errorf("empty sample line")
		}
		s.Name = fields[0]
		rest = strings.TrimSpace(rest[len(fields[0]):])
	}
	if s.Name == "" {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func validateHistogramFamily(f *PromFamily) error {
	var buckets []PromSample
	var count float64
	haveCount := false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			buckets = append(buckets, s)
		case f.Name + "_count":
			count = s.Value
			haveCount = true
		}
	}
	if !haveCount {
		return fmt.Errorf("prom: histogram %s has no _count sample", f.Name)
	}
	prev := math.Inf(-1)
	var cum float64
	haveInf := false
	for _, b := range buckets {
		le, ok := labelValue(b.Labels, "le")
		if !ok {
			return fmt.Errorf("prom: histogram %s bucket without le label", f.Name)
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
			haveInf = true
			if b.Value != count {
				return fmt.Errorf("prom: histogram %s: le=\"+Inf\" bucket %g != count %g",
					f.Name, b.Value, count)
			}
		} else {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("prom: histogram %s: bad le %q", f.Name, le)
			}
		}
		if bound <= prev {
			return fmt.Errorf("prom: histogram %s: bucket bounds not ascending at le=%q", f.Name, le)
		}
		if b.Value < cum {
			return fmt.Errorf("prom: histogram %s: bucket counts not cumulative at le=%q", f.Name, le)
		}
		prev, cum = bound, b.Value
	}
	if len(buckets) > 0 && !haveInf {
		return fmt.Errorf("prom: histogram %s has buckets but no le=\"+Inf\"", f.Name)
	}
	return nil
}

// labelValue extracts one label's (unquoted) value from a raw label block.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k != key {
			continue
		}
		return strings.Trim(v, `"`), true
	}
	return "", false
}
