package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; totals must be exact and the run must be clean under -race.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Load(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
}

// TestHistogramConcurrent checks that concurrent observations lose nothing:
// count, sum, min, and max must all be exact (only quantiles are estimates).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 20))
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < per; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(x % 100000)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min > s.Max || float64(s.Sum) < float64(s.Count)*float64(s.Min) {
		t.Fatalf("inconsistent summary: %+v", s)
	}
}

// TestHistogramQuantile validates the bucket-interpolated quantiles against
// a sorted reference of the same observations: every estimate must land
// within the width of the bucket covering the true value.
func TestHistogramQuantile(t *testing.T) {
	bounds := ExpBuckets(1, 2, 24)
	h := NewHistogram(bounds)
	var vals []uint64
	x := uint64(42)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := x % 1000000
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
		rank := int(q*float64(len(vals))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := float64(vals[rank])
		got := h.Quantile(q)
		// Error bound: the width of the bucket holding the true value.
		i := sort.Search(len(bounds), func(i int) bool { return float64(bounds[i]) >= truth })
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := truth
		if i < len(bounds) {
			hi = float64(bounds[i])
		}
		width := hi - lo
		if math.Abs(got-truth) > width+1 {
			t.Errorf("q=%.2f: got %.1f, true %.1f, bucket width %.1f", q, got, truth, width)
		}
	}

	// Degenerate distribution: every estimate collapses to the single value.
	one := NewHistogram(bounds)
	for i := 0; i < 100; i++ {
		one.Observe(777)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got != 777 {
			t.Errorf("constant dist q=%.1f: got %.1f, want 777", q, got)
		}
	}
}

// TestNilSink pins the disabled fast path: every operation on nil handles
// must be a silent no-op.
func TestNilSink(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Add(3)
	c.Inc()
	g.Set(9)
	g.Add(1)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must discard updates")
	}
	if s := r.String(); s != "" {
		t.Fatalf("nil registry dump = %q, want empty", s)
	}
	var tr *Tracer
	sp := tr.Begin(1, "a", "b")
	sp.SetArg("k", "v")
	sp.End()
	tr.Complete(1, "x", "", 0, 0, nil)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Fatalf("nil tracer JSON = %q", sb.String())
	}
}

// TestRegistryDumpSorted pins the deterministic dump order.
func TestRegistryDumpSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle").Set(3)
	s := r.String()
	ia, im, iz := strings.Index(s, "a.first"), strings.Index(s, "m.middle"), strings.Index(s, "z.last")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("dump not sorted:\n%s", s)
	}
}

// TestExpBucketsOverflow makes sure the bucket ladder clamps instead of
// wrapping when the bounds exceed uint64.
func TestExpBucketsOverflow(t *testing.T) {
	b := ExpBuckets(1, 2, 200)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
	if len(b) >= 200 {
		t.Fatalf("ladder should clamp before 200 powers of two, got %d", len(b))
	}
}
