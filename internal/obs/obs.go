// Package obs is the unified observability layer: a stdlib-only metrics
// registry (counters, gauges, bounded-bucket histograms) plus a span tracer
// that exports Chrome trace_event JSON viewable in Perfetto.
//
// Every handle is nil-safe: a nil *Registry hands out nil *Counter /
// *Gauge / *Histogram, and every method on a nil receiver is a no-op. That
// is the disabled fast path — components hold pre-resolved handles and call
// them unconditionally; when observability is off the calls cost one
// predictable branch, no atomics, no allocation. Hot loops that cannot
// afford even the branch (the emulator's fused dispatch) gate on a single
// enclosing pointer instead.
//
// All update paths are atomic and race-safe: one Registry and one Tracer
// may be shared by any number of goroutines (the concurrent pipeline's
// workers feed a single pair).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The nil Counter discards
// updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for the nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. The nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current level (0 for the nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled sink: it hands out nil
// metric handles and renders as an empty dump.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns the nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (see NewHistogram). Later calls
// ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WriteTo renders every metric, sorted by name, one per line — the format
// rvdyn -metrics and rvemu -stats print. Histograms render their summary.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if r != nil {
		r.mu.Lock()
		type row struct {
			name, val string
		}
		rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.hists))
		for name, c := range r.counters {
			rows = append(rows, row{name, fmt.Sprintf("%d", c.Load())})
		}
		for name, g := range r.gauges {
			rows = append(rows, row{name, fmt.Sprintf("%d", g.Load())})
		}
		for name, h := range r.hists {
			rows = append(rows, row{name, h.Summary().String()})
		}
		r.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, row := range rows {
			fmt.Fprintf(&b, "%-44s %s\n", row.name, row.val)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the registry dump (see WriteTo).
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}
