package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records named, nested timed regions (spans) and exports them as
// Chrome trace_event JSON — the format chrome://tracing and Perfetto load
// directly. Spans on the same tid nest by time containment, which is how
// the viewers render call trees; concurrent regions (pipeline workers) use
// distinct tids so they draw as parallel rows.
//
// The nil Tracer is the disabled sink: Begin returns the nil Span, whose
// End is a no-op, so instrumented code never branches on enablement.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []TraceEvent
}

// TraceEvent is one Chrome trace_event object. Only "complete" events
// (ph "X") are emitted: begin time TS and duration Dur, both in
// microseconds since the trace epoch.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// NewTracer creates a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one open timed region. The nil Span discards everything.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	tid   int
	start time.Duration
	args  map[string]string
}

// Begin opens a span on the given tid. Close it with End. tid groups spans
// into one renderer row: sequential nested spans share a tid, concurrent
// workers take distinct tids.
func (t *Tracer) Begin(tid int, name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, cat: cat, tid: tid, start: time.Since(t.epoch)}
}

// SetArg attaches a key/value annotation rendered in the trace viewer's
// detail pane.
func (s *Span) SetArg(key, val string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = val
}

// End closes the span and records the event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.tr.epoch)
	s.tr.add(TraceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS:  float64(s.start.Microseconds()),
		Dur: float64((end - s.start).Microseconds()),
		PID: 1, TID: s.tid, Args: s.args,
	})
}

// Complete records a span with caller-supplied timestamps — used for spans
// measured on a clock other than the tracer's own (the profiler's virtual
// guest clock).
func (t *Tracer) Complete(tid int, name, cat string, start, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  float64(start.Microseconds()),
		Dur: float64(dur.Microseconds()),
		PID: 1, TID: tid, Args: args,
	})
}

func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a snapshot of the recorded events (tests and exporters).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// traceFile is the JSON object format Perfetto and chrome://tracing load.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the trace in Chrome trace_event JSON object form. A nil
// tracer writes an empty (but valid) trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Timer measures one region on the wall clock and, when a tracer is
// attached, records it as a span. It replaces ad-hoc time.Now()/Since
// plumbing: callers get the duration for their own stats table and the
// span lands in the trace for free. The zero Timer is invalid; a Timer
// from StartTimer with a nil tracer still measures.
type Timer struct {
	start time.Time
	span  *Span
}

// StartTimer begins a measured (and, with tr non-nil, traced) region.
func StartTimer(tr *Tracer, tid int, name, cat string) Timer {
	return Timer{start: time.Now(), span: tr.Begin(tid, name, cat)}
}

// Stop ends the region, records the span if any, and returns the elapsed
// wall-clock time.
func (t Timer) Stop() time.Duration {
	t.span.End()
	return time.Since(t.start)
}
