package obs

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileEdgeCases is the edge-case audit table: empty histogram,
// exact extremes, out-of-range q, NaN q, and single-bucket data.
func TestQuantileEdgeCases(t *testing.T) {
	empty := NewHistogram([]uint64{10, 100})

	loaded := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{3, 7, 42, 42, 99, 500} {
		loaded.Observe(v)
	}

	// Every observation lands in one bucket (11..100).
	single := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{20, 30, 90} {
		single.Observe(v)
	}

	tests := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"nil histogram", nil, 0.5, 0},
		{"empty q=0.5", empty, 0.5, 0},
		{"empty q=0", empty, 0, 0},
		{"empty q=1", empty, 1, 0},
		{"q=0 is exact min", loaded, 0, 3},
		{"q=1 is exact max", loaded, 1, 500},
		{"q<0 clamps to min", loaded, -0.5, 3},
		{"q>1 clamps to max", loaded, 1.5, 500},
		{"single-bucket q=0", single, 0, 20},
		{"single-bucket q=1", single, 1, 90},
	}
	for _, tc := range tests {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}

	// NaN q must report NaN, not silently return the maximum.
	if got := loaded.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	if got := empty.Quantile(math.NaN()); got != 0 {
		t.Errorf("empty Quantile(NaN) = %v, want 0", got)
	}

	// Interior quantiles of the single-bucket histogram stay inside the
	// observed range (bucketRange clamps to min/max).
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := single.Quantile(q)
		if got < 20 || got > 90 {
			t.Errorf("single-bucket Quantile(%v) = %v, outside observed [20, 90]", q, got)
		}
	}
}

func TestHistogramBucketsSnapshot(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{5, 50, 5000} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 10 || bounds[1] != 100 {
		t.Fatalf("bounds = %v, want [10 100]", bounds)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v, want [1 1 1]", counts)
	}
	if h.Sum() != 5055 {
		t.Errorf("sum = %d, want 5055", h.Sum())
	}
	var nilH *Histogram
	if b, c := nilH.Buckets(); b != nil || c != nil {
		t.Error("nil histogram Buckets() must return nil slices")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"emu.instructions_retired", "emu_instructions_retired"},
		{"dbi.cache-bytes", "dbi_cache_bytes"},
		{"9lives", "_lives"},
		{"ok_name:sub", "ok_name:sub"},
		{"", "_"},
		{"a b\tc", "a_b_c"},
	}
	for _, tc := range tests {
		if got := sanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition byte-for-byte: sorted
// families, TYPE lines, cumulative histogram buckets with le="+Inf", _sum
// and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("emu.instructions_retired").Add(123)
	r.Gauge("server.inflight").Set(-2)
	h := r.Histogram("api.latency.cycles", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(60)
	h.Observe(5000)

	const want = `# TYPE api_latency_cycles histogram
api_latency_cycles_bucket{le="10"} 1
api_latency_cycles_bucket{le="100"} 3
api_latency_cycles_bucket{le="+Inf"} 4
api_latency_cycles_sum 5115
api_latency_cycles_count 4
# TYPE emu_instructions_retired counter
emu_instructions_retired 123
# TYPE server_inflight gauge
server_inflight -2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	var nb strings.Builder
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&nb); err != nil || nb.Len() != 0 {
		t.Errorf("nil registry: err=%v, wrote %q", err, nb.String())
	}
}

// TestParsePrometheusRoundTrip scrapes WritePrometheus output back through
// the parser, as rvload does against a live server.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("emu.instructions_retired").Add(9999)
	r.Gauge("cache.groups").Set(7)
	h := r.Histogram("span.cycles", []uint64{1, 8, 64})
	for _, v := range []uint64{1, 2, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\nexposition:\n%s", err, b.String())
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	byName := map[string]*PromFamily{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	ctr := byName["emu_instructions_retired"]
	if ctr == nil || ctr.Type != "counter" {
		t.Fatalf("counter family missing or mistyped: %+v", ctr)
	}
	if v, ok := ctr.Sample("emu_instructions_retired", ""); !ok || v != 9999 {
		t.Errorf("counter value = %v (ok=%v), want 9999", v, ok)
	}
	hist := byName["span_cycles"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hist)
	}
	if v, ok := hist.Sample("span_cycles_count", ""); !ok || v != 4 {
		t.Errorf("histogram count = %v (ok=%v), want 4", v, ok)
	}
	if v, ok := hist.Sample("span_cycles_bucket", `le="+Inf"`); !ok || v != 4 {
		t.Errorf("+Inf bucket = %v (ok=%v), want 4", v, ok)
	}
	if v, ok := hist.Sample("span_cycles_bucket", `le="8"`); !ok || v != 3 {
		t.Errorf(`le="8" bucket = %v (ok=%v), want cumulative 3`, v, ok)
	}
}

// TestParsePrometheusRejects pins the validations a scrape depends on.
func TestParsePrometheusRejects(t *testing.T) {
	bad := []struct{ name, in string }{
		{"garbage value", "foo bar\n"},
		{"missing value", "foo\n"},
		{"bad type", "# TYPE foo widget\n"},
		{"malformed type line", "# TYPE foo\n"},
		{"duplicate family", "# TYPE foo counter\n# TYPE foo counter\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"},
		{"inf bucket != count", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"histogram without count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n"},
		{"unordered bounds", "# TYPE h histogram\n" +
			"h_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
	}
	for _, tc := range bad {
		if _, err := ParsePrometheus(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
	// Comments and blank lines are fine; unknown untyped samples get their
	// own family.
	ok := "# HELP something or other\n\nfree_sample 1.5\n"
	fams, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("benign input rejected: %v", err)
	}
	if len(fams) != 1 || fams[0].Type != "untyped" || fams[0].Name != "free_sample" {
		t.Errorf("untyped fallback: %+v", fams)
	}
}
