package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a bounded-bucket histogram of uint64 observations: a fixed
// set of ascending upper bounds plus an overflow bucket, with atomic
// per-bucket counts and atomic sum/count/min/max, so concurrent Observe
// calls never lock. Quantiles are estimated by linear interpolation inside
// the bucket that holds the requested rank, so the estimation error is
// bounded by the bucket's width.
//
// The nil Histogram discards observations and reports an empty summary.
type Histogram struct {
	bounds []uint64 // ascending; bucket i holds v <= bounds[i]
	counts []atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
	min    atomic.Uint64 // valid when count > 0
	max    atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending upper bounds
// (an overflow bucket is always appended). Nil or empty bounds default to
// ExpBuckets(1, 2, 32), which covers the full uint32 range in powers of two.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = ExpBuckets(1, 2, 32)
	}
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(math.MaxUint64)
	return h
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor, ...
func ExpBuckets(start, factor uint64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	out := make([]uint64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		next := v * factor
		if next <= v { // overflow: clamp the ladder
			break
		}
		v = next
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; beyond the last bound falls
	// into the overflow bucket.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values.
// It returns 0 when the histogram is empty and NaN for NaN q. The extremes
// are exact: Quantile(0) is the observed minimum and Quantile(1) the
// observed maximum (out-of-range q clamps to those). In between, the
// estimate interpolates linearly within the covering bucket; the overflow
// bucket interpolates up to the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		// Without this, NaN fails every rank comparison below and would
		// silently report the maximum.
		return math.NaN()
	}
	if q <= 0 {
		return float64(h.min.Load())
	}
	if q >= 1 {
		return float64(h.max.Load())
	}
	// rank is 1-based: the smallest value has rank 1, the largest rank
	// total, so Quantile(0) ~ min and Quantile(1) ~ max.
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(h.max.Load())
}

// bucketRange returns the value range [lo, hi] bucket i covers, clamped to
// the observed min/max so sparse histograms interpolate tightly.
func (h *Histogram) bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		lo = 0
	} else {
		lo = float64(h.bounds[i-1])
	}
	if i < len(h.bounds) {
		hi = float64(h.bounds[i])
	} else {
		hi = float64(h.max.Load())
	}
	if mn := float64(h.min.Load()); lo < mn {
		lo = mn
	}
	if mx := float64(h.max.Load()); hi > mx {
		hi = mx
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets snapshots the bucket layout: the ascending upper bounds and the
// per-bucket observation counts. counts has one more entry than bounds —
// the trailing overflow bucket. The nil Histogram returns nil slices.
func (h *Histogram) Buckets() (bounds, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]uint64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// HistSummary is a point-in-time histogram digest.
type HistSummary struct {
	Count    uint64
	Sum      uint64
	Min, Max uint64
	P50      float64
	P90      float64
	P99      float64
}

func (s HistSummary) String() string {
	if s.Count == 0 {
		return "count 0"
	}
	return fmt.Sprintf("count %d  sum %d  min %d  max %d  p50 %.1f  p90 %.1f  p99 %.1f",
		s.Count, s.Sum, s.Min, s.Max, s.P50, s.P90, s.P99)
}

// Summary digests the histogram.
func (h *Histogram) Summary() HistSummary {
	if h == nil || h.count.Load() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
