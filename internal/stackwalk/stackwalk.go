// Package stackwalk is the StackwalkerAPI analog (paper Section 3.2.7): it
// collects call stacks from a stopped process. Like Dyninst's, it has a
// plugin architecture of "frame steppers", each able to step through one
// style of frame; the walker tries them in order.
//
// The paper anticipates exactly the RISC-V difficulty these steppers
// divide: the ABI designates x8 as the frame pointer, but most compilers
// use it as a general register and manage frames purely through the stack
// pointer. The FramePointerStepper handles the former; the
// StackHeightStepper uses the dataflow package's stack-height and
// return-address-location analysis to handle the latter (and leaf frames
// where the return address is still in ra).
package stackwalk

import (
	"fmt"

	"rvdyn/internal/dataflow"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
)

// Frame is one walked stack frame.
type Frame struct {
	PC uint64 // program counter (return address for outer frames)
	SP uint64 // stack pointer on entry to this frame's function
	FP uint64 // frame pointer register value, when tracked

	FuncName string
	Func     *parse.Function
	Stepper  string // which stepper produced the *next* (caller) frame
}

func (f Frame) String() string {
	name := f.FuncName
	if name == "" {
		name = "?"
	}
	return fmt.Sprintf("%s pc=%#x sp=%#x", name, f.PC, f.SP)
}

// Target abstracts the stopped thread the walker inspects (satisfied by
// proc.Process).
type Target interface {
	GetReg(riscv.Reg) uint64
	ReadMem(addr uint64, n int) ([]byte, error)
}

// Stepper steps from a frame to its caller's frame.
type Stepper interface {
	Name() string
	// Step returns the caller frame. ok=false means this stepper cannot
	// handle the frame (the walker tries the next plugin).
	Step(w *Walker, f Frame, innermost bool) (Frame, bool)
}

// Walker drives the steppers over a target.
type Walker struct {
	CFG      *parse.CFG
	Target   Target
	Steppers []Stepper

	// Translate, when set, maps program counters in instrumentation patch
	// areas back to the original addresses their code was relocated from,
	// so walks through instrumented frames attribute correctly (Dyninst's
	// stack walker is instrumentation-aware in the same fashion). Returning
	// the input means "not relocated code".
	Translate func(pc uint64) uint64

	stackCache map[uint64]*dataflow.StackResult
}

// New builds a walker with the default stepper stack: the precise
// stack-height stepper first, the frame-pointer convention second.
func New(cfg *parse.CFG, tgt Target) *Walker {
	return &Walker{
		CFG:    cfg,
		Target: tgt,
		Steppers: []Stepper{
			&StackHeightStepper{},
			&FramePointerStepper{},
		},
		stackCache: map[uint64]*dataflow.StackResult{},
	}
}

func (w *Walker) stackFor(fn *parse.Function) *dataflow.StackResult {
	sr, ok := w.stackCache[fn.Entry]
	if !ok {
		sr = dataflow.StackHeights(fn)
		w.stackCache[fn.Entry] = sr
	}
	return sr
}

func (w *Walker) read64(addr uint64) (uint64, bool) {
	b, err := w.Target.ReadMem(addr, 8)
	if err != nil {
		return 0, false
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, true
}

const maxFrames = 256

// Walk collects the call stack, innermost frame first.
func (w *Walker) Walk() ([]Frame, error) {
	cur := Frame{
		PC: w.xlat(w.Target.GetReg(riscv.RegPC)),
		SP: w.Target.GetReg(riscv.RegSP),
		FP: w.Target.GetReg(riscv.RegFP),
	}
	var out []Frame
	innermost := true
	for len(out) < maxFrames {
		if fn, ok := w.CFG.FuncContaining(cur.PC); ok {
			cur.Func = fn
			cur.FuncName = fn.Name
		}
		// The process entry function has no caller: stop here.
		if cur.Func != nil && w.CFG.Symtab != nil {
			if _, ok := cur.Func.BlockContaining(w.CFG.Symtab.Entry); ok {
				out = append(out, cur)
				break
			}
		}
		stepped := false
		var next Frame
		for _, s := range w.Steppers {
			if n, ok := s.Step(w, cur, innermost); ok {
				cur.Stepper = s.Name()
				next, stepped = n, true
				break
			}
		}
		out = append(out, cur)
		if !stepped {
			break
		}
		// Terminate on an obviously bogus caller (walked off the program).
		if next.PC == 0 || next.PC == cur.PC && next.SP == cur.SP {
			break
		}
		next.PC = w.xlat(next.PC)
		if _, known := w.CFG.FuncContaining(next.PC); !known {
			break
		}
		cur = next
		innermost = false
	}
	return out, nil
}

func (w *Walker) xlat(pc uint64) uint64 {
	if w.Translate == nil {
		return pc
	}
	return w.Translate(pc)
}

// ---------------------------------------------------------------------------
// StackHeightStepper

// StackHeightStepper recovers the caller frame from the dataflow package's
// stack-height and RA-location analyses: it needs no frame pointer, which
// is the common case on RISC-V.
type StackHeightStepper struct{}

func (*StackHeightStepper) Name() string { return "stack-height" }

func (s *StackHeightStepper) Step(w *Walker, f Frame, innermost bool) (Frame, bool) {
	if f.Func == nil {
		return Frame{}, false
	}
	sr := w.stackFor(f.Func)
	h, ok := sr.HeightAt(f.PC)
	if !ok {
		return Frame{}, false
	}
	entrySP := f.SP - uint64(h) // h <= 0 inside a frame

	raLoc, ok := sr.RALocAt(f.PC)
	if !ok {
		return Frame{}, false
	}
	var ra uint64
	if raLoc.InReg {
		// Only trustworthy for the innermost frame: outer frames' ra was
		// clobbered by deeper calls.
		if !innermost {
			return Frame{}, false
		}
		ra = w.Target.GetReg(riscv.RegRA)
	} else {
		v, ok := w.read64(entrySP + uint64(raLoc.Slot))
		if !ok {
			return Frame{}, false
		}
		ra = v
	}
	if ra == 0 {
		return Frame{}, false
	}
	return Frame{PC: ra, SP: entrySP, FP: f.FP}, true
}

// ---------------------------------------------------------------------------
// FramePointerStepper

// FramePointerStepper follows the ABI frame-pointer convention: s0/fp
// points just above the frame, with the return address at fp-8 and the
// saved caller fp at fp-16 (the layout gcc emits with
// -fno-omit-frame-pointer).
type FramePointerStepper struct{}

func (*FramePointerStepper) Name() string { return "frame-pointer" }

func (s *FramePointerStepper) Step(w *Walker, f Frame, innermost bool) (Frame, bool) {
	fp := f.FP
	if fp == 0 || fp&7 != 0 {
		return Frame{}, false
	}
	ra, ok := w.read64(fp - 8)
	if !ok || ra == 0 {
		return Frame{}, false
	}
	oldFP, ok := w.read64(fp - 16)
	if !ok {
		return Frame{}, false
	}
	// Sanity: the return address must land in known code, and the frame
	// chain must grow upward.
	if _, known := w.CFG.FuncContaining(ra); !known {
		return Frame{}, false
	}
	if oldFP != 0 && oldFP <= fp {
		return Frame{}, false
	}
	return Frame{PC: ra, SP: fp, FP: oldFP}, true
}
