package stackwalk

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/parse"
	"rvdyn/internal/proc"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

// stopAt runs the workload under process control until the named function's
// entry and returns the walker ingredients.
func stopAt(t *testing.T, src, fnName string) (*parse.CFG, *proc.Process) {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := f.Symbol(fnName)
	if !ok {
		t.Fatalf("no symbol %s", fnName)
	}
	if _, err := p.InsertBreakpoint(sym.Value); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventBreakpoint {
		t.Fatalf("never reached %s: %+v", fnName, ev)
	}
	return cfg, p
}

func names(frames []Frame) []string {
	var out []string
	for _, f := range frames {
		out = append(out, f.FuncName)
	}
	return out
}

func TestWalkNestedCalls(t *testing.T) {
	// Stop in spin: the stack is spin <- level3 <- level2 <- level1 <- _start.
	cfg, p := stopAt(t, workload.FramePointerSource, "spin")
	w := New(cfg, p)
	frames, err := w.Walk()
	if err != nil {
		t.Fatal(err)
	}
	got := names(frames)
	want := []string{"spin", "level3", "level2", "level1", "_start"}
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestWalkRecursive(t *testing.T) {
	// Break at fib entry; after several recursive calls the stack must be a
	// run of fib frames over _start. Run until a deep hit.
	cfg, p := stopAt(t, workload.FibSource, "fib")
	// Continue a few stops to get depth.
	for i := 0; i < 30; i++ {
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != proc.EventBreakpoint {
			t.Fatalf("unexpected %+v", ev)
		}
	}
	frames, err := New(cfg, p).Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("only %d frames: %v", len(frames), names(frames))
	}
	for i := 0; i < len(frames)-1; i++ {
		if frames[i].FuncName != "fib" {
			t.Errorf("frame %d = %q, want fib (all: %v)", i, frames[i].FuncName, names(frames))
		}
	}
	if frames[len(frames)-1].FuncName != "_start" {
		t.Errorf("outermost frame = %q", frames[len(frames)-1].FuncName)
	}
	// Stack pointers must strictly increase outward.
	for i := 1; i < len(frames); i++ {
		if frames[i].SP < frames[i-1].SP {
			t.Errorf("frame %d sp %#x < frame %d sp %#x", i, frames[i].SP, i-1, frames[i-1].SP)
		}
	}
}

func TestInnermostLeafFrame(t *testing.T) {
	// Stopped at the entry of spin (a leaf that has not yet saved ra), the
	// walker must use the in-register return address.
	cfg, p := stopAt(t, workload.FramePointerSource, "spin")
	frames, err := New(cfg, p).Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("frames: %v", names(frames))
	}
	if frames[0].FuncName != "spin" || frames[1].FuncName != "level3" {
		t.Errorf("top frames = %v", names(frames)[:2])
	}
	if frames[0].Stepper != "stack-height" {
		t.Errorf("leaf stepped by %q, want stack-height", frames[0].Stepper)
	}
}

func TestFramePointerStepperAlone(t *testing.T) {
	// Force the FP stepper only: it can walk the fp-maintaining part of the
	// chain (level2 -> level1) but not the fp-less level3.
	cfg, p := stopAt(t, workload.FramePointerSource, "level3")
	// Step to just after level3's prologue? Simpler: stop at level2 in a
	// fresh process and walk with FP only from inside level2's body.
	_ = cfg
	_ = p
	cfg2, p2 := stopAt(t, workload.FramePointerSource, "spin")
	w := New(cfg2, p2)
	w.Steppers = []Stepper{&FramePointerStepper{}}
	frames, err := w.Walk()
	if err != nil {
		t.Fatal(err)
	}
	// At spin entry fp still holds level2's frame (level3 did not touch
	// it), so the FP chain yields level2 -> level1 ancestry even though it
	// misattributes the intermediate frames; at minimum it must not crash
	// and must terminate.
	if len(frames) == 0 || len(frames) > 8 {
		t.Errorf("fp-only walk: %v", names(frames))
	}
}

func TestWalkFromRawEmulator(t *testing.T) {
	// The walker works over anything satisfying Target; use an attached
	// process stopped mid-run by budget.
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := symtab.FromFile(f)
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(2000)
	if cpu.Exited {
		t.Skip("program too short")
	}
	p := proc.Attach(cpu, f)
	frames, err := New(cfg, p).Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	_ = elfrv.File{}
}
