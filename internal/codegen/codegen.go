// Package codegen is the CodeGenAPI analog (paper Section 3.2.5): it lowers
// the machine-independent snippet ASTs to RISC-V instruction sequences.
//
// Two concerns from the paper shape the design:
//
//   - Extension awareness: the generator consults the mutatee's extension
//     set (from SymtabAPI) and never emits instructions the target may not
//     implement — e.g. integer multiply lowers to a shift-add loop when the
//     M extension is absent, and immediates materialize through the
//     lui/addi/slli sequences the paper describes because RISC-V has no
//     single load-immediate instruction.
//
//   - Register allocation: in ModeDeadRegister the generator takes scratch
//     space from registers liveness has proven dead at the point, avoiding
//     spills entirely when enough are available — the optimization the
//     paper credits for the RISC-V overhead numbers beating x86. In
//     ModeSpillAlways (the pre-optimization x86 behaviour) every scratch
//     register is saved to and restored from a dedicated stack frame.
package codegen

import (
	"fmt"

	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

// Mode selects the register-allocation strategy.
type Mode int

const (
	// ModeDeadRegister uses liveness-proven dead registers as free scratch,
	// spilling only when the dead set is too small.
	ModeDeadRegister Mode = iota
	// ModeSpillAlways saves and restores every scratch register around the
	// snippet (the baseline the paper's x86 column measures).
	ModeSpillAlways
)

func (m Mode) String() string {
	if m == ModeSpillAlways {
		return "spill-always"
	}
	return "dead-register"
}

// Options configures one generation.
type Options struct {
	// Arch is the mutatee's extension set; zero means RV64GC.
	Arch riscv.ExtSet
	// Mode selects dead-register vs spill-always allocation.
	Mode Mode
	// DeadRegs lists integer registers proven dead at the insertion point
	// (ignored in ModeSpillAlways).
	DeadRegs []riscv.Reg
}

// Result carries the generated code and cost accounting for the ablation
// benchmarks.
type Result struct {
	Insts   []riscv.Inst
	Spilled []riscv.Reg // registers saved/restored around the body
	Scratch []riscv.Reg // scratch registers used by the body
}

// Generate lowers a snippet for insertion at a point.
func Generate(sn snippet.Snippet, opts Options) (*Result, error) {
	if opts.Arch == 0 {
		opts.Arch = riscv.RV64GC
	}
	g := &gen{opts: opts}
	if err := g.plan(sn); err != nil {
		return nil, err
	}
	if err := g.stmt(sn); err != nil {
		return nil, err
	}
	body, err := g.finalize()
	if err != nil {
		return nil, err
	}
	code := wrapSpills(body, g.spilled)
	return &Result{Insts: code, Spilled: g.spilled, Scratch: g.pool}, nil
}

// label is an index into gen.insts recorded for later offset patching.
type pendingBranch struct {
	idx   int // instruction index of the branch
	label int // label id
}

type gen struct {
	opts Options

	pool    []riscv.Reg // scratch registers, in allocation order
	spilled []riscv.Reg // subset of pool that must be saved/restored

	insts    []riscv.Inst
	labelPos map[int]int // label id -> instruction index
	branches []pendingBranch
	nextLbl  int
}

// plan sizes the scratch pool for the snippet and decides what spills.
func (g *gen) plan(sn snippet.Snippet) error {
	need := scratchNeed(sn)
	if !g.opts.Arch.Has(riscv.ExtM) && containsMul(sn) {
		need += 2 // the shift-add multiply loop needs two extra temporaries
	}
	if need < 2 {
		need = 2
	}
	if need > 8 {
		return fmt.Errorf("codegen: snippet needs %d scratch registers (max 8)", need)
	}
	avoid := riscv.NewRegSet(riscv.RegSP, riscv.RegRA)
	// ParamReg reads argument registers: they must not be recycled as
	// scratch within the same snippet.
	for i := 0; i < 8; i++ {
		if readsParam(sn, i) {
			avoid.Add(riscv.XReg(uint32(10 + i)))
		}
	}

	if g.opts.Mode == ModeDeadRegister {
		for _, r := range g.opts.DeadRegs {
			if len(g.pool) == need {
				break
			}
			if r.IsX() && r != riscv.X0 && !avoid.Contains(r) {
				g.pool = append(g.pool, r)
				avoid.Add(r)
			}
		}
	}
	// Fill the remainder from the candidate order; those must be spilled.
	for _, r := range riscv.ScratchCandidates {
		if len(g.pool) == need {
			break
		}
		if avoid.Contains(r) {
			continue
		}
		g.pool = append(g.pool, r)
		g.spilled = append(g.spilled, r)
		avoid.Add(r)
	}
	if g.opts.Mode == ModeSpillAlways {
		g.spilled = append([]riscv.Reg(nil), g.pool...)
	}
	if len(g.pool) < need {
		return fmt.Errorf("codegen: cannot find %d scratch registers", need)
	}
	return nil
}

// scratchNeed is a Sethi-Ullman-style register-need estimate.
func scratchNeed(sn snippet.Snippet) int {
	switch s := sn.(type) {
	case snippet.ConstInt, *snippet.Var, snippet.ParamReg:
		return 1
	case snippet.BinOp:
		l, r := scratchNeed(s.L), scratchNeed(s.R)
		n := r + 1
		if l > n {
			n = l
		}
		return n
	case snippet.Assign:
		return scratchNeed(s.Src) + 1
	case snippet.Sequence:
		n := 1
		for _, c := range s.List {
			if m := scratchNeed(c); m > n {
				n = m
			}
		}
		return n
	case snippet.If:
		n := scratchNeed(s.Cond)
		if s.Then != nil {
			if m := scratchNeed(s.Then); m > n {
				n = m
			}
		}
		if s.Else != nil {
			if m := scratchNeed(s.Else); m > n {
				n = m
			}
		}
		return n
	case snippet.CallFunc:
		// One register per already-evaluated argument stays pinned while
		// later arguments evaluate, plus one for the target address.
		n := len(s.Args) + 1
		if n < 2 {
			n = 2
		}
		for i, a := range s.Args {
			if m := scratchNeed(a) + i + 1; m > n {
				n = m
			}
		}
		return n
	}
	return 1
}

func containsMul(sn snippet.Snippet) bool {
	switch s := sn.(type) {
	case snippet.BinOp:
		return s.Op == snippet.OpMul || containsMul(s.L) || containsMul(s.R)
	case snippet.Assign:
		return containsMul(s.Src)
	case snippet.Sequence:
		for _, c := range s.List {
			if containsMul(c) {
				return true
			}
		}
	case snippet.If:
		if containsMul(s.Cond) {
			return true
		}
		if s.Then != nil && containsMul(s.Then) {
			return true
		}
		if s.Else != nil && containsMul(s.Else) {
			return true
		}
	case snippet.CallFunc:
		for _, a := range s.Args {
			if containsMul(a) {
				return true
			}
		}
	}
	return false
}

func readsParam(sn snippet.Snippet, idx int) bool {
	switch s := sn.(type) {
	case snippet.ParamReg:
		return s.Index == idx
	case snippet.BinOp:
		return readsParam(s.L, idx) || readsParam(s.R, idx)
	case snippet.Assign:
		return readsParam(s.Src, idx)
	case snippet.Sequence:
		for _, c := range s.List {
			if readsParam(c, idx) {
				return true
			}
		}
	case snippet.If:
		if readsParam(s.Cond, idx) {
			return true
		}
		if s.Then != nil && readsParam(s.Then, idx) {
			return true
		}
		if s.Else != nil && readsParam(s.Else, idx) {
			return true
		}
	case snippet.CallFunc:
		for _, a := range s.Args {
			if readsParam(a, idx) {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Emission helpers

func (g *gen) emit(mn riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64) {
	g.insts = append(g.insts, riscv.Inst{
		Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone, Imm: imm,
	})
}

func (g *gen) newLabel() int {
	g.nextLbl++
	return g.nextLbl
}

func (g *gen) place(lbl int) {
	if g.labelPos == nil {
		g.labelPos = map[int]int{}
	}
	g.labelPos[lbl] = len(g.insts)
}

// branchTo emits a branch/jump whose offset is patched in finalize.
func (g *gen) branchTo(mn riscv.Mnemonic, rs1, rs2 riscv.Reg, lbl int) {
	g.branches = append(g.branches, pendingBranch{idx: len(g.insts), label: lbl})
	if mn == riscv.MnJAL {
		g.emit(mn, riscv.X0, riscv.RegNone, riscv.RegNone, 0)
	} else {
		g.emit(mn, riscv.RegNone, rs1, rs2, 0)
	}
}

// finalize patches label offsets. Snippet code uses fixed 4-byte encodings,
// so offsets are (targetIndex - branchIndex) * 4.
func (g *gen) finalize() ([]riscv.Inst, error) {
	for _, pb := range g.branches {
		pos, ok := g.labelPos[pb.label]
		if !ok {
			return nil, fmt.Errorf("codegen: unplaced label %d", pb.label)
		}
		g.insts[pb.idx].Imm = int64(pos-pb.idx) * 4
	}
	// Validate everything encodes.
	for i, in := range g.insts {
		if _, err := riscv.Encode(in); err != nil {
			return nil, fmt.Errorf("codegen: instruction %d (%v): %w", i, in, err)
		}
	}
	return g.insts, nil
}

// materialize emits the li sequence for an arbitrary 64-bit constant.
func (g *gen) materialize(rd riscv.Reg, v int64) {
	if v >= -2048 && v <= 2047 {
		g.emit(riscv.MnADDI, rd, riscv.X0, riscv.RegNone, v)
		return
	}
	if v >= -(1<<31) && v < 1<<31 {
		hi := (v + 0x800) >> 12
		lo := v - hi<<12
		hi = hi << 44 >> 44
		g.emit(riscv.MnLUI, rd, riscv.RegNone, riscv.RegNone, hi)
		if lo != 0 {
			g.emit(riscv.MnADDIW, rd, rd, riscv.RegNone, lo)
		}
		return
	}
	lo12 := v << 52 >> 52
	g.materialize(rd, (v-lo12)>>12)
	g.emit(riscv.MnSLLI, rd, rd, riscv.RegNone, 12)
	if lo12 != 0 {
		g.emit(riscv.MnADDI, rd, rd, riscv.RegNone, lo12)
	}
}

// wrapSpills adds the save/restore frame around the body. The frame is
// 16-byte aligned per the ABI.
func wrapSpills(body []riscv.Inst, spilled []riscv.Reg) []riscv.Inst {
	if len(spilled) == 0 {
		return body
	}
	frame := int64((len(spilled)*8 + 15) &^ 15)
	mk := func(mn riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64) riscv.Inst {
		return riscv.Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone, Imm: imm}
	}
	out := make([]riscv.Inst, 0, len(body)+2*len(spilled)+2)
	out = append(out, mk(riscv.MnADDI, riscv.RegSP, riscv.RegSP, riscv.RegNone, -frame))
	for i, r := range spilled {
		out = append(out, mk(riscv.MnSD, riscv.RegNone, riscv.RegSP, r, int64(i*8)))
	}
	out = append(out, body...)
	for i, r := range spilled {
		out = append(out, mk(riscv.MnLD, r, riscv.RegSP, riscv.RegNone, int64(i*8)))
	}
	out = append(out, mk(riscv.MnADDI, riscv.RegSP, riscv.RegSP, riscv.RegNone, frame))
	return out
}
