package codegen

import (
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

// execSnippet encodes the generated instructions, appends an ebreak, loads
// them into the emulator at 0x10000 with a data page at 0x20000, and runs
// to the breakpoint. setup tweaks initial CPU state.
func execSnippet(t *testing.T, res *Result, setup func(*emu.CPU)) *emu.CPU {
	t.Helper()
	var code []byte
	for _, in := range res.Insts {
		w, err := riscv.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	eb := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	code = append(code, byte(eb), byte(eb>>8), byte(eb>>16), byte(eb>>24))
	f := &elfrv.File{
		Entry: 0x10000,
		Sections: []*elfrv.Section{
			{Name: ".text", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
				Addr: 0x10000, Data: code, Align: 4},
			{Name: ".data", Type: elfrv.SHTProgbits, Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
				Addr: 0x20000, Data: make([]byte, 4096), Align: 8},
		},
	}
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(c)
	}
	if r := c.Run(100000); r != emu.StopBreakpoint {
		t.Fatalf("snippet stopped with %v (%v)", r, c.LastTrap())
	}
	return c
}

func v64(name string, addr uint64) *snippet.Var {
	return &snippet.Var{Name: name, Width: 8, Addr: addr}
}

func TestIncrementSnippet(t *testing.T) {
	counter := v64("counter", 0x20010)
	res, err := Generate(snippet.Increment(counter), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, func(c *emu.CPU) {
		if err := c.Mem.Write64(0x20010, 41); err != nil {
			t.Fatal(err)
		}
	})
	got, _ := c.Mem.Read64(0x20010)
	if got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestAssignExpression(t *testing.T) {
	a := v64("a", 0x20000)
	b := v64("b", 0x20008)
	dst := v64("dst", 0x20010)
	// dst = (a + b) * 3
	sn := snippet.Assign{Dst: dst, Src: snippet.BinOp{
		Op: snippet.OpMul,
		L:  snippet.BinOp{Op: snippet.OpAdd, L: a, R: b},
		R:  snippet.ConstInt{Val: 3},
	}}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, func(c *emu.CPU) {
		c.Mem.Write64(0x20000, 10)
		c.Mem.Write64(0x20008, 4)
	})
	got, _ := c.Mem.Read64(0x20010)
	if got != 42 {
		t.Errorf("dst = %d, want 42", got)
	}
}

func TestSoftwareMultiplyWithoutM(t *testing.T) {
	dst := v64("dst", 0x20000)
	sn := snippet.Assign{Dst: dst, Src: snippet.BinOp{
		Op: snippet.OpMul,
		L:  snippet.ConstInt{Val: 123},
		R:  snippet.ConstInt{Val: 77},
	}}
	res, err := Generate(sn, Options{Arch: riscv.ExtI})
	if err != nil {
		t.Fatal(err)
	}
	// No M-extension instruction may appear.
	for _, in := range res.Insts {
		if in.Mn.Ext() == riscv.ExtM {
			t.Fatalf("generated %v for an I-only target", in.Mn)
		}
	}
	c := execSnippet(t, res, nil)
	got, _ := c.Mem.Read64(0x20000)
	if got != 123*77 {
		t.Errorf("dst = %d, want %d", got, 123*77)
	}
	// With M the same snippet uses mul.
	res2, err := Generate(sn, Options{Arch: riscv.RV64GC})
	if err != nil {
		t.Fatal(err)
	}
	hasMul := false
	for _, in := range res2.Insts {
		if in.Mn == riscv.MnMUL {
			hasMul = true
		}
	}
	if !hasMul {
		t.Error("RV64GC target did not use mul")
	}
	if len(res2.Insts) >= len(res.Insts) {
		t.Errorf("mul version (%d insts) not shorter than soft version (%d)", len(res2.Insts), len(res.Insts))
	}
}

func TestComparisonOps(t *testing.T) {
	cases := []struct {
		op   snippet.BinOpKind
		a, b int64
		want uint64
	}{
		{snippet.OpEq, 5, 5, 1}, {snippet.OpEq, 5, 6, 0},
		{snippet.OpNe, 5, 6, 1}, {snippet.OpNe, 5, 5, 0},
		{snippet.OpLt, 4, 5, 1}, {snippet.OpLt, 5, 4, 0}, {snippet.OpLt, -1, 0, 1},
		{snippet.OpLe, 5, 5, 1}, {snippet.OpLe, 6, 5, 0},
		{snippet.OpGt, 6, 5, 1}, {snippet.OpGt, 5, 5, 0},
		{snippet.OpGe, 5, 5, 1}, {snippet.OpGe, 4, 5, 0},
		{snippet.OpSub, 50, 8, 42},
		{snippet.OpAnd, 0xff, 0x0f, 0x0f},
		{snippet.OpOr, 0xf0, 0x0f, 0xff},
		{snippet.OpXor, 0xff, 0x0f, 0xf0},
		{snippet.OpShl, 21, 1, 42},
		{snippet.OpShr, 84, 1, 42},
	}
	dst := v64("dst", 0x20000)
	for _, cse := range cases {
		sn := snippet.Assign{Dst: dst, Src: snippet.BinOp{
			Op: cse.op, L: snippet.ConstInt{Val: cse.a}, R: snippet.ConstInt{Val: cse.b}}}
		res, err := Generate(sn, Options{})
		if err != nil {
			t.Fatalf("%v: %v", cse.op, err)
		}
		c := execSnippet(t, res, nil)
		got, _ := c.Mem.Read64(0x20000)
		if got != cse.want {
			t.Errorf("%d %v %d = %d, want %d", cse.a, cse.op, cse.b, got, cse.want)
		}
	}
}

func TestIfSnippet(t *testing.T) {
	flag := v64("flag", 0x20000)
	out := v64("out", 0x20008)
	sn := snippet.If{
		Cond: snippet.BinOp{Op: snippet.OpGt, L: flag, R: snippet.ConstInt{Val: 10}},
		Then: snippet.Assign{Dst: out, Src: snippet.ConstInt{Val: 1}},
		Else: snippet.Assign{Dst: out, Src: snippet.ConstInt{Val: 2}},
	}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, func(c *emu.CPU) { c.Mem.Write64(0x20000, 99) })
	if got, _ := c.Mem.Read64(0x20008); got != 1 {
		t.Errorf("then-branch: out = %d, want 1", got)
	}
	c = execSnippet(t, res, func(c *emu.CPU) { c.Mem.Write64(0x20000, 3) })
	if got, _ := c.Mem.Read64(0x20008); got != 2 {
		t.Errorf("else-branch: out = %d, want 2", got)
	}
}

func TestParamRegSnippet(t *testing.T) {
	out := v64("out", 0x20000)
	// out = arg0 + arg1
	sn := snippet.Assign{Dst: out, Src: snippet.BinOp{
		Op: snippet.OpAdd, L: snippet.ParamReg{Index: 0}, R: snippet.ParamReg{Index: 1}}}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, func(c *emu.CPU) {
		c.X[riscv.RegA0] = 30
		c.X[riscv.RegA1] = 12
	})
	if got, _ := c.Mem.Read64(0x20000); got != 42 {
		t.Errorf("out = %d, want 42", got)
	}
}

func TestDeadRegisterModeAvoidsSpills(t *testing.T) {
	counter := v64("counter", 0x20000)
	sn := snippet.Increment(counter)
	dead := []riscv.Reg{riscv.RegT3, riscv.RegT4, riscv.RegT5}
	res, err := Generate(sn, Options{Mode: ModeDeadRegister, DeadRegs: dead})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Errorf("dead-register mode spilled %v despite %d dead registers", res.Spilled, len(dead))
	}
	spill, err := Generate(sn, Options{Mode: ModeSpillAlways, DeadRegs: dead})
	if err != nil {
		t.Fatal(err)
	}
	if len(spill.Spilled) == 0 {
		t.Error("spill-always mode spilled nothing")
	}
	if len(spill.Insts) <= len(res.Insts) {
		t.Errorf("spill-always (%d insts) not longer than dead-register (%d)",
			len(spill.Insts), len(res.Insts))
	}
	// Both versions must compute the same result.
	c1 := execSnippet(t, res, nil)
	c2 := execSnippet(t, spill, nil)
	v1, _ := c1.Mem.Read64(0x20000)
	v2, _ := c2.Mem.Read64(0x20000)
	if v1 != 1 || v2 != 1 {
		t.Errorf("counters = %d, %d; want 1, 1", v1, v2)
	}
}

func TestSpillRestorePreservesRegisters(t *testing.T) {
	counter := v64("counter", 0x20000)
	res, err := Generate(snippet.Increment(counter), Options{Mode: ModeSpillAlways})
	if err != nil {
		t.Fatal(err)
	}
	magic := map[riscv.Reg]uint64{}
	c := execSnippet(t, res, func(c *emu.CPU) {
		for i, r := range res.Scratch {
			c.X[r] = 0xdead0000 + uint64(i)
			magic[r] = c.X[r]
		}
	})
	for r, want := range magic {
		if c.X[r] != want {
			t.Errorf("scratch %v not restored: %#x != %#x", r, c.X[r], want)
		}
	}
	// The stack pointer must balance.
	if c.X[riscv.RegSP] != emu.StackTop-64 {
		t.Errorf("sp unbalanced: %#x", c.X[riscv.RegSP])
	}
}

func TestCallFuncSnippet(t *testing.T) {
	// Place a tiny callee at 0x11000: it adds its two args into a global.
	calleeInsts := []riscv.Inst{
		{Mn: riscv.MnADD, Rd: riscv.RegA0, Rs1: riscv.RegA0, Rs2: riscv.RegA1, Rs3: riscv.RegNone},
		{Mn: riscv.MnLUI, Rd: riscv.RegT0, Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: 0x20},
		{Mn: riscv.MnSD, Rd: riscv.RegNone, Rs1: riscv.RegT0, Rs2: riscv.RegA0, Rs3: riscv.RegNone, Imm: 0x100},
		{Mn: riscv.MnJALR, Rd: riscv.X0, Rs1: riscv.RegRA, Rs2: riscv.RegNone, Rs3: riscv.RegNone},
	}
	sn := snippet.CallFunc{Entry: 0x11000, Args: []snippet.Snippet{
		snippet.ConstInt{Val: 40}, snippet.ConstInt{Val: 2}}}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, func(c *emu.CPU) {
		var code []byte
		for _, in := range calleeInsts {
			w := riscv.MustEncode(in)
			code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		c.Mem.Map(0x11000, 4096)
		if err := c.WriteMem(0x11000, code); err != nil {
			t.Fatal(err)
		}
		c.X[riscv.RegA0] = 7777 // must survive the call snippet
		c.X[riscv.RegRA] = 0x31337
	})
	if got, _ := c.Mem.Read64(0x20100); got != 42 {
		t.Errorf("callee result = %d, want 42", got)
	}
	if c.X[riscv.RegA0] != 7777 {
		t.Errorf("a0 not restored after call snippet: %d", c.X[riscv.RegA0])
	}
	if c.X[riscv.RegRA] != 0x31337 {
		t.Errorf("ra not restored: %#x", c.X[riscv.RegRA])
	}
}

func TestVariableWidths(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		v := &snippet.Var{Name: "v", Width: w, Addr: 0x20000}
		res, err := Generate(snippet.Increment(v), Options{})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		c := execSnippet(t, res, func(c *emu.CPU) {
			c.Mem.Write64(0x20000, 0xffffffffffffffff) // all ones: wraps per width
		})
		got, _ := c.Mem.Read64(0x20000)
		// Incrementing all-ones wraps the low width bytes to zero and must
		// not disturb the rest.
		var want uint64
		switch w {
		case 1:
			want = 0xffffffffffffff00
		case 2:
			want = 0xffffffffffff0000
		case 4:
			want = 0xffffffff00000000
		case 8:
			want = 0
		}
		if got != want {
			t.Errorf("width %d: memory = %#x, want %#x", w, got, want)
		}
	}
}

func TestUnallocatedVariableError(t *testing.T) {
	v := &snippet.Var{Name: "v", Width: 8} // Addr == 0
	if _, err := Generate(snippet.Increment(v), Options{}); err == nil {
		t.Error("generation succeeded with unallocated variable")
	}
}

func TestSequenceSnippet(t *testing.T) {
	a := v64("a", 0x20000)
	b := v64("b", 0x20008)
	sn := snippet.Sequence{List: []snippet.Snippet{
		snippet.Assign{Dst: a, Src: snippet.ConstInt{Val: 20}},
		snippet.Assign{Dst: b, Src: snippet.BinOp{Op: snippet.OpAdd, L: a, R: a}},
		snippet.Increment(b),
	}}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := execSnippet(t, res, nil)
	av, _ := c.Mem.Read64(0x20000)
	bv, _ := c.Mem.Read64(0x20008)
	if av != 20 || bv != 41 {
		t.Errorf("a=%d b=%d, want 20, 41", av, bv)
	}
}

func TestWideConstantMaterialization(t *testing.T) {
	dst := v64("dst", 0x20000)
	for _, val := range []int64{0x123456789abcdef0 >> 1, -0x0fedcba987654321, 1 << 62} {
		sn := snippet.Assign{Dst: dst, Src: snippet.ConstInt{Val: val}}
		res, err := Generate(sn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := execSnippet(t, res, nil)
		if got, _ := c.Mem.Read64(0x20000); got != uint64(val) {
			t.Errorf("materialized %#x, want %#x", got, uint64(val))
		}
	}
}
