package codegen

import (
	"strings"
	"testing"

	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

func TestModeStrings(t *testing.T) {
	if ModeDeadRegister.String() != "dead-register" || ModeSpillAlways.String() != "spill-always" {
		t.Errorf("mode strings: %q %q", ModeDeadRegister, ModeSpillAlways)
	}
}

func TestNestedIfLowering(t *testing.T) {
	a := &snippet.Var{Name: "a", Width: 8, Addr: 0x20000}
	out := &snippet.Var{Name: "out", Width: 8, Addr: 0x20008}
	sn := snippet.If{
		Cond: snippet.BinOp{Op: snippet.OpGt, L: a, R: snippet.ConstInt{Val: 10}},
		Then: snippet.If{
			Cond: snippet.BinOp{Op: snippet.OpLt, L: a, R: snippet.ConstInt{Val: 20}},
			Then: snippet.Assign{Dst: out, Src: snippet.ConstInt{Val: 1}},
			Else: snippet.Assign{Dst: out, Src: snippet.ConstInt{Val: 2}},
		},
		Else: snippet.Assign{Dst: out, Src: snippet.ConstInt{Val: 3}},
	}
	res, err := Generate(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, av := range []int64{15, 25, 5} {
		c := execSnippet(t, res, func(c *emu.CPU) { c.Mem.Write64(0x20000, uint64(av)) })
		got, _ := c.Mem.Read64(0x20008)
		var want uint64
		switch {
		case av > 10 && av < 20:
			want = 1
		case av > 10:
			want = 2
		default:
			want = 3
		}
		if got != want {
			t.Errorf("a=%d: out=%d, want %d", av, got, want)
		}
	}
}

func TestExpressionTooDeep(t *testing.T) {
	// Build a right-leaning expression needing more than 8 registers.
	var e snippet.Snippet = snippet.ConstInt{Val: 1}
	for i := 0; i < 12; i++ {
		e = snippet.BinOp{Op: snippet.OpAdd, L: snippet.ConstInt{Val: 1}, R: e}
	}
	dst := &snippet.Var{Name: "d", Width: 8, Addr: 0x20000}
	if _, err := Generate(snippet.Assign{Dst: dst, Src: e}, Options{}); err == nil {
		t.Error("over-deep expression generated without error")
	} else if !strings.Contains(err.Error(), "scratch") {
		t.Errorf("error = %v", err)
	}
}

func TestCallTooManyArgs(t *testing.T) {
	sn := snippet.CallFunc{Entry: 0x1000, Args: []snippet.Snippet{
		snippet.ConstInt{Val: 1}, snippet.ConstInt{Val: 2}, snippet.ConstInt{Val: 3}}}
	if _, err := Generate(sn, Options{}); err == nil {
		t.Error("3-arg call snippet accepted")
	}
}

func TestDivWithoutMRejected(t *testing.T) {
	// There is no software-division fallback: unsupported operator for the
	// target must error rather than emit a forbidden instruction.
	dst := &snippet.Var{Name: "d", Width: 8, Addr: 0x20000}
	sn := snippet.Assign{Dst: dst, Src: snippet.BinOp{
		Op: snippet.BinOpKind(99), L: snippet.ConstInt{Val: 1}, R: snippet.ConstInt{Val: 2}}}
	if _, err := Generate(sn, Options{}); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestGeneratedCodeStaysInArch(t *testing.T) {
	// Every generated instruction must belong to the declared target set.
	counter := &snippet.Var{Name: "c", Width: 8, Addr: 0x20000}
	sn := snippet.Sequence{List: []snippet.Snippet{
		snippet.Increment(counter),
		snippet.If{
			Cond: snippet.BinOp{Op: snippet.OpMul, L: counter, R: snippet.ConstInt{Val: 3}},
			Then: snippet.Increment(counter),
		},
	}}
	for _, arch := range []riscv.ExtSet{riscv.ExtI, riscv.ExtI | riscv.ExtM, riscv.RV64GC} {
		res, err := Generate(sn, Options{Arch: arch, Mode: ModeSpillAlways})
		if err != nil {
			t.Fatalf("arch %v: %v", arch, err)
		}
		for _, in := range res.Insts {
			if !arch.Has(in.Mn.Ext()) {
				t.Errorf("arch %v: generated %v (needs %v)", arch, in.Mn, in.Mn.Ext())
			}
		}
	}
}

func TestScratchNeverIncludesReservedRegs(t *testing.T) {
	counter := &snippet.Var{Name: "c", Width: 8, Addr: 0x20000}
	res, err := Generate(snippet.Increment(counter), Options{
		Mode:     ModeDeadRegister,
		DeadRegs: []riscv.Reg{riscv.RegSP, riscv.RegRA, riscv.X0, riscv.RegT0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Scratch {
		if r == riscv.RegSP || r == riscv.RegRA || r == riscv.X0 {
			t.Errorf("reserved register %v used as scratch", r)
		}
	}
}
