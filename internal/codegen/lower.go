package codegen

import (
	"fmt"

	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

// stmt lowers a statement-position snippet.
func (g *gen) stmt(sn snippet.Snippet) error {
	switch s := sn.(type) {
	case snippet.Sequence:
		for _, c := range s.List {
			if err := g.stmt(c); err != nil {
				return err
			}
		}
		return nil
	case snippet.Assign:
		return g.assign(s)
	case snippet.If:
		return g.ifStmt(s)
	case snippet.CallFunc:
		return g.call(s)
	case snippet.ConstInt, *snippet.Var, snippet.ParamReg, snippet.BinOp:
		// An expression in statement position: evaluate for effect.
		_, err := g.expr(sn, g.pool)
		return err
	}
	return fmt.Errorf("codegen: unsupported snippet node %T", sn)
}

// assign lowers Dst = Src, with the read-modify-write fast path for the
// counter-update pattern v = v op expr (one address materialization, as the
// paper's counter benchmarks rely on).
func (g *gen) assign(s snippet.Assign) error {
	if s.Dst == nil {
		return fmt.Errorf("codegen: assignment with nil destination")
	}
	if s.Dst.Addr == 0 {
		return fmt.Errorf("codegen: variable %q has no allocated address", s.Dst.Name)
	}
	if len(g.pool) < 2 {
		return fmt.Errorf("codegen: assignment needs 2 scratch registers")
	}
	addr, val := g.pool[0], g.pool[1]

	// Fast path: v = v + const.
	if b, ok := s.Src.(snippet.BinOp); ok && b.Op == snippet.OpAdd {
		if v2, ok := b.L.(*snippet.Var); ok && v2 == s.Dst {
			if c, ok := b.R.(snippet.ConstInt); ok && c.Val >= -2048 && c.Val <= 2047 {
				g.materialize(addr, int64(s.Dst.Addr))
				g.emitLoad(val, addr, s.Dst.Width)
				g.emit(riscv.MnADDI, val, val, riscv.RegNone, c.Val)
				g.emitStore(val, addr, s.Dst.Width)
				return nil
			}
		}
	}

	if _, err := g.exprInto(s.Src, val, g.pool[2:]); err != nil {
		return err
	}
	g.materialize(addr, int64(s.Dst.Addr))
	g.emitStore(val, addr, s.Dst.Width)
	return nil
}

func (g *gen) ifStmt(s snippet.If) error {
	cond, err := g.expr(s.Cond, g.pool)
	if err != nil {
		return err
	}
	elseLbl := g.newLabel()
	endLbl := g.newLabel()
	g.branchTo(riscv.MnBEQ, cond, riscv.X0, elseLbl)
	if s.Then != nil {
		if err := g.stmt(s.Then); err != nil {
			return err
		}
	}
	if s.Else != nil {
		g.branchTo(riscv.MnJAL, riscv.RegNone, riscv.RegNone, endLbl)
		g.place(elseLbl)
		if err := g.stmt(s.Else); err != nil {
			return err
		}
		g.place(endLbl)
	} else {
		g.place(elseLbl)
		g.place(endLbl)
	}
	return nil
}

// callSaved is the integer state a snippet-inserted call must preserve.
var callSavedX = []riscv.Reg{
	riscv.RegRA, riscv.RegT0, riscv.RegT1, riscv.RegT2,
	riscv.RegA0, riscv.RegA1, riscv.RegA2, riscv.RegA3,
	riscv.RegA4, riscv.RegA5, riscv.RegA6, riscv.RegA7,
	riscv.RegT3, riscv.RegT4, riscv.RegT5, riscv.RegT6,
}

var callSavedF = []riscv.Reg{
	riscv.F0, riscv.F1, riscv.F2, riscv.F3, riscv.F4, riscv.F5, riscv.F6,
	riscv.F7, riscv.F10, riscv.F11, riscv.F12, riscv.F13, riscv.F14,
	riscv.F15, riscv.F16, riscv.F17, riscv.F28, riscv.F29, riscv.F30, riscv.F31,
}

// call lowers a function-call snippet: save the full caller-saved ABI state
// (the callee is an arbitrary mutatee function), marshal up to two
// arguments, call through a scratch register, and restore.
func (g *gen) call(s snippet.CallFunc) error {
	if len(s.Args) > 2 {
		return fmt.Errorf("codegen: call snippets support at most 2 arguments, got %d", len(s.Args))
	}
	// Evaluate arguments into scratch before saving (scratch survives the
	// saves; the argument registers themselves get overwritten after).
	argRegs := make([]riscv.Reg, len(s.Args))
	for i, a := range s.Args {
		if len(g.pool) < i+2 {
			return fmt.Errorf("codegen: not enough scratch for call arguments")
		}
		dst := g.pool[i]
		if _, err := g.exprInto(a, dst, g.pool[i+1:]); err != nil {
			return err
		}
		argRegs[i] = dst
	}

	saved := append([]riscv.Reg(nil), callSavedX...)
	var savedF []riscv.Reg
	if g.opts.Arch.Has(riscv.ExtD) {
		savedF = callSavedF
	}
	frame := int64((len(saved)*8 + len(savedF)*8 + 15) &^ 15)
	g.emit(riscv.MnADDI, riscv.RegSP, riscv.RegSP, riscv.RegNone, -frame)
	off := int64(0)
	for _, r := range saved {
		g.emit(riscv.MnSD, riscv.RegNone, riscv.RegSP, r, off)
		off += 8
	}
	for _, r := range savedF {
		g.emit(riscv.MnFSD, riscv.RegNone, riscv.RegSP, r, off)
		off += 8
	}
	for i, r := range argRegs {
		g.emit(riscv.MnADDI, riscv.XReg(uint32(10+i)), r, riscv.RegNone, 0)
	}
	// The target address goes through a scratch register so placement of
	// the snippet code is position-independent.
	tgt := g.pool[len(g.pool)-1]
	g.materialize(tgt, int64(s.Entry))
	g.emit(riscv.MnJALR, riscv.RegRA, tgt, riscv.RegNone, 0)
	off = 0
	for _, r := range saved {
		g.emit(riscv.MnLD, r, riscv.RegSP, riscv.RegNone, off)
		off += 8
	}
	for _, r := range savedF {
		g.emit(riscv.MnFLD, r, riscv.RegSP, riscv.RegNone, off)
		off += 8
	}
	g.emit(riscv.MnADDI, riscv.RegSP, riscv.RegSP, riscv.RegNone, frame)
	return nil
}

// expr evaluates into the first register of avail.
func (g *gen) expr(sn snippet.Snippet, avail []riscv.Reg) (riscv.Reg, error) {
	if len(avail) == 0 {
		return riscv.RegNone, fmt.Errorf("codegen: out of scratch registers")
	}
	return g.exprInto(sn, avail[0], avail[1:])
}

// exprInto evaluates sn into dst using rest as temporaries.
func (g *gen) exprInto(sn snippet.Snippet, dst riscv.Reg, rest []riscv.Reg) (riscv.Reg, error) {
	switch e := sn.(type) {
	case snippet.ConstInt:
		g.materialize(dst, e.Val)
		return dst, nil
	case *snippet.Var:
		if e.Addr == 0 {
			return dst, fmt.Errorf("codegen: variable %q has no allocated address", e.Name)
		}
		g.materialize(dst, int64(e.Addr))
		g.emitLoad(dst, dst, e.Width)
		return dst, nil
	case snippet.ParamReg:
		if e.Index < 0 || e.Index > 7 {
			return dst, fmt.Errorf("codegen: argument index %d out of range", e.Index)
		}
		g.emit(riscv.MnADDI, dst, riscv.XReg(uint32(10+e.Index)), riscv.RegNone, 0)
		return dst, nil
	case snippet.BinOp:
		if _, err := g.exprInto(e.L, dst, rest); err != nil {
			return dst, err
		}
		if len(rest) == 0 {
			return dst, fmt.Errorf("codegen: expression too deep for scratch pool")
		}
		r := rest[0]
		if _, err := g.exprInto(e.R, r, rest[1:]); err != nil {
			return dst, err
		}
		return dst, g.binop(e.Op, dst, r, rest[1:])
	}
	return dst, fmt.Errorf("codegen: %T is not an expression", sn)
}

func (g *gen) binop(op snippet.BinOpKind, dst, r riscv.Reg, rest []riscv.Reg) error {
	switch op {
	case snippet.OpAdd:
		g.emit(riscv.MnADD, dst, dst, r, 0)
	case snippet.OpSub:
		g.emit(riscv.MnSUB, dst, dst, r, 0)
	case snippet.OpAnd:
		g.emit(riscv.MnAND, dst, dst, r, 0)
	case snippet.OpOr:
		g.emit(riscv.MnOR, dst, dst, r, 0)
	case snippet.OpXor:
		g.emit(riscv.MnXOR, dst, dst, r, 0)
	case snippet.OpShl:
		g.emit(riscv.MnSLL, dst, dst, r, 0)
	case snippet.OpShr:
		g.emit(riscv.MnSRL, dst, dst, r, 0)
	case snippet.OpEq:
		g.emit(riscv.MnXOR, dst, dst, r, 0)
		g.emit(riscv.MnSLTIU, dst, dst, riscv.RegNone, 1)
	case snippet.OpNe:
		g.emit(riscv.MnXOR, dst, dst, r, 0)
		g.emit(riscv.MnSLTU, dst, riscv.X0, dst, 0)
	case snippet.OpLt:
		g.emit(riscv.MnSLT, dst, dst, r, 0)
	case snippet.OpGe:
		g.emit(riscv.MnSLT, dst, dst, r, 0)
		g.emit(riscv.MnXORI, dst, dst, riscv.RegNone, 1)
	case snippet.OpGt:
		g.emit(riscv.MnSLT, dst, r, dst, 0)
	case snippet.OpLe:
		g.emit(riscv.MnSLT, dst, r, dst, 0)
		g.emit(riscv.MnXORI, dst, dst, riscv.RegNone, 1)
	case snippet.OpMul:
		if g.opts.Arch.Has(riscv.ExtM) {
			g.emit(riscv.MnMUL, dst, dst, r, 0)
			return nil
		}
		return g.softMul(dst, r, rest)
	default:
		return fmt.Errorf("codegen: unsupported operator %v", op)
	}
	return nil
}

// softMul lowers dst = dst * r by shift-and-add for targets without the M
// extension — extension-aware generation in action.
func (g *gen) softMul(dst, r riscv.Reg, rest []riscv.Reg) error {
	if len(rest) < 2 {
		return fmt.Errorf("codegen: software multiply needs 2 extra scratch registers")
	}
	acc, bit := rest[0], rest[1]
	loop := g.newLabel()
	skip := g.newLabel()
	done := g.newLabel()
	// acc = dst; dst = 0
	g.emit(riscv.MnADDI, acc, dst, riscv.RegNone, 0)
	g.emit(riscv.MnADDI, dst, riscv.X0, riscv.RegNone, 0)
	g.place(loop)
	g.branchTo(riscv.MnBEQ, r, riscv.X0, done)
	g.emit(riscv.MnANDI, bit, r, riscv.RegNone, 1)
	g.branchTo(riscv.MnBEQ, bit, riscv.X0, skip)
	g.emit(riscv.MnADD, dst, dst, acc, 0)
	g.place(skip)
	g.emit(riscv.MnSLLI, acc, acc, riscv.RegNone, 1)
	g.emit(riscv.MnSRLI, r, r, riscv.RegNone, 1)
	g.branchTo(riscv.MnJAL, riscv.RegNone, riscv.RegNone, loop)
	g.place(done)
	return nil
}

func (g *gen) emitLoad(dst, addr riscv.Reg, width int) {
	switch width {
	case 1:
		g.emit(riscv.MnLBU, dst, addr, riscv.RegNone, 0)
	case 2:
		g.emit(riscv.MnLHU, dst, addr, riscv.RegNone, 0)
	case 4:
		g.emit(riscv.MnLWU, dst, addr, riscv.RegNone, 0)
	default:
		g.emit(riscv.MnLD, dst, addr, riscv.RegNone, 0)
	}
}

func (g *gen) emitStore(src, addr riscv.Reg, width int) {
	switch width {
	case 1:
		g.emit(riscv.MnSB, riscv.RegNone, addr, src, 0)
	case 2:
		g.emit(riscv.MnSH, riscv.RegNone, addr, src, 0)
	case 4:
		g.emit(riscv.MnSW, riscv.RegNone, addr, src, 0)
	default:
		g.emit(riscv.MnSD, riscv.RegNone, addr, src, 0)
	}
}
