package parse

import (
	"runtime"
	"sort"
	"sync"

	"rvdyn/internal/riscv"
	"rvdyn/internal/semantics"
	"rvdyn/internal/symtab"
)

// Options configures parsing.
type Options struct {
	// Workers bounds the parallel parse (0 = GOMAXPROCS, 1 = serial). The
	// paper's ParseAPI uses "a fast parallel algorithm" — functions parse
	// independently and concurrently here.
	Workers int
	// NoGapParsing disables the speculative pass over unclaimed code ranges.
	NoGapParsing bool
	// NoSliceResolution disables backward-slice resolution of jalr targets,
	// leaving only opcode-level classification (the ablation of Section
	// 3.2.3's analysis: jump tables and far jumps become unresolved).
	NoSliceResolution bool
}

// Parse builds the CFG of the binary.
func Parse(st *symtab.Symtab, opts Options) (*CFG, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &parser{st: st, opts: opts, workers: workers}
	p.cfg = &CFG{Symtab: st, funcMap: map[uint64]*Function{}}

	// Seeds: the program entry point and every function symbol.
	type seed struct {
		entry uint64
		name  string
	}
	var seeds []seed
	seen := map[uint64]bool{}
	for _, fn := range st.Functions {
		if fn.Size == 0 && !st.InCode(fn.Addr) {
			continue
		}
		if !seen[fn.Addr] {
			seen[fn.Addr] = true
			seeds = append(seeds, seed{fn.Addr, fn.Name})
		}
	}
	if st.InCode(st.Entry) && !seen[st.Entry] {
		seeds = append(seeds, seed{st.Entry, "_entry"})
	}

	// Round-synchronized parallel traversal: each round parses the frontier
	// of undiscovered function entries concurrently; call and tail-call
	// targets found in round N form round N+1.
	p.scheduled = map[uint64]bool{}
	frontier := seeds
	for _, s := range frontier {
		p.scheduled[s.entry] = true
	}
	for len(frontier) > 0 {
		results := make([]*funcResult, len(frontier))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, s := range frontier {
			wg.Add(1)
			go func(i int, s seed) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = p.parseFunction(s.entry, s.name, false)
			}(i, s)
		}
		wg.Wait()

		var next []seed
		for _, r := range results {
			if r == nil || len(r.fn.Blocks) == 0 {
				continue
			}
			p.cfg.Funcs = append(p.cfg.Funcs, r.fn)
			p.cfg.funcMap[r.fn.Entry] = r.fn
			for _, d := range r.discovered {
				if !p.scheduled[d] && p.st.InCode(d) {
					p.scheduled[d] = true
					name := ""
					if sym, ok := st.FuncContaining(d); ok && sym.Addr == d {
						name = sym.Name
					}
					next = append(next, seed{d, name})
				}
			}
		}
		frontier = next
	}

	sort.Slice(p.cfg.Funcs, func(i, j int) bool { return p.cfg.Funcs[i].Entry < p.cfg.Funcs[j].Entry })

	if !opts.NoGapParsing {
		p.parseGaps()
	}
	p.computeLoops()
	p.fillStats()
	return p.cfg, nil
}

type parser struct {
	st      *symtab.Symtab
	opts    Options
	workers int
	cfg     *CFG

	mu        sync.Mutex
	scheduled map[uint64]bool
}

type funcResult struct {
	fn         *Function
	discovered []uint64
}

// isFunctionEntry reports whether addr is a known function start (symbol or
// already-scheduled parse target).
func (p *parser) isFunctionEntry(addr uint64) bool {
	if sym, ok := p.st.FuncContaining(addr); ok && sym.Addr == addr {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scheduled[addr]
}

// sameFunction decides whether target belongs to the function at entry —
// the "target address lies within the same function" test of the
// classifier. Symbol ranges answer it when available; otherwise the target
// must not coincide with another known entry and must lie in the same
// region at a plausible distance.
func (p *parser) sameFunction(entry, target uint64) bool {
	if esym, ok := p.st.FuncContaining(entry); ok && esym.Size > 0 {
		return target >= esym.Addr && target < esym.Addr+esym.Size
	}
	if target == entry {
		return true
	}
	if p.isFunctionEntry(target) {
		return false
	}
	// Stripped fallback: same region, and no known function entry strictly
	// between the two addresses.
	lo, hi := entry, target
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, fn := range p.st.Functions {
		if fn.Addr > lo && fn.Addr <= hi && fn.Addr != entry {
			return false
		}
	}
	r1, ok1 := p.st.RegionContaining(entry)
	r2, ok2 := p.st.RegionContaining(target)
	return ok1 && ok2 && r1.Addr == r2.Addr
}

// fparse is the per-function traversal state.
type fparse struct {
	p  *parser
	fn *Function
	// pending maps intra-function edge targets to edges awaiting a block.
	pending map[uint64][]*Edge
}

// edge records an out-edge, linking it immediately if the target block
// already exists, otherwise deferring until the block appears. Immediate
// linking matters: the jalr classifier consults predecessor blocks (for the
// backward slice and the jump-table bounds check) while parsing is still in
// progress.
func (s *fparse) edge(from *Block, kind EdgeKind, target uint64) {
	e := addEdge(from, nil, kind, target)
	if kind.Interprocedural() {
		return
	}
	if to, ok := s.fn.blockMap[target]; ok {
		e.To = to
		to.In = append(to.In, e)
		return
	}
	s.pending[target] = append(s.pending[target], e)
}

// linkPending attaches deferred edges targeting b.Start.
func (s *fparse) linkPending(b *Block) {
	for _, e := range s.pending[b.Start] {
		if e.To == nil {
			e.To = b
			b.In = append(b.In, e)
		}
	}
	delete(s.pending, b.Start)
}

// parseFunction traversal-parses one function.
func (p *parser) parseFunction(entry uint64, name string, speculative bool) *funcResult {
	if name == "" {
		if sym, ok := p.st.FuncContaining(entry); ok && sym.Addr == entry {
			name = sym.Name
		}
	}
	fn := &Function{Name: name, Entry: entry, blockMap: map[uint64]*Block{}, Speculative: speculative}
	res := &funcResult{fn: fn}
	s := &fparse{p: p, fn: fn, pending: map[uint64][]*Edge{}}
	discover := func(target uint64) {
		res.discovered = append(res.discovered, target)
	}

	worklist := []uint64{entry}
	for len(worklist) > 0 {
		addr := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]

		if _, done := fn.blockMap[addr]; done {
			continue
		}
		if b, ok := fn.BlockContaining(addr); ok {
			s.splitBlock(b, addr)
			continue
		}

		region, ok := p.st.RegionContaining(addr)
		if !ok || !region.Exec || region.Data == nil {
			continue
		}

		b := &Block{Start: addr, Func: fn}
		cur := addr
		var term riscv.Inst
		hasTerm := false
		for {
			if cur >= region.Addr+uint64(len(region.Data)) {
				break
			}
			if cur != addr {
				if _, exists := fn.blockMap[cur]; exists {
					break // ran into an existing leader: fallthrough edge below
				}
			}
			inst, err := riscv.Decode(region.Data[cur-region.Addr:], cur)
			if err != nil {
				break // undecodable: end the block here
			}
			b.Insts = append(b.Insts, inst)
			cur = inst.Next()
			if inst.IsControlFlow() && inst.Mn != riscv.MnEBREAK {
				term, hasTerm = inst, true
				break
			}
		}
		if len(b.Insts) == 0 {
			continue
		}
		b.End = cur
		s.insertBlock(b)

		push := func(t uint64) {
			if t == 0 {
				return
			}
			worklist = append(worklist, t)
		}

		if !hasTerm {
			// Fell through into an existing block or off the region.
			if _, ok := fn.blockMap[cur]; ok {
				s.edge(b, EdgeFallthrough, cur)
			}
			continue
		}

		if term.Mn == riscv.MnECALL {
			// System calls end blocks. Resolving the syscall number (a7)
			// with the same backward slice that resolves jalr targets
			// detects the non-returning exit/exit_group calls, so traversal
			// does not run off the end of the program into the next
			// function — the moral equivalent of Dyninst's non-returning
			// function analysis.
			if !p.opts.NoSliceResolution {
				if num, ok := p.resolveConst(b, len(b.Insts)-1, riscv.RegA7, 0); ok && (num == 93 || num == 94) {
					continue // no out edges: execution never returns
				}
			}
			s.edge(b, EdgeFallthrough, cur)
			push(cur)
			continue
		}

		switch term.Cat() {
		case riscv.CatBranch:
			taken := term.Addr + uint64(term.Imm)
			s.edge(b, EdgeTaken, taken)
			s.edge(b, EdgeNotTaken, cur)
			push(taken)
			push(cur)
		case riscv.CatJAL:
			target := term.Addr + uint64(term.Imm)
			if term.Rd == riscv.X0 {
				// Unconditional jump or tail call (classifier rules 3 and 4).
				if p.sameFunction(entry, target) {
					b.Purpose = PurposeJump
					s.edge(b, EdgeDirect, target)
					push(target)
				} else {
					b.Purpose = PurposeTailCall
					s.edge(b, EdgeTailCall, target)
					discover(target)
				}
			} else {
				b.Purpose = PurposeCall
				s.edge(b, EdgeCall, target)
				s.edge(b, EdgeCallFT, cur)
				fn.Callees = append(fn.Callees, target)
				discover(target)
				push(cur)
			}
		case riscv.CatJALR:
			p.classifyJalr(s, b, term, cur, push, discover)
		}
	}
	for _, blk := range fn.Blocks {
		if blk.Purpose == PurposeReturn {
			fn.Returns = true
		}
	}
	return res
}

// classifyJalr implements the paper's jalr decision procedure.
func (p *parser) classifyJalr(s *fparse, b *Block, term riscv.Inst, next uint64,
	push func(uint64), discover func(uint64)) {

	fn := s.fn
	idx := len(b.Insts) - 1

	// Attempt to resolve the target register to a constant by backward
	// slicing (fuses auipc+jalr and longer materialization sequences).
	var target uint64
	resolved := false
	if !p.opts.NoSliceResolution {
		if v, ok := p.resolveConst(b, idx, term.Rs1, 0); ok {
			target = (v + uint64(term.Imm)) &^ 1
			resolved = p.st.InCode(target)
		}
	}

	switch {
	case resolved && term.Rd == riscv.X0 && p.sameFunction(fn.Entry, target):
		// Rule 1: intra-function indirect jump.
		b.Purpose = PurposeJump
		s.edge(b, EdgeIndirect, target)
		push(target)
	case resolved && term.Rd == riscv.X0:
		// Rule 2: tail call to another function.
		b.Purpose = PurposeTailCall
		s.edge(b, EdgeTailCall, target)
		discover(target)
	case resolved && term.Rd != riscv.X0:
		// Rule 3: function call (auipc+jalr far call and friends).
		b.Purpose = PurposeCall
		s.edge(b, EdgeCall, target)
		s.edge(b, EdgeCallFT, next)
		fn.Callees = append(fn.Callees, target)
		discover(target)
		push(next)
	case term.Rd == riscv.X0 && term.Imm == 0 && isLinkReg(term.Rs1):
		// Rule 4: function return — an unconditional jump through a link
		// register whose value was established by a call.
		b.Purpose = PurposeReturn
		s.edge(b, EdgeReturn, 0)
	default:
		// Rule 5: jump-table analysis.
		if !p.opts.NoSliceResolution && term.Rd == riscv.X0 {
			if targets, ok := p.analyzeJumpTable(fn, b, idx, term); ok {
				b.Purpose = PurposeJumpTable
				b.TableTargets = targets
				for _, t := range targets {
					s.edge(b, EdgeIndirect, t)
					push(t)
				}
				return
			}
		}
		// Rule 6: unresolvable. An indirect jump with linkage is still a
		// call (the continuation exists even if the callee is unknown).
		if term.Rd != riscv.X0 {
			b.Purpose = PurposeCall
			s.edge(b, EdgeCall, 0)
			s.edge(b, EdgeCallFT, next)
			push(next)
		} else {
			b.Purpose = PurposeUnresolved
		}
	}
}

// isLinkReg: x1 is the standard link register; x5 (t0) is the ABI's
// alternate link register.
func isLinkReg(r riscv.Reg) bool { return r == riscv.RegRA || r == riscv.RegT0 }

// resolveConst evaluates the value a register holds just before b.Insts[idx]
// executes, walking definitions backward through the block and, at block
// boundaries, through unique intraprocedural predecessors. Memory reads are
// answered only from read-only file-backed regions.
func (p *parser) resolveConst(b *Block, idx int, reg riscv.Reg, depth int) (uint64, bool) {
	if reg == riscv.X0 {
		return 0, true
	}
	if depth > 16 {
		return 0, false
	}
	for i := idx - 1; i >= 0; i-- {
		inst := b.Insts[i]
		if !inst.RegsWritten().Contains(reg) {
			continue
		}
		if inst.Rd != reg {
			return 0, false // written implicitly (call clobber): unknown
		}
		env := &semantics.Env{
			Inst: inst,
			Reg: func(r riscv.Reg) (uint64, bool) {
				return p.resolveConst(b, i, r, depth+1)
			},
			Load: p.readOnlyLoad,
		}
		return semantics.EvalRd(env)
	}
	// Not defined in this block: follow a unique intraprocedural predecessor.
	pred := uniqueIntraPred(b)
	if pred == nil {
		return 0, false
	}
	return p.resolveConst(pred, len(pred.Insts), reg, depth+1)
}

func (p *parser) readOnlyLoad(addr uint64, w int) (uint64, bool) {
	r, ok := p.st.RegionContaining(addr)
	if !ok || r.Write || r.Data == nil {
		return 0, false
	}
	return p.st.ReadMem(addr, w)
}

func uniqueIntraPred(b *Block) *Block {
	var pred *Block
	for _, e := range b.In {
		if e.Kind.Interprocedural() || e.From == nil {
			continue
		}
		if pred != nil && pred != e.From {
			return nil
		}
		pred = e.From
	}
	return pred
}

// insertBlock adds b to the function and links any pending edges to it.
func (s *fparse) insertBlock(b *Block) {
	fn := s.fn
	fn.blockMap[b.Start] = b
	fn.Blocks = append(fn.Blocks, b)
	sort.Slice(fn.Blocks, func(i, j int) bool { return fn.Blocks[i].Start < fn.Blocks[j].Start })
	s.linkPending(b)
}

// splitBlock splits the block containing addr so a block starts exactly at
// addr. The tail keeps the original out-edges; the head falls through.
func (s *fparse) splitBlock(b *Block, addr uint64) {
	if addr <= b.Start || addr >= b.End {
		return
	}
	var cut int
	found := false
	for i, inst := range b.Insts {
		if inst.Addr == addr {
			cut, found = i, true
			break
		}
	}
	if !found {
		return // addr points into the middle of an instruction; keep as-is
	}
	tail := &Block{
		Start:        addr,
		End:          b.End,
		Insts:        b.Insts[cut:],
		Func:         s.fn,
		Purpose:      b.Purpose,
		TableTargets: b.TableTargets,
		TableBase:    b.TableBase,
		TableStride:  b.TableStride,
		TableWidth:   b.TableWidth,
		TableCount:   b.TableCount,
	}
	tail.Out = b.Out
	for _, e := range tail.Out {
		e.From = tail
	}
	b.Insts = b.Insts[:cut]
	b.End = addr
	b.Out = nil
	b.Purpose = PurposeNone
	b.TableTargets = nil
	b.TableBase, b.TableStride, b.TableWidth, b.TableCount = 0, 0, 0, 0
	addEdge(b, tail, EdgeFallthrough, addr)
	s.insertBlock(tail)
}

func (p *parser) fillStats() {
	s := &p.cfg.Stats
	for _, fn := range p.cfg.Funcs {
		s.Functions++
		if fn.Speculative {
			s.GapFuncs++
		}
		for _, b := range fn.Blocks {
			s.Blocks++
			s.Instructions += len(b.Insts)
			switch b.Purpose {
			case PurposeCall:
				s.Calls++
			case PurposeReturn:
				s.Returns++
			case PurposeJump:
				s.Jumps++
			case PurposeTailCall:
				s.TailCalls++
			case PurposeJumpTable:
				s.JumpTables++
			case PurposeUnresolved:
				s.Unresolved++
			}
		}
	}
}
