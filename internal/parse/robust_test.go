package parse

import (
	"math/rand"
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/symtab"
)

// TestParseRandomBytesNeverPanics: pointing the parser at arbitrary bytes
// (a stripped binary full of data misclassified as code — the paper's gap
// discussion is about exactly this uncertainty) must terminate without
// panicking, producing whatever partial CFG the bytes support.
func TestParseRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		text := make([]byte, 256+rng.Intn(2048))
		rng.Read(text)
		f := &elfrv.File{
			Entry: 0x10000,
			Sections: []*elfrv.Section{
				{Name: ".text", Type: elfrv.SHTProgbits,
					Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
					Addr:  0x10000, Data: text, Align: 4},
			},
		}
		st, err := symtab.FromFile(f)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Parse panicked: %v", trial, r)
				}
			}()
			cfg, err := Parse(st, Options{})
			if err != nil {
				return
			}
			// Exercise the results: loops, stats, lookups.
			for _, fn := range cfg.Funcs {
				fn.Extent()
				fn.ExitBlocks()
			}
			cfg.FuncContaining(0x10080)
		}()
	}
}

// TestParseSelfReferentialCode: pathological shapes — a branch into its own
// middle byte, overlapping instruction streams — must not hang or panic.
func TestParseSelfReferentialCode(t *testing.T) {
	// jal x0, -2 lands mid-instruction; jal x0, 0 is a self-loop.
	cases := [][]byte{
		{0x6f, 0x00, 0x00, 0x00},             // jal x0, 0 (self loop)
		{0x6f, 0xf0, 0xff, 0xff},             // jal x0, huge negative
		{0x01, 0x00, 0x01, 0x00, 0x01, 0x00}, // c.nops then end
	}
	for i, text := range cases {
		f := &elfrv.File{
			Entry: 0x10000,
			Sections: []*elfrv.Section{
				{Name: ".text", Type: elfrv.SHTProgbits,
					Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
					Addr:  0x10000, Data: text, Align: 4},
			},
		}
		st, err := symtab.FromFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(st, Options{}); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}
