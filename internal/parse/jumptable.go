package parse

import (
	"sort"

	"rvdyn/internal/riscv"
)

// Jump-table analysis (paper Section 3.2.3, rule 5). The classic RISC-V
// dispatch shape is
//
//	bltu  idx, bound, Lswitch   ; or bgeu idx, bound, Ldefault
//	...
//	la    base, table           ; lui+addi or auipc+addi
//	slli  t, idx, 3
//	add   t, t, base
//	ld    t, 0(t)
//	jalr  x0, 0(t)
//
// The analysis runs a small abstract interpretation backward from the jalr:
// the target register must evaluate to load(const_base + idx<<scale), the
// index register must be bounded by a dominating comparison against a
// constant, and every table slot must hold a valid code address. This is a
// miniature of Dyninst's slicing-based jump table analysis [Meng & Miller].

// absVal is the abstract value lattice for table discovery.
type absVal struct {
	kind  int // avTop, avConst, avRef, avScaled, avLoad
	k     uint64
	reg   riscv.Reg // index register for avRef/avScaled
	shift uint      // avScaled: value = (reg << shift) + k
	width int       // avLoad: loaded width
	addr  absAddr   // avLoad: the address form
}

type absAddr struct {
	base  uint64
	reg   riscv.Reg
	shift uint
}

const (
	avTop = iota
	avConst
	avRef
	avScaled
	avLoad
)

// symEval computes the abstract value of reg immediately before
// b.Insts[idx], walking back through the block and unique predecessors.
func (p *parser) symEval(b *Block, idx int, reg riscv.Reg, depth int) absVal {
	if reg == riscv.X0 {
		return absVal{kind: avConst, k: 0}
	}
	if depth > 24 {
		return absVal{kind: avTop}
	}
	for i := idx - 1; i >= 0; i-- {
		inst := b.Insts[i]
		if !inst.RegsWritten().Contains(reg) {
			continue
		}
		if inst.Rd != reg {
			return absVal{kind: avTop}
		}
		return p.symTransfer(b, i, inst, depth)
	}
	if pred := uniqueIntraPred(b); pred != nil {
		return p.symEval(pred, len(pred.Insts), reg, depth+1)
	}
	return absVal{kind: avRef, reg: reg}
}

func (p *parser) symTransfer(b *Block, i int, inst riscv.Inst, depth int) absVal {
	get := func(r riscv.Reg) absVal { return p.symEval(b, i, r, depth+1) }
	switch inst.Mn {
	case riscv.MnLUI:
		return absVal{kind: avConst, k: uint64(inst.Imm << 12)}
	case riscv.MnAUIPC:
		return absVal{kind: avConst, k: inst.Addr + uint64(inst.Imm<<12)}
	case riscv.MnADDI, riscv.MnADDIW:
		a := get(inst.Rs1)
		switch a.kind {
		case avConst:
			v := a.k + uint64(inst.Imm)
			if inst.Mn == riscv.MnADDIW {
				v = uint64(int64(int32(uint32(v))))
			}
			return absVal{kind: avConst, k: v}
		case avRef, avScaled:
			a.k += uint64(inst.Imm)
			return a
		}
	case riscv.MnADD:
		a, c := get(inst.Rs1), get(inst.Rs2)
		if a.kind == avConst && c.kind == avConst {
			return absVal{kind: avConst, k: a.k + c.k}
		}
		if a.kind == avConst && (c.kind == avRef || c.kind == avScaled) {
			c.k += a.k
			return c
		}
		if c.kind == avConst && (a.kind == avRef || a.kind == avScaled) {
			a.k += c.k
			return a
		}
	case riscv.MnSLLI:
		a := get(inst.Rs1)
		switch a.kind {
		case avConst:
			return absVal{kind: avConst, k: a.k << uint(inst.Imm)}
		case avRef:
			return absVal{kind: avScaled, reg: a.reg, shift: uint(inst.Imm), k: a.k << uint(inst.Imm)}
		case avScaled:
			a.shift += uint(inst.Imm)
			a.k <<= uint(inst.Imm)
			return a
		}
	case riscv.MnSH1ADD, riscv.MnSH2ADD, riscv.MnSH3ADD:
		// The Zba address-generation idiom: rd = (rs1 << k) + rs2 — RVA23
		// compilers index jump tables with one instruction instead of
		// slli+add.
		var sh uint
		switch inst.Mn {
		case riscv.MnSH1ADD:
			sh = 1
		case riscv.MnSH2ADD:
			sh = 2
		default:
			sh = 3
		}
		a, base := get(inst.Rs1), get(inst.Rs2)
		var shifted absVal
		switch a.kind {
		case avConst:
			shifted = absVal{kind: avConst, k: a.k << sh}
		case avRef:
			shifted = absVal{kind: avScaled, reg: a.reg, shift: sh, k: a.k << sh}
		case avScaled:
			shifted = absVal{kind: avScaled, reg: a.reg, shift: a.shift + sh, k: a.k << sh}
		default:
			return absVal{kind: avTop}
		}
		if base.kind != avConst {
			return absVal{kind: avTop}
		}
		if shifted.kind == avConst {
			return absVal{kind: avConst, k: shifted.k + base.k}
		}
		shifted.k += base.k
		return shifted
	case riscv.MnLD, riscv.MnLW, riscv.MnLWU:
		a := get(inst.Rs1)
		w := inst.MemWidth()
		switch a.kind {
		case avConst:
			if v, ok := p.readOnlyLoad(a.k+uint64(inst.Imm), w); ok {
				if inst.Mn == riscv.MnLW {
					v = uint64(int64(int32(uint32(v))))
				}
				return absVal{kind: avConst, k: v}
			}
		case avScaled:
			return absVal{kind: avLoad, width: w,
				addr: absAddr{base: a.k + uint64(inst.Imm), reg: a.reg, shift: a.shift}}
		}
	}
	return absVal{kind: avTop}
}

// findBound searches the jump block's predecessors for a dominating bounds
// check on the index register: bltu idx, K, table-side or bgeu idx, K,
// default-side. It returns the exclusive upper bound.
func (p *parser) findBound(b *Block, idxReg riscv.Reg) (uint64, bool) {
	seen := map[*Block]bool{b: true}
	cur := b
	for hops := 0; hops < 4; hops++ {
		pred := uniqueIntraPred(cur)
		if pred == nil || seen[pred] || len(pred.Insts) == 0 {
			return 0, false
		}
		seen[pred] = true
		term := pred.Last()
		if term.Cat() == riscv.CatBranch {
			// Which side of the branch leads to the table block?
			var towardTable EdgeKind
			for _, e := range pred.Out {
				if e.To == cur {
					towardTable = e.Kind
				}
			}
			if term.Mn == riscv.MnBLTU && term.Rs1 == idxReg && towardTable == EdgeTaken {
				if k, ok := p.resolveConst(pred, len(pred.Insts)-1, term.Rs2, 0); ok {
					return k, true
				}
			}
			if term.Mn == riscv.MnBGEU && term.Rs1 == idxReg && towardTable == EdgeNotTaken {
				if k, ok := p.resolveConst(pred, len(pred.Insts)-1, term.Rs2, 0); ok {
					return k, true
				}
			}
			// A branch on an unrelated register: keep walking up.
		}
		cur = pred
	}
	return 0, false
}

const maxTableEntries = 4096

// analyzeJumpTable attempts to prove b's terminating jalr dispatches
// through a bounded table of code addresses and returns the sorted unique
// targets.
func (p *parser) analyzeJumpTable(fn *Function, b *Block, idx int, term riscv.Inst) ([]uint64, bool) {
	v := p.symEval(b, idx, term.Rs1, 0)
	if v.kind != avLoad || term.Imm != 0 {
		return nil, false
	}
	if v.addr.shift == 0 {
		return nil, false // unscaled index: not a table access pattern
	}
	bound, ok := p.findBound(b, v.addr.reg)
	if !ok || bound == 0 || bound > maxTableEntries {
		return nil, false
	}
	stride := uint64(1) << v.addr.shift
	if uint64(v.width) > stride {
		return nil, false
	}
	targets := map[uint64]bool{}
	for i := uint64(0); i < bound; i++ {
		slot := v.addr.base + i*stride
		raw, ok := p.readOnlyLoad(slot, v.width)
		if !ok {
			return nil, false
		}
		t := raw
		if v.width == 4 {
			t = uint64(int64(int32(uint32(raw)))) // 32-bit table entries sign-extend
		}
		t &^= 1
		if !p.st.InCode(t) {
			return nil, false
		}
		targets[t] = true
	}
	out := make([]uint64, 0, len(targets))
	for t := range targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	b.TableBase = v.addr.base
	b.TableStride = stride
	b.TableWidth = v.width
	b.TableCount = bound
	return out, true
}
