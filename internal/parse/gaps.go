package parse

import (
	"sort"

	"rvdyn/internal/riscv"
)

// Gap parsing (paper Section 2.1): traversal parsing from known entry
// points can leave unclaimed ranges in executable regions wherever code is
// only reachable through unresolved pointers. After the main parse, this
// pass scans those ranges and speculatively parses plausible function
// starts, marking the results Speculative. (Dyninst additionally applies a
// learned model to rank candidate starts [Rosenblum et al.]; here the
// heuristic is structural: the range must decode cleanly and terminate.)

type interval struct{ lo, hi uint64 }

// claimedIntervals merges all parsed block extents.
func (p *parser) claimedIntervals() []interval {
	var ivs []interval
	for _, fn := range p.cfg.Funcs {
		for _, b := range fn.Blocks {
			ivs = append(ivs, interval{b.Start, b.End})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var merged []interval
	for _, iv := range ivs {
		if n := len(merged); n > 0 && iv.lo <= merged[n-1].hi {
			if iv.hi > merged[n-1].hi {
				merged[n-1].hi = iv.hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// parseGaps finds unclaimed executable ranges, records them, and attempts a
// speculative parse at each plausible start.
func (p *parser) parseGaps() {
	claimed := p.claimedIntervals()
	for _, region := range p.st.CodeRegions() {
		if region.Data == nil {
			continue
		}
		cur := region.Addr
		end := region.Addr + uint64(len(region.Data))
		for _, iv := range claimed {
			if iv.hi <= cur || iv.lo >= end {
				continue
			}
			if iv.lo > cur {
				p.tryGap(region.Addr, region.Data, cur, iv.lo)
			}
			if iv.hi > cur {
				cur = iv.hi
			}
		}
		if cur < end {
			p.tryGap(region.Addr, region.Data, cur, end)
		}
	}
	sort.Slice(p.cfg.Funcs, func(i, j int) bool { return p.cfg.Funcs[i].Entry < p.cfg.Funcs[j].Entry })
}

// tryGap records the gap and attempts one speculative function parse at its
// first non-padding address.
func (p *parser) tryGap(regionAddr uint64, data []byte, lo, hi uint64) {
	// Skip alignment padding: zeros, c.nop (0x0001), nop (0x00000013).
	start := lo
	for start < hi {
		off := start - regionAddr
		if off+2 > uint64(len(data)) {
			break
		}
		h := uint16(data[off]) | uint16(data[off+1])<<8
		if h == 0 || h == 0x0001 {
			start += 2
			continue
		}
		if off+4 <= uint64(len(data)) {
			w := uint32(h) | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
			if w == 0x00000013 {
				start += 4
				continue
			}
		}
		break
	}
	if start >= hi {
		return // pure padding, not a gap worth recording
	}
	p.cfg.Gaps = append(p.cfg.Gaps, Gap{Addr: start, Size: hi - start})

	if !p.plausibleCode(data, regionAddr, start, hi) {
		return
	}
	p.mu.Lock()
	already := p.scheduled[start]
	p.scheduled[start] = true
	p.mu.Unlock()
	if already {
		return
	}
	res := p.parseFunction(start, "", true)
	if res == nil || len(res.fn.Blocks) == 0 {
		return
	}
	// Accept only if the speculative function stayed within the gap and has
	// sane control flow (at least one classified exit).
	_, fhi := res.fn.Extent()
	if fhi > hi {
		return
	}
	exits := 0
	for _, b := range res.fn.Blocks {
		if b.Purpose != PurposeNone {
			exits++
		}
	}
	if exits == 0 {
		return
	}
	p.cfg.Funcs = append(p.cfg.Funcs, res.fn)
	p.cfg.funcMap[res.fn.Entry] = res.fn
}

// plausibleCode requires the first few instructions at start to decode.
func (p *parser) plausibleCode(data []byte, regionAddr, start, hi uint64) bool {
	cur := start
	for i := 0; i < 4 && cur < hi; i++ {
		off := cur - regionAddr
		if off >= uint64(len(data)) {
			return false
		}
		inst, err := riscv.Decode(data[off:], cur)
		if err != nil {
			return false
		}
		cur = inst.Next()
		if inst.IsControlFlow() {
			break
		}
	}
	return true
}
