package parse

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

func parseSource(t *testing.T, src string, aopts asm.Options, popts Options) *CFG {
	t.Helper()
	f, err := asm.Assemble(src, aopts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatalf("symtab: %v", err)
	}
	cfg, err := Parse(st, popts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg
}

func TestMatmulElevenBasicBlocks(t *testing.T) {
	// Paper Section 4.1: "there are 11 basic blocks in the multiply
	// function (the same for both the RISC-V and x86 binaries)".
	for _, name := range []string{"compressed", "uncompressed"} {
		opts := asm.Options{}
		if name == "uncompressed" {
			opts.NoCompress = true
		}
		cfg := parseSource(t, workload.MatmulSource(100, 1), opts, Options{})
		fn, ok := cfg.FuncByName("multiply")
		if !ok {
			t.Fatalf("%s: multiply not found", name)
		}
		if len(fn.Blocks) != 11 {
			for _, b := range fn.Blocks {
				t.Logf("  %v purpose=%v", b, b.Purpose)
			}
			t.Errorf("%s: multiply has %d basic blocks, want 11", name, len(fn.Blocks))
		}
	}
}

func TestMatmulLoopNest(t *testing.T) {
	cfg := parseSource(t, workload.MatmulSource(100, 1), asm.Options{}, Options{})
	fn, _ := cfg.FuncByName("multiply")
	if len(fn.Loops) != 3 {
		t.Fatalf("multiply has %d loops, want 3 (i, j, k)", len(fn.Loops))
	}
	// Exactly one innermost (k), one middle (j), one outermost (i).
	depth := map[*Loop]int{}
	for _, l := range fn.Loops {
		d := 0
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		depth[l] = d
	}
	counts := map[int]int{}
	for _, d := range depth {
		counts[d]++
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("loop nesting depths = %v, want one each of 0,1,2", counts)
	}
}

func TestMatmulReturns(t *testing.T) {
	cfg := parseSource(t, workload.MatmulSource(10, 1), asm.Options{}, Options{})
	for _, name := range []string{"multiply", "init_matrices"} {
		fn, ok := cfg.FuncByName(name)
		if !ok {
			t.Fatalf("%s not found", name)
		}
		if !fn.Returns {
			t.Errorf("%s: return not detected", name)
		}
	}
}

func TestCallGraph(t *testing.T) {
	cfg := parseSource(t, workload.MatmulSource(10, 2), asm.Options{}, Options{})
	entry, ok := cfg.FuncByName("_start")
	if !ok {
		t.Fatal("_start not found")
	}
	mult, _ := cfg.FuncByName("multiply")
	initm, _ := cfg.FuncByName("init_matrices")
	found := map[uint64]bool{}
	for _, c := range entry.Callees {
		found[c] = true
	}
	if !found[mult.Entry] || !found[initm.Entry] {
		t.Errorf("_start callees = %v, want multiply (%#x) and init_matrices (%#x)",
			entry.Callees, mult.Entry, initm.Entry)
	}
}

func TestJumpTableAnalysis(t *testing.T) {
	cfg := parseSource(t, workload.JumpTableSource, asm.Options{}, Options{})
	fn, ok := cfg.FuncByName("dispatch")
	if !ok {
		t.Fatal("dispatch not found")
	}
	var jt *Block
	for _, b := range fn.Blocks {
		if b.Purpose == PurposeJumpTable {
			jt = b
		}
	}
	if jt == nil {
		for _, b := range fn.Blocks {
			t.Logf("  %v purpose=%v last=%v", b, b.Purpose, b.Last())
		}
		t.Fatal("no jump-table block found in dispatch")
	}
	if len(jt.TableTargets) != 4 {
		t.Fatalf("jump table resolved %d targets, want 4: %#x", len(jt.TableTargets), jt.TableTargets)
	}
	// Every target must be a block start inside dispatch.
	for _, tgt := range jt.TableTargets {
		if _, ok := fn.BlockAt(tgt); !ok {
			t.Errorf("table target %#x is not a block in dispatch", tgt)
		}
	}
	if cfg.Stats.JumpTables != 1 {
		t.Errorf("stats.JumpTables = %d", cfg.Stats.JumpTables)
	}
}

func TestJalrClassificationTailCalls(t *testing.T) {
	cfg := parseSource(t, workload.TailCallSource, asm.Options{}, Options{})
	outer, ok := cfg.FuncByName("f_outer")
	if !ok {
		t.Fatal("f_outer not found")
	}
	middle, _ := cfg.FuncByName("f_middle")
	inner, _ := cfg.FuncByName("f_inner")
	if middle == nil || inner == nil {
		t.Fatal("tail-call targets not discovered as functions")
	}
	// f_outer ends in a near tail call (jal x0).
	wantTail := func(fn *Function, dst uint64) {
		t.Helper()
		for _, b := range fn.Blocks {
			if b.Purpose == PurposeTailCall {
				for _, e := range b.Out {
					if e.Kind == EdgeTailCall && e.Target == dst {
						return
					}
				}
			}
		}
		t.Errorf("%s: no tail-call edge to %#x", fn.Name, dst)
	}
	wantTail(outer, middle.Entry)
	// f_middle ends in a far tail call (auipc+jalr fused by the slice).
	wantTail(middle, inner.Entry)
	if !inner.Returns {
		t.Error("f_inner return not detected")
	}
}

func TestJalrClassificationFarCalls(t *testing.T) {
	cfg := parseSource(t, workload.FarCallSource, asm.Options{}, Options{})
	entry, ok := cfg.FuncByName("_start")
	if !ok {
		t.Fatal("_start not found")
	}
	square, ok := cfg.FuncByName("square")
	if !ok {
		t.Fatal("square not discovered via far calls")
	}
	calls := 0
	for _, b := range entry.Blocks {
		if b.Purpose != PurposeCall {
			continue
		}
		for _, e := range b.Out {
			if e.Kind == EdgeCall && e.Target == square.Entry {
				calls++
			}
		}
	}
	if calls != 2 {
		t.Errorf("found %d fused auipc+jalr calls to square, want 2", calls)
	}
	// Each call block must also have a fallthrough continuation.
	for _, b := range entry.Blocks {
		if b.Purpose == PurposeCall {
			hasFT := false
			for _, e := range b.Out {
				if e.Kind == EdgeCallFT {
					hasFT = true
				}
			}
			if !hasFT {
				t.Errorf("call block %v lacks call-fallthrough edge", b)
			}
		}
	}
}

func TestReturnClassification(t *testing.T) {
	cfg := parseSource(t, workload.FibSource, asm.Options{}, Options{})
	fib, ok := cfg.FuncByName("fib")
	if !ok {
		t.Fatal("fib not found")
	}
	returns := 0
	for _, b := range fib.Blocks {
		if b.Purpose == PurposeReturn {
			returns++
			last := b.Last()
			if last.Mn != riscv.MnJALR || last.Rs1 != riscv.RegRA || last.Rd != riscv.X0 {
				t.Errorf("return block ends with %v", last)
			}
		}
	}
	if returns != 1 {
		t.Errorf("fib has %d return blocks, want 1", returns)
	}
}

func TestAblationSliceResolution(t *testing.T) {
	// Without backward-slice resolution, far tail calls and jump tables
	// degrade to unresolved — quantifying what Section 3.2.3's analysis
	// buys (CFG completeness).
	full := parseSource(t, workload.JumpTableSource, asm.Options{}, Options{NoGapParsing: true})
	degraded := parseSource(t, workload.JumpTableSource, asm.Options{},
		Options{NoSliceResolution: true, NoGapParsing: true})
	if full.Stats.JumpTables == 0 {
		t.Error("full parse found no jump table")
	}
	if degraded.Stats.JumpTables != 0 {
		t.Error("degraded parse still resolved the jump table")
	}
	if degraded.Stats.Unresolved <= full.Stats.Unresolved {
		t.Errorf("unresolved: degraded %d vs full %d; ablation should increase it",
			degraded.Stats.Unresolved, full.Stats.Unresolved)
	}
	if degraded.Stats.Blocks >= full.Stats.Blocks {
		t.Errorf("blocks: degraded %d vs full %d; ablation should shrink the CFG",
			degraded.Stats.Blocks, full.Stats.Blocks)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	src := workload.MatmulSource(50, 1)
	serial := parseSource(t, src, asm.Options{}, Options{Workers: 1})
	parallel := parseSource(t, src, asm.Options{}, Options{Workers: 8})
	if serial.Stats != parallel.Stats {
		t.Errorf("parallel parse diverges:\nserial:   %+v\nparallel: %+v", serial.Stats, parallel.Stats)
	}
	if len(serial.Funcs) != len(parallel.Funcs) {
		t.Fatalf("function counts differ: %d vs %d", len(serial.Funcs), len(parallel.Funcs))
	}
	for i := range serial.Funcs {
		a, b := serial.Funcs[i], parallel.Funcs[i]
		if a.Entry != b.Entry || len(a.Blocks) != len(b.Blocks) {
			t.Errorf("func %d: %#x/%d blocks vs %#x/%d blocks", i, a.Entry, len(a.Blocks), b.Entry, len(b.Blocks))
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	// A backward branch into the middle of already-parsed straight-line
	// code forces a split.
	src := `
	.text
	.globl _start
_start:
	li t0, 3
	addi t1, zero, 0
top:
	addi t1, t1, 1
	addi t0, t0, -1
	bnez t0, top
	li a7, 93
	li a0, 0
	ecall
`
	cfg := parseSource(t, src, asm.Options{NoCompress: true}, Options{})
	fn, ok := cfg.FuncByName("_start")
	if !ok {
		t.Fatal("_start not found")
	}
	// Blocks: [li,addi][top: addi,addi,bnez][li,li,ecall...]
	if len(fn.Blocks) != 3 {
		for _, b := range fn.Blocks {
			t.Logf("  %v", b)
		}
		t.Fatalf("got %d blocks, want 3", len(fn.Blocks))
	}
	// The middle block must have two in-edges (fallthrough + taken).
	mid := fn.Blocks[1]
	if len(mid.In) != 2 {
		t.Errorf("loop head has %d in-edges, want 2", len(mid.In))
	}
}

func TestStrippedBinaryParsesFromEntry(t *testing.T) {
	// Remove symbols: parsing must still discover functions by traversal
	// from the entry point (the paper: Dyninst analyzes opportunistically,
	// working on stripped binaries).
	f, err := asm.Assemble(workload.FarCallSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Symbols = nil
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Parse(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Funcs) < 2 {
		t.Fatalf("stripped parse found %d functions, want >= 2 (entry + far-call target)", len(cfg.Funcs))
	}
	if cfg.Stats.Calls < 2 {
		t.Errorf("stripped parse found %d calls, want >= 2", cfg.Stats.Calls)
	}
}

func TestGapParsing(t *testing.T) {
	// A function referenced only through a data pointer is unreachable by
	// traversal; gap parsing must recover it speculatively.
	src := `
	.text
	.globl _start
_start:
	li a0, 0
	li a7, 93
	ecall
	.balign 8
orphan:
	addi a0, a0, 5
	ret

	.data
fnptr:
	.dword orphan
`
	f, err := asm.Assemble(src, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	// Strip symbols so orphan is invisible to seeding.
	f.Symbols = nil
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Parse(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Stats.GapFuncs == 0 {
		t.Errorf("gap parsing recovered no functions; gaps: %+v", cfg.Gaps)
	}
	// Without gap parsing the orphan stays a gap.
	cfg2, err := Parse(st, Options{NoGapParsing: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Stats.GapFuncs != 0 {
		t.Error("NoGapParsing still produced speculative functions")
	}
	if len(cfg2.Funcs) >= len(cfg.Funcs) {
		t.Errorf("gap parsing did not add functions: %d vs %d", len(cfg.Funcs), len(cfg2.Funcs))
	}
}

func TestFuncContaining(t *testing.T) {
	cfg := parseSource(t, workload.MatmulSource(10, 1), asm.Options{}, Options{})
	mult, _ := cfg.FuncByName("multiply")
	mid := mult.Blocks[len(mult.Blocks)/2]
	fn, ok := cfg.FuncContaining(mid.Start + 2)
	if !ok {
		t.Fatalf("FuncContaining(%#x) found nothing", mid.Start+2)
	}
	if fn.Entry != mult.Entry {
		t.Errorf("FuncContaining found %s", fn.Name)
	}
}

func TestEdgeInvariants(t *testing.T) {
	cfg := parseSource(t, workload.MatmulSource(10, 1), asm.Options{}, Options{})
	for _, fn := range cfg.Funcs {
		for _, b := range fn.Blocks {
			for _, e := range b.Out {
				if e.From != b {
					t.Errorf("%s %v: out-edge From mismatch", fn.Name, b)
				}
				if !e.Kind.Interprocedural() && e.To == nil && e.Target != 0 {
					t.Errorf("%s %v: unlinked intra edge to %#x (%v)", fn.Name, b, e.Target, e.Kind)
				}
				if e.To != nil {
					found := false
					for _, ie := range e.To.In {
						if ie == e {
							found = true
						}
					}
					if !found {
						t.Errorf("%s: edge %v->%v missing from To.In", fn.Name, e.From, e.To)
					}
				}
			}
			// Instructions must tile the block exactly.
			addr := b.Start
			for _, in := range b.Insts {
				if in.Addr != addr {
					t.Errorf("%s %v: instruction at %#x, expected %#x", fn.Name, b, in.Addr, addr)
					break
				}
				addr = in.Next()
			}
			if addr != b.End {
				t.Errorf("%s %v: instructions end at %#x", fn.Name, b, addr)
			}
		}
	}
}

func TestTinyFunctionParses(t *testing.T) {
	cfg := parseSource(t, workload.TinyFuncSource, asm.Options{}, Options{})
	tiny, ok := cfg.FuncByName("tiny")
	if !ok {
		t.Fatal("tiny not found")
	}
	if len(tiny.Blocks) != 1 || tiny.Blocks[0].Size() != 2 {
		t.Errorf("tiny parsed as %d blocks, first size %d", len(tiny.Blocks), tiny.Blocks[0].Size())
	}
	if tiny.Blocks[0].Purpose != PurposeReturn {
		t.Errorf("tiny block purpose = %v", tiny.Blocks[0].Purpose)
	}
}
