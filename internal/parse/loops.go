package parse

import (
	"sort"
	"sync"
)

// Loop is one natural loop of a function's CFG.
type Loop struct {
	// Head is the loop header (the target of the back edges).
	Head *Block
	// Blocks is the loop body including the header, sorted by address.
	Blocks []*Block
	// BackEdges are the edges from body blocks to the header.
	BackEdges []*Edge
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
}

// Contains reports whether the block is in the loop body.
func (l *Loop) Contains(b *Block) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// intraSucc enumerates intra-function successors.
func intraSucc(b *Block) []*Block {
	var out []*Block
	for _, e := range b.Out {
		if !e.Kind.Interprocedural() && e.To != nil {
			out = append(out, e.To)
		}
	}
	return out
}

// intraPred enumerates intra-function predecessors.
func intraPred(b *Block) []*Block {
	var out []*Block
	for _, e := range b.In {
		if !e.Kind.Interprocedural() && e.From != nil {
			out = append(out, e.From)
		}
	}
	return out
}

// domSets computes per-block dominator sets as bitsets over block indices
// with the standard iterative algorithm, in reverse-postorder-ish block
// order (address order approximates it well for compiler-shaped CFGs).
type domSets struct {
	index map[*Block]int
	words int
	bits  [][]uint64 // bits[i] = dominator set of block i
}

func (d *domSets) dominates(a, b *Block) bool {
	ia, ok1 := d.index[a]
	ib, ok2 := d.index[b]
	if !ok1 || !ok2 {
		return false
	}
	return d.bits[ib][ia/64]&(1<<(uint(ia)%64)) != 0
}

func dominators(fn *Function) *domSets {
	entry := fn.EntryBlock()
	if entry == nil {
		return nil
	}
	n := len(fn.Blocks)
	d := &domSets{index: make(map[*Block]int, n), words: (n + 63) / 64}
	for i, b := range fn.Blocks {
		d.index[b] = i
	}
	d.bits = make([][]uint64, n)
	full := make([]uint64, d.words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << (uint(i) % 64)
	}
	for i, b := range fn.Blocks {
		d.bits[i] = make([]uint64, d.words)
		if b == entry {
			d.bits[i][i/64] = 1 << (uint(i) % 64)
		} else {
			copy(d.bits[i], full)
		}
	}
	tmp := make([]uint64, d.words)
	changed := true
	for changed {
		changed = false
		for i, b := range fn.Blocks {
			if b == entry {
				continue
			}
			copy(tmp, full)
			any := false
			for _, p := range intraPred(b) {
				pi := d.index[p]
				for w := 0; w < d.words; w++ {
					tmp[w] &= d.bits[pi][w]
				}
				any = true
			}
			if !any {
				for w := range tmp {
					tmp[w] = 0
				}
			}
			tmp[i/64] |= 1 << (uint(i) % 64)
			for w := 0; w < d.words; w++ {
				if tmp[w] != d.bits[i][w] {
					copy(d.bits[i], tmp)
					changed = true
					break
				}
			}
		}
	}
	return d
}

// computeLoops finds the natural loops of every function: back edges are
// edges whose target dominates their source; the loop body is everything
// that reaches the back edge source without passing through the header.
// Functions are independent, so the work fans out like the parse itself.
func (p *parser) computeLoops() {
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.workers)
	for _, fn := range p.cfg.Funcs {
		wg.Add(1)
		go func(fn *Function) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn.Loops = findLoops(fn)
		}(fn)
	}
	wg.Wait()
}

func findLoops(fn *Function) []*Loop {
	dom := dominators(fn)
	if dom == nil {
		return nil
	}
	byHead := map[*Block]*Loop{}
	for _, b := range fn.Blocks {
		for _, e := range b.Out {
			if e.Kind.Interprocedural() || e.To == nil {
				continue
			}
			h := e.To
			if !dom.dominates(h, b) {
				continue // not a back edge
			}
			l := byHead[h]
			if l == nil {
				l = &Loop{Head: h}
				byHead[h] = l
			}
			l.BackEdges = append(l.BackEdges, e)
			// Body: reverse reachability from the back-edge source.
			body := map[*Block]bool{h: true}
			stack := []*Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[n] {
					continue
				}
				body[n] = true
				stack = append(stack, intraPred(n)...)
			}
			for blk := range body {
				if !l.Contains(blk) {
					l.Blocks = append(l.Blocks, blk)
				}
			}
		}
	}
	var loops []*Loop
	for _, l := range byHead {
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].Start < l.Blocks[j].Start })
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head.Start < loops[j].Head.Start })
	// Nesting: parent = smallest strictly-containing loop.
	for _, l := range loops {
		var best *Loop
		for _, m := range loops {
			if m == l || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if m.Contains(l.Head) && (best == nil || len(m.Blocks) < len(best.Blocks)) {
				best = m
			}
		}
		l.Parent = best
	}
	return loops
}
