package parse

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
	"rvdyn/internal/symtab"
)

// Analysis of RVA23-profile binaries (paper Section 3.4). The CFG
// construction and classification code needed no changes for the new
// extensions — instruction metadata and value semantics arrived through
// the registration hook and the semantics JSON. The one deliberate
// addition is the jump-table pattern matcher learning the Zba sh3add
// indexing idiom, tested below.

// rva23JumpTable is the dispatch workload rewritten the way an RVA23
// compiler emits it: sh3add replaces the slli+add pair.
const rva23JumpTable = `
	.text
	.globl _start
_start:
	li s0, 0
	li s1, 0
jt_loop:
	li t0, 6
	bge s0, t0, jt_done
	mv a0, s0
	call dispatch
	add s1, s1, a0
	addi s0, s0, 1
	j jt_loop
jt_done:
	mv a0, s1
	li a7, 93
	ecall

	.globl dispatch
	.type dispatch, @function
dispatch:
	li t0, 4
	bgeu a0, t0, case_default
	la t1, table
	sh3add t1, a0, t1      # Zba: t1 = (a0 << 3) + t1
	ld t3, 0(t1)
	jr t3
case0:
	li a0, 10
	ret
case1:
	li a0, 21
	ret
case2:
	li a0, 32
	ret
case3:
	li a0, 43
	ret
case_default:
	li a0, 99
	ret
	.size dispatch, .-dispatch

	.rodata
	.balign 8
table:
	.dword case0
	.dword case1
	.dword case2
	.dword case3
`

func TestRVA23JumpTableIdiom(t *testing.T) {
	f, err := asm.Assemble(rva23JumpTable, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Extensions.Has(riscv.ExtZba) {
		t.Fatalf("attributes lost zba: %v", st.Extensions)
	}
	cfg, err := Parse(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := cfg.FuncByName("dispatch")
	if !ok {
		t.Fatal("dispatch not found")
	}
	var jt *Block
	for _, b := range fn.Blocks {
		if b.Purpose == PurposeJumpTable {
			jt = b
		}
	}
	if jt == nil {
		for _, b := range fn.Blocks {
			t.Logf("  %v purpose=%v", b, b.Purpose)
		}
		t.Fatal("sh3add-indexed jump table not recognized")
	}
	if len(jt.TableTargets) != 4 {
		t.Errorf("targets = %#x", jt.TableTargets)
	}
	if jt.TableStride != 8 {
		t.Errorf("stride = %d, want 8", jt.TableStride)
	}
}

// TestRVA23SliceThroughZba: the backward-slice constant resolver flows
// through sh2add using only its JSON semantics entry — no parser change.
func TestRVA23SliceThroughZba(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl f
	.type f, @function
f:
	la t0, target       # t0 = &target
	li t1, 0
	sh2add t2, t1, t0   # t2 = (0 << 2) + t0 = &target
	jalr zero, 0(t2)    # must resolve as an intra-function jump
target:
	ret
	.size f, .-f
`
	f, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := symtab.FromFile(f)
	cfg, err := Parse(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := cfg.FuncByName("f")
	if fn == nil {
		t.Fatal("f not found")
	}
	jumps := 0
	for _, b := range fn.Blocks {
		if b.Purpose == PurposeJump && b.Last().IsJALR() {
			jumps++
		}
	}
	if jumps != 1 {
		for _, b := range fn.Blocks {
			t.Logf("  %v purpose=%v last=%v", b, b.Purpose, b.Last())
		}
		t.Errorf("jalr through sh2add not resolved as jump (%d)", jumps)
	}
}

// TestRVA23CzeroParses: conditional-move-bearing code parses as plain
// straight-line arithmetic (czero is CatArith, not control flow).
func TestRVA23CzeroParses(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li t0, 1
	li t1, 2
	czero.eqz t2, t0, t1
	czero.nez t3, t0, t1
	li a0, 0
	li a7, 93
	ecall
`
	f, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := symtab.FromFile(f)
	cfg, err := Parse(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn := cfg.Funcs[0]
	if len(fn.Blocks) != 1 {
		t.Errorf("straight-line czero code split into %d blocks", len(fn.Blocks))
	}
}
