// Property-based CFG invariant tests (external test package so it can use
// internal/oracle's program generator without an import cycle). Every
// workload program and a large population of generated programs is parsed
// and checked against the structural invariants the instrumentation layers
// rely on: blocks partition the function's bytes into contiguous decoded
// instruction runs, every resolved edge lands on a block head, and every
// instrumentation point falls on an instruction boundary inside its block —
// i.e. no block spans a patched site.
package parse_test

import (
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/oracle"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

// checkCFGInvariants asserts every structural invariant on one parsed CFG.
func checkCFGInvariants(t *testing.T, cfg *parse.CFG) {
	t.Helper()
	for _, fn := range cfg.Funcs {
		checkFunctionInvariants(t, fn)
	}
	var funcs, blocks, insts int
	for _, fn := range cfg.Funcs {
		funcs++
		blocks += len(fn.Blocks)
		for _, b := range fn.Blocks {
			insts += len(b.Insts)
		}
	}
	if cfg.Stats.Functions != funcs || cfg.Stats.Blocks != blocks || cfg.Stats.Instructions != insts {
		t.Errorf("stats disagree with graph: stats {%d fn %d blk %d inst}, graph {%d %d %d}",
			cfg.Stats.Functions, cfg.Stats.Blocks, cfg.Stats.Instructions, funcs, blocks, insts)
	}
}

func checkFunctionInvariants(t *testing.T, fn *parse.Function) {
	t.Helper()

	// Invariant 1: the entry block exists and starts at the entry address.
	entry := fn.EntryBlock()
	if entry == nil {
		t.Errorf("%s: no block at entry %#x", fn.Name, fn.Entry)
		return
	}
	if entry.Start != fn.Entry {
		t.Errorf("%s: entry block starts at %#x, want %#x", fn.Name, entry.Start, fn.Entry)
	}

	// Invariant 2: blocks are sorted, non-empty, and non-overlapping — they
	// partition the function's bytes (gaps between blocks are legal: padding
	// and alignment bytes belong to no block).
	for i, b := range fn.Blocks {
		if b.Start >= b.End {
			t.Errorf("%s: empty or inverted block [%#x,%#x)", fn.Name, b.Start, b.End)
		}
		if len(b.Insts) == 0 {
			t.Errorf("%s: block %#x has no instructions", fn.Name, b.Start)
			continue
		}
		if i > 0 && fn.Blocks[i-1].End > b.Start {
			t.Errorf("%s: blocks overlap: [%#x,%#x) then [%#x,%#x)", fn.Name,
				fn.Blocks[i-1].Start, fn.Blocks[i-1].End, b.Start, b.End)
		}
		if b.Func != fn {
			t.Errorf("%s: block %#x back-pointer names %v", fn.Name, b.Start, b.Func)
		}

		// Invariant 3: the instruction run is contiguous: the first
		// instruction sits at Start, each next address is the previous
		// instruction's end, and the last instruction ends exactly at End.
		// Together with invariant 2 this is the bytes-partition property.
		at := b.Start
		for _, in := range b.Insts {
			if in.Addr != at {
				t.Errorf("%s: block %#x: instruction at %#x, expected %#x (hole or overlap)",
					fn.Name, b.Start, in.Addr, at)
				break
			}
			at = in.Next()
		}
		if at != b.End {
			t.Errorf("%s: block [%#x,%#x): instructions end at %#x", fn.Name, b.Start, b.End, at)
		}

		// Invariant 4: every resolved intraprocedural edge target is a block
		// head of this function, and In/Out edge lists agree.
		for _, e := range b.Out {
			if e.From != b {
				t.Errorf("%s: out-edge of %#x has From %v", fn.Name, b.Start, e.From)
			}
			if e.To == nil {
				continue
			}
			if e.Kind.Interprocedural() {
				continue // callee blocks live in another function
			}
			got, ok := fn.BlockAt(e.To.Start)
			if !ok || got != e.To {
				t.Errorf("%s: edge %#x->%#x (%v) targets a non-block-head",
					fn.Name, b.Start, e.To.Start, e.Kind)
			}
			found := false
			for _, in := range e.To.In {
				if in == e {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: edge %#x->%#x missing from target's In list", fn.Name, b.Start, e.To.Start)
			}
		}
	}

	// Invariant 5: no block spans a patched site — every instrumentation
	// point the snippet layer can mint falls on an instruction boundary
	// inside the block the point names, and block-entry points coincide with
	// block heads (so patching a point never splits an instruction or
	// crosses a block).
	pts := []snippet.Point{snippet.FuncEntry(fn)}
	pts = append(pts, snippet.FuncExits(fn)...)
	pts = append(pts, snippet.BlockEntries(fn)...)
	pts = append(pts, snippet.CallSites(fn)...)
	for _, pt := range pts {
		if pt.Block == nil {
			t.Errorf("%s: point %v has no block", fn.Name, pt)
			continue
		}
		if !pt.Block.Contains(pt.Addr) {
			t.Errorf("%s: point %v outside its block [%#x,%#x)", fn.Name, pt,
				pt.Block.Start, pt.Block.End)
			continue
		}
		onBoundary := false
		for _, in := range pt.Block.Insts {
			if in.Addr == pt.Addr {
				onBoundary = true
				break
			}
		}
		if !onBoundary {
			t.Errorf("%s: point %v does not fall on an instruction boundary", fn.Name, pt)
		}
		if (pt.Kind == snippet.PointBlockEntry || pt.Kind == snippet.PointFuncEntry) &&
			pt.Addr != pt.Block.Start {
			t.Errorf("%s: %v point at %#x is not its block head %#x", fn.Name,
				pt.Kind, pt.Addr, pt.Block.Start)
		}
	}
}

func parseSource(t *testing.T, src string, workers int) *parse.CFG {
	t.Helper()
	// RVA23Subset covers both plain RV64GC sources and the oracle
	// generator's bitmanip instructions.
	file, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := symtab.FromFile(file)
	if err != nil {
		t.Fatalf("symtab: %v", err)
	}
	cfg, err := parse.Parse(st, parse.Options{Workers: workers})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg
}

func TestCFGInvariantsWorkloads(t *testing.T) {
	for _, p := range workload.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				checkCFGInvariants(t, parseSource(t, p.Source, workers))
			}
		})
	}
}

// TestCFGInvariantsGenerated parses 1000 oracle-generated programs (the same
// generator the differential-execution oracle fuzzes the emulator with) and
// checks every invariant, alternating serial and parallel parsing so the
// population covers both scheduler paths.
func TestCFGInvariantsGenerated(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 60
	}
	for seed := 1; seed <= seeds; seed++ {
		src := oracle.GenerateProgram(int64(seed), 120)
		cfg := parseSource(t, src, 1+7*(seed%2))
		checkCFGInvariants(t, cfg)
		if t.Failed() {
			t.Fatalf("invariant violation at generator seed %d", seed)
		}
	}
}

// TestCFGInvariantsRandomMultiFunction runs the invariants over the random
// call-graph generator used by the pipeline benchmarks, which produces far
// more cross-function edges than the oracle's single-body programs.
func TestCFGInvariantsRandomMultiFunction(t *testing.T) {
	programs := 40
	if testing.Short() {
		programs = 6
	}
	for seed := 0; seed < programs; seed++ {
		nFuncs := 10 + seed%40
		src := workload.RandomProgram(int64(seed), nFuncs)
		cfg := parseSource(t, src, 1+7*(seed%2))
		checkCFGInvariants(t, cfg)
		if t.Failed() {
			t.Fatalf("invariant violation at random-program seed %d (%d funcs)", seed, nFuncs)
		}
	}
}

// TestParseDeterministicAcrossWorkers pins the scheduler-independence of the
// parser itself: the CFG (functions, blocks, edges, verdicts) must be
// structurally identical at every worker count.
func TestParseDeterministicAcrossWorkers(t *testing.T) {
	srcs := map[string]string{"matmul": workload.Programs()[0].Source,
		"random": workload.RandomProgram(3, 30)}
	for name, src := range srcs {
		base := cfgFingerprint(parseSource(t, src, 1))
		for _, workers := range []int{2, 4, 8} {
			got := cfgFingerprint(parseSource(t, src, workers))
			if got != base {
				t.Errorf("%s: CFG fingerprint differs at workers=%d:\n%s\nvs serial:\n%s",
					name, workers, got, base)
			}
		}
	}
}

func cfgFingerprint(cfg *parse.CFG) string {
	out := ""
	for _, fn := range cfg.Funcs {
		out += fmt.Sprintf("fn %s@%#x ret=%v\n", fn.Name, fn.Entry, fn.Returns)
		for _, b := range fn.Blocks {
			out += fmt.Sprintf("  blk [%#x,%#x) %v n=%d\n", b.Start, b.End, b.Purpose, len(b.Insts))
			for _, e := range b.Out {
				to := uint64(0)
				if e.To != nil {
					to = e.To.Start
				}
				out += fmt.Sprintf("    -> %#x/%#x %v\n", to, e.Target, e.Kind)
			}
		}
	}
	return out
}
