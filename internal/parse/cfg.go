// Package parse is the ParseAPI analog (paper Section 3.2.3): it constructs
// the control-flow graph of a binary — functions, basic blocks, edges, and
// loops — by parallel traversal parsing from known entry points, and it
// implements the RISC-V-specific disambiguation the paper describes: the
// six-rule classifier that decides whether a jal/jalr is a function return,
// a function call, an unconditional jump, a tail call, a jump-table
// dispatch, or unresolvable; the fusion of multi-instruction auipc+jalr
// sequences; backward slicing to recover indirect targets; jump-table
// analysis; and speculative gap parsing.
package parse

import (
	"fmt"
	"sort"

	"rvdyn/internal/riscv"
	"rvdyn/internal/symtab"
)

// EdgeKind labels CFG edges, following Dyninst's edge taxonomy.
type EdgeKind int

const (
	EdgeFallthrough EdgeKind = iota // sequential flow
	EdgeTaken                       // conditional branch taken
	EdgeNotTaken                    // conditional branch not taken
	EdgeDirect                      // unconditional jump
	EdgeIndirect                    // resolved indirect jump (incl. jump tables)
	EdgeCall                        // interprocedural call
	EdgeCallFT                      // post-call fallthrough (call returns here)
	EdgeTailCall                    // interprocedural jump in call position
	EdgeReturn                      // function return
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFallthrough:
		return "fallthrough"
	case EdgeTaken:
		return "taken"
	case EdgeNotTaken:
		return "not-taken"
	case EdgeDirect:
		return "direct"
	case EdgeIndirect:
		return "indirect"
	case EdgeCall:
		return "call"
	case EdgeCallFT:
		return "call-fallthrough"
	case EdgeTailCall:
		return "tail-call"
	case EdgeReturn:
		return "return"
	}
	return "unknown"
}

// Interprocedural reports whether the edge leaves the function.
func (k EdgeKind) Interprocedural() bool {
	switch k {
	case EdgeCall, EdgeTailCall, EdgeReturn:
		return true
	}
	return false
}

// BranchPurpose is the classifier's verdict on a jal/jalr instruction — the
// high-level operation the multi-use instruction represents (Section 3.2.3).
type BranchPurpose int

const (
	PurposeNone BranchPurpose = iota
	PurposeJump
	PurposeCall
	PurposeReturn
	PurposeTailCall
	PurposeJumpTable
	PurposeUnresolved
)

func (p BranchPurpose) String() string {
	switch p {
	case PurposeNone:
		return "none"
	case PurposeJump:
		return "jump"
	case PurposeCall:
		return "call"
	case PurposeReturn:
		return "return"
	case PurposeTailCall:
		return "tail-call"
	case PurposeJumpTable:
		return "jump-table"
	case PurposeUnresolved:
		return "unresolved"
	}
	return "?"
}

// Edge is one CFG edge. Interprocedural edges carry the callee entry in
// Target; To is nil for unresolved targets.
type Edge struct {
	From   *Block
	To     *Block
	Kind   EdgeKind
	Target uint64
}

// Block is one basic block.
type Block struct {
	Start uint64
	End   uint64 // exclusive
	Insts []riscv.Inst

	Func *Function
	Out  []*Edge
	In   []*Edge

	// Purpose is the classifier verdict for the block's terminating jal/jalr
	// (PurposeNone when the block ends in a branch, fallthrough, or non-CF
	// instruction).
	Purpose BranchPurpose

	// TableTargets holds the resolved jump-table targets when Purpose is
	// PurposeJumpTable, and TableBase/TableStride/TableWidth/TableCount
	// describe the table layout itself so the binary rewriter can repoint
	// slots at relocated code.
	TableTargets []uint64
	TableBase    uint64
	TableStride  uint64
	TableWidth   int
	TableCount   uint64
}

// Last returns the final instruction of the block.
func (b *Block) Last() riscv.Inst {
	return b.Insts[len(b.Insts)-1]
}

// Size returns the byte size of the block.
func (b *Block) Size() uint64 { return b.End - b.Start }

// Contains reports whether addr falls inside the block.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Start && addr < b.End }

func (b *Block) String() string {
	return fmt.Sprintf("block [%#x,%#x)", b.Start, b.End)
}

// Function is one parsed function.
type Function struct {
	Name  string
	Entry uint64

	Blocks   []*Block // sorted by start address
	blockMap map[uint64]*Block

	Loops []*Loop

	// Callees lists resolved call targets (entry addresses).
	Callees []uint64
	// Returns reports whether any block returns.
	Returns bool
	// Speculative marks functions discovered by gap parsing rather than
	// through symbols or calls.
	Speculative bool
}

// BlockAt returns the block starting at addr.
func (f *Function) BlockAt(addr uint64) (*Block, bool) {
	b, ok := f.blockMap[addr]
	return b, ok
}

// BlockContaining returns the block covering addr.
func (f *Function) BlockContaining(addr uint64) (*Block, bool) {
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start > addr })
	if i == 0 {
		return nil, false
	}
	b := f.Blocks[i-1]
	if b.Contains(addr) {
		return b, true
	}
	return nil, false
}

// Extent returns the address range spanned by the function's blocks.
func (f *Function) Extent() (lo, hi uint64) {
	if len(f.Blocks) == 0 {
		return f.Entry, f.Entry
	}
	lo = f.Blocks[0].Start
	for _, b := range f.Blocks {
		if b.End > hi {
			hi = b.End
		}
	}
	return lo, hi
}

// EntryBlock returns the block at the function entry.
func (f *Function) EntryBlock() *Block {
	b, _ := f.BlockAt(f.Entry)
	return b
}

// ExitBlocks returns blocks that leave the function (return, tail call, or
// unresolved control flow).
func (f *Function) ExitBlocks() []*Block {
	var out []*Block
	for _, b := range f.Blocks {
		switch b.Purpose {
		case PurposeReturn, PurposeTailCall, PurposeUnresolved:
			out = append(out, b)
		}
	}
	return out
}

// Gap is an unclaimed byte range inside an executable region after parsing
// (paper: traversal parsing "may leave gaps in the binary where code may be
// present but has not yet been identified").
type Gap struct {
	Addr uint64
	Size uint64
}

// CFG is the whole-binary parse result.
type CFG struct {
	Symtab *symtab.Symtab

	Funcs   []*Function // sorted by entry
	funcMap map[uint64]*Function

	Gaps []Gap

	// Stats from the parse.
	Stats Stats
}

// Stats counts classifier outcomes and parse work, exposed for tests and
// the ablation benchmarks.
type Stats struct {
	Functions    int
	Blocks       int
	Instructions int
	Calls        int
	Returns      int
	Jumps        int
	TailCalls    int
	JumpTables   int
	Unresolved   int
	GapFuncs     int
}

// FuncAt returns the function with the given entry address.
func (c *CFG) FuncAt(entry uint64) (*Function, bool) {
	f, ok := c.funcMap[entry]
	return f, ok
}

// FuncByName returns the function with the given symbol name.
func (c *CFG) FuncByName(name string) (*Function, bool) {
	for _, f := range c.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// FuncContaining returns the parsed function whose blocks cover addr.
func (c *CFG) FuncContaining(addr uint64) (*Function, bool) {
	for _, f := range c.Funcs {
		if _, ok := f.BlockContaining(addr); ok {
			return f, true
		}
	}
	return nil, false
}

func addEdge(from, to *Block, kind EdgeKind, target uint64) *Edge {
	e := &Edge{From: from, To: to, Kind: kind, Target: target}
	from.Out = append(from.Out, e)
	if to != nil {
		to.In = append(to.In, e)
	}
	return e
}
