package oracle

import (
	"fmt"
	"io"

	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
)

// The reference interpreter services the same Linux riscv64 syscall surface
// as the fast engine, with identical return values and error codes, so that
// a lockstep run only diverges on genuine execution bugs. Time is the one
// exception: the reference has no cost model, so clock reads come from
// TimeFn (wired by the lockstep runner to the fast CPU's virtual clock).
const (
	refSysClose        = 57
	refSysRead         = 63
	refSysWrite        = 64
	refSysFstat        = 80
	refSysExit         = 93
	refSysExitGroup    = 94
	refSysClockGettime = 113
	refSysGettimeofday = 169
	refSysGetpid       = 172
	refSysBrk          = 214
	refSysMmap         = 222
)

func (r *Ref) timeNanos() uint64 {
	if r.TimeFn != nil {
		return r.TimeFn()
	}
	return 0
}

func (r *Ref) syscall() (exited bool, err error) {
	num := r.X[riscv.RegA7]
	a0 := r.X[riscv.RegA0]
	a1 := r.X[riscv.RegA1]
	a2 := r.X[riscv.RegA2]
	ret := uint64(0)
	switch num {
	case refSysExit, refSysExitGroup:
		r.Exited = true
		r.ExitCode = int(int64(a0))
		return true, nil
	case refSysWrite:
		// fd routing, the EBADF case, and the 1 MiB partial-write cap all
		// mirror emu's sysWrite byte for byte.
		var w io.Writer
		switch a0 {
		case 1:
			w = r.Stdout
		case 2:
			w = r.Stderr
			if w == nil {
				w = r.Stdout
			}
		default:
			ret = refErrno(9) // EBADF
		}
		if w == nil {
			break
		}
		n := a2
		if n > 1<<20 {
			n = 1 << 20
		}
		buf := make([]byte, n)
		if e := r.mem.read(a1, buf); e != nil {
			ret = refErrno(14) // EFAULT
			break
		}
		if _, e := w.Write(buf); e != nil {
			ret = refErrno(5) // EIO
			break
		}
		ret = n
	case refSysRead:
		ret = 0 // EOF
	case refSysClose, refSysFstat:
		ret = 0
	case refSysGetpid:
		ret = 2
	case refSysBrk:
		if a0 != 0 && a0 >= r.brk && a0 < emu.MmapBase {
			r.mem.mapRange(r.brk, a0-r.brk)
			r.brk = (a0 + refPageSize - 1) &^ (refPageSize - 1)
		}
		ret = r.brk
	case refSysMmap:
		size := (a1 + refPageSize - 1) &^ (refPageSize - 1)
		if size == 0 || size > 1<<30 {
			ret = refErrno(22)
			break
		}
		if r.mmapNext+size > emu.StackTop-emu.StackSize {
			ret = refErrno(12) // ENOMEM: would collide with the stack
			break
		}
		addr := r.mmapNext
		r.mmapNext += size
		r.mem.mapRange(addr, size)
		ret = addr
	case refSysClockGettime:
		ns := r.timeNanos()
		if e := r.mem.store(a1, ns/1e9, 8); e != nil {
			ret = refErrno(14)
			break
		}
		if e := r.mem.store(a1+8, ns%1e9, 8); e != nil {
			ret = refErrno(14)
			break
		}
	case refSysGettimeofday:
		ns := r.timeNanos()
		if e := r.mem.store(a0, ns/1e9, 8); e != nil {
			ret = refErrno(14)
			break
		}
		if e := r.mem.store(a0+8, ns%1e9/1000, 8); e != nil {
			ret = refErrno(14)
			break
		}
	default:
		return false, fmt.Errorf("unimplemented syscall %d", num)
	}
	r.X[riscv.RegA0] = ret
	return false, nil
}

func refErrno(e int64) uint64 { return uint64(-e) }
