package oracle

import (
	"math"

	"rvdyn/internal/riscv"
)

// Floating-point semantics for the reference interpreter, written directly
// from the F/D chapters of the ISA manual: single-precision values are
// NaN-boxed in the upper-ones pattern, min/max canonicalise double-NaN
// inputs, and float-to-int conversions saturate and raise NV.

const (
	refCanonNaN32 = 0x7fc00000
	refCanonNaN64 = 0x7ff8000000000000
	refFlagNV     = 0x10
)

func (r *Ref) getS(reg riscv.Reg) float32 {
	v := r.F[reg&31]
	if v>>32 != 0xffffffff {
		return math.Float32frombits(refCanonNaN32)
	}
	return math.Float32frombits(uint32(v))
}

func (r *Ref) setS(reg riscv.Reg, f float32) {
	r.F[reg&31] = 0xffffffff00000000 | uint64(math.Float32bits(f))
}

func (r *Ref) getD(reg riscv.Reg) float64    { return math.Float64frombits(r.F[reg&31]) }
func (r *Ref) setD(reg riscv.Reg, f float64) { r.F[reg&31] = math.Float64bits(f) }

func (r *Ref) rounding(inst riscv.Inst) uint8 {
	if inst.RM == riscv.RMDyn {
		return uint8(r.FCSR >> 5 & 7)
	}
	return inst.RM
}

func refRound(f float64, rm uint8) float64 {
	switch rm {
	case 1:
		return math.Trunc(f)
	case 2:
		return math.Floor(f)
	case 3:
		return math.Ceil(f)
	case 4:
		return math.Round(f)
	}
	return math.RoundToEven(f)
}

func (r *Ref) toI64(f float64, rm uint8) uint64 {
	if math.IsNaN(f) {
		r.FCSR |= refFlagNV
		return math.MaxInt64
	}
	v := refRound(f, rm)
	switch {
	case v >= 0x1p63:
		r.FCSR |= refFlagNV
		return math.MaxInt64
	case v < -0x1p63:
		r.FCSR |= refFlagNV
		return 1 << 63 // MinInt64 bit pattern
	}
	return uint64(int64(v))
}

func (r *Ref) toU64(f float64, rm uint8) uint64 {
	if math.IsNaN(f) {
		r.FCSR |= refFlagNV
		return math.MaxUint64
	}
	v := refRound(f, rm)
	switch {
	case v >= 0x1p64:
		r.FCSR |= refFlagNV
		return math.MaxUint64
	case v < 0:
		r.FCSR |= refFlagNV
		return 0
	}
	return uint64(v)
}

func (r *Ref) toI32(f float64, rm uint8) uint64 {
	if math.IsNaN(f) {
		r.FCSR |= refFlagNV
		return uint64(int64(math.MaxInt32))
	}
	v := refRound(f, rm)
	switch {
	case v > math.MaxInt32:
		r.FCSR |= refFlagNV
		return uint64(int64(math.MaxInt32))
	case v < math.MinInt32:
		r.FCSR |= refFlagNV
		return 0xffffffff80000000 // MinInt32 sign-extended
	}
	return uint64(int64(int32(v)))
}

func (r *Ref) toU32(f float64, rm uint8) uint64 {
	if math.IsNaN(f) {
		r.FCSR |= refFlagNV
		return refSext32(math.MaxUint32)
	}
	v := refRound(f, rm)
	switch {
	case v > math.MaxUint32:
		r.FCSR |= refFlagNV
		return refSext32(math.MaxUint32)
	case v < 0:
		r.FCSR |= refFlagNV
		return 0
	}
	return refSext32(uint32(v))
}

func refFclass(bits uint64, expBits, fracBits uint) uint64 {
	sign := bits>>(expBits+fracBits)&1 == 1
	exp := bits >> fracBits & (1<<expBits - 1)
	frac := bits & (1<<fracBits - 1)
	switch {
	case exp == 1<<expBits-1 && frac == 0: // infinity
		if sign {
			return 1 << 0
		}
		return 1 << 7
	case exp == 1<<expBits-1: // NaN
		if frac>>(fracBits-1) == 1 {
			return 1 << 9 // quiet
		}
		return 1 << 8 // signaling
	case exp == 0 && frac == 0: // zero
		if sign {
			return 1 << 3
		}
		return 1 << 4
	case exp == 0: // subnormal
		if sign {
			return 1 << 2
		}
		return 1 << 5
	case sign:
		return 1 << 1
	}
	return 1 << 6
}

func refMin(a, b float64) float64 {
	switch {
	case math.IsNaN(a) && math.IsNaN(b):
		return math.Float64frombits(refCanonNaN64)
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return a
		}
		return b
	case b < a:
		return b
	}
	return a
}

func refMax(a, b float64) float64 {
	switch {
	case math.IsNaN(a) && math.IsNaN(b):
		return math.Float64frombits(refCanonNaN64)
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(b) {
			return a
		}
		return b
	case b > a:
		return b
	}
	return a
}

func (r *Ref) execFloat(inst riscv.Inst) (handled bool, err error) {
	rs1x := r.X[inst.Rs1&31]
	rm := r.rounding(inst)
	switch inst.Mn {
	case riscv.MnFLW:
		v, e := r.mem.load(rs1x+uint64(inst.Imm), 4)
		if e != nil {
			return true, e
		}
		r.F[inst.Rd&31] = 0xffffffff00000000 | v
	case riscv.MnFLD:
		v, e := r.mem.load(rs1x+uint64(inst.Imm), 8)
		if e != nil {
			return true, e
		}
		r.F[inst.Rd&31] = v
	case riscv.MnFSW:
		return true, r.mem.store(rs1x+uint64(inst.Imm), r.F[inst.Rs2&31]&0xffffffff, 4)
	case riscv.MnFSD:
		return true, r.mem.store(rs1x+uint64(inst.Imm), r.F[inst.Rs2&31], 8)

	case riscv.MnFADDD:
		r.setD(inst.Rd, r.getD(inst.Rs1)+r.getD(inst.Rs2))
	case riscv.MnFSUBD:
		r.setD(inst.Rd, r.getD(inst.Rs1)-r.getD(inst.Rs2))
	case riscv.MnFMULD:
		r.setD(inst.Rd, r.getD(inst.Rs1)*r.getD(inst.Rs2))
	case riscv.MnFDIVD:
		r.setD(inst.Rd, r.getD(inst.Rs1)/r.getD(inst.Rs2))
	case riscv.MnFSQRTD:
		r.setD(inst.Rd, math.Sqrt(r.getD(inst.Rs1)))
	case riscv.MnFMADDD:
		r.setD(inst.Rd, math.FMA(r.getD(inst.Rs1), r.getD(inst.Rs2), r.getD(inst.Rs3)))
	case riscv.MnFMSUBD:
		r.setD(inst.Rd, math.FMA(r.getD(inst.Rs1), r.getD(inst.Rs2), -r.getD(inst.Rs3)))
	case riscv.MnFNMSUBD:
		r.setD(inst.Rd, math.FMA(-r.getD(inst.Rs1), r.getD(inst.Rs2), r.getD(inst.Rs3)))
	case riscv.MnFNMADDD:
		r.setD(inst.Rd, -math.FMA(r.getD(inst.Rs1), r.getD(inst.Rs2), r.getD(inst.Rs3)))
	case riscv.MnFMIND:
		r.setD(inst.Rd, refMin(r.getD(inst.Rs1), r.getD(inst.Rs2)))
	case riscv.MnFMAXD:
		r.setD(inst.Rd, refMax(r.getD(inst.Rs1), r.getD(inst.Rs2)))
	case riscv.MnFSGNJD:
		r.F[inst.Rd&31] = r.F[inst.Rs1&31]&^(1<<63) | r.F[inst.Rs2&31]&(1<<63)
	case riscv.MnFSGNJND:
		r.F[inst.Rd&31] = r.F[inst.Rs1&31]&^(1<<63) | ^r.F[inst.Rs2&31]&(1<<63)
	case riscv.MnFSGNJXD:
		r.F[inst.Rd&31] = r.F[inst.Rs1&31] ^ r.F[inst.Rs2&31]&(1<<63)
	case riscv.MnFEQD:
		r.setX(inst.Rd, refB2u(r.getD(inst.Rs1) == r.getD(inst.Rs2)))
	case riscv.MnFLTD:
		r.setX(inst.Rd, refB2u(r.getD(inst.Rs1) < r.getD(inst.Rs2)))
	case riscv.MnFLED:
		r.setX(inst.Rd, refB2u(r.getD(inst.Rs1) <= r.getD(inst.Rs2)))
	case riscv.MnFCLASSD:
		r.setX(inst.Rd, refFclass(r.F[inst.Rs1&31], 11, 52))

	case riscv.MnFCVTWD:
		r.setX(inst.Rd, r.toI32(r.getD(inst.Rs1), rm))
	case riscv.MnFCVTWUD:
		r.setX(inst.Rd, r.toU32(r.getD(inst.Rs1), rm))
	case riscv.MnFCVTLD:
		r.setX(inst.Rd, r.toI64(r.getD(inst.Rs1), rm))
	case riscv.MnFCVTLUD:
		r.setX(inst.Rd, r.toU64(r.getD(inst.Rs1), rm))
	case riscv.MnFCVTDW:
		r.setD(inst.Rd, float64(int32(rs1x)))
	case riscv.MnFCVTDWU:
		r.setD(inst.Rd, float64(uint32(rs1x)))
	case riscv.MnFCVTDL:
		r.setD(inst.Rd, float64(int64(rs1x)))
	case riscv.MnFCVTDLU:
		r.setD(inst.Rd, float64(rs1x))
	case riscv.MnFCVTSD:
		r.setS(inst.Rd, float32(r.getD(inst.Rs1)))
	case riscv.MnFCVTDS:
		r.setD(inst.Rd, float64(r.getS(inst.Rs1)))
	case riscv.MnFMVXD:
		r.setX(inst.Rd, r.F[inst.Rs1&31])
	case riscv.MnFMVDX:
		r.F[inst.Rd&31] = rs1x

	case riscv.MnFADDS:
		r.setS(inst.Rd, r.getS(inst.Rs1)+r.getS(inst.Rs2))
	case riscv.MnFSUBS:
		r.setS(inst.Rd, r.getS(inst.Rs1)-r.getS(inst.Rs2))
	case riscv.MnFMULS:
		r.setS(inst.Rd, r.getS(inst.Rs1)*r.getS(inst.Rs2))
	case riscv.MnFDIVS:
		r.setS(inst.Rd, r.getS(inst.Rs1)/r.getS(inst.Rs2))
	case riscv.MnFSQRTS:
		r.setS(inst.Rd, float32(math.Sqrt(float64(r.getS(inst.Rs1)))))
	case riscv.MnFMADDS:
		r.setS(inst.Rd, float32(math.FMA(float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)), float64(r.getS(inst.Rs3)))))
	case riscv.MnFMSUBS:
		r.setS(inst.Rd, float32(math.FMA(float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)), -float64(r.getS(inst.Rs3)))))
	case riscv.MnFNMSUBS:
		r.setS(inst.Rd, float32(math.FMA(-float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)), float64(r.getS(inst.Rs3)))))
	case riscv.MnFNMADDS:
		r.setS(inst.Rd, float32(-math.FMA(float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)), float64(r.getS(inst.Rs3)))))
	case riscv.MnFMINS:
		r.setS(inst.Rd, float32(refMin(float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)))))
	case riscv.MnFMAXS:
		r.setS(inst.Rd, float32(refMax(float64(r.getS(inst.Rs1)), float64(r.getS(inst.Rs2)))))
	case riscv.MnFSGNJS:
		a, b := uint32(r.F[inst.Rs1&31]), uint32(r.F[inst.Rs2&31])
		r.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a&^(1<<31)|b&(1<<31))
	case riscv.MnFSGNJNS:
		a, b := uint32(r.F[inst.Rs1&31]), uint32(r.F[inst.Rs2&31])
		r.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a&^(1<<31)|^b&(1<<31))
	case riscv.MnFSGNJXS:
		a, b := uint32(r.F[inst.Rs1&31]), uint32(r.F[inst.Rs2&31])
		r.F[inst.Rd&31] = 0xffffffff00000000 | uint64(a^b&(1<<31))
	case riscv.MnFEQS:
		r.setX(inst.Rd, refB2u(r.getS(inst.Rs1) == r.getS(inst.Rs2)))
	case riscv.MnFLTS:
		r.setX(inst.Rd, refB2u(r.getS(inst.Rs1) < r.getS(inst.Rs2)))
	case riscv.MnFLES:
		r.setX(inst.Rd, refB2u(r.getS(inst.Rs1) <= r.getS(inst.Rs2)))
	case riscv.MnFCLASSS:
		b := r.F[inst.Rs1&31]
		if b>>32 != 0xffffffff {
			b = refCanonNaN32
		}
		r.setX(inst.Rd, refFclass(b&0xffffffff, 8, 23))

	case riscv.MnFCVTWS:
		r.setX(inst.Rd, r.toI32(float64(r.getS(inst.Rs1)), rm))
	case riscv.MnFCVTWUS:
		r.setX(inst.Rd, r.toU32(float64(r.getS(inst.Rs1)), rm))
	case riscv.MnFCVTLS:
		r.setX(inst.Rd, r.toI64(float64(r.getS(inst.Rs1)), rm))
	case riscv.MnFCVTLUS:
		r.setX(inst.Rd, r.toU64(float64(r.getS(inst.Rs1)), rm))
	case riscv.MnFCVTSW:
		r.setS(inst.Rd, float32(int32(rs1x)))
	case riscv.MnFCVTSWU:
		r.setS(inst.Rd, float32(uint32(rs1x)))
	case riscv.MnFCVTSL:
		r.setS(inst.Rd, float32(int64(rs1x)))
	case riscv.MnFCVTSLU:
		r.setS(inst.Rd, float32(rs1x))
	case riscv.MnFMVXW:
		r.setX(inst.Rd, refSext32(uint32(r.F[inst.Rs1&31])))
	case riscv.MnFMVWX:
		r.F[inst.Rd&31] = 0xffffffff00000000 | uint64(uint32(rs1x))

	default:
		return false, nil
	}
	return true, nil
}
