package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// Constrained random program generation. The emitted programs are valid
// RV64GC(+RVA23 subset) assembly with three structural guarantees that make
// them safe lockstep fodder:
//
//   - every load, store, and atomic targets the sandbox (a .data block whose
//     base lives in gp and s1) or a small window above sp, all mapped in
//     both engines — except the self-modifying loop production, whose one
//     store targets a known .text word with a known valid instruction;
//   - every branch and jump is strictly forward, except the counted-loop
//     production's single backedge, whose trip count is pinned by an
//     immediately preceding li into a counter the loop body never writes —
//     so control flow terminates structurally either way;
//   - the program ends by folding live registers into a0 and calling exit.
//
// The same seed always yields the same source text, so any divergence the
// sweep or fuzzer finds is reproducible from its seed alone.

const (
	sandboxWords = 512 // 4 KiB of random .dword payload
	sandboxReach = 2040
)

// intDests are the integer registers the generator may clobber: everything
// except zero (discard target, used deliberately now and then), gp/s1 (the
// sandbox base pointers), and sp (kept stable so sp-relative accesses stay
// inside the stack mapping and compress to the c.*sp forms).
var intDests = []string{
	"ra", "tp", "t0", "t1", "t2", "s0", "a0", "a1", "a2", "a3", "a4",
	"a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
	"s10", "s11", "t3", "t4", "t5", "t6",
}

// cRegInts is the subset of intDests encodable in compressed c-reg fields
// (x8-x15); biasing toward these exercises the C-extension decode paths.
var cRegInts = []string{"s0", "a0", "a1", "a2", "a3", "a4", "a5"}

var fpRegs = []string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// cRegFPs are the FP c-regs f8-f15, reachable by c.fld/c.fsd.
var cRegFPs = []string{"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5"}

type progGen struct {
	rng      *rand.Rand
	body     []string
	pending  []pendingLabel // open forward-branch targets
	nextLbl  int
	grouping bool
}

type pendingLabel struct {
	name      string
	countdown int // instructions until the label is placed
}

func (g *progGen) intDest() string {
	if g.rng.Intn(16) == 0 {
		return "zero"
	}
	if g.rng.Intn(3) == 0 {
		return cRegInts[g.rng.Intn(len(cRegInts))]
	}
	return intDests[g.rng.Intn(len(intDests))]
}

func (g *progGen) intSrc() string {
	if g.rng.Intn(12) == 0 {
		return "zero"
	}
	if g.rng.Intn(8) == 0 {
		return "gp" // sandbox address as an arithmetic operand
	}
	return intDests[g.rng.Intn(len(intDests))]
}

func (g *progGen) fpReg() string {
	if g.rng.Intn(3) == 0 {
		return cRegFPs[g.rng.Intn(len(cRegFPs))]
	}
	return fpRegs[g.rng.Intn(len(fpRegs))]
}

// emit appends one instruction line and retires pending branch targets.
// While grouping is set (multi-instruction sequences like address-setup +
// atomic), due labels stay pending so a forward branch can never land
// between the setup and its use.
func (g *progGen) emit(format string, args ...any) {
	g.body = append(g.body, "\t"+fmt.Sprintf(format, args...))
	for i := range g.pending {
		g.pending[i].countdown--
	}
	if !g.grouping {
		g.flushDue()
	}
}

func (g *progGen) flushDue() {
	for i := 0; i < len(g.pending); {
		if g.pending[i].countdown <= 0 {
			g.body = append(g.body, g.pending[i].name+":")
			g.pending = append(g.pending[:i], g.pending[i+1:]...)
		} else {
			i++
		}
	}
}

func (g *progGen) newLabel(skip int) string {
	name := fmt.Sprintf("L%d", g.nextLbl)
	g.nextLbl++
	g.pending = append(g.pending, pendingLabel{name: name, countdown: skip})
	return name
}

// off returns a width-aligned sandbox offset reachable from gp/s1.
func (g *progGen) off(width int) int {
	return g.rng.Intn(sandboxReach/width+1) * width
}

func (g *progGen) step() {
	switch p := g.rng.Intn(103); {
	case p < 22: // register-register ALU
		ops := []string{"add", "sub", "sll", "srl", "sra", "slt", "sltu",
			"xor", "or", "and", "addw", "subw", "sllw", "srlw", "sraw",
			"mul", "mulw", "andn", "orn", "xnor", "min", "minu", "max",
			"maxu", "sh1add", "sh2add", "sh3add", "czero.eqz", "czero.nez"}
		g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), g.intSrc())
	case p < 36: // register-immediate ALU
		switch g.rng.Intn(5) {
		case 0:
			ops := []string{"addi", "slti", "sltiu", "xori", "ori", "andi", "addiw"}
			g.emit("%s %s, %s, %d", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(),
				g.rng.Intn(4096)-2048)
		case 1:
			ops := []string{"slli", "srli", "srai"}
			g.emit("%s %s, %s, %d", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), g.rng.Intn(64))
		case 2:
			ops := []string{"slliw", "srliw", "sraiw"}
			g.emit("%s %s, %s, %d", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), g.rng.Intn(32))
		case 3:
			g.emit("lui %s, %d", g.intDest(), g.rng.Intn(1<<20))
		default:
			g.emit("li %s, %d", g.intDest(), g.rng.Int63()-g.rng.Int63())
		}
	case p < 42: // multiply/divide corner fodder
		ops := []string{"mulh", "mulhu", "mulhsu", "div", "divu", "rem",
			"remu", "divw", "divuw", "remw", "remuw"}
		g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), g.intSrc())
	case p < 54: // integer load
		type ls struct {
			mn string
			w  int
		}
		all := []ls{{"lb", 1}, {"lbu", 1}, {"lh", 2}, {"lhu", 2},
			{"lw", 4}, {"lwu", 4}, {"ld", 8}}
		op := all[g.rng.Intn(len(all))]
		base := "gp"
		if (op.mn == "lw" || op.mn == "ld") && g.rng.Intn(2) == 0 {
			base = "s1" // c-reg base: compressible with a c-reg dest
		}
		if (op.mn == "lw" || op.mn == "ld") && g.rng.Intn(6) == 0 {
			// sp-relative: exercises c.lwsp/c.ldsp against the stack mapping.
			g.emit("%s %s, %d(sp)", op.mn, g.intDest(), g.rng.Intn(504/op.w+1)*op.w)
			return
		}
		g.emit("%s %s, %d(%s)", op.mn, g.intDest(), g.off(op.w), base)
	case p < 64: // integer store
		type ls struct {
			mn string
			w  int
		}
		all := []ls{{"sb", 1}, {"sh", 2}, {"sw", 4}, {"sd", 8}}
		op := all[g.rng.Intn(len(all))]
		base := "gp"
		if (op.mn == "sw" || op.mn == "sd") && g.rng.Intn(2) == 0 {
			base = "s1"
		}
		if (op.mn == "sw" || op.mn == "sd") && g.rng.Intn(6) == 0 {
			g.emit("%s %s, %d(sp)", op.mn, g.intSrc(), g.rng.Intn(504/op.w+1)*op.w)
			return
		}
		g.emit("%s %s, %d(%s)", op.mn, g.intSrc(), g.off(op.w), base)
	case p < 72: // FP load/store (c.fld/c.fsd/c.fldsp/c.fsdsp candidates)
		switch g.rng.Intn(6) {
		case 0:
			g.emit("fld %s, %d(s1)", g.fpReg(), g.off(8))
		case 1:
			g.emit("fsd %s, %d(s1)", g.fpReg(), g.off(8))
		case 2:
			g.emit("fld %s, %d(sp)", g.fpReg(), g.rng.Intn(64)*8)
		case 3:
			g.emit("fsd %s, %d(sp)", g.fpReg(), g.rng.Intn(64)*8)
		case 4:
			g.emit("flw %s, %d(gp)", g.fpReg(), g.off(4))
		default:
			g.emit("fsw %s, %d(gp)", g.fpReg(), g.off(4))
		}
	case p < 82: // FP compute
		switch g.rng.Intn(8) {
		case 0:
			ops := []string{"fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fmin.d",
				"fmax.d", "fsgnj.d", "fsgnjn.d", "fsgnjx.d"}
			g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.fpReg(), g.fpReg(), g.fpReg())
		case 1:
			ops := []string{"fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s", "fsgnj.s"}
			g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.fpReg(), g.fpReg(), g.fpReg())
		case 2:
			ops := []string{"fmadd.d", "fmsub.d", "fnmadd.d", "fnmsub.d"}
			g.emit("%s %s, %s, %s, %s", ops[g.rng.Intn(len(ops))], g.fpReg(), g.fpReg(),
				g.fpReg(), g.fpReg())
		case 3:
			ops := []string{"feq.d", "flt.d", "fle.d", "feq.s", "flt.s", "fle.s"}
			g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.intDest(), g.fpReg(), g.fpReg())
		case 4:
			rms := []string{"", ", rne", ", rtz", ", rdn", ", rup", ", rmm"}
			cvt := []string{"fcvt.l.d", "fcvt.lu.d", "fcvt.w.d", "fcvt.wu.d"}
			g.emit("%s %s, %s%s", cvt[g.rng.Intn(len(cvt))], g.intDest(), g.fpReg(),
				rms[g.rng.Intn(len(rms))])
		case 5:
			cvt := []string{"fcvt.d.l", "fcvt.d.lu", "fcvt.d.w", "fcvt.d.wu"}
			g.emit("%s %s, %s", cvt[g.rng.Intn(len(cvt))], g.fpReg(), g.intSrc())
		case 6:
			switch g.rng.Intn(4) {
			case 0:
				g.emit("fmv.x.d %s, %s", g.intDest(), g.fpReg())
			case 1:
				g.emit("fmv.d.x %s, %s", g.fpReg(), g.intSrc())
			case 2:
				g.emit("fclass.d %s, %s", g.intDest(), g.fpReg())
			default:
				g.emit("fcvt.d.s %s, %s", g.fpReg(), g.fpReg())
			}
		default:
			g.emit("fsqrt.d %s, %s", g.fpReg(), g.fpReg())
		}
	case p < 88: // atomics: compute an aligned sandbox address, then operate
		g.grouping = true
		defer func() { g.grouping = false; g.flushDue() }()
		tmp := intDests[g.rng.Intn(len(intDests))]
		g.emit("addi %s, gp, %d", tmp, g.off(8))
		switch g.rng.Intn(4) {
		case 0:
			ops := []string{"amoswap.w", "amoadd.w", "amoxor.w", "amoand.w",
				"amoor.w", "amomin.w", "amomax.w", "amominu.w", "amomaxu.w"}
			g.emit("%s %s, %s, (%s)", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), tmp)
		case 1:
			ops := []string{"amoswap.d", "amoadd.d", "amoxor.d", "amoand.d",
				"amoor.d", "amomin.d", "amomax.d", "amominu.d", "amomaxu.d"}
			g.emit("%s %s, %s, (%s)", ops[g.rng.Intn(len(ops))], g.intDest(), g.intSrc(), tmp)
		case 2:
			g.emit("lr.w %s, (%s)", g.intDest(), tmp)
			g.emit("sc.w %s, %s, (%s)", g.intDest(), g.intSrc(), tmp)
		default:
			g.emit("lr.d %s, (%s)", g.intDest(), tmp)
			g.emit("sc.d %s, %s, (%s)", g.intDest(), g.intSrc(), tmp)
		}
	case p < 92: // CSR reads (fflags via Zicsr; counters via the wired hooks)
		switch g.rng.Intn(3) {
		case 0:
			g.emit("csrrs %s, fflags, zero", g.intDest())
		case 1:
			g.emit("csrrs %s, instret, zero", g.intDest())
		default:
			g.emit("csrrs %s, cycle, zero", g.intDest())
		}
	case p < 94: // back-to-back fusable pairs (macro-op fusion candidates)
		// Emitted under grouping so a forward-branch label can never land
		// between the constituents — the pair reaches the block builder
		// adjacent, the shape the emulator's fusion pass looks for.
		g.grouping = true
		defer func() { g.grouping = false; g.flushDue() }()
		switch g.rng.Intn(4) {
		case 0: // lui rd, hi ; addi rd2, rd, lo
			d := intDests[g.rng.Intn(len(intDests))]
			g.emit("lui %s, %d", d, g.rng.Intn(1<<20))
			g.emit("addi %s, %s, %d", g.intDest(), d, g.rng.Intn(4096)-2048)
		case 1: // slli rd, rs, sh ; add rd2, rd, other
			d := intDests[g.rng.Intn(len(intDests))]
			g.emit("slli %s, %s, %d", d, g.intSrc(), g.rng.Intn(64))
			g.emit("add %s, %s, %s", g.intDest(), d, g.intSrc())
		case 2: // load-pair at off/off+8(gp)
			off := g.rng.Intn(sandboxReach/8) * 8
			g.emit("ld %s, %d(gp)", g.intDest(), off)
			g.emit("ld %s, %d(gp)", g.intDest(), off+8)
		default: // store-pair at off/off+8(gp)
			off := g.rng.Intn(sandboxReach/8) * 8
			g.emit("sd %s, %d(gp)", g.intSrc(), off)
			g.emit("sd %s, %d(gp)", g.intSrc(), off+8)
		}
	case p < 95:
		g.emit("fence")
	case p < 97: // indirect forward jump (inline-lookup fodder for the DBI)
		// la + jalr through a materialized forward label, grouped so the
		// label can never land between the address setup and the jump. The
		// link register alternates between discarded and ra — the shapes a
		// translator's indirect-branch path must both preserve.
		skip := 1 + g.rng.Intn(6)
		g.grouping = true
		defer func() { g.grouping = false; g.flushDue() }()
		d := intDests[g.rng.Intn(len(intDests))]
		lbl := g.newLabel(skip + 2) // +2: la and jalr themselves
		links := []string{"zero", "ra"}
		g.emit("la %s, %s", d, lbl)
		g.emit("jalr %s, 0(%s)", links[g.rng.Intn(2)], d)
	case p < 100: // forward control flow
		skip := 1 + g.rng.Intn(6)
		if g.rng.Intn(4) == 0 {
			// Fused compare+branch shape: slt rd, a, b ; bne rd, zero, L.
			// Grouped so the pair stays adjacent for the fused terminator.
			g.grouping = true
			defer func() { g.grouping = false; g.flushDue() }()
			d := intDests[g.rng.Intn(len(intDests))]
			cmp := []string{"slt", "sltu"}
			br := []string{"bne", "beq"}
			g.emit("%s %s, %s, %s", cmp[g.rng.Intn(2)], d, g.intSrc(), g.intSrc())
			g.emit("%s %s, zero, %s", br[g.rng.Intn(2)], d, g.newLabel(skip))
			return
		}
		if g.rng.Intn(5) == 0 {
			g.emit("jal %s, %s", g.intDest(), g.newLabel(skip))
			return
		}
		ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
		g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.intSrc(), g.intSrc(),
			g.newLabel(skip))
	default: // bounded backward loop — the generator's only backedges
		// A counted loop whose trip count exceeds the emulator's
		// chain-hotness threshold, so full-run engines promote the body
		// through superblock → chained → compiled-trace dispatch while the
		// stepping lockstep stays per-instruction. Termination is
		// structural: t6 is initialized right before the backedge block and
		// the body writes only loopSafe registers, never the counter. The
		// whole loop is emitted under grouping, so no pending forward label
		// can land inside it and jump past the counter init.
		g.grouping = true
		defer func() { g.grouping = false; g.flushDue() }()
		smc := g.rng.Intn(3) == 0
		k := 80 + g.rng.Intn(71)
		if smc {
			// The self-modifying variant needs the loop hot (and therefore
			// trace-compiled) before the code store lands, so it runs
			// longer and triggers near the end of the countdown.
			k = 160 + g.rng.Intn(60)
		}
		lbl := fmt.Sprintf("LB%d", g.nextLbl)
		g.nextLbl++
		var victim string
		if smc {
			// Self-modifying variant: one iteration — selected branchlessly,
			// so the store sits on the trace's predicted path — redirects
			// the every-iteration sandbox store onto the `xor t5, t5, t5`
			// word below, rewriting it to `addi t5, zero, 1` while the
			// loop's compiled trace is live. The engine must retire the
			// prefix including the store, sever the trace, and re-decode:
			// a stale cached copy computes t5 = 0 where the rewritten
			// stream computes 1, and the exit fold diverges. (xor on
			// t5 = x30 has no compressed form, so the victim is a full
			// 4-byte parcel; t3/t4/s6 are loop-invariant and the body
			// writes only loopSafe registers, so the select stays intact.)
			w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnADDI,
				Rd: riscv.X30, Rs1: riscv.X0, Imm: 1})
			victim = fmt.Sprintf("LV%d", g.nextLbl)
			g.nextLbl++
			g.emit("li t3, %d", 8+g.rng.Intn(8)) // countdown value that hits code
			g.emit("la t4, %s", victim)
			g.emit("xor t4, t4, gp") // t4 = victim ^ sandbox base
			g.emit("li s6, %d", int64(w))
		}
		g.emit("li t6, %d", k)
		g.body = append(g.body, lbl+":")
		if smc {
			g.emit("xor t5, t6, t3")
			g.emit("sltu t5, zero, t5")
			g.emit("addi t5, t5, -1") // all-ones iff t6 == trigger
			g.emit("and t5, t5, t4")
			g.emit("xor t5, t5, gp") // victim iff t6 == trigger, else sandbox
			g.emit("sw s6, 0(t5)")
			g.body = append(g.body, victim+":")
			g.emit("xor t5, t5, t5")
		}
		for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
			d := loopSafe[g.rng.Intn(len(loopSafe))]
			switch g.rng.Intn(5) {
			case 0:
				ops := []string{"add", "xor", "sltu", "mul", "and"}
				g.emit("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], d, g.intSrc(), g.intSrc())
			case 1:
				g.emit("addi %s, %s, %d", d, g.intSrc(), g.rng.Intn(4096)-2048)
			case 2:
				g.emit("ld %s, %d(gp)", d, g.off(8))
			case 3:
				g.emit("fld %s, %d(s1)", g.fpReg(), g.off(8))
			default:
				g.emit("sd %s, %d(gp)", d, g.off(8))
			}
		}
		g.emit("addi t6, t6, -1")
		g.emit("bne t6, zero, %s", lbl)
	}
}

// loopSafe is the register palette a counted loop's body may write: the
// counter (t6), the SMC scratch/victim registers (t3-t5), and the pinned
// bases (gp, s1, sp) are excluded, so a loop can never change its own trip
// count or rewrite anything but the designated victim word.
var loopSafe = []string{"t0", "t1", "t2", "a0", "a1", "a2", "a3", "a4", "a5", "s2", "s3", "s4", "s5"}

// GenerateProgram returns the assembly source of a random-but-valid program
// of roughly n body instructions, deterministic in seed.
func GenerateProgram(seed int64, n int) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	var b strings.Builder
	b.WriteString("\t.text\n\t.globl _start\n_start:\n")
	b.WriteString("\tla gp, sandbox\n")
	b.WriteString("\tla s1, sandbox\n")
	// Seed the register files: integers from the RNG, floats from the
	// sandbox payload (arbitrary bit patterns, NaNs included).
	for _, reg := range intDests {
		g.emit("li %s, %d", reg, int64(g.rng.Uint64()))
	}
	for i, reg := range fpRegs {
		g.emit("fld %s, %d(gp)", reg, (i*8)%(sandboxReach+8))
	}
	for i := 0; i < n; i++ {
		g.step()
	}
	// Retire any still-open forward labels.
	for _, p := range g.pending {
		g.body = append(g.body, p.name+":")
	}
	g.pending = nil
	// Fold register state into a deterministic exit code.
	g.emit("xor a0, a0, a1")
	g.emit("xor a0, a0, t0")
	g.emit("xor a0, a0, s2")
	g.emit("andi a0, a0, 63")
	g.emit("li a7, 93")
	g.emit("ecall")
	for _, line := range g.body {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString("\n\t.data\n\t.balign 8\nsandbox:\n")
	for i := 0; i < sandboxWords; i++ {
		fmt.Fprintf(&b, "\t.dword %d\n", int64(g.rng.Uint64()))
	}
	return b.String()
}

// BuildProgram assembles the seed's program into an ELF image ready for the
// lockstep runner.
func BuildProgram(seed int64, n int) (*elfrv.File, error) {
	src := GenerateProgram(seed, n)
	f, err := asm.Assemble(src, asm.Options{Arch: riscv.RVA23Subset})
	if err != nil {
		return nil, fmt.Errorf("oracle: seed %d does not assemble: %w", seed, err)
	}
	return f, nil
}

// LockstepSeed generates, assembles, and lockstep-runs one seed.
func LockstepSeed(seed int64, n int) (*LockstepResult, *Divergence, error) {
	f, err := BuildProgram(seed, n)
	if err != nil {
		return nil, nil, err
	}
	res, div, err := RunLockstep(f, 0)
	if div != nil {
		div.Seed = seed
	}
	return res, div, err
}
