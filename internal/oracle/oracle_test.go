package oracle

import (
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/workload"
)

// TestOracleSweep is the headline differential test: run generated programs
// on both engines in lockstep until at least 10,000 instructions have been
// compared, demanding zero divergences. Every program must stop cleanly
// (exit or hit the instruction budget) — a trap would mean the generator
// produced an unsound program.
func TestOracleSweep(t *testing.T) {
	const wantSteps = 12_000
	bodyLen := 300
	if testing.Short() {
		bodyLen = 150
	}
	var total uint64
	exits := 0
	seeds := 0
	for seed := int64(1); total < wantSteps; seed++ {
		if seed > 500 {
			t.Fatalf("needed more than 500 seeds to reach %d steps (got %d)", wantSteps, total)
		}
		res, div, err := LockstepSeed(seed, bodyLen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil {
			t.Fatalf("seed %d diverged:\n%v", seed, div)
		}
		if res.Stop == "trap" {
			t.Fatalf("seed %d: generated program trapped after %d steps", seed, res.Steps)
		}
		total += res.Steps
		seeds++
		if res.Stop == "exit" {
			exits++
		}
	}
	t.Logf("lockstep: %d instructions across %d seeds, %d clean exits, 0 divergences",
		total, seeds, exits)
}

// TestLockstepWorkloads runs every hand-written workload binary in lockstep:
// real structured programs (calls, loops, jump tables, FP arithmetic) rather
// than generator soup.
func TestLockstepWorkloads(t *testing.T) {
	for _, p := range workload.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f, err := asm.Assemble(p.Source, asm.Options{})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			res, div, err := RunLockstep(f, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Fatalf("divergence:\n%v", div)
			}
			if res.Stop != "exit" {
				t.Fatalf("stop = %q after %d steps, want exit", res.Stop, res.Steps)
			}
			if res.ExitCode != p.ExitCode {
				t.Fatalf("exit code = %d, want %d", res.ExitCode, p.ExitCode)
			}
		})
	}
}

// TestGeneratorDeterministic: the same seed must yield byte-identical
// programs (replay depends on it), and different seeds must differ.
func TestGeneratorDeterministic(t *testing.T) {
	a := GenerateProgram(42, 200)
	b := GenerateProgram(42, 200)
	if a != b {
		t.Fatal("GenerateProgram(42, 200) is not deterministic")
	}
	if c := GenerateProgram(43, 200); c == a {
		t.Fatal("seeds 42 and 43 generated identical programs")
	}
	if !strings.Contains(a, "ecall") {
		t.Fatal("generated program has no ecall terminator")
	}
}

// TestDivergenceReport checks the report format carries everything needed to
// reproduce and localise a mismatch: seed, step, PC, disassembly, the field
// name, both values, and recent history.
func TestDivergenceReport(t *testing.T) {
	d := &Divergence{
		Seed:   7,
		Step:   123,
		PC:     0x104a2,
		Disasm: "add a0, a1, a2",
		Field:  "x10/a0",
		Fast:   0xdead,
		Ref:    0xbeef,
		History: []string{
			"0x1049e: li a1, 1",
			"0x104a2: add a0, a1, a2",
		},
	}
	msg := d.Error()
	for _, want := range []string{
		"step 123", "pc=0x104a2", "add a0, a1, a2", "x10/a0",
		"0xdead", "0xbeef", "seed:  7", "-seed 7", "recent:", "li a1, 1",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
	// Non-generated programs have no seed to replay.
	d.Seed = -1
	if strings.Contains(d.Error(), "reproduce") {
		t.Error("seedless report should not carry a replay hint")
	}
}
