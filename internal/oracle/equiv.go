package oracle

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/snippet"
)

// Instrumentation equivalence: the paper's implicit correctness contract is
// that inserting a snippet changes nothing about the program except the
// snippet's own effect. With the identity snippet (zero instructions) the
// effect is empty, so the original and the rewritten binary must be
// observationally indistinguishable — same exit code, same output, same
// syscall trace, same final contents of the program's own writable memory.
// Everything the rewriter does (relocation, entry patching, jump-table
// repointing) is on trial; the virtual clock is pinned so that the only
// legitimate difference between the runs, timing, is neutralised.

// SyscallRecord is one serviced syscall in an observed run.
type SyscallRecord struct {
	Num, A0, A1, A2, Ret uint64
}

// Observation captures everything externally visible about one run.
type Observation struct {
	ExitCode int
	Stdout   []byte
	Trace    []SyscallRecord
	MemHash  [sha256.Size]byte // hash of the watched sections' final bytes
	Steps    uint64
}

// pinnedClock is the fixed virtual time both equivalence runs observe.
const pinnedClock = 1_000_000_007

// Observe runs f to completion under a pinned virtual clock, hashing the
// final contents of the watch sections (address ranges from the *original*
// binary, so original and instrumented runs hash the same region).
func Observe(f *elfrv.File, watch []*elfrv.Section, maxInst uint64) (*Observation, error) {
	cpu, err := emu.New(f, nil)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	obs := &Observation{}
	cpu.Stdout = &out
	cpu.TimeFn = func() uint64 { return pinnedClock }
	cpu.SyscallTrace = func(num, a0, a1, a2, ret uint64) {
		obs.Trace = append(obs.Trace, SyscallRecord{num, a0, a1, a2, ret})
	}
	if maxInst == 0 {
		maxInst = 1 << 26
	}
	if stop := cpu.Run(maxInst); stop != emu.StopExit {
		return nil, fmt.Errorf("oracle: run stopped with %v (%v)", stop, cpu.LastTrap())
	}
	h := sha256.New()
	for _, s := range watch {
		b, err := cpu.ReadMem(s.Addr, int(s.Size()))
		if err != nil {
			return nil, fmt.Errorf("oracle: hashing %s: %w", s.Name, err)
		}
		h.Write(b)
	}
	copy(obs.MemHash[:], h.Sum(nil))
	obs.ExitCode = cpu.ExitCode
	obs.Stdout = out.Bytes()
	obs.Steps = cpu.Instret
	return obs, nil
}

// WritableSections returns f's writable alloc sections — the program's own
// mutable memory, excluding anything the rewriter appends (.dyninst.*).
func WritableSections(f *elfrv.File) []*elfrv.Section {
	var out []*elfrv.Section
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc != 0 && s.Flags&elfrv.SHFWrite != 0 && s.Size() > 0 {
			out = append(out, s)
		}
	}
	return out
}

// EquivReport summarises a passing equivalence check.
type EquivReport struct {
	Funcs      []string
	Points     int // instrumentation points inserted
	ExitCode   int
	OrigSteps  uint64
	InstrSteps uint64
}

// CheckEquivalence rewrites f with the identity snippet at the entry and
// every basic block of the named functions, runs both binaries, and returns
// an error describing the first observable difference (nil report) or a
// passing report (nil error).
func CheckEquivalence(f *elfrv.File, funcs []string, mode codegen.Mode) (*EquivReport, error) {
	bin, err := core.FromFile(f)
	if err != nil {
		return nil, fmt.Errorf("oracle: analyze: %w", err)
	}
	m := bin.NewMutator(mode)
	points := 0
	for _, name := range funcs {
		fn, err := bin.FindFunction(name)
		if err != nil {
			return nil, err
		}
		if err := m.AtFuncEntry(fn, snippet.Empty()); err != nil {
			return nil, fmt.Errorf("oracle: instrument %s entry: %w", name, err)
		}
		points++
		if err := m.AtBlockEntries(fn, snippet.Empty()); err != nil {
			return nil, fmt.Errorf("oracle: instrument %s blocks: %w", name, err)
		}
		points += len(fn.Blocks)
	}
	instrumented, err := m.Rewrite()
	if err != nil {
		return nil, fmt.Errorf("oracle: rewrite: %w", err)
	}
	watch := WritableSections(f)
	orig, err := Observe(f, watch, 0)
	if err != nil {
		return nil, fmt.Errorf("oracle: original run: %w", err)
	}
	instr, err := Observe(instrumented, watch, 0)
	if err != nil {
		return nil, fmt.Errorf("oracle: instrumented run: %w", err)
	}
	if err := compareObservations(orig, instr); err != nil {
		return nil, err
	}
	return &EquivReport{
		Funcs:      funcs,
		Points:     points,
		ExitCode:   orig.ExitCode,
		OrigSteps:  orig.Steps,
		InstrSteps: instr.Steps,
	}, nil
}

func compareObservations(orig, instr *Observation) error {
	if orig.ExitCode != instr.ExitCode {
		return fmt.Errorf("oracle: exit code diverged: original %d, instrumented %d",
			orig.ExitCode, instr.ExitCode)
	}
	if !bytes.Equal(orig.Stdout, instr.Stdout) {
		return fmt.Errorf("oracle: stdout diverged: original %q, instrumented %q",
			orig.Stdout, instr.Stdout)
	}
	if len(orig.Trace) != len(instr.Trace) {
		return fmt.Errorf("oracle: syscall trace length diverged: original %d, instrumented %d",
			len(orig.Trace), len(instr.Trace))
	}
	for i := range orig.Trace {
		if orig.Trace[i] != instr.Trace[i] {
			return fmt.Errorf("oracle: syscall %d diverged: original %+v, instrumented %+v",
				i, orig.Trace[i], instr.Trace[i])
		}
	}
	if orig.MemHash != instr.MemHash {
		return fmt.Errorf("oracle: final memory hash diverged: original %x, instrumented %x",
			orig.MemHash[:8], instr.MemHash[:8])
	}
	return nil
}
