package oracle

import (
	"testing"

	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
)

// TestGeneratorEmitsFusablePairs closes the loop between the generator's
// fused-pair band and the emulator's macro-op fusion pass: across a handful
// of seeds, generated programs must make every arithmetic/memory fuse kind
// actually fire in the block builder. (The grouping flag keeps forward-branch
// labels from splitting the pairs; if that regresses, the pairs stop being
// adjacent and these counters go quiet.)
func TestGeneratorEmitsFusablePairs(t *testing.T) {
	kinds := []string{
		"emu.fuse.lui_addi", "emu.fuse.slli_add",
		"emu.fuse.ld_pair", "emu.fuse.sd_pair", "emu.fuse.cmp_branch",
	}
	reg := obs.NewRegistry()
	for seed := int64(1); seed <= 30; seed++ {
		f, err := BuildProgram(seed, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c.Obs = emu.NewMetrics(reg)
		c.Run(1 << 20)
	}
	for _, k := range kinds {
		if reg.Counter(k).Load() == 0 {
			t.Errorf("%s never fired across 30 generated programs", k)
		}
	}
}
