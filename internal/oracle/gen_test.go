package oracle

import (
	"testing"

	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
)

// TestGeneratorEmitsFusablePairs closes the loop between the generator's
// fused-pair band and the emulator's macro-op fusion pass: across a handful
// of seeds, generated programs must make every arithmetic/memory fuse kind
// actually fire in the block builder. (The grouping flag keeps forward-branch
// labels from splitting the pairs; if that regresses, the pairs stop being
// adjacent and these counters go quiet.)
func TestGeneratorEmitsFusablePairs(t *testing.T) {
	kinds := []string{
		"emu.fuse.lui_addi", "emu.fuse.slli_add",
		"emu.fuse.ld_pair", "emu.fuse.sd_pair", "emu.fuse.cmp_branch",
	}
	reg := obs.NewRegistry()
	for seed := int64(1); seed <= 30; seed++ {
		f, err := BuildProgram(seed, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c.Obs = emu.NewMetrics(reg)
		c.Run(1 << 20)
	}
	for _, k := range kinds {
		if reg.Counter(k).Load() == 0 {
			t.Errorf("%s never fired across 30 generated programs", k)
		}
	}
}

// TestGeneratorEmitsTraces closes the same loop one tier up: the counted
// backward-loop production must run long enough for full-run dispatch to
// compile traces, the self-modifying variant must sever a live trace
// mid-iteration, and the trace-compiled run must stay architecturally
// identical to the re-decoding reference interpreter — final registers,
// retirement count, and exit code. (The stepping lockstep can never catch a
// trace bug, because Run(1) dispatches per-instruction; this full-run
// differential is where the trace tier meets the oracle.)
func TestGeneratorEmitsTraces(t *testing.T) {
	reg := obs.NewRegistry()
	for seed := int64(1); seed <= 12; seed++ {
		f, err := BuildProgram(seed, 200)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cpu, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cpu.Obs = emu.NewMetrics(reg)
		// The reference has no cost model, so its cycle CSR reads 0; pin the
		// emulator's to match. instret needs no pinning — both engines count
		// architectural retirement and agree at every read site.
		cpu.CounterFn = func(csr uint16) uint64 {
			if csr == 0xC02 {
				return cpu.Instret
			}
			return 0
		}
		if stop := cpu.Run(1 << 22); stop != emu.StopExit {
			t.Fatalf("seed %d: fast engine stopped with %v (%v)", seed, stop, cpu.LastTrap())
		}
		ref, err := NewRef(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < 1<<22 && !ref.Exited; i++ {
			if _, err := ref.Step(); err != nil {
				t.Fatalf("seed %d: reference trapped: %v", seed, err)
			}
		}
		if !ref.Exited {
			t.Fatalf("seed %d: reference did not exit", seed)
		}
		if int(cpu.ExitCode) != ref.ExitCode {
			t.Errorf("seed %d: exit %d (traced) vs %d (reference)", seed, cpu.ExitCode, ref.ExitCode)
		}
		if cpu.Instret != ref.Instret {
			t.Errorf("seed %d: instret %d (traced) vs %d (reference)", seed, cpu.Instret, ref.Instret)
		}
		for i := 1; i < 32; i++ {
			if cpu.X[i] != ref.X[i] {
				t.Errorf("seed %d: x%d = %#x (traced) vs %#x (reference)", seed, i, cpu.X[i], ref.X[i])
			}
		}
	}
	for _, k := range []string{"emu.trace.builds", "emu.trace.passes", "emu.trace.severs"} {
		if reg.Counter(k).Load() == 0 {
			t.Errorf("%s never fired across the generated loop programs", k)
		}
	}
}
