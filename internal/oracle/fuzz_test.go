package oracle

import "testing"

// FuzzLockstep feeds generator seeds through the differential oracle. The
// fuzzer mutates (seed, length) pairs; every pair must assemble, run on both
// engines without divergence, and stop cleanly. The committed corpus under
// testdata/fuzz/FuzzLockstep also runs as ordinary sub-tests of `go test`.
func FuzzLockstep(f *testing.F) {
	f.Add(int64(1), uint16(150))
	f.Add(int64(2), uint16(300))
	f.Add(int64(77), uint16(60))
	f.Add(int64(123456789), uint16(220))
	f.Add(int64(-1), uint16(100))
	// Length 300 of seed 1 includes a counted loop whose self-modifying
	// store rewrites a live instruction mid-iteration (the shape that severs
	// a compiled trace under full-run dispatch; see seed-smc-trace in the
	// committed corpus).
	f.Add(int64(1), uint16(280))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		// Clamp the body length: long enough to hit every generator
		// production, short enough to keep the fuzzing loop fast.
		length := int(n)%400 + 20
		res, div, err := LockstepSeed(seed, length)
		if err != nil {
			t.Fatalf("seed %d len %d: %v", seed, length, err)
		}
		if div != nil {
			t.Fatalf("seed %d len %d diverged:\n%v", seed, length, div)
		}
		if res.Stop == "trap" {
			t.Fatalf("seed %d len %d: generated program trapped after %d steps",
				seed, length, res.Steps)
		}
	})
}
