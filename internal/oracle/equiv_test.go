package oracle

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/workload"
)

// TestInstrumentationEquivalence rewrites every workload with the identity
// snippet at each listed function's entry and at every basic block, then
// demands the instrumented binary be observationally identical to the
// original: exit code, stdout, syscall trace, and the final contents of the
// program's own writable memory.
func TestInstrumentationEquivalence(t *testing.T) {
	for _, p := range workload.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f, err := asm.Assemble(p.Source, asm.Options{})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep, err := CheckEquivalence(f, p.Funcs, codegen.ModeDeadRegister)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ExitCode != p.ExitCode {
				t.Fatalf("exit code = %d, want %d", rep.ExitCode, p.ExitCode)
			}
			if rep.Points < 2 {
				t.Fatalf("only %d instrumentation points inserted — check is vacuous", rep.Points)
			}
			t.Logf("points=%d exit=%d orig=%d instr=%d steps",
				rep.Points, rep.ExitCode, rep.OrigSteps, rep.InstrSteps)
		})
	}
}

// TestInstrumentationEquivalenceSpillMode repeats the check under the
// always-spill code generator, which emits a different (larger) trampoline
// shape around each point.
func TestInstrumentationEquivalenceSpillMode(t *testing.T) {
	for _, p := range workload.Programs() {
		if p.Name != "matmul" && p.Name != "fib" && p.Name != "jumptable" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f, err := asm.Assemble(p.Source, asm.Options{})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep, err := CheckEquivalence(f, p.Funcs, codegen.ModeSpillAlways)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ExitCode != p.ExitCode {
				t.Fatalf("exit code = %d, want %d", rep.ExitCode, p.ExitCode)
			}
		})
	}
}
