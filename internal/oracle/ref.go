// Package oracle is rvdyn's differential-testing subsystem. The fast
// emulator (internal/emu) carries a decode cache and cost-model fast paths,
// which makes it a poor witness for its own correctness: a shared bug in
// encode+decode, or a stale cache entry after patching, is invisible to any
// test that only consults the fast engine. This package supplies the second
// opinion:
//
//   - Ref, a deliberately simple, cache-free reference interpreter for
//     RV64GC that shares only internal/riscv decoding with the fast CPU;
//   - RunLockstep, which executes one binary on both engines and compares
//     architectural state after every instruction;
//   - GenerateProgram, a constrained random program generator feeding the
//     seeded sweep and the FuzzLockstep fuzz target;
//   - CheckEquivalence, which rewrites a workload with an identity snippet
//     and asserts the instrumented binary is observationally equivalent to
//     the original (exit code, output, syscall trace, final memory).
package oracle

import (
	"fmt"
	"io"
	"math"
	"math/big"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
)

// Ref is the reference interpreter: one RV64GC hart plus minimal process
// state. Every step fetches from memory and decodes afresh — no instruction
// cache, no cost model, no fast paths. Semantics are written directly from
// the ISA manual (M-extension high products go through math/big) so that
// agreement with the fast engine is evidence, not tautology.
type Ref struct {
	X  [32]uint64
	F  [32]uint64
	PC uint64

	FCSR uint32

	Exited   bool
	ExitCode int
	Instret  uint64

	Stdout io.Writer
	// Stderr receives fd-2 writes; when nil they fall back to Stdout,
	// mirroring the fast engine's routing exactly.
	Stderr io.Writer

	// TimeFn supplies the virtual clock for clock_gettime/gettimeofday and
	// the time CSR; CycleFn supplies the cycle CSR. The reference engine has
	// no cost model of its own, so both counters are environment inputs —
	// the lockstep runner wires them to the fast CPU's counters, and the
	// equivalence oracle pins them to a fixed clock. When nil they read 0.
	TimeFn  func() uint64
	CycleFn func() uint64

	mem      refMem
	resValid bool
	resAddr  uint64
	brk      uint64
	mmapNext uint64
}

// StepResult says how a Step ended.
type StepResult int

const (
	StepOK         StepResult = iota
	StepExited                // the program called exit/exit_group
	StepBreakpoint            // PC sits on an ebreak (not executed)
)

const refPageSize = 4096

// refMem is a flat paged store with no lookup cache — byte loops only.
type refMem struct {
	pages map[uint64]*[refPageSize]byte
}

func (m *refMem) page(addr uint64, create bool) *[refPageSize]byte {
	idx := addr / refPageSize
	p := m.pages[idx]
	if p == nil && create {
		p = new([refPageSize]byte)
		m.pages[idx] = p
	}
	return p
}

func (m *refMem) mapRange(addr, size uint64) {
	for a := addr - addr%refPageSize; a < addr+size; a += refPageSize {
		m.page(a, true)
	}
}

func (m *refMem) read(addr uint64, dst []byte) error {
	for i := range dst {
		p := m.page(addr+uint64(i), false)
		if p == nil {
			return fmt.Errorf("oracle: ref read fault at %#x", addr+uint64(i))
		}
		dst[i] = p[(addr+uint64(i))%refPageSize]
	}
	return nil
}

func (m *refMem) write(addr uint64, src []byte) error {
	for i := range src {
		p := m.page(addr+uint64(i), false)
		if p == nil {
			return fmt.Errorf("oracle: ref write fault at %#x", addr+uint64(i))
		}
		p[(addr+uint64(i))%refPageSize] = src[i]
	}
	return nil
}

func (m *refMem) load(addr uint64, n int) (uint64, error) {
	var b [8]byte
	if err := m.read(addr, b[:n]); err != nil {
		return 0, err
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

func (m *refMem) store(addr uint64, v uint64, n int) error {
	var b [8]byte
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.write(addr, b[:n])
}

// NewRef loads the ELF image and establishes the same process layout the
// fast engine uses (stack placement, entry PC, initial sp, program break).
func NewRef(f *elfrv.File) (*Ref, error) {
	r := &Ref{
		Stdout:   io.Discard,
		mmapNext: emu.MmapBase,
	}
	r.mem.pages = make(map[uint64]*[refPageSize]byte)
	var end uint64
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Size() == 0 {
			continue
		}
		r.mem.mapRange(s.Addr, s.Size())
		if s.Type != elfrv.SHTNobits {
			if err := r.mem.write(s.Addr, s.Data); err != nil {
				return nil, err
			}
		}
		if s.Addr+s.Size() > end {
			end = s.Addr + s.Size()
		}
	}
	r.mem.mapRange(emu.StackTop-emu.StackSize, emu.StackSize+refPageSize)
	r.PC = f.Entry
	r.X[riscv.RegSP] = emu.StackTop - 64
	r.brk = (end + refPageSize - 1) &^ (refPageSize - 1)
	return r, nil
}

// ReadMem reads n bytes of process memory.
func (r *Ref) ReadMem(addr uint64, n int) ([]byte, error) {
	b := make([]byte, n)
	if err := r.mem.read(addr, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Step fetches, decodes, and executes exactly one instruction.
func (r *Ref) Step() (StepResult, error) {
	if r.Exited {
		return StepExited, nil
	}
	inst, err := r.fetch()
	if err != nil {
		return StepOK, err
	}
	if inst.Mn == riscv.MnEBREAK {
		return StepBreakpoint, nil
	}
	exited, err := r.exec(inst)
	if err != nil {
		return StepOK, fmt.Errorf("oracle: ref at pc=%#x executing %v: %w", inst.Addr, inst, err)
	}
	if exited {
		return StepExited, nil
	}
	return StepOK, nil
}

func (r *Ref) fetch() (riscv.Inst, error) {
	var buf [4]byte
	if err := r.mem.read(r.PC, buf[:2]); err != nil {
		return riscv.Inst{}, err
	}
	n := 2
	if buf[0]&3 == 3 {
		if err := r.mem.read(r.PC+2, buf[2:]); err != nil {
			return riscv.Inst{}, err
		}
		n = 4
	}
	return riscv.Decode(buf[:n], r.PC)
}

func (r *Ref) setX(reg riscv.Reg, v uint64) {
	if reg != riscv.X0 {
		r.X[reg&31] = v
	}
}

var bigWordMask = new(big.Int).SetUint64(^uint64(0))

// hiProduct computes bits [127:64] of a*b through arbitrary-precision
// arithmetic — an implementation path the fast engine does not share.
func hiProduct(a, b *big.Int) uint64 {
	p := new(big.Int).Mul(a, b)
	p.Rsh(p, 64)
	p.And(p, bigWordMask)
	return p.Uint64()
}

func bigS(v uint64) *big.Int { return big.NewInt(int64(v)) }
func bigU(v uint64) *big.Int { return new(big.Int).SetUint64(v) }

func refSext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func refB2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (r *Ref) exec(inst riscv.Inst) (exited bool, err error) {
	next := inst.Next()
	mn := inst.Mn
	rs1 := r.X[inst.Rs1&31]
	rs2 := r.X[inst.Rs2&31]
	imm := uint64(inst.Imm)

	switch mn {
	case riscv.MnLUI:
		r.setX(inst.Rd, uint64(inst.Imm<<12))
	case riscv.MnAUIPC:
		r.setX(inst.Rd, inst.Addr+uint64(inst.Imm<<12))
	case riscv.MnADDI:
		r.setX(inst.Rd, rs1+imm)
	case riscv.MnSLTI:
		r.setX(inst.Rd, refB2u(int64(rs1) < inst.Imm))
	case riscv.MnSLTIU:
		r.setX(inst.Rd, refB2u(rs1 < imm))
	case riscv.MnXORI:
		r.setX(inst.Rd, rs1^imm)
	case riscv.MnORI:
		r.setX(inst.Rd, rs1|imm)
	case riscv.MnANDI:
		r.setX(inst.Rd, rs1&imm)
	case riscv.MnSLLI:
		r.setX(inst.Rd, rs1<<uint(inst.Imm&63))
	case riscv.MnSRLI:
		r.setX(inst.Rd, rs1>>uint(inst.Imm&63))
	case riscv.MnSRAI:
		r.setX(inst.Rd, uint64(int64(rs1)>>uint(inst.Imm&63)))
	case riscv.MnADD:
		r.setX(inst.Rd, rs1+rs2)
	case riscv.MnSUB:
		r.setX(inst.Rd, rs1-rs2)
	case riscv.MnSLL:
		r.setX(inst.Rd, rs1<<(rs2&63))
	case riscv.MnSLT:
		r.setX(inst.Rd, refB2u(int64(rs1) < int64(rs2)))
	case riscv.MnSLTU:
		r.setX(inst.Rd, refB2u(rs1 < rs2))
	case riscv.MnXOR:
		r.setX(inst.Rd, rs1^rs2)
	case riscv.MnSRL:
		r.setX(inst.Rd, rs1>>(rs2&63))
	case riscv.MnSRA:
		r.setX(inst.Rd, uint64(int64(rs1)>>(rs2&63)))
	case riscv.MnOR:
		r.setX(inst.Rd, rs1|rs2)
	case riscv.MnAND:
		r.setX(inst.Rd, rs1&rs2)
	case riscv.MnADDIW:
		r.setX(inst.Rd, refSext32(uint32(rs1)+uint32(imm)))
	case riscv.MnSLLIW:
		r.setX(inst.Rd, refSext32(uint32(rs1)<<uint(inst.Imm&31)))
	case riscv.MnSRLIW:
		r.setX(inst.Rd, refSext32(uint32(rs1)>>uint(inst.Imm&31)))
	case riscv.MnSRAIW:
		r.setX(inst.Rd, uint64(int64(int32(rs1)>>uint(inst.Imm&31))))
	case riscv.MnADDW:
		r.setX(inst.Rd, refSext32(uint32(rs1)+uint32(rs2)))
	case riscv.MnSUBW:
		r.setX(inst.Rd, refSext32(uint32(rs1)-uint32(rs2)))
	case riscv.MnSLLW:
		r.setX(inst.Rd, refSext32(uint32(rs1)<<(rs2&31)))
	case riscv.MnSRLW:
		r.setX(inst.Rd, refSext32(uint32(rs1)>>(rs2&31)))
	case riscv.MnSRAW:
		r.setX(inst.Rd, uint64(int64(int32(rs1)>>(rs2&31))))

	case riscv.MnJAL:
		r.setX(inst.Rd, next)
		next = inst.Addr + imm
	case riscv.MnJALR:
		t := (rs1 + imm) &^ 1
		r.setX(inst.Rd, next)
		next = t
	case riscv.MnBEQ:
		if rs1 == rs2 {
			next = inst.Addr + imm
		}
	case riscv.MnBNE:
		if rs1 != rs2 {
			next = inst.Addr + imm
		}
	case riscv.MnBLT:
		if int64(rs1) < int64(rs2) {
			next = inst.Addr + imm
		}
	case riscv.MnBGE:
		if int64(rs1) >= int64(rs2) {
			next = inst.Addr + imm
		}
	case riscv.MnBLTU:
		if rs1 < rs2 {
			next = inst.Addr + imm
		}
	case riscv.MnBGEU:
		if rs1 >= rs2 {
			next = inst.Addr + imm
		}

	case riscv.MnLB, riscv.MnLBU, riscv.MnLH, riscv.MnLHU, riscv.MnLW, riscv.MnLWU, riscv.MnLD:
		width := 8
		switch mn {
		case riscv.MnLB, riscv.MnLBU:
			width = 1
		case riscv.MnLH, riscv.MnLHU:
			width = 2
		case riscv.MnLW, riscv.MnLWU:
			width = 4
		}
		v, e := r.mem.load(rs1+imm, width)
		if e != nil {
			return false, e
		}
		switch mn {
		case riscv.MnLB:
			v = uint64(int64(int8(v)))
		case riscv.MnLH:
			v = uint64(int64(int16(v)))
		case riscv.MnLW:
			v = refSext32(uint32(v))
		}
		r.setX(inst.Rd, v)
	case riscv.MnSB, riscv.MnSH, riscv.MnSW, riscv.MnSD:
		width := 8
		switch mn {
		case riscv.MnSB:
			width = 1
		case riscv.MnSH:
			width = 2
		case riscv.MnSW:
			width = 4
		}
		if e := r.mem.store(rs1+imm, rs2, width); e != nil {
			return false, e
		}

	case riscv.MnMUL:
		p := new(big.Int).Mul(bigU(rs1), bigU(rs2))
		r.setX(inst.Rd, p.And(p, bigWordMask).Uint64())
	case riscv.MnMULH:
		r.setX(inst.Rd, hiProduct(bigS(rs1), bigS(rs2)))
	case riscv.MnMULHU:
		r.setX(inst.Rd, hiProduct(bigU(rs1), bigU(rs2)))
	case riscv.MnMULHSU:
		r.setX(inst.Rd, hiProduct(bigS(rs1), bigU(rs2)))
	case riscv.MnDIV:
		a, b := int64(rs1), int64(rs2)
		switch {
		case b == 0:
			r.setX(inst.Rd, ^uint64(0))
		case a == math.MinInt64 && b == -1:
			r.setX(inst.Rd, uint64(a))
		default:
			r.setX(inst.Rd, uint64(a/b))
		}
	case riscv.MnDIVU:
		if rs2 == 0 {
			r.setX(inst.Rd, ^uint64(0))
		} else {
			r.setX(inst.Rd, rs1/rs2)
		}
	case riscv.MnREM:
		a, b := int64(rs1), int64(rs2)
		switch {
		case b == 0:
			r.setX(inst.Rd, uint64(a))
		case a == math.MinInt64 && b == -1:
			r.setX(inst.Rd, 0)
		default:
			r.setX(inst.Rd, uint64(a%b))
		}
	case riscv.MnREMU:
		if rs2 == 0 {
			r.setX(inst.Rd, rs1)
		} else {
			r.setX(inst.Rd, rs1%rs2)
		}
	case riscv.MnMULW:
		r.setX(inst.Rd, refSext32(uint32(rs1)*uint32(rs2)))
	case riscv.MnDIVW:
		a, b := int32(rs1), int32(rs2)
		switch {
		case b == 0:
			r.setX(inst.Rd, ^uint64(0))
		case a == math.MinInt32 && b == -1:
			r.setX(inst.Rd, uint64(int64(a)))
		default:
			r.setX(inst.Rd, uint64(int64(a/b)))
		}
	case riscv.MnDIVUW:
		if uint32(rs2) == 0 {
			r.setX(inst.Rd, ^uint64(0))
		} else {
			r.setX(inst.Rd, refSext32(uint32(rs1)/uint32(rs2)))
		}
	case riscv.MnREMW:
		a, b := int32(rs1), int32(rs2)
		switch {
		case b == 0:
			r.setX(inst.Rd, uint64(int64(a)))
		case a == math.MinInt32 && b == -1:
			r.setX(inst.Rd, 0)
		default:
			r.setX(inst.Rd, uint64(int64(a%b)))
		}
	case riscv.MnREMUW:
		if uint32(rs2) == 0 {
			r.setX(inst.Rd, refSext32(uint32(rs1)))
		} else {
			r.setX(inst.Rd, refSext32(uint32(rs1)%uint32(rs2)))
		}

	case riscv.MnLRW:
		v, e := r.mem.load(rs1, 4)
		if e != nil {
			return false, e
		}
		r.resValid, r.resAddr = true, rs1
		r.setX(inst.Rd, refSext32(uint32(v)))
	case riscv.MnLRD:
		v, e := r.mem.load(rs1, 8)
		if e != nil {
			return false, e
		}
		r.resValid, r.resAddr = true, rs1
		r.setX(inst.Rd, v)
	case riscv.MnSCW:
		if r.resValid && r.resAddr == rs1 {
			if e := r.mem.store(rs1, rs2, 4); e != nil {
				return false, e
			}
			r.setX(inst.Rd, 0)
		} else {
			r.setX(inst.Rd, 1)
		}
		r.resValid = false
	case riscv.MnSCD:
		if r.resValid && r.resAddr == rs1 {
			if e := r.mem.store(rs1, rs2, 8); e != nil {
				return false, e
			}
			r.setX(inst.Rd, 0)
		} else {
			r.setX(inst.Rd, 1)
		}
		r.resValid = false
	case riscv.MnAMOSWAPW, riscv.MnAMOADDW, riscv.MnAMOXORW, riscv.MnAMOANDW,
		riscv.MnAMOORW, riscv.MnAMOMINW, riscv.MnAMOMAXW, riscv.MnAMOMINUW, riscv.MnAMOMAXUW:
		old, e := r.mem.load(rs1, 4)
		if e != nil {
			return false, e
		}
		nv := refAMO(mn, old, rs2, 32)
		if e := r.mem.store(rs1, nv, 4); e != nil {
			return false, e
		}
		r.setX(inst.Rd, refSext32(uint32(old)))
	case riscv.MnAMOSWAPD, riscv.MnAMOADDD, riscv.MnAMOXORD, riscv.MnAMOANDD,
		riscv.MnAMOORD, riscv.MnAMOMIND, riscv.MnAMOMAXD, riscv.MnAMOMINUD, riscv.MnAMOMAXUD:
		old, e := r.mem.load(rs1, 8)
		if e != nil {
			return false, e
		}
		nv := refAMO(mn, old, rs2, 64)
		if e := r.mem.store(rs1, nv, 8); e != nil {
			return false, e
		}
		r.setX(inst.Rd, old)

	case riscv.MnFENCE, riscv.MnFENCEI:
		// Nothing to order and nothing to flush: the reference interpreter
		// re-decodes from memory every step.

	case riscv.MnECALL:
		exited, e := r.syscall()
		if e != nil {
			return false, e
		}
		if exited {
			r.PC = next
			r.Instret++
			return true, nil
		}
	case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		if e := r.csrOp(inst); e != nil {
			return false, e
		}

	// RVA23-profile extension subset (Zicond, Zba, Zbb).
	case riscv.MnCZEROEQZ:
		if rs2 == 0 {
			r.setX(inst.Rd, 0)
		} else {
			r.setX(inst.Rd, rs1)
		}
	case riscv.MnCZERONEZ:
		if rs2 != 0 {
			r.setX(inst.Rd, 0)
		} else {
			r.setX(inst.Rd, rs1)
		}
	case riscv.MnSH1ADD:
		r.setX(inst.Rd, rs1*2+rs2)
	case riscv.MnSH2ADD:
		r.setX(inst.Rd, rs1*4+rs2)
	case riscv.MnSH3ADD:
		r.setX(inst.Rd, rs1*8+rs2)
	case riscv.MnANDN:
		r.setX(inst.Rd, rs1&^rs2)
	case riscv.MnORN:
		r.setX(inst.Rd, rs1|^rs2)
	case riscv.MnXNOR:
		r.setX(inst.Rd, ^(rs1 ^ rs2))
	case riscv.MnMIN:
		if int64(rs1) < int64(rs2) {
			r.setX(inst.Rd, rs1)
		} else {
			r.setX(inst.Rd, rs2)
		}
	case riscv.MnMINU:
		if rs1 < rs2 {
			r.setX(inst.Rd, rs1)
		} else {
			r.setX(inst.Rd, rs2)
		}
	case riscv.MnMAX:
		if int64(rs1) > int64(rs2) {
			r.setX(inst.Rd, rs1)
		} else {
			r.setX(inst.Rd, rs2)
		}
	case riscv.MnMAXU:
		if rs1 > rs2 {
			r.setX(inst.Rd, rs1)
		} else {
			r.setX(inst.Rd, rs2)
		}

	default:
		handled, e := r.execFloat(inst)
		if e != nil {
			return false, e
		}
		if !handled {
			return false, fmt.Errorf("unimplemented instruction %v", inst)
		}
	}

	r.PC = next
	r.Instret++
	return false, nil
}

func refAMO(mn riscv.Mnemonic, old, src uint64, width int) uint64 {
	if width == 32 {
		o, s := uint32(old), uint32(src)
		switch mn {
		case riscv.MnAMOSWAPW:
			return uint64(s)
		case riscv.MnAMOADDW:
			return uint64(o + s)
		case riscv.MnAMOXORW:
			return uint64(o ^ s)
		case riscv.MnAMOANDW:
			return uint64(o & s)
		case riscv.MnAMOORW:
			return uint64(o | s)
		case riscv.MnAMOMINW:
			if int32(s) < int32(o) {
				return uint64(s)
			}
			return uint64(o)
		case riscv.MnAMOMAXW:
			if int32(s) > int32(o) {
				return uint64(s)
			}
			return uint64(o)
		case riscv.MnAMOMINUW:
			if s < o {
				return uint64(s)
			}
			return uint64(o)
		case riscv.MnAMOMAXUW:
			if s > o {
				return uint64(s)
			}
			return uint64(o)
		}
		return old
	}
	switch mn {
	case riscv.MnAMOSWAPD:
		return src
	case riscv.MnAMOADDD:
		return old + src
	case riscv.MnAMOXORD:
		return old ^ src
	case riscv.MnAMOANDD:
		return old & src
	case riscv.MnAMOORD:
		return old | src
	case riscv.MnAMOMIND:
		if int64(src) < int64(old) {
			return src
		}
		return old
	case riscv.MnAMOMAXD:
		if int64(src) > int64(old) {
			return src
		}
		return old
	case riscv.MnAMOMINUD:
		if src < old {
			return src
		}
		return old
	case riscv.MnAMOMAXUD:
		if src > old {
			return src
		}
		return old
	}
	return old
}

func (r *Ref) csrOp(inst riscv.Inst) error {
	var old uint64
	switch inst.CSR {
	case 0xC00: // cycle
		if r.CycleFn != nil {
			old = r.CycleFn()
		}
	case 0xC01: // time
		if r.TimeFn != nil {
			old = r.TimeFn()
		}
	case 0xC02: // instret
		old = r.Instret
	case 0x001: // fflags
		old = uint64(r.FCSR & 0x1f)
	case 0x002: // frm
		old = uint64(r.FCSR >> 5 & 7)
	case 0x003: // fcsr
		old = uint64(r.FCSR & 0xff)
	default:
		return fmt.Errorf("unimplemented CSR %#x", inst.CSR)
	}
	var src uint64
	switch inst.Mn {
	case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC:
		src = r.X[inst.Rs1&31]
	default:
		src = uint64(inst.Imm)
	}
	nv, write := old, false
	switch inst.Mn {
	case riscv.MnCSRRW, riscv.MnCSRRWI:
		nv, write = src, true
	case riscv.MnCSRRS, riscv.MnCSRRSI:
		nv, write = old|src, src != 0
	case riscv.MnCSRRC, riscv.MnCSRRCI:
		nv, write = old&^src, src != 0
	}
	if write {
		switch inst.CSR {
		case 0x001:
			r.FCSR = r.FCSR&^0x1f | uint32(nv)&0x1f
		case 0x002:
			r.FCSR = r.FCSR&^0xe0 | uint32(nv&7)<<5
		case 0x003:
			r.FCSR = uint32(nv) & 0xff
		}
	}
	r.setX(inst.Rd, old)
	return nil
}
