package oracle

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
)

// runPair assembles src and runs it to completion on both engines
// independently, so tests can assert the spec-mandated architectural result
// on each engine directly (the lockstep comparison would only prove they
// agree — both could be wrong together).
func runPair(t *testing.T, src string) (*emu.CPU, *Ref) {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cpu, err := emu.New(f, nil)
	if err != nil {
		t.Fatalf("emu.New: %v", err)
	}
	if stop := cpu.Run(100_000); stop != emu.StopExit {
		t.Fatalf("fast engine stopped with %v (%v)", stop, cpu.LastTrap())
	}
	ref, err := NewRef(f)
	if err != nil {
		t.Fatalf("NewRef: %v", err)
	}
	for i := 0; i < 100_000; i++ {
		res, err := ref.Step()
		if err != nil {
			t.Fatalf("reference trapped: %v", err)
		}
		if res == StepExited {
			return cpu, ref
		}
	}
	t.Fatal("reference engine did not exit")
	return nil, nil
}

func checkRegs(t *testing.T, cpu *emu.CPU, ref *Ref, checks []struct {
	reg  riscv.Reg
	want uint64
}) {
	t.Helper()
	for _, c := range checks {
		i := uint32(c.reg)
		if got := cpu.X[i]; got != c.want {
			t.Errorf("fast engine %v = %#x, want %#x", c.reg, got, c.want)
		}
		if got := ref.X[i]; got != c.want {
			t.Errorf("reference engine %v = %#x, want %#x", c.reg, got, c.want)
		}
	}
}

// TestDivRemCornersBothEngines pins the RISC-V division special cases —
// divide-by-zero never traps (quotient all-ones, remainder = dividend) and
// the lone signed overflow MinInt/-1 wraps — on both engines, in both the
// 64-bit and the word forms.
func TestDivRemCornersBothEngines(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li t0, -9223372036854775808
	li t1, -1
	div s2, t0, t1
	rem s3, t0, t1
	li t2, 0
	div s4, t0, t2
	rem s5, t0, t2
	divu s6, t0, t2
	remu s7, t0, t2
	li t3, -2147483648
	divw s8, t3, t1
	remw s9, t3, t1
	divuw s10, t3, t2
	remuw s11, t3, t2
	li a0, 0
	li a7, 93
	ecall
`
	cpu, ref := runPair(t, src)
	checkRegs(t, cpu, ref, []struct {
		reg  riscv.Reg
		want uint64
	}{
		{riscv.RegS2, 1 << 63},             // MinInt64 / -1 overflows back to MinInt64
		{riscv.RegS3, 0},                   // MinInt64 % -1 = 0
		{riscv.RegS4, ^uint64(0)},          // signed div by zero = -1
		{riscv.RegS5, 1 << 63},             // signed rem by zero = dividend
		{riscv.RegS6, ^uint64(0)},          // unsigned div by zero = all ones
		{riscv.RegS7, 1 << 63},             // unsigned rem by zero = dividend
		{riscv.RegS8, 0xffffffff80000000},  // MinInt32 / -1, sign-extended
		{riscv.RegS9, 0},                   // MinInt32 % -1 = 0
		{riscv.RegS10, ^uint64(0)},         // divuw by zero
		{riscv.RegS11, 0xffffffff80000000}, // remuw by zero = zext32 dividend, sign-extended
	})
}

// TestAMOWordCornersBothEngines pins the subtle half of the word AMOs: the
// old value loaded into rd is sign-extended even for the unsigned min/max
// flavours, and the min/max comparison itself is on the 32-bit value.
func TestAMOWordCornersBothEngines(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	la t0, buf
	li t1, -1
	sw t1, 0(t0)
	li t2, 1
	amoadd.w s2, t2, (t0)     # old 0xffffffff -> rd sign-extends to -1; mem wraps to 0
	lw s3, 0(t0)

	addi t0, t0, 8
	li t3, -2147483648
	sw t3, 0(t0)
	li t4, 5
	amomax.w s4, t4, (t0)     # old MinInt32 -> rd 0xffffffff80000000; signed max keeps 5
	lw s5, 0(t0)

	addi t0, t0, 8
	li t5, 0x80000000
	sw t5, 0(t0)
	li t6, 1
	amomaxu.w s6, t6, (t0)    # unsigned: 0x80000000 > 1, mem unchanged; rd still sign-extends
	lw s7, 0(t0)

	addi t0, t0, 8
	li t1, 0x7fffffff
	sw t1, 0(t0)
	li t2, -1
	amomin.w s8, t2, (t0)     # signed min picks -1
	lw s9, 0(t0)

	addi t0, t0, 8
	li t3, -2
	sw t3, 0(t0)
	li t4, 3
	amoswap.w s10, t4, (t0)
	lw s11, 0(t0)

	li a0, 0
	li a7, 93
	ecall

	.data
	.balign 8
buf:
	.zero 64
`
	cpu, ref := runPair(t, src)
	checkRegs(t, cpu, ref, []struct {
		reg  riscv.Reg
		want uint64
	}{
		{riscv.RegS2, ^uint64(0)},          // amoadd.w old value, sign-extended
		{riscv.RegS3, 0},                   // 0xffffffff + 1 wraps to 0 in 32 bits
		{riscv.RegS4, 0xffffffff80000000},  // amomax.w old value
		{riscv.RegS5, 5},                   // max(MinInt32, 5) = 5
		{riscv.RegS6, 0xffffffff80000000},  // amomaxu.w old value still sign-extends into rd
		{riscv.RegS7, 0xffffffff80000000},  // maxu(0x80000000, 1) keeps 0x80000000 (lw sign-extends)
		{riscv.RegS8, 0x7fffffff},          // amomin.w old value
		{riscv.RegS9, ^uint64(0)},          // min(0x7fffffff, -1) = -1
		{riscv.RegS10, 0xfffffffffffffffe}, // amoswap.w old value -2
		{riscv.RegS11, 3},
	})
}

// TestLrScBothEngines: a successful LR/SC pair writes memory and returns 0;
// an SC with no reservation fails, returns non-zero, and leaves memory alone.
func TestLrScBothEngines(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	la t0, buf
	li t1, 77
	sd t1, 0(t0)
	lr.d s2, (t0)             # s2 = 77, reservation set
	li t2, 88
	sc.d s3, t2, (t0)         # succeeds: s3 = 0, mem = 88
	ld s4, 0(t0)
	li t3, 99
	sc.d s5, t3, (t0)         # no reservation: fails, s5 != 0, mem still 88
	ld s6, 0(t0)
	li a0, 0
	li a7, 93
	ecall

	.data
	.balign 8
buf:
	.zero 16
`
	cpu, ref := runPair(t, src)
	checkRegs(t, cpu, ref, []struct {
		reg  riscv.Reg
		want uint64
	}{
		{riscv.RegS2, 77},
		{riscv.RegS3, 0},
		{riscv.RegS4, 88},
		{riscv.RegS5, 1},
		{riscv.RegS6, 88},
	})
}
