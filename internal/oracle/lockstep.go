package oracle

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/riscv"
)

// historyDepth is how many disassembled instructions a divergence report
// carries as context.
const historyDepth = 8

// Divergence describes the first architectural-state mismatch between the
// fast engine and the reference interpreter. Seed is the generator seed when
// the program came from GenerateProgram (-1 otherwise); everything else
// identifies the exact instruction and the first field that disagreed.
type Divergence struct {
	Seed   int64
	Step   uint64 // instructions retired before the diverging one
	PC     uint64
	Disasm string
	Field  string // "pc", "x10/a0", "f4/ft4", "fcsr", "mem[0x...]", "exit", ...
	Fast   uint64
	Ref    uint64
	// History holds up to historyDepth disassembled instructions leading to
	// (and including) the diverging one, oldest first.
	History []string
}

// Error renders the full report; Divergence satisfies error so callers can
// thread it through normal error paths.
func (d *Divergence) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: divergence at step %d, pc=%#x\n", d.Step, d.PC)
	fmt.Fprintf(&b, "  inst:  %s\n", d.Disasm)
	fmt.Fprintf(&b, "  field: %s\n", d.Field)
	fmt.Fprintf(&b, "  fast:  %#x\n", d.Fast)
	fmt.Fprintf(&b, "  ref:   %#x\n", d.Ref)
	if d.Seed >= 0 {
		fmt.Fprintf(&b, "  seed:  %d (reproduce: rvdyn oracle -mode replay -seed %d)\n", d.Seed, d.Seed)
	}
	if len(d.History) > 0 {
		b.WriteString("  recent:\n")
		for _, h := range d.History {
			fmt.Fprintf(&b, "    %s\n", h)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// LockstepResult summarises a clean lockstep run.
type LockstepResult struct {
	Steps    uint64
	ExitCode int
	Stop     string // "exit", "breakpoint", "trap", or "max-inst"
	Stdout   []byte
}

// RunLockstep executes f on both engines, comparing PC, the integer and FP
// register files, and FCSR after every instruction, plus the touched bytes
// after every store. On a clean stop it additionally compares exit state,
// captured stdout, and the entire final memory image. maxInst of 0 means
// the default budget of 1<<20 instructions.
//
// The reference interpreter steps first each iteration, with its clock and
// cycle counter wired to read the fast CPU's counters before the fast CPU
// retires the same instruction — both engines therefore observe identical
// counter values, and any surviving mismatch is a genuine semantics bug.
func RunLockstep(f *elfrv.File, maxInst uint64) (*LockstepResult, *Divergence, error) {
	if maxInst == 0 {
		maxInst = 1 << 20
	}
	cpu, err := emu.New(f, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: fast engine: %w", err)
	}
	ref, err := NewRef(f)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: reference engine: %w", err)
	}
	var fastOut, refOut bytes.Buffer
	cpu.Stdout = &fastOut
	ref.Stdout = &refOut
	ref.TimeFn = cpu.VirtualNanos
	ref.CycleFn = func() uint64 { return cpu.Cycles }

	ls := &lockstep{cpu: cpu, ref: ref, seed: -1}
	res, div := ls.run(maxInst)
	if div == nil && res != nil {
		if !bytes.Equal(fastOut.Bytes(), refOut.Bytes()) {
			div = ls.diverge("stdout", uint64(fastOut.Len()), uint64(refOut.Len()))
		}
		res.Stdout = fastOut.Bytes()
	}
	return res, div, nil
}

type lockstep struct {
	cpu     *emu.CPU
	ref     *Ref
	seed    int64
	steps   uint64
	history []string
	lastPC  uint64
	lastDis string
}

func (l *lockstep) diverge(field string, fast, ref uint64) *Divergence {
	return &Divergence{
		Seed:    l.seed,
		Step:    l.steps,
		PC:      l.lastPC,
		Disasm:  l.lastDis,
		Field:   field,
		Fast:    fast,
		Ref:     ref,
		History: append([]string(nil), l.history...),
	}
}

func (l *lockstep) note(inst riscv.Inst) {
	l.lastPC = inst.Addr
	l.lastDis = inst.String()
	line := fmt.Sprintf("%#x: %s", inst.Addr, inst)
	if len(l.history) == historyDepth {
		copy(l.history, l.history[1:])
		l.history[historyDepth-1] = line
	} else {
		l.history = append(l.history, line)
	}
}

// storeSpan returns the memory span inst will write given the reference
// engine's pre-step register state (width 0 when inst is not a store).
func (l *lockstep) storeSpan(inst riscv.Inst) (addr uint64, width int) {
	rs1 := l.ref.X[inst.Rs1&31]
	switch inst.Mn {
	case riscv.MnSB:
		return rs1 + uint64(inst.Imm), 1
	case riscv.MnSH:
		return rs1 + uint64(inst.Imm), 2
	case riscv.MnSW, riscv.MnFSW:
		return rs1 + uint64(inst.Imm), 4
	case riscv.MnSD, riscv.MnFSD:
		return rs1 + uint64(inst.Imm), 8
	case riscv.MnSCW:
		return rs1, 4
	case riscv.MnSCD:
		return rs1, 8
	case riscv.MnAMOSWAPW, riscv.MnAMOADDW, riscv.MnAMOXORW, riscv.MnAMOANDW,
		riscv.MnAMOORW, riscv.MnAMOMINW, riscv.MnAMOMAXW, riscv.MnAMOMINUW, riscv.MnAMOMAXUW:
		return rs1, 4
	case riscv.MnAMOSWAPD, riscv.MnAMOADDD, riscv.MnAMOXORD, riscv.MnAMOANDD,
		riscv.MnAMOORD, riscv.MnAMOMIND, riscv.MnAMOMAXD, riscv.MnAMOMINUD, riscv.MnAMOMAXUD:
		return rs1, 8
	}
	return 0, 0
}

func (l *lockstep) run(maxInst uint64) (*LockstepResult, *Divergence) {
	for l.steps = 0; l.steps < maxInst; l.steps++ {
		inst, ferr := l.ref.fetch()
		if ferr == nil {
			l.note(inst)
		} else {
			l.lastPC, l.lastDis = l.ref.PC, "<fetch fault>"
		}
		var stAddr uint64
		var stWidth int
		if ferr == nil {
			stAddr, stWidth = l.storeSpan(inst)
		}

		refRes, refErr := l.ref.Step()
		fastStop := l.cpu.Run(1)

		switch {
		case refRes == StepBreakpoint:
			if fastStop != emu.StopBreakpoint {
				return nil, l.diverge("stop: ref=breakpoint fast="+fastStop.String(), uint64(fastStop), 0)
			}
			if d := l.compareState(); d != nil {
				return nil, d
			}
			if d := l.compareMemory(); d != nil {
				return nil, d
			}
			return &LockstepResult{Steps: l.steps, Stop: "breakpoint"}, nil
		case refErr != nil:
			// The reference trapped; the fast engine must trap at the same
			// instruction. Agreement on the trap is a clean (if abnormal)
			// stop — the program is at fault, not the engines.
			if fastStop != emu.StopTrap {
				return nil, l.diverge("trap: ref trapped, fast="+fastStop.String(), uint64(fastStop), 0)
			}
			return &LockstepResult{Steps: l.steps, Stop: "trap"}, nil
		case fastStop == emu.StopTrap:
			return nil, l.diverge("trap: fast trapped, ref did not", 0, 0)
		case refRes == StepExited:
			if fastStop != emu.StopExit {
				return nil, l.diverge("stop: ref=exit fast="+fastStop.String(), uint64(fastStop), 0)
			}
			if l.cpu.ExitCode != l.ref.ExitCode {
				return nil, l.diverge("exit", uint64(l.cpu.ExitCode), uint64(l.ref.ExitCode))
			}
			if d := l.compareMemory(); d != nil {
				return nil, d
			}
			return &LockstepResult{Steps: l.steps + 1, ExitCode: l.cpu.ExitCode, Stop: "exit"}, nil
		case fastStop == emu.StopExit:
			return nil, l.diverge("stop: fast=exit ref=running", uint64(l.cpu.ExitCode), 0)
		}

		if d := l.compareState(); d != nil {
			return nil, d
		}
		if stWidth > 0 {
			fb, ferr := l.cpu.ReadMem(stAddr, stWidth)
			rb, rerr := l.ref.ReadMem(stAddr, stWidth)
			if ferr == nil && rerr == nil && !bytes.Equal(fb, rb) {
				return nil, l.diverge(fmt.Sprintf("mem[%#x]", stAddr), leVal(fb), leVal(rb))
			}
		}
	}
	return &LockstepResult{Steps: l.steps, Stop: "max-inst"}, nil
}

func (l *lockstep) compareState() *Divergence {
	if l.cpu.PC != l.ref.PC {
		return l.diverge("pc", l.cpu.PC, l.ref.PC)
	}
	for i := 1; i < 32; i++ {
		if l.cpu.X[i] != l.ref.X[i] {
			return l.diverge(fmt.Sprintf("x%d/%s", i, riscv.XReg(uint32(i))), l.cpu.X[i], l.ref.X[i])
		}
	}
	for i := 0; i < 32; i++ {
		if l.cpu.F[i] != l.ref.F[i] {
			return l.diverge(fmt.Sprintf("f%d/%s", i, riscv.FReg(uint32(i))), l.cpu.F[i], l.ref.F[i])
		}
	}
	if l.cpu.FCSR != l.ref.FCSR {
		return l.diverge("fcsr", uint64(l.cpu.FCSR), uint64(l.ref.FCSR))
	}
	return nil
}

// compareMemory walks the union of both engines' page sets and reports the
// first differing byte.
func (l *lockstep) compareMemory() *Divergence {
	pages := make(map[uint64]bool)
	for _, a := range l.cpu.Mem.PageAddrs() {
		pages[a] = true
	}
	for idx := range l.ref.mem.pages {
		pages[idx*refPageSize] = true
	}
	addrs := make([]uint64, 0, len(pages))
	for a := range pages {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fp := l.cpu.Mem.Page(a)
		rp := l.ref.mem.page(a, false)
		switch {
		case fp == nil:
			return l.diverge(fmt.Sprintf("page[%#x] mapped only in ref engine", a), 0, 1)
		case rp == nil:
			return l.diverge(fmt.Sprintf("page[%#x] mapped only in fast engine", a), 1, 0)
		}
		for i := range fp {
			if fp[i] != rp[i] {
				return l.diverge(fmt.Sprintf("mem[%#x]", a+uint64(i)), uint64(fp[i]), uint64(rp[i]))
			}
		}
	}
	return nil
}

func leVal(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
