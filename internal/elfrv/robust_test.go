package elfrv

import (
	"math/rand"
	"testing"
)

// TestReadNeverPanics: Read must reject or tolerate — never panic on —
// corrupted inputs. Binary analysis tools are routinely pointed at
// malformed files; Dyninst treats robustness here as a requirement, and so
// does this reproduction. The fuzz mutates a valid image (truncations,
// byte flips, length-field scrambles) and calls Read on each variant.
func TestReadNeverPanics(t *testing.T) {
	base, err := buildTestFile().Write()
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Read panicked on %d-byte corrupted input: %v", len(data), r)
			}
		}()
		f, err := Read(data)
		if err == nil && f != nil {
			// Accepted: exercising the accessors must also be safe.
			for _, s := range f.Sections {
				_ = s.Size()
			}
			_, _, _ = f.RISCVAttributes()
			_ = f.FuncSymbols()
			f.ReadAt(f.Entry, 4)
		}
	}

	// Truncations at every length up to the header, then sparse beyond.
	for n := 0; n <= 64 && n <= len(base); n++ {
		check(base[:n])
	}
	for n := 65; n < len(base); n += 37 {
		check(base[:n])
	}

	// Random single- and multi-byte flips.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		m := append([]byte(nil), base...)
		flips := 1 + rng.Intn(8)
		for i := 0; i < flips; i++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		check(m)
	}

	// Length-field scrambles: overwrite the section-header metadata with
	// extreme values.
	for trial := 0; trial < 500; trial++ {
		m := append([]byte(nil), base...)
		off := 40 + rng.Intn(24) // shoff / e_flags / sizes region
		for i := 0; i < 8 && off+i < len(m); i++ {
			m[off+i] = 0xff
		}
		check(m)
	}
}

// TestAttributesDecodeNeverPanics fuzzes the uleb/NTBS attribute parser.
func TestAttributesDecodeNeverPanics(t *testing.T) {
	base := EncodeAttributes(Attributes{Arch: "rv64imafdc_zicsr", StackAlign: 16})
	rng := rand.New(rand.NewSource(7))
	check := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeAttributes panicked: %v (input % x)", r, data)
			}
		}()
		DecodeAttributes(data)
	}
	for n := 0; n <= len(base); n++ {
		check(base[:n])
	}
	for trial := 0; trial < 5000; trial++ {
		m := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(6); i++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		check(m)
	}
	// Pure garbage.
	for trial := 0; trial < 1000; trial++ {
		g := make([]byte, rng.Intn(64))
		rng.Read(g)
		check(g)
	}
}
