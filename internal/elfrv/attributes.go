package elfrv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// This file implements the .riscv.attributes section (RISC-V ELF psABI
// build-attributes format). Per Section 3.2.1 of the paper, the section
// carries the target architecture string (Tag_RISCV_arch) from which the
// instrumenter learns exactly which extensions the mutatee may use. The
// format is:
//
//	byte    'A'                         format version
//	-- one vendor subsection --
//	uint32  subsection length           (including this length field)
//	NTBS    vendor name ("riscv")
//	-- one or more sub-subsections --
//	uleb128 tag                         (1 = whole-file attributes)
//	uint32  sub-subsection length       (including tag and length)
//	-- attribute records --
//	uleb128 tag; then uleb128 value (even tags) or NTBS value (odd tags)
//
// Following the psABI convention, odd-numbered tags take NTBS values and
// even-numbered tags take uleb128 values.

// Attributes carries the decoded riscv vendor attributes.
type Attributes struct {
	Arch        string // Tag_RISCV_arch
	StackAlign  uint64 // Tag_RISCV_stack_align
	UnalignedOK uint64 // Tag_RISCV_unaligned_access
}

func putUleb(buf *bytes.Buffer, v uint64) {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		buf.WriteByte(b)
		if v == 0 {
			return
		}
	}
}

func getUleb(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << shift
		if b[i]&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
		if shift > 63 {
			break
		}
	}
	return 0, 0, fmt.Errorf("elfrv: malformed uleb128 in attributes")
}

// EncodeAttributes serializes the attributes into the .riscv.attributes
// section byte format.
func EncodeAttributes(a Attributes) []byte {
	var attrs bytes.Buffer
	if a.StackAlign != 0 {
		putUleb(&attrs, TagRISCVStackAlign)
		putUleb(&attrs, a.StackAlign)
	}
	if a.Arch != "" {
		putUleb(&attrs, TagRISCVArch)
		attrs.WriteString(a.Arch)
		attrs.WriteByte(0)
	}
	if a.UnalignedOK != 0 {
		putUleb(&attrs, TagRISCVUnalignedOK)
		putUleb(&attrs, a.UnalignedOK)
	}

	// File sub-subsection: tag(1) + uint32 length + records.
	var sub bytes.Buffer
	sub.WriteByte(attrFileSubsection)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(1+4+attrs.Len()))
	sub.Write(lenb[:])
	sub.Write(attrs.Bytes())

	// Vendor subsection: uint32 length + "riscv\0" + sub-subsections.
	vendor := "riscv"
	var out bytes.Buffer
	out.WriteByte(attrFormatVersion)
	binary.LittleEndian.PutUint32(lenb[:], uint32(4+len(vendor)+1+sub.Len()))
	out.Write(lenb[:])
	out.WriteString(vendor)
	out.WriteByte(0)
	out.Write(sub.Bytes())
	return out.Bytes()
}

// DecodeAttributes parses a .riscv.attributes section body.
func DecodeAttributes(data []byte) (Attributes, error) {
	var a Attributes
	if len(data) < 1 || data[0] != attrFormatVersion {
		return a, fmt.Errorf("elfrv: bad attributes format version")
	}
	p := data[1:]
	for len(p) >= 4 {
		sublen := binary.LittleEndian.Uint32(p)
		if sublen < 4 || uint64(sublen) > uint64(len(p)) {
			return a, fmt.Errorf("elfrv: bad attributes subsection length %d", sublen)
		}
		sub := p[4:sublen]
		p = p[sublen:]
		// Vendor name.
		nul := bytes.IndexByte(sub, 0)
		if nul < 0 {
			return a, fmt.Errorf("elfrv: unterminated vendor name")
		}
		vendor := string(sub[:nul])
		body := sub[nul+1:]
		if vendor != "riscv" {
			continue
		}
		for len(body) >= 5 {
			tag := body[0]
			sslen := binary.LittleEndian.Uint32(body[1:])
			if sslen < 5 || uint64(sslen) > uint64(len(body)) {
				return a, fmt.Errorf("elfrv: bad sub-subsection length %d", sslen)
			}
			records := body[5:sslen]
			body = body[sslen:]
			if tag != attrFileSubsection {
				continue // we only consume whole-file attributes
			}
			for len(records) > 0 {
				t, n, err := getUleb(records)
				if err != nil {
					return a, err
				}
				records = records[n:]
				if t%2 == 1 {
					// NTBS value.
					nul := bytes.IndexByte(records, 0)
					if nul < 0 {
						return a, fmt.Errorf("elfrv: unterminated attribute string (tag %d)", t)
					}
					val := string(records[:nul])
					records = records[nul+1:]
					if t == TagRISCVArch {
						a.Arch = val
					}
				} else {
					v, n, err := getUleb(records)
					if err != nil {
						return a, err
					}
					records = records[n:]
					switch t {
					case TagRISCVStackAlign:
						a.StackAlign = v
					case TagRISCVUnalignedOK:
						a.UnalignedOK = v
					}
				}
			}
		}
	}
	return a, nil
}

// RISCVAttributes decodes the file's .riscv.attributes section. The boolean
// reports whether the section is present; per the paper, when it is absent
// the consumer must fall back to e_flags (which every ELF file carries).
func (f *File) RISCVAttributes() (Attributes, bool, error) {
	s := f.Section(".riscv.attributes")
	if s == nil {
		return Attributes{}, false, nil
	}
	a, err := DecodeAttributes(s.Data)
	return a, true, err
}

// SetRISCVAttributes installs (or replaces) the .riscv.attributes section.
func (f *File) SetRISCVAttributes(a Attributes) {
	data := EncodeAttributes(a)
	if s := f.Section(".riscv.attributes"); s != nil {
		s.Data = data
		return
	}
	f.Sections = append(f.Sections, &Section{
		Name:  ".riscv.attributes",
		Type:  SHTRISCVAttributes,
		Data:  data,
		Align: 1,
	})
}
