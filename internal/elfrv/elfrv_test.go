package elfrv

import (
	"bytes"
	"debug/elf"
	"testing"
	"testing/quick"
)

// buildTestFile assembles a small executable image with text, data, and bss.
func buildTestFile() *File {
	f := &File{
		Entry: 0x10000,
		Flags: EFRiscVRVC | EFRiscVFloatABIDouble,
	}
	text := make([]byte, 64)
	for i := range text {
		text[i] = byte(i)
	}
	f.Sections = []*Section{
		{Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr, Addr: 0x10000, Data: text, Align: 4},
		{Name: ".data", Type: SHTProgbits, Flags: SHFAlloc | SHFWrite, Addr: 0x20000, Data: []byte{1, 2, 3, 4}, Align: 8},
		{Name: ".bss", Type: SHTNobits, Flags: SHFAlloc | SHFWrite, Addr: 0x21000, MemSize: 128, Align: 8},
	}
	f.Symbols = []Symbol{
		{Name: "main", Value: 0x10000, Size: 32, Bind: STBGlobal, Type: STTFunc, Section: ".text"},
		{Name: "helper", Value: 0x10020, Size: 32, Bind: STBLocal, Type: STTFunc, Section: ".text"},
		{Name: "counter", Value: 0x21000, Size: 8, Bind: STBGlobal, Type: STTObject, Section: ".bss"},
	}
	f.SetRISCVAttributes(Attributes{Arch: "rv64imafdc_zicsr_zifencei", StackAlign: 16})
	return f
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := buildTestFile()
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Entry != f.Entry {
		t.Errorf("entry %#x != %#x", g.Entry, f.Entry)
	}
	if g.Flags != f.Flags {
		t.Errorf("flags %#x != %#x", g.Flags, f.Flags)
	}
	for _, name := range []string{".text", ".data", ".bss", ".riscv.attributes", ".symtab", ".strtab"} {
		if g.Section(name) == nil {
			t.Errorf("missing section %s", name)
		}
	}
	ot, gt := f.Section(".text"), g.Section(".text")
	if !bytes.Equal(ot.Data, gt.Data) {
		t.Error(".text content mismatch")
	}
	if gt.Addr != 0x10000 || gt.Flags&SHFExecinstr == 0 {
		t.Errorf(".text addr/flags: %#x %#x", gt.Addr, gt.Flags)
	}
	if gb := g.Section(".bss"); gb.Size() != 128 || gb.Type != SHTNobits {
		t.Errorf(".bss size %d type %d", gb.Size(), gb.Type)
	}
	for _, want := range f.Symbols {
		got, ok := g.Symbol(want.Name)
		if !ok {
			t.Errorf("missing symbol %s", want.Name)
			continue
		}
		if got.Value != want.Value || got.Size != want.Size || got.Type != want.Type ||
			got.Bind != want.Bind || got.Section != want.Section {
			t.Errorf("symbol %s = %+v, want %+v", want.Name, got, want)
		}
	}
}

// TestCrossValidateWithDebugElf checks our writer output against the Go
// standard library ELF reader: an independent implementation of the format.
func TestCrossValidateWithDebugElf(t *testing.T) {
	f := buildTestFile()
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	ef, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("debug/elf rejects our output: %v", err)
	}
	defer ef.Close()
	if ef.Machine != elf.EM_RISCV {
		t.Errorf("machine = %v", ef.Machine)
	}
	if ef.Entry != 0x10000 {
		t.Errorf("entry = %#x", ef.Entry)
	}
	if ef.Class != elf.ELFCLASS64 || ef.ByteOrder.String() != "LittleEndian" {
		t.Errorf("class %v order %v", ef.Class, ef.ByteOrder)
	}
	sec := ef.Section(".text")
	if sec == nil {
		t.Fatal("debug/elf cannot find .text")
	}
	got, err := sec.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.Section(".text").Data) {
		t.Error(".text data mismatch via debug/elf")
	}
	syms, err := ef.Symbols()
	if err != nil {
		t.Fatalf("debug/elf symbols: %v", err)
	}
	found := map[string]bool{}
	for _, s := range syms {
		found[s.Name] = true
	}
	for _, name := range []string{"main", "helper", "counter"} {
		if !found[name] {
			t.Errorf("debug/elf missing symbol %q", name)
		}
	}
	// Program headers: every PT_LOAD must have off ≡ vaddr (mod page).
	loads := 0
	for _, p := range ef.Progs {
		if p.Type != elf.PT_LOAD {
			continue
		}
		loads++
		if p.Off%0x1000 != p.Vaddr%0x1000 {
			t.Errorf("PT_LOAD off %#x !≡ vaddr %#x (mod 4096)", p.Off, p.Vaddr)
		}
	}
	if loads != 3 {
		t.Errorf("PT_LOAD count = %d, want 3", loads)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	in := Attributes{Arch: "rv64imac_zicsr", StackAlign: 16, UnalignedOK: 1}
	out, err := DecodeAttributes(EncodeAttributes(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestAttributesQuick(t *testing.T) {
	f := func(arch string, align uint64) bool {
		// NTBS cannot contain NUL.
		clean := make([]byte, 0, len(arch))
		for i := 0; i < len(arch); i++ {
			if arch[i] != 0 {
				clean = append(clean, arch[i])
			}
		}
		in := Attributes{Arch: string(clean), StackAlign: align % 4096}
		out, err := DecodeAttributes(EncodeAttributes(in))
		if err != nil {
			t.Logf("decode(%+v): %v", in, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttributesViaFile(t *testing.T) {
	f := buildTestFile()
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	a, ok, err := g.RISCVAttributes()
	if err != nil || !ok {
		t.Fatalf("attributes: ok=%v err=%v", ok, err)
	}
	if a.Arch != "rv64imafdc_zicsr_zifencei" || a.StackAlign != 16 {
		t.Errorf("attributes = %+v", a)
	}
}

func TestAttributesAbsent(t *testing.T) {
	f := &File{Entry: 0x10000, Flags: EFRiscVRVC}
	f.Sections = []*Section{
		{Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr, Addr: 0x10000, Data: make([]byte, 8), Align: 4},
	}
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := g.RISCVAttributes(); ok {
		t.Error("attributes reported present on a file without the section")
	}
	// The e_flags fallback still reports RVC.
	if g.Flags&EFRiscVRVC == 0 {
		t.Error("e_flags lost RVC bit")
	}
}

func TestSectionAtAndReadAt(t *testing.T) {
	f := buildTestFile()
	if s := f.SectionAt(0x10010); s == nil || s.Name != ".text" {
		t.Errorf("SectionAt(0x10010) = %v", s)
	}
	if s := f.SectionAt(0x21040); s == nil || s.Name != ".bss" {
		t.Errorf("SectionAt(0x21040) = %v", s)
	}
	if s := f.SectionAt(0x999999); s != nil {
		t.Errorf("SectionAt(unmapped) = %v", s)
	}
	b, err := f.ReadAt(0x10002, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{2, 3, 4, 5}) {
		t.Errorf("ReadAt = %v", b)
	}
	// Reads from NOBITS come back zeroed.
	b, err = f.ReadAt(0x21000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Errorf("bss read = %v", b)
			break
		}
	}
	if _, err := f.ReadAt(0x1003e, 8); err == nil {
		t.Error("ReadAt crossing section end succeeded")
	}
}

func TestFuncSymbolsSorted(t *testing.T) {
	f := buildTestFile()
	fs := f.FuncSymbols()
	if len(fs) != 2 || fs[0].Name != "main" || fs[1].Name != "helper" {
		t.Errorf("FuncSymbols = %+v", fs)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("hello"),
		append([]byte{0x7f, 'E', 'L', 'F', 1 /*32-bit*/, 1, 1}, make([]byte, 64)...),
	}
	for i, c := range cases {
		if _, err := Read(c); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
	// Wrong machine.
	f := buildTestFile()
	data, _ := f.Write()
	data[18] = 0x3e // EM_X86_64
	if _, err := Read(data); err == nil {
		t.Error("Read accepted x86-64 file")
	}
}

func TestFloatABIFlags(t *testing.T) {
	f := buildTestFile()
	if f.Flags&EFRiscVFloatABIMask != EFRiscVFloatABIDouble {
		t.Errorf("float ABI = %#x", f.Flags&EFRiscVFloatABIMask)
	}
}

func TestSetAttributesReplaces(t *testing.T) {
	f := buildTestFile()
	f.SetRISCVAttributes(Attributes{Arch: "rv64i"})
	count := 0
	for _, s := range f.Sections {
		if s.Name == ".riscv.attributes" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d .riscv.attributes sections", count)
	}
	a, ok, err := f.RISCVAttributes()
	if err != nil || !ok || a.Arch != "rv64i" {
		t.Errorf("after replace: %+v ok=%v err=%v", a, ok, err)
	}
}
