package elfrv

import (
	"encoding/binary"
	"testing"
)

// FuzzELFRead drives the loader and every accessor over arbitrary bytes.
// The contract under test is graceful degradation: Read and everything
// downstream of it must return errors (or empty results) on corrupt input,
// never panic, hang, or balloon memory. The seed corpus covers the corrupt
// shapes the issue calls out — truncations, overlapping sections, and
// corrupt headers — plus an intact file so the happy path stays in the mix.
func FuzzELFRead(f *testing.F) {
	good, err := buildTestFile().Write()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)

	// Truncations at structurally interesting boundaries.
	for _, n := range []int{0, 4, 16, 63, 64, 120, len(good) / 2, len(good) - 1} {
		if n < len(good) {
			f.Add(append([]byte(nil), good[:n]...))
		}
	}

	le := binary.LittleEndian
	mutate := func(mut func(b []byte)) {
		b := append([]byte(nil), good...)
		mut(b)
		f.Add(b)
	}
	// Corrupt header fields: shoff past EOF, shoff wrapping, absurd
	// shentsize/shnum, shstrndx out of bounds, zero shentsize.
	mutate(func(b []byte) { le.PutUint64(b[40:], uint64(len(b))+1) })
	mutate(func(b []byte) { le.PutUint64(b[40:], ^uint64(0)-32) })
	mutate(func(b []byte) { le.PutUint16(b[58:], 0) })
	mutate(func(b []byte) { le.PutUint16(b[58:], 0xffff) })
	mutate(func(b []byte) { le.PutUint16(b[60:], 0xffff) })
	mutate(func(b []byte) { le.PutUint16(b[62:], 0xfffe) })
	// Corrupt section headers: find the header table and bend the first real
	// entry — offset past EOF, size wrapping, huge alignment (the Write-side
	// hang), entsize 0 on a symtab, and two sections claiming the same file
	// range (overlap).
	shoff := le.Uint64(good[40:])
	shentsize := uint64(le.Uint16(good[58:]))
	sh := func(i uint64) uint64 { return shoff + i*shentsize }
	mutate(func(b []byte) { le.PutUint64(b[sh(1)+24:], uint64(len(b))) })
	mutate(func(b []byte) { le.PutUint64(b[sh(1)+32:], ^uint64(0)) })
	mutate(func(b []byte) { le.PutUint64(b[sh(1)+48:], 1<<63) })
	mutate(func(b []byte) { le.PutUint64(b[sh(1)+48:], 3) })
	mutate(func(b []byte) {
		// Overlapping sections: copy section 1's header over section 2's.
		copy(b[sh(2):sh(2)+shentsize], b[sh(1):sh(1)+shentsize])
	})
	mutate(func(b []byte) {
		// Symtab with entsize 0 and with a link pointing at itself.
		for i := uint64(1); sh(i)+shentsize <= uint64(len(b)); i++ {
			if le.Uint32(b[sh(i)+4:]) == SHTSymtab {
				le.PutUint64(b[sh(i)+56:], 0)
				le.PutUint32(b[sh(i)+40:], uint32(i))
			}
		}
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Read(data)
		if err != nil {
			return
		}
		// Exercise every accessor; none may panic on a corrupt-but-accepted
		// file, and Write must either serialize or error out.
		file.FuncSymbols()
		file.Section(".text")
		file.Symbol("main")
		_, _, _ = file.RISCVAttributes()
		for _, addr := range []uint64{0, file.Entry, ^uint64(0)} {
			file.SectionAt(addr)
			_, _ = file.ReadAt(addr, 8)
		}
		for _, s := range file.Sections {
			_ = s.Size()
			if s.Flags&SHFAlloc != 0 {
				_, _ = file.ReadAt(s.Addr+s.Size()-1, 2)
			}
		}
		if raw, err := file.Write(); err == nil {
			// A clean re-serialization must itself be loadable.
			if _, err := Read(raw); err != nil {
				t.Fatalf("Write produced an unreadable file: %v", err)
			}
		}
	})
}
