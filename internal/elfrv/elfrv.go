// Package elfrv reads and writes ELF64 object files for the RISC-V
// architecture. It is the file-format substrate under the symtab package
// (Dyninst's SymtabAPI): it exposes sections, symbols, program headers, the
// RISC-V processor-specific e_flags, and the .riscv.attributes section with
// its uleb128-encoded attribute records.
//
// The package implements both directions because this reproduction must
// *produce* RISC-V executables (the assembler and the binary rewriter write
// them) as well as analyze them. Files written by this package are valid
// ELF64/EM_RISCV executables; the tests cross-validate them against the
// standard library's debug/elf reader.
package elfrv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ELF constants used by this package. Names follow the ELF specification.
const (
	ETExec = 2
	ETDyn  = 3

	EMRiscV = 243

	PTLoad = 1

	PFX = 1
	PFW = 2
	PFR = 4

	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTNobits   = 8
	// SHTRISCVAttributes is the processor-specific type of .riscv.attributes.
	SHTRISCVAttributes = 0x70000003

	SHFWrite     = 1
	SHFAlloc     = 2
	SHFExecinstr = 4

	STBLocal  = 0
	STBGlobal = 1

	STTNotype  = 0
	STTObject  = 1
	STTFunc    = 2
	STTSection = 3
)

// RISC-V e_flags bits (RISC-V ELF psABI). The paper's SymtabAPI section
// reads exactly these to learn, without .riscv.attributes, whether the
// binary uses the C extension and which float ABI it targets.
const (
	EFRiscVRVC            = 0x0001
	EFRiscVFloatABIMask   = 0x0006
	EFRiscVFloatABISoft   = 0x0000
	EFRiscVFloatABISingle = 0x0002
	EFRiscVFloatABIDouble = 0x0004
)

// Attribute tags for the "riscv" vendor subsection of .riscv.attributes.
const (
	TagRISCVStackAlign  = 4 // uleb128
	TagRISCVArch        = 5 // NTBS: the target architecture string
	TagRISCVUnalignedOK = 6 // uleb128
	attrFormatVersion   = 'A'
	attrFileSubsection  = 1
)

const pageSize = 0x1000

// Section is one ELF section. For SHT_NOBITS sections Data is nil and
// MemSize carries the size; for all others MemSize is ignored on write
// (len(Data) is used).
type Section struct {
	Name    string
	Type    uint32
	Flags   uint64
	Addr    uint64
	Data    []byte
	MemSize uint64 // for SHT_NOBITS
	Align   uint64
}

// Size returns the section's size in memory.
func (s *Section) Size() uint64 {
	if s.Type == SHTNobits {
		return s.MemSize
	}
	return uint64(len(s.Data))
}

// Symbol is one symbol-table entry.
type Symbol struct {
	Name    string
	Value   uint64
	Size    uint64
	Bind    byte   // STB*
	Type    byte   // STT*
	Section string // name of the defining section; "" = undefined
}

// File is a loaded or to-be-written ELF file.
type File struct {
	Entry    uint64
	Type     uint16 // ETExec or ETDyn
	Flags    uint32 // e_flags
	Sections []*Section
	Symbols  []Symbol
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Symbol returns the named symbol.
func (f *File) Symbol(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// FuncSymbols returns the STT_FUNC symbols sorted by value.
func (f *File) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Type == STTFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// SectionAt returns the alloc section containing the virtual address, or nil.
func (f *File) SectionAt(addr uint64) *Section {
	for _, s := range f.Sections {
		if s.Flags&SHFAlloc == 0 {
			continue
		}
		if addr >= s.Addr && addr < s.Addr+s.Size() {
			return s
		}
	}
	return nil
}

// ReadAt copies bytes at the given virtual address out of the file image.
func (f *File) ReadAt(addr uint64, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("elfrv: negative read length %d at %#x", n, addr)
	}
	s := f.SectionAt(addr)
	if s == nil {
		return nil, fmt.Errorf("elfrv: address %#x not mapped by any alloc section", addr)
	}
	off := addr - s.Addr
	if s.Type == SHTNobits {
		return make([]byte, n), nil
	}
	if off+uint64(n) > uint64(len(s.Data)) {
		return nil, fmt.Errorf("elfrv: read of %d bytes at %#x crosses end of %s", n, addr, s.Name)
	}
	return s.Data[off : off+uint64(n)], nil
}

// ---------------------------------------------------------------------------
// Writing

type strtab struct {
	buf bytes.Buffer
	off map[string]uint32
}

func newStrtab() *strtab {
	t := &strtab{off: map[string]uint32{}}
	t.buf.WriteByte(0)
	return t
}

func (t *strtab) add(s string) uint32 {
	if o, ok := t.off[s]; ok {
		return o
	}
	o := uint32(t.buf.Len())
	t.buf.WriteString(s)
	t.buf.WriteByte(0)
	t.off[s] = o
	return o
}

// Write serializes the file to ELF64 bytes. It lays out one PT_LOAD program
// header per alloc section, placing file offsets congruent to virtual
// addresses modulo the page size so a loader can mmap them directly.
func (f *File) Write() ([]byte, error) {
	type sec struct {
		*Section
		off     uint64
		nameOff uint32
		index   int
	}

	shstr := newStrtab()
	symstr := newStrtab()

	// Section order: null, user sections, .symtab, .strtab, .shstrtab.
	// Alignment sanity first: a corrupt input file (this File may have come
	// from Read over attacker-controlled bytes) can carry alignments like
	// 1<<63 that would balloon the layout into a near-endless zero-fill.
	// Reject those instead of degrading into an effective hang.
	var secs []*sec
	for _, s := range f.Sections {
		if s.Align&(s.Align-1) != 0 {
			return nil, fmt.Errorf("elfrv: section %s alignment %#x is not a power of two", s.Name, s.Align)
		}
		if s.Align > pageSize {
			return nil, fmt.Errorf("elfrv: section %s alignment %#x exceeds the page size", s.Name, s.Align)
		}
		secs = append(secs, &sec{Section: s})
	}

	var loadable []*sec
	for _, s := range secs {
		if s.Flags&SHFAlloc != 0 {
			loadable = append(loadable, s)
		}
	}
	sort.SliceStable(loadable, func(i, j int) bool { return loadable[i].Addr < loadable[j].Addr })

	phnum := len(loadable)
	ehsize := uint64(64)
	phentsize := uint64(56)
	shentsize := uint64(64)

	// Lay out file offsets.
	off := ehsize + uint64(phnum)*phentsize
	for _, s := range loadable {
		// Align the file offset with the virtual address modulo page size.
		if delta := (s.Addr - off) % pageSize; delta != 0 {
			off += delta
		}
		s.off = off
		if s.Type != SHTNobits {
			off += uint64(len(s.Data))
		}
	}
	for _, s := range secs {
		if s.Flags&SHFAlloc != 0 {
			continue
		}
		align := s.Align
		if align == 0 {
			align = 1
		}
		off = (off + align - 1) &^ (align - 1)
		s.off = off
		off += uint64(len(s.Data))
	}

	// Build the symbol table. Index 0 is the null symbol; locals first.
	secIndex := map[string]uint16{}
	for i, s := range secs {
		secIndex[s.Name] = uint16(i + 1)
	}
	syms := append([]Symbol(nil), f.Symbols...)
	sort.SliceStable(syms, func(i, j int) bool {
		return syms[i].Bind == STBLocal && syms[j].Bind != STBLocal
	})
	var symBuf bytes.Buffer
	writeSym := func(nameOff uint32, info, other byte, shndx uint16, value, size uint64) {
		var b [24]byte
		binary.LittleEndian.PutUint32(b[0:], nameOff)
		b[4] = info
		b[5] = other
		binary.LittleEndian.PutUint16(b[6:], shndx)
		binary.LittleEndian.PutUint64(b[8:], value)
		binary.LittleEndian.PutUint64(b[16:], size)
		symBuf.Write(b[:])
	}
	writeSym(0, 0, 0, 0, 0, 0)
	localCount := 1
	for _, s := range syms {
		shndx := uint16(0)
		if s.Section != "" {
			shndx = secIndex[s.Section]
		}
		if s.Bind == STBLocal {
			localCount++
		}
		writeSym(symstr.add(s.Name), s.Bind<<4|s.Type&0xf, 0, shndx, s.Value, s.Size)
	}

	symtabSec := &sec{Section: &Section{Name: ".symtab", Type: SHTSymtab, Align: 8}}
	strtabSec := &sec{Section: &Section{Name: ".strtab", Type: SHTStrtab, Align: 1}}
	shstrtabSec := &sec{Section: &Section{Name: ".shstrtab", Type: SHTStrtab, Align: 1}}
	symtabSec.Data = symBuf.Bytes()
	strtabSec.Data = symstr.buf.Bytes()

	secs = append(secs, symtabSec, strtabSec)
	// Place symtab/strtab after user sections.
	for _, s := range []*sec{symtabSec, strtabSec} {
		off = (off + 7) &^ 7
		s.off = off
		off += uint64(len(s.Data))
	}

	// shstrtab must include every section name, including its own.
	secs = append(secs, shstrtabSec)
	for _, s := range secs {
		s.nameOff = shstr.add(s.Name)
	}
	shstrtabSec.Data = shstr.buf.Bytes()
	shstrtabSec.off = off
	off += uint64(len(shstrtabSec.Data))

	shoff := (off + 7) &^ 7
	shnum := len(secs) + 1 // plus null section

	// A corrupt input can legally reach here with tens of thousands of
	// page-aligned loadable sections whose zero-fill would balloon the
	// output to gigabytes. Bound the total layout instead of writing it.
	const maxWriteSize = 1 << 30
	if end := shoff + uint64(shnum)*shentsize; end > maxWriteSize {
		return nil, fmt.Errorf("elfrv: refusing to write %d-byte layout (cap %d)", end, uint64(maxWriteSize))
	}

	var out bytes.Buffer
	// ELF header.
	ident := [16]byte{0x7f, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*version*/}
	out.Write(ident[:])
	et := f.Type
	if et == 0 {
		et = ETExec
	}
	le := binary.LittleEndian
	w16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); out.Write(b[:]) }
	w32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); out.Write(b[:]) }
	w64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); out.Write(b[:]) }
	w16(et)
	w16(EMRiscV)
	w32(1) // version
	w64(f.Entry)
	w64(ehsize)  // phoff
	w64(shoff)   // shoff
	w32(f.Flags) // e_flags
	w16(uint16(ehsize))
	w16(uint16(phentsize))
	w16(uint16(phnum))
	w16(uint16(shentsize))
	w16(uint16(shnum))
	w16(uint16(shnum - 1)) // shstrndx: last section

	// Program headers.
	for _, s := range loadable {
		flags := uint32(PFR)
		if s.Flags&SHFExecinstr != 0 {
			flags |= PFX
		}
		if s.Flags&SHFWrite != 0 {
			flags |= PFW
		}
		filesz := uint64(len(s.Data))
		if s.Type == SHTNobits {
			filesz = 0
		}
		w32(PTLoad)
		w32(flags)
		w64(s.off)
		w64(s.Addr)
		w64(s.Addr)
		w64(filesz)
		w64(s.Size())
		w64(pageSize)
	}

	// Section contents.
	pad := func(n uint64) {
		if cur := uint64(out.Len()); cur < n {
			out.Write(make([]byte, n-cur))
		}
	}
	writeOrder := append([]*sec(nil), secs...)
	sort.SliceStable(writeOrder, func(i, j int) bool { return writeOrder[i].off < writeOrder[j].off })
	for _, s := range writeOrder {
		if s.Type == SHTNobits || len(s.Data) == 0 {
			continue
		}
		if uint64(out.Len()) > s.off {
			return nil, fmt.Errorf("elfrv: layout error: section %s offset %#x < current %#x", s.Name, s.off, out.Len())
		}
		pad(s.off)
		out.Write(s.Data)
	}

	// Section headers.
	pad(shoff)
	// Null section header.
	out.Write(make([]byte, shentsize))
	symtabIdx := 0
	for i, s := range secs {
		if s.Name == ".strtab" {
			symtabIdx = i // link target recorded below via name order
		}
	}
	_ = symtabIdx
	strtabShndx := uint32(0)
	for i, s := range secs {
		if s.Name == ".strtab" {
			strtabShndx = uint32(i + 1)
		}
	}
	for _, s := range secs {
		w32(s.nameOff)
		w32(s.Type)
		w64(s.Flags)
		w64(s.Addr)
		w64(s.off)
		w64(s.Size())
		link, info, entsize := uint32(0), uint32(0), uint64(0)
		if s.Type == SHTSymtab {
			link = strtabShndx
			info = uint32(localCount)
			entsize = 24
		}
		w32(link)
		w32(info)
		align := s.Align
		if align == 0 {
			align = 1
		}
		w64(align)
		w64(entsize)
	}
	return out.Bytes(), nil
}

// ---------------------------------------------------------------------------
// Reading

var errBadELF = errors.New("elfrv: not a valid ELF64 RISC-V file")

// Read parses an ELF64 little-endian file produced by this package or any
// conforming toolchain.
func Read(data []byte) (*File, error) {
	if len(data) < 64 || data[0] != 0x7f || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, fmt.Errorf("%w: bad magic", errBadELF)
	}
	if data[4] != 2 || data[5] != 1 {
		return nil, fmt.Errorf("%w: not ELF64 little-endian", errBadELF)
	}
	le := binary.LittleEndian
	machine := le.Uint16(data[18:])
	if machine != EMRiscV {
		return nil, fmt.Errorf("%w: machine %d is not EM_RISCV", errBadELF, machine)
	}
	f := &File{
		Type:  le.Uint16(data[16:]),
		Entry: le.Uint64(data[24:]),
		Flags: le.Uint32(data[48:]),
	}
	shoff := le.Uint64(data[40:])
	shentsize := uint64(le.Uint16(data[58:]))
	shnum := uint64(le.Uint16(data[60:]))
	shstrndx := uint64(le.Uint16(data[62:]))
	if shoff == 0 || shnum == 0 {
		return f, nil
	}
	// inRange reports whether [off, off+size) lies inside the file, with
	// overflow-safe arithmetic (corrupted headers routinely wrap uint64).
	inRange := func(off, size uint64) bool {
		return off <= uint64(len(data)) && size <= uint64(len(data))-off
	}
	if shentsize < 64 || !inRange(shoff, shnum*shentsize) || shnum*shentsize/shentsize != shnum {
		return nil, fmt.Errorf("%w: section headers out of range", errBadELF)
	}
	type rawShdr struct {
		name, typ              uint32
		flags, addr, off, size uint64
		link, info             uint32
		align, entsize         uint64
	}
	shdrs := make([]rawShdr, shnum)
	for i := uint64(0); i < shnum; i++ {
		b := data[shoff+i*shentsize:]
		shdrs[i] = rawShdr{
			name: le.Uint32(b), typ: le.Uint32(b[4:]),
			flags: le.Uint64(b[8:]), addr: le.Uint64(b[16:]),
			off: le.Uint64(b[24:]), size: le.Uint64(b[32:]),
			link: le.Uint32(b[40:]), info: le.Uint32(b[44:]),
			align: le.Uint64(b[48:]), entsize: le.Uint64(b[56:]),
		}
	}
	getStr := func(tab []byte, off uint32) string {
		if uint32(len(tab)) <= off {
			return ""
		}
		end := bytes.IndexByte(tab[off:], 0)
		if end < 0 {
			return string(tab[off:])
		}
		return string(tab[off : int(off)+end])
	}
	var shstrs []byte
	if shstrndx < shnum {
		h := shdrs[shstrndx]
		if h.typ != SHTNobits && inRange(h.off, h.size) {
			shstrs = data[h.off : h.off+h.size]
		}
	}
	names := make([]string, shnum)
	for i := uint64(1); i < shnum; i++ {
		h := shdrs[i]
		names[i] = getStr(shstrs, h.name)
		sec := &Section{
			Name: names[i], Type: h.typ, Flags: h.flags,
			Addr: h.addr, Align: h.align,
		}
		if h.typ == SHTNobits {
			sec.MemSize = h.size
		} else if inRange(h.off, h.size) {
			sec.Data = append([]byte(nil), data[h.off:h.off+h.size]...)
		}
		f.Sections = append(f.Sections, sec)
	}
	// Symbols.
	for i := uint64(1); i < shnum; i++ {
		h := shdrs[i]
		if h.typ != SHTSymtab || h.entsize == 0 {
			continue
		}
		var strs []byte
		if uint64(h.link) < shnum {
			sh := shdrs[h.link]
			if sh.typ != SHTNobits && inRange(sh.off, sh.size) {
				strs = data[sh.off : sh.off+sh.size]
			}
		}
		if h.entsize < 24 || !inRange(h.off, h.size) {
			continue // corrupted symbol table: skip rather than misparse
		}
		n := h.size / h.entsize
		for j := uint64(1); j < n; j++ {
			off := h.off + j*h.entsize
			if !inRange(off, 24) {
				break
			}
			b := data[off:]
			nameOff := le.Uint32(b)
			info := b[4]
			shndx := le.Uint16(b[6:])
			sym := Symbol{
				Name:  getStr(strs, nameOff),
				Value: le.Uint64(b[8:]),
				Size:  le.Uint64(b[16:]),
				Bind:  info >> 4,
				Type:  info & 0xf,
			}
			if shndx > 0 && uint64(shndx) < shnum {
				sym.Section = names[shndx]
			}
			f.Symbols = append(f.Symbols, sym)
		}
	}
	return f, nil
}
