package dbi

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/oracle"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// probeMode is one row of the equivalence matrix's probe dimension.
type probeMode int

const (
	probeNone probeMode = iota
	probeEntries
	probeInstPoints // a point on a mid-block instruction of each function
	probeRemovedMid // entry probes attached, then removed mid-run
)

func (m probeMode) String() string {
	switch m {
	case probeNone:
		return "noprobe"
	case probeEntries:
		return "entry"
	case probeInstPoints:
		return "instpoint"
	case probeRemovedMid:
		return "removed"
	}
	return "?"
}

// instPoints returns one mid-function instruction address per named
// function: the first decoded instruction that is not the entry itself —
// never the point the entry-probe mode uses.
func instPoints(t *testing.T, f *elfrv.File, funcs []string) []uint64 {
	t.Helper()
	bin, err := core.FromFile(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var out []uint64
	for _, name := range funcs {
		fn, err := bin.FindFunction(name)
		if err != nil {
			t.Fatalf("find %s: %v", name, err)
		}
		found := false
		for _, b := range fn.Blocks {
			for _, in := range b.Insts {
				if in.Addr != fn.Entry {
					out = append(out, in.Addr)
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("%s has no instruction beyond its entry", name)
		}
	}
	return out
}

// observeMatrix runs f under one matrix cell and captures the oracle
// observables. Counter reads are NOT pinned: with virtualization on they
// must be native-transparent, and none of the suite workloads read them
// anyway — the cell with NoCounterVirt documents exactly that.
func observeMatrix(t *testing.T, f *elfrv.File, addrs []uint64, mode probeMode, noVirt bool) *oracle.Observation {
	t.Helper()
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	cpu := p.CPU()
	var out bytes.Buffer
	o := &oracle.Observation{}
	cpu.Stdout = &out
	cpu.TimeFn = func() uint64 { return pinnedClock }
	cpu.SyscallTrace = func(num, a0, a1, a2, ret uint64) {
		o.Trace = append(o.Trace, oracle.SyscallRecord{Num: num, A0: a0, A1: a1, A2: a2, Ret: ret})
	}
	var ev proc.Event
	if mode == probeNone && noVirt {
		// The native baseline cell.
		if ev, err = p.ContinueBudget(runBudget); err != nil {
			t.Fatalf("native run: %v", err)
		}
	} else {
		e, err := Attach(p, f, Options{NoCounterVirt: noVirt})
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		for _, a := range addrs {
			if err := e.ProbeAt(a, snippet.Empty()); err != nil {
				t.Fatalf("probe at %#x: %v", a, err)
			}
		}
		if mode == probeRemovedMid {
			// Run a slice so the probes fire inside live translations, then
			// patch them out and finish. Removal can race the PC sitting
			// inside a splice; nudge forward and retry.
			if ev, err = e.ContinueBudget(500); err != nil {
				t.Fatalf("pre-removal slice: %v", err)
			}
			for _, a := range addrs {
				for ev.Kind == proc.EventBudget {
					if err = e.RemoveProbeAt(a); err == nil {
						break
					}
					if !strings.Contains(err.Error(), "is executing") {
						t.Fatalf("remove at %#x: %v", a, err)
					}
					if ev, err = e.ContinueBudget(50); err != nil {
						t.Fatalf("removal nudge: %v", err)
					}
				}
			}
		}
		if ev.Kind != proc.EventExit {
			if ev, err = e.ContinueBudget(runBudget); err != nil {
				t.Fatalf("dbi run: %v", err)
			}
		}
	}
	if ev.Kind != proc.EventExit {
		t.Fatalf("run stopped with %v (addr=%#x, err=%v, pc=%#x)", ev.Kind, ev.Addr, ev.Err, p.PC())
	}
	h := sha256.New()
	for _, s := range oracle.WritableSections(f) {
		b, err := cpu.ReadMem(s.Addr, int(s.Size()))
		if err != nil {
			t.Fatalf("hashing %s: %v", s.Name, err)
		}
		h.Write(b)
	}
	copy(o.MemHash[:], h.Sum(nil))
	o.ExitCode = p.ExitCode()
	o.Stdout = out.Bytes()
	o.Steps = cpu.Instret
	return o
}

// TestDBIEquivalenceMatrix sweeps {every workload} × {no probes, entry
// probes, instruction points, probe-removed-mid-run} × {counter
// virtualization on, off} and requires every cell's observables — exit
// code, stdout, syscall trace, final writable memory — to match the native
// run bit-for-bit.
func TestDBIEquivalenceMatrix(t *testing.T) {
	for _, prog := range workload.Programs() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			f, err := asm.Assemble(prog.Source, asm.Options{})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			native := observeNative(t, f)
			if native.ExitCode != prog.ExitCode {
				t.Fatalf("native exit %d, workload expects %d", native.ExitCode, prog.ExitCode)
			}
			var entries []uint64
			for _, fn := range prog.Funcs {
				sym, ok := f.Symbol(fn)
				if !ok {
					t.Fatalf("no symbol %s", fn)
				}
				entries = append(entries, sym.Value)
			}
			points := instPoints(t, f, prog.Funcs)
			for _, mode := range []probeMode{probeNone, probeEntries, probeInstPoints, probeRemovedMid} {
				addrs := entries
				if mode == probeNone {
					addrs = nil
				} else if mode == probeInstPoints {
					addrs = points
				}
				for _, noVirt := range []bool{false, true} {
					name := fmt.Sprintf("%s/virt=%v", mode, !noVirt)
					got := observeMatrix(t, f, addrs, mode, noVirt)
					compareObs(t, name, native, got)
				}
			}
		})
	}
}
