package dbi

import (
	"encoding/binary"

	"rvdyn/internal/emu"
	"rvdyn/internal/patch"
	"rvdyn/internal/riscv"
)

// Inline indirect-branch lookup (IBL): instead of round-tripping the engine
// on every jalr, each indirect exit probes a per-engine hash table mapping
// original target PCs to translated cache entries, entirely in guest code.
// Only a miss (first sight of a target, or an entry severed by
// invalidation) reaches the engine, which refills the table — so hot
// indirect edges (returns above all) stay in the cache like chained direct
// edges do. This is the MAMBO-V/DynamoRIO "indirect branch lookup" shape.

const (
	// iblEntries is the lookup-table size (power of two; the stub masks
	// the halfword-granular PC with iblEntries-1).
	iblEntries = 1024
	// iblEntrySize is one {orig, cache} pair, little-endian.
	iblEntrySize = 16
	// iblRegionSize is the mapped table region.
	iblRegionSize = iblEntries * iblEntrySize
)

// iblScratch picks the three caller-saved temporaries the lookup stub may
// clobber (it saves and restores them through the DBI scratch CSRs, but
// they must not alias the jalr's own operands).
func iblScratch(rs1, rd riscv.Reg) [3]riscv.Reg {
	cands := [5]riscv.Reg{riscv.X5, riscv.X6, riscv.X7, riscv.X28, riscv.X29}
	var out [3]riscv.Reg
	n := 0
	for _, r := range cands {
		if r == rs1 || r == rd {
			continue
		}
		out[n] = r
		n++
		if n == 3 {
			return out
		}
	}
	return out
}

// emitIBL lays out the inline-lookup stub replacing the jalr in. Shape
// (sA/sB/sC are the scratch picks, all parcels 4 bytes):
//
//	csrrw x0, 0x7C0..2, sA/sB/sC   save scratch
//	addi  sA, rs1, imm             original target (before the link write —
//	andi  sA, sA, -2                rd may alias rs1)
//	[li rd, origNext]              link = ORIGINAL return address
//	csrrw x0, 0x7C3, sA            stash target for the engine/dbi.jt
//	srli sB, sA, 1; andi sB, sB, 1023; slli sB, sB, 4
//	li   sC, tableBase
//	add  sB, sB, sC
//	ld   sC, 8(sB)                 entry.cache — loaded BEFORE entry.orig
//	ld   sB, 0(sB)                 entry.orig
//	bne  sB, sA, miss
//	csrrw x0, 0x7C3, sC            hit: stash entry.cache instead
//	csrrs sA/sB/sC, 0x7C0..2, x0   restore scratch
//	dbi.jt                          jump to 0x7C3, apply the hit delta
//
// miss:	csrrs ×3 restore; ebreak   engine resolves via 0x7C3 + missFix
//
// The cache field is read before the orig field on purpose: a budget stop
// can park the guest between the two loads, and the engine may sever or
// refill the entry host-side before resuming. Reading cache first means any
// such interleaving leaves the compare looking at the NEWER orig — a
// mismatch falls back to the engine (always correct), and a match can at
// worst pair the new orig with the pre-sever cache address, whose dead
// fragment's bytes are still intact (the same stale-but-consistent
// execution a probe-invalidation drain performs). The reverse order could
// pair a stale matching orig with a zeroed cache and jump to 0.
//
// The zero entry makes a jalr to address 0 "hit" with cache address 0 —
// the next fetch faults at PC 0 exactly as the native wild jump would,
// with the compensation already exact at that boundary.
func (e *Engine) emitIBL(in riscv.Inst, emit func(riscv.Inst) error, stub func(exitStub) *exitStub) error {
	s := iblScratch(in.Rs1, in.Rd)
	sA, sB, sC := s[0], s[1], s[2]
	reg := func(mn riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64) riscv.Inst {
		return riscv.Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone, Imm: imm}
	}
	save := func(csr uint16, r riscv.Reg) riscv.Inst {
		return riscv.Inst{Mn: riscv.MnCSRRW, Rd: riscv.X0, Rs1: r,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}
	}
	restore := func(r riscv.Reg, csr uint16) riscv.Inst {
		return riscv.Inst{Mn: riscv.MnCSRRS, Rd: r, Rs1: riscv.X0,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}
	}

	pre := []riscv.Inst{
		save(0x7C0, sA), save(0x7C1, sB), save(0x7C2, sC),
		reg(riscv.MnADDI, sA, in.Rs1, riscv.RegNone, in.Imm),
		reg(riscv.MnANDI, sA, sA, riscv.RegNone, -2),
	}
	if in.Rd != riscv.X0 {
		pre = append(pre, patch.MaterializeAbs(in.Rd, int64(in.Next()))...)
	}
	pre = append(pre,
		save(0x7C3, sA),
		reg(riscv.MnSRLI, sB, sA, riscv.RegNone, 1),
		reg(riscv.MnANDI, sB, sB, riscv.RegNone, iblEntries-1),
		reg(riscv.MnSLLI, sB, sB, riscv.RegNone, 4),
	)
	pre = append(pre, patch.MaterializeAbs(sC, int64(e.iblBase))...)
	hit := []riscv.Inst{
		save(0x7C3, sC),
		restore(sA, 0x7C0), restore(sB, 0x7C1), restore(sC, 0x7C2),
	}
	pre = append(pre,
		reg(riscv.MnADD, sB, sB, sC, 0),
		reg(riscv.MnLD, sC, sB, riscv.RegNone, 8), // entry.cache first — see above
		reg(riscv.MnLD, sB, sB, riscv.RegNone, 0), // entry.orig
		// Hop over the hit tail (len(hit)+1 parcels incl. dbi.jt) on miss.
		reg(riscv.MnBNE, riscv.RegNone, sB, sA, int64(len(hit)+2)*4),
	)
	miss := []riscv.Inst{restore(sA, 0x7C0), restore(sB, 0x7C1), restore(sC, 0x7C2)}

	jalrCost := e.cost(in.Mn)
	preN, preC := int64(len(pre)), e.sumCost(pre)
	hitN, hitC := int64(len(hit)), e.sumCost(hit)
	missN, missC := int64(len(miss)), e.sumCost(miss)

	// Hit path: pre (bne not taken) + hit tail + the dbi.jt itself retire
	// against the one native jalr. dbi.jt applies this delta on retire.
	idx, err := e.allocDelta(emu.CompDelta{
		Insts:  preN + hitN + 1 - 1,
		Cycles: preC + hitC + e.cost(riscv.MnDBIJT) - jalrCost,
	})
	if err != nil {
		return err
	}
	// Miss path: pre (bne taken, paying the penalty) + restore tail retire,
	// then the CPU stops before the ebreak; the engine applies this fixup.
	missFix := emu.CompDelta{
		Insts:  preN + missN - 1,
		Cycles: preC + missC + int64(e.p.CPU().Model.BranchTakenPenalty) - jalrCost,
	}

	for _, m := range pre {
		if err := emit(m); err != nil {
			return err
		}
	}
	for _, m := range hit {
		if err := emit(m); err != nil {
			return err
		}
	}
	if err := emit(riscv.Inst{Mn: riscv.MnDBIJT, Rd: riscv.X0, Rs1: riscv.X0,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: int64(idx) - 2048}); err != nil {
		return err
	}
	for _, m := range miss {
		if err := emit(m); err != nil {
			return err
		}
	}
	st := stub(exitStub{kind: stubIndirect})
	st.missFix = missFix
	return nil
}

// iblInsert fills the lookup-table slot for tgt with t's cache entry and
// records the slot on t so invalidating t severs it. A colliding entry is
// simply overwritten (its owner still lists the slot; severing it later
// zeroes whatever is there — a harmless extra miss).
func (e *Engine) iblInsert(tgt uint64, t *translation) error {
	slot := (tgt >> 1) & (iblEntries - 1)
	var b [iblEntrySize]byte
	binary.LittleEndian.PutUint64(b[0:], tgt)
	binary.LittleEndian.PutUint64(b[8:], t.cache)
	if err := e.p.WriteMem(e.iblBase+slot*iblEntrySize, b[:]); err != nil {
		return err
	}
	t.iblSlots = append(t.iblSlots, slot)
	return nil
}

// iblSever zeroes every lookup-table slot targeting t.
func (e *Engine) iblSever(t *translation) error {
	var zero [iblEntrySize]byte
	for _, slot := range t.iblSlots {
		if err := e.p.WriteMem(e.iblBase+slot*iblEntrySize, zero[:]); err != nil {
			return err
		}
	}
	t.iblSlots = nil
	return nil
}

// iblZero clears the whole lookup table (attach and full flush).
func (e *Engine) iblZero() error {
	return e.p.WriteMem(e.iblBase, make([]byte, iblRegionSize))
}
