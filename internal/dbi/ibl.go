package dbi

import (
	"encoding/binary"

	"rvdyn/internal/emu"
	"rvdyn/internal/patch"
	"rvdyn/internal/riscv"
)

// Inline indirect-branch lookup (IBL): instead of round-tripping the engine
// on every jalr, each indirect exit probes a per-engine hash table mapping
// original target PCs to translated cache entries, entirely in guest code.
// Only a miss (first sight of a target, or an entry severed by
// invalidation) reaches the engine, which refills the table — so hot
// indirect edges (returns above all) stay in the cache like chained direct
// edges do. This is the MAMBO-V/DynamoRIO "indirect branch lookup" shape.

const (
	// iblEntries is the lookup-table size (power of two; the stub masks
	// the halfword-granular PC with iblEntries-1).
	iblEntries = 1024
	// iblEntrySize is one {orig, cache} pair, little-endian.
	iblEntrySize = 16
	// iblRegionSize is the mapped table region.
	iblRegionSize = iblEntries * iblEntrySize
	// ibcEntries caps the per-site inline-cache slots (IBC): each
	// translated jalr site owns one {orig, cache} pair it compares before
	// the hash probe. Slot index 0 is reserved — it means "untagged" in
	// the dbi.jt site field — so ibcEntries-1 sites get slots; sites past
	// the cap fall back to hash-only lookup. A full flush reclaims every
	// slot.
	ibcEntries    = 1024
	ibcRegionSize = ibcEntries * iblEntrySize
	// ibcMaxTargets bounds the per-site target profile; targets past the
	// cap are not counted (a site that polymorphic gains nothing from a
	// one-entry cache anyway).
	ibcMaxTargets = 16
)

// iblScratch picks the three caller-saved temporaries the lookup stub may
// clobber (it saves and restores them through the DBI scratch CSRs, but
// they must not alias the jalr's own operands).
func iblScratch(rs1, rd riscv.Reg) [3]riscv.Reg {
	cands := [5]riscv.Reg{riscv.X5, riscv.X6, riscv.X7, riscv.X28, riscv.X29}
	var out [3]riscv.Reg
	n := 0
	for _, r := range cands {
		if r == rs1 || r == rd {
			continue
		}
		out[n] = r
		n++
		if n == 3 {
			return out
		}
	}
	return out
}

// emitIBL lays out the inline-lookup stub replacing the jalr in. Shape
// (sA/sB/sC are the scratch picks, all parcels 4 bytes):
//
//	csrrw x0, 0x7C0..2, sA/sB/sC   save scratch
//	addi  sA, rs1, imm             original target (before the link write —
//	andi  sA, sA, -2                rd may alias rs1)
//	[li rd, origNext]              link = ORIGINAL return address
//	csrrw x0, 0x7C3, sA            stash target for the engine/dbi.jt
//
//	-- per-site inline cache (IBC), when a slot is available --
//	li   sB, siteSlot              this jalr's private {orig, cache} pair
//	ld   sC, 8(sB)                 slot.cache — loaded BEFORE slot.orig
//	ld   sB, 0(sB)                 slot.orig
//	bne  sB, sA, probe
//	csrrw x0, 0x7C3, sC            IBC hit: stash slot.cache
//	csrrs sA/sB/sC, 0x7C0..2, x0   restore scratch
//	dbi.jt                          (IBC-marked delta)
//
// probe:
//
//	srli sB, sA, 1; andi sB, sB, 1023; slli sB, sB, 4
//	li   sC, tableBase
//	add  sB, sB, sC
//	ld   sC, 8(sB)                 entry.cache — loaded BEFORE entry.orig
//	ld   sB, 0(sB)                 entry.orig
//	bne  sB, sA, miss
//	csrrw x0, 0x7C3, sC            hit: stash entry.cache instead
//	csrrs sA/sB/sC, 0x7C0..2, x0   restore scratch
//	dbi.jt                          jump to 0x7C3, apply the hit delta
//
// miss:	csrrs ×3 restore; ebreak   engine resolves via 0x7C3 + missFix
//
// The IBC rung is the profile-guided fast path: the site's slot holds the
// single hottest observed target, so the hot case pays one direct-addressed
// compare instead of the hash-index arithmetic. The profile comes from two
// feeds — the target the engine resolves on each miss round trip, and the
// DBIComp.JTProf ring the CPU fills on every tagged dbi.jt retirement (both
// dbi.jt markers of a site carry its slot index in their rd/rs1 fields,
// which are architecturally dead there). The engine drains the ring at each
// re-entry and re-steers any slot whose installed target has been outcounted,
// so a site that warms up on a minority target converges to its majority
// one. A polymorphic site's other targets miss the IBC compare and resolve
// through the shared table as before.
//
// The cache field is read before the orig field on purpose: a budget stop
// can park the guest between the two loads, and the engine may sever or
// refill the entry host-side before resuming. Reading cache first means any
// such interleaving leaves the compare looking at the NEWER orig — a
// mismatch falls back to the engine (always correct), and a match can at
// worst pair the new orig with the pre-sever cache address, whose dead
// fragment's bytes are still intact (the same stale-but-consistent
// execution a probe-invalidation drain performs). The reverse order could
// pair a stale matching orig with a zeroed cache and jump to 0.
//
// The zero entry makes a jalr to address 0 "hit" with cache address 0 —
// the next fetch faults at PC 0 exactly as the native wild jump would,
// with the compensation already exact at that boundary.
func (e *Engine) emitIBL(in riscv.Inst, emit func(riscv.Inst) error, stub func(exitStub) *exitStub, base func() uint64) error {
	s := iblScratch(in.Rs1, in.Rd)
	sA, sB, sC := s[0], s[1], s[2]
	reg := func(mn riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64) riscv.Inst {
		return riscv.Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone, Imm: imm}
	}
	save := func(csr uint16, r riscv.Reg) riscv.Inst {
		return riscv.Inst{Mn: riscv.MnCSRRW, Rd: riscv.X0, Rs1: r,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}
	}
	restore := func(r riscv.Reg, csr uint16) riscv.Inst {
		return riscv.Inst{Mn: riscv.MnCSRRS, Rd: r, Rs1: riscv.X0,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}
	}

	// Common prefix: save scratch, compute the original target, commit the
	// link register, stash the target for the engine/dbi.jt.
	pre := []riscv.Inst{
		save(0x7C0, sA), save(0x7C1, sB), save(0x7C2, sC),
		reg(riscv.MnADDI, sA, in.Rs1, riscv.RegNone, in.Imm),
		reg(riscv.MnANDI, sA, sA, riscv.RegNone, -2),
	}
	if in.Rd != riscv.X0 {
		pre = append(pre, patch.MaterializeAbs(in.Rd, int64(in.Next()))...)
	}
	pre = append(pre, save(0x7C3, sA))

	// The hit tail (shared shape for both rungs): stash the translated
	// target and restore scratch; the dbi.jt follows.
	hit := []riscv.Inst{
		save(0x7C3, sC),
		restore(sA, 0x7C0), restore(sB, 0x7C1), restore(sC, 0x7C2),
	}
	// A failed compare hops over the hit tail + dbi.jt to the next rung.
	hop := int64(len(hit)+2) * 4

	// Per-site inline cache: compare this jalr's private pair first.
	ibcSlot := e.ibcAlloc()
	var site uint16 // slot index, the dbi.jt profile tag (0: untagged)
	if ibcSlot != 0 {
		site = uint16((ibcSlot - e.ibcBase) / iblEntrySize)
	}
	var ibc []riscv.Inst
	if ibcSlot != 0 {
		ibc = append(ibc, patch.MaterializeAbs(sB, int64(ibcSlot))...)
		ibc = append(ibc,
			reg(riscv.MnLD, sC, sB, riscv.RegNone, 8), // slot.cache first — see above
			reg(riscv.MnLD, sB, sB, riscv.RegNone, 0), // slot.orig
			reg(riscv.MnBNE, riscv.RegNone, sB, sA, hop),
		)
	}

	// Hash probe rung.
	probe := []riscv.Inst{
		reg(riscv.MnSRLI, sB, sA, riscv.RegNone, 1),
		reg(riscv.MnANDI, sB, sB, riscv.RegNone, iblEntries-1),
		reg(riscv.MnSLLI, sB, sB, riscv.RegNone, 4),
	}
	probe = append(probe, patch.MaterializeAbs(sC, int64(e.iblBase))...)
	probe = append(probe,
		reg(riscv.MnADD, sB, sB, sC, 0),
		reg(riscv.MnLD, sC, sB, riscv.RegNone, 8), // entry.cache first — see above
		reg(riscv.MnLD, sB, sB, riscv.RegNone, 0), // entry.orig
		reg(riscv.MnBNE, riscv.RegNone, sB, sA, hop),
	)
	miss := []riscv.Inst{restore(sA, 0x7C0), restore(sB, 0x7C1), restore(sC, 0x7C2)}

	jalrCost := e.cost(in.Mn)
	jtCost := e.cost(riscv.MnDBIJT)
	penalty := int64(e.p.CPU().Model.BranchTakenPenalty)
	preN, preC := int64(len(pre)), e.sumCost(pre)
	ibcN, ibcC := int64(len(ibc)), e.sumCost(ibc)
	hitN, hitC := int64(len(hit)), e.sumCost(hit)
	probeN, probeC := int64(len(probe)), e.sumCost(probe)
	missN, missC := int64(len(miss)), e.sumCost(miss)
	var ibcPen int64
	if ibcN > 0 {
		ibcPen = penalty // the IBC bne taken on the way past the site cache
	}

	// Hash-hit path: pre + a failed IBC compare + probe (bne not taken) +
	// hit tail + the dbi.jt itself retire against the one native jalr.
	iblIdx, err := e.allocDelta(emu.CompDelta{
		Insts:  preN + ibcN + probeN + hitN + 1 - 1,
		Cycles: preC + ibcC + ibcPen + probeC + hitC + jtCost - jalrCost,
		JT:     emu.DBIJTIBL,
	})
	if err != nil {
		return err
	}
	// Miss path: both compares taken, then the restore tail; the CPU stops
	// before the ebreak and the engine applies this fixup.
	missFix := emu.CompDelta{
		Insts:  preN + ibcN + probeN + missN - 1,
		Cycles: preC + ibcC + ibcPen + probeC + penalty + missC - jalrCost,
	}

	emitAll := func(ms []riscv.Inst) error {
		for _, m := range ms {
			if err := emit(m); err != nil {
				return err
			}
		}
		return nil
	}
	jt := func(idx int) error {
		// rd/rs1 are dead at the dbi.jt (scratch is restored); they carry
		// the site tag for the CPU-side target profile.
		return emit(riscv.Inst{Mn: riscv.MnDBIJT,
			Rd: riscv.Reg(site & 31), Rs1: riscv.Reg(site >> 5),
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: int64(idx) - 2048})
	}

	if err := emitAll(pre); err != nil {
		return err
	}
	var ibcLo, ibcHi uint64
	if ibcN > 0 {
		// IBC-hit path: pre + compare (bne not taken) + hit tail + dbi.jt.
		ibcIdx, err := e.allocDelta(emu.CompDelta{
			Insts:  preN + ibcN + hitN + 1 - 1,
			Cycles: preC + ibcC + hitC + jtCost - jalrCost,
			JT:     emu.DBIJTIBC,
		})
		if err != nil {
			return err
		}
		ibcLo = base()
		if err := emitAll(ibc); err != nil {
			return err
		}
		if err := emitAll(hit); err != nil {
			return err
		}
		if err := jt(ibcIdx); err != nil {
			return err
		}
		ibcHi = base()
	}
	if err := emitAll(probe); err != nil {
		return err
	}
	if err := emitAll(hit); err != nil {
		return err
	}
	if err := jt(iblIdx); err != nil {
		return err
	}
	if err := emitAll(miss); err != nil {
		return err
	}
	st := stub(exitStub{kind: stubIndirect})
	st.missFix = missFix
	st.ibcSlot = ibcSlot
	st.ibcIdx = site
	st.ibcLo, st.ibcHi = ibcLo, ibcHi
	if site != 0 {
		e.ibcStubs[site] = st
	}
	return nil
}

// iblInsert fills the lookup-table slot for tgt with t's cache entry and
// records the slot on t so invalidating t severs it. A colliding entry is
// simply overwritten (its owner still lists the slot; severing it later
// zeroes whatever is there — a harmless extra miss).
func (e *Engine) iblInsert(tgt uint64, t *translation) error {
	slot := (tgt >> 1) & (iblEntries - 1)
	var b [iblEntrySize]byte
	binary.LittleEndian.PutUint64(b[0:], tgt)
	binary.LittleEndian.PutUint64(b[8:], t.cache)
	if err := e.p.WriteMem(e.iblBase+slot*iblEntrySize, b[:]); err != nil {
		return err
	}
	t.iblSlots = append(t.iblSlots, slot)
	return nil
}

// iblSever zeroes every lookup-table slot targeting t.
func (e *Engine) iblSever(t *translation) error {
	var zero [iblEntrySize]byte
	for _, slot := range t.iblSlots {
		if err := e.p.WriteMem(e.iblBase+slot*iblEntrySize, zero[:]); err != nil {
			return err
		}
	}
	t.iblSlots = nil
	return nil
}

// iblZero clears the whole lookup table (attach and full flush).
func (e *Engine) iblZero() error {
	return e.p.WriteMem(e.iblBase, make([]byte, iblRegionSize))
}

// ibcAlloc hands out the next per-site inline-cache slot address, or 0 when
// the region is exhausted (the site then emits a hash-only stub). Slots of
// invalidated translations leak until the next full flush — acceptable,
// since a flush is also the only event that reuses cache addresses.
func (e *Engine) ibcAlloc() uint64 {
	if e.ibcNext+iblEntrySize > e.ibcBase+ibcRegionSize {
		return 0
	}
	a := e.ibcNext
	e.ibcNext += iblEntrySize
	return a
}

// ibcNote feeds one resolved (site, target) observation into the site's
// profile and steers the slot toward the argmax: an empty slot takes the
// target immediately (count 1 beats nothing); a filled slot is rewritten
// only when the new target has strictly outcounted the installed one, so a
// site that warmed up on a minority target (the first return out of a deep
// recursion, say) converges to its majority target while a genuinely
// monomorphic site never rewrites at all.
//
// The one unsafe moment for a rewrite is the guest parked inside this
// site's own compare sequence with slot.cache already loaded: replacing
// the pair would let the resumed compare match the new orig and jump to
// the stale cache word. Installs are deferred (counts kept) while the PC
// is in [ibcLo, ibcHi); every other site's compare reads different memory,
// and sever's zeroing is safe in that window because a zero orig never
// matches.
func (e *Engine) ibcNote(st *exitStub, tgt uint64, t *translation) error {
	if st.ibcSlot == 0 {
		return nil
	}
	if st.ibcCounts == nil {
		st.ibcCounts = make(map[uint64]uint32, 4)
	}
	if _, ok := st.ibcCounts[tgt]; !ok && len(st.ibcCounts) >= ibcMaxTargets {
		return nil
	}
	st.ibcCounts[tgt]++
	if st.ibcFilled && (tgt == st.ibcTarget || st.ibcCounts[tgt] <= st.ibcCounts[st.ibcTarget]) {
		return nil
	}
	if pc := e.p.PC(); pc >= st.ibcLo && pc < st.ibcHi {
		return nil
	}
	var b [iblEntrySize]byte
	binary.LittleEndian.PutUint64(b[0:], tgt)
	binary.LittleEndian.PutUint64(b[8:], t.cache)
	if err := e.p.WriteMem(st.ibcSlot, b[:]); err != nil {
		return err
	}
	st.ibcFilled = true
	st.ibcTarget = tgt
	t.ibcSites = append(t.ibcSites, st)
	return nil
}

// ibcSever zeroes every site slot caching t and re-arms those sites for
// reinstall on their next observation. The target profiles survive, so
// even if the first reinstall grabs a minority arrival, the standing
// counts out-vote it as soon as the majority target is observed again.
func (e *Engine) ibcSever(t *translation) error {
	var zero [iblEntrySize]byte
	for _, st := range t.ibcSites {
		if err := e.p.WriteMem(st.ibcSlot, zero[:]); err != nil {
			return err
		}
		st.ibcFilled = false
		st.ibcTarget = 0
	}
	t.ibcSites = nil
	return nil
}

// ibcZero clears the whole site-cache region, rewinds the slot cursor past
// the reserved index-0 slot, and drops the site registry (attach and full
// flush — every stub dies with the cache, so no site keeps a stale slot
// address, and any undrained profile samples are discarded by the caller
// advancing jtSeen).
func (e *Engine) ibcZero() error {
	e.ibcNext = e.ibcBase + iblEntrySize
	e.ibcStubs = make([]*exitStub, ibcEntries)
	return e.p.WriteMem(e.ibcBase, make([]byte, ibcRegionSize))
}
