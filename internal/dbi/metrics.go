package dbi

import "rvdyn/internal/obs"

// Metrics holds the DBI engine's observability counters. The zero value
// (nil handles) disables collection — obs counters discard increments on nil
// receivers — so the engine never branches on enablement.
type Metrics struct {
	// Translations counts basic blocks translated into the code cache
	// (including retranslations after invalidation).
	Translations *obs.Counter
	// ChainPatches counts exit stubs rewritten into direct jumps to an
	// in-cache target; after the patch, that edge never leaves the cache
	// again, so steady-state loops are invisible to every counter here.
	ChainPatches *obs.Counter
	// ChainHits counts cache exits whose target was already translated —
	// block reuse, the warm-path complement of Translations.
	ChainHits *obs.Counter
	// Invalidations counts translations dropped because the process stored
	// into their source bytes (self-modifying code) or a probe was attached
	// over them.
	Invalidations *obs.Counter
	// IndirectExits counts indirect-jump (jalr) exits that reached the
	// engine; with inline lookup these are exactly the lookup misses.
	IndirectExits *obs.Counter
	// IBLHits counts indirect jumps the inline-lookup stubs resolved
	// in-cache, without an engine round trip.
	IBLHits *obs.Counter
	// IBLMisses counts inline-lookup misses (first sight of a target, or a
	// severed entry after invalidation) — each one is an engine round trip
	// that refills the lookup table.
	IBLMisses *obs.Counter
	// IBCHits counts indirect jumps resolved by a site's private inline
	// cache — one direct compare, no hash probe; IBCMisses counts lookups
	// that fell past the site cache (into the hash table or the engine).
	// hits/(hits+misses) is the monomorphic hit ratio.
	IBCHits   *obs.Counter
	IBCMisses *obs.Counter
	// ProbeRemovals counts probes detached mid-run; each removal patches
	// the probe body out of every live translation in place, without a
	// cache flush.
	ProbeRemovals *obs.Counter
	// Flushes counts whole-cache resets (cache exhaustion or Detach).
	Flushes *obs.Counter
	// Probes counts probe snippets attached.
	Probes *obs.Counter
	// Deopts counts falls back to native execution for untranslatable
	// targets (wild jumps about to trap).
	Deopts *obs.Counter
}

// NewMetrics resolves the DBI counters in r under the emu.dbi.* prefix.
func NewMetrics(r *obs.Registry) Metrics {
	return Metrics{
		Translations:  r.Counter("emu.dbi.translations"),
		ChainPatches:  r.Counter("emu.dbi.chain.patches"),
		ChainHits:     r.Counter("emu.dbi.chain.hits"),
		Invalidations: r.Counter("emu.dbi.invalidations"),
		IndirectExits: r.Counter("emu.dbi.indirect_exits"),
		IBLHits:       r.Counter("emu.dbi.ibl.hits"),
		IBLMisses:     r.Counter("emu.dbi.ibl.misses"),
		IBCHits:       r.Counter("emu.dbi.ibc.hits"),
		IBCMisses:     r.Counter("emu.dbi.ibc.misses"),
		ProbeRemovals: r.Counter("emu.dbi.probe_removals"),
		Flushes:       r.Counter("emu.dbi.flushes"),
		Probes:        r.Counter("emu.dbi.probes"),
		Deopts:        r.Counter("emu.dbi.deopts"),
	}
}
