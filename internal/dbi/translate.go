package dbi

import (
	"fmt"

	"rvdyn/internal/patch"
	"rvdyn/internal/riscv"
)

// maxBlockInsts caps straight-line translation; longer runs split into
// chained fragments (the cap bounds cache waste per invalidation).
const maxBlockInsts = 64

// stubKind classifies a cache exit stub.
type stubKind int

const (
	// stubDirect exits to a known original address (fall-through, branch
	// edge, jal target, or block-cap continuation). Chainable.
	stubDirect stubKind = iota
	// stubIndirect exits through a jalr whose target the engine computes
	// from live registers at exit time. Not chainable.
	stubIndirect
	// stubBreak represents the program's own ebreak: the engine reports a
	// breakpoint event with the original PC.
	stubBreak
)

// exitStub describes one ebreak placed in the cache where translated code
// leaves a fragment.
type exitStub struct {
	addr uint64 // cache address of the stub
	kind stubKind

	target uint64 // stubDirect: original target; stubBreak: original ebreak
	// stubIndirect: the jalr's operands and link value (the link is the
	// ORIGINAL next address, so return addresses in registers are always
	// original-program values — key to architectural transparency).
	rs1, rd  riscv.Reg
	imm      int64
	origNext uint64

	// resume is the original address at which native execution correctly
	// (re)starts if the engine must abandon this fragment with the PC parked
	// on the stub. For resolved transfers (direct edges) it is the target;
	// for unexecuted ones (jalr, ebreak) it is the instruction itself —
	// re-execution is idempotent because the translated prologue has already
	// committed any register writes the original would make.
	resume uint64

	from    *translation
	chained bool
}

// bound maps the cache address of one original instruction's translation
// group (probe code included) back to the original address.
type bound struct{ cache, orig uint64 }

// translation is one basic block copied into the code cache.
type translation struct {
	orig, origEnd   uint64 // source span in the original image
	cache, cacheEnd uint64 // translated span in the cache
	bounds          []bound
	stubs           []*exitStub
	// incoming lists stub addresses patched to jump into this translation;
	// invalidation rewrites them back into ebreaks.
	incoming []uint64
	dead     bool
}

// mapBack maps a cache PC sitting on a translation-group boundary back to
// the original address.
func (t *translation) mapBack(pc uint64) (uint64, bool) {
	for _, b := range t.bounds {
		if b.cache == pc {
			return b.orig, true
		}
	}
	return 0, false
}

func ebreakBytes() []byte {
	w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
}

// translate copies the basic block starting at orig into the code cache,
// weaving in attached probe code and rewriting PC-relative instructions and
// terminators. It returns (nil, nil) when the first instruction cannot be
// fetched or decoded — the caller deopts to native execution, which traps at
// the same PC with the same fault.
func (e *Engine) translate(orig uint64) (*translation, error) {
	insts, origEnd := e.scan(orig)
	if len(insts) == 0 {
		return nil, nil
	}

	var (
		buf    []byte
		bounds []bound
		stubs  []*exitStub
	)
	base := func() uint64 { return e.cacheNext + uint64(len(buf)) }
	emit := func(in riscv.Inst) error {
		b, err := riscv.EncodeBytes(in)
		if err != nil {
			return fmt.Errorf("dbi: encode %v: %w", in, err)
		}
		buf = append(buf, b...)
		return nil
	}
	stub := func(s exitStub) {
		s.addr = base()
		buf = append(buf, ebreakBytes()...)
		sp := s
		stubs = append(stubs, &sp)
	}

	for _, in := range insts {
		bounds = append(bounds, bound{cache: base(), orig: in.Addr})
		if code, ok := e.probes[in.Addr]; ok {
			buf = append(buf, code...)
		}
		switch {
		case in.Mn == riscv.MnAUIPC:
			// auipc computes a PC-relative value; materialize the original
			// result absolutely so rd holds exactly the native bits.
			for _, m := range patch.MaterializeAbs(in.Rd, int64(in.Addr)+in.Imm<<12) {
				if err := emit(m); err != nil {
					return nil, err
				}
			}
		case in.Cat() == riscv.CatBranch:
			// Re-encode the branch to hop over the fall-through stub into
			// the taken stub; both edges exit through direct stubs.
			br := in
			br.Compressed = false
			br.Len = 4
			br.Imm = 8
			if err := emit(br); err != nil {
				return nil, err
			}
			stub(exitStub{kind: stubDirect, target: in.Next(), resume: in.Next()})
			taken := in.Addr + uint64(in.Imm)
			stub(exitStub{kind: stubDirect, target: taken, resume: taken})
		case in.Cat() == riscv.CatJAL:
			if in.Rd != riscv.X0 {
				// The link value is the ORIGINAL return address.
				for _, m := range patch.MaterializeAbs(in.Rd, int64(in.Next())) {
					if err := emit(m); err != nil {
						return nil, err
					}
				}
			}
			tgt := in.Addr + uint64(in.Imm)
			stub(exitStub{kind: stubDirect, target: tgt, resume: tgt})
		case in.Cat() == riscv.CatJALR:
			stub(exitStub{
				kind: stubIndirect,
				rs1:  in.Rs1, rd: in.Rd, imm: in.Imm,
				origNext: in.Next(),
				resume:   in.Addr,
			})
		case in.Mn == riscv.MnEBREAK:
			stub(exitStub{kind: stubBreak, target: in.Addr, resume: in.Addr})
		default:
			// Position-independent: copy the original encoding verbatim.
			raw, err := e.p.ReadMem(in.Addr, int(in.Size()))
			if err != nil {
				return nil, err
			}
			buf = append(buf, raw...)
		}
	}
	if last := insts[len(insts)-1]; !isTerminator(last) {
		// Block cap or decode stop: continue at the next original address.
		stub(exitStub{kind: stubDirect, target: origEnd, resume: origEnd})
	}

	if e.cacheNext+uint64(len(buf)) > e.cacheEnd {
		if err := e.flushAll(); err != nil {
			return nil, err
		}
		if e.cacheNext+uint64(len(buf)) > e.cacheEnd {
			return nil, fmt.Errorf("dbi: translation of %#x (%d bytes) exceeds cache size %d",
				orig, len(buf), e.cacheEnd-e.cacheBase)
		}
		// The emitted addresses assumed the pre-flush cacheNext; re-emit
		// against the reset cursor.
		return e.translate(orig)
	}

	t := &translation{
		orig: orig, origEnd: origEnd,
		cache: e.cacheNext, cacheEnd: e.cacheNext + uint64(len(buf)),
		bounds: bounds, stubs: stubs,
	}
	for _, s := range stubs {
		s.from = t
		e.exits[s.addr] = s
	}
	if err := e.p.WriteMem(t.cache, buf); err != nil {
		return nil, err
	}
	e.cacheNext = (t.cacheEnd + 3) &^ 3
	e.trans[orig] = t
	e.obs.Translations.Inc()
	e.rearmWatch()
	return t, nil
}

// scan decodes the straight-line run starting at orig through the
// breakpoint-transparent debugger view, stopping at the first control
// transfer, undecodable bytes, or the block cap.
func (e *Engine) scan(orig uint64) (insts []riscv.Inst, end uint64) {
	pc := orig
	for len(insts) < maxBlockInsts {
		raw, err := e.p.ReadMem(pc, 4)
		if err != nil {
			if raw, err = e.p.ReadMem(pc, 2); err != nil {
				break
			}
		}
		in, err := riscv.Decode(raw, pc)
		if err != nil {
			break
		}
		insts = append(insts, in)
		pc = in.Next()
		if isTerminator(in) {
			break
		}
	}
	return insts, pc
}

func isTerminator(in riscv.Inst) bool {
	switch in.Cat() {
	case riscv.CatBranch, riscv.CatJAL, riscv.CatJALR:
		return true
	}
	return in.Mn == riscv.MnEBREAK
}

// chain patches a direct exit stub into `jal x0, target` so the edge stays
// inside the cache. Stubs of dead fragments are left alone — their bytes may
// already belong to a newer translation after a flush.
func (e *Engine) chain(s *exitStub, to *translation) error {
	if s.kind != stubDirect || s.chained || s.from == nil || s.from.dead {
		return nil
	}
	delta := int64(to.cache) - int64(s.addr)
	j := riscv.Inst{Mn: riscv.MnJAL, Rd: riscv.X0, Rs1: riscv.RegNone,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: delta}
	w, err := riscv.Encode(j)
	if err != nil {
		// Out of jal reach (cannot happen while the cache fits in ±1 MiB);
		// leave the stub unchained — correct, just slower.
		return nil
	}
	if err := e.p.WriteMem(s.addr, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}); err != nil {
		return err
	}
	s.chained = true
	to.incoming = append(to.incoming, s.addr)
	e.obs.ChainPatches.Inc()
	return nil
}

// unchain restores a patched stub back to its ebreak.
func (e *Engine) unchain(stubAddr uint64) error {
	s := e.exits[stubAddr]
	if s == nil || !s.chained {
		return nil
	}
	if err := e.p.WriteMem(s.addr, ebreakBytes()); err != nil {
		return err
	}
	s.chained = false
	return nil
}
