package dbi

import (
	"fmt"

	"rvdyn/internal/emu"
	"rvdyn/internal/patch"
	"rvdyn/internal/riscv"
)

// maxBlockInsts caps straight-line translation; longer runs split into
// chained fragments (the cap bounds cache waste per invalidation).
const maxBlockInsts = 64

// stubKind classifies a cache exit stub.
type stubKind int

const (
	// stubDirect exits to a known original address (fall-through, branch
	// edge, jal target, or block-cap continuation). Chainable.
	stubDirect stubKind = iota
	// stubIndirect is the miss exit of an inline-lookup stub: the jalr's
	// target was not in the lookup table, so the engine resolves it, refills
	// the table, and redirects. Not chainable.
	stubIndirect
	// stubBreak represents the program's own ebreak: the engine reports a
	// breakpoint event with the original PC.
	stubBreak
)

// exitStub describes one ebreak placed in the cache where translated code
// leaves a fragment.
type exitStub struct {
	addr uint64 // cache address of the stub's ebreak (or chained jal) slot
	kind stubKind

	target uint64 // stubDirect: original target; stubBreak: original ebreak

	// accAddr is the dbi.acc accumulator preceding a direct stub's slot
	// (0: none). Its delta pre-accounts the chained jal; when the engine
	// services the slot instead (the jal did not retire), it subtracts the
	// jal back out host-side.
	accAddr uint64

	// missFix is the compensation a stubIndirect owes when serviced: the
	// lookup stub's common path plus the restore tail retired (with the
	// miss branch taken) in place of the one native jalr.
	missFix emu.CompDelta

	// resume is the original address at which native execution correctly
	// (re)starts if the engine must abandon this fragment with the PC parked
	// on the stub. Direct stubs resume at their target; for stubIndirect the
	// target lives in DBI scratch CSR 0x7C3 (the lookup stub computed and
	// committed it, along with the link register, before the miss exit).
	resume uint64

	// ibcSlot is the stubIndirect site's private inline-cache pair address
	// (0: none — the region was exhausted) and ibcIdx its slot index, the
	// site tag the stub's dbi.jt markers carry into the target profile.
	// ibcFilled/ibcTarget track what the slot currently holds, host-side,
	// so the install policy and severing need no guest reads; ibcCounts is
	// the per-target observation count the profile accumulates (engine
	// round trips plus drained dbi.jt samples), and the slot is steered to
	// its argmax. ibcLo/ibcHi bound the emitted compare sequence in the
	// cache: the engine must not rewrite the slot while the guest is
	// parked inside it with one of the pair's words already loaded.
	ibcSlot      uint64
	ibcIdx       uint16
	ibcLo, ibcHi uint64
	ibcFilled    bool
	ibcTarget    uint64
	ibcCounts    map[uint64]uint32

	from    *translation
	chained bool
}

// bound maps the cache address of one original instruction's translation
// group (probe code included) back to the original address.
type bound struct{ cache, orig uint64 }

// probeSplice records one probe body woven into a translation, so the
// probe can later be patched out of the live copy in place: the body
// becomes nops and the splice's (mutable) compensation delta is updated to
// account for them.
type probeSplice struct {
	orig       uint64 // probed original address
	cacheStart uint64 // first probe instruction in the cache
	cacheEnd   uint64 // end of the probe body == its dbi.acc address
	nInsts     int64  // probe body instruction count (all 4-byte)
	deltaIdx   int    // unique (non-interned) delta slot for this splice
}

// translation is one basic block copied into the code cache.
type translation struct {
	orig, origEnd   uint64 // source span in the original image
	cache, cacheEnd uint64 // translated span in the cache
	bounds          []bound
	stubs           []*exitStub
	splices         []*probeSplice
	// incoming lists stub addresses patched to jump into this translation;
	// invalidation rewrites them back into ebreaks.
	incoming []uint64
	// iblSlots lists lookup-table slots holding entries that target this
	// translation; invalidation zeroes them (sever) so stale cache
	// addresses are unreachable. ibcSites lists the jalr sites whose
	// inline cache pairs point here, severed the same way.
	iblSlots []uint64
	ibcSites []*exitStub
	dead     bool
}

// mapBack maps a cache PC sitting on a translation-group boundary back to
// the original address.
func (t *translation) mapBack(pc uint64) (uint64, bool) {
	for _, b := range t.bounds {
		if b.cache == pc {
			return b.orig, true
		}
	}
	return 0, false
}

func ebreakBytes() []byte {
	w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
}

// cost returns the live cost model's cycle cost for mn as a signed delta.
func (e *Engine) cost(mn riscv.Mnemonic) int64 {
	return int64(e.p.CPU().Model.Cost(mn))
}

func (e *Engine) sumCost(insts []riscv.Inst) int64 {
	var c int64
	for _, in := range insts {
		c += e.cost(in.Mn)
	}
	return c
}

// errDeltasFull signals compensation-table exhaustion; the caller flushes
// the cache (which truncates the table — no live translation references it
// afterwards) and retranslates.
var errDeltasFull = fmt.Errorf("dbi: compensation delta table full")

// allocDelta interns an immutable compensation delta and returns its table
// index (dbi.acc/dbi.jt reference it as imm = index - 2048).
func (e *Engine) allocDelta(d emu.CompDelta) (int, error) {
	if idx, ok := e.deltaIdx[d]; ok {
		return idx, nil
	}
	idx, err := e.allocDeltaMut(d)
	if err != nil {
		return 0, err
	}
	e.deltaIdx[d] = idx
	return idx, nil
}

// allocDeltaMut appends a unique, later-mutable delta slot (probe splices
// update theirs in place on removal); it is never interned.
func (e *Engine) allocDeltaMut(d emu.CompDelta) (int, error) {
	if len(e.comp.Deltas) >= 4096 {
		return 0, errDeltasFull
	}
	e.comp.Deltas = append(e.comp.Deltas, d)
	return len(e.comp.Deltas) - 1, nil
}

// accInst builds the dbi.acc applying delta table slot idx.
func accInst(idx int) riscv.Inst {
	return riscv.Inst{Mn: riscv.MnDBIACC, Rd: riscv.X0, Rs1: riscv.X0,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: int64(idx) - 2048}
}

// translate copies the basic block starting at orig into the code cache,
// weaving in attached probe code, rewriting PC-relative instructions and
// terminators, and planting dbi.acc compensation accumulators wherever the
// copy retires a different instruction stream than the original (so the
// virtualized cycle/instret counters stay native-identical). It returns
// (nil, nil) when the first instruction cannot be fetched or decoded — the
// caller deopts to native execution, which traps at the same PC with the
// same fault.
func (e *Engine) translate(orig uint64) (*translation, error) {
	insts, origEnd := e.scan(orig)
	if len(insts) == 0 {
		return nil, nil
	}

	var (
		buf     []byte
		bounds  []bound
		stubs   []*exitStub
		splices []*probeSplice
	)
	base := func() uint64 { return e.cacheNext + uint64(len(buf)) }
	emit := func(in riscv.Inst) error {
		b, err := riscv.EncodeBytes(in)
		if err != nil {
			return fmt.Errorf("dbi: encode %v: %w", in, err)
		}
		buf = append(buf, b...)
		return nil
	}
	stub := func(s exitStub) *exitStub {
		s.addr = base()
		buf = append(buf, ebreakBytes()...)
		sp := s
		stubs = append(stubs, &sp)
		return &sp
	}
	// dstub lays out a direct exit: [dbi.acc][slot], the slot an ebreak
	// until chained into a jal. d is the full straight-line delta of the
	// emitting group — extras already emitted plus the acc and the jal.
	dstub := func(target uint64, d emu.CompDelta) error {
		idx, err := e.allocDelta(d)
		if err != nil {
			return err
		}
		accAddr := base()
		if err := emit(accInst(idx)); err != nil {
			return err
		}
		st := stub(exitStub{kind: stubDirect, target: target, resume: target})
		st.accAddr = accAddr
		return nil
	}

	accCost := e.cost(riscv.MnDBIACC)
	jalCost := e.cost(riscv.MnJAL)
	// edgeDelta covers a bare direct exit (branch edge, fall-through, block
	// cap): the acc and the chained jal retire, the original retired nothing.
	edgeDelta := emu.CompDelta{Insts: 2, Cycles: accCost + jalCost}

	work := func() error {
		for _, in := range insts {
			bounds = append(bounds, bound{cache: base(), orig: in.Addr})
			if pr, ok := e.probes[in.Addr]; ok && len(pr.insts) > 0 {
				spliceStart := base()
				buf = append(buf, pr.code...)
				n := int64(len(pr.insts))
				idx, err := e.allocDeltaMut(emu.CompDelta{
					Insts: n + 1, Cycles: e.sumCost(pr.insts) + accCost})
				if err != nil {
					return err
				}
				accAddr := base()
				if err := emit(accInst(idx)); err != nil {
					return err
				}
				splices = append(splices, &probeSplice{
					orig: in.Addr, cacheStart: spliceStart, cacheEnd: accAddr,
					nInsts: n, deltaIdx: idx,
				})
			}
			switch {
			case in.Mn == riscv.MnAUIPC:
				// auipc computes a PC-relative value; materialize the original
				// result absolutely so rd holds exactly the native bits.
				lis := patch.MaterializeAbs(in.Rd, int64(in.Addr)+in.Imm<<12)
				for _, m := range lis {
					if err := emit(m); err != nil {
						return err
					}
				}
				idx, err := e.allocDelta(emu.CompDelta{
					Insts:  int64(len(lis)),
					Cycles: e.sumCost(lis) + accCost - e.cost(riscv.MnAUIPC)})
				if err != nil {
					return err
				}
				if err := emit(accInst(idx)); err != nil {
					return err
				}
			case in.Cat() == riscv.CatBranch:
				// Re-encode the branch to hop over the fall-through stub into
				// the taken stub; both edges exit through direct stubs of the
				// shape [acc][slot], so taken lands on the second acc. The
				// branch itself is cost-identical to the original (same
				// mnemonic, same taken penalty) — zero delta.
				br := in
				br.Compressed = false
				br.Len = 4
				br.Imm = 12
				if err := emit(br); err != nil {
					return err
				}
				if err := dstub(in.Next(), edgeDelta); err != nil {
					return err
				}
				if err := dstub(in.Addr+uint64(in.Imm), edgeDelta); err != nil {
					return err
				}
			case in.Cat() == riscv.CatJAL:
				var lis []riscv.Inst
				if in.Rd != riscv.X0 {
					// The link value is the ORIGINAL return address.
					lis = patch.MaterializeAbs(in.Rd, int64(in.Next()))
					for _, m := range lis {
						if err := emit(m); err != nil {
							return err
						}
					}
				}
				// The group retires lis + acc + chained jal against the one
				// original jal (the jal costs cancel).
				if err := dstub(in.Addr+uint64(in.Imm), emu.CompDelta{
					Insts:  int64(len(lis)) + 1,
					Cycles: e.sumCost(lis) + accCost,
				}); err != nil {
					return err
				}
			case in.Cat() == riscv.CatJALR:
				if err := e.emitIBL(in, emit, stub, base); err != nil {
					return err
				}
			case in.Mn == riscv.MnEBREAK:
				stub(exitStub{kind: stubBreak, target: in.Addr, resume: in.Addr})
			default:
				// Position-independent: copy the original encoding verbatim.
				raw, err := e.p.ReadMem(in.Addr, int(in.Size()))
				if err != nil {
					return err
				}
				buf = append(buf, raw...)
			}
		}
		if last := insts[len(insts)-1]; !isTerminator(last) {
			// Block cap or decode stop: continue at the next original address.
			if err := dstub(origEnd, edgeDelta); err != nil {
				return err
			}
		}
		return nil
	}
	if err := work(); err != nil {
		if err == errDeltasFull {
			// The compensation table is exhausted: flush (truncating the
			// table — no surviving translation references it) and retry.
			if ferr := e.flushAll(); ferr != nil {
				return nil, ferr
			}
			return e.translate(orig)
		}
		return nil, err
	}

	if e.cacheNext+uint64(len(buf)) > e.cacheEnd {
		if err := e.flushAll(); err != nil {
			return nil, err
		}
		if e.cacheNext+uint64(len(buf)) > e.cacheEnd {
			return nil, fmt.Errorf("dbi: translation of %#x (%d bytes) exceeds cache size %d",
				orig, len(buf), e.cacheEnd-e.cacheBase)
		}
		// The emitted addresses assumed the pre-flush cacheNext; re-emit
		// against the reset cursor. (The flush also truncated the delta
		// table, so the indices must be re-allocated too.)
		return e.translate(orig)
	}

	t := &translation{
		orig: orig, origEnd: origEnd,
		cache: e.cacheNext, cacheEnd: e.cacheNext + uint64(len(buf)),
		bounds: bounds, stubs: stubs, splices: splices,
	}
	for _, s := range stubs {
		s.from = t
		e.exits[s.addr] = s
	}
	if err := e.p.WriteMem(t.cache, buf); err != nil {
		return nil, err
	}
	e.cacheNext = (t.cacheEnd + 3) &^ 3
	e.trans[orig] = t
	e.obs.Translations.Inc()
	e.rearmWatch()
	return t, nil
}

// scan decodes the straight-line run starting at orig through the
// breakpoint-transparent debugger view, stopping at the first control
// transfer, undecodable bytes, or the block cap.
func (e *Engine) scan(orig uint64) (insts []riscv.Inst, end uint64) {
	pc := orig
	for len(insts) < maxBlockInsts {
		raw, err := e.p.ReadMem(pc, 4)
		if err != nil {
			if raw, err = e.p.ReadMem(pc, 2); err != nil {
				break
			}
		}
		in, err := riscv.Decode(raw, pc)
		if err != nil {
			break
		}
		insts = append(insts, in)
		pc = in.Next()
		if isTerminator(in) {
			break
		}
	}
	return insts, pc
}

func isTerminator(in riscv.Inst) bool {
	switch in.Cat() {
	case riscv.CatBranch, riscv.CatJAL, riscv.CatJALR:
		return true
	}
	return in.Mn == riscv.MnEBREAK
}

// chain patches a direct exit stub into `jal x0, target` so the edge stays
// inside the cache. Stubs of dead fragments are left alone — their bytes may
// already belong to a newer translation after a flush.
func (e *Engine) chain(s *exitStub, to *translation) error {
	if s.kind != stubDirect || s.chained || s.from == nil || s.from.dead {
		return nil
	}
	delta := int64(to.cache) - int64(s.addr)
	j := riscv.Inst{Mn: riscv.MnJAL, Rd: riscv.X0, Rs1: riscv.RegNone,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: delta}
	w, err := riscv.Encode(j)
	if err != nil {
		// Out of jal reach (cannot happen while the cache fits in ±1 MiB);
		// leave the stub unchained — correct, just slower.
		return nil
	}
	if err := e.p.WriteMem(s.addr, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}); err != nil {
		return err
	}
	s.chained = true
	to.incoming = append(to.incoming, s.addr)
	e.obs.ChainPatches.Inc()
	return nil
}

// unchain restores a patched stub back to its ebreak.
func (e *Engine) unchain(stubAddr uint64) error {
	s := e.exits[stubAddr]
	if s == nil || !s.chained {
		return nil
	}
	if err := e.p.WriteMem(s.addr, ebreakBytes()); err != nil {
		return err
	}
	s.chained = false
	return nil
}
