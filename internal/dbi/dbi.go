// Package dbi is a dynamic binary instrumentation engine in the MAMBO-V /
// DynamoRIO mold, layered over the process-control API: instead of the
// static rewrite-then-run flow, it attaches to a *running* process, copies
// each basic block into a code cache the first time it is about to execute,
// weaves attached probe snippets into the copies, and chains translated
// blocks so hot paths never leave the cache. Direct edges chain into jal
// jumps; indirect edges (jalr) resolve through an inline hash-table lookup
// stub (see ibl.go) and reach the engine only on a miss. Stores into
// translated-from bytes invalidate the affected translations (via the
// emulator's code-write watch), which is what lets DBI handle
// self-modifying and JIT'd code — the scenarios static rewriting
// structurally cannot.
//
// Architectural transparency contract: at every translation-group boundary
// the guest's registers, memory, and syscall trace are bit-identical to the
// native run — auipc results and jal/jalr link values are materialized as
// their original-program values, so the process only ever observes original
// addresses. The cycle and instret counters are virtualized: every
// translated group carries a compensation delta (dbi.acc/dbi.jt, see
// internal/riscv/xdbi.go and emu.DBIComp) recording its divergence from the
// original instruction stream, so rdcycle/rdinstret reads inside the guest
// return the values the native run would see. Time-derived state is pinned
// by emu.TimeFn exactly as in the static-instrumentation oracle.
package dbi

import (
	"fmt"

	"rvdyn/internal/codegen"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/parse"
	"rvdyn/internal/proc"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

// Options configures an engine.
type Options struct {
	// CacheBase/CacheSize place the code cache; zero auto-places it above
	// the image (clear of the static rewriter's patch and var areas) with a
	// 512 KiB cache — small enough that every intra-cache jal reaches.
	CacheBase uint64
	CacheSize uint64
	// Arch is the mutatee's extension set for probe lowering (zero: RV64GC).
	Arch riscv.ExtSet
	// Mode selects probe register allocation (dead-register vs spill-always).
	// The engine has no liveness information, so ModeDeadRegister lowers
	// with an empty dead set — i.e. spills — making the two modes equivalent
	// here; the knob exists for symmetry with the static rewriter.
	Mode codegen.Mode
	// NoCounterVirt disables counter virtualization: guest rdcycle/rdinstret
	// reads expose the raw (translation-inflated) counters instead of the
	// compensated native-identical values. The compensation state is still
	// installed and maintained — the inline-lookup stubs need the scratch
	// CSRs regardless — only the CSR read path changes.
	NoCounterVirt bool
	// Obs receives the emu.dbi.* counters; the zero value discards them.
	Obs Metrics
}

const (
	defaultCacheSize = 512 << 10
	varRegionSize    = 0x10000
)

// Engine is one attached DBI session over a live process.
type Engine struct {
	p    *proc.Process
	f    *elfrv.File
	opts Options
	obs  Metrics

	cacheBase, cacheEnd uint64
	cacheNext           uint64

	trans map[uint64]*translation // original block start → live translation
	exits map[uint64]*exitStub    // cache stub addr → descriptor

	probes map[uint64]*probeCode // original addr → lowered probe

	varBase, varNext uint64
	varMapped        bool

	// comp is the counter-compensation state installed on the CPU;
	// deltaIdx interns immutable deltas (index into comp.Deltas).
	comp     *emu.DBIComp
	deltaIdx map[emu.CompDelta]int

	// iblBase is the inline-lookup table (above the var region); ibcBase
	// is the per-site inline-cache region above it, ibcNext its slot
	// cursor. ibcStubs maps a slot index (the dbi.jt site tag) back to
	// its stub; jtSeen is the drain cursor into comp.JTProfN.
	iblBase  uint64
	ibcBase  uint64
	ibcNext  uint64
	ibcStubs []*exitStub
	jtSeen   uint64

	// pubHits/pubIBCHits are the high-water marks of comp.IBLHits and
	// comp.IBCHits already published to the obs counters (the CPU
	// increments them; the engine diffs).
	pubHits    uint64
	pubIBCHits uint64

	// drain is a probe-invalidated translation the PC was inside of when it
	// died: its source bytes are unchanged, so the stale copy runs to its
	// next exit rather than being realigned mid-group. Cleared when the PC
	// is next observed outside it.
	drain *translation

	detached bool
}

// probeCode is the lowered form of every snippet attached at one address.
type probeCode struct {
	code  []byte       // concatenated 4-byte encodings
	insts []riscv.Inst // for instruction count and cost accounting
}

// Attach creates a DBI engine over p, which may be anywhere in its
// execution — stopped at entry right after Launch, or mid-run after an
// earlier native Continue. Nothing is translated until the engine runs.
// If the CPU already carries compensation state from an earlier session
// (attach → detach → attach), its accumulated totals are preserved so
// counter reads stay native-identical across sessions.
func Attach(p *proc.Process, f *elfrv.File, opts Options) (*Engine, error) {
	if p.Exited() {
		return nil, fmt.Errorf("dbi: process has exited")
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = defaultCacheSize
	}
	if opts.CacheSize > 1<<20 {
		// Chaining patches stubs with jal (±1 MiB reach); a larger cache
		// could place a target out of reach of its stub.
		return nil, fmt.Errorf("dbi: cache size %d exceeds jal chaining reach (1 MiB)", opts.CacheSize)
	}
	if opts.CacheBase == 0 {
		var end uint64
		for _, s := range f.Sections {
			if s.Flags&elfrv.SHFAlloc != 0 && s.Addr+s.Size() > end {
				end = s.Addr + s.Size()
			}
		}
		// Above the static rewriter's patch area (image end + 4 KiB) and its
		// var region (+2 MiB), so both mechanisms coexist on one process.
		opts.CacheBase = (end+0xfff)&^0xfff + 0x400000
	}
	e := &Engine{
		p: p, f: f, opts: opts, obs: opts.Obs,
		cacheBase: opts.CacheBase,
		cacheEnd:  opts.CacheBase + opts.CacheSize,
		cacheNext: opts.CacheBase,
		trans:     map[uint64]*translation{},
		exits:     map[uint64]*exitStub{},
		probes:    map[uint64]*probeCode{},
		varBase:   opts.CacheBase + opts.CacheSize,
		deltaIdx:  map[emu.CompDelta]int{},
	}
	e.iblBase = e.varBase + varRegionSize
	e.ibcBase = e.iblBase + iblRegionSize
	e.ibcNext = e.ibcBase
	cpu := p.CPU()
	comp := cpu.DBIComp
	if comp == nil {
		comp = &emu.DBIComp{}
		cpu.DBIComp = comp
	}
	comp.Virtualize = !opts.NoCounterVirt
	// Any deltas referenced by a previous session's (now unreachable) cache
	// are dead; the accumulated Extra* totals carry over untouched.
	comp.Deltas = comp.Deltas[:0]
	e.comp = comp
	e.pubHits = comp.IBLHits
	e.pubIBCHits = comp.IBCHits
	p.MapRegion(e.cacheBase, opts.CacheSize)
	p.MapRegion(e.iblBase, iblRegionSize)
	p.MapRegion(e.ibcBase, ibcRegionSize)
	if err := e.iblZero(); err != nil {
		return nil, err
	}
	if err := e.ibcZero(); err != nil {
		return nil, err
	}
	return e, nil
}

// Process returns the underlying controlled process.
func (e *Engine) Process() *proc.Process { return e.p }

// Comp returns the live compensation state (tools and tests read the
// accumulated divergence and the inline-lookup hit count from it).
func (e *Engine) Comp() *emu.DBIComp { return e.comp }

// CacheRange returns the code-cache span [lo, hi). PCs inside it execute
// translated copies; everything outside is original program code.
func (e *Engine) CacheRange() (lo, hi uint64) { return e.cacheBase, e.cacheEnd }

// OrigPC maps a cache-resident PC sitting exactly on a translation-group
// bound back to the original-program address the group was translated
// from. It reports false for PCs between bounds (mid-group expansions,
// probe splices, exit and lookup stubs) — states where the compensated
// counters are not yet exact and no unique original address exists. The
// sampling profiler keys on exactly this property: a sample deferred at a
// non-bound state fires at the next bound, whose architectural state and
// compensated clock match the native run's bit-for-bit.
func (e *Engine) OrigPC(pc uint64) (uint64, bool) {
	for _, t := range e.trans {
		if pc >= t.cache && pc < t.cacheEnd {
			return t.mapBack(pc)
		}
	}
	if d := e.drain; d != nil && pc >= d.cache && pc < d.cacheEnd {
		return d.mapBack(pc)
	}
	return 0, false
}

// Probe attaches sn at fn's entry point. Snippets are lowered once through
// the same CodeGen layer the static rewriter uses and woven into every
// future translation of a block starting or passing through the point;
// translations already covering the point are invalidated so the probe
// takes effect immediately, even mid-run.
func (e *Engine) Probe(fn *parse.Function, sn snippet.Snippet) error {
	return e.ProbeAt(fn.Entry, sn)
}

// ProbeAt attaches sn at an arbitrary original instruction address — a
// function entry or any instruction point inside a block; the translator
// splices the probe in at the owning translation group.
func (e *Engine) ProbeAt(addr uint64, sn snippet.Snippet) error {
	if e.detached {
		return fmt.Errorf("dbi: engine is detached")
	}
	res, err := codegen.Generate(sn, codegen.Options{Arch: e.opts.Arch, Mode: e.opts.Mode})
	if err != nil {
		return err
	}
	var code []byte
	for _, in := range res.Insts {
		b, err := riscv.EncodeBytes(in)
		if err != nil {
			return fmt.Errorf("dbi: encode probe inst %v: %w", in, err)
		}
		code = append(code, b...)
	}
	pr := e.probes[addr]
	if pr == nil {
		pr = &probeCode{}
		e.probes[addr] = pr
	}
	pr.code = append(pr.code, code...)
	pr.insts = append(pr.insts, res.Insts...)
	e.obs.Probes.Inc()
	// Drop translations that already copied the point, so the probe is
	// woven in on the next execution.
	return e.invalidateRange(addr, 1, false)
}

// RemoveProbeAt detaches every probe at addr and patches its body out of
// all live translations in place — the probe instructions become nops and
// the splice's compensation delta is updated to account for them — without
// invalidating or retranslating anything. It refuses when the PC sits
// inside one of the splices (the pass in flight would retire a mix of
// probe and nop against a delta describing neither).
func (e *Engine) RemoveProbeAt(addr uint64) error {
	if e.detached {
		return fmt.Errorf("dbi: engine is detached")
	}
	if _, ok := e.probes[addr]; !ok {
		return fmt.Errorf("dbi: no probe at %#x", addr)
	}
	pc := e.p.PC()
	for _, t := range e.trans {
		for _, sp := range t.splices {
			if sp.orig == addr && pc > sp.cacheStart && pc <= sp.cacheEnd {
				return fmt.Errorf("dbi: probe at %#x is executing (pc %#x inside its splice)", addr, pc)
			}
		}
	}
	delete(e.probes, addr)
	nop := riscv.MustEncode(riscv.Inst{Mn: riscv.MnADDI, Rd: riscv.X0, Rs1: riscv.X0})
	nopB := []byte{byte(nop), byte(nop >> 8), byte(nop >> 16), byte(nop >> 24)}
	nopCost := e.cost(riscv.MnADDI)
	accCost := e.cost(riscv.MnDBIACC)
	for _, t := range e.trans {
		for _, sp := range t.splices {
			if sp.orig != addr {
				continue
			}
			for a := sp.cacheStart; a < sp.cacheEnd; a += 4 {
				if err := e.p.WriteMem(a, nopB); err != nil {
					return err
				}
			}
			e.comp.Deltas[sp.deltaIdx] = emu.CompDelta{
				Insts:  sp.nInsts + 1,
				Cycles: sp.nInsts*nopCost + accCost,
			}
		}
	}
	e.obs.ProbeRemovals.Inc()
	return nil
}

// NewVar allocates an instrumentation variable in fresh process memory
// (above the code cache, outside every watched and hashed region).
func (e *Engine) NewVar(name string, width int) *snippet.Var {
	if !e.varMapped {
		e.p.MapRegion(e.varBase, varRegionSize)
		e.varMapped = true
		e.varNext = e.varBase
	}
	e.varNext = (e.varNext + 7) &^ 7
	v := &snippet.Var{Name: name, Width: width, Addr: e.varNext}
	e.varNext += 8
	return v
}

// ReadVar reads an instrumentation variable's current value.
func (e *Engine) ReadVar(v *snippet.Var) (uint64, error) {
	b, err := e.p.ReadMem(v.Addr, 8)
	if err != nil {
		return 0, err
	}
	var out uint64
	for i := 7; i >= 0; i-- {
		out = out<<8 | uint64(b[i])
	}
	switch v.Width {
	case 1:
		out &= 0xff
	case 2:
		out &= 0xffff
	case 4:
		out &= 0xffffffff
	}
	return out, nil
}

// Continue resumes the process under translation until exit, a program
// breakpoint (reported with its original address), or a trap.
func (e *Engine) Continue() (proc.Event, error) { return e.run(0) }

// ContinueBudget is Continue with an instruction budget (0 = unlimited).
// The budget counts instructions the hart actually retires — translated
// copies, probe code and all — so it measures true dynamic-mode cost. A
// budget stop can land mid-translation-group; Detach realigns.
func (e *Engine) ContinueBudget(maxInst uint64) (proc.Event, error) { return e.run(maxInst) }

func (e *Engine) run(budget uint64) (proc.Event, error) {
	if e.detached {
		return proc.Event{}, fmt.Errorf("dbi: engine is detached")
	}
	cpu := e.p.CPU()
	start := cpu.Instret
	for {
		if e.p.Exited() {
			e.publishHits()
			return proc.Event{Kind: proc.EventExit, ExitCode: e.p.ExitCode()}, nil
		}
		// Redirect the PC into the cache when it sits on an original
		// address; untranslatable targets run native and trap identically.
		pc := e.p.PC()
		if e.drain != nil && (pc < e.drain.cache || pc >= e.drain.cacheEnd) {
			// The stale fragment finished draining; its span no longer
			// needs watching.
			e.drain = nil
			e.rearmWatch()
		}
		if pc < e.cacheBase || pc >= e.cacheEnd {
			t, err := e.lookup(pc)
			if err != nil {
				return proc.Event{}, err
			}
			if t != nil {
				e.p.SetPC(t.cache)
			} else {
				e.obs.Deopts.Inc()
			}
		}
		rem := uint64(0)
		if budget != 0 {
			used := cpu.Instret - start
			if used >= budget {
				return proc.Event{Kind: proc.EventBudget}, nil
			}
			rem = budget - used
		}
		ev, err := e.p.ContinueBudget(rem)
		e.publishHits()
		if err != nil {
			return proc.Event{}, err
		}
		// Every re-entry drains the CPU-side target profile, so inline
		// caches re-steer even when the guest never misses again (budget
		// slices from a sampler are the steady-state drain cadence).
		if err := e.drainJTProf(); err != nil {
			return proc.Event{}, err
		}
		switch ev.Kind {
		case proc.EventCodeWrite:
			// The process stored into bytes some translation was built
			// from: drop the stale copies and resume.
			if err := e.invalidateRange(ev.Addr, ev.Len, true); err != nil {
				return proc.Event{}, err
			}
		case proc.EventBreakpoint:
			st := e.exits[ev.Addr]
			if st == nil {
				// An ebreak the engine did not place (native deopt path, or
				// a tool's breakpoint): report as-is.
				return ev, nil
			}
			done, out, err := e.handleExit(st)
			if err != nil {
				return proc.Event{}, err
			}
			if done {
				return out, nil
			}
		default:
			return ev, nil
		}
	}
}

// publishHits forwards the CPU-side lookup hit counts (incremented by
// dbi.jt retirements) to the obs counters. A hash-table hit also counts as
// an inline-cache miss: the site's IBC compare ran and failed on the way
// to the probe.
func (e *Engine) publishHits() {
	if e.comp == nil {
		return
	}
	if d := e.comp.IBLHits - e.pubHits; d != 0 {
		e.obs.IBLHits.Add(d)
		e.obs.IBCMisses.Add(d)
		e.pubHits = e.comp.IBLHits
	}
	if d := e.comp.IBCHits - e.pubIBCHits; d != 0 {
		e.obs.IBCHits.Add(d)
		e.pubIBCHits = e.comp.IBCHits
	}
}

// drainJTProf consumes the CPU-side (site, cache-target) samples recorded
// since the last drain and feeds them to each site's inline-cache policy.
// Samples whose target translation has since been invalidated (the cache
// address no longer names a live entry) are dropped; if the ring lapped
// the cursor, the lost oldest samples are simply forgotten.
func (e *Engine) drainJTProf() error {
	dc := e.comp
	n := dc.JTProfN
	if n == e.jtSeen {
		return nil
	}
	start := e.jtSeen
	if n-start > emu.JTProfSize {
		start = n - emu.JTProfSize
	}
	e.jtSeen = n
	var byCache map[uint64]*translation
	for i := start; i < n; i++ {
		s := dc.JTProf[i%emu.JTProfSize]
		if int(s.Site) >= len(e.ibcStubs) {
			continue
		}
		st := e.ibcStubs[s.Site]
		if st == nil {
			continue
		}
		if byCache == nil {
			byCache = make(map[uint64]*translation, len(e.trans))
			for _, t := range e.trans {
				byCache[t.cache] = t
			}
		}
		t := byCache[s.Cache]
		if t == nil {
			continue
		}
		if err := e.ibcNote(st, t.orig, t); err != nil {
			return err
		}
	}
	return nil
}

// lookup returns the live translation starting at orig, translating on
// first use. (nil, nil) means untranslatable — deopt.
func (e *Engine) lookup(orig uint64) (*translation, error) {
	if t := e.trans[orig]; t != nil {
		return t, nil
	}
	return e.translate(orig)
}

// handleExit services one cache exit stub.
func (e *Engine) handleExit(st *exitStub) (done bool, ev proc.Event, err error) {
	switch st.kind {
	case stubBreak:
		// The program's own ebreak: report it at its original address.
		e.p.SetPC(st.target)
		return true, proc.Event{Kind: proc.EventBreakpoint, Addr: st.target}, nil

	case stubDirect:
		// The stub's accumulator pre-accounted the chained jal that did
		// not retire this time (the engine services the exit instead).
		e.comp.ExtraInstret--
		e.comp.ExtraCycles -= e.cost(riscv.MnJAL)
		t := e.trans[st.target]
		if t != nil {
			e.obs.ChainHits.Inc()
		} else if t, err = e.translate(st.target); err != nil {
			return false, proc.Event{}, err
		}
		if t == nil {
			// Untranslatable target: run it natively; the fetch traps with
			// the identical PC and fault the native run would report.
			e.obs.Deopts.Inc()
			e.p.SetPC(st.target)
			return false, proc.Event{}, nil
		}
		if err := e.chain(st, t); err != nil {
			return false, proc.Event{}, err
		}
		e.p.SetPC(t.cache)
		return false, proc.Event{}, nil

	case stubIndirect:
		// Inline-lookup miss: the stub already computed the original
		// target into scratch CSR 0x7C3 and committed the link register;
		// account the stub path, resolve, and refill the table so the
		// next jump to this target hits in-cache.
		e.obs.IndirectExits.Inc()
		e.obs.IBLMisses.Inc()
		if st.ibcSlot != 0 {
			e.obs.IBCMisses.Inc()
		}
		e.comp.ExtraInstret += st.missFix.Insts
		e.comp.ExtraCycles += st.missFix.Cycles
		tgt := e.comp.Scratch[3]
		t, err := e.lookup(tgt)
		if err != nil {
			return false, proc.Event{}, err
		}
		if t == nil {
			e.obs.Deopts.Inc()
			e.p.SetPC(tgt)
			return false, proc.Event{}, nil
		}
		if err := e.iblInsert(tgt, t); err != nil {
			return false, proc.Event{}, err
		}
		if err := e.ibcNote(st, tgt, t); err != nil {
			return false, proc.Event{}, err
		}
		e.p.SetPC(t.cache)
		return false, proc.Event{}, nil
	}
	return false, proc.Event{}, fmt.Errorf("dbi: unknown stub kind %d", st.kind)
}

// realignStub maps the PC parked on an exit stub back to original code,
// settling the stub's compensation: a direct stub's accumulator assumed a
// chained jal that will not retire; an indirect (lookup-miss) stub owes its
// path fixup and holds the original target in scratch CSR 0x7C3.
func (e *Engine) realignStub(st *exitStub) {
	switch st.kind {
	case stubDirect:
		e.comp.ExtraInstret--
		e.comp.ExtraCycles -= e.cost(riscv.MnJAL)
		e.p.SetPC(st.resume)
	case stubBreak:
		e.p.SetPC(st.target)
	case stubIndirect:
		e.comp.ExtraInstret += st.missFix.Insts
		e.comp.ExtraCycles += st.missFix.Cycles
		e.p.SetPC(e.comp.Scratch[3])
	}
}

// invalidateRange drops every translation whose source bytes overlap
// [addr, addr+n), restores their incoming chain patches to exit stubs, and
// severs their inline-lookup entries. When the current PC sits inside a
// dropped translation it is mapped back to the original address (group
// bounds, stub slots, and stub accumulators all realign exactly); a
// probe-sourced invalidation (codeWrite false) that catches the PC
// mid-group instead leaves the stale fragment to drain — its source bytes
// are unchanged, so the copy stays correct through its next exit.
func (e *Engine) invalidateRange(addr, n uint64, codeWrite bool) error {
	var dropped []*translation
	for start, t := range e.trans {
		if t.orig < addr+n && t.origEnd > addr {
			t.dead = true
			delete(e.trans, start)
			dropped = append(dropped, t)
		}
	}
	// A draining stale fragment whose source was just overwritten must be
	// abandoned too — its copy no longer matches the bytes.
	pc := e.p.PC()
	if codeWrite && e.drain != nil && e.drain.orig < addr+n && e.drain.origEnd > addr &&
		pc >= e.drain.cache && pc < e.drain.cacheEnd {
		dropped = append(dropped, e.drain)
		e.drain = nil
	}
	if len(dropped) == 0 {
		return nil
	}
	e.obs.Invalidations.Add(uint64(len(dropped)))
	for _, t := range dropped {
		for _, sa := range t.incoming {
			if err := e.unchain(sa); err != nil {
				return err
			}
		}
		if err := e.iblSever(t); err != nil {
			return err
		}
		if err := e.ibcSever(t); err != nil {
			return err
		}
	}
	for _, t := range dropped {
		if pc < t.cache || pc >= t.cacheEnd {
			continue
		}
		if orig, ok := t.mapBack(pc); ok {
			e.p.SetPC(orig)
			break
		}
		if !codeWrite {
			// Probe-sourced drop with the PC mid-fragment (inside a group,
			// a lookup stub, or parked on an exit stub): the source bytes
			// are unchanged and the fragment's exits stay registered, so
			// the stale copy drains to its next exit with exact
			// compensation — accumulators and stub handlers settle their
			// own deltas as they retire or get serviced.
			e.drain = t
			break
		}
		// A code write stops with the PC at the store's group end: the next
		// group bound (handled above), a direct stub's accumulator, or its
		// slot — never mid-group.
		if st := e.exits[pc]; st != nil && st.from == t {
			e.realignStub(st)
			break
		}
		if st := e.exits[pc+4]; st != nil && st.from == t && st.accAddr == pc {
			// Parked on a bare-edge stub's accumulator (not yet retired):
			// nothing of the stub is accounted — resume at the target.
			e.p.SetPC(st.resume)
			break
		}
		return fmt.Errorf("dbi: pc %#x mid-group in invalidated translation of %#x", pc, t.orig)
	}
	e.rearmWatch()
	return nil
}

// rearmWatch sets the CPU code-write watch to the union of every live
// translation's source span (plus a draining fragment's — its stale copy
// must still be abandoned if its source changes under it). Coarse — stores
// to untranslated bytes between two spans trip a no-op invalidation — but
// one compare per store.
func (e *Engine) rearmWatch() {
	var lo, hi uint64
	span := func(t *translation) {
		if lo == hi {
			lo, hi = t.orig, t.origEnd
			return
		}
		if t.orig < lo {
			lo = t.orig
		}
		if t.origEnd > hi {
			hi = t.origEnd
		}
	}
	for _, t := range e.trans {
		span(t)
	}
	if e.drain != nil {
		span(e.drain)
	}
	e.p.CPU().SetCodeWatch(lo, hi)
}

// flushAll resets the whole cache (capacity or delta-table exhaustion):
// every translation dies, every stub is forgotten, the lookup table is
// zeroed, the compensation-delta table truncates (no surviving code
// references it), and the allocation cursor rewinds. Called with the PC
// either outside the cache or parked on a stub whose handler immediately
// repoints it, so no live PC survives into the stale region.
func (e *Engine) flushAll() error {
	for _, t := range e.trans {
		t.dead = true
	}
	e.trans = map[uint64]*translation{}
	e.exits = map[uint64]*exitStub{}
	e.cacheNext = e.cacheBase
	e.comp.Deltas = e.comp.Deltas[:0]
	e.deltaIdx = map[emu.CompDelta]int{}
	e.drain = nil
	if err := e.iblZero(); err != nil {
		return err
	}
	if err := e.ibcZero(); err != nil {
		return err
	}
	// Undrained profile samples reference the stubs that just died (and
	// slot indices the rewound cursor will reuse): discard the backlog.
	e.jtSeen = e.comp.JTProfN
	e.obs.Flushes.Inc()
	e.rearmWatch()
	return nil
}

// Detach disconnects the engine: the PC is mapped back to its original
// address (single-stepping to the next realignment point when a budget stop
// parked it mid-translation-group or inside an inline-lookup stub), the
// code watch is disarmed, and the process continues natively —
// uninstrumented — from exactly equivalent architectural state. The cache
// region stays mapped but unreachable; the compensation state stays on the
// CPU, frozen, so counter reads remain native-identical after detach (and
// a later re-Attach carries the totals forward).
func (e *Engine) Detach() error {
	if e.detached {
		return nil
	}
	cpu := e.p.CPU()
	defer func() {
		e.publishHits()
		cpu.SetCodeWatch(0, 0)
		e.trans = map[uint64]*translation{}
		e.exits = map[uint64]*exitStub{}
		e.probes = map[uint64]*probeCode{}
		e.drain = nil
		e.detached = true
	}()
	// Worst case: a budget stop at the start of a stale draining fragment —
	// up to a whole translated block (64 groups with probe and
	// materialization expansions) executes before a realignment point.
	for i := 0; i < 1024; i++ {
		pc := e.p.PC()
		if e.p.Exited() || pc < e.cacheBase || pc >= e.cacheEnd {
			return nil
		}
		for _, t := range e.trans {
			if pc < t.cache || pc >= t.cacheEnd {
				continue
			}
			if orig, ok := t.mapBack(pc); ok {
				e.p.SetPC(orig)
				return nil
			}
		}
		if d := e.drain; d != nil && pc >= d.cache && pc < d.cacheEnd {
			// A probe-invalidated fragment's source bytes are unchanged, so
			// its bounds still map back exactly.
			if orig, ok := d.mapBack(pc); ok {
				e.p.SetPC(orig)
				return nil
			}
		}
		if st := e.exits[pc]; st != nil {
			e.realignStub(st)
			return nil
		}
		// Mid-group (or inside a lookup stub): retire one more instruction
		// and retry — accumulators settle their deltas as they retire, so
		// compensation stays exact at whichever boundary we land on.
		ev, err := e.p.ContinueBudget(1)
		if err != nil {
			return err
		}
		switch ev.Kind {
		case proc.EventExit:
			return nil
		case proc.EventCodeWrite:
			if err := e.invalidateRange(ev.Addr, ev.Len, true); err != nil {
				return err
			}
		case proc.EventBreakpoint:
			if st := e.exits[ev.Addr]; st != nil {
				e.realignStub(st)
				return nil
			}
			return nil
		}
	}
	return fmt.Errorf("dbi: detach could not realign pc %#x to an instruction boundary", e.p.PC())
}
