// Package dbi is a dynamic binary instrumentation engine in the MAMBO-V /
// DynamoRIO mold, layered over the process-control API: instead of the
// static rewrite-then-run flow, it attaches to a *running* process, copies
// each basic block into a code cache the first time it is about to execute,
// weaves attached probe snippets into the copies, and chains translated
// blocks so hot paths never leave the cache. Stores into translated-from
// bytes invalidate the affected translations (via the emulator's code-write
// watch), which is what lets DBI handle self-modifying and JIT'd code —
// the scenarios static rewriting structurally cannot.
//
// Architectural transparency contract: at every translation-group boundary
// the guest's registers, memory, and syscall trace are bit-identical to the
// native run — auipc results and jal/jalr link values are materialized as
// their original-program values, so the process only ever observes original
// addresses. Cycles and Instret necessarily differ (translated code executes
// extra instructions); time-derived state is pinned by emu.TimeFn exactly as
// in the static-instrumentation oracle.
package dbi

import (
	"fmt"

	"rvdyn/internal/codegen"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/parse"
	"rvdyn/internal/proc"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
)

// Options configures an engine.
type Options struct {
	// CacheBase/CacheSize place the code cache; zero auto-places it above
	// the image (clear of the static rewriter's patch and var areas) with a
	// 512 KiB cache — small enough that every intra-cache jal reaches.
	CacheBase uint64
	CacheSize uint64
	// Arch is the mutatee's extension set for probe lowering (zero: RV64GC).
	Arch riscv.ExtSet
	// Mode selects probe register allocation (dead-register vs spill-always).
	// The engine has no liveness information, so ModeDeadRegister lowers
	// with an empty dead set — i.e. spills — making the two modes equivalent
	// here; the knob exists for symmetry with the static rewriter.
	Mode codegen.Mode
	// Obs receives the emu.dbi.* counters; the zero value discards them.
	Obs Metrics
}

const (
	defaultCacheSize = 512 << 10
	varRegionSize    = 0x10000
)

// Engine is one attached DBI session over a live process.
type Engine struct {
	p    *proc.Process
	f    *elfrv.File
	opts Options
	obs  Metrics

	cacheBase, cacheEnd uint64
	cacheNext           uint64

	trans map[uint64]*translation // original block start → live translation
	exits map[uint64]*exitStub    // cache stub addr → descriptor

	probes map[uint64][]byte // original addr → lowered probe code

	varBase, varNext uint64
	varMapped        bool

	detached bool
}

// Attach creates a DBI engine over p, which may be anywhere in its
// execution — stopped at entry right after Launch, or mid-run after an
// earlier native Continue. Nothing is translated until the engine runs.
func Attach(p *proc.Process, f *elfrv.File, opts Options) (*Engine, error) {
	if p.Exited() {
		return nil, fmt.Errorf("dbi: process has exited")
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = defaultCacheSize
	}
	if opts.CacheSize > 1<<20 {
		// Chaining patches stubs with jal (±1 MiB reach); a larger cache
		// could place a target out of reach of its stub.
		return nil, fmt.Errorf("dbi: cache size %d exceeds jal chaining reach (1 MiB)", opts.CacheSize)
	}
	if opts.CacheBase == 0 {
		var end uint64
		for _, s := range f.Sections {
			if s.Flags&elfrv.SHFAlloc != 0 && s.Addr+s.Size() > end {
				end = s.Addr + s.Size()
			}
		}
		// Above the static rewriter's patch area (image end + 4 KiB) and its
		// var region (+2 MiB), so both mechanisms coexist on one process.
		opts.CacheBase = (end+0xfff)&^0xfff + 0x400000
	}
	e := &Engine{
		p: p, f: f, opts: opts, obs: opts.Obs,
		cacheBase: opts.CacheBase,
		cacheEnd:  opts.CacheBase + opts.CacheSize,
		cacheNext: opts.CacheBase,
		trans:     map[uint64]*translation{},
		exits:     map[uint64]*exitStub{},
		probes:    map[uint64][]byte{},
		varBase:   opts.CacheBase + opts.CacheSize,
	}
	p.MapRegion(e.cacheBase, opts.CacheSize)
	return e, nil
}

// Process returns the underlying controlled process.
func (e *Engine) Process() *proc.Process { return e.p }

// Probe attaches sn at fn's entry point. Snippets are lowered once through
// the same CodeGen layer the static rewriter uses and woven into every
// future translation of a block starting or passing through the point;
// translations already covering the point are invalidated so the probe
// takes effect immediately, even mid-run.
func (e *Engine) Probe(fn *parse.Function, sn snippet.Snippet) error {
	return e.ProbeAt(fn.Entry, sn)
}

// ProbeAt attaches sn at an arbitrary original instruction address.
func (e *Engine) ProbeAt(addr uint64, sn snippet.Snippet) error {
	if e.detached {
		return fmt.Errorf("dbi: engine is detached")
	}
	res, err := codegen.Generate(sn, codegen.Options{Arch: e.opts.Arch, Mode: e.opts.Mode})
	if err != nil {
		return err
	}
	var code []byte
	for _, in := range res.Insts {
		b, err := riscv.EncodeBytes(in)
		if err != nil {
			return fmt.Errorf("dbi: encode probe inst %v: %w", in, err)
		}
		code = append(code, b...)
	}
	e.probes[addr] = append(e.probes[addr], code...)
	e.obs.Probes.Inc()
	// Drop translations that already copied the point, so the probe is
	// woven in on the next execution.
	return e.invalidateRange(addr, 1)
}

// NewVar allocates an instrumentation variable in fresh process memory
// (above the code cache, outside every watched and hashed region).
func (e *Engine) NewVar(name string, width int) *snippet.Var {
	if !e.varMapped {
		e.p.MapRegion(e.varBase, varRegionSize)
		e.varMapped = true
		e.varNext = e.varBase
	}
	e.varNext = (e.varNext + 7) &^ 7
	v := &snippet.Var{Name: name, Width: width, Addr: e.varNext}
	e.varNext += 8
	return v
}

// ReadVar reads an instrumentation variable's current value.
func (e *Engine) ReadVar(v *snippet.Var) (uint64, error) {
	b, err := e.p.ReadMem(v.Addr, 8)
	if err != nil {
		return 0, err
	}
	var out uint64
	for i := 7; i >= 0; i-- {
		out = out<<8 | uint64(b[i])
	}
	switch v.Width {
	case 1:
		out &= 0xff
	case 2:
		out &= 0xffff
	case 4:
		out &= 0xffffffff
	}
	return out, nil
}

// Continue resumes the process under translation until exit, a program
// breakpoint (reported with its original address), or a trap.
func (e *Engine) Continue() (proc.Event, error) { return e.run(0) }

// ContinueBudget is Continue with an instruction budget (0 = unlimited).
// The budget counts instructions the hart actually retires — translated
// copies, probe code and all — so it measures true dynamic-mode cost. A
// budget stop can land mid-translation-group; Detach realigns.
func (e *Engine) ContinueBudget(maxInst uint64) (proc.Event, error) { return e.run(maxInst) }

func (e *Engine) run(budget uint64) (proc.Event, error) {
	if e.detached {
		return proc.Event{}, fmt.Errorf("dbi: engine is detached")
	}
	cpu := e.p.CPU()
	start := cpu.Instret
	for {
		if e.p.Exited() {
			return proc.Event{Kind: proc.EventExit, ExitCode: e.p.ExitCode()}, nil
		}
		// Redirect the PC into the cache when it sits on an original
		// address; untranslatable targets run native and trap identically.
		pc := e.p.PC()
		if pc < e.cacheBase || pc >= e.cacheEnd {
			t, err := e.lookup(pc)
			if err != nil {
				return proc.Event{}, err
			}
			if t != nil {
				e.p.SetPC(t.cache)
			} else {
				e.obs.Deopts.Inc()
			}
		}
		rem := uint64(0)
		if budget != 0 {
			used := cpu.Instret - start
			if used >= budget {
				return proc.Event{Kind: proc.EventBudget}, nil
			}
			rem = budget - used
		}
		ev, err := e.p.ContinueBudget(rem)
		if err != nil {
			return proc.Event{}, err
		}
		switch ev.Kind {
		case proc.EventCodeWrite:
			// The process stored into bytes some translation was built
			// from: drop the stale copies and resume.
			if err := e.invalidateRange(ev.Addr, ev.Len); err != nil {
				return proc.Event{}, err
			}
		case proc.EventBreakpoint:
			st := e.exits[ev.Addr]
			if st == nil {
				// An ebreak the engine did not place (native deopt path, or
				// a tool's breakpoint): report as-is.
				return ev, nil
			}
			done, out, err := e.handleExit(st)
			if err != nil {
				return proc.Event{}, err
			}
			if done {
				return out, nil
			}
		default:
			return ev, nil
		}
	}
}

// lookup returns the live translation starting at orig, translating on
// first use. (nil, nil) means untranslatable — deopt.
func (e *Engine) lookup(orig uint64) (*translation, error) {
	if t := e.trans[orig]; t != nil {
		return t, nil
	}
	return e.translate(orig)
}

// handleExit services one cache exit stub.
func (e *Engine) handleExit(st *exitStub) (done bool, ev proc.Event, err error) {
	switch st.kind {
	case stubBreak:
		// The program's own ebreak: report it at its original address.
		e.p.SetPC(st.target)
		return true, proc.Event{Kind: proc.EventBreakpoint, Addr: st.target}, nil

	case stubDirect:
		t := e.trans[st.target]
		if t != nil {
			e.obs.ChainHits.Inc()
		} else if t, err = e.translate(st.target); err != nil {
			return false, proc.Event{}, err
		}
		if t == nil {
			// Untranslatable target: run it natively; the fetch traps with
			// the identical PC and fault the native run would report.
			e.obs.Deopts.Inc()
			e.p.SetPC(st.target)
			return false, proc.Event{}, nil
		}
		if err := e.chain(st, t); err != nil {
			return false, proc.Event{}, err
		}
		e.p.SetPC(t.cache)
		return false, proc.Event{}, nil

	case stubIndirect:
		e.obs.IndirectExits.Inc()
		// Perform the jalr host-side: compute the target from live
		// registers *before* writing the link (rd may alias rs1).
		tgt := (e.p.CPU().X[st.rs1&31] + uint64(st.imm)) &^ 1
		if st.rd != riscv.X0 && st.rd.IsX() {
			e.p.SetReg(st.rd, st.origNext)
		}
		t, err := e.lookup(tgt)
		if err != nil {
			return false, proc.Event{}, err
		}
		if t == nil {
			e.obs.Deopts.Inc()
			e.p.SetPC(tgt)
			return false, proc.Event{}, nil
		}
		e.p.SetPC(t.cache)
		return false, proc.Event{}, nil
	}
	return false, proc.Event{}, fmt.Errorf("dbi: unknown stub kind %d", st.kind)
}

// invalidateRange drops every translation whose source bytes overlap
// [addr, addr+n), restores their incoming chain patches to exit stubs, and
// — when the current PC sits inside a dropped translation — maps it back to
// the original address so the next dispatch retranslates the fresh bytes.
func (e *Engine) invalidateRange(addr, n uint64) error {
	var dropped []*translation
	for start, t := range e.trans {
		if t.orig < addr+n && t.origEnd > addr {
			t.dead = true
			delete(e.trans, start)
			dropped = append(dropped, t)
		}
	}
	if len(dropped) == 0 {
		return nil
	}
	e.obs.Invalidations.Add(uint64(len(dropped)))
	for _, t := range dropped {
		for _, sa := range t.incoming {
			if err := e.unchain(sa); err != nil {
				return err
			}
		}
	}
	pc := e.p.PC()
	for _, t := range dropped {
		if pc < t.cache || pc >= t.cacheEnd {
			continue
		}
		orig, ok := t.mapBack(pc)
		if !ok {
			if st := e.exits[pc]; st != nil && st.from == t {
				orig, ok = st.resume, true
			}
		}
		if !ok {
			return fmt.Errorf("dbi: pc %#x mid-group in invalidated translation of %#x", pc, t.orig)
		}
		e.p.SetPC(orig)
		break
	}
	e.rearmWatch()
	return nil
}

// rearmWatch sets the CPU code-write watch to the union of every live
// translation's source span. Coarse — stores to untranslated bytes between
// two spans trip a no-op invalidation — but one compare per store.
func (e *Engine) rearmWatch() {
	var lo, hi uint64
	for _, t := range e.trans {
		if lo == hi {
			lo, hi = t.orig, t.origEnd
			continue
		}
		if t.orig < lo {
			lo = t.orig
		}
		if t.origEnd > hi {
			hi = t.origEnd
		}
	}
	e.p.CPU().SetCodeWatch(lo, hi)
}

// flushAll resets the whole cache (capacity exhaustion): every translation
// dies, every stub is forgotten, and the allocation cursor rewinds. Called
// with the PC either outside the cache or parked on a stub whose handler
// immediately repoints it, so no live PC survives into the stale region.
func (e *Engine) flushAll() error {
	for _, t := range e.trans {
		t.dead = true
	}
	e.trans = map[uint64]*translation{}
	e.exits = map[uint64]*exitStub{}
	e.cacheNext = e.cacheBase
	e.obs.Flushes.Inc()
	e.rearmWatch()
	return nil
}

// Detach disconnects the engine: the PC is mapped back to its original
// address (single-stepping to the next group boundary when a budget stop
// parked it mid-translation-group), the code watch is disarmed, and the
// process continues natively — uninstrumented — from exactly equivalent
// architectural state. The cache region stays mapped but unreachable.
func (e *Engine) Detach() error {
	if e.detached {
		return nil
	}
	cpu := e.p.CPU()
	defer func() {
		cpu.SetCodeWatch(0, 0)
		e.trans = map[uint64]*translation{}
		e.exits = map[uint64]*exitStub{}
		e.probes = map[uint64][]byte{}
		e.detached = true
	}()
	// Worst case: a budget stop mid-group. One group is at most a probe
	// plus a materialize sequence — far fewer than 64 instructions.
	for i := 0; i < 256; i++ {
		pc := e.p.PC()
		if e.p.Exited() || pc < e.cacheBase || pc >= e.cacheEnd {
			return nil
		}
		for _, t := range e.trans {
			if pc < t.cache || pc >= t.cacheEnd {
				continue
			}
			if orig, ok := t.mapBack(pc); ok {
				e.p.SetPC(orig)
				return nil
			}
		}
		if st := e.exits[pc]; st != nil {
			e.p.SetPC(st.resume)
			return nil
		}
		// Mid-group: retire one more instruction and retry.
		ev, err := e.p.ContinueBudget(1)
		if err != nil {
			return err
		}
		switch ev.Kind {
		case proc.EventExit:
			return nil
		case proc.EventCodeWrite:
			if err := e.invalidateRange(ev.Addr, ev.Len); err != nil {
				return err
			}
		case proc.EventBreakpoint:
			if st := e.exits[ev.Addr]; st != nil {
				e.p.SetPC(st.resume)
				return nil
			}
			return nil
		}
	}
	return fmt.Errorf("dbi: detach could not realign pc %#x to an instruction boundary", e.p.PC())
}
