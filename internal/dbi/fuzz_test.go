package dbi

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/oracle"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// Negative seeds select fixed stress sources instead of the oracle
// generator: the jalr-dense band (recursion, a jump table, an indirect
// loop reading live counters) and the self-modifying band.
func fuzzProgram(t *testing.T, seed int64) (*elfrv.File, bool) {
	t.Helper()
	var src string
	smc := false
	switch seed {
	case -1:
		src, smc = workload.SMCSource, true
	case -2:
		src = workload.FibSource
	case -3:
		src = workload.JumpTableSource
	case -4:
		src = counterProbeSource
	default:
		f, err := oracle.BuildProgram(seed, 140)
		if err != nil {
			t.Fatalf("build seed %d: %v", seed, err)
		}
		return f, false
	}
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble seed %d: %v", seed, err)
	}
	return f, smc
}

// fuzzInstAddrs collects every decoded instruction boundary — the candidate
// probe points the schedule draws from.
func fuzzInstAddrs(f *elfrv.File) []uint64 {
	bin, err := core.FromFile(f)
	if err != nil {
		return nil
	}
	seen := map[uint64]bool{}
	var out []uint64
	for _, fn := range bin.Functions() {
		for _, b := range fn.Blocks {
			for _, in := range b.Insts {
				if !seen[in.Addr] {
					seen[in.Addr] = true
					out = append(out, in.Addr)
				}
			}
		}
	}
	return out
}

// FuzzDBILockstep is the headline differential fuzzer for the dynamic
// engine: every input derives a program (oracle-generated, or one of the
// jalr-dense / self-modifying stress sources) plus a randomized schedule of
// probe placements at decoded instruction boundaries, mid-run probe
// additions and removals, budget stops, and detach/re-attach points. The
// instrumented run must match the native run on every observable — exit
// code, stdout, syscall trace, final writable memory — and, because every
// translation carries an exact compensation delta, on the retired
// instruction count itself.
func FuzzDBILockstep(f *testing.F) {
	// The stress bands, each with a few schedule variants.
	for _, seed := range []int64{-1, -2, -3, -4} {
		f.Add(seed, uint64(0))
		f.Add(seed, uint64(0x9e3779b97f4a7c15))
		f.Add(seed, uint64(0x123456789))
	}
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint64(seed)*0x9e3779b97f4a7c15)
	}
	f.Fuzz(func(t *testing.T, seed int64, sched uint64) {
		if seed < -4 {
			seed = -1 - (-seed % 4) // fold arbitrary negatives onto the bands
		}
		prog, smc := fuzzProgram(t, seed)
		native := observeNative(t, prog)
		runFuzzSchedule(t, prog, smc, native, seed, sched)
	})
}

func runFuzzSchedule(t *testing.T, f *elfrv.File, smc bool, native *oracle.Observation, seed int64, sched uint64) {
	rng := rand.New(rand.NewSource(int64(sched) ^ seed*0x5bf03635))
	addrs := fuzzInstAddrs(f)
	if smc {
		// Keep fuzz probes off the self-modified site: a probe pins the old
		// bytes into its splice description, which is fine, but removal
		// schedules racing the rewrite make the oracle's "what should the
		// count be" ambiguous. Entry probes exercise SMC + probes already.
		site, ok := f.Symbol("smc_site")
		if ok {
			kept := addrs[:0]
			for _, a := range addrs {
				if a < site.Value || a >= site.Value+4 {
					kept = append(kept, a)
				}
			}
			addrs = kept
		}
	}

	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	cpu := p.CPU()
	var out bytes.Buffer
	got := &oracle.Observation{}
	cpu.Stdout = &out
	cpu.TimeFn = func() uint64 { return pinnedClock }
	cpu.CounterFn = func(uint16) uint64 { return pinnedCounter }
	cpu.SyscallTrace = func(num, a0, a1, a2, ret uint64) {
		got.Trace = append(got.Trace, oracle.SyscallRecord{Num: num, A0: a0, A1: a1, A2: a2, Ret: ret})
	}

	e, err := Attach(p, f, Options{NoCounterVirt: rng.Intn(4) == 0})
	if err != nil {
		t.Fatal(err)
	}
	pick := func() uint64 { return addrs[rng.Intn(len(addrs))] }
	var placed []uint64
	if len(addrs) > 0 {
		for i := rng.Intn(4); i > 0; i-- {
			a := pick()
			if err := e.ProbeAt(a, snippet.Empty()); err != nil {
				t.Fatalf("probe at %#x: %v", a, err)
			}
			placed = append(placed, a)
		}
	}

	ev := proc.Event{Kind: proc.EventBudget}
	for round := 0; round < 40 && ev.Kind == proc.EventBudget; round++ {
		ev, err = e.ContinueBudget(uint64(1 + rng.Intn(400)))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case ev.Kind != proc.EventBudget:
			// exit (or an unexpected stop, checked below)

		case rng.Intn(3) == 0 && len(addrs) > 0:
			a := pick()
			if err := e.ProbeAt(a, snippet.Empty()); err != nil {
				t.Fatalf("mid-run probe at %#x: %v", a, err)
			}
			placed = append(placed, a)

		case rng.Intn(3) == 0 && len(placed) > 0:
			i := rng.Intn(len(placed))
			err := e.RemoveProbeAt(placed[i])
			if err != nil && !strings.Contains(err.Error(), "is executing") &&
				!strings.Contains(err.Error(), "no probe at") {
				t.Fatalf("remove at %#x: %v", placed[i], err)
			}
			if err == nil {
				// One removal clears every probe at the address; forget all
				// placements there.
				kept := placed[:0]
				for _, a := range placed {
					if a != placed[i] {
						kept = append(kept, a)
					}
				}
				placed = kept
			}

		case rng.Intn(4) == 0:
			// Detach — including with the PC parked mid-group or inside an
			// inline-lookup stub — run a native slice, and re-attach.
			if err := e.Detach(); err != nil {
				t.Fatalf("detach: %v", err)
			}
			if pc := p.PC(); pc >= e.cacheBase && pc < e.cacheEnd {
				t.Fatalf("detach left pc %#x inside the cache", pc)
			}
			ev, err = p.ContinueBudget(uint64(1 + rng.Intn(300)))
			if err != nil {
				t.Fatal(err)
			}
			if ev.Kind != proc.EventBudget {
				break
			}
			if e, err = Attach(p, f, Options{NoCounterVirt: rng.Intn(4) == 0}); err != nil {
				t.Fatalf("re-attach: %v", err)
			}
			placed = nil // probes do not survive detach
		}
	}
	if ev.Kind == proc.EventBudget {
		// Schedule exhausted its rounds: detach cleanly and finish native.
		if err := e.Detach(); err != nil {
			t.Fatalf("final detach: %v", err)
		}
		if ev, err = p.ContinueBudget(runBudget); err != nil {
			t.Fatal(err)
		}
	}
	if ev.Kind != proc.EventExit {
		t.Fatalf("run stopped with %v (addr=%#x err=%v pc=%#x)", ev.Kind, ev.Addr, ev.Err, p.PC())
	}

	h := sha256.New()
	for _, s := range oracle.WritableSections(f) {
		b, err := cpu.ReadMem(s.Addr, int(s.Size()))
		if err != nil {
			t.Fatalf("hashing %s: %v", s.Name, err)
		}
		h.Write(b)
	}
	copy(got.MemHash[:], h.Sum(nil))
	got.ExitCode = p.ExitCode()
	got.Stdout = out.Bytes()
	compareObs(t, "fuzz", native, got)

	// The compensation invariant: raw retired minus the accumulated deltas
	// equals the native instruction count, wherever the schedule wandered.
	comp := e.Comp()
	if dI := uint64(int64(cpu.Instret) - comp.ExtraInstret); dI != native.Steps {
		t.Errorf("compensated instret %d != native %d (raw %d, extra %d)",
			dI, native.Steps, cpu.Instret, comp.ExtraInstret)
	}
}
