package dbi

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/oracle"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// pinnedClock mirrors the oracle's fixed virtual time, so native and DBI
// runs see identical clock_gettime results.
const pinnedClock = 1_000_000_007

// pinnedCounter replaces cycle/instret CSR reads in both runs. Counter
// virtualization makes the real counters native-identical under DBI too
// (pinned separately by TestDBICounterVirtualization and the equivalence
// matrix); the generated band keeps the pin so it also passes with
// virtualization off.
const pinnedCounter = 777_777_777

const runBudget = 1 << 26

// observeDBI runs f to completion under the DBI engine with the identity
// snippet probed at every given address, capturing the same observables as
// oracle.Observe: exit code, stdout, syscall trace, and the final hash of
// the original binary's writable sections.
func observeDBI(t *testing.T, f *elfrv.File, probeAddrs []uint64, reg *obs.Registry) *oracle.Observation {
	t.Helper()
	return observeRun(t, f, probeAddrs, reg, true)
}

// observeNative is the matching baseline: the same launch, hooks, and
// observables, but no engine attached.
func observeNative(t *testing.T, f *elfrv.File) *oracle.Observation {
	t.Helper()
	return observeRun(t, f, nil, nil, false)
}

func observeRun(t *testing.T, f *elfrv.File, probeAddrs []uint64, reg *obs.Registry, useDBI bool) *oracle.Observation {
	t.Helper()
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	cpu := p.CPU()
	var out bytes.Buffer
	o := &oracle.Observation{}
	cpu.Stdout = &out
	cpu.TimeFn = func() uint64 { return pinnedClock }
	cpu.CounterFn = func(uint16) uint64 { return pinnedCounter }
	cpu.SyscallTrace = func(num, a0, a1, a2, ret uint64) {
		o.Trace = append(o.Trace, oracle.SyscallRecord{Num: num, A0: a0, A1: a1, A2: a2, Ret: ret})
	}
	var ev proc.Event
	if useDBI {
		var m Metrics
		if reg != nil {
			m = NewMetrics(reg)
		}
		e, err := Attach(p, f, Options{Obs: m})
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		for _, a := range probeAddrs {
			if err := e.ProbeAt(a, snippet.Empty()); err != nil {
				t.Fatalf("probe at %#x: %v", a, err)
			}
		}
		if ev, err = e.ContinueBudget(runBudget); err != nil {
			t.Fatalf("dbi run: %v", err)
		}
	} else if ev, err = p.ContinueBudget(runBudget); err != nil {
		t.Fatalf("native run: %v", err)
	}
	if ev.Kind != proc.EventExit {
		t.Fatalf("run stopped with %v (addr=%#x, err=%v, pc=%#x)", ev.Kind, ev.Addr, ev.Err, p.PC())
	}
	h := sha256.New()
	for _, s := range oracle.WritableSections(f) {
		b, err := cpu.ReadMem(s.Addr, int(s.Size()))
		if err != nil {
			t.Fatalf("hashing %s: %v", s.Name, err)
		}
		h.Write(b)
	}
	copy(o.MemHash[:], h.Sum(nil))
	o.ExitCode = p.ExitCode()
	o.Stdout = out.Bytes()
	o.Steps = cpu.Instret
	return o
}

func compareObs(t *testing.T, name string, native, dbi *oracle.Observation) {
	t.Helper()
	if native.ExitCode != dbi.ExitCode {
		t.Errorf("%s: exit code diverged: native %d, dbi %d", name, native.ExitCode, dbi.ExitCode)
	}
	if !bytes.Equal(native.Stdout, dbi.Stdout) {
		t.Errorf("%s: stdout diverged: native %q, dbi %q", name, native.Stdout, dbi.Stdout)
	}
	if len(native.Trace) != len(dbi.Trace) {
		t.Fatalf("%s: syscall trace length diverged: native %d, dbi %d", name, len(native.Trace), len(dbi.Trace))
	}
	for i := range native.Trace {
		if native.Trace[i] != dbi.Trace[i] {
			t.Errorf("%s: syscall %d diverged: native %+v, dbi %+v", name, i, native.Trace[i], dbi.Trace[i])
		}
	}
	if native.MemHash != dbi.MemHash {
		t.Errorf("%s: final memory hash diverged", name)
	}
}

// TestDBIWorkloadEquivalence lockstep-verifies the DBI engine against the
// native run on the full workload suite: with the identity snippet probed at
// every instrumentable function entry, every observable — exit code, stdout,
// syscall trace (arguments and returns), final writable memory — must be
// bit-identical. The static rewriter passes the same bar (CheckEquivalence),
// closing the native/static/DBI triangle.
func TestDBIWorkloadEquivalence(t *testing.T) {
	for _, prog := range workload.Programs() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			f, err := asm.Assemble(prog.Source, asm.Options{})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			native := observeNative(t, f)
			var addrs []uint64
			for _, fn := range prog.Funcs {
				sym, ok := f.Symbol(fn)
				if !ok {
					t.Fatalf("no symbol %s", fn)
				}
				addrs = append(addrs, sym.Value)
			}
			reg := obs.NewRegistry()
			dbiObs := observeDBI(t, f, addrs, reg)
			compareObs(t, prog.Name, native, dbiObs)
			if native.ExitCode != prog.ExitCode {
				t.Errorf("native exit %d, workload expects %d", native.ExitCode, prog.ExitCode)
			}
			if n := reg.Counter("emu.dbi.translations").Load(); n == 0 {
				t.Error("no translations recorded — the run did not go through the cache")
			}

			// Static rewriter over the same functions stays equivalent too.
			if _, err := oracle.CheckEquivalence(f, prog.Funcs, codegen.ModeDeadRegister); err != nil {
				t.Errorf("static equivalence: %v", err)
			}
		})
	}
}

// TestDBIGeneratedPrograms runs the oracle's constrained program generator
// band through the same native-vs-DBI lockstep comparison.
func TestDBIGeneratedPrograms(t *testing.T) {
	n := 10
	steps := 140
	if testing.Short() {
		n, steps = 3, 80
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			f, err := oracle.BuildProgram(seed, steps)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			native := observeNative(t, f)
			dbiObs := observeDBI(t, f, []uint64{f.Entry}, nil)
			compareObs(t, fmt.Sprintf("seed%d", seed), native, dbiObs)
		})
	}
}

// TestDBISelfModifyingCode is the structural-capability test: the SMC
// workload rewrites its own loop body mid-run. Natively and under DBI it
// exits with SMCExpected (translation invalidation retranslates the patched
// bytes); the statically rewritten copy cannot see the store and exits with
// SMCStaticResult.
func TestDBISelfModifyingCode(t *testing.T) {
	f, err := asm.Assemble(workload.SMCSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	native := observeNative(t, f)
	if native.ExitCode != workload.SMCExpected {
		t.Fatalf("native exit %d, want %d", native.ExitCode, workload.SMCExpected)
	}

	sym, ok := f.Symbol("smcloop")
	if !ok {
		t.Fatal("no smcloop symbol")
	}
	reg := obs.NewRegistry()
	dbiObs := observeDBI(t, f, []uint64{sym.Value}, reg)
	compareObs(t, "smc", native, dbiObs)
	if dbiObs.ExitCode != workload.SMCExpected {
		t.Errorf("dbi exit %d, want %d", dbiObs.ExitCode, workload.SMCExpected)
	}
	if inv := reg.Counter("emu.dbi.invalidations").Load(); inv == 0 {
		t.Error("no translation invalidations — the SMC store was not detected")
	}

	// The static rewriter relocates smcloop, the store patches the original
	// bytes, and the instrumented run keeps adding 1: the structural
	// limitation DBI exists to remove.
	bin, err := core.FromFile(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m := bin.NewMutator(codegen.ModeDeadRegister)
	fn, err := bin.FindFunction("smcloop")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AtFuncEntry(fn, snippet.Empty()); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rewritten, err := m.Rewrite()
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	static, err := oracle.Observe(rewritten, oracle.WritableSections(f), 0)
	if err != nil {
		t.Fatalf("static run: %v", err)
	}
	if static.ExitCode != workload.SMCStaticResult {
		t.Errorf("static exit %d, want %d (the known-broken static result)", static.ExitCode, workload.SMCStaticResult)
	}
	if static.ExitCode == workload.SMCExpected {
		t.Error("static rewriting handled SMC — the workload no longer demonstrates the limitation")
	}
}

// TestDBICountingProbe attaches a real (non-identity) Increment snippet at
// fib's entry and checks the counted calls against the known call count of
// fib(12) — 465 invocations — while the exit code stays untouched.
func TestDBICountingProbe(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	e, err := Attach(p, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := e.NewVar("fib_calls", 8)
	sym, _ := f.Symbol("fib")
	if err := e.ProbeAt(sym.Value, snippet.Increment(v)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	ev, err := e.ContinueBudget(runBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("exit = %+v, want %d", ev, workload.FibExpected)
	}
	calls, err := e.ReadVar(v)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 465 {
		t.Errorf("fib entry probe counted %d calls, want 465", calls)
	}
}

// TestDBIAttachDetach exercises the attach-mid-run and detach-mid-run
// lifecycle static rewriting cannot express: run natively for a while,
// attach and instrument, run translated, detach, and finish natively — with
// the correct final exit code and a probe count covering only the attached
// window.
func TestDBIAttachDetach(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	// Run a slice natively before the engine exists.
	ev, err := p.ContinueBudget(200)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventBudget {
		t.Fatalf("native slice ended with %+v", ev)
	}

	e, err := Attach(p, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := e.NewVar("calls", 8)
	sym, _ := f.Symbol("fib")
	if err := e.ProbeAt(sym.Value, snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	// Translated slice, then detach mid-run.
	ev, err = e.ContinueBudget(3000)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventBudget {
		t.Fatalf("dbi slice ended with %+v", ev)
	}
	if err := e.Detach(); err != nil {
		t.Fatalf("detach: %v", err)
	}
	pc := p.PC()
	if base := e.cacheBase; pc >= base && pc < e.cacheEnd {
		t.Fatalf("detach left pc %#x inside the cache", pc)
	}
	// Read the count after detach settles: the budget stop may park the PC
	// mid-splice, and detach's realignment legitimately completes that
	// in-flight firing — it belongs to the attached window.
	during, err := e.ReadVar(v)
	if err != nil {
		t.Fatal(err)
	}
	if during == 0 {
		t.Error("probe never fired during the attached window")
	}

	// Finish natively; the result must be unaffected by the round trip.
	ev, err = p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("final exit = %+v, want %d", ev, workload.FibExpected)
	}
	after, err := e.ReadVar(v)
	if err != nil {
		t.Fatal(err)
	}
	if after != during {
		t.Errorf("probe fired after detach: %d -> %d", during, after)
	}
}

// TestDBICounters sanity-checks the emu.dbi.* counter wiring on a loopy
// workload: translations and chain patches happen, and chained loops mean
// exits are far rarer than retired instructions.
func TestDBICounters(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(8, 2), asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	reg := obs.NewRegistry()
	o := observeDBI(t, f, nil, reg)
	if o.ExitCode != 0 {
		t.Fatalf("exit %d", o.ExitCode)
	}
	tr := reg.Counter("emu.dbi.translations").Load()
	cp := reg.Counter("emu.dbi.chain.patches").Load()
	ind := reg.Counter("emu.dbi.indirect_exits").Load()
	if tr == 0 || cp == 0 || ind == 0 {
		t.Errorf("counters flat: translations=%d chain.patches=%d indirect_exits=%d", tr, cp, ind)
	}
	// Chained direct edges never exit: total engine round trips (chain hits
	// + patches + indirect exits) must be far below retired instructions.
	round := reg.Counter("emu.dbi.chain.hits").Load() + cp + ind
	if round*10 > o.Steps {
		t.Errorf("engine round trips %d vs %d retired insts — chaining is not holding", round, o.Steps)
	}
}

// TestSMCNativeSmoke pins the SMC workload's native behaviour (the baseline
// the DBI test compares against).
func TestSMCNativeSmoke(t *testing.T) {
	f, err := asm.Assemble(workload.SMCSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(1_000_000); r != emu.StopExit {
		t.Fatalf("stop %v trap %v pc=%#x", r, c.LastTrap(), c.PC)
	}
	if c.ExitCode != workload.SMCExpected {
		t.Fatalf("exit %d want %d", c.ExitCode, workload.SMCExpected)
	}
}
