package dbi

import (
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// counterProbeSource is a workload that reads rdcycle and rdinstret
// mid-loop — through a jalr-called helper, so the reads sit on the far side
// of inline-lookup stubs — and stores every sample into a .data buffer the
// memhash covers. It is deliberately test-local, NOT in workload.Programs():
// suite-wide oracle tests pin CounterFn, and this program exists to run with
// the real counters live.
const counterProbeSource = `
	.data
	.globl samples
samples:
	.zero 16*16

	.text
	.globl _start
_start:
	la   s0, samples
	li   s1, 0
	li   s2, 8
	la   s3, sample
loop:
	jalr ra, 0(s3)          # indirect call: returns go through the IBL
	addi s1, s1, 1
	blt  s1, s2, loop
	# exit code folds the low bits of the last instret sample
	ld   a0, -8(s0)
	andi a0, a0, 63
	li   a7, 93
	ecall

	.globl sample
	.type sample, @function
sample:
	rdcycle   t0
	sd        t0, 0(s0)
	rdinstret t1
	sd        t1, 8(s0)
	addi      s0, s0, 16
	ret
	.size sample, .-sample
`

// runCounterProbe executes counterProbeSource and returns the 8 sampled
// {cycle, instret} pairs plus the exit code. Under DBI it also returns the
// engine (for metrics inspection).
func runCounterProbe(t *testing.T, useDBI, noVirt bool, budget uint64) ([16]uint64, int, *Engine) {
	t.Helper()
	f, err := asm.Assemble(counterProbeSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	var e *Engine
	if useDBI {
		if e, err = Attach(p, f, Options{NoCounterVirt: noVirt}); err != nil {
			t.Fatal(err)
		}
		sym, ok := f.Symbol("sample")
		if !ok {
			t.Fatal("no sample symbol")
		}
		// A probe inside the sampled window, so its cost must compensate too.
		if err := e.ProbeAt(sym.Value, snippet.Empty()); err != nil {
			t.Fatal(err)
		}
		for {
			ev, err := e.ContinueBudget(budget)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Kind == proc.EventExit {
				break
			}
			if ev.Kind != proc.EventBudget {
				t.Fatalf("dbi run stopped with %+v", ev)
			}
		}
	} else {
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != proc.EventExit {
			t.Fatalf("native run stopped with %+v", ev)
		}
	}
	sym, ok := f.Symbol("samples")
	if !ok {
		t.Fatal("no samples symbol")
	}
	b, err := p.CPU().ReadMem(sym.Value, 16*16)
	if err != nil {
		t.Fatal(err)
	}
	var out [16]uint64
	for i := range out {
		for j := 7; j >= 0; j-- {
			out[i] = out[i]<<8 | uint64(b[i*8+j])
		}
	}
	return out, p.ExitCode(), e
}

// TestDBICounterVirtualization is the headline counter-transparency pin:
// rdcycle/rdinstret values read by the guest mid-loop — through an
// indirect call, with a probe attached inside the sampled window — must be
// bit-identical to the native run's, and with -novirt they must diverge
// (proving the reads really went through the raw counters).
func TestDBICounterVirtualization(t *testing.T) {
	native, nExit, _ := runCounterProbe(t, false, false, 0)
	virt, vExit, e := runCounterProbe(t, true, false, 0)
	if vExit != nExit {
		t.Fatalf("exit diverged: native %d, dbi %d", nExit, vExit)
	}
	if virt != native {
		t.Errorf("virtualized counter samples diverged from native:\nnative %v\ndbi    %v", native, virt)
	}
	if e.Comp().IBLHits == 0 {
		t.Error("no inline-lookup hits — the samples did not cross an IBL stub")
	}

	raw, _, _ := runCounterProbe(t, true, true, 0)
	if raw == native {
		t.Error("-novirt samples match native — the raw counters cannot be this clean under translation")
	}
}

// TestDBICounterVirtualizationBudgetStops repeats the lockstep check while
// forcing the engine to stop and resume on a tiny budget, so samples land
// with the PC having parked mid-group and inside lookup stubs many times.
func TestDBICounterVirtualizationBudgetStops(t *testing.T) {
	native, nExit, _ := runCounterProbe(t, false, false, 0)
	virt, vExit, _ := runCounterProbe(t, true, false, 7)
	if vExit != nExit {
		t.Fatalf("exit diverged: native %d, dbi %d", nExit, vExit)
	}
	if virt != native {
		t.Errorf("samples diverged under budget stops:\nnative %v\ndbi    %v", native, virt)
	}
}

// TestDBIIBLHitRatio pins the inline-lookup payoff on the recursive fib
// workload: at least 90%% of former indirect engine exits must be absorbed
// by in-cache lookup hits.
func TestDBIIBLHitRatio(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	reg := obs.NewRegistry()
	o := observeDBI(t, f, nil, reg)
	if o.ExitCode != workload.FibExpected {
		t.Fatalf("exit %d, want %d", o.ExitCode, workload.FibExpected)
	}
	hits := reg.Counter("emu.dbi.ibl.hits").Load()
	misses := reg.Counter("emu.dbi.ibl.misses").Load()
	if hits+misses == 0 {
		t.Fatal("no indirect branches at all — fib's returns vanished")
	}
	if ratio := float64(hits) / float64(hits+misses); ratio < 0.90 {
		t.Errorf("IBL absorbed %.1f%% of indirect exits (hits=%d misses=%d), want >= 90%%",
			ratio*100, hits, misses)
	}
	if ie := reg.Counter("emu.dbi.indirect_exits").Load(); ie != misses {
		t.Errorf("indirect_exits=%d != ibl.misses=%d — with inline lookup they must coincide", ie, misses)
	}
}

// TestDBIIBCHitRatio pins the per-site inline cache's payoff on fib, whose
// single ret site is polymorphic (it returns into two recursive call sites
// plus main). Driven in budget slices — the cadence a sampling profiler
// imposes — the engine drains the dbi.jt target profile at every re-entry
// and steers the slot to the majority target, so the one-compare fast path
// must absorb at least half of all indirect transfers. (First-install
// instead of profile-guided steering measures ~19% here.)
func TestDBIIBCHitRatio(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := Attach(p, f, Options{Obs: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := e.ContinueBudget(500)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == proc.EventExit {
			if ev.ExitCode != workload.FibExpected {
				t.Fatalf("exit %d, want %d", ev.ExitCode, workload.FibExpected)
			}
			break
		}
		if ev.Kind != proc.EventBudget {
			t.Fatalf("slice ended with %+v", ev)
		}
	}
	hits := reg.Counter("emu.dbi.ibc.hits").Load()
	misses := reg.Counter("emu.dbi.ibc.misses").Load()
	if hits+misses == 0 {
		t.Fatal("no indirect branches at all — fib's returns vanished")
	}
	if ratio := float64(hits) / float64(hits+misses); ratio < 0.50 {
		t.Errorf("IBC absorbed %.1f%% of indirect transfers (hits=%d misses=%d), want >= 50%%",
			ratio*100, hits, misses)
	}
	// Every hash-table hit is by definition an IBC miss that fell through;
	// the engine round trips are the remainder.
	if ibl := reg.Counter("emu.dbi.ibl.hits").Load(); ibl+reg.Counter("emu.dbi.ibl.misses").Load() != misses {
		t.Errorf("ibc.misses=%d != ibl.hits+ibl.misses=%d", misses,
			ibl+reg.Counter("emu.dbi.ibl.misses").Load())
	}
}

// TestDBIProbeRemoval attaches a counting probe, lets it fire, removes it
// mid-run without a cache flush, and checks the count freezes while the
// program completes untouched — with exact counter compensation before and
// after the removal patch.
func TestDBIProbeRemoval(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	// Native final counters for the transparency check.
	pn, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Continue(); err != nil {
		t.Fatal(err)
	}
	nI, nC := pn.CPU().Instret, pn.CPU().Cycles

	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := Attach(p, f, Options{Obs: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	v := e.NewVar("calls", 8)
	sym, _ := f.Symbol("fib")
	if err := e.ProbeAt(sym.Value, snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	ev, err := e.ContinueBudget(4000)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventBudget {
		t.Fatalf("first slice ended with %+v", ev)
	}
	invBefore := reg.Counter("emu.dbi.invalidations").Load()
	// The budget stop may have parked the PC inside the splice itself, where
	// removal correctly refuses; nudge forward and retry. The nudging may
	// complete an in-flight firing, so the frozen count is read only after
	// removal succeeds.
	for {
		err := e.RemoveProbeAt(sym.Value)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "is executing") {
			t.Fatalf("remove: %v", err)
		}
		if _, err := e.ContinueBudget(1); err != nil {
			t.Fatal(err)
		}
	}
	during, err := e.ReadVar(v)
	if err != nil {
		t.Fatal(err)
	}
	if during == 0 || during >= 465 {
		t.Fatalf("probe fired %d times in the first slice, want 0 < n < 465", during)
	}
	if got := reg.Counter("emu.dbi.invalidations").Load(); got != invBefore {
		t.Errorf("removal invalidated %d translations — it must patch in place", got-invBefore)
	}
	if got := reg.Counter("emu.dbi.probe_removals").Load(); got != 1 {
		t.Errorf("probe_removals = %d, want 1", got)
	}
	ev, err = e.ContinueBudget(runBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("exit = %+v, want %d", ev, workload.FibExpected)
	}
	after, err := e.ReadVar(v)
	if err != nil {
		t.Fatal(err)
	}
	if after != during {
		t.Errorf("probe fired after removal: %d -> %d", during, after)
	}
	comp := e.Comp()
	if dI := uint64(int64(p.CPU().Instret) - comp.ExtraInstret); dI != nI {
		t.Errorf("compensated instret %d != native %d after removal", dI, nI)
	}
	if dC := uint64(int64(p.CPU().Cycles) - comp.ExtraCycles); dC != nC {
		t.Errorf("compensated cycles %d != native %d after removal", dC, nC)
	}

	// A second removal at the same address must report there is nothing left.
	if err := e.RemoveProbeAt(sym.Value); err == nil {
		t.Error("second RemoveProbeAt succeeded on an empty point")
	}
}

// TestDBIDetachRealignSweep is the regression test for detach during
// pending stub execution: sweep the budget so Detach fires with the PC at
// every reachable offset — mid-translation-group, on direct-stub
// accumulators and slots, and inside inline-lookup stubs — then finish
// natively and require the exit code AND the compensated counters to equal
// the pure-native finals exactly.
func TestDBIDetachRealignSweep(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pn, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Continue(); err != nil {
		t.Fatal(err)
	}
	nI, nC, nExit := pn.CPU().Instret, pn.CPU().Cycles, pn.ExitCode()

	max := uint64(600)
	if testing.Short() {
		max = 150
	}
	for k := uint64(1); k <= max; k++ {
		p, err := proc.Launch(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		e, err := Attach(p, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := e.ContinueBudget(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := e.Detach(); err != nil {
			t.Fatalf("k=%d: detach: %v", k, err)
		}
		if pc := p.PC(); pc >= e.cacheBase && pc < e.cacheEnd {
			t.Fatalf("k=%d: detach left pc %#x in the cache", k, pc)
		}
		if ev.Kind != proc.EventExit {
			if ev, err = p.Continue(); err != nil {
				t.Fatalf("k=%d: native finish: %v", k, err)
			}
			if ev.Kind != proc.EventExit {
				t.Fatalf("k=%d: native finish stopped with %+v", k, ev)
			}
		}
		if p.ExitCode() != nExit {
			t.Fatalf("k=%d: exit %d, want %d", k, p.ExitCode(), nExit)
		}
		comp := e.Comp()
		dI := uint64(int64(p.CPU().Instret) - comp.ExtraInstret)
		dC := uint64(int64(p.CPU().Cycles) - comp.ExtraCycles)
		if dI != nI || dC != nC {
			t.Fatalf("k=%d: compensated counters %d/%d, native %d/%d (extra %d/%d)",
				k, dI, dC, nI, nC, comp.ExtraInstret, comp.ExtraCycles)
		}
	}
}

// TestDBIReattachCarriesCompensation pins the attach→detach→attach
// lifecycle: the second session reuses the CPU's compensation state, so
// counter reads stay native-identical across the gap.
func TestDBIReattachCarriesCompensation(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pn, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pn.Continue(); err != nil {
		t.Fatal(err)
	}
	nI, nC := pn.CPU().Instret, pn.CPU().Cycles

	p, err := proc.Launch(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	e, err := Attach(p, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ContinueBudget(1000); err != nil {
		t.Fatal(err)
	}
	if err := e.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ContinueBudget(500); err != nil {
		t.Fatal(err)
	}
	e2, err := Attach(p, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e2.ContinueBudget(runBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("exit = %+v, want %d", ev, workload.FibExpected)
	}
	comp := e2.Comp()
	dI := uint64(int64(p.CPU().Instret) - comp.ExtraInstret)
	dC := uint64(int64(p.CPU().Cycles) - comp.ExtraCycles)
	if dI != nI || dC != nC {
		t.Errorf("compensated counters %d/%d across re-attach, native %d/%d", dI, dC, nI, nC)
	}
}
