// Package symtab is the SymtabAPI analog (paper Section 3.2.1): an abstract,
// format-independent view of how a binary is structured — symbols, code and
// data regions, the entry point — plus the RISC-V-specific extension
// discovery the paper describes:
//
//  1. If the binary carries a .riscv.attributes section, the target
//     architecture string (Tag_RISCV_arch) enumerates every extension the
//     binary may use.
//  2. Otherwise fall back to e_flags, which every ELF file has: the RVC bit
//     reveals the C extension and the float-ABI field reveals F/D.
//
// The detected extension set flows to CodeGenAPI so instrumentation never
// uses instructions the mutatee's processor might not implement.
package symtab

import (
	"fmt"
	"sort"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// Function is one STT_FUNC symbol.
type Function struct {
	Name   string
	Addr   uint64
	Size   uint64
	Global bool
}

// Region is a contiguous mapped range of the binary.
type Region struct {
	Name  string
	Addr  uint64
	Data  []byte // nil for zero-initialized regions
	Size  uint64
	Exec  bool
	Write bool
}

// ExtSource records where the extension set was learned from.
type ExtSource int

const (
	// ExtFromAttributes: the .riscv.attributes arch string (preferred).
	ExtFromAttributes ExtSource = iota
	// ExtFromEFlags: the e_flags fallback used when the attribute section is
	// absent (it is optional; e_flags is always present).
	ExtFromEFlags
)

func (s ExtSource) String() string {
	if s == ExtFromAttributes {
		return ".riscv.attributes"
	}
	return "e_flags"
}

// Symtab is the parsed symbol-table view of one binary.
type Symtab struct {
	File *elfrv.File

	Entry      uint64
	Extensions riscv.ExtSet
	ExtSource  ExtSource
	Arch       string // raw arch string when available

	Functions []*Function // sorted by address
	Objects   []elfrv.Symbol
	Regions   []Region
}

// Open parses raw ELF bytes.
func Open(data []byte) (*Symtab, error) {
	f, err := elfrv.Read(data)
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}

// FromFile builds the Symtab view over an already-loaded file.
func FromFile(f *elfrv.File) (*Symtab, error) {
	st := &Symtab{File: f, Entry: f.Entry}

	if err := st.detectExtensions(); err != nil {
		return nil, err
	}

	for _, s := range f.Symbols {
		switch s.Type {
		case elfrv.STTFunc:
			st.Functions = append(st.Functions, &Function{
				Name: s.Name, Addr: s.Value, Size: s.Size,
				Global: s.Bind == elfrv.STBGlobal,
			})
		case elfrv.STTObject:
			st.Objects = append(st.Objects, s)
		}
	}
	sort.Slice(st.Functions, func(i, j int) bool { return st.Functions[i].Addr < st.Functions[j].Addr })

	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Size() == 0 {
			continue
		}
		st.Regions = append(st.Regions, Region{
			Name:  s.Name,
			Addr:  s.Addr,
			Data:  s.Data,
			Size:  s.Size(),
			Exec:  s.Flags&elfrv.SHFExecinstr != 0,
			Write: s.Flags&elfrv.SHFWrite != 0,
		})
	}
	sort.Slice(st.Regions, func(i, j int) bool { return st.Regions[i].Addr < st.Regions[j].Addr })
	return st, nil
}

// detectExtensions implements the paper's two-step discovery.
func (st *Symtab) detectExtensions() error {
	attrs, present, err := st.File.RISCVAttributes()
	if err != nil {
		return fmt.Errorf("symtab: parsing .riscv.attributes: %w", err)
	}
	if present && attrs.Arch != "" {
		set, err := riscv.ParseArchString(attrs.Arch)
		if err != nil {
			return fmt.Errorf("symtab: bad arch string: %w", err)
		}
		st.Extensions = set
		st.ExtSource = ExtFromAttributes
		st.Arch = attrs.Arch
		return nil
	}
	// e_flags fallback: assume the general-purpose integer baseline and add
	// what the flags reveal. (e_flags cannot distinguish M/A, so we take the
	// conservative-for-analysis, standard-practice IMA baseline; the code
	// generator restricts itself further to I unless told otherwise.)
	set := riscv.ExtI | riscv.ExtM | riscv.ExtA | riscv.ExtZicsr | riscv.ExtZifencei
	flags := st.File.Flags
	if flags&elfrv.EFRiscVRVC != 0 {
		set |= riscv.ExtC
	}
	switch flags & elfrv.EFRiscVFloatABIMask {
	case elfrv.EFRiscVFloatABIDouble:
		set |= riscv.ExtF | riscv.ExtD
	case elfrv.EFRiscVFloatABISingle:
		set |= riscv.ExtF
	}
	st.Extensions = set
	st.ExtSource = ExtFromEFlags
	return nil
}

// FuncByName finds a function symbol.
func (st *Symtab) FuncByName(name string) (*Function, bool) {
	for _, f := range st.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// FuncContaining returns the function whose [Addr, Addr+Size) range covers
// addr.
func (st *Symtab) FuncContaining(addr uint64) (*Function, bool) {
	i := sort.Search(len(st.Functions), func(i int) bool {
		return st.Functions[i].Addr > addr
	})
	if i == 0 {
		return nil, false
	}
	f := st.Functions[i-1]
	if addr < f.Addr+f.Size {
		return f, true
	}
	return nil, false
}

// CodeRegions returns the executable regions.
func (st *Symtab) CodeRegions() []Region {
	var out []Region
	for _, r := range st.Regions {
		if r.Exec {
			out = append(out, r)
		}
	}
	return out
}

// RegionContaining returns the region covering addr.
func (st *Symtab) RegionContaining(addr uint64) (Region, bool) {
	for _, r := range st.Regions {
		if addr >= r.Addr && addr < r.Addr+r.Size {
			return r, true
		}
	}
	return Region{}, false
}

// InCode reports whether addr lies in an executable region — the "valid
// code region" predicate of the paper's jalr classifier.
func (st *Symtab) InCode(addr uint64) bool {
	r, ok := st.RegionContaining(addr)
	return ok && r.Exec
}

// ReadMem reads initialized bytes at a virtual address from the file image
// (the memory oracle for jump-table analysis).
func (st *Symtab) ReadMem(addr uint64, w int) (uint64, bool) {
	r, ok := st.RegionContaining(addr)
	if !ok || r.Data == nil || addr+uint64(w) > r.Addr+uint64(len(r.Data)) {
		return 0, false
	}
	off := addr - r.Addr
	var v uint64
	for i := w - 1; i >= 0; i-- {
		v = v<<8 | uint64(r.Data[off+uint64(i)])
	}
	return v, true
}
