package symtab

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/riscv"
	"rvdyn/internal/workload"
)

func openSrc(t *testing.T, src string, opts asm.Options) *Symtab {
	t.Helper()
	f, err := asm.Assemble(src, opts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	raw, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestExtensionsFromAttributes(t *testing.T) {
	st := openSrc(t, workload.MatmulSource(8, 1), asm.Options{})
	if st.ExtSource != ExtFromAttributes {
		t.Errorf("extension source = %v, want attributes", st.ExtSource)
	}
	if st.Extensions != riscv.RV64GC {
		t.Errorf("extensions = %v, want rv64gc", st.Extensions)
	}
	if st.Arch == "" {
		t.Error("raw arch string empty")
	}
}

func TestExtensionsEFlagsFallback(t *testing.T) {
	// Without .riscv.attributes the paper's fallback applies: e_flags is
	// always present and reveals C and the float ABI.
	st := openSrc(t, workload.MatmulSource(8, 1), asm.Options{NoAttributes: true})
	if st.ExtSource != ExtFromEFlags {
		t.Fatalf("extension source = %v, want e_flags", st.ExtSource)
	}
	if !st.Extensions.Has(riscv.ExtC) {
		t.Error("RVC flag not detected from e_flags")
	}
	if !st.Extensions.Has(riscv.ExtD) || !st.Extensions.Has(riscv.ExtF) {
		t.Error("double-float ABI not detected from e_flags")
	}
	// An integer-only, uncompressed binary advertises neither.
	st2 := openSrc(t, "\t.text\n_start:\n\tnop\n\tli a7, 93\n\tecall\n",
		asm.Options{NoAttributes: true, NoCompress: true, Arch: riscv.ExtI | riscv.ExtM})
	if st2.Extensions.Has(riscv.ExtC) || st2.Extensions.Has(riscv.ExtF) {
		t.Errorf("plain binary advertises %v", st2.Extensions)
	}
}

func TestRestrictedArchAttributes(t *testing.T) {
	st := openSrc(t, "\t.text\n_start:\n\tnop\n", asm.Options{Arch: riscv.ExtI | riscv.ExtM | riscv.ExtA})
	if st.Extensions != riscv.ExtI|riscv.ExtM|riscv.ExtA {
		t.Errorf("extensions = %v", st.Extensions)
	}
}

func TestFunctionLookup(t *testing.T) {
	st := openSrc(t, workload.MatmulSource(8, 1), asm.Options{})
	fn, ok := st.FuncByName("multiply")
	if !ok {
		t.Fatal("multiply not found")
	}
	if fn.Size == 0 {
		t.Error("multiply has zero size")
	}
	got, ok := st.FuncContaining(fn.Addr + fn.Size/2)
	if !ok || got.Name != "multiply" {
		t.Errorf("FuncContaining(mid) = %v, %v", got, ok)
	}
	if _, ok := st.FuncContaining(fn.Addr + fn.Size); ok {
		// One past the end belongs to the next function (or nothing).
		if f2, _ := st.FuncContaining(fn.Addr + fn.Size); f2 != nil && f2.Name == "multiply" {
			t.Error("FuncContaining includes one-past-the-end")
		}
	}
	// Sorted by address.
	for i := 1; i < len(st.Functions); i++ {
		if st.Functions[i-1].Addr > st.Functions[i].Addr {
			t.Fatal("functions not sorted")
		}
	}
}

func TestRegionsAndInCode(t *testing.T) {
	st := openSrc(t, workload.MatmulSource(8, 1), asm.Options{})
	code := st.CodeRegions()
	if len(code) != 1 || code[0].Name != ".text" {
		t.Fatalf("code regions = %+v", code)
	}
	if !st.InCode(st.Entry) {
		t.Error("entry not in code")
	}
	dsec, ok := st.RegionContaining(mustSym(t, st, "elapsed_ns"))
	if !ok || dsec.Exec {
		t.Errorf("elapsed_ns region = %+v", dsec)
	}
	if st.InCode(0xdeadbeef) {
		t.Error("wild address reported in code")
	}
}

func mustSym(t *testing.T, st *Symtab, name string) uint64 {
	t.Helper()
	for _, o := range st.Objects {
		if o.Name == name {
			return o.Value
		}
	}
	s, ok := st.File.Symbol(name)
	if !ok {
		t.Fatalf("no symbol %s", name)
	}
	return s.Value
}

func TestReadMem(t *testing.T) {
	st := openSrc(t, `
	.data
val:
	.dword 0x1122334455667788
	.text
_start:
	nop
`, asm.Options{})
	addr := mustSym(t, st, "val")
	v, ok := st.ReadMem(addr, 8)
	if !ok || v != 0x1122334455667788 {
		t.Errorf("ReadMem = %#x, %v", v, ok)
	}
	v, ok = st.ReadMem(addr, 4)
	if !ok || v != 0x55667788 {
		t.Errorf("ReadMem 4 = %#x, %v", v, ok)
	}
	if _, ok := st.ReadMem(0xffffffff, 8); ok {
		t.Error("ReadMem of unmapped succeeded")
	}
}

func TestObjectsListed(t *testing.T) {
	st := openSrc(t, workload.MatmulSource(8, 1), asm.Options{})
	found := false
	for _, o := range st.Objects {
		if o.Name == "elapsed_ns" {
			found = true
		}
	}
	if !found {
		t.Error("elapsed_ns object symbol missing")
	}
}
