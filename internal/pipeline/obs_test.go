package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"rvdyn/internal/codegen"
	"rvdyn/internal/obs"
)

// TestBatchTraceSpans runs a traced batch and checks the span structure: one
// job:<name> span per binary, phase child spans contained within their job
// span, and concurrent workers on distinct tids.
func TestBatchTraceSpans(t *testing.T) {
	jobs := WorkloadJobs()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	opts := Options{
		Jobs: 4, Mode: codegen.ModeDeadRegister,
		Metrics: reg, Trace: tr, TraceTID: 1,
	}
	results, _, err := Batch(jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}

	evs := tr.Events()
	jobSpans := map[string]obs.TraceEvent{}
	for _, ev := range evs {
		if strings.HasPrefix(ev.Name, "job:") {
			jobSpans[strings.TrimPrefix(ev.Name, "job:")] = ev
		}
	}
	for _, j := range jobs {
		if _, ok := jobSpans[j.Name]; !ok {
			t.Errorf("no job span for %s", j.Name)
		}
	}
	// Phase spans nest inside the same-tid job span covering them.
	for _, ev := range evs {
		if strings.HasPrefix(ev.Name, "job:") || ev.Cat == "" {
			continue
		}
		contained := false
		for _, js := range jobSpans {
			if ev.TID == js.TID && ev.TS >= js.TS && ev.TS+ev.Dur <= js.TS+js.Dur+1 {
				contained = true
				break
			}
		}
		if !contained {
			t.Errorf("phase span %s (tid %d, ts %v) not inside any job span", ev.Name, ev.TID, ev.TS)
		}
	}

	// The rewriter's counters flowed through the shared registry.
	var kinds uint64
	for _, name := range []string{"patch.kind.c.j", "patch.kind.jal", "patch.kind.auipc+jalr", "patch.kind.trap"} {
		kinds += reg.Counter(name).Load()
	}
	var patches uint64
	for _, res := range results {
		patches += uint64(len(res.Patches))
	}
	if kinds != patches {
		t.Errorf("patch.kind.* counters sum to %d, %d patches installed", kinds, patches)
	}
}

// TestBatchObsOutputIdentical pins that attaching metrics and tracing leaves
// every output image byte-identical — observability must never perturb the
// product.
func TestBatchObsOutputIdentical(t *testing.T) {
	jobs := WorkloadJobs()
	plain, _, err := Batch(jobs, Options{Jobs: 2, Mode: codegen.ModeDeadRegister})
	if err != nil {
		t.Fatal(err)
	}
	metered, _, err := Batch(jobs, Options{
		Jobs: 2, Mode: codegen.ModeDeadRegister,
		Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), TraceTID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !bytes.Equal(plain[i].ELF, metered[i].ELF) {
			t.Errorf("%s: output differs with obs attached", plain[i].Name)
		}
	}
}
