package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"rvdyn/internal/codegen"
	"rvdyn/internal/emu"
)

// TestBatchWorkloadsRunCorrectly pushes the whole workload suite through the
// parallel pipeline and verifies the instrumented binaries still behave:
// original exit codes, and every instrumented function's counter is hot.
func TestBatchWorkloadsRunCorrectly(t *testing.T) {
	results, stats, err := Batch(WorkloadJobs(), Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Binaries.Load(); got != int64(len(results)) {
		t.Fatalf("stats.Binaries = %d, want %d", got, len(results))
	}
	for _, res := range results {
		cpu, err := emu.New(res.File, emu.P550())
		if err != nil {
			t.Fatalf("%s: %v", res.Name, err)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			t.Fatalf("%s: stopped %v (%v)", res.Name, r, cpu.LastTrap())
		}
		if res.CheckExit && cpu.ExitCode != res.WantExit {
			t.Errorf("%s: exit code %d, want %d", res.Name, cpu.ExitCode, res.WantExit)
		}
		for fn, addr := range res.Counters {
			v, err := cpu.Mem.Read64(addr)
			if err != nil {
				t.Fatalf("%s: reading counter %s: %v", res.Name, fn, err)
			}
			if v == 0 {
				t.Errorf("%s: counter for %s never incremented", res.Name, fn)
			}
		}
	}
}

// TestBatchDeterministicAcrossJobs is the in-package half of the determinism
// guarantee (the golden tests pin the bytes against committed files): the
// serialized ELF of every job must be identical at -jobs 1, 2, and 8.
func TestBatchDeterministicAcrossJobs(t *testing.T) {
	jobs := WorkloadJobs()
	var baseline []*Result
	for _, n := range []int{1, 2, 8} {
		results, _, err := Batch(jobs, Options{Jobs: n})
		if err != nil {
			t.Fatalf("jobs=%d: %v", n, err)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i, res := range results {
			if !bytes.Equal(res.ELF, baseline[i].ELF) {
				t.Errorf("jobs=%d: %s output differs from jobs=1 (%d vs %d bytes)",
					n, res.Name, len(res.ELF), len(baseline[i].ELF))
			}
		}
	}
}

// TestPointsModesDeterministic covers the exits and blocks point selectors
// through the parallel path.
func TestPointsModesDeterministic(t *testing.T) {
	for _, points := range []string{"exits", "blocks"} {
		jobs := WorkloadJobs()
		var baseline []*Result
		for _, n := range []int{1, 8} {
			results, _, err := Batch(jobs, Options{Jobs: n, Points: points, Mode: codegen.ModeSpillAlways})
			if err != nil {
				t.Fatalf("points=%s jobs=%d: %v", points, n, err)
			}
			if baseline == nil {
				baseline = results
				continue
			}
			for i, res := range results {
				if !bytes.Equal(res.ELF, baseline[i].ELF) {
					t.Errorf("points=%s jobs=%d: %s output differs from serial", points, n, res.Name)
				}
			}
		}
	}
}

// TestStatsAccounting checks the counters the batch subcommand prints.
func TestStatsAccounting(t *testing.T) {
	jobs := WorkloadJobs()
	results, stats, err := Batch(jobs, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes, wantPatches int64
	for _, res := range results {
		wantBytes += int64(len(res.ELF))
		wantPatches += int64(len(res.Patches))
	}
	if got := stats.BytesEmitted.Load(); got != wantBytes {
		t.Errorf("BytesEmitted = %d, want %d", got, wantBytes)
	}
	if got := stats.PatchesPlanned.Load(); got != wantPatches {
		t.Errorf("PatchesPlanned = %d, want %d", got, wantPatches)
	}
	if stats.FunctionsParsed.Load() == 0 || stats.BlocksDiscovered.Load() == 0 ||
		stats.InstsDecoded.Load() == 0 {
		t.Errorf("parse counters empty: %+v", stats)
	}
	out := stats.String()
	for _, want := range []string{"binaries instrumented", "parse", "encode", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table missing %q:\n%s", want, out)
		}
	}
}

// TestBatchErrorNamesJob pins error propagation: a bad function name must
// surface with the failing job identified, and completed results survive.
func TestBatchErrorNamesJob(t *testing.T) {
	jobs := WorkloadJobs()
	jobs[2].Funcs = append(jobs[2].Funcs, "no_such_function")
	_, _, err := Batch(jobs, Options{Jobs: 4})
	if err == nil {
		t.Fatal("expected an error for the bad function name")
	}
	if !strings.Contains(err.Error(), jobs[2].Name) || !strings.Contains(err.Error(), "no_such_function") {
		t.Errorf("error does not identify the failing job: %v", err)
	}
}

// TestSyntheticJobsDeterministic: the synthetic benchmark corpus itself must
// be schedule-independent, and its binaries must instrument cleanly.
func TestSyntheticJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic corpus instrumentation: skipped in -short mode")
	}
	jobs := SyntheticJobs(4, 40, 4)
	a, _, err := Batch(jobs, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Batch(jobs, Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i].ELF, b[i].ELF) {
			t.Errorf("synthetic job %d differs between jobs=1 and jobs=8", i)
		}
	}
}
