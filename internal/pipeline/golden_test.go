package pipeline

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden ELF files from the serial pipeline")

// TestGoldenDeterminism instruments every workload program at -jobs 1, 2, and
// 8 and byte-compares each output ELF against the committed golden file. The
// goldens pin the exact serialized image, so any schedule-dependent ordering
// that leaks into layout, ladder assignment, or section emission fails here
// even if all worker counts agree with each other. Regenerate with:
//
//	go test ./internal/pipeline/ -run TestGoldenDeterminism -update
func TestGoldenDeterminism(t *testing.T) {
	for _, job := range WorkloadJobs() {
		job := job
		t.Run(job.Name, func(t *testing.T) {
			golden := filepath.Join("testdata", "golden", job.Name+".elf")

			serial, err := Instrument(job, Options{Jobs: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, serial.ELF, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate goldens)", err)
			}
			if !bytes.Equal(serial.ELF, want) {
				t.Fatalf("jobs=1 output differs from golden %s: %s", golden, firstDiff(serial.ELF, want))
			}
			for _, n := range []int{2, 8} {
				res, err := Instrument(job, Options{Jobs: n}, nil)
				if err != nil {
					t.Fatalf("jobs=%d: %v", n, err)
				}
				if !bytes.Equal(res.ELF, want) {
					t.Errorf("jobs=%d output differs from golden %s: %s", n, golden, firstDiff(res.ELF, want))
				}
			}
		})
	}
}

func firstDiff(got, want []byte) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("first mismatch at offset %#x: %#02x vs %#02x", i, got[i], want[i])
		}
	}
	return "identical"
}
