package pipeline

import (
	"strings"
	"testing"

	"rvdyn/internal/workload"
)

// TestBatchAllPartialFailure pins the partial-failure contract the rvdyn
// batch command builds its exit status on: BatchAll reports per-job errors
// positionally, completes every healthy job, and ErrorSummary names each
// failure.
func TestBatchAllPartialFailure(t *testing.T) {
	good := workload.Programs()[0]
	jobs := []Job{
		{Name: "ok-1", Source: good.Source, Funcs: good.Funcs},
		{Name: "broken-asm", Source: "\t.text\n\t.globl _start\n_start:\n\tnot_an_insn x1, x2\n"},
		{Name: "ok-2", Source: good.Source, Funcs: good.Funcs},
		{Name: "broken-func", Source: good.Source, Funcs: []string{"no_such_function"}},
	}
	results, errs, stats := BatchAll(jobs, Options{Jobs: 2})
	if len(results) != len(jobs) || len(errs) != len(jobs) {
		t.Fatalf("got %d results / %d errs for %d jobs", len(results), len(errs), len(jobs))
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("job %s failed: %v", jobs[i].Name, errs[i])
		}
		if results[i] == nil || len(results[i].ELF) == 0 {
			t.Errorf("job %s produced no output", jobs[i].Name)
		}
	}
	for _, i := range []int{1, 3} {
		if errs[i] == nil {
			t.Errorf("job %s should have failed", jobs[i].Name)
		}
		if results[i] != nil {
			t.Errorf("job %s failed but has a result", jobs[i].Name)
		}
	}
	if stats == nil || stats.Binaries.Load() != 2 {
		t.Error("stats should count only the two completed binaries")
	}

	summary := ErrorSummary(jobs, errs)
	if !strings.Contains(summary, "2/4 jobs failed") {
		t.Errorf("summary missing failure count: %q", summary)
	}
	for _, name := range []string{"broken-asm", "broken-func"} {
		if !strings.Contains(summary, name) {
			t.Errorf("summary does not name failing job %s: %q", name, summary)
		}
	}
	if strings.Contains(summary, "ok-1") || strings.Contains(summary, "ok-2") {
		t.Errorf("summary names healthy jobs: %q", summary)
	}

	// The legacy Batch wrapper must surface the first failure as an error.
	if _, _, err := Batch(jobs, Options{Jobs: 2}); err == nil {
		t.Error("Batch returned nil error for a failing job set")
	}
}

// TestErrorSummaryEmptyOnSuccess: no failures, no summary — the batch
// command keys its exit status off this.
func TestErrorSummaryEmptyOnSuccess(t *testing.T) {
	good := workload.Programs()[0]
	jobs := []Job{{Name: "ok", Source: good.Source, Funcs: good.Funcs}}
	_, errs, _ := BatchAll(jobs, Options{Jobs: 1})
	if errs[0] != nil {
		t.Fatalf("job failed: %v", errs[0])
	}
	if s := ErrorSummary(jobs, errs); s != "" {
		t.Errorf("summary for all-success batch: %q", s)
	}
}
