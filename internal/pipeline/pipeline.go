// Package pipeline runs the analyze→instrument pipeline concurrently over
// one or many binaries — the production-scale counterpart of the
// one-binary-at-a-time flow in cmd/rvdyn. It layers a worker pool over the
// existing toolkits: functions parse into CFGs in parallel (internal/parse's
// round-synchronized traversal), per-function patch planning and encoding
// fan out across workers (internal/patch's plan/encode split), and only the
// final layout/ladder assignment is serialized, so the output ELF of every
// job is byte-identical to the serial path regardless of worker count (the
// golden tests pin this).
//
// Shared structures obey a simple discipline: decoder tables, symbol tables,
// and section bytes are immutable once built; the only mutable cross-worker
// state is the rewriter's mutex-guarded liveness cache and this package's
// atomic counters. `go test -race ./internal/pipeline/...` is clean by
// construction, not by luck.
package pipeline

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/parse"
	"rvdyn/internal/patch"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

// Options configures a pipeline run.
type Options struct {
	// Jobs is the worker-pool width for both the cross-binary pool and the
	// per-binary parse/plan/encode fan-out (<= 0: GOMAXPROCS, 1: serial).
	Jobs int
	// Mode selects the snippet register-allocation strategy.
	Mode codegen.Mode
	// Points chooses the instrumentation points per function: "entry"
	// (default), "exits", or "blocks".
	Points string
	// Metrics, when non-nil, receives the rewriter's patch counters
	// (jump-ladder kinds, relocation growth). Nil disables collection.
	Metrics *obs.Registry
	// Trace, when non-nil, records a span per job plus per-phase child spans.
	// TraceTID is the renderer row; Batch gives each worker its own row
	// (TraceTID + worker index) so concurrent jobs draw in parallel.
	Trace    *obs.Tracer
	TraceTID int
}

// Workers resolves the effective worker-pool width.
func (o Options) Workers() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Job is one binary to push through the pipeline. Either File or Source
// must be set; Source is assembled by the worker that picks the job up.
type Job struct {
	Name   string
	Source string
	File   *elfrv.File
	// Funcs lists the functions to instrument with an entry counter each.
	Funcs []string
	// WantExit, with CheckExit set, is the exit code the instrumented
	// binary must still produce (used by verification harnesses).
	WantExit  int
	CheckExit bool
}

// Result is one instrumented binary.
type Result struct {
	Name string
	// ELF is the serialized instrumented executable, byte-identical across
	// worker counts.
	ELF []byte
	// File is the in-memory form of the same image.
	File *elfrv.File
	// Patches records the entry patches the rewriter installed.
	Patches []patch.PatchRecord
	// Counters maps each instrumented function to its counter variable's
	// address in the rewritten binary.
	Counters map[string]uint64
	// WantExit/CheckExit are copied from the job for verification.
	WantExit  int
	CheckExit bool
}

// Stats aggregates per-phase counters and timings across a pipeline run.
// All fields are updated atomically; concurrent workers share one Stats.
// Timing fields accumulate each binary's wall-clock time per phase, so under
// a parallel batch their sum can exceed the batch's elapsed time (and on an
// oversubscribed machine a phase's figure includes time spent descheduled);
// for a clean phase decomposition read them from a -jobs 1 run.
type Stats struct {
	Binaries         atomic.Int64
	FunctionsParsed  atomic.Int64
	BlocksDiscovered atomic.Int64
	InstsDecoded     atomic.Int64
	PatchesPlanned   atomic.Int64
	BytesEmitted     atomic.Int64

	AssembleNanos atomic.Int64
	ParseNanos    atomic.Int64
	PlanNanos     atomic.Int64
	EncodeNanos   atomic.Int64
	SpliceNanos   atomic.Int64
	WriteNanos    atomic.Int64
}

// String renders the counters and per-phase timings as the table rvdyn's
// batch subcommand prints.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "binaries instrumented:  %d\n", s.Binaries.Load())
	fmt.Fprintf(&b, "functions parsed:       %d\n", s.FunctionsParsed.Load())
	fmt.Fprintf(&b, "blocks discovered:      %d\n", s.BlocksDiscovered.Load())
	fmt.Fprintf(&b, "instructions decoded:   %d\n", s.InstsDecoded.Load())
	fmt.Fprintf(&b, "patches planned:        %d\n", s.PatchesPlanned.Load())
	fmt.Fprintf(&b, "bytes emitted:          %d\n", s.BytesEmitted.Load())
	fmt.Fprintf(&b, "phase times (cumulative worker time):\n")
	for _, row := range []struct {
		name string
		ns   int64
	}{
		{"assemble", s.AssembleNanos.Load()},
		{"parse", s.ParseNanos.Load()},
		{"plan", s.PlanNanos.Load()},
		{"encode", s.EncodeNanos.Load()},
		{"splice", s.SpliceNanos.Load()},
		{"write", s.WriteNanos.Load()},
	} {
		fmt.Fprintf(&b, "  %-9s %10.3f ms\n", row.name, float64(row.ns)/1e6)
	}
	return b.String()
}

// Instrument pushes one job through the pipeline: assemble (if needed),
// parse, plan/encode patches, and serialize. stats may be nil.
func Instrument(job Job, opts Options, stats *Stats) (*Result, error) {
	if stats == nil {
		stats = &Stats{}
	}
	jobs := opts.Workers()

	span := opts.Trace.Begin(opts.TraceTID, "job:"+job.Name, "pipeline")
	defer span.End()

	file := job.File
	if file == nil {
		t := obs.StartTimer(opts.Trace, opts.TraceTID, "assemble", "pipeline")
		f, err := asm.Assemble(job.Source, asm.Options{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: %s: assemble: %w", job.Name, err)
		}
		stats.AssembleNanos.Add(int64(t.Stop()))
		file = f
	}

	st, err := symtab.FromFile(file)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: symtab: %w", job.Name, err)
	}

	t := obs.StartTimer(opts.Trace, opts.TraceTID, "parse", "pipeline")
	cfg, err := parse.Parse(st, parse.Options{Workers: jobs})
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: parse: %w", job.Name, err)
	}
	stats.ParseNanos.Add(int64(t.Stop()))
	stats.FunctionsParsed.Add(int64(cfg.Stats.Functions))
	stats.BlocksDiscovered.Add(int64(cfg.Stats.Blocks))
	stats.InstsDecoded.Add(int64(cfg.Stats.Instructions))

	rw := patch.NewRewriter(st, cfg, opts.Mode)
	rw.Jobs = jobs
	rw.Obs = opts.Metrics
	rw.Trace = opts.Trace
	rw.TraceTID = opts.TraceTID
	counters := map[string]uint64{}
	for _, name := range job.Funcs {
		fn, ok := cfg.FuncByName(name)
		if !ok {
			return nil, fmt.Errorf("pipeline: %s: no function %q", job.Name, name)
		}
		v := rw.NewVar("ctr_"+name, 8)
		counters[name] = v.Addr
		var pts []snippet.Point
		switch opts.Points {
		case "", "entry":
			pts = []snippet.Point{snippet.FuncEntry(fn)}
		case "exits":
			pts = snippet.FuncExits(fn)
		case "blocks":
			pts = snippet.BlockEntries(fn)
		default:
			return nil, fmt.Errorf("pipeline: unknown points mode %q", opts.Points)
		}
		for _, pt := range pts {
			if err := rw.InsertSnippet(pt, snippet.Increment(v)); err != nil {
				return nil, fmt.Errorf("pipeline: %s: %w", job.Name, err)
			}
		}
	}

	out, err := rw.Rewrite()
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: rewrite: %w", job.Name, err)
	}
	stats.PlanNanos.Add(int64(rw.Phases.Plan + rw.Phases.Layout))
	stats.EncodeNanos.Add(int64(rw.Phases.Encode))
	stats.SpliceNanos.Add(int64(rw.Phases.Splice))
	stats.PatchesPlanned.Add(int64(len(rw.Patches)))

	t = obs.StartTimer(opts.Trace, opts.TraceTID, "write", "pipeline")
	raw, err := out.Write()
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: write: %w", job.Name, err)
	}
	stats.WriteNanos.Add(int64(t.Stop()))
	stats.BytesEmitted.Add(int64(len(raw)))
	stats.Binaries.Add(1)

	return &Result{
		Name: job.Name, ELF: raw, File: out, Patches: rw.Patches,
		Counters: counters, WantExit: job.WantExit, CheckExit: job.CheckExit,
	}, nil
}

// Batch pushes every job through the pipeline concurrently (bounded by
// opts.Jobs) and returns results in job order. The first error aborts the
// report but the slice still carries every result completed before it.
// Callers that need to distinguish which jobs failed — rvdyn batch's exit
// status, the server's per-request error mapping — use BatchAll instead.
func Batch(jobs []Job, opts Options) ([]*Result, *Stats, error) {
	results, errs, stats := BatchAll(jobs, opts)
	for i, err := range errs {
		if err != nil {
			return results, stats, fmt.Errorf("pipeline: job %d (%s): %w", i, jobs[i].Name, err)
		}
	}
	return results, stats, nil
}

// BatchAll is Batch without the first-error collapse: every job runs to
// completion or failure independently, and the returned error slice is
// parallel to the results — errs[i] != nil exactly when results[i] is nil.
func BatchAll(jobs []Job, opts Options) ([]*Result, []error, *Stats) {
	stats := &Stats{}
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))

	width := opts.Workers()
	if width > len(jobs) {
		width = len(jobs)
	}
	// Split the budget between the cross-binary pool and the per-binary
	// fan-out: once the batch saturates the pool, intra-binary parallelism
	// only adds scheduling overhead, so collapse it to the serial path.
	// Output bytes are identical either way.
	inner := opts.Workers() / max(width, 1)
	if inner < 1 {
		inner = 1
	}
	innerOpts := opts
	innerOpts.Jobs = inner
	if width <= 1 {
		for i, job := range jobs {
			results[i], errs[i] = Instrument(job, opts, stats)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < width; k++ {
			wg.Add(1)
			// Each worker traces onto its own tid so concurrent jobs render
			// as parallel rows rather than one interleaved mess.
			workerOpts := innerOpts
			workerOpts.TraceTID = opts.TraceTID + k
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					results[i], errs[i] = Instrument(jobs[i], workerOpts, stats)
				}
			}()
		}
		wg.Wait()
	}
	return results, errs, stats
}

// ErrorSummary renders the per-job failure table for a BatchAll run: one
// line per failed job plus a failed/total header. It returns "" when every
// job succeeded, so callers can gate their exit status on the summary.
func ErrorSummary(jobs []Job, errs []error) string {
	var b strings.Builder
	failed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed++
		name := fmt.Sprintf("job %d", i)
		if i < len(jobs) && jobs[i].Name != "" {
			name = jobs[i].Name
		}
		fmt.Fprintf(&b, "  %-14s %v\n", name, err)
	}
	if failed == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d jobs failed:\n%s", failed, len(errs), b.String())
}

// WorkloadJobs returns one job per internal/workload program, instrumenting
// every entry-patchable function the suite declares.
func WorkloadJobs() []Job {
	var out []Job
	for _, p := range workload.Programs() {
		out = append(out, Job{
			Name: p.Name, Source: p.Source, Funcs: p.Funcs,
			WantExit: p.ExitCode, CheckExit: true,
		})
	}
	return out
}

// SyntheticJobs returns n random multi-function programs (deterministic in
// their index) for scaling benchmarks; each instruments instrFuncs of its
// nFuncs functions.
func SyntheticJobs(n, nFuncs, instrFuncs int) []Job {
	if instrFuncs > nFuncs {
		instrFuncs = nFuncs
	}
	var out []Job
	for i := 0; i < n; i++ {
		var funcs []string
		for j := 0; j < instrFuncs; j++ {
			funcs = append(funcs, fmt.Sprintf("fz%d", j*(nFuncs/instrFuncs)))
		}
		out = append(out, Job{
			Name:   fmt.Sprintf("synthetic%d", i),
			Source: workload.RandomProgram(int64(1000+i), nFuncs),
			Funcs:  funcs,
		})
	}
	return out
}
