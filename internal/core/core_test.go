package core

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/emu"
	"rvdyn/internal/patch"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

func open(t *testing.T, src string) *Binary {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b, err := FromFile(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return b
}

func TestOpenAndFind(t *testing.T) {
	b := open(t, workload.MatmulSource(8, 1))
	fn, err := b.FindFunction("multiply")
	if err != nil {
		t.Fatal(err)
	}
	if len(fn.Blocks) != 11 {
		t.Errorf("multiply blocks = %d", len(fn.Blocks))
	}
	if _, err := b.FindFunction("nonexistent"); err == nil {
		t.Error("found nonexistent function")
	}
	// Open from serialized bytes too.
	raw, err := b.File.Write()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Functions()) != len(b.Functions()) {
		t.Errorf("function counts differ after round trip")
	}
}

func TestMutatorStaticRewrite(t *testing.T) {
	const n, reps = 8, 3
	b := open(t, workload.MatmulSource(n, reps))
	fn, _ := b.FindFunction("multiply")
	m := b.NewMutator(codegen.ModeDeadRegister)
	entries := m.NewVar("entries", 8)
	exits := m.NewVar("exits", 8)
	blocks := m.NewVar("blocks", 8)
	if err := m.AtFuncEntry(fn, snippet.Increment(entries)); err != nil {
		t.Fatal(err)
	}
	if err := m.AtFuncExits(fn, snippet.Increment(exits)); err != nil {
		t.Fatal(err)
	}
	if err := m.AtBlockEntries(fn, snippet.Increment(blocks)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.New(out, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}
	ev, _ := cpu.Mem.Read64(entries.Addr)
	xv, _ := cpu.Mem.Read64(exits.Addr)
	if ev != reps || xv != reps {
		t.Errorf("entries=%d exits=%d, want %d each", ev, xv, reps)
	}
	bv, _ := cpu.Mem.Read64(blocks.Addr)
	if bv == 0 {
		t.Error("block counter never ran")
	}
}

// TestFigure1Variants exercises the three instrumentation variants of the
// paper's Figure 1 — static rewriting, dynamic create-process, dynamic
// attach — and checks all three count the same function entries.
func TestFigure1Variants(t *testing.T) {
	const n, reps = 8, 4
	src := workload.MatmulSource(n, reps)

	// Variant 1: static binary rewriting.
	staticCount := func() uint64 {
		b := open(t, src)
		fn, _ := b.FindFunction("multiply")
		m := b.NewMutator(codegen.ModeDeadRegister)
		v := m.NewVar("c", 8)
		if err := m.AtFuncEntry(fn, snippet.Increment(v)); err != nil {
			t.Fatal(err)
		}
		out, err := m.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := emu.New(out, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			t.Fatalf("static: %v", r)
		}
		got, _ := cpu.Mem.Read64(v.Addr)
		return got
	}()

	// Variant 2: dynamic instrumentation of a created process.
	spawnCount := func() uint64 {
		b := open(t, src)
		fn, _ := b.FindFunction("multiply")
		p, err := b.Launch(emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		v := p.NewVar("c", 8)
		kind, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
			snippet.Increment(v), codegen.ModeDeadRegister)
		if err != nil {
			t.Fatal(err)
		}
		if kind == patch.PatchTrap {
			t.Error("spawn variant should not need the trap rung")
		}
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != proc.EventExit {
			t.Fatalf("spawn: %+v", ev)
		}
		got, err := p.ReadVar(v)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}()

	// Variant 3: attach to a process that already started running.
	attachCount := func() uint64 {
		b := open(t, src)
		fn, _ := b.FindFunction("multiply")
		cpu, err := emu.New(b.File, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		cpu.Run(500) // the process is already underway (still in init)
		if cpu.Exited {
			t.Fatal("finished before attach")
		}
		p := b.Attach(cpu)
		v := p.NewVar("c", 8)
		if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
			snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
			t.Fatal(err)
		}
		ev, err := p.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != proc.EventExit {
			t.Fatalf("attach: %+v", ev)
		}
		got, _ := p.ReadVar(v)
		return got
	}()

	if staticCount != reps || spawnCount != reps || attachCount != reps {
		t.Errorf("entry counts static=%d spawn=%d attach=%d, want %d each",
			staticCount, spawnCount, attachCount, reps)
	}
}

// TestTrapRungDynamic forces the paper's worst case: a 2-byte function that
// no jump patch fits, handled by the breakpoint-redirect trap under dynamic
// instrumentation.
func TestTrapRungDynamic(t *testing.T) {
	b := open(t, workload.TinyFuncSource)
	fn, _ := b.FindFunction("tiny")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	v := p.NewVar("tiny_calls", 8)
	kind, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
		snippet.Increment(v), codegen.ModeDeadRegister)
	if err != nil {
		t.Fatal(err)
	}
	if kind != patch.PatchTrap {
		t.Fatalf("patch kind = %v, want trap (function is 2 bytes, trampoline pages away)", kind)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.TinyFuncExpected {
		t.Fatalf("event = %+v", ev)
	}
	got, _ := p.ReadVar(v)
	if got != 1 {
		t.Errorf("tiny entry count = %d, want 1", got)
	}
}

func TestDynamicJumpTableInstrumentation(t *testing.T) {
	b := open(t, workload.JumpTableSource)
	fn, _ := b.FindFunction("dispatch")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	v := p.NewVar("blocks", 8)
	if _, err := p.InstrumentFunction(fn, snippet.BlockEntries(fn),
		snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.JumpTableExpected {
		t.Fatalf("event = %+v", ev)
	}
	got, _ := p.ReadVar(v)
	if got == 0 {
		t.Error("dispatch blocks never counted")
	}
}

func TestProbeCallback(t *testing.T) {
	b := open(t, workload.FibSource)
	fn, _ := b.FindFunction("fib")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	var args []uint64
	if err := p.Probe(fn.Entry, func(pp *Process) {
		args = append(args, pp.GetReg(10)) // a0
	}); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("event = %+v", ev)
	}
	if len(args) != 465 {
		t.Errorf("probe fired %d times, want 465", len(args))
	}
	if len(args) > 0 && args[0] != 12 {
		t.Errorf("first fib arg = %d, want 12", args[0])
	}
}

func TestWalkFromCore(t *testing.T) {
	b := open(t, workload.FramePointerSource)
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	spin, _ := b.FindFunction("spin")
	if _, err := p.InsertBreakpoint(spin.Entry); err != nil {
		t.Fatal(err)
	}
	if ev, err := p.Continue(); err != nil || ev.Kind != proc.EventBreakpoint {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	frames, err := p.Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		var ns []string
		for _, f := range frames {
			ns = append(ns, f.FuncName)
		}
		t.Errorf("frames = %v, want 5 deep", ns)
	}
}

// TestFigure2ComponentGraph asserts the Components() table (the
// reproduction of the paper's Figure 2) matches the real import lists of
// the packages, so the documented architecture cannot drift from the code.
func TestFigure2ComponentGraph(t *testing.T) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Skip("no caller info")
	}
	internalDir := filepath.Dir(filepath.Dir(thisFile)) // .../internal

	actual := map[string][]string{}
	entries, err := os.ReadDir(internalDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		set := map[string]bool{}
		files, _ := filepath.Glob(filepath.Join(internalDir, pkg, "*.go"))
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			fset := token.NewFileSet()
			af, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", file, err)
			}
			for _, imp := range af.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(path, "rvdyn/internal/") {
					set[strings.TrimPrefix(path, "rvdyn/internal/")] = true
				}
			}
		}
		var list []string
		for k := range set {
			list = append(list, k)
		}
		sort.Strings(list)
		actual[pkg] = list
	}

	declared := map[string][]string{}
	for _, c := range Components() {
		declared[c.Name] = c.Uses
	}

	for pkg, uses := range actual {
		want, ok := declared[pkg]
		if !ok {
			t.Errorf("package %s missing from the Figure 2 component table", pkg)
			continue
		}
		if strings.Join(uses, ",") != strings.Join(want, ",") {
			t.Errorf("component %s: declared uses %v, actual imports %v", pkg, want, uses)
		}
	}
	for pkg := range declared {
		if _, ok := actual[pkg]; !ok {
			t.Errorf("component table lists %s but no such package exists", pkg)
		}
	}
}

func TestComponentRolesCoverPaperToolkits(t *testing.T) {
	// Every toolkit from Section 2 must appear in a component role.
	want := []string{"SymtabAPI", "InstructionAPI", "ParseAPI", "DataflowAPI",
		"CodeGenAPI", "PatchAPI", "ProcControlAPI", "StackwalkerAPI"}
	var roles []string
	for _, c := range Components() {
		roles = append(roles, c.Role)
	}
	all := strings.Join(roles, " ")
	for _, w := range want {
		if !strings.Contains(all, w) {
			t.Errorf("component table missing toolkit %s", w)
		}
	}
}

// TestDynamicEdgeInstrumentation counts loop back-edge traversals by
// in-memory patching of a live process.
func TestDynamicEdgeInstrumentation(t *testing.T) {
	b := open(t, workload.MatmulSource(6, 1))
	fn, _ := b.FindFunction("multiply")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	v := p.NewVar("backs", 8)
	edges := snippet.LoopBackEdges(fn)
	if len(edges) != 3 {
		t.Fatalf("%d back edges", len(edges))
	}
	if _, err := p.InstrumentFunctionFull(fn, nil, edges,
		snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil || ev.Kind != proc.EventExit {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	got, _ := p.ReadVar(v)
	want := uint64(6 + 6*6 + 6*6*6)
	if got != want {
		t.Errorf("back-edge count = %d, want %d", got, want)
	}
}

// TestUninstrument: instrument, run part-way, uninstrument, finish. The
// counter must stop advancing after removal while the program still
// completes correctly.
func TestUninstrument(t *testing.T) {
	b := open(t, workload.FibSource)
	fn, _ := b.FindFunction("fib")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	v := p.NewVar("calls", 8)
	if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
		snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
		t.Fatal(err)
	}
	// Run a slice of the program under instrumentation.
	if ev, err := p.ContinueBudget(2000); err != nil || ev.Kind != proc.EventBudget {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	mid, _ := p.ReadVar(v)
	if mid == 0 {
		t.Fatal("counter never advanced while instrumented")
	}
	if err := p.Uninstrument(fn); err != nil {
		t.Fatal(err)
	}
	ev, err := p.Continue()
	if err != nil || ev.Kind != proc.EventExit {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	if ev.ExitCode != workload.FibExpected {
		t.Errorf("exit = %d, want %d", ev.ExitCode, workload.FibExpected)
	}
	final, _ := p.ReadVar(v)
	// At most one in-flight frame can be paused between the entry redirect
	// and its counter update; beyond that the counter must be frozen. (A
	// full instrumented run reaches 465.)
	if final > mid+1 {
		t.Errorf("counter advanced after uninstrument: %d -> %d", mid, final)
	}
	// Re-instrumentation is allowed after removal.
	if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
		snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
		t.Errorf("re-instrument after uninstrument: %v", err)
	}
}

// TestWalkThroughInstrumentedFrames: break inside the *relocated* copy of
// fib (its entry redirects there) and walk: patch-area PCs must translate
// back to original addresses so every frame attributes to fib.
func TestWalkThroughInstrumentedFrames(t *testing.T) {
	b := open(t, workload.FibSource)
	fn, _ := b.FindFunction("fib")
	p, err := b.Launch(emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	v := p.NewVar("c", 8)
	if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
		snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
		t.Fatal(err)
	}
	// Run until deep in the instrumented recursion.
	if ev, err := p.ContinueBudget(3000); err != nil || ev.Kind != proc.EventBudget {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
	// The PC should currently sit in the patch area (relocated fib).
	pc := p.PC()
	if _, inOrig := b.CFG.FuncContaining(pc); inOrig {
		t.Logf("pc %#x still in original image; translation path untested this run", pc)
	}
	frames, err := p.Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}
	for i := 0; i < len(frames)-1; i++ {
		if frames[i].FuncName != "fib" {
			t.Errorf("frame %d = %q, want fib", i, frames[i].FuncName)
		}
	}
	if frames[len(frames)-1].FuncName != "_start" {
		t.Errorf("outermost = %q", frames[len(frames)-1].FuncName)
	}
	// Finish correctly.
	ev, err := p.Continue()
	if err != nil || ev.Kind != proc.EventExit || ev.ExitCode != workload.FibExpected {
		t.Fatalf("ev=%+v err=%v", ev, err)
	}
}

// TestMutatorPointHelpers drives the remaining point-family helpers: call
// sites, loop begins, and loop back edges in one static rewrite.
func TestMutatorPointHelpers(t *testing.T) {
	const n = 6
	b := open(t, workload.MatmulSource(n, 2))
	start, _ := b.FindFunction("_start")
	mult, _ := b.FindFunction("multiply")
	m := b.NewMutator(codegen.ModeDeadRegister)
	calls := m.NewVar("calls", 8)
	heads := m.NewVar("heads", 8)
	backs := m.NewVar("backs", 8)
	if err := m.AtCallSites(start, snippet.Increment(calls)); err != nil {
		t.Fatal(err)
	}
	if err := m.AtLoopBegins(mult, snippet.Increment(heads)); err != nil {
		t.Fatal(err)
	}
	if err := m.AtLoopBackEdges(mult, snippet.Increment(backs)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.New(out, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}
	cv, _ := cpu.Mem.Read64(calls.Addr)
	hv, _ := cpu.Mem.Read64(heads.Addr)
	bv, _ := cpu.Mem.Read64(backs.Addr)
	// _start makes 1 init call + 2 multiply calls (the reps loop).
	if cv != 3 {
		t.Errorf("call-site count = %d, want 3", cv)
	}
	// Loop-head executions per call: (n+1) + n(n+1) + n*n*(n+1); back-edge
	// traversals: n + n*n + n*n*n. Two calls double both.
	wantHeads := uint64(2 * ((n + 1) + n*(n+1) + n*n*(n+1)))
	wantBacks := uint64(2 * (n + n*n + n*n*n))
	if hv != wantHeads {
		t.Errorf("loop-head count = %d, want %d", hv, wantHeads)
	}
	if bv != wantBacks {
		t.Errorf("back-edge count = %d, want %d", bv, wantBacks)
	}
}
