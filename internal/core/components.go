package core

import "sort"

// Component describes one toolkit of the suite and the components it uses —
// the data behind Figure 2 of the paper ("the components of Dyninst and the
// use relationships between the components; the direction of the arrows
// indicates the flow of information").
type Component struct {
	Name      string // Go package name
	Role      string // the Dyninst toolkit it reproduces
	Uses      []string
	Substrate bool // true for the simulation substrates that replace hardware/toolchain
}

// Components returns the toolkit graph. A test asserts this table matches
// the packages' actual import lists, so the reproduced figure cannot drift
// from the code.
func Components() []Component {
	comps := []Component{
		{Name: "riscv", Role: "ISA model (Capstone substitute under InstructionAPI)", Uses: nil, Substrate: true},
		{Name: "elfrv", Role: "ELF64/RISC-V object format (under SymtabAPI)", Uses: nil, Substrate: true},
		{Name: "semantics", Role: "SAIL-pipeline instruction semantics", Uses: []string{"riscv"}},
		{Name: "asm", Role: "assembler (gcc substitute)", Uses: []string{"elfrv", "riscv"}, Substrate: true},
		{Name: "obs", Role: "observability: metrics registry + trace_event spans", Uses: nil},
		{Name: "emu", Role: "RV64GC emulator (SiFive P550 substitute)", Uses: []string{"elfrv", "obs", "riscv"}, Substrate: true},
		{Name: "workload", Role: "benchmark programs (paper Section 4.1)", Uses: []string{"asm", "elfrv"}, Substrate: true},
		{Name: "symtab", Role: "SymtabAPI", Uses: []string{"elfrv", "riscv"}},
		{Name: "instruction", Role: "InstructionAPI", Uses: []string{"riscv"}},
		{Name: "parse", Role: "ParseAPI", Uses: []string{"riscv", "semantics", "symtab"}},
		{Name: "dataflow", Role: "DataflowAPI", Uses: []string{"parse", "riscv"}},
		{Name: "snippet", Role: "snippet ASTs and points", Uses: []string{"parse"}},
		{Name: "codegen", Role: "CodeGenAPI", Uses: []string{"riscv", "snippet"}},
		{Name: "patch", Role: "PatchAPI / binary rewriter", Uses: []string{"codegen", "dataflow", "elfrv", "obs", "parse", "riscv", "snippet", "symtab"}},
		{Name: "proc", Role: "ProcControlAPI", Uses: []string{"elfrv", "emu", "obs", "riscv"}},
		{Name: "stackwalk", Role: "StackwalkerAPI", Uses: []string{"dataflow", "parse", "riscv"}},
		{Name: "core", Role: "mutator facade (BPatch layer)", Uses: []string{
			"codegen", "dataflow", "elfrv", "emu", "parse", "patch", "proc",
			"riscv", "snippet", "stackwalk", "symtab"}},
		{Name: "oracle", Role: "differential-execution oracle (QEMU/hardware cross-check substitute)", Uses: []string{
			"asm", "codegen", "core", "elfrv", "emu", "riscv", "snippet"}, Substrate: true},
		{Name: "dbi", Role: "dynamic binary instrumentation engine (code-cache translation on a live process)", Uses: []string{
			"codegen", "elfrv", "emu", "obs", "parse", "patch", "proc", "riscv", "snippet"}},
		{Name: "profile", Role: "instrumentation-based function profiler (performance-tool layer)", Uses: []string{
			"codegen", "core", "dbi", "elfrv", "emu", "obs", "proc", "snippet"}},
		{Name: "pipeline", Role: "concurrent analyze→instrument worker pool", Uses: []string{
			"asm", "codegen", "elfrv", "obs", "parse", "patch", "snippet", "symtab", "workload"}},
		{Name: "server", Role: "instrumentation-as-a-service daemon with content-addressed artifact cache", Uses: []string{
			"asm", "codegen", "core", "elfrv", "obs", "patch", "snippet"}},
	}
	for i := range comps {
		sort.Strings(comps[i].Uses)
	}
	return comps
}
