package core

import (
	"fmt"
	"sort"

	"rvdyn/internal/codegen"
	"rvdyn/internal/dataflow"
	"rvdyn/internal/emu"
	"rvdyn/internal/parse"
	"rvdyn/internal/patch"
	"rvdyn/internal/proc"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/stackwalk"
)

// Process is a controlled mutatee with dynamic-instrumentation support
// layered over ProcControl. Both dynamic forms of Figure 1 are available:
// Launch creates the process; Attach adopts a running one.
type Process struct {
	*proc.Process
	Binary *Binary

	trampNext uint64
	varNext   uint64
	varBase   uint64
	varMapped bool

	instrumented map[uint64]*undo

	// xlatPairs maps relocated instruction addresses back to their original
	// addresses (sorted by relocated address) so the stack walker can
	// attribute frames executing inside patch areas.
	xlatPairs []xlatPair

	// relocated is the forward map: original instruction address to its
	// relocated copy. Tools that must observe execution of instrumented code
	// (the profiler's entry/exit probes) plant their breakpoints at the
	// relocated addresses, since the originals never execute again.
	relocated map[uint64]uint64
}

type xlatPair struct{ newAddr, origAddr uint64 }

// undo records what restoring a function's original behaviour takes.
type undo struct {
	entry uint64
	orig  []byte           // original entry bytes (nil for the trap rung)
	bp    *proc.Breakpoint // the redirect breakpoint (trap rung only)
	// table slots overwritten, with their original contents.
	slots map[uint64][]byte
}

// Launch starts the binary under control, stopped at entry.
func (b *Binary) Launch(model *emu.CostModel) (*Process, error) {
	p, err := proc.Launch(b.File, model)
	if err != nil {
		return nil, err
	}
	return b.adopt(p), nil
}

// Attach wraps an already-running emulated process (the attach form of
// dynamic instrumentation).
func (b *Binary) Attach(cpu *emu.CPU) *Process {
	return b.adopt(proc.Attach(cpu, b.File))
}

func (b *Binary) adopt(p *proc.Process) *Process {
	var end uint64
	for _, r := range b.Symtab.Regions {
		if r.Addr+r.Size > end {
			end = r.Addr + r.Size
		}
	}
	tramp := (end+0xfff)&^0xfff + 0x1000
	return &Process{
		Process:      p,
		Binary:       b,
		trampNext:    tramp,
		varBase:      tramp + 0x200000,
		instrumented: map[uint64]*undo{},
	}
}

// NewVar allocates an instrumentation variable in fresh process memory.
func (p *Process) NewVar(name string, width int) *snippet.Var {
	if !p.varMapped {
		p.MapRegion(p.varBase, 0x10000)
		p.varMapped = true
		p.varNext = p.varBase
	}
	p.varNext = (p.varNext + 7) &^ 7
	v := &snippet.Var{Name: name, Width: width, Addr: p.varNext}
	p.varNext += 8
	return v
}

// ReadVar reads an instrumentation variable's current value.
func (p *Process) ReadVar(v *snippet.Var) (uint64, error) {
	b, err := p.ReadMem(v.Addr, 8)
	if err != nil {
		return 0, err
	}
	var out uint64
	for i := 7; i >= 0; i-- {
		out = out<<8 | uint64(b[i])
	}
	switch v.Width {
	case 1:
		out &= 0xff
	case 2:
		out &= 0xffff
	case 4:
		out &= 0xffffffff
	}
	return out, nil
}

// InstrumentFunction applies sn at the given points of fn by in-memory
// patching: the function is relocated into freshly mapped patch space
// inside the live process, and the original entry is redirected with the
// cheapest jump that fits — falling back, per Section 3.1.2, to a trap
// (breakpoint) that the process-control layer redirects when no jump can be
// encoded.
func (p *Process) InstrumentFunction(fn *parse.Function, points []snippet.Point,
	sn snippet.Snippet, mode codegen.Mode) (patch.PatchKind, error) {
	return p.InstrumentFunctionFull(fn, points, nil, sn, mode)
}

// InstrumentFunctionFull additionally instruments CFG edges (taken /
// not-taken / loop back edges) with the same snippet.
func (p *Process) InstrumentFunctionFull(fn *parse.Function, points []snippet.Point,
	edges []snippet.EdgePoint, sn snippet.Snippet, mode codegen.Mode) (patch.PatchKind, error) {

	if p.instrumented[fn.Entry] != nil {
		// The relocated copy was built from the original code; a second
		// relocation would capture the entry patch and lose the first
		// instrumentation. (Dyninst re-instruments by rebuilding; batching
		// all points into one call is this API's contract.)
		return 0, fmt.Errorf("core: function %s is already instrumented; pass all points in one call", fn.Name)
	}
	lv := dataflow.Liveness(fn)
	var insertions []patch.Insertion
	for _, pt := range points {
		if pt.Func != fn {
			return 0, fmt.Errorf("core: point %v is not in %s", pt, fn.Name)
		}
		var dead []riscv.Reg
		if mode == codegen.ModeDeadRegister {
			dead = lv.DeadScratchX(pt.Addr)
		}
		res, err := codegen.Generate(sn, codegen.Options{
			Arch: p.Binary.Symtab.Extensions, Mode: mode, DeadRegs: dead,
		})
		if err != nil {
			return 0, err
		}
		insertions = append(insertions, patch.Insertion{Addr: pt.Addr, Code: res.Insts})
	}
	var edgeIns []patch.EdgeInsertion
	for _, pt := range edges {
		if pt.Func != fn {
			return 0, fmt.Errorf("core: edge point %v is not in %s", pt, fn.Name)
		}
		var dead []riscv.Reg
		if mode == codegen.ModeDeadRegister {
			dead = lv.DeadScratchX(pt.EdgeDest())
		}
		res, err := codegen.Generate(sn, codegen.Options{
			Arch: p.Binary.Symtab.Extensions, Mode: mode, DeadRegs: dead,
		})
		if err != nil {
			return 0, err
		}
		edgeIns = append(edgeIns, patch.EdgeInsertion{Block: pt.Block, Kind: pt.Kind, Code: res.Insts})
	}

	rel, err := patch.RelocateWithEdges(fn, p.Binary.Symtab, insertions, edgeIns, p.trampNext, p.Binary.Symtab.Extensions)
	if err != nil {
		return 0, err
	}
	size := (uint64(len(rel.Code)) + 0xfff) &^ 0xfff
	p.MapRegion(p.trampNext, size)
	if err := p.WriteMem(rel.NewBase, rel.Code); err != nil {
		return 0, err
	}
	p.trampNext += size
	if p.relocated == nil {
		p.relocated = map[uint64]uint64{}
	}
	for orig, na := range rel.AddrMap {
		p.xlatPairs = append(p.xlatPairs, xlatPair{newAddr: na, origAddr: orig})
		p.relocated[orig] = na
	}
	sort.Slice(p.xlatPairs, func(i, j int) bool { return p.xlatPairs[i].newAddr < p.xlatPairs[j].newAddr })

	u := &undo{entry: fn.Entry, slots: map[uint64][]byte{}}

	// Repoint jump tables at the relocated blocks.
	for _, blk := range fn.Blocks {
		if blk.Purpose != parse.PurposeJumpTable || blk.TableCount == 0 {
			continue
		}
		for i := uint64(0); i < blk.TableCount; i++ {
			slot := blk.TableBase + i*blk.TableStride
			old, ok := p.Binary.Symtab.ReadMem(slot, blk.TableWidth)
			if !ok {
				return 0, fmt.Errorf("core: cannot read jump table slot %#x", slot)
			}
			nt, ok := rel.AddrMap[old&^1]
			if !ok {
				return 0, fmt.Errorf("core: table target %#x not relocated", old)
			}
			buf := make([]byte, blk.TableWidth)
			for j := range buf {
				buf[j] = byte(nt >> (8 * j))
			}
			prev, err := p.ReadMem(slot, blk.TableWidth)
			if err != nil {
				return 0, err
			}
			u.slots[slot] = prev
			if err := p.WriteMem(slot, buf); err != nil {
				return 0, err
			}
		}
	}

	// Entry redirection.
	_, hi := fn.Extent()
	room := hi - fn.Entry
	scratch := riscv.RegNone
	if dead := lv.DeadScratchX(fn.Entry); len(dead) > 0 {
		scratch = dead[0]
	}
	newEntry := rel.AddrMap[fn.Entry]
	kind, bytes, err := patch.JumpPatch(fn.Entry, newEntry, room, p.Binary.Symtab.Extensions, scratch, true)
	if err != nil {
		return 0, err
	}
	p.instrumented[fn.Entry] = u
	if kind == patch.PatchTrap {
		// The trap rung: a ProcControl breakpoint redirects the PC on every
		// hit. Slow — each entry costs a stop — but always fits.
		bp, err := p.InsertBreakpoint(fn.Entry)
		if err != nil {
			return 0, err
		}
		bp.Callback = func(pp *proc.Process, _ *proc.Breakpoint) bool {
			pp.SetPC(newEntry)
			return true
		}
		u.bp = bp
		return kind, nil
	}
	orig, err := p.ReadMem(fn.Entry, len(bytes))
	if err != nil {
		return 0, err
	}
	u.orig = orig
	if err := p.WriteMem(fn.Entry, bytes); err != nil {
		return 0, err
	}
	return kind, nil
}

// Uninstrument restores the function's original entry (and any repointed
// jump-table slots), detaching its instrumentation — the relocated copy
// stays mapped but unreachable. This is the removal half of dynamic
// instrumentation's appeal: the mutatee returns to native behaviour
// without a restart.
func (p *Process) Uninstrument(fn *parse.Function) error {
	u := p.instrumented[fn.Entry]
	if u == nil {
		return fmt.Errorf("core: function %s is not instrumented", fn.Name)
	}
	if u.bp != nil {
		if err := p.RemoveBreakpoint(u.bp); err != nil {
			return err
		}
	}
	if u.orig != nil {
		if err := p.WriteMem(u.entry, u.orig); err != nil {
			return err
		}
	}
	for slot, prev := range u.slots {
		if err := p.WriteMem(slot, prev); err != nil {
			return err
		}
	}
	delete(p.instrumented, fn.Entry)
	return nil
}

// Probe registers a Go callback to run whenever execution reaches addr
// (trap-based inspection: tracing tools use this without patching code).
func (p *Process) Probe(addr uint64, fn func(*Process)) error {
	bp, err := p.InsertBreakpoint(addr)
	if err != nil {
		return err
	}
	self := p
	bp.Callback = func(_ *proc.Process, _ *proc.Breakpoint) bool {
		fn(self)
		return true
	}
	return nil
}

// RelocatedAddr maps an original instruction address to the address of its
// relocated copy in the patch area, when the containing function has been
// instrumented. Probes meant to fire during instrumented execution must
// target the relocated address — the original bytes are bypassed by the
// entry patch.
func (p *Process) RelocatedAddr(orig uint64) (uint64, bool) {
	na, ok := p.relocated[orig]
	return na, ok
}

// TranslatePC maps a program counter inside a patch area back to the
// original address its instruction was relocated from; other addresses pass
// through unchanged.
func (p *Process) TranslatePC(pc uint64) uint64 {
	n := len(p.xlatPairs)
	if n == 0 || pc < p.xlatPairs[0].newAddr {
		return pc
	}
	// Only translate inside the patch area (above the original image).
	if _, inOrig := p.Binary.CFG.FuncContaining(pc); inOrig {
		return pc
	}
	i := sort.Search(n, func(i int) bool { return p.xlatPairs[i].newAddr > pc }) - 1
	if i < 0 {
		return pc
	}
	// Within a short reach of the mapped instruction (snippet code between
	// mapped originals attributes to the preceding one).
	if pc-p.xlatPairs[i].newAddr > 4096 {
		return pc
	}
	return p.xlatPairs[i].origAddr
}

// Walk collects the current call stack with the default frame steppers,
// translating patch-area PCs back to original addresses.
func (p *Process) Walk() ([]stackwalk.Frame, error) {
	w := stackwalk.New(p.Binary.CFG, p.Process)
	w.Translate = p.TranslatePC
	return w.Walk()
}
