// Package core is the top of the toolkit stack: the mutator-facing facade
// that ties analysis (symtab, parse, dataflow) to instrumentation (snippet,
// codegen, patch) and process control (proc, stackwalk), in the way
// Dyninst's BPatch layer ties its component toolkits together (paper
// Section 2, Figure 2).
//
// Typical static-rewriting use:
//
//	bin, _ := core.Open(elfBytes)
//	fn, _ := bin.FindFunction("multiply")
//	m := bin.NewMutator(codegen.ModeDeadRegister)
//	counter := m.NewVar("calls", 8)
//	m.AtFuncEntry(fn, snippet.Increment(counter))
//	out, _ := m.Rewrite()            // out is a new, instrumented ELF image
//
// Typical dynamic use:
//
//	p, _ := bin.Launch(emu.P550())
//	p.InstrumentFunction(fn, points, snippet.Increment(counter), mode)
//	p.Continue()
package core

import (
	"fmt"
	"os"

	"rvdyn/internal/codegen"
	"rvdyn/internal/dataflow"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/parse"
	"rvdyn/internal/patch"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
)

// Binary is one analyzed mutatee.
type Binary struct {
	File   *elfrv.File
	Symtab *symtab.Symtab
	CFG    *parse.CFG
	// Jobs bounds the worker count of the parallel analyze/instrument
	// phases (CFG parsing, patch planning and encoding). <= 0 means
	// GOMAXPROCS; 1 forces the serial path. The output of Rewrite is
	// byte-identical for every value.
	Jobs int
}

// Open parses and analyzes raw ELF bytes.
func Open(data []byte) (*Binary, error) {
	return OpenJobs(data, 0)
}

// OpenJobs is Open with an explicit worker count for the parallel phases.
func OpenJobs(data []byte, jobs int) (*Binary, error) {
	f, err := elfrv.Read(data)
	if err != nil {
		return nil, err
	}
	return FromFileJobs(f, jobs)
}

// OpenPath reads and analyzes an ELF file on disk.
func OpenPath(path string) (*Binary, error) {
	return OpenPathJobs(path, 0)
}

// OpenPathJobs is OpenPath with an explicit worker count.
func OpenPathJobs(path string, jobs int) (*Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenJobs(data, jobs)
}

// FromFile analyzes an in-memory file object.
func FromFile(f *elfrv.File) (*Binary, error) {
	return FromFileJobs(f, 0)
}

// FromFileJobs is FromFile with an explicit worker count.
func FromFileJobs(f *elfrv.File, jobs int) (*Binary, error) {
	st, err := symtab.FromFile(f)
	if err != nil {
		return nil, err
	}
	cfg, err := parse.Parse(st, parse.Options{Workers: jobs})
	if err != nil {
		return nil, err
	}
	return &Binary{File: f, Symtab: st, CFG: cfg, Jobs: jobs}, nil
}

// Functions lists the parsed functions.
func (b *Binary) Functions() []*parse.Function { return b.CFG.Funcs }

// FindFunction looks a function up by name.
func (b *Binary) FindFunction(name string) (*parse.Function, error) {
	fn, ok := b.CFG.FuncByName(name)
	if !ok {
		return nil, fmt.Errorf("core: no function %q", name)
	}
	return fn, nil
}

// Liveness runs (and the caller may cache) the register liveness analysis.
func (b *Binary) Liveness(fn *parse.Function) *dataflow.LivenessResult {
	return dataflow.Liveness(fn)
}

// Mutator wraps the static rewriter with point helpers.
type Mutator struct {
	*patch.Rewriter
}

// NewMutator prepares static rewriting in the given codegen mode. The
// mutator inherits the binary's Jobs setting for parallel plan/encode.
func (b *Binary) NewMutator(mode codegen.Mode) *Mutator {
	rw := patch.NewRewriter(b.Symtab, b.CFG, mode)
	rw.Jobs = b.Jobs
	return &Mutator{Rewriter: rw}
}

// AtFuncEntry inserts sn at the function entry point.
func (m *Mutator) AtFuncEntry(fn *parse.Function, sn snippet.Snippet) error {
	return m.InsertSnippet(snippet.FuncEntry(fn), sn)
}

// AtFuncExits inserts sn at every exit point.
func (m *Mutator) AtFuncExits(fn *parse.Function, sn snippet.Snippet) error {
	for _, pt := range snippet.FuncExits(fn) {
		if err := m.InsertSnippet(pt, sn); err != nil {
			return err
		}
	}
	return nil
}

// AtBlockEntries inserts sn at the start of every basic block.
func (m *Mutator) AtBlockEntries(fn *parse.Function, sn snippet.Snippet) error {
	for _, pt := range snippet.BlockEntries(fn) {
		if err := m.InsertSnippet(pt, sn); err != nil {
			return err
		}
	}
	return nil
}

// AtCallSites inserts sn before every call instruction in the function.
func (m *Mutator) AtCallSites(fn *parse.Function, sn snippet.Snippet) error {
	for _, pt := range snippet.CallSites(fn) {
		if err := m.InsertSnippet(pt, sn); err != nil {
			return err
		}
	}
	return nil
}

// AtLoopBegins inserts sn at every loop head (once per iteration).
func (m *Mutator) AtLoopBegins(fn *parse.Function, sn snippet.Snippet) error {
	for _, pt := range snippet.LoopBegins(fn) {
		if err := m.InsertSnippet(pt, sn); err != nil {
			return err
		}
	}
	return nil
}

// AtLoopBackEdges inserts sn on every loop back edge of the function.
func (m *Mutator) AtLoopBackEdges(fn *parse.Function, sn snippet.Snippet) error {
	for _, pt := range snippet.LoopBackEdges(fn) {
		if err := m.InsertEdgeSnippet(pt, sn); err != nil {
			return err
		}
	}
	return nil
}
